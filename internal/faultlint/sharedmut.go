package faultlint

import (
	"go/ast"
	"go/token"
	"strings"

	"faultstudy/internal/taxonomy"
)

// sharedmut flags writes to package-level mutable state from functions that
// also spawn goroutines, when the writing function takes no lock. This is a
// deliberately lightweight static shadow of the race detector: the paper's
// EDT faults are dominated by exactly this shape — shared state whose
// consistency depends on scheduling interleavings ("races" in §5's trigger
// list). The heuristic does not prove a race; it marks the sites where one
// is cheapest to create.
//
// Vars of synchronization-aware types (sync.*, atomic.*, channels) are
// skipped, as are blank and error-sentinel vars (Err* / err* names bound
// once at init).
var sharedmutAnalyzer = &Analyzer{
	Name:  "sharedmut",
	Doc:   "package-level mutable state written in a goroutine-spawning function without a lock",
	Class: taxonomy.ClassEnvDependentTransient,
	Run:   runSharedmut,
}

// typeLooksGuarded reports whether a type expression denotes state that is
// safe (or intended) for concurrent use.
func typeLooksGuarded(expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	guarded := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.ChanType:
			guarded = true
		case *ast.SelectorExpr:
			if id, ok := t.X.(*ast.Ident); ok && (id.Name == "sync" || id.Name == "atomic") {
				guarded = true
			}
		case *ast.Ident:
			if strings.Contains(t.Name, "Mutex") || strings.Contains(t.Name, "Once") {
				guarded = true
			}
		}
		return !guarded
	})
	return guarded
}

// packageMutableVars collects the names of package-level vars that are
// plausibly shared mutable state.
func packageMutableVars(pkg *Package) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || typeLooksGuarded(vs.Type) {
					continue
				}
				for i, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if strings.HasPrefix(name.Name, "Err") || strings.HasPrefix(name.Name, "err") {
						continue // error sentinels: written once, by convention
					}
					// Values that are guarded types inferred from the
					// initializer (e.g. `var mu = &sync.Mutex{}`).
					if vs.Type == nil && i < len(vs.Values) && typeLooksGuarded(vs.Values[i]) {
						continue
					}
					out[name.Name] = true
				}
			}
		}
	}
	return out
}

// funcSpawnsGoroutine reports whether the body contains a go statement.
func funcSpawnsGoroutine(body *ast.BlockStmt) bool {
	spawns := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			spawns = true
		}
		return !spawns
	})
	return spawns
}

// funcTakesLock reports whether the body calls a Lock/RLock method.
func funcTakesLock(body *ast.BlockStmt) bool {
	locks := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch callName(call) {
			case "Lock", "RLock", "TryLock", "Do":
				locks = true
			}
		}
		return !locks
	})
	return locks
}

// isPackageLevelUse reports whether the identifier resolves to a
// package-scope object (when type info is available); without type info the
// syntactic name-set answer stands.
func isPackageLevelUse(pkg *Package, id *ast.Ident) bool {
	if obj, ok := pkg.Info.Uses[id]; ok && obj.Parent() != nil {
		if obj.Pkg() == nil {
			return false
		}
		return obj.Parent() == obj.Pkg().Scope()
	}
	return true // fall back to the syntactic candidate set
}

func runSharedmut(p *Pass) {
	shared := packageMutableVars(p.Pkg)
	if len(shared) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "init" {
				continue
			}
			if !funcSpawnsGoroutine(fd.Body) || funcTakesLock(fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var target ast.Expr
				switch s := n.(type) {
				case *ast.AssignStmt:
					if s.Tok == token.DEFINE {
						break // := declares locals; any same-named var is a shadow
					}
					for _, lhs := range s.Lhs {
						if id, isIdent := lhs.(*ast.Ident); isIdent && shared[id.Name] && isPackageLevelUse(p.Pkg, id) {
							target = lhs
						}
					}
				case *ast.IncDecStmt:
					if id, isIdent := s.X.(*ast.Ident); isIdent && shared[id.Name] && isPackageLevelUse(p.Pkg, id) {
						target = s.X
					}
				}
				if target != nil {
					p.Reportf(target.Pos(),
						"package-level %s written in goroutine-spawning %s without a lock; scheduling interleavings decide the outcome",
						target.(*ast.Ident).Name, fd.Name.Name)
				}
				return true
			})
		}
	}
}
