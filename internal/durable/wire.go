// Package durable is a keyed record store with an append-only,
// CRC-checksummed write-ahead log and atomic checkpoint files, written
// exclusively through the injectable simenv disk and descriptor layers so
// the study's environment faults (full disk, descriptor exhaustion, torn
// and short writes, crashes at arbitrary write boundaries) damage actual
// bytes. Open recovers by checkpoint-load + log-replay, truncating the log
// at the first torn or corrupt record; applications build real
// restore/rollback on top of RollbackTo.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Op kinds a WAL record can carry.
const (
	// OpPut stores Value under Key.
	OpPut = OpKind(1)
	// OpDelete removes Key.
	OpDelete = OpKind(2)
	// OpClear removes every key.
	OpClear = OpKind(3)
)

// OpKind discriminates the mutations a WAL record carries.
type OpKind uint8

// Op is one keyed mutation inside a WAL record.
type Op struct {
	// Kind is the mutation kind (OpPut, OpDelete, OpClear).
	Kind OpKind
	// Key is the record key (unused for OpClear).
	Key string
	// Value is the payload for OpPut.
	Value []byte
}

// Record is one WAL entry: a batch of ops applied atomically under one
// sequence number. Replay applies whole records only, so a multi-op
// statement can never be half-recovered.
type Record struct {
	// Seq is the record's sequence number; consecutive records in one log
	// increase by exactly 1.
	Seq uint64
	// Ops is the batch, applied in order.
	Ops []Op
}

var (
	// ErrCorrupt marks bytes that are structurally invalid or fail their
	// checksum — damage that must be detected, never silently accepted.
	ErrCorrupt = errors.New("durable: corrupt record")
	// ErrTornTail marks a log whose final record is incomplete — the
	// expected aftermath of a crash mid-append, repaired by truncation.
	ErrTornTail = errors.New("durable: torn log tail")
)

// Wire-format limits. A reader rejects anything outside them before
// allocating, so hostile input cannot balloon memory.
const (
	// maxPayload bounds one WAL record's encoded payload.
	maxPayload = 1 << 26
	// minPayload is the smallest legal payload: seq (8) + op count (2).
	minPayload = 10
	// walHeader is the per-record frame: length (4) + crc (4).
	walHeader = 8
	// ckptMagic opens every checkpoint file.
	ckptMagic = "FSDCKPT1"
)

// AppendRecord appends r's wire encoding to buf and returns the extended
// slice. The frame is [len u32][crc u32][payload]; the payload is
// [seq u64][nops u16] then per op [kind u8][klen u32][key]([vlen u32][value]
// for puts). All integers are little-endian; the CRC (IEEE) covers the
// payload.
func AppendRecord(buf []byte, r Record) []byte {
	payload := make([]byte, 0, 16)
	payload = binary.LittleEndian.AppendUint64(payload, r.Seq)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(r.Ops)))
	for _, op := range r.Ops {
		payload = append(payload, byte(op.Kind))
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(op.Key)))
		payload = append(payload, op.Key...)
		if op.Kind == OpPut {
			payload = binary.LittleEndian.AppendUint32(payload, uint32(len(op.Value)))
			payload = append(payload, op.Value...)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// ReadWAL decodes a write-ahead log. It returns every intact record in
// order, the byte length of the clean prefix they occupy, and an error
// describing why decoding stopped short of len(b): ErrTornTail for an
// incomplete final record, ErrCorrupt for a checksum or structural failure.
// A nil error means the whole log was clean. ReadWAL never panics on
// arbitrary input and never silently accepts damaged bytes.
func ReadWAL(b []byte) (recs []Record, valid int, err error) {
	off := 0
	for off < len(b) {
		rem := len(b) - off
		if rem < walHeader {
			return recs, off, fmt.Errorf("%w: %d trailing bytes at offset %d", ErrTornTail, rem, off)
		}
		length := int(binary.LittleEndian.Uint32(b[off:]))
		if length < minPayload || length > maxPayload {
			return recs, off, fmt.Errorf("%w: frame length %d at offset %d", ErrCorrupt, length, off)
		}
		if rem < walHeader+length {
			return recs, off, fmt.Errorf("%w: record needs %d bytes, %d remain at offset %d",
				ErrTornTail, walHeader+length, rem, off)
		}
		sum := binary.LittleEndian.Uint32(b[off+4:])
		payload := b[off+walHeader : off+walHeader+length]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			return recs, off, fmt.Errorf("%w: %v at offset %d", ErrCorrupt, derr, off)
		}
		if n := len(recs); n > 0 && rec.Seq != recs[n-1].Seq+1 {
			return recs, off, fmt.Errorf("%w: sequence %d after %d at offset %d",
				ErrCorrupt, rec.Seq, recs[n-1].Seq, off)
		}
		recs = append(recs, rec)
		off += walHeader + length
	}
	return recs, off, nil
}

// decodePayload decodes one record payload (already checksum-verified).
func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < minPayload {
		return r, fmt.Errorf("payload %d bytes", len(p))
	}
	r.Seq = binary.LittleEndian.Uint64(p)
	nops := int(binary.LittleEndian.Uint16(p[8:]))
	off := minPayload
	r.Ops = make([]Op, 0, nops)
	for i := 0; i < nops; i++ {
		if len(p)-off < 5 {
			return r, fmt.Errorf("op %d header truncated", i)
		}
		kind := OpKind(p[off])
		if kind != OpPut && kind != OpDelete && kind != OpClear {
			return r, fmt.Errorf("op %d kind %d", i, kind)
		}
		klen := int(binary.LittleEndian.Uint32(p[off+1:]))
		off += 5
		if klen < 0 || klen > len(p)-off {
			return r, fmt.Errorf("op %d key length %d", i, klen)
		}
		key := string(p[off : off+klen])
		off += klen
		op := Op{Kind: kind, Key: key}
		if kind == OpPut {
			if len(p)-off < 4 {
				return r, fmt.Errorf("op %d value length truncated", i)
			}
			vlen := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if vlen < 0 || vlen > len(p)-off {
				return r, fmt.Errorf("op %d value length %d", i, vlen)
			}
			op.Value = append([]byte(nil), p[off:off+vlen]...)
			off += vlen
		}
		r.Ops = append(r.Ops, op)
	}
	if off != len(p) {
		return r, fmt.Errorf("%d bytes of payload slack", len(p)-off)
	}
	return r, nil
}

// EncodeCheckpoint serializes a full key-value state plus the sequence
// number it covers. The layout is [magic 8][seq u64][count u32] then per
// entry [klen u32][key][vlen u32][value] in ascending key order, closed by
// a u32 CRC (IEEE) over everything before it. Sorting makes the encoding
// canonical: equal states encode to equal bytes.
func EncodeCheckpoint(state map[string][]byte, seq uint64) []byte {
	keys := make([]string, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := make([]byte, 0, 32)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(state[k])))
		buf = append(buf, state[k]...)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// ReadCheckpoint decodes a checkpoint file. Checkpoints are written
// temp-then-rename, so a reachable checkpoint must be whole: any structural
// damage, slack, ordering violation, or checksum mismatch is ErrCorrupt —
// there is no torn-tail case to repair. Never panics on arbitrary input.
func ReadCheckpoint(b []byte) (state map[string][]byte, seq uint64, err error) {
	const header = len(ckptMagic) + 12
	if len(b) < header+4 {
		return nil, 0, fmt.Errorf("%w: checkpoint %d bytes", ErrCorrupt, len(b))
	}
	if string(b[:len(ckptMagic)]) != ckptMagic {
		return nil, 0, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	body, sumBytes := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(sumBytes) {
		return nil, 0, fmt.Errorf("%w: checkpoint checksum mismatch", ErrCorrupt)
	}
	seq = binary.LittleEndian.Uint64(b[len(ckptMagic):])
	count := int(binary.LittleEndian.Uint32(b[len(ckptMagic)+8:]))
	off := header
	state = make(map[string][]byte, count)
	prev := ""
	for i := 0; i < count; i++ {
		if len(body)-off < 4 {
			return nil, 0, fmt.Errorf("%w: entry %d key length truncated", ErrCorrupt, i)
		}
		klen := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if klen < 0 || klen > len(body)-off {
			return nil, 0, fmt.Errorf("%w: entry %d key length %d", ErrCorrupt, i, klen)
		}
		key := string(body[off : off+klen])
		off += klen
		if i > 0 && key <= prev {
			return nil, 0, fmt.Errorf("%w: entry %d key order violation", ErrCorrupt, i)
		}
		prev = key
		if len(body)-off < 4 {
			return nil, 0, fmt.Errorf("%w: entry %d value length truncated", ErrCorrupt, i)
		}
		vlen := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if vlen < 0 || vlen > len(body)-off {
			return nil, 0, fmt.Errorf("%w: entry %d value length %d", ErrCorrupt, i, vlen)
		}
		state[key] = append([]byte(nil), body[off:off+vlen]...)
		off += vlen
	}
	if off != len(body) {
		return nil, 0, fmt.Errorf("%w: %d bytes of checkpoint slack", ErrCorrupt, len(body)-off)
	}
	return state, seq, nil
}

// applyOps applies a record's batch to state in order.
func applyOps(state map[string][]byte, ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case OpPut:
			state[op.Key] = append([]byte(nil), op.Value...)
		case OpDelete:
			delete(state, op.Key)
		case OpClear:
			for k := range state {
				delete(state, k)
			}
		}
	}
}
