// Command recoverylab runs the recovery-verification experiment: every
// corpus fault's executable reproduction under every recovery strategy, or a
// single mechanism for close inspection.
//
// Usage:
//
//	recoverylab                                 # the full 139-fault matrix
//	recoverylab -mechanism httpd/dns-error      # one fault, all strategies
//	recoverylab -lee93                          # the Tandem reconciliation
//	recoverylab -ablate                         # retry + rejuvenation ablations
//	recoverylab -soak -ops 500 -faults 3        # supervised soak of all three apps
//	recoverylab -supervised                     # matrix with the supervision column
//	recoverylab -supervised -metrics            # ... plus the per-class telemetry table
//	recoverylab -soak -trace soak.jsonl         # write the episode trace as JSONL
//	recoverylab -checktrace soak.jsonl          # validate a trace file's schema
//	recoverylab -lint                           # faultlint static classification vs seeded truth
//	recoverylab -supervised -workers 8          # shard the sweep over 8 workers
//	recoverylab -benchpar BENCH_parallel.json   # measure the engine's speedup
//	recoverylab -resil                          # chaos faults × client policies over the miner
//	recoverylab -mreboot                        # seeded bugs × recovery mechanisms on the component trees
//	recoverylab -scope                          # static class/rung prediction vs dynamic ground truth
//	recoverylab -serve                          # live-fire serving: open-loop traffic × the recovery ladder
//	recoverylab -serve -users 2000 -arrive fixed:1ms  # bigger user pool, deterministic arrivals
//	recoverylab -serve -reqlog serve_requests.jsonl   # write the per-request log
//	recoverylab -corpus                         # generated corpus: 5000 faults + 500 episodes through the ladder
//	recoverylab -corpus -spec "faults=200;episodes=20"  # a smaller generated population
//	recoverylab -corpus -corpusout corpus.jsonl # also write the generated population as JSONL
//	recoverylab -durable                        # crash matrix + device faults against the WAL store
//	recoverylab -durable -warehouse d.whs       # ... recording finished arms durably
//	recoverylab -durable -warehouse d.whs -haltafter 4  # run 4 arms, then halt (kill simulation)
//	recoverylab -durable -warehouse d.whs -resume       # finish a halted sweep byte-identically
//
// -resil exits non-zero unless the sweep's headline holds: under the full
// client policy, transient (EDT) chaos survival is at least 90% and
// nontransient (EDN) survival at most 10% — the CI chaos gate.
//
// -mreboot exits non-zero unless targeted component microreboots strictly
// beat process restarts on requests lost for environment-independent faults
// (and on MTTR wherever both recovered anything) — the CI microreboot gate.
//
// -scope exits non-zero unless the static analysis recovers the fault class
// of at least 85% of the seeded mechanisms and under-scopes the recovery
// rung on at most 5% of the environment-independent ones — the CI scope
// gate.
//
// -serve exits non-zero unless, for environment-independent faults under
// sustained open-loop traffic, a targeted component microreboot burns
// strictly less SLO error budget than a whole-process restart — the CI
// serve gate. SERVING.md documents the traffic model; -users sizes the
// simulated user pool, -arrive picks the arrival process, and -reqlog
// writes the per-request JSONL log.
//
// -durable exits non-zero unless the durability claims hold: across the
// kill-at-every-write-boundary crash matrix and the device-fault catalogue,
// zero acknowledged records are lost silently, zero corruptions go
// undetected, every episode's store recovers to a writable state, and the
// one deliberate torn-write device lie is detected and bounded — the CI
// durable gate. -warehouse records finished arms durably; -haltafter stops
// after N arms (exit 0) and -resume finishes a halted sweep, reproducing the
// uninterrupted run's report and telemetry byte-identically.
//
// -corpus exits non-zero unless the generated population passes every gate:
// each sampler fits its declared distribution (chi-squared, alpha 0.001),
// the classifier recovers the sampled fault classes, per-class recovery
// rates stay within the drift band of the mechanism-matched curated
// baseline, and the synthetic PR site reaches its page floor and crawls
// without gaps. -spec overrides the corpus specification (CORPUSGEN
// grammar); -corpusout writes the sampled population as JSONL.
//
// The telemetry flags (-metrics, -trace, -prom, -timeline) attach the
// observability layer (internal/obsv) to whichever experiment runs; see
// OBSERVABILITY.md for the metric catalogue and the trace schema.
//
// -workers shards the matrix, supervised, soak, and lint sweeps over a
// bounded worker pool (0, the default, means one worker per processor).
// Output is byte-identical at every worker count: shards derive their seeds
// from the root seed and the shard index alone and are reduced in shard
// order (DESIGN.md §9).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"faultstudy"
	"faultstudy/internal/corpusgen"
	"faultstudy/internal/experiment"
	"faultstudy/internal/obsv"
	"faultstudy/internal/recovery"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "recoverylab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mechanism  = flag.String("mechanism", "", "run one seeded bug (e.g. httpd/dns-error)")
		seed       = flag.Int64("seed", 42, "environment seed")
		retries    = flag.Int("retries", 0, "retry budget per failure (0 = default 3)")
		lee93      = flag.Bool("lee93", false, "print the Lee & Iyer reconciliation")
		csvDir     = flag.String("csv", "", "directory to write CSV artifacts into")
		ablate     = flag.Bool("ablate", false, "run the retry and rejuvenation ablations")
		sensitive  = flag.Bool("sensitivity", false, "run the classifier sensitivity sweep")
		steps      = flag.Bool("steps", false, "print each recovery step (with -mechanism)")
		load       = flag.Bool("load", false, "run the ops-to-failure load sweep")
		soak       = flag.Bool("soak", false, "soak all three apps under supervision with random faults active")
		ops        = flag.Int("ops", 300, "base workload length per app (with -soak)")
		nfaults    = flag.Int("faults", 3, "seeded mechanisms activated per app (with -soak)")
		supCol     = flag.Bool("supervised", false, "add the supervision-layer column to the matrix")
		lint       = flag.Bool("lint", false, "validate faultlint's static classification against the registry")
		grow       = flag.Bool("grow", true, "let the supervisor apply the resource governor")
		metrics    = flag.Bool("metrics", false, "print the per-class recovery telemetry summary")
		traceOut   = flag.String("trace", "", "write the fault-episode trace to this file as JSONL")
		promOut    = flag.String("prom", "", "write the metrics registry to this file in Prometheus text format")
		timeline   = flag.Bool("timeline", false, "print human-readable episode timelines")
		checkTrace = flag.String("checktrace", "", "validate a JSONL episode trace file and exit")
		workers    = flag.Int("workers", 0, "worker pool size for the sharded sweeps (0 = one per processor)")
		benchPar   = flag.String("benchpar", "", "measure the parallel engine's speedup and write the JSON artifact to this file")
		resil      = flag.Bool("resil", false, "run the RESIL chaos sweep: injected HTTP faults x client policies")
		maxPages   = flag.Int("maxpages", 0, "per-arm crawl page cap (with -resil; 0 = default)")
		mreboot    = flag.Bool("mreboot", false, "run the MREBOOT sweep: seeded bugs x recovery mechanisms on the component trees")
		scope      = flag.Bool("scope", false, "run the SCOPE experiment: static class/rung prediction vs dynamic ground truth")
		serve      = flag.Bool("serve", false, "run the SERVE experiment: open-loop traffic x the recovery ladder on daemonized apps")
		users      = flag.Int("users", 0, "simulated user pool per arm (with -serve; 0 = default 1200)")
		arrive     = flag.String("arrive", "", "arrival process spec, poisson:<gap> or fixed:<gap> (with -serve; default poisson:1ms)")
		reqLog     = flag.String("reqlog", "", "write the per-request log to this file as JSONL (with -serve)")
		corpusRun  = flag.Bool("corpus", false, "run the CORPUS experiment: a generated fault population through classification and the supervised ladder")
		spec       = flag.String("spec", "", "corpus specification (with -corpus; empty = published-distribution defaults)")
		corpusOut  = flag.String("corpusout", "", "write the generated population to this file as JSONL (with -corpus)")
		durableRun = flag.Bool("durable", false, "run the DURABLE experiment: crash matrix + device faults against the WAL store")
		whPath     = flag.String("warehouse", "", "record finished arms in this resumable result store (with -durable)")
		resume     = flag.Bool("resume", false, "preload finished arms from the warehouse instead of rerunning them (with -durable)")
		haltAfter  = flag.Int("haltafter", 0, "run only this many missing arms, then halt (with -durable; 0 = run everything)")
	)
	flag.Parse()

	if *checkTrace != "" {
		return runCheckTrace(*checkTrace)
	}
	if *benchPar != "" {
		return runBenchParallel(*benchPar, *seed)
	}

	// The telemetry sinks are created only when some flag consumes them; a
	// nil telemetry keeps every instrumented path on its zero-cost branch.
	var tel *experiment.Telemetry
	if *metrics || *traceOut != "" || *promOut != "" || *timeline {
		tel = experiment.NewTelemetry()
	}

	policy := faultstudy.RecoveryPolicy{MaxRetries: *retries}
	if *steps {
		policy.Trace = func(ev recovery.TraceEvent) {
			if ev.Err != nil {
				fmt.Printf("    [%s] %s (attempt %d): %v\n", ev.Kind, ev.Op, ev.Attempt, ev.Err)
			} else {
				fmt.Printf("    [%s] %s (attempt %d)\n", ev.Kind, ev.Op, ev.Attempt)
			}
		}
	}

	// gate holds a verdict that should fail the process only after the
	// requested telemetry has been written (the -resil CI check).
	var gate error

	switch {
	case *durableRun:
		rep, err := experiment.RunDurable(experiment.DurableConfig{
			Seed: *seed, Telemetry: tel, Workers: *workers,
			Warehouse: *whPath, Resume: *resume, HaltAfter: *haltAfter,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep)
		gate = rep.Check()
	case *corpusRun:
		rep, err := experiment.RunCorpus(experiment.CorpusConfig{
			Seed: *seed, Spec: *spec,
			Supervise: faultstudy.SupervisorConfig{GrowResources: *grow},
			Telemetry: tel, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep)
		if *corpusOut != "" {
			if err := writeCorpus(*spec, *seed, *workers, *corpusOut); err != nil {
				return err
			}
		}
		gate = rep.Check()
	case *serve:
		rep, err := experiment.RunServe(experiment.ServeConfig{
			Seed: *seed, Users: *users, Arrival: *arrive,
			Telemetry: tel, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep)
		if *reqLog != "" {
			if err := writeRequestLog(rep, *reqLog); err != nil {
				return err
			}
		}
		gate = rep.Check()
	case *scope:
		rep, err := experiment.RunScope(experiment.ScopeConfig{
			Seed: *seed, Telemetry: tel, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep)
		gate = rep.Check()
	case *mreboot:
		rep, err := experiment.RunMReboot(experiment.MRebootConfig{
			Seed: *seed, Telemetry: tel, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep)
		gate = rep.Check()
	case *resil:
		rep, err := experiment.RunResil(experiment.ResilConfig{
			Seed: *seed, MaxPages: *maxPages, Telemetry: tel, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep)
		gate = rep.Check()
	case *mechanism != "":
		if err := runOne(*mechanism, policy, *seed, tel); err != nil {
			return err
		}
	case *lint:
		root, err := experiment.ModuleRoot()
		if err != nil {
			return err
		}
		report, err := experiment.RunLintWorkers(root, *workers)
		if err != nil {
			return err
		}
		fmt.Print(report)
	case *soak:
		results, err := faultstudy.RunSoak(faultstudy.SoakConfig{
			Ops:       *ops,
			Faults:    *nfaults,
			Seed:      *seed,
			Supervise: faultstudy.SupervisorConfig{GrowResources: *grow},
			Telemetry: tel,
			Workers:   *workers,
		})
		if err != nil {
			return err
		}
		fmt.Println(faultstudy.RenderSoak(results))
	case *load:
		points, err := experiment.RunOpsToFailure(5000, *seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderOpsToFailure(points))
	case *sensitive:
		points := experiment.RunClassifierSensitivity([]float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0})
		fmt.Print(experiment.RenderSensitivity(points))
	case *ablate:
		retryAb, err := experiment.RunRetryAblation(5, *seed)
		if err != nil {
			return err
		}
		fmt.Print(retryAb)
		fmt.Println()
		rejuvAb, err := experiment.RunRejuvenationAblation([]int{0, 16, 32, 64, 128}, *seed)
		if err != nil {
			return err
		}
		fmt.Print(rejuvAb)
		fmt.Println()
		reclaimAb, err := experiment.RunReclaimAblation(*seed)
		if err != nil {
			return err
		}
		fmt.Print(reclaimAb)
		fmt.Println()
		mitAb, err := experiment.RunMitigationAblation(*seed)
		if err != nil {
			return err
		}
		fmt.Print(mitAb)
	default:
		matrix, err := faultstudy.RunRecoveryMatrixWorkers(policy, *seed, *workers)
		if err != nil {
			return err
		}
		if *supCol {
			cfg := faultstudy.SupervisorConfig{GrowResources: *grow}
			if err := matrix.AddSupervisedWorkers(*seed, cfg, tel, *workers); err != nil {
				return err
			}
		}
		fmt.Print(matrix)
		if *lee93 {
			fmt.Println()
			fmt.Print(faultstudy.CompareLee93(matrix))
		}
		if *csvDir != "" {
			files, err := faultstudy.ExportArtifacts(matrix)
			if err != nil {
				return err
			}
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			for name, content := range files {
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(content), 0o644); err != nil {
					return err
				}
			}
			fmt.Printf("\nwrote %d CSV artifacts to %s\n", len(files), *csvDir)
		}
	}

	if err := emitTelemetry(tel, *metrics, *timeline, *traceOut, *promOut); err != nil {
		return err
	}
	return gate
}

// emitTelemetry renders whatever telemetry outputs were requested after the
// selected experiment ran.
func emitTelemetry(tel *experiment.Telemetry, metrics, timeline bool, traceOut, promOut string) error {
	if tel == nil {
		return nil
	}
	if metrics {
		fmt.Println()
		fmt.Print(tel.Summary())
	}
	if timeline {
		fmt.Println()
		if err := tel.WriteTimeline(os.Stdout); err != nil {
			return err
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tel.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d episodes to %s\n", len(tel.Episodes()), traceOut)
	}
	if promOut != "" {
		f, err := os.Create(promOut)
		if err != nil {
			return err
		}
		if err := tel.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote metrics to %s\n", promOut)
	}
	return nil
}

// writeCorpus re-samples the generated population deterministically and
// writes it as JSONL: one line per fault, then one per episode.
func writeCorpus(specText string, seed int64, workers int, path string) error {
	parsed, err := corpusgen.ParseCorpusSpec(specText)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	c := corpusgen.New(parsed, seed)
	if err := c.WriteJSONL(f, workers); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %d faults and %d episodes to %s\n", parsed.Faults, parsed.Episodes, path)
	return nil
}

// writeRequestLog writes the SERVE experiment's per-request JSONL log.
func writeRequestLog(rep *experiment.ServeReport, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteRequestLog(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %d request records to %s\n", len(rep.Arms)*rep.Requests, path)
	return nil
}

// runCheckTrace validates a JSONL episode trace: every line parses against
// the documented schema and the file is non-empty. Exit status is the CI
// gate.
func runCheckTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	episodes, err := obsv.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("checktrace %s: %w", path, err)
	}
	if len(episodes) == 0 {
		return fmt.Errorf("checktrace %s: trace is empty", path)
	}
	fmt.Printf("trace OK: %d episodes, %d spans\n", len(episodes), countSpans(episodes))
	return nil
}

// countSpans totals the spans across episodes.
func countSpans(episodes []*obsv.Episode) int {
	n := 0
	for _, e := range episodes {
		n += len(e.Spans)
	}
	return n
}

// runOne runs one mechanism under every strategy, instrumenting each run when
// telemetry is enabled.
func runOne(mechanism string, policy faultstudy.RecoveryPolicy, seed int64, tel *experiment.Telemetry) error {
	for _, strat := range recovery.Strategies() {
		app, sc, err := faultstudy.BuildScenario(mechanism, seed)
		if err != nil {
			return err
		}
		runPolicy := policy
		var ro *obsv.RecoveryObserver
		if tel != nil {
			mech, _ := experiment.Registry().Lookup(mechanism)
			ro = obsv.NewRecoveryObserver(tel.Registry, tel.Recorder, obsv.Context{
				App:     mech.App.String(),
				FaultID: mechanism,
				Class:   experiment.ClassFor(mechanism),
			}, strat.String())
			runPolicy.Trace = ro.Trace(policy.Trace)
		}
		mgr := faultstudy.NewRecoveryManager(runPolicy)
		out, err := mgr.Run(app, sc, strat)
		if err != nil {
			return err
		}
		if ro != nil {
			ro.Flush(app.Env().Monotonic())
		}
		status := "LOST"
		if out.Survived {
			status = "survived"
		}
		fmt.Printf("%-18s %-9s failures=%d recoveries=%d attempts=%d",
			strat, status, out.Failures, out.Recoveries, out.Attempts)
		if out.FirstFailure != nil {
			fmt.Printf("  first failure: %s", out.FirstFailure.Msg)
		}
		fmt.Println()
	}
	return nil
}
