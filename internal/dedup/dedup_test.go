package dedup

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"faultstudy/internal/report"
	"faultstudy/internal/taxonomy"
)

func mk(id string, app taxonomy.Application, filed time.Time, text string) *report.Report {
	return &report.Report{
		ID:          id,
		App:         app,
		Synopsis:    text,
		Description: text,
		Filed:       filed,
	}
}

func TestShingles(t *testing.T) {
	set := Shingles("the server dies with a segfault", 3)
	if _, ok := set["the server dies"]; !ok {
		t.Errorf("missing shingle: %v", set)
	}
	if len(set) != 4 {
		t.Errorf("got %d shingles, want 4", len(set))
	}
	// Short text collapses to one shingle.
	short := Shingles("hi there", 3)
	if len(short) != 1 {
		t.Errorf("short text shingles = %v", short)
	}
	if len(Shingles("", 3)) != 0 {
		t.Error("empty text should have no shingles")
	}
}

func TestSimilarity(t *testing.T) {
	a := "the server dies with a segfault when the submitted url is very long"
	b := "server dies with a segfault when the submitted url is very long indeed"
	if sim := Similarity(a, b, 3); sim < 0.5 {
		t.Errorf("near-duplicates similarity = %.2f, want >= 0.5", sim)
	}
	c := "optimize table crashes the database server"
	if sim := Similarity(a, c, 3); sim > 0.1 {
		t.Errorf("unrelated similarity = %.2f, want ~0", sim)
	}
	if Similarity(a, a, 3) != 1.0 {
		t.Error("self similarity should be 1")
	}
}

func TestMarkDetectsDuplicates(t *testing.T) {
	t0 := time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)
	core := "the server dies with a segfault when the submitted url is very long, " +
		"hash overflow in the uri processing code, happens on every request " +
		"longer than eight thousand characters regardless of configuration"
	canonical := mk("PR-1", taxonomy.AppApache, t0, core)
	dup := mk("PR-2", taxonomy.AppApache, t0.AddDate(0, 0, 5),
		core+" also seen here on linux 2.2 with the same config")
	other := mk("PR-3", taxonomy.AppApache, t0.AddDate(0, 0, 7),
		"optimize table query crashes the server because of a missing initialization statement")

	n := Mark([]*report.Report{dup, canonical, other}, Options{})
	if n != 1 {
		t.Fatalf("marked %d, want 1", n)
	}
	if dup.DuplicateOf != "PR-1" {
		t.Errorf("dup.DuplicateOf = %q, want PR-1", dup.DuplicateOf)
	}
	if canonical.DuplicateOf != "" || other.DuplicateOf != "" {
		t.Error("canonical/other should not be marked")
	}
}

func TestMarkCanonicalIsEarliest(t *testing.T) {
	t0 := time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)
	text := "panel applet crashes when the tasklist tab is clicked in the settings dialog"
	later := mk("GB-9", taxonomy.AppGnome, t0.AddDate(0, 1, 0), text)
	earlier := mk("GB-2", taxonomy.AppGnome, t0, text)
	Mark([]*report.Report{later, earlier}, Options{})
	if later.DuplicateOf != "GB-2" {
		t.Errorf("later.DuplicateOf = %q, want GB-2", later.DuplicateOf)
	}
	if earlier.DuplicateOf != "" {
		t.Error("earliest report must stay canonical")
	}
}

func TestMarkAppsNeverCrossMatch(t *testing.T) {
	t0 := time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)
	text := "the server crashes with a segmentation fault on startup every single time"
	a := mk("PR-1", taxonomy.AppApache, t0, text)
	m := mk("M-1", taxonomy.AppMySQL, t0.AddDate(0, 0, 1), text)
	if n := Mark([]*report.Report{a, m}, Options{}); n != 0 {
		t.Errorf("cross-app duplicates marked: %d", n)
	}
}

func TestMarkChainCollapsesToOneCanonical(t *testing.T) {
	t0 := time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)
	base := "mysqld dies during optimize table with a segmentation fault missing initialization"
	var reports []*report.Report
	for i := 0; i < 5; i++ {
		reports = append(reports, mk(fmt.Sprintf("M-%d", i), taxonomy.AppMySQL,
			t0.AddDate(0, 0, i), fmt.Sprintf("%s variant %d", base, i)))
	}
	n := Mark(reports, Options{Threshold: 0.5})
	if n != 4 {
		t.Fatalf("marked %d, want 4", n)
	}
	for i := 1; i < 5; i++ {
		if reports[i].DuplicateOf != "M-0" {
			t.Errorf("report %d duplicates %q, want M-0", i, reports[i].DuplicateOf)
		}
	}
	if got := len(report.Canonical(reports)); got != 1 {
		t.Errorf("canonical count = %d, want 1", got)
	}
}

func TestMarkIdempotent(t *testing.T) {
	t0 := time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)
	text := "gnumeric crashes if a tab is pressed in the define name dialog due to bad initialization"
	a := mk("GB-1", taxonomy.AppGnome, t0, text)
	b := mk("GB-2", taxonomy.AppGnome, t0.AddDate(0, 0, 1), text+" also on red hat")
	rs := []*report.Report{a, b}
	first := Mark(rs, Options{})
	second := Mark(rs, Options{})
	if first != second {
		t.Errorf("Mark not idempotent: %d then %d", first, second)
	}
}

func TestMarkThresholdRespected(t *testing.T) {
	t0 := time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)
	a := mk("PR-1", taxonomy.AppApache, t0,
		"server dies with segfault when url is long")
	b := mk("PR-2", taxonomy.AppApache, t0.AddDate(0, 0, 1),
		"server dies with segfault when header is malformed")
	// At an impossible threshold nothing matches.
	if n := Mark([]*report.Report{a, b}, Options{Threshold: 0.99}); n != 0 {
		t.Errorf("marked %d at threshold 0.99", n)
	}
}

// Property: Mark never marks more than len(reports)-1 duplicates, never marks
// a report as its own duplicate, and every DuplicateOf names a canonical
// report.
func TestMarkInvariantsProperty(t *testing.T) {
	t0 := time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)
	texts := []string{
		"server dies with a segfault when the submitted url is very long",
		"optimize table crashes the server missing initialization",
		"panel applet dies when tasklist tab clicked",
		"full file system prevents all operations on the database",
	}
	f := func(choice []uint8) bool {
		if len(choice) == 0 || len(choice) > 20 {
			return true
		}
		var rs []*report.Report
		for i, c := range choice {
			rs = append(rs, mk(fmt.Sprintf("R-%d", i), taxonomy.AppApache,
				t0.AddDate(0, 0, i), texts[int(c)%len(texts)]))
		}
		n := Mark(rs, Options{})
		if n >= len(rs) && len(rs) > 0 {
			return false
		}
		ids := make(map[string]*report.Report)
		for _, r := range rs {
			ids[r.ID] = r
		}
		for _, r := range rs {
			if r.DuplicateOf == r.ID {
				return false
			}
			if r.DuplicateOf != "" {
				canon, ok := ids[r.DuplicateOf]
				if !ok || canon.DuplicateOf != "" {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
