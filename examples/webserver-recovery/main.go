// Web-server recovery: run the simulated Apache under a process-pair
// recovery system and watch the paper's asymmetry live.
//
// Two faults are exercised. A DNS outage (environment-dependent-transient)
// is survived: the failover takes time, the name service heals, the retried
// request succeeds. The long-URL hash overflow (environment-independent)
// kills the backup too: the checkpoint restores the exact state and the
// retried request re-triggers the same deterministic bug.
//
//	go run ./examples/webserver-recovery
package main

import (
	"fmt"
	"log"

	"faultstudy"
)

func main() {
	mgr := faultstudy.NewRecoveryManager(faultstudy.RecoveryPolicy{})

	demo := []struct {
		title     string
		mechanism string
	}{
		{"transient: the site DNS server starts failing mid-request", "httpd/dns-error"},
		{"transient: hung children exhaust the process table at peak load", "httpd/proc-table-full"},
		{"deterministic: a browser submits a 9000-character URL", "httpd/long-url-overflow"},
		{"nontransient: the file system fills up under the server", "httpd/fs-full"},
	}

	for _, d := range demo {
		fmt.Printf("== %s\n", d.title)
		app, scenario, err := faultstudy.BuildScenario(d.mechanism, 42)
		if err != nil {
			log.Fatal(err)
		}
		out, err := mgr.Run(app, scenario, faultstudy.StrategyProcessPairs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   first failure : %v\n", out.FirstFailure)
		if out.Survived {
			fmt.Printf("   outcome       : SURVIVED after %d retry attempt(s) — the environment changed under us\n", out.Attempts)
		} else {
			fmt.Printf("   outcome       : LOST after %d retry attempt(s) — %v\n", out.Attempts, out.Err)
		}
		fmt.Println()
	}

	fmt.Println("This is the paper's conclusion in miniature: process pairs save the")
	fmt.Println("transients (a small slice) and nothing else.")
}
