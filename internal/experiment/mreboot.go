package experiment

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"faultstudy/internal/apps/desktop"
	"faultstudy/internal/apps/httpd"
	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/component"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/obsv"
	"faultstudy/internal/parallel"
	"faultstudy/internal/recovery"
	"faultstudy/internal/simenv"
	"faultstudy/internal/stats"
	"faultstudy/internal/taxonomy"
)

// Metric names of the MREBOOT sweep; the catalogue entry lives in
// OBSERVABILITY.md.
const (
	// MetricMRebootEpisodes counts closed MREBOOT fault episodes by outcome.
	MetricMRebootEpisodes = "faultstudy_mreboot_episodes_total"
	// MetricMRebootRequestsLost counts requests lost across the sweep:
	// arrivals inside outage windows plus abandoned triggers.
	MetricMRebootRequestsLost = "faultstudy_mreboot_requests_lost_total"
	// MetricMRebootMTTRSeconds is the per-episode repair-time histogram
	// (failure detection to service restored, virtual clock).
	MetricMRebootMTTRSeconds = "faultstudy_mreboot_mttr_seconds"
	// MetricMRebootComponentReboots counts component reboots by component.
	MetricMRebootComponentReboots = "faultstudy_mreboot_component_reboots_total"
)

// MRebootPolicies is the fixed recovery-mechanism axis of the MREBOOT sweep,
// in arm order: targeted component microreboot, whole-process restart with
// the pre-failure state, and rollback to the run-start checkpoint.
func MRebootPolicies() []string { return []string{"microreboot", "restart", "rollback"} }

// The sweep's virtual-time model. The asymmetry between rebootCost (per
// component, simulated milliseconds charged by the tree) and
// mrebootProcRestart (simulated seconds) is the experiment's subject: a
// crash-only component cycles in the time a process takes to even exit.
const (
	// mrebootInterval is the arrival spacing of the concurrent workload; every
	// outage window loses (or, under microreboot, re-routes) window/interval
	// arrivals. It is tighter than the cheapest component reboot so even leaf
	// reboots see in-flight traffic.
	mrebootInterval = 2 * time.Millisecond
	// mrebootDetect is the failure-detection latency charged to every episode
	// under every policy: the time between the fault firing and the recovery
	// mechanism engaging, during which nothing serves.
	mrebootDetect = 100 * time.Millisecond
	// mrebootProcRestart is the cost of bouncing the whole process: exit,
	// exec, reinitialize, restore. Both the restart and rollback policies pay
	// it on every attempt.
	mrebootProcRestart = 2 * time.Second
	// mrebootAttempts bounds recovery attempts per episode; the microreboot
	// policy widens from the attributed component to its dependent subtree on
	// the second attempt, mirroring the supervisor's rung.
	mrebootAttempts = 2
	// mrebootBgOps is the background workload length per arm; the scenario's
	// trigger ops are spliced in at evenly spaced positions.
	mrebootBgOps = 60
)

// MRebootConfig tunes the MREBOOT sweep: every registered seeded-bug
// mechanism crossed with every recovery policy, each arm a componentized
// application under concurrent in-flight workload.
type MRebootConfig struct {
	// Seed drives every arm's environment and schedule stream.
	Seed int64
	// Telemetry, when non-nil, receives per-episode traces and the mreboot
	// metric family from every arm. Nil costs nothing.
	Telemetry *Telemetry
	// Workers bounds the worker pool the arms are sharded over (0 or negative
	// means one per processor; 1 is serial). Reports and telemetry are
	// byte-identical at every worker count.
	Workers int
}

// MRebootArm is one (mechanism, policy) cell of the sweep.
type MRebootArm struct {
	// Mechanism is the seeded bug active in this arm.
	Mechanism string
	// App is the application hosting the bug.
	App taxonomy.Application
	// Class is the mechanism's EI/EDN/EDT class.
	Class taxonomy.FaultClass
	// Policy is the recovery mechanism under test.
	Policy string
	// Requests counts every arrival: the scheduled workload plus the modeled
	// in-window arrivals of each outage.
	Requests int
	// Served counts arrivals that were served, including during outages.
	Served int
	// Lost counts requests lost: in-window casualties, detection-window
	// arrivals, and abandoned triggers.
	Lost int
	// OutageArrivals and OutageServed measure the goodput dip: arrivals
	// landing inside recovery windows, and how many of those still served
	// (through sibling components; zero by construction for process-level
	// policies).
	OutageArrivals, OutageServed int
	// Episodes and Recovered count fault episodes and those whose failing
	// request was eventually served.
	Episodes, Recovered int
	// Reboots counts component reboots performed (microreboot arms only).
	Reboots int
	// MTTRTotal accumulates repair time over recovered episodes.
	MTTRTotal time.Duration
}

// MTTR is the arm's mean time to repair over recovered episodes (0 when
// nothing recovered).
func (a MRebootArm) MTTR() time.Duration {
	if a.Recovered == 0 {
		return 0
	}
	return a.MTTRTotal / time.Duration(a.Recovered)
}

// MRebootReport is the assembled sweep, arms in (mechanism, policy) order.
type MRebootReport struct {
	// Seed is the sweep's root seed.
	Seed int64
	// Arms holds every (mechanism, policy) cell.
	Arms []MRebootArm
}

// RunMReboot runs the MREBOOT sweep: Registry() × MRebootPolicies(), one arm
// per cell. Each arm componentizes a fresh application, splices the
// mechanism's trigger ops into a steady background workload arriving on the
// virtual clock, and recovers every fault episode with the arm's policy —
// scoring MTTR, requests lost, and the goodput dip of each mechanism.
//
// Arms are independent shards on a pool of cfg.Workers workers: each derives
// its seed from (Seed, arm index) and records into a private telemetry, and
// the shards are reduced in fixed arm order — so reports, traces, and metric
// dumps are byte-identical at every worker count.
func RunMReboot(cfg MRebootConfig) (*MRebootReport, error) {
	keys := Registry().Keys()
	policies := MRebootPolicies()
	type shardOut struct {
		arm MRebootArm
		tel *Telemetry
	}
	n := len(keys) * len(policies)
	outs, err := parallel.MapOrdered(cfg.Workers, n, func(i int) (shardOut, error) {
		var tel *Telemetry
		if cfg.Telemetry != nil {
			tel = NewTelemetry()
		}
		mech, _ := Registry().Lookup(keys[i/len(policies)])
		arm, err := runMRebootArm(cfg, i, mech, policies[i%len(policies)], tel)
		return shardOut{arm: arm, tel: tel}, err
	})
	if err != nil {
		return nil, err
	}
	rep := &MRebootReport{Seed: cfg.Seed, Arms: make([]MRebootArm, 0, n)}
	tels := make([]*Telemetry, 0, n)
	for _, o := range outs {
		rep.Arms = append(rep.Arms, o.arm)
		tels = append(tels, o.tel)
	}
	if err := cfg.Telemetry.Merge(tels...); err != nil {
		return nil, err
	}
	return rep, nil
}

// componentApp is what an MREBOOT arm needs from an application: the recovery
// lifecycle plus the component tree.
type componentApp interface {
	recovery.Application
	component.Host
}

// mrebootDriver binds a componentized application to its background
// workload: warm establishes the sessions and state the workload uses, and
// bg serves the i-th background arrival through the component routing.
type mrebootDriver struct {
	app  componentApp
	warm func()
	bg   func(i int) error
}

// buildComponentized constructs the componentized application, its scenario,
// and the background-workload driver for a mechanism. Warmup errors are
// tolerated (a seeded bug may fire during warmup; the workload then reports
// it), with crashes contained so staging still runs against a live process.
func buildComponentized(mechanism string, seed int64) (*mrebootDriver, faultinject.Scenario, error) {
	switch {
	case strings.HasPrefix(mechanism, "httpd/"):
		env := simenv.New(seed, simenv.WithFDLimit(64), simenv.WithProcLimit(192))
		srv := httpd.New(env, faultinject.NewSet(mechanism), httpd.Config{})
		sc, ok := httpd.Scenarios(srv)[mechanism]
		if !ok {
			return nil, faultinject.Scenario{}, fmt.Errorf("experiment: no httpd scenario for %s", mechanism)
		}
		c := httpd.Componentize(srv, component.NewStore())
		paths := []string{"/", "/index.html", "/proxy/asset", "/"}
		sessions := []string{"alice", "bob"}
		return &mrebootDriver{
			app:  c,
			warm: func() {},
			bg: func(i int) error {
				_, err := c.Serve(httpd.Request{
					Method:  "GET",
					Path:    paths[i%len(paths)],
					Session: sessions[i%len(sessions)],
				})
				return err
			},
		}, sc, nil
	case strings.HasPrefix(mechanism, "sqldb/"):
		env := simenv.New(seed, simenv.WithFDLimit(64))
		srv := sqldb.New(env, faultinject.NewSet(mechanism))
		sc, ok := sqldb.Scenarios(srv)[mechanism]
		if !ok {
			return nil, faultinject.Scenario{}, fmt.Errorf("experiment: no sqldb scenario for %s", mechanism)
		}
		c := sqldb.Componentize(srv, component.NewStore())
		return &mrebootDriver{
			app: c,
			warm: func() {
				tolerate(c, func() error { return c.Connect("alice", "10.0.0.7") })
				tolerate(c, func() error {
					_, err := c.Exec("alice", "CREATE TABLE warm (id INT, name TEXT)")
					return err
				})
				tolerate(c, func() error {
					_, err := c.Exec("alice", "INSERT INTO warm VALUES (1, 'w')")
					return err
				})
			},
			bg: func(i int) error {
				_, err := c.Exec("alice", "SELECT id FROM warm")
				return err
			},
		}, sc, nil
	case strings.HasPrefix(mechanism, "desktop/"):
		env := simenv.New(seed)
		desk := desktop.New(env, faultinject.NewSet(mechanism))
		sc, ok := desktop.Scenarios(desk)[mechanism]
		if !ok {
			return nil, faultinject.Scenario{}, fmt.Errorf("experiment: no desktop scenario for %s", mechanism)
		}
		c := desktop.Componentize(desk, component.NewStore())
		events := []desktop.Event{
			{Widget: "calendar", Action: "next"},
			{Widget: "gnumeric", Action: "get-cell", Arg: "A1"},
			{Widget: "session", Action: "noop"},
		}
		return &mrebootDriver{
			app: c,
			warm: func() {
				tolerate(c, func() error {
					return c.Dispatch(desktop.Event{Widget: "gnumeric", Action: "set-cell", Arg: "A1=1"})
				})
			},
			bg: func(i int) error { return c.Dispatch(events[i%len(events)]) },
		}, sc, nil
	default:
		return nil, faultinject.Scenario{}, fmt.Errorf("experiment: unknown mechanism namespace %q", mechanism)
	}
}

// tolerate runs a warmup step, containing any crash it causes so the arm
// still starts from a live process.
func tolerate(app componentApp, f func() error) {
	if f() != nil && !app.Running() {
		app.ContainCrash()
	}
}

// mrebootArrival is one scheduled workload arrival.
type mrebootArrival struct {
	name    string
	trigger bool
	do      func() error
}

// spliceArrivals builds the arm's arrival schedule: bg background ops with
// the scenario's trigger ops inserted in order at evenly spaced positions.
func spliceArrivals(drv *mrebootDriver, ops []faultinject.Op, bg int) []mrebootArrival {
	total := bg + len(ops)
	stride := total / (len(ops) + 1)
	arrivals := make([]mrebootArrival, 0, total)
	next, bgIdx := 0, 0
	for i := 0; i < total; i++ {
		if next < len(ops) && i == (next+1)*stride {
			op := ops[next]
			arrivals = append(arrivals, mrebootArrival{name: op.Name, trigger: true, do: op.Do})
			next++
			continue
		}
		idx := bgIdx
		arrivals = append(arrivals, mrebootArrival{
			name: fmt.Sprintf("bg-%03d", idx),
			do:   func() error { return drv.bg(idx) },
		})
		bgIdx++
	}
	return arrivals
}

// mrebootRun is the per-arm state shared by the workload loop and the
// episode handler.
type mrebootRun struct {
	cfg    MRebootConfig
	mech   faultinject.Mechanism
	policy string
	drv    *mrebootDriver
	env    *simenv.Env
	epoch  []byte
	arm    *MRebootArm
	tel    *Telemetry
	bgIdx  int
}

// runMRebootArm runs one (mechanism, policy) cell. Everything it does is a
// pure function of (cfg, arm index); it shares no state with other arms.
func runMRebootArm(cfg MRebootConfig, armIdx int, mech faultinject.Mechanism, policy string, tel *Telemetry) (MRebootArm, error) {
	arm := MRebootArm{Mechanism: mech.Key, App: mech.App, Class: mech.Class(), Policy: policy}
	armSeed := parallel.Derive(cfg.Seed, uint64(armIdx))
	drv, sc, err := buildComponentized(mech.Key, armSeed)
	if err != nil {
		return arm, err
	}
	app := drv.app
	if err := app.Start(); err != nil {
		return arm, fmt.Errorf("experiment: mreboot %s × %s: start: %w", mech.Key, policy, err)
	}
	drv.warm()
	if sc.Stage != nil {
		sc.Stage()
	}
	epoch, err := app.Snapshot()
	if err != nil {
		return arm, fmt.Errorf("experiment: mreboot %s × %s: checkpoint: %w", mech.Key, policy, err)
	}
	run := &mrebootRun{cfg: cfg, mech: mech, policy: policy, drv: drv,
		env: app.Env(), epoch: epoch, arm: &arm, tel: tel, bgIdx: mrebootBgOps}
	if tel != nil {
		obsv.RegisterBridgeHelp(tel.Registry)
		tel.Recorder.SetContext(obsv.Context{
			App: mech.App.String(), FaultID: mech.Key, Class: mech.Class().Short()})
	}

	for _, a := range spliceArrivals(drv, sc.Ops, mrebootBgOps) {
		run.env.Advance(mrebootInterval)
		preOp, err := app.Snapshot()
		if err != nil {
			return arm, fmt.Errorf("experiment: mreboot %s × %s: pre-op checkpoint: %w", mech.Key, policy, err)
		}
		arm.Requests++
		opErr := a.do()
		if opErr == nil {
			arm.Served++
			continue
		}
		if _, isFault := faultinject.AsFailure(opErr); !isFault {
			// A plain failure (e.g. state a rollback discarded): the request
			// is lost but there is nothing for generic recovery to engage.
			arm.Lost++
			continue
		}
		run.episode(a, preOp, opErr)
	}
	app.Stop()
	run.observeArm()
	return arm, nil
}

// lostWindow charges a full-outage window: window/interval concurrent
// arrivals hit a dead process and are lost. When outage is true the
// arrivals also count toward the goodput-dip denominator (recovery windows;
// detection windows hit every policy alike and are excluded).
func (r *mrebootRun) lostWindow(window time.Duration, outage bool) {
	k := int(window / mrebootInterval)
	r.arm.Requests += k
	r.arm.Lost += k
	if outage {
		r.arm.OutageArrivals += k
	}
}

// serveOutage drives the concurrent arrivals that land inside a component
// outage window through the (partially down) component tree: arrivals routed
// through the dead component fail fast and are lost, arrivals through live
// siblings still serve.
func (r *mrebootRun) serveOutage(window time.Duration) {
	k := int(window / mrebootInterval)
	for i := 0; i < k; i++ {
		r.arm.Requests++
		r.arm.OutageArrivals++
		idx := r.bgIdx
		r.bgIdx++
		err := r.drv.bg(idx)
		var de *component.DownError
		switch {
		case err == nil:
			r.arm.Served++
			r.arm.OutageServed++
		case errors.As(err, &de):
			r.arm.Lost++
		default:
			// The arrival hit the active fault rather than the outage; the
			// episode in progress already owns recovery, so it is lost too.
			r.arm.Lost++
		}
	}
}

// perturb forces a fresh interleaving before a retry (Wang93), exactly as
// the supervisor's ladder does.
func (r *mrebootRun) perturb(attempt int) {
	r.env.Sched().UnforceAll()
	r.env.Reroll()
	r.env.Sched().Force(r.mech.Key, attempt)
}

// episode recovers one failed arrival with the arm's policy: detection
// window, then up to mrebootAttempts (recovery action, outage window, retry)
// rounds, then abandonment.
func (r *mrebootRun) episode(a mrebootArrival, preOp []byte, opErr error) {
	arm := r.arm
	arm.Episodes++
	start := r.env.Monotonic()
	var rec *obsv.Recorder
	if r.tel != nil {
		rec = r.tel.Recorder
		rec.Begin(start, a.name, r.mech.Key)
		rec.Note(start, obsv.Span{Kind: obsv.SpanActivation, Note: opErr.Error()})
	}

	// Detection: between the fault firing and recovery engaging nothing
	// serves, under every policy alike.
	r.env.Advance(mrebootDetect)
	r.lostWindow(mrebootDetect, false)

	recovered := false
	for attempt := 1; attempt <= mrebootAttempts && !recovered; attempt++ {
		target := r.applyPolicy(attempt, preOp)
		if rec != nil {
			rec.Note(r.env.Monotonic(), obsv.Span{Kind: obsv.SpanAction, Rung: r.policy,
				Attempt: attempt, Outcome: "ok", Component: target})
		}
		retryErr := a.do()
		if retryErr == nil {
			recovered = true
			break
		}
		if rec != nil {
			rec.Note(r.env.Monotonic(), obsv.Span{Kind: obsv.SpanRetry, Rung: r.policy,
				Attempt: attempt, Outcome: "fail", Note: retryErr.Error()})
		}
	}
	end := r.env.Monotonic()
	if recovered {
		arm.Served++
		arm.Recovered++
		arm.MTTRTotal += end - start
		if rec != nil {
			rec.Note(end, obsv.Span{Kind: obsv.SpanRetry, Rung: r.policy, Outcome: "ok"})
			rec.End(end, obsv.OutcomeRecovered, r.policy)
		}
		if r.tel != nil {
			r.tel.Registry.Histogram(MetricMRebootMTTRSeconds, obsv.LatencyBuckets,
				obsv.L("policy", r.policy, "class", r.mech.Class().Short())...).ObserveDuration(end - start)
		}
	} else {
		// The trigger is abandoned; make sure the process is alive for the
		// rest of the workload.
		arm.Lost++
		r.ensureRunning(preOp)
		if rec != nil {
			rec.End(end, obsv.OutcomeLost, r.policy)
		}
	}
	if r.tel != nil {
		outcome := obsv.OutcomeLost
		if recovered {
			outcome = obsv.OutcomeRecovered
		}
		r.tel.Registry.Counter(MetricMRebootEpisodes,
			obsv.L("app", r.mech.App.String(), "policy", r.policy,
				"class", r.mech.Class().Short(), "outcome", outcome)...).Inc()
	}
}

// applyPolicy performs one recovery attempt and returns the component a
// microreboot targeted ("" for process-level recovery).
func (r *mrebootRun) applyPolicy(attempt int, preOp []byte) string {
	app := r.drv.app
	if r.policy == "microreboot" {
		if target, ok := app.ComponentFor(r.mech.Key); ok {
			app.ContainCrash()
			tree := app.Tree()
			if attempt == 1 {
				// Crash-stop the attributed component alone; siblings keep
				// serving the arrivals that land in the reboot window.
				if tree.Kill(target) == nil {
					r.serveOutage(tree.RebootCost(target))
					_ = tree.Restart(target)
				}
			} else {
				// The rung widens: crash-stop the component's dependent
				// subtree, reverse dependency order, and restart it forward.
				members := tree.SubtreeOf(target)
				for i := len(members) - 1; i >= 0; i-- {
					_ = tree.Kill(members[i])
				}
				r.serveOutage(tree.SubtreeCost(target))
				for _, name := range members {
					_ = tree.Restart(name)
				}
			}
			r.perturb(attempt)
			return target
		}
		// No attribution: fall through to a process restart.
	}
	// Process-level recovery: the whole application is down for the bounce.
	app.Stop()
	r.env.Advance(mrebootProcRestart)
	r.lostWindow(mrebootProcRestart, true)
	r.env.ReclaimOwner(app.Name())
	r.perturb(attempt)
	snap := preOp
	if r.policy == "rollback" {
		snap = r.epoch
	}
	if err := app.Restore(snap); err != nil {
		_ = app.Reset()
	}
	return ""
}

// ensureRunning brings an abandoned episode's application back to life.
func (r *mrebootRun) ensureRunning(preOp []byte) {
	app := r.drv.app
	if app.Running() && app.Tree().AllRunning() {
		return
	}
	if r.policy == "microreboot" {
		app.ContainCrash()
		_ = app.Tree().StartAll()
		return
	}
	app.Stop()
	r.env.ReclaimOwner(app.Name())
	if err := app.Restore(preOp); err != nil {
		_ = app.Reset()
	}
}

// observeArm tallies the arm's component reboots and folds the terminal
// counters into its telemetry.
func (r *mrebootRun) observeArm() {
	tree := r.drv.app.Tree()
	for _, name := range tree.Names() {
		n := tree.Reboots(name)
		if n == 0 {
			continue
		}
		r.arm.Reboots += n
		if r.tel != nil {
			r.tel.Registry.Counter(MetricMRebootComponentReboots,
				obsv.L("app", r.mech.App.String(), "policy", r.policy, "component", name)...).Add(float64(n))
		}
	}
	if r.tel != nil && r.arm.Lost > 0 {
		r.tel.Registry.Counter(MetricMRebootRequestsLost,
			obsv.L("app", r.mech.App.String(), "policy", r.policy,
				"class", r.mech.Class().Short())...).Add(float64(r.arm.Lost))
	}
}

// LostBy aggregates requests lost across the arms of one class under one
// policy.
func (r *MRebootReport) LostBy(class taxonomy.FaultClass, policy string) (lost, requests int) {
	for _, a := range r.Arms {
		if a.Class != class || a.Policy != policy {
			continue
		}
		lost += a.Lost
		requests += a.Requests
	}
	return lost, requests
}

// MTTRBy is the mean time to repair across one class's recovered episodes
// under one policy (0 when nothing recovered).
func (r *MRebootReport) MTTRBy(class taxonomy.FaultClass, policy string) time.Duration {
	var total time.Duration
	var n int
	for _, a := range r.Arms {
		if a.Class != class || a.Policy != policy {
			continue
		}
		total += a.MTTRTotal
		n += a.Recovered
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// recoveredBy aggregates recovered-over-episodes for one class × policy.
func (r *MRebootReport) recoveredBy(class taxonomy.FaultClass, policy string) stats.Proportion {
	var p stats.Proportion
	for _, a := range r.Arms {
		if a.Class != class || a.Policy != policy {
			continue
		}
		p.Hits += a.Recovered
		p.N += a.Episodes
	}
	return p
}

// outageGoodputBy aggregates served-during-outage over outage arrivals for
// one class × policy — the inverse of the goodput dip.
func (r *MRebootReport) outageGoodputBy(class taxonomy.FaultClass, policy string) stats.Proportion {
	var p stats.Proportion
	for _, a := range r.Arms {
		if a.Class != class || a.Policy != policy {
			continue
		}
		p.Hits += a.OutageServed
		p.N += a.OutageArrivals
	}
	return p
}

// Check asserts the sweep's headline claim — the microreboot argument made
// measurable: for environment-independent faults, rebooting only the faulty
// component must lose strictly fewer requests than restarting the process,
// and must repair faster wherever both mechanisms recovered anything.
func (r *MRebootReport) Check() error {
	ei := taxonomy.ClassEnvIndependent
	microLost, microReq := r.LostBy(ei, "microreboot")
	restartLost, restartReq := r.LostBy(ei, "restart")
	if microReq == 0 || restartReq == 0 {
		return fmt.Errorf("experiment: mreboot check: empty EI cell (%d/%d requests)", microReq, restartReq)
	}
	if microLost >= restartLost {
		return fmt.Errorf("experiment: mreboot check: EI requests lost %d (microreboot) not below %d (restart)",
			microLost, restartLost)
	}
	for _, class := range taxonomy.Classes() {
		micro, restart := r.MTTRBy(class, "microreboot"), r.MTTRBy(class, "restart")
		if micro > 0 && restart > 0 && micro >= restart {
			return fmt.Errorf("experiment: mreboot check: %s MTTR %s (microreboot) not below %s (restart)",
				class.Short(), micro, restart)
		}
	}
	return nil
}

// mrebootMTTRCell renders a mean repair time ("-" when nothing recovered).
func mrebootMTTRCell(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// String renders the class × policy aggregate and the headline.
func (r *MRebootReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MREBOOT sweep (seed %d, %d arms, %s arrivals):\n",
		r.Seed, len(r.Arms), mrebootInterval)
	tbl := &stats.Table{Header: []string{
		"class", "policy", "episodes", "recovered", "requests", "lost", "outage-served", "mttr"}}
	for _, class := range taxonomy.Classes() {
		for _, policy := range MRebootPolicies() {
			rec := r.recoveredBy(class, policy)
			lost, req := r.LostBy(class, policy)
			good := r.outageGoodputBy(class, policy)
			tbl.Add(class.Short(), policy,
				fmt.Sprint(rec.N),
				fmt.Sprintf("%d/%d (%s)", rec.Hits, rec.N, rec.Percent()),
				fmt.Sprint(req), fmt.Sprint(lost),
				fmt.Sprintf("%d/%d (%s)", good.Hits, good.N, good.Percent()),
				mrebootMTTRCell(r.MTTRBy(class, policy)))
		}
	}
	b.WriteString(tbl.String())
	ei := taxonomy.ClassEnvIndependent
	microLost, _ := r.LostBy(ei, "microreboot")
	restartLost, _ := r.LostBy(ei, "restart")
	fmt.Fprintf(&b,
		"\nHeadline: for EI faults a targeted component microreboot loses %d requests where a\nprocess restart loses %d — the crash-only tree turns the same generic recovery into\na strictly cheaper outage, without fixing a single bug.\n",
		microLost, restartLost)
	return b.String()
}
