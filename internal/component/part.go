package component

import "sync"

// Hooks are the optional lifecycle callbacks of a Part. Each hook runs with
// the part's own lock held but outside any tree lock ordering concern: hooks
// may take the application's lock, the application never calls back into the
// part.
type Hooks struct {
	// OnStart re-acquires whatever the part owns (descriptors, ports,
	// rehydrated view state). It runs on every transition from down to up —
	// including the first Start — and is where crash wreckage gets cleaned
	// up, per the crash-only contract.
	OnStart func() error
	// OnKill drops the part's resources on crash-stop. It must not block and
	// must not fail; there is deliberately no way to return an error.
	OnKill func()
	// OnProbe checks part-specific health while the part is up. A down part
	// already probes as DownError without this hook running.
	OnProbe func() error
}

// Part is a Component assembled from callbacks — the building block the
// componentized applications use instead of writing six methods per part.
// Stop and Kill are the same operation: crash-only parts have no graceful
// shutdown path to maintain, which is precisely what makes Kill always safe.
type Part struct {
	name  string
	hooks Hooks

	mu sync.Mutex
	up bool
}

// NewPart builds a part with the given name and hooks.
func NewPart(name string, hooks Hooks) *Part {
	return &Part{name: name, hooks: hooks}
}

// Name returns the part's name.
func (p *Part) Name() string { return p.name }

// Start brings the part up, running OnStart; no-op when already up.
func (p *Part) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.up {
		return nil
	}
	if p.hooks.OnStart != nil {
		if err := p.hooks.OnStart(); err != nil {
			return err
		}
	}
	p.up = true
	return nil
}

// Stop crash-stops the part: in a crash-only design the orderly path and the
// crash path are the same path.
func (p *Part) Stop() { p.Kill() }

// Kill crash-stops the part, dropping its resources via OnKill.
func (p *Part) Kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.up {
		return
	}
	p.up = false
	if p.hooks.OnKill != nil {
		p.hooks.OnKill()
	}
}

// Probe reports DownError when the part is down, OnProbe's verdict otherwise.
func (p *Part) Probe() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.up {
		return Down(p.name)
	}
	if p.hooks.OnProbe != nil {
		return p.hooks.OnProbe()
	}
	return nil
}

// Running reports whether the part is up.
func (p *Part) Running() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up
}
