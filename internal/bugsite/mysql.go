package bugsite

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"time"

	"faultstudy/internal/corpus"
)

// mboxMessage renders one mbox-framed mail message.
func mboxMessage(msgID, inReplyTo, from, subject string, date time.Time, body string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "From %s %s\n", from, date.Format("Mon Jan 2 15:04:05 2006"))
	fmt.Fprintf(&b, "Message-Id: <%s>\n", msgID)
	if inReplyTo != "" {
		fmt.Fprintf(&b, "In-Reply-To: <%s>\n", inReplyTo)
	}
	fmt.Fprintf(&b, "From: %s\n", from)
	fmt.Fprintf(&b, "Subject: %s\n", subject)
	fmt.Fprintf(&b, "Date: %s\n", date.UTC().Format(time.RFC1123Z))
	b.WriteString("\n")
	// Escape body From_ lines per mbox convention.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "From ") {
			b.WriteString(">")
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	b.WriteString("\n")
	return b.String()
}

// MySQLArchive generates the simulated mysql mailing-list archive as monthly
// mbox files: month key ("1999-03") -> mbox content. Each corpus fault
// becomes a thread whose root carries the report and whose replies confirm
// and describe the fix; duplicate threads re-report the same fault under a
// different subject; noise threads are ordinary list traffic that matches
// none of the study's keywords.
func MySQLArchive(cfg Config) map[string]string {
	cfg = cfg.withDefaults(400)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	months := make(map[string]*strings.Builder)
	add := func(date time.Time, msg string) {
		key := date.UTC().Format("2006-01")
		if months[key] == nil {
			months[key] = &strings.Builder{}
		}
		months[key].WriteString(msg)
	}

	serial := 0
	nextID := func() string {
		serial++
		return fmt.Sprintf("msg%05d@lists.mysql.example", serial)
	}

	for _, f := range faultsSorted(corpus.MySQL()) {
		rootID := nextID()
		subject := f.Synopsis
		body := f.Description + "\n\nHow-To-Repeat: " + f.HowToRepeat +
			"\nServer version: " + f.Release
		add(f.Filed, mboxMessage(rootID, "", "reporter@example.com", subject, f.Filed, body))

		confirmID := nextID()
		add(f.Filed.AddDate(0, 0, 1), mboxMessage(confirmID, rootID, "another@example.org",
			"Re: "+subject, f.Filed.AddDate(0, 0, 1),
			"Same here -- it died on "+f.Release+" as well."))
		if f.Fix != "" {
			fixID := nextID()
			add(f.Filed.AddDate(0, 0, 3), mboxMessage(fixID, rootID, "monty@mysql.example",
				"Re: "+subject, f.Filed.AddDate(0, 0, 3),
				"Thanks for the report. Fixed for the next release: "+f.Fix))
		}

		for d := 0; d < dupCount(rng, cfg.DuplicateRate); d++ {
			filed := f.Filed.AddDate(0, 0, 10*(d+1)+rng.Intn(8))
			dupID := nextID()
			// A re-report under its own subject: a new thread the dedup
			// stage must merge with the original.
			add(filed, mboxMessage(dupID, "", fmt.Sprintf("user%d@example.net", rng.Intn(900)),
				"problem with "+f.Component+" — "+f.Synopsis, filed,
				dupText(rng, f.Description+"\n"+f.HowToRepeat)))
		}
	}

	for i := 0; i < cfg.NoiseReports; i++ {
		n := mysqlNoise(rng, i)
		date := time.Date(1999, time.Month(1+i%12), 1+i%27, 8+i%10, 0, 0, 0, time.UTC)
		rootID := nextID()
		add(date, mboxMessage(rootID, "", fmt.Sprintf("list%d@example.com", i), n.synopsis, date, n.description))
		if i%3 == 0 {
			reply := nextID()
			add(date.AddDate(0, 0, 1), mboxMessage(reply, rootID, "helper@example.org",
				"Re: "+n.synopsis, date.AddDate(0, 0, 1), "See the manual section on that topic."))
		}
	}

	out := make(map[string]string, len(months))
	for k, b := range months {
		out[k] = b.String()
	}
	return out
}

// mysqlNoise synthesizes ordinary list traffic that matches none of the
// study's keywords (crash, segmentation, race, died).
func mysqlNoise(rng *rand.Rand, i int) noiseReport {
	kinds := []noiseReport{
		{
			synopsis:    "how do I grant select on a single table?",
			description: "New to the access system; which statement limits a user to one table?",
		},
		{
			synopsis:    "speed of big joins on 3.22",
			description: "Joins over five tables take minutes. Any indexing tips? Everything completes, just slowly.",
		},
		{
			synopsis:    "ANNOUNCE: web front end for table browsing",
			description: "I wrote a small cgi that browses tables. URL inside.",
		},
		{
			synopsis:    "replication howto?",
			description: "Is there a supported way to mirror a database to a second machine?",
		},
		{
			synopsis:    "timestamp column default behaviour",
			description: "Why does the first timestamp column update itself on every write? Is that intended?",
		},
		{
			synopsis:    "ODBC driver configuration on NT",
			description: "Which DSN options are required for the 3.22 driver on NT?",
		},
	}
	n := kinds[i%len(kinds)]
	n.synopsis = fmt.Sprintf("%s (q%d)", n.synopsis, rng.Intn(1000))
	n.description = fmt.Sprintf("%s -- asked by subscriber %03d.", n.description, i)
	return n
}

// NewMySQLSite serves the simulated list archive: an index page linking to
// one mbox file per month.
func NewMySQLSite(cfg Config) http.Handler {
	archive := MySQLArchive(cfg)
	pages := make(serveIndexed, len(archive)+1)

	monthKeys := make([]string, 0, len(archive))
	for k := range archive {
		monthKeys = append(monthKeys, k)
	}
	sort.Strings(monthKeys)

	var b strings.Builder
	b.WriteString("<h1>mysql mailing list archive</h1>\n<ul>\n")
	for _, k := range monthKeys {
		fmt.Fprintf(&b, `<li><a href="/archive/%s.mbox">%s</a></li>`+"\n", k, k)
	}
	b.WriteString("</ul>\n")
	pages["/archive/"] = htmlPage("mysql list archive", b.String())

	for k, content := range archive {
		pages["/archive/"+k+".mbox"] = content
	}
	return pages
}
