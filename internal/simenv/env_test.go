package simenv

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestDeterminismAcrossSeeds(t *testing.T) {
	// Two environments with the same seed make identical scheduling choices;
	// a different seed (almost surely) diverges somewhere in a long run.
	a := New(42)
	b := New(42)
	c := New(43)
	sameAB, sameAC := true, true
	for i := 0; i < 200; i++ {
		xa := a.Sched().Interleave("p", 10)
		xb := b.Sched().Interleave("p", 10)
		xc := c.Sched().Interleave("p", 10)
		if xa != xb {
			sameAB = false
		}
		if xa != xc {
			sameAC = false
		}
	}
	if !sameAB {
		t.Error("same seed must give identical interleavings")
	}
	if sameAC {
		t.Error("different seeds should diverge over 200 draws")
	}
}

func TestRerollChangesInterleavings(t *testing.T) {
	a := New(7)
	b := New(7)
	b.Reroll()
	diverged := false
	for i := 0; i < 100; i++ {
		if a.Sched().Interleave("p", 8) != b.Sched().Interleave("p", 8) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("Reroll should change the interleaving sequence")
	}
}

func TestHostname(t *testing.T) {
	e := New(1, WithHostname("alpha"))
	if e.Hostname() != "alpha" {
		t.Errorf("hostname = %q", e.Hostname())
	}
	e.SetHostname("beta")
	if e.Hostname() != "beta" {
		t.Errorf("hostname after set = %q", e.Hostname())
	}
}

func TestAdvanceMovesClock(t *testing.T) {
	e := New(1)
	t0 := e.Now()
	e.Advance(90 * time.Second)
	if got := e.Now().Sub(t0); got != 90*time.Second {
		t.Errorf("clock advanced %v, want 90s", got)
	}
}

func TestReclaimOwner(t *testing.T) {
	e := New(1)
	if _, err := e.FDs().Open("httpd"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Procs().Spawn("httpd"); err != nil {
		t.Fatal(err)
	}
	if err := e.Net().BindPort(80, "httpd"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FDs().Open("other"); err != nil {
		t.Fatal(err)
	}

	e.ReclaimOwner("httpd")

	if n := e.FDs().OwnedBy("httpd"); n != 0 {
		t.Errorf("httpd still owns %d fds", n)
	}
	if n := e.Procs().OwnedBy("httpd"); n != 0 {
		t.Errorf("httpd still owns %d procs", n)
	}
	if o := e.Net().PortOwner(80); o != "" {
		t.Errorf("port 80 still owned by %q", o)
	}
	if n := e.FDs().OwnedBy("other"); n != 1 {
		t.Errorf("other's fd was reclaimed too")
	}
}

func TestFDTableExhaustion(t *testing.T) {
	e := New(1, WithFDLimit(3))
	for i := 0; i < 3; i++ {
		if _, err := e.FDs().Open("app"); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	if _, err := e.FDs().Open("app"); !errors.Is(err, ErrFDExhausted) {
		t.Errorf("want ErrFDExhausted, got %v", err)
	}
	// Raising the limit (the §6.2 mitigation) unblocks.
	e.FDs().SetLimit(4)
	if _, err := e.FDs().Open("app"); err != nil {
		t.Errorf("open after SetLimit: %v", err)
	}
}

func TestFDCloseAndDoubleClose(t *testing.T) {
	e := New(1)
	fd, err := e.FDs().Open("app")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.FDs().Owner(fd); got != "app" {
		t.Errorf("owner = %q", got)
	}
	if err := e.FDs().Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := e.FDs().Close(fd); err == nil {
		t.Error("double close should fail")
	}
}

func TestProcLifecycle(t *testing.T) {
	e := New(1, WithProcLimit(2))
	pid, err := e.Procs().Spawn("app")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := e.Procs().Lookup(pid)
	if !ok || p.State != ProcRunning {
		t.Fatalf("lookup: %+v ok=%v", p, ok)
	}
	if err := e.Procs().Exit(pid); err != nil {
		t.Fatal(err)
	}
	p, _ = e.Procs().Lookup(pid)
	if p.State != ProcZombie {
		t.Errorf("state after exit = %v", p.State)
	}
	// Zombie still occupies a slot.
	if _, err := e.Procs().Spawn("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Procs().Spawn("app"); !errors.Is(err, ErrProcTableFull) {
		t.Errorf("want ErrProcTableFull, got %v", err)
	}
	if err := e.Procs().Reap(pid); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Procs().Spawn("app"); err != nil {
		t.Errorf("spawn after reap: %v", err)
	}
}

func TestProcReapNonZombie(t *testing.T) {
	e := New(1)
	pid, _ := e.Procs().Spawn("app")
	if err := e.Procs().Reap(pid); err == nil {
		t.Error("reap of running process should fail")
	}
	if err := e.Procs().Hang(pid); err != nil {
		t.Fatal(err)
	}
	if n := e.Procs().HungOwnedBy("app"); n != 1 {
		t.Errorf("hung count = %d", n)
	}
}

func TestProcErrorsOnUnknownPID(t *testing.T) {
	e := New(1)
	for _, f := range []func(PID) error{e.Procs().Hang, e.Procs().Exit, e.Procs().Reap, e.Procs().Kill} {
		if err := f(PID(9999)); err == nil {
			t.Error("operation on unknown pid should fail")
		}
	}
}

func TestDiskCapacityAndFileLimit(t *testing.T) {
	e := New(1, WithDiskBytes(100), WithMaxFileSize(60))
	if err := e.Disk().Append("/a", "app", 50); err != nil {
		t.Fatal(err)
	}
	if err := e.Disk().Append("/a", "app", 20); !errors.Is(err, ErrFileTooLarge) {
		t.Errorf("want ErrFileTooLarge, got %v", err)
	}
	if err := e.Disk().Append("/b", "app", 60); !errors.Is(err, ErrDiskFull) {
		t.Errorf("want ErrDiskFull, got %v", err)
	}
	if free := e.Disk().Free(); free != 50 {
		t.Errorf("free = %d, want 50", free)
	}
	if err := e.Disk().Truncate("/a"); err != nil {
		t.Fatal(err)
	}
	if used := e.Disk().Used(); used != 0 {
		t.Errorf("used after truncate = %d", used)
	}
}

func TestDiskRemoveAndOwner(t *testing.T) {
	e := New(1)
	if err := e.Disk().Append("/tmp/x", "app", 10); err != nil {
		t.Fatal(err)
	}
	if err := e.Disk().Append("/tmp/y", "other", 20); err != nil {
		t.Fatal(err)
	}
	if freed := e.Disk().RemoveOwner("app"); freed != 10 {
		t.Errorf("freed = %d, want 10", freed)
	}
	if e.Disk().Exists("/tmp/x") {
		t.Error("/tmp/x should be gone")
	}
	if !e.Disk().Exists("/tmp/y") {
		t.Error("/tmp/y should remain")
	}
	if err := e.Disk().Remove("/tmp/x"); !errors.Is(err, ErrNoSuchFile) {
		t.Errorf("want ErrNoSuchFile, got %v", err)
	}
}

func TestDiskFillFrom(t *testing.T) {
	e := New(1, WithDiskBytes(1000), WithMaxFileSize(100))
	if err := e.Disk().FillFrom("tenant", 50); err != nil {
		t.Fatal(err)
	}
	if free := e.Disk().Free(); free != 50 {
		t.Errorf("free = %d, want 50", free)
	}
	// Filling when already below the target is a no-op.
	if err := e.Disk().FillFrom("tenant", 500); err != nil {
		t.Fatal(err)
	}
	if free := e.Disk().Free(); free != 50 {
		t.Errorf("free after second fill = %d, want 50", free)
	}
}

func TestDiskIllegalOwner(t *testing.T) {
	e := New(1)
	if err := e.Disk().Append("/home/f", "user", 5); err != nil {
		t.Fatal(err)
	}
	if err := e.Disk().SetIllegalOwner("/home/f", true); err != nil {
		t.Fatal(err)
	}
	bad, err := e.Disk().IllegalOwner("/home/f")
	if err != nil || !bad {
		t.Errorf("IllegalOwner = %v, %v", bad, err)
	}
	if _, err := e.Disk().IllegalOwner("/missing"); err == nil {
		t.Error("IllegalOwner on missing file should fail")
	}
}

func TestDiskSetCapacity(t *testing.T) {
	e := New(1, WithDiskBytes(100))
	if err := e.Disk().Append("/a", "app", 80); err != nil {
		t.Fatal(err)
	}
	if err := e.Disk().SetCapacity(50); err == nil {
		t.Error("shrinking below usage should fail")
	}
	if err := e.Disk().SetCapacity(200); err != nil {
		t.Fatal(err)
	}
	if err := e.Disk().Append("/a2", "app", 100); err != nil {
		t.Errorf("append after grow: %v", err)
	}
}

func TestDNSOutageHealsWithTime(t *testing.T) {
	e := New(1)
	e.DNS().AddHost("db.example.com", "10.0.0.5")
	e.DNS().Fail(2 * time.Minute)
	if _, _, err := e.DNS().Lookup("db.example.com"); !errors.Is(err, ErrDNSFailure) {
		t.Fatalf("want ErrDNSFailure, got %v", err)
	}
	e.Advance(time.Minute)
	if _, _, err := e.DNS().Lookup("db.example.com"); !errors.Is(err, ErrDNSFailure) {
		t.Fatalf("outage should persist at 1m, got %v", err)
	}
	e.Advance(90 * time.Second)
	addr, _, err := e.DNS().Lookup("db.example.com")
	if err != nil || addr != "10.0.0.5" {
		t.Errorf("after heal: %q, %v", addr, err)
	}
}

func TestDNSSlowMode(t *testing.T) {
	e := New(1)
	e.DNS().AddHost("h", "1.2.3.4")
	e.DNS().Slow(time.Minute)
	_, latency, err := e.DNS().Lookup("h")
	if err != nil {
		t.Fatal(err)
	}
	if latency < time.Second {
		t.Errorf("slow lookup latency = %v, want >= 1s", latency)
	}
	e.DNS().Heal()
	_, latency, _ = e.DNS().Lookup("h")
	if latency > time.Second {
		t.Errorf("healed lookup latency = %v", latency)
	}
}

func TestReverseDNSMissingIsNotOutage(t *testing.T) {
	e := New(1)
	e.DNS().AddHostNoReverse("client.example.com", "10.9.9.9")
	if _, err := e.DNS().Reverse("10.9.9.9"); !errors.Is(err, ErrNoReverseDNS) {
		t.Errorf("want ErrNoReverseDNS, got %v", err)
	}
	// Time does not fix missing PTR records: it is a configuration condition.
	e.Advance(24 * time.Hour)
	if _, err := e.DNS().Reverse("10.9.9.9"); !errors.Is(err, ErrNoReverseDNS) {
		t.Errorf("PTR should still be missing after a day, got %v", err)
	}
}

func TestNetworkPorts(t *testing.T) {
	e := New(1)
	if err := e.Net().BindPort(80, "httpd"); err != nil {
		t.Fatal(err)
	}
	if err := e.Net().BindPort(80, "other"); !errors.Is(err, ErrPortInUse) {
		t.Errorf("want ErrPortInUse, got %v", err)
	}
	if err := e.Net().ReleasePort(80); err != nil {
		t.Fatal(err)
	}
	if err := e.Net().ReleasePort(80); err == nil {
		t.Error("release of unbound port should fail")
	}
}

func TestNetworkInterfaceRemoval(t *testing.T) {
	e := New(1)
	e.Net().RemoveInterface()
	if err := e.Net().BindPort(80, "httpd"); !errors.Is(err, ErrNetworkDown) {
		t.Errorf("want ErrNetworkDown, got %v", err)
	}
	if err := e.Net().AcquireResource(); !errors.Is(err, ErrNetworkDown) {
		t.Errorf("want ErrNetworkDown, got %v", err)
	}
	// Time alone does not reinsert a PCMCIA card.
	e.Advance(time.Hour)
	if e.Net().InterfacePresent() {
		t.Error("interface should remain absent")
	}
	e.Net().InsertInterface()
	if err := e.Net().BindPort(80, "httpd"); err != nil {
		t.Errorf("bind after reinsert: %v", err)
	}
}

func TestNetworkResourceExhaustion(t *testing.T) {
	e := New(1)
	e.Net().SetResourceCap(2)
	if err := e.Net().AcquireResource(); err != nil {
		t.Fatal(err)
	}
	if err := e.Net().AcquireResource(); err != nil {
		t.Fatal(err)
	}
	if err := e.Net().AcquireResource(); !errors.Is(err, ErrNetResourceExhausted) {
		t.Errorf("want ErrNetResourceExhausted, got %v", err)
	}
	e.Net().ReleaseResource()
	if err := e.Net().AcquireResource(); err != nil {
		t.Errorf("acquire after release: %v", err)
	}
}

func TestNetworkSlowHeals(t *testing.T) {
	e := New(1)
	e.Net().SlowFor(time.Minute)
	if !e.Net().Slow() {
		t.Fatal("network should be slow")
	}
	e.Advance(2 * time.Minute)
	if e.Net().Slow() {
		t.Error("slowness should heal with time")
	}
}

func TestEntropyStarvationAndRefill(t *testing.T) {
	e := New(1, WithEntropyBits(128))
	if err := e.Entropy().Draw(128); err != nil {
		t.Fatal(err)
	}
	if err := e.Entropy().Draw(1); !errors.Is(err, ErrEntropyStarved) {
		t.Errorf("want ErrEntropyStarved, got %v", err)
	}
	e.Advance(2 * time.Second) // refills at 64 bits/s
	if err := e.Entropy().Draw(120); err != nil {
		t.Errorf("draw after refill: %v", err)
	}
	if err := e.Entropy().Draw(-1); err == nil {
		t.Error("negative draw should fail")
	}
}

func TestEntropyCapped(t *testing.T) {
	e := New(1, WithEntropyBits(100))
	e.Advance(time.Hour)
	if got := e.Entropy().Bits(); got != 100 {
		t.Errorf("pool overfilled: %d bits", got)
	}
}

func TestSchedulerForce(t *testing.T) {
	e := New(1)
	e.Sched().Force("race-point", 0)
	for i := 0; i < 10; i++ {
		if got := e.Sched().Interleave("race-point", 5); got != 0 {
			t.Fatalf("forced interleave = %d", got)
		}
	}
	// Forced choice beyond range clamps.
	e.Sched().Force("clamp", 10)
	if got := e.Sched().Interleave("clamp", 3); got != 2 {
		t.Errorf("clamped choice = %d, want 2", got)
	}
	e.Sched().Unforce("race-point")
	if e.Sched().Describe() == "scheduler: free-running" {
		t.Error("clamp still forced; Describe should say so")
	}
	e.Sched().UnforceAll()
	if e.Sched().Describe() != "scheduler: free-running" {
		t.Error("UnforceAll should clear all pins")
	}
}

func TestRaceFiresWindowOne(t *testing.T) {
	e := New(1)
	if !e.Sched().RaceFires("always", 1) {
		t.Error("window 1 must always fire")
	}
	if !e.Sched().RaceFires("always0", 0) {
		t.Error("window 0 must always fire")
	}
}

// Property: disk accounting never goes negative and used never exceeds
// capacity under arbitrary append/remove sequences.
func TestDiskAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		e := New(1, WithDiskBytes(1<<20), WithMaxFileSize(1<<16))
		d := e.Disk()
		for i, op := range ops {
			name := []string{"/a", "/b", "/c"}[i%3]
			if op%2 == 0 {
				// Ignore errors: full disk / oversized appends must leave
				// accounting consistent.
				_ = d.Append(name, "p", int64(op))
			} else {
				_ = d.Remove(name)
			}
			if d.Used() < 0 || d.Used() > d.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the fd table never exceeds its limit and OwnedBy sums are
// consistent with InUse.
func TestFDTableInvariantProperty(t *testing.T) {
	f := func(seq []bool) bool {
		e := New(1, WithFDLimit(8))
		tbl := e.FDs()
		var open []FD
		for _, doOpen := range seq {
			if doOpen {
				fd, err := tbl.Open("p")
				if err == nil {
					open = append(open, fd)
				}
			} else if len(open) > 0 {
				_ = tbl.Close(open[len(open)-1])
				open = open[:len(open)-1]
			}
			if tbl.InUse() > tbl.Limit() || tbl.InUse() != len(open) {
				return false
			}
		}
		return tbl.OwnedBy("p") == len(open)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDiskAccessors(t *testing.T) {
	e := New(1, WithDiskBytes(1000), WithMaxFileSize(100))
	if err := e.Disk().Append("/x", "p", 40); err != nil {
		t.Fatal(err)
	}
	sz, err := e.Disk().Size("/x")
	if err != nil || sz != 40 {
		t.Errorf("Size = %d, %v", sz, err)
	}
	if _, err := e.Disk().Size("/missing"); err == nil {
		t.Error("Size of missing file should fail")
	}
	if err := e.Disk().Append("/y", "p", 10); err != nil {
		t.Fatal(err)
	}
	files := e.Disk().Files()
	if len(files) != 2 || files[0] != "/x" || files[1] != "/y" {
		t.Errorf("Files = %v", files)
	}
	e.Disk().SetMaxFileSize(200)
	if e.Disk().MaxFileSize() != 200 {
		t.Error("SetMaxFileSize not applied")
	}
	if err := e.Disk().Append("/x", "p", 150); err != nil {
		t.Errorf("append after raising the limit: %v", err)
	}
	if err := e.Disk().Append("/x", "p", -1); err == nil {
		t.Error("negative append should fail")
	}
}

func TestDNSModeStrings(t *testing.T) {
	e := New(1)
	if e.DNS().Mode() != DNSHealthy {
		t.Error("fresh dns should be healthy")
	}
	for _, m := range []DNSMode{DNSHealthy, DNSSlow, DNSFailing} {
		if m.String() == "" {
			t.Errorf("empty mode string for %d", int(m))
		}
	}
	if DNSMode(9).String() != "DNSMode(9)" {
		t.Error("unknown mode string")
	}
}

func TestEntropyDrainAndRate(t *testing.T) {
	e := New(1, WithEntropyBits(64))
	e.Entropy().Drain()
	if e.Entropy().Bits() != 0 {
		t.Error("drain did not empty the pool")
	}
	e.Entropy().SetRefillRate(128)
	e.Advance(time.Second)
	if got := e.Entropy().Bits(); got != 64 { // capped at initial capacity
		t.Errorf("bits after fast refill = %d, want capped 64", got)
	}
}

func TestNetResourceInUse(t *testing.T) {
	e := New(1)
	if err := e.Net().AcquireResource(); err != nil {
		t.Fatal(err)
	}
	if e.Net().ResourceInUse() != 1 {
		t.Error("ResourceInUse wrong")
	}
	e.Net().ReleaseResource()
	e.Net().ReleaseResource() // extra release is a no-op
	if e.Net().ResourceInUse() != 0 {
		t.Error("ResourceInUse after release wrong")
	}
}

func TestProcStateStringsAndAccessors(t *testing.T) {
	e := New(1, WithProcLimit(5))
	if e.Procs().Limit() != 5 {
		t.Error("Limit wrong")
	}
	pid, err := e.Procs().Spawn("p")
	if err != nil {
		t.Fatal(err)
	}
	if e.Procs().InUse() != 1 {
		t.Error("InUse wrong")
	}
	for _, s := range []ProcState{ProcRunning, ProcHung, ProcZombie} {
		if s.String() == "" {
			t.Errorf("empty state string for %d", int(s))
		}
	}
	if ProcState(9).String() != "ProcState(9)" {
		t.Error("unknown state string")
	}
	_ = e.Procs().Kill(pid)
}
