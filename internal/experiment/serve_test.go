package experiment

import (
	"bytes"
	"strings"
	"testing"

	"faultstudy/internal/taxonomy"
	"faultstudy/internal/traffic"
)

// serveDump renders everything a SERVE run produces: the report, the full
// request log, and the telemetry trace, timeline, and metric dumps.
func serveDump(t *testing.T, workers int) string {
	t.Helper()
	tel := NewTelemetry()
	rep, err := RunServe(ServeConfig{Seed: 42, Telemetry: tel, Workers: workers})
	if err != nil {
		t.Fatalf("RunServe(workers=%d): %v", workers, err)
	}
	var b bytes.Buffer
	b.WriteString(rep.String())
	if err := rep.WriteRequestLog(&b); err != nil {
		t.Fatalf("WriteRequestLog: %v", err)
	}
	if err := tel.WriteTrace(&b); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := tel.WriteTimeline(&b); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// TestServeWorkerInvariance is the determinism contract: every report,
// request log, trace, timeline, and metrics dump of the SERVE experiment is
// byte-identical at 1, 2, and 8 workers.
func TestServeWorkerInvariance(t *testing.T) {
	serial := serveDump(t, 1)
	for _, workers := range []int{2, 8} {
		if got := serveDump(t, workers); got != serial {
			t.Fatalf("SERVE output at %d workers differs from serial run", workers)
		}
	}
}

// TestServeGate runs the experiment once and asserts the CI gate plus the
// mechanics behind it: the EI SLO-burn ordering, full user coverage, at
// least two fault classes striking mid-traffic, and a valid request log.
func TestServeGate(t *testing.T) {
	tel := NewTelemetry()
	rep, err := RunServe(ServeConfig{Seed: 42, Telemetry: tel, Workers: 0})
	if err != nil {
		t.Fatalf("RunServe: %v", err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.Users < 1000 {
		t.Fatalf("users = %d, want >= 1000 simulated users", rep.Users)
	}
	if want := len(serveMechanisms()) * len(ServeRungs()); len(rep.Arms) != want {
		t.Fatalf("arms = %d, want %d (mechanisms x rungs)", len(rep.Arms), want)
	}

	// The EI burn ordering behind the headline.
	ei := taxonomy.ClassEnvIndependent
	if micro, restart := rep.BurnBy(ei, "microreboot"), rep.BurnBy(ei, "restart"); micro >= restart {
		t.Fatalf("EI burn: microreboot %.1fx, restart %.1fx — want strict win", micro, restart)
	}

	// At least two fault classes struck mid-traffic (episodes opened).
	classes := map[taxonomy.FaultClass]bool{}
	for _, a := range rep.Arms {
		if a.Episodes > 0 {
			classes[a.Class] = true
		}
	}
	if len(classes) < 2 {
		t.Fatalf("episodes opened in %d fault classes, want >= 2", len(classes))
	}

	// Every arm served the full schedule, every user saw traffic, and the
	// request log round-trips through the schema validator.
	var log bytes.Buffer
	if err := rep.WriteRequestLog(&log); err != nil {
		t.Fatalf("WriteRequestLog: %v", err)
	}
	recs, err := traffic.ReadRecords(&log)
	if err != nil {
		t.Fatalf("ReadRecords on own request log: %v", err)
	}
	if want := len(rep.Arms) * rep.Requests; len(recs) != want {
		t.Fatalf("request log holds %d records, want %d (arms x requests)", len(recs), want)
	}
	users := map[int]bool{}
	for _, rec := range recs {
		users[rec.User] = true
	}
	if len(users) != rep.Users {
		t.Fatalf("request log covers %d users, want %d", len(users), rep.Users)
	}
	for _, a := range rep.Arms {
		if a.Requests != rep.Requests {
			t.Fatalf("%s x %s: %d requests, want %d", a.Mechanism, a.Rung, a.Requests, rep.Requests)
		}
		if got := a.Good + a.Slow + a.Refused + a.Errored + a.Lost; got != a.Requests {
			t.Fatalf("%s x %s: outcomes sum to %d of %d requests", a.Mechanism, a.Rung, got, a.Requests)
		}
	}

	// Only the structural rungs refuse requests mid-reboot; process-level
	// rungs lose them outright.
	for _, a := range rep.Arms {
		if (a.Rung == "restore" || a.Rung == "restart" || a.Rung == "retry") && a.Refused > 0 {
			t.Fatalf("%s x %s: %d refused requests under a non-structural rung", a.Mechanism, a.Rung, a.Refused)
		}
	}

	// The serve metric family made it into telemetry.
	var prom bytes.Buffer
	if err := tel.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, name := range []string{MetricServeRequests, MetricServeRequestLatency,
		MetricServeEpisodes, MetricServeSLOBurn} {
		if !strings.Contains(prom.String(), name) {
			t.Fatalf("telemetry dump missing %s", name)
		}
	}
}

// TestServeMechanismSelection pins the fault axis: per daemon app, two EI
// plus one EDN plus one EDT mechanisms, all with scenarios, in sorted order.
func TestServeMechanismSelection(t *testing.T) {
	mechs := serveMechanisms()
	if len(mechs) != 8 {
		t.Fatalf("selected %d mechanisms, want 8", len(mechs))
	}
	perApp := map[string]map[taxonomy.FaultClass]int{}
	prevKey := map[string]string{}
	for _, m := range mechs {
		ns := strings.SplitN(m.Key, "/", 2)[0]
		if perApp[ns] == nil {
			perApp[ns] = map[taxonomy.FaultClass]int{}
		}
		perApp[ns][m.Class()]++
		if m.Key < prevKey[ns] {
			t.Fatalf("mechanism %q out of sorted order after %q", m.Key, prevKey[ns])
		}
		prevKey[ns] = m.Key
	}
	for _, ns := range []string{"httpd", "sqldb"} {
		got := perApp[ns]
		if got[taxonomy.ClassEnvIndependent] != 2 ||
			got[taxonomy.ClassEnvDependentNonTransient] != 1 ||
			got[taxonomy.ClassEnvDependentTransient] != 1 {
			t.Fatalf("%s selection = %v, want 2 EI + 1 EDN + 1 EDT", ns, got)
		}
	}
}

// TestServeConfigDefaults pins the documented defaults and the
// requests >= users floor.
func TestServeConfigDefaults(t *testing.T) {
	c := ServeConfig{}.withDefaults()
	if c.Users != 1200 || c.Requests != 2400 || c.Arrival != "poisson:1ms" {
		t.Fatalf("defaults = %d users, %d requests, %q", c.Users, c.Requests, c.Arrival)
	}
	if c.SLO != traffic.DefaultSLO() {
		t.Fatalf("default SLO = %+v", c.SLO)
	}
	c = ServeConfig{Users: 500, Requests: 100}.withDefaults()
	if c.Requests != 500 {
		t.Fatalf("requests floor = %d, want raised to users (500)", c.Requests)
	}
	if _, err := RunServe(ServeConfig{Arrival: "bogus"}); err == nil {
		t.Fatal("bogus arrival spec accepted")
	}
}
