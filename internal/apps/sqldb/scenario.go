package sqldb

import (
	"fmt"

	"faultstudy/internal/faultinject"
)

// Scenarios returns the executable reproduction of each seeded MySQL bug.
func Scenarios(srv *Server) map[string]faultinject.Scenario {
	env := srv.Env()
	q := func(sql string) faultinject.Op {
		return faultinject.Op{Name: sql, Do: func() error {
			_, err := srv.Exec(sql)
			return err
		}}
	}
	seedTable := func(rows int) []faultinject.Op {
		ops := []faultinject.Op{
			q("CREATE TABLE t (k INT, name TEXT)"),
			q("CREATE INDEX k_idx ON t (k)"),
		}
		for i := 1; i <= rows; i++ {
			ops = append(ops, q(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row%d')", i, i)))
		}
		return ops
	}

	scenarios := map[string]faultinject.Scenario{
		MechIndexUpdateScan: {
			Description: "an UPDATE moves indexed keys to values found later in the scan",
			Ops: append(seedTable(5),
				q("UPDATE t SET k = k + 1")),
		},
		MechOrderByEmpty: {
			Description: "a SELECT matching zero records carries an ORDER BY",
			Ops: append(seedTable(3),
				q("SELECT * FROM t WHERE k > 100 ORDER BY name")),
		},
		MechCountEmpty: {
			Description: "COUNT runs against a freshly created empty table",
			Ops: []faultinject.Op{
				q("CREATE TABLE empty_t (c INT)"),
				q("SELECT COUNT(c) FROM empty_t"),
			},
		},
		MechOptimizeCrash: {
			Description: "OPTIMIZE TABLE rebuilds a table",
			Ops: append(seedTable(3),
				q("OPTIMIZE TABLE t")),
		},
		MechFlushAfterLock: {
			Description: "FLUSH TABLES is issued while LOCK TABLES is held",
			Ops: append(seedTable(2),
				q("LOCK TABLES t READ"),
				q("FLUSH TABLES")),
		},
		MechFDCompetition: {
			Description: "a co-hosted web server consumes nearly every descriptor",
			Stage: func() {
				for env.FDs().Limit()-env.FDs().InUse() > 0 {
					if _, err := env.FDs().Open("httpd-neighbor"); err != nil {
						break
					}
				}
			},
			Ops: []faultinject.Op{q("CREATE TABLE t2 (c INT)")},
		},
		MechNoReverseDNS: {
			Description: "a client connects from an address with no PTR record",
			Stage: func() {
				env.DNS().AddHostNoReverse("client.remote.example", "10.7.7.7")
			},
			Ops: []faultinject.Op{{Name: "connect 10.7.7.7", Do: func() error {
				_, err := srv.Connect("10.7.7.7")
				return err
			}}},
		},
		MechDBFileLimit: {
			Description: "the table datafile reaches the maximum allowed file size",
			Stage: func() {
				_ = env.Disk().SetCapacity(1 << 30)
			},
			Ops: append([]faultinject.Op{
				q("CREATE TABLE big (c INT)"),
				{Name: "pre-grow datafile", Do: func() error {
					return env.Disk().Append("/var/db/big.ISD", Owner,
						env.Disk().MaxFileSize()-rowBytes/2)
				}},
			},
				q("INSERT INTO big VALUES (1)")),
		},
		MechFSFull: {
			Description: "another tenant fills the data partition",
			Ops: []faultinject.Op{
				q("CREATE TABLE t3 (c INT)"),
				{Name: "partition fills", Do: func() error {
					return env.Disk().FillFrom("other-tenant", rowBytes/2)
				}},
				q("INSERT INTO t3 VALUES (1)"),
			},
		},
		MechSignalMaskRace: {
			Description: "a signal lands inside the unmask window during a query",
			Stage:       func() { env.Sched().Force(MechSignalMaskRace, 0) },
			Ops: []faultinject.Op{
				q("CREATE TABLE r (c INT)"),
			},
		},
		MechLoginAdminRace: {
			Description: "a login interleaves with the administrator's privilege reload",
			Stage:       func() { env.Sched().Force(MechLoginAdminRace, 0) },
			Ops: []faultinject.Op{
				q("GRANT SELECT ON t TO newuser"),
				{Name: "login during reload", Do: func() error {
					_, err := srv.Connect("10.0.0.8")
					return err
				}},
			},
		},
	}

	for _, defect := range []string{"null-deref", "stale-buffer", "bad-init",
		"exec-loop", "bounds", "missing-check"} {
		key := "sqldb/" + defect
		tbl := "bug_" + underscore(defect)
		scenarios[key] = faultinject.Scenario{
			Description: "a query exercises the " + defect + " defect path",
			Ops: []faultinject.Op{
				q("CREATE TABLE " + tbl + " (c INT)"),
				q("SELECT * FROM " + tbl),
			},
		}
	}

	for key, sc := range scenarios {
		sc.Mechanism = key
		scenarios[key] = sc
	}
	return scenarios
}

func underscore(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '-' {
			out[i] = '_'
		} else {
			out[i] = s[i]
		}
	}
	return string(out)
}
