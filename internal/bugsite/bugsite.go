// Package bugsite generates and serves the study's three bug-report sources
// in their native formats: a GNATS problem-report tracker (bugs.apache.org),
// a debbugs tracker with a CVS log (bugs.gnome.org + cvs.gnome.org), and a
// mailing-list mbox archive (the geocrawler mysql list).
//
// Each site embeds the corpus's canonical faults among realistic clutter —
// duplicate reports of the same faults and non-qualifying noise (doc bugs,
// build problems, feature requests, beta-release reports, list chatter) — so
// the mining pipeline has real narrowing work to do, mirroring the paper's
// 5220→50, ~500→45, and 44k-messages→44 reductions.
//
// Generation is deterministic in Config.Seed: the same configuration always
// produces byte-identical sites.
package bugsite

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"

	"faultstudy/internal/corpus"
	"faultstudy/internal/scrape"
)

// Config controls site generation.
type Config struct {
	// Seed drives all randomness; sites with equal seeds are identical.
	Seed int64
	// DuplicateRate is the expected number of duplicate reports per
	// canonical fault (0 means 1.0).
	DuplicateRate float64
	// NoiseReports is the number of non-qualifying reports to mix in
	// (0 means the per-site default; negative means none).
	NoiseReports int
}

func (c Config) withDefaults(defaultNoise int) Config {
	if c.DuplicateRate == 0 {
		c.DuplicateRate = 1.0
	}
	if c.NoiseReports == 0 {
		c.NoiseReports = defaultNoise
	}
	if c.NoiseReports < 0 {
		c.NoiseReports = 0
	}
	return c
}

// dupText rewrites a fault's report text the way duplicate filers do: a new
// reporter voice around a quoted core, with an extra environment remark.
// The quoted core keeps the text similarity far above the dedup threshold.
func dupText(rng *rand.Rand, description string) string {
	openers := []string{
		"I believe this is the same problem discussed before, pasting my notes:",
		"Seeing this too. Original description matches exactly:",
		"Filing again since I cannot find a fix. Details:",
		"Same thing here after upgrading. To summarize:",
	}
	closers := []string{
		"In our case this is on a stock install.",
		"We can supply core files on request.",
		"Let me know if more information is needed.",
		"This blocks our deployment.",
	}
	return openers[rng.Intn(len(openers))] + "\n" + description + "\n" + closers[rng.Intn(len(closers))]
}

// dupCount draws the number of duplicates for one fault: rate 1.0 yields
// 0..2 with mean about 1.
func dupCount(rng *rand.Rand, rate float64) int {
	n := 0
	for f := rate; f > 0; f -= 1 {
		p := f
		if p > 1 {
			p = 1
		}
		// Two draws approximate the target mean while keeping the count
		// small and deterministic.
		if rng.Float64() < p {
			n++
		}
		if rng.Float64() < p/2 {
			n++
		}
	}
	return n
}

// htmlPage wraps body in a minimal page of the era.
func htmlPage(title, body string) string {
	return "<html><head><title>" + scrape.EncodeEntities(title) + "</title></head>\n<body>\n" +
		body + "\n</body></html>\n"
}

// preBlock escapes text into a <pre> block.
func preBlock(text string) string {
	return "<pre>\n" + scrape.EncodeEntities(text) + "\n</pre>"
}

// serveIndexed is a tiny router: exact path -> page content.
type serveIndexed map[string]string

func (s serveIndexed) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	page, ok := s[r.URL.Path]
	if !ok {
		http.NotFound(w, r)
		return
	}
	if strings.HasSuffix(r.URL.Path, ".mbox") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
	}
	fmt.Fprint(w, page)
}

// paths returns the sorted page paths (for tests and index generation).
func (s serveIndexed) paths() []string {
	out := make([]string, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// faultsSorted returns the app's corpus faults ordered by filing date then ID
// so generated artifact numbering is stable and chronological.
func faultsSorted(faults []*corpus.Fault) []*corpus.Fault {
	out := make([]*corpus.Fault, len(faults))
	copy(out, faults)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Filed.Equal(out[j].Filed) {
			return out[i].Filed.Before(out[j].Filed)
		}
		return out[i].ID < out[j].ID
	})
	return out
}
