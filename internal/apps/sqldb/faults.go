package sqldb

import (
	"strings"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/taxonomy"
)

// Mechanism keys for the seeded MySQL bugs.
const (
	// Named environment-independent bugs (§5.3).
	MechIndexUpdateScan = "sqldb/index-update-scan"
	MechOrderByEmpty    = "sqldb/orderby-empty"
	MechCountEmpty      = "sqldb/count-empty"
	MechOptimizeCrash   = "sqldb/optimize-crash"
	MechFlushAfterLock  = "sqldb/flush-after-lock"

	// Template-class environment-independent bugs.
	MechNullDeref    = "sqldb/null-deref"
	MechStaleBuffer  = "sqldb/stale-buffer"
	MechBadInit      = "sqldb/bad-init"
	MechExecLoop     = "sqldb/exec-loop"
	MechBounds       = "sqldb/bounds"
	MechMissingCheck = "sqldb/missing-check"

	// Environment-dependent-nontransient bugs.
	MechFDCompetition = "sqldb/fd-competition"
	MechNoReverseDNS  = "sqldb/no-reverse-dns"
	MechDBFileLimit   = "sqldb/db-file-limit"
	MechFSFull        = "sqldb/fs-full"

	// Environment-dependent-transient bugs.
	MechSignalMaskRace = "sqldb/signal-mask-race"
	MechLoginAdminRace = "sqldb/login-admin-race"
)

// RegisterMechanisms adds the database's seeded-bug catalogue to a registry.
func RegisterMechanisms(r *faultinject.Registry) {
	M := taxonomy.AppMySQL
	for _, m := range []faultinject.Mechanism{
		{Key: MechIndexUpdateScan, App: M, Trigger: taxonomy.TriggerWorkloadOnly, Description: "updating an indexed key to a value found later in the scan crashes the server"},
		{Key: MechOrderByEmpty, App: M, Trigger: taxonomy.TriggerWorkloadOnly, Description: "ORDER BY over zero matching records crashes the sort setup"},
		{Key: MechCountEmpty, App: M, Trigger: taxonomy.TriggerWorkloadOnly, Description: "COUNT on an empty table crashes"},
		{Key: MechOptimizeCrash, App: M, Trigger: taxonomy.TriggerWorkloadOnly, Description: "OPTIMIZE TABLE crashes in the rebuild path"},
		{Key: MechFlushAfterLock, App: M, Trigger: taxonomy.TriggerWorkloadOnly, Description: "FLUSH TABLES after LOCK TABLES crashes"},
		{Key: MechNullDeref, App: M, Trigger: taxonomy.TriggerWorkloadOnly, Description: "specific query shape dereferences a null handle"},
		{Key: MechStaleBuffer, App: M, Trigger: taxonomy.TriggerWorkloadOnly, Description: "reused sort buffer leaks rows between queries"},
		{Key: MechBadInit, App: M, Trigger: taxonomy.TriggerWorkloadOnly, Description: "descriptor used before initialization aborts the server"},
		{Key: MechExecLoop, App: M, Trigger: taxonomy.TriggerWorkloadOnly, Description: "executor re-enqueues the same work item forever"},
		{Key: MechBounds, App: M, Trigger: taxonomy.TriggerWorkloadOnly, Description: "row longer than the 16-bit length field corrupts headers"},
		{Key: MechMissingCheck, App: M, Trigger: taxonomy.TriggerWorkloadOnly, Description: "empty-result branch misses a bounds check"},
		{Key: MechFDCompetition, App: M, Trigger: taxonomy.TriggerFDExhaustion, Description: "a co-hosted web server exhausts the descriptors tables need"},
		{Key: MechNoReverseDNS, App: M, Trigger: taxonomy.TriggerHostConfig, Description: "connection from a host without a PTR record crashes the server"},
		{Key: MechDBFileLimit, App: M, Trigger: taxonomy.TriggerFileSizeLimit, Description: "datafile at the maximum file size fails inserts"},
		{Key: MechFSFull, App: M, Trigger: taxonomy.TriggerDiskFull, Description: "full file system prevents all operations"},
		{Key: MechSignalMaskRace, App: M, Trigger: taxonomy.TriggerRace, Description: "signal arrives inside the unmask window"},
		{Key: MechLoginAdminRace, App: M, Trigger: taxonomy.TriggerRace, Description: "login interleaves with a privilege reload"},
	} {
		r.MustRegister(m)
	}
}

// genericBugKey maps a "bug_<defect>" table name to its mechanism key, or "".
func genericBugKey(tableName string) string {
	defect, ok := strings.CutPrefix(tableName, "bug_")
	if !ok {
		return ""
	}
	key := "sqldb/" + strings.ReplaceAll(defect, "_", "-")
	switch key {
	case MechNullDeref, MechStaleBuffer, MechBadInit, MechExecLoop, MechBounds, MechMissingCheck:
		return key
	default:
		return ""
	}
}
