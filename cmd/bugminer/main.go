// Command bugminer mines a single bug source and prints the classified
// unique faults. Point it at any GNATS-style tracker, debbugs-style tracker,
// or mbox archive laid out like the study's sources — or pass -simulate to
// mine a generated one.
//
// Usage:
//
//	bugminer -source apache -url http://tracker.example   # mine a live site
//	bugminer -source mysql -simulate                      # self-serve and mine
//	bugminer -source apache -simulate -chaos 7            # ... under injected faults
//	bugminer -simulate -chaos 7 -resilience naive         # ... with the bare client
//
// -chaos activates the chaoshttp fault catalogue (seed-deterministic EDT and
// EDN faults) between the miner and the source: as server middleware when
// simulating, as a transport wrapper when mining a live URL. -resilience
// selects the client recovery policy the crawl runs under. Pages lost after
// the client exhausts recovery become gaps: the mine completes on the
// partial corpus and prints the gap report instead of dying mid-crawl.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"faultstudy"
	"faultstudy/internal/chaoshttp"
	"faultstudy/internal/core"
	"faultstudy/internal/resilient"
	"faultstudy/internal/scrape"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bugminer:", err)
		os.Exit(1)
	}
}

// wallClock drives a live-site chaos injector: stamps are real elapsed time
// and injected latency is really slept.
type wallClock struct{ start time.Time }

func (c wallClock) Now() time.Duration { return time.Since(c.start) } //faultlint:ignore wallclock live-site chaos stamps real elapsed time

func (c wallClock) Advance(d time.Duration) { time.Sleep(d) } //faultlint:ignore wallclock live-site chaos latency is really slept; simulated runs use the middleware instead

func run() error {
	var (
		source     = flag.String("source", "apache", "source kind: apache | gnome | mysql")
		url        = flag.String("url", "", "base URL of the source")
		simulate   = flag.Bool("simulate", false, "serve a simulated source and mine it")
		seed       = flag.Int64("seed", 1999, "simulated-site seed (with -simulate)")
		chaosSeed  = flag.Int64("chaos", 0, "inject the chaos fault catalogue with this seed (0 = off)")
		resilience = flag.String("resilience", "full", "client recovery policy: naive | retry | full")
	)
	flag.Parse()

	app, err := parseSource(*source)
	if err != nil {
		return err
	}
	policy, err := resilient.PolicyByName(*resilience)
	if err != nil {
		return err
	}
	chaosCfg := chaoshttp.Config{Seed: *chaosSeed, Faults: chaoshttp.Catalog()}

	base := *url
	var mw *chaoshttp.Middleware
	if *simulate {
		var handler http.Handler
		switch app {
		case faultstudy.AppApache:
			handler = faultstudy.NewApacheTrackerSite(faultstudy.SiteConfig{Seed: *seed})
		case faultstudy.AppGnome:
			handler = faultstudy.NewGnomeTrackerSite(faultstudy.SiteConfig{Seed: *seed})
		default:
			handler = faultstudy.NewMySQLArchiveSite(faultstudy.SiteConfig{Seed: *seed})
		}
		if *chaosSeed != 0 {
			mw = chaoshttp.NewMiddleware(chaosCfg, nil, handler)
			handler = mw
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: handler}
		defer srv.Close()
		go func() { _ = srv.Serve(ln) }()
		base = "http://" + ln.Addr().String()
		fmt.Printf("serving simulated %s source at %s\n", app, base)
	}
	if base == "" {
		return fmt.Errorf("need -url or -simulate")
	}

	// The resilient client fronts every fetch; chaos on a live URL wraps the
	// transport instead of the (unowned) server.
	transport := http.RoundTripper(http.DefaultTransport)
	var injector *chaoshttp.Injector
	if *chaosSeed != 0 && !*simulate {
		injector = chaoshttp.NewInjector(chaosCfg, transport, wallClock{start: time.Now()}) //faultlint:ignore wallclock live-site chaos epoch
		transport = injector
	}
	client := resilient.New(policy,
		resilient.WithTransport(transport),
		resilient.WithClock(resilient.NewRealClock()),
		resilient.WithRand(rand.New(rand.NewSource(*seed))))
	miner := &core.Miner{Options: []scrape.CrawlerOption{scrape.WithClient(client.HTTPClient())}}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var raw []*faultstudy.Report
	switch app {
	case faultstudy.AppApache:
		raw, err = miner.MineApache(ctx, base)
	case faultstudy.AppGnome:
		raw, err = miner.MineGnome(ctx, base)
	default:
		raw, err = miner.MineMySQL(ctx, base)
	}
	if err != nil {
		return err
	}

	res := faultstudy.ClassifyReports(raw, faultstudy.StudyOptions{})
	fmt.Printf("%d raw -> %d qualifying -> %d unique (%d duplicates)\n\n",
		res.Raw, res.Qualifying, res.Unique, res.Duplicates)
	for _, c := range res.Faults {
		fmt.Printf("[%s] %-10s %s\n", c.Result.Class.Short(), c.Result.Trigger, c.Report.Synopsis)
	}
	fmt.Println()
	fmt.Print(res.Table())
	printChaos(mw, injector)
	printRecovery(client.Stats(), miner.Gaps)
	return nil
}

// printChaos summarizes what the chaos layer injected, whichever shape it
// took.
func printChaos(mw *chaoshttp.Middleware, injector *chaoshttp.Injector) {
	var injections []chaoshttp.Injection
	switch {
	case mw != nil:
		injections = mw.Injections()
	case injector != nil:
		injections = injector.Injections()
	default:
		return
	}
	fmt.Printf("\nchaos: %d faults injected\n", len(injections))
}

// printRecovery reports the client's recovery spend and the gap report — the
// degraded-mode exit text that replaces dying mid-crawl.
func printRecovery(st resilient.Stats, gaps []scrape.Gap) {
	if st.Retries+st.Hedges+st.FastFails+st.BudgetDenied+st.Truncations > 0 {
		fmt.Printf("client recovery: %d retries, %d hedges, %d fast-fails, %d budget-denied, %d truncations\n",
			st.Retries, st.Hedges, st.FastFails, st.BudgetDenied, st.Truncations)
	}
	if len(gaps) == 0 {
		fmt.Println("no gaps: every reachable page was fetched")
		return
	}
	fmt.Printf("crawl degraded: %d pages lost after exhausting recovery\n", len(gaps))
	fmt.Print(scrape.RenderGapList(gaps))
}

func parseSource(s string) (faultstudy.Application, error) {
	switch s {
	case "apache":
		return faultstudy.AppApache, nil
	case "gnome":
		return faultstudy.AppGnome, nil
	case "mysql":
		return faultstudy.AppMySQL, nil
	default:
		return faultstudy.AppApache, fmt.Errorf("unknown source %q (want apache, gnome, or mysql)", s)
	}
}
