package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// formatFloat renders a float the same way every time: shortest exact
// representation, so exports are byte-stable.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders a sorted label list in exposition syntax, with an
// optional extra label appended (used for histogram le bounds).
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, 0, len(all))
	for _, l := range all {
		parts = append(parts, fmt.Sprintf("%s=%q", l.Name, escapeLabelValue(l.Value)))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every series in the Prometheus text exposition
// format (version 0.0.4), sorted by metric name then label set, with # HELP
// and # TYPE headers emitted once per metric name. A nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastName := ""
	for _, s := range r.sortedSeries() {
		if s.name != lastName {
			r.mu.Lock()
			help := r.help[s.name]
			r.mu.Unlock()
			if help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, typeName(s.kind))
			lastName = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, promLabels(s.labels), formatFloat(s.c.Value()))
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, promLabels(s.labels), formatFloat(s.g.Value()))
		case kindHistogram:
			bounds, cum, sum, total := s.h.snapshot()
			for i, ub := range bounds {
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name,
					promLabels(s.labels, Label{Name: "le", Value: formatFloat(ub)}), cum[i])
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name,
				promLabels(s.labels, Label{Name: "le", Value: "+Inf"}), cum[len(cum)-1])
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, promLabels(s.labels), formatFloat(sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.name, promLabels(s.labels), total)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// typeName maps a metric kind to its exposition-format type keyword.
func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// JSONMetric is one series in the JSON export.
type JSONMetric struct {
	// Name is the metric name.
	Name string `json:"name"`
	// Type is "counter", "gauge", or "histogram".
	Type string `json:"type"`
	// Help is the metric's help string, when registered.
	Help string `json:"help,omitempty"`
	// Labels is the series' label set.
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds counter and gauge values.
	Value *float64 `json:"value,omitempty"`
	// Buckets holds the histogram's cumulative bucket counts.
	Buckets []JSONBucket `json:"buckets,omitempty"`
	// Sum is the histogram's observation sum.
	Sum *float64 `json:"sum,omitempty"`
	// Count is the histogram's observation count.
	Count *uint64 `json:"count,omitempty"`
}

// JSONBucket is one cumulative histogram bucket in the JSON export.
type JSONBucket struct {
	// LE is the bucket's inclusive upper bound ("+Inf" for the last).
	LE string `json:"le"`
	// Count is the cumulative count of observations ≤ LE.
	Count uint64 `json:"count"`
}

// Export returns every series as JSONMetric values in stable order.
func (r *Registry) Export() []JSONMetric {
	if r == nil {
		return nil
	}
	var out []JSONMetric
	for _, s := range r.sortedSeries() {
		r.mu.Lock()
		help := r.help[s.name]
		r.mu.Unlock()
		m := JSONMetric{Name: s.name, Type: typeName(s.kind), Help: help}
		if len(s.labels) > 0 {
			m.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				m.Labels[l.Name] = l.Value
			}
		}
		switch s.kind {
		case kindCounter:
			v := s.c.Value()
			m.Value = &v
		case kindGauge:
			v := s.g.Value()
			m.Value = &v
		case kindHistogram:
			bounds, cum, sum, total := s.h.snapshot()
			for i, ub := range bounds {
				m.Buckets = append(m.Buckets, JSONBucket{LE: formatFloat(ub), Count: cum[i]})
			}
			m.Buckets = append(m.Buckets, JSONBucket{LE: "+Inf", Count: cum[len(cum)-1]})
			m.Sum = &sum
			m.Count = &total
		}
		out = append(out, m)
	}
	return out
}

// WriteJSON renders every series as an indented JSON document with stable
// ordering. A nil registry writes an empty metric list.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Metrics []JSONMetric `json:"metrics"`
	}{Metrics: r.Export()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
