// Package supervise is the production supervision layer over the paper's
// one-shot recovery strategies: a supervisor that keeps a simulated
// application serving a sustained workload while faults fire repeatedly.
//
// Where internal/recovery answers the paper's question — *does a single
// generic recovery survive fault X?* — this package answers the operator's
// question the paper's §8 future work points at: what does a supervisor that
// cannot know the fault class in advance have to do to keep the service up?
// The answer assembled here:
//
//   - a watchdog converts the paper's "application hangs" symptom class into
//     recoverable failures instead of stalled workloads;
//   - crash-loop detection applies exponential backoff with jitter and caps
//     retries with a per-window budget, so a recurring fault cannot consume
//     the machine;
//   - per-mechanism circuit breakers open after repeated recurrences — the
//     operational consequence of the paper's headline result that 72–87% of
//     faults are environment-independent and recur under any
//     state-preserving retry;
//   - an escalation ladder (retry-in-place → microreboot → restore-from-
//     snapshot → clean restart → degraded mode) spends the cheapest, most
//     state-preserving recovery first and discards more only when the
//     outcome doesn't change (after Candea & Fox's microreboots);
//   - a SupervisorReport accounts for every op and every recovery action
//     per fault mechanism.
package supervise

import (
	"errors"
	"fmt"
	"time"

	"faultstudy/internal/component"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/recovery"
)

// Pseudo-mechanism keys for failures the supervisor itself classifies.
const (
	// MechWatchdog tags operations abandoned by the wall-clock watchdog.
	MechWatchdog = "supervise/watchdog"
	// MechPanic tags operations that panicked.
	MechPanic = "supervise/panic"
	// MechUnmodeled tags failures outside the seeded-fault model (e.g. an
	// operation broken by state-discarding recovery).
	MechUnmodeled = "supervise/unmodeled"
)

// OpKind partitions workload operations for degraded mode: reads must keep
// being served, writes may be shed.
type OpKind int

const (
	// OpRead is an operation degraded mode must keep serving.
	OpRead OpKind = iota
	// OpWrite is an operation degraded mode may shed.
	OpWrite
)

// String names the kind.
func (k OpKind) String() string {
	if k == OpWrite {
		return "write"
	}
	return "read"
}

// Op is one supervised workload operation.
type Op struct {
	// Name identifies the operation in traces.
	Name string
	// Kind says whether degraded mode may shed it.
	Kind OpKind
	// Do executes the operation.
	Do func() error
}

// Degradable is implemented by applications that support a degraded mode —
// serve static/read traffic while suspending the write paths that need the
// exhausted resource. The supervisor engages it at the last ladder rung.
type Degradable interface {
	// SetDegraded switches degraded mode on or off.
	SetDegraded(bool)
}

// Config tunes a Supervisor. The zero value gets production-shaped defaults.
type Config struct {
	// Clock supplies time; nil means an EnvClock over the application's
	// environment.
	Clock Clock
	// Seed seeds the backoff jitter generator.
	Seed int64
	// WatchdogTimeout is the virtual time the watchdog charges when an
	// operation reports a hang symptom before declaring it failed
	// (0 means 30s).
	WatchdogTimeout time.Duration
	// WallTimeout, when positive, bounds the real time an operation may
	// block before the watchdog abandons it. Zero disables the wall-clock
	// watchdog (simulated operations return promptly).
	WallTimeout time.Duration
	// BackoffBase is the first backoff delay (0 means 1s).
	BackoffBase time.Duration
	// BackoffCap bounds the exponential backoff (0 means 4m).
	BackoffCap time.Duration
	// BackoffJitter is the uniform jitter fraction added to each delay
	// (negative means none; 0 means the default 0.25).
	BackoffJitter float64
	// RetryBudget is the maximum recovery attempts per RetryWindow before
	// the supervisor declares a crash loop and degrades (0 means 12).
	RetryBudget int
	// RetryWindow is the sliding window the budget applies to (0 means 30m).
	RetryWindow time.Duration
	// BreakerThreshold is the failed-recovery streak that opens a
	// mechanism's circuit breaker (0 means 10 — longer than a full ladder
	// walk, so the degraded rung is reached before the breaker counts out;
	// an exhausted ladder force-opens the breaker regardless).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting a
	// half-open trial (0 means 20m).
	BreakerCooldown time.Duration
	// RungAttempts is how many recovery attempts each ladder rung gets
	// before escalation (0 means 2 — the cumulative backoff across a full
	// ladder walk then spans minutes, long enough for the paper's
	// time-healing transient conditions to clear).
	RungAttempts int
	// CheckpointEvery is how many served ops pass between epoch snapshots —
	// the restore rung's rollback target (0 means 16).
	CheckpointEvery int
	// GrowResources applies the §6.2 resource governor before each recovery
	// action when the failure's cause is a growable environment resource.
	GrowResources bool
	// Trace, when non-nil, receives every supervision event.
	Trace func(Event)
}

func (c Config) withDefaults() Config {
	if c.WatchdogTimeout <= 0 {
		c.WatchdogTimeout = 30 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = time.Second
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 4 * time.Minute
	}
	if c.BackoffJitter == 0 {
		c.BackoffJitter = 0.25
	} else if c.BackoffJitter < 0 {
		c.BackoffJitter = 0
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 12
	}
	if c.RetryWindow <= 0 {
		c.RetryWindow = 30 * time.Minute
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 10
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 20 * time.Minute
	}
	if c.RungAttempts <= 0 {
		c.RungAttempts = 2
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 16
	}
	return c
}

// Supervisor drives one application under sustained workload, recovering
// from failures by policy. It is not safe for concurrent Run calls.
type Supervisor struct {
	cfg      Config
	app      recovery.Application
	clock    Clock
	backoff  *backoff
	breakers *breakerSet

	report     *Report
	epoch      []byte // last epoch checkpoint (restore rung target)
	sinceEpoch int
	degraded   bool
	retryLog   []time.Duration // monotonic stamps of recent retries
}

// New builds a supervisor over the application. The application may be
// started or stopped; Run starts it if needed.
func New(app recovery.Application, cfg Config) *Supervisor {
	cfg = cfg.withDefaults()
	clock := cfg.Clock
	if clock == nil {
		clock = EnvClock{Env: app.Env()}
	}
	return &Supervisor{
		cfg:      cfg,
		app:      app,
		clock:    clock,
		backoff:  newBackoff(cfg.BackoffBase, cfg.BackoffCap, cfg.BackoffJitter, seededRand(cfg.Seed)),
		breakers: newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
	}
}

// Report returns the accumulated report (valid during and after Run).
func (s *Supervisor) Report() *Report { return s.report }

// Run drives the ops through the application under supervision and returns
// the report. Errors are reserved for harness problems (checkpointing
// failed, the application cannot be brought up at all); every behaviour of
// the supervision policy itself lands in the report.
func (s *Supervisor) Run(ops []Op) (*Report, error) {
	s.report = newReport()
	s.retryLog = nil
	if !s.app.Running() {
		if err := s.app.Start(); err != nil {
			// One second chance: reclaim leftovers and reinitialize.
			s.app.Env().ReclaimOwner(s.app.Name())
			if rerr := s.app.Reset(); rerr != nil {
				return s.report, fmt.Errorf("supervise: start %s: %w", s.app.Name(), err)
			}
		}
	}
	defer func() {
		s.report.Breakers = s.breakers.states()
		s.app.Stop()
	}()

	snap, err := s.app.Snapshot()
	if err != nil {
		return s.report, fmt.Errorf("supervise: initial checkpoint: %w", err)
	}
	s.epoch = snap
	s.sinceEpoch = 0
	s.trace(Event{Kind: EventCheckpoint})

	for i, op := range ops {
		s.report.OpsTotal++
		if s.degraded && op.Kind == OpWrite {
			s.report.OpsShed++
			s.trace(Event{Kind: EventShed, Op: op.Name, Rung: RungDegraded})
			continue
		}
		preOp, err := s.app.Snapshot()
		if err != nil {
			return s.report, fmt.Errorf("supervise: checkpoint before %q: %w", op.Name, err)
		}
		// The episode clock starts at dispatch: a hang the watchdog has to
		// charge before the failure is even classified belongs to the
		// episode's repair time.
		dispatchedAt := s.clock.Now()
		opErr := s.execute(op)
		if opErr == nil {
			s.opServed(op, preOp)
			continue
		}
		if s.report.FirstFailureOp == 0 {
			s.report.FirstFailureOp = i + 1
		}
		res := s.superviseOp(i, op, preOp, opErr)
		// Stamp the episode's end at decision time — the clock reading at
		// which the verdict landed. Reading the clock here (not at the last
		// recovery action) is load-bearing: an episode that ends mid-ladder
		// has already slept its final backoff and charged its watchdog
		// timeouts, and the duration percentiles must include that time.
		s.endEpisode(dispatchedAt, res)
		switch res {
		case opRecovered:
			s.report.OpsOK++
			s.report.Recovered++
			s.sinceEpoch++ // recovered ops advance the epoch cadence too
		case opShed:
			s.report.OpsShed++
		default:
			s.report.OpsFailed++
		}
	}
	return s.report, nil
}

// endEpisode accounts one failure episode's duration, end-stamped at
// decision time.
func (s *Supervisor) endEpisode(dispatchedAt time.Duration, res opResult) {
	dur := s.clock.Now() - dispatchedAt
	s.report.EpisodeDurations = append(s.report.EpisodeDurations, dur)
	if res == opRecovered {
		s.report.RepairDurations = append(s.report.RepairDurations, dur)
	}
}

// opServed accounts a cleanly served op and refreshes the epoch checkpoint
// on cadence. preOp — taken immediately before the op — is known good.
func (s *Supervisor) opServed(op Op, preOp []byte) {
	s.report.OpsOK++
	s.sinceEpoch++
	if s.sinceEpoch >= s.cfg.CheckpointEvery {
		s.epoch = preOp
		s.sinceEpoch = 0
		s.trace(Event{Kind: EventCheckpoint, Op: op.Name})
	}
}

// opResult is the outcome of one failure episode.
type opResult int

const (
	opRecovered opResult = iota + 1
	opFailed
	opShed
)

// superviseOp walks one failing operation through the escalation ladder.
func (s *Supervisor) superviseOp(idx int, op Op, preOp []byte, initial error) opResult {
	mech := s.classify(initial)
	s.noteFailure(op, mech, 0, initial)

	if !s.breakers.allow(mech, s.clock.Now()) {
		s.report.mech(mech).FastFails++
		s.trace(Event{Kind: EventFastFail, Op: op.Name, Mechanism: mech, Err: initial})
		s.ensureRunning(preOp)
		return opFailed
	}

	rung := RungRetry
	attempt := 0   // episode-wide recovery attempts
	attemptAt := 0 // attempts spent on the current rung
	var lastFE *faultinject.FailureError
	lastFE, _ = faultinject.AsFailure(initial)

	for {
		if rung >= RungDegraded {
			return s.degradeAndFinish(idx, op, preOp, mech)
		}
		if !s.budgetAllows() {
			// Crash loop: the retry budget for this window is gone. Protect
			// the service instead of burning more retries.
			s.report.CrashLoopTrips++
			s.escalateTo(op, mech, RungDegraded)
			rung = RungDegraded
			continue
		}
		attempt++
		attemptAt++
		s.noteRetry()
		delay := s.backoff.next(attempt)
		s.report.BackoffTotal += delay
		s.trace(Event{Kind: EventBackoff, Op: op.Name, Mechanism: mech, Rung: rung, Attempt: attempt, Delay: delay})
		s.clock.Sleep(delay)

		target, err := s.applyRung(rung, preOp, mech, attempt, attemptAt, lastFE)
		if err != nil {
			// The recovery action itself failed (e.g. restore ran into the
			// same full disk): escalate immediately.
			s.trace(Event{Kind: EventAction, Op: op.Name, Mechanism: mech, Rung: rung, Attempt: attempt, Component: target, Err: err})
			s.escalateTo(op, mech, rung+1)
			rung++
			attemptAt = 0
			continue
		}
		s.trace(Event{Kind: EventAction, Op: op.Name, Mechanism: mech, Rung: rung, Attempt: attempt, Component: target})
		s.report.mech(mech).Retries++

		retryErr := s.execute(op)
		if retryErr == nil {
			s.report.mech(mech).Recoveries++
			s.breakers.success(mech)
			s.trace(Event{Kind: EventRetryOK, Op: op.Name, Mechanism: mech, Rung: rung, Attempt: attempt})
			return opRecovered
		}
		newMech := s.classify(retryErr)
		if newMech != mech {
			mech = newMech
		}
		s.noteFailure(op, mech, rung, retryErr)
		lastFE, _ = faultinject.AsFailure(retryErr)

		if s.breakers.failure(mech, s.clock.Now()) {
			s.report.mech(mech).BreakerOpens++
			s.trace(Event{Kind: EventBreakerOpen, Op: op.Name, Mechanism: mech, Rung: rung, Attempt: attempt, Err: retryErr})
			s.ensureRunning(preOp)
			s.trace(Event{Kind: EventGiveUp, Op: op.Name, Mechanism: mech, Rung: rung, Attempt: attempt, Err: retryErr})
			return opFailed
		}
		if attemptAt >= s.cfg.RungAttempts {
			s.escalateTo(op, mech, rung+1)
			rung++
			attemptAt = 0
		}
	}
}

// degradeAndFinish is the last rung: enter degraded mode, shed the op if it
// is a write, otherwise try it once degraded. A degraded retry that still
// fails proves the fault is not a resource/overload condition — degraded
// mode is reverted, full service resumes, and the mechanism's breaker opens.
func (s *Supervisor) degradeAndFinish(idx int, op Op, preOp []byte, mech string) opResult {
	s.enterDegraded(idx)
	s.ensureRunning(preOp)
	if op.Kind == OpWrite {
		s.trace(Event{Kind: EventShed, Op: op.Name, Mechanism: mech, Rung: RungDegraded})
		return opShed
	}
	s.report.mech(mech).Retries++
	s.noteRetry()
	if err := s.execute(op); err == nil {
		s.report.mech(mech).Recoveries++
		s.breakers.success(mech)
		s.trace(Event{Kind: EventRetryOK, Op: op.Name, Mechanism: mech, Rung: RungDegraded})
		return opRecovered
	}
	s.exitDegraded()
	if s.breakers.forceOpen(mech, s.clock.Now()) {
		s.report.mech(mech).BreakerOpens++
		s.trace(Event{Kind: EventBreakerOpen, Op: op.Name, Mechanism: mech, Rung: RungDegraded})
	}
	s.ensureRunning(preOp)
	s.trace(Event{Kind: EventGiveUp, Op: op.Name, Mechanism: mech, Rung: RungDegraded})
	return opFailed
}

// applyRung applies one ladder rung's recovery action. The first return
// value names the component a real microreboot targeted ("" for
// process-level actions). attemptAt is the attempt number within the current
// rung: the microreboot rung reboots the attributed component alone first
// and widens to its dependent subtree on the rung's later attempts.
func (s *Supervisor) applyRung(rung Rung, preOp []byte, mech string, attempt, attemptAt int, fe *faultinject.FailureError) (string, error) {
	env := s.app.Env()
	if s.cfg.GrowResources && fe != nil {
		recovery.GrowResources(env, fe)
	}
	perturb := func() {
		// Wang93: each retry deliberately forces a different interleaving at
		// the failing program point, so races are not retried into the same
		// losing schedule.
		env.Sched().UnforceAll()
		env.Reroll()
		env.Sched().Force(mech, attempt)
	}
	switch rung {
	case RungRetry:
		if s.app.Running() {
			perturb()
			return "", nil
		}
		s.app.Stop()
		env.ReclaimOwner(s.app.Name())
		perturb()
		return "", s.app.Restore(preOp)
	case RungMicroreboot:
		// A real microreboot, when the application is a component tree and
		// the mechanism attributes to a component: contain the crash to the
		// tree, then cycle the faulty component — its subtree on later
		// attempts — while siblings keep serving. No process stop, no
		// resource reclaim, no state restore: the crash-only contract makes
		// all three unnecessary.
		if host, ok := s.app.(component.Host); ok {
			if target, attributed := host.ComponentFor(mech); attributed {
				host.ContainCrash()
				perturb()
				if attemptAt <= 1 {
					return target, host.Tree().Reboot(target)
				}
				return target, host.Tree().RebootSubtree(target)
			}
		}
		// Monolithic fallback: the coarse component-level reboot that
		// preserves all logical state.
		s.app.Stop()
		env.ReclaimOwner(s.app.Name())
		perturb()
		return "", s.app.Restore(preOp)
	case RungRestore:
		s.app.Stop()
		env.ReclaimOwner(s.app.Name())
		perturb()
		return "", s.app.Restore(s.epoch)
	case RungRestart:
		s.app.Stop()
		env.ReclaimOwner(s.app.Name())
		perturb()
		return "", s.app.Reset()
	default:
		return "", fmt.Errorf("supervise: no action for rung %s", rung)
	}
}

// ensureRunning brings the application back up after an abandoned episode so
// the remaining workload keeps being served: restore the pre-op state, and
// fall back to a clean restart when even that fails.
func (s *Supervisor) ensureRunning(preOp []byte) {
	if s.app.Running() {
		return
	}
	env := s.app.Env()
	s.app.Stop()
	env.ReclaimOwner(s.app.Name())
	env.Sched().UnforceAll()
	env.Reroll()
	if err := s.app.Restore(preOp); err == nil {
		return
	}
	_ = s.app.Reset()
}

func (s *Supervisor) enterDegraded(idx int) {
	if s.degraded {
		return
	}
	s.degraded = true
	s.report.Degraded = true
	if s.report.DegradedAtOp == 0 {
		s.report.DegradedAtOp = idx + 1
	}
	s.report.Escalations[RungDegraded]++
	if d, ok := s.app.(Degradable); ok {
		d.SetDegraded(true)
	}
	s.trace(Event{Kind: EventDegraded, Rung: RungDegraded})
}

func (s *Supervisor) exitDegraded() {
	if !s.degraded {
		return
	}
	s.degraded = false
	s.report.Degraded = false
	if d, ok := s.app.(Degradable); ok {
		d.SetDegraded(false)
	}
	s.trace(Event{Kind: EventDegradedExit})
}

// escalateTo records a ladder escalation.
func (s *Supervisor) escalateTo(op Op, mech string, to Rung) {
	if to > RungDegraded {
		to = RungDegraded
	}
	s.report.mech(mech).Escalations++
	if to != RungDegraded { // degraded entry is counted by enterDegraded
		s.report.Escalations[to]++
	}
	s.trace(Event{Kind: EventEscalate, Op: op.Name, Mechanism: mech, Rung: to})
}

// budgetAllows prunes the retry log to the sliding window and reports
// whether another retry fits the budget.
func (s *Supervisor) budgetAllows() bool {
	now := s.clock.Now()
	keep := s.retryLog[:0]
	for _, t := range s.retryLog {
		if now-t < s.cfg.RetryWindow {
			keep = append(keep, t)
		}
	}
	s.retryLog = keep
	return len(s.retryLog) < s.cfg.RetryBudget
}

func (s *Supervisor) noteRetry() {
	s.retryLog = append(s.retryLog, s.clock.Now())
}

// noteFailure records one observed failure in the report. rung is the
// ladder rung whose retry just failed, or zero for the initial failure
// that opens the episode.
func (s *Supervisor) noteFailure(op Op, mech string, rung Rung, err error) {
	s.report.mech(mech).Failures++
	s.trace(Event{Kind: EventFailure, Op: op.Name, Mechanism: mech, Rung: rung, Err: err})
}

// classify maps an error to its fault mechanism key.
func (s *Supervisor) classify(err error) string {
	if fe, ok := faultinject.AsFailure(err); ok {
		return fe.Mechanism
	}
	var we *WatchdogError
	if errors.As(err, &we) {
		return MechWatchdog
	}
	var pe *panicError
	if errors.As(err, &pe) {
		return MechPanic
	}
	return MechUnmodeled
}

// trace emits an event to the configured hook, stamping it with the
// supervisor clock. Nothing is computed when no hook is configured.
func (s *Supervisor) trace(ev Event) {
	if s.cfg.Trace != nil {
		ev.At = s.clock.Now()
		s.cfg.Trace(ev)
	}
}
