package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"faultstudy/internal/apps/desktop"
	"faultstudy/internal/apps/httpd"
	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/parallel"
	"faultstudy/internal/recovery"
	"faultstudy/internal/simenv"
	"faultstudy/internal/stats"
	"faultstudy/internal/supervise"
	"faultstudy/internal/taxonomy"
	"faultstudy/internal/workload"
)

// SupervisorVerdict grades one supervised run for the matrix: unlike the
// bare strategies' binary survived/lost, the supervisor has a middle outcome
// — everything was served or deliberately shed, but at degraded service.
type SupervisorVerdict int

const (
	// VerdictNone means the supervisor was not run for this fault.
	VerdictNone SupervisorVerdict = iota
	// VerdictServed means every op was served at full service.
	VerdictServed
	// VerdictDegraded means no op was lost but the run ended degraded.
	VerdictDegraded
	// VerdictLost means at least one op was abandoned.
	VerdictLost
)

// String names the verdict.
func (v SupervisorVerdict) String() string {
	switch v {
	case VerdictNone:
		return "-"
	case VerdictServed:
		return "served"
	case VerdictDegraded:
		return "degraded"
	case VerdictLost:
		return "lost"
	default:
		return fmt.Sprintf("SupervisorVerdict(%d)", int(v))
	}
}

// verdictOf grades a supervisor report.
func verdictOf(rep *supervise.Report) SupervisorVerdict {
	switch {
	case !rep.Served():
		return VerdictLost
	case rep.Degraded:
		return VerdictDegraded
	default:
		return VerdictServed
	}
}

// opKindFor classifies a scenario or workload op name for degraded-mode
// shedding: conservative name-based heuristics per application namespace.
func opKindFor(mechanism, name string) supervise.OpKind {
	switch {
	case strings.HasPrefix(mechanism, "httpd/"):
		if strings.Contains(name, "/proxy/") || strings.Contains(name, "/cgi-bin/") ||
			strings.Contains(name, "SIGHUP") || strings.Contains(name, "restart") {
			return supervise.OpWrite
		}
		return supervise.OpRead
	case strings.HasPrefix(mechanism, "sqldb/"):
		if strings.HasPrefix(name, "SELECT") {
			return supervise.OpRead
		}
		return supervise.OpWrite
	case strings.HasPrefix(mechanism, "desktop/"):
		if strings.Contains(name, "play-sound") || strings.Contains(name, "set-cell") {
			return supervise.OpWrite
		}
		return supervise.OpRead
	case strings.HasPrefix(mechanism, "cache/"):
		if strings.HasPrefix(name, "SET") || strings.HasPrefix(name, "DEL") ||
			strings.HasPrefix(name, "FLUSH") {
			return supervise.OpWrite
		}
		return supervise.OpRead
	default:
		return supervise.OpRead
	}
}

// wrapScenarioOps converts scenario trigger ops into supervised ops.
func wrapScenarioOps(mechanism string, ops []faultinject.Op) []supervise.Op {
	out := make([]supervise.Op, 0, len(ops))
	for _, op := range ops {
		out = append(out, supervise.Op{Name: op.Name, Kind: opKindFor(mechanism, op.Name), Do: op.Do})
	}
	return out
}

// AddSupervised runs every corpus fault's scenario under a supervisor and
// records each verdict in the matrix, adding the paper-extension column that
// compares supervision against the bare one-shot strategies. Each fault gets
// a fresh environment and application, like the strategy runs. It is the
// single-worker, no-telemetry case of AddSupervisedWorkers.
func (m *Matrix) AddSupervised(seed int64, cfg supervise.Config) error {
	return m.AddSupervisedWorkers(seed, cfg, nil, 1)
}

// HasSupervised reports whether the supervisor column has been filled in.
func (m *Matrix) HasSupervised() bool {
	for _, fo := range m.PerFault {
		if fo.Supervised != VerdictNone {
			return true
		}
	}
	return false
}

// SupervisedRate returns the not-lost proportion (served or degraded) over
// faults of one class (all classes when class is ClassUnknown), plus how
// many of the hits were degraded.
func (m *Matrix) SupervisedRate(class taxonomy.FaultClass) (p stats.Proportion, degraded int) {
	for _, fo := range m.PerFault {
		if fo.Supervised == VerdictNone {
			continue
		}
		if class != taxonomy.ClassUnknown && fo.Class != class {
			continue
		}
		p.N++
		switch fo.Supervised {
		case VerdictServed:
			p.Hits++
		case VerdictDegraded:
			p.Hits++
			degraded++
		}
	}
	return p, degraded
}

// SoakConfig tunes the sustained-workload soak run.
type SoakConfig struct {
	// Ops is the base workload length per application (0 means 300).
	Ops int
	// Faults is how many seeded mechanisms are activated per application,
	// drawn at random from its catalogue (0 means 3).
	Faults int
	// Seed drives mechanism selection, workloads, and environments.
	Seed int64
	// Supervise tunes the supervisor; its Seed is defaulted from Seed.
	Supervise supervise.Config
	// Telemetry, when non-nil, receives metrics and fault episodes from every
	// application's run — the observability layer's soak wiring. Nil costs
	// nothing.
	Telemetry *Telemetry
	// Workers bounds the worker pool the three applications are sharded
	// over (0 or negative means one worker per processor; 1 is serial).
	// Results and telemetry are byte-identical at every worker count.
	Workers int
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Ops <= 0 {
		c.Ops = 300
	}
	if c.Faults <= 0 {
		c.Faults = 3
	}
	if c.Supervise.Seed == 0 {
		c.Supervise.Seed = c.Seed
	}
	return c
}

// workloadHook returns the workload-generation hook for the soak's telemetry,
// as a properly nil interface when telemetry is disabled.
func (c SoakConfig) workloadHook() workload.Hook {
	if c.Telemetry == nil {
		return nil
	}
	return c.Telemetry.workloadHook()
}

// workloadHTTP generates the web soak's base request stream, observed by the
// telemetry's workload hook when one is attached.
func workloadHTTP(cfg SoakConfig) []httpd.Request {
	return workload.HTTPRequestsObserved(cfg.Seed, workload.DefaultHTTPMix(), cfg.Ops, cfg.workloadHook())
}

// workloadSQL generates the database soak's base statement stream, observed.
func workloadSQL(cfg SoakConfig) []string {
	return workload.SQLStatementsObserved(cfg.Seed, cfg.Ops, cfg.workloadHook())
}

// workloadDesktop generates the desktop soak's base event stream, observed.
func workloadDesktop(cfg SoakConfig) []desktop.Event {
	return workload.DesktopEventsObserved(cfg.Seed, cfg.Ops, cfg.workloadHook())
}

// SoakResult is one application's soak outcome.
type SoakResult struct {
	// App is the simulated application.
	App taxonomy.Application
	// Mechanisms lists the seeded bugs activated, sorted.
	Mechanisms []string
	// Report is the supervisor's accounting.
	Report *supervise.Report
}

// pickMechanisms draws n distinct mechanism keys for the app from the
// registry with the given generator.
func pickMechanisms(app taxonomy.Application, n int, rng *rand.Rand) []string {
	var keys []string
	for _, mech := range Registry().ByApp(app) {
		keys = append(keys, mech.Key)
	}
	sort.Strings(keys)
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	if n > len(keys) {
		n = len(keys)
	}
	keys = keys[:n]
	sort.Strings(keys)
	return keys
}

// interleave inserts each trigger stream into the base stream at a random
// position at or past min, preserving each stream's internal order.
func interleave(base []supervise.Op, triggers [][]supervise.Op, min int, rng *rand.Rand) []supervise.Op {
	out := base
	for _, ts := range triggers {
		at := min
		if len(out) > min {
			at = min + rng.Intn(len(out)-min+1)
		}
		merged := make([]supervise.Op, 0, len(out)+len(ts))
		merged = append(merged, out[:at]...)
		merged = append(merged, ts...)
		merged = append(merged, out[at:]...)
		out = merged
	}
	return out
}

// soakApps is the fixed shard order of the soak: one shard per application,
// in the presentation (and historical serial-execution) order.
var soakApps = []taxonomy.Application{taxonomy.AppApache, taxonomy.AppMySQL, taxonomy.AppGnome}

// soakInstance is what a per-app soak builder hands back to the generic
// driver: the started application, its environment, the mechanism→scenario
// catalogue, the base workload ops, and where trigger streams may be
// interleaved from (the database keeps its schema-creating statements
// first).
type soakInstance struct {
	app       recovery.Application
	env       *simenv.Env
	scenarios map[string]faultinject.Scenario
	base      []supervise.Op
	minAt     int
}

// buildSoakInstance constructs one application's soak instance: environment,
// application with the chosen mechanisms seeded, and the base workload
// stream (observed by cfg's telemetry hook, if any).
func buildSoakInstance(cfg SoakConfig, app taxonomy.Application, mechs []string) (*soakInstance, error) {
	inst := &soakInstance{}
	switch app {
	case taxonomy.AppApache:
		inst.env = simenv.New(cfg.Seed, simenv.WithFDLimit(256), simenv.WithProcLimit(192))
		srv := httpd.New(inst.env, faultinject.NewSet(mechs...), httpd.Config{})
		inst.app = srv
		inst.scenarios = httpd.Scenarios(srv)
		for _, req := range workloadHTTP(cfg) {
			req := req
			name := req.Method + " " + req.Path
			inst.base = append(inst.base, supervise.Op{Name: name, Kind: opKindFor("httpd/", name), Do: func() error {
				_, err := srv.Serve(req)
				return err
			}})
		}
	case taxonomy.AppMySQL:
		inst.env = simenv.New(cfg.Seed, simenv.WithFDLimit(256))
		db := sqldb.New(inst.env, faultinject.NewSet(mechs...))
		inst.app = db
		inst.scenarios = sqldb.Scenarios(db)
		for _, stmt := range workloadSQL(cfg) {
			stmt := stmt
			inst.base = append(inst.base, supervise.Op{Name: stmt, Kind: opKindFor("sqldb/", stmt), Do: func() error {
				_, err := db.Exec(stmt)
				return err
			}})
		}
		// Keep the schema-creating statements first.
		inst.minAt = 2
	case taxonomy.AppGnome:
		inst.env = simenv.New(cfg.Seed, simenv.WithFDLimit(256))
		d := desktop.New(inst.env, faultinject.NewSet(mechs...))
		inst.app = d
		inst.scenarios = desktop.Scenarios(d)
		for _, ev := range workloadDesktop(cfg) {
			ev := ev
			name := ev.Widget + " " + ev.Action
			inst.base = append(inst.base, supervise.Op{Name: name, Kind: opKindFor("desktop/", name), Do: func() error {
				return d.Dispatch(ev)
			}})
		}
	default:
		return nil, fmt.Errorf("experiment: soak: unknown application %v", app)
	}
	return inst, nil
}

// runSoakApp drives one application's soak shard end to end: start, stage
// the chosen mechanisms, interleave their trigger ops into the base
// workload, and supervise the whole stream. Everything it does is a pure
// function of (cfg, app, rng state, mechs); it shares no state with other
// shards.
func runSoakApp(cfg SoakConfig, app taxonomy.Application, rng *rand.Rand, mechs []string) (*supervise.Report, error) {
	inst, err := buildSoakInstance(cfg, app, mechs)
	if err != nil {
		return nil, err
	}
	if err := inst.app.Start(); err != nil {
		return nil, fmt.Errorf("experiment: soak start: %w", err)
	}
	var triggers [][]supervise.Op
	for _, mech := range mechs {
		sc, ok := inst.scenarios[mech]
		if !ok {
			continue
		}
		if sc.Stage != nil {
			sc.Stage()
		}
		triggers = append(triggers, wrapScenarioOps(mech, sc.Ops))
	}
	supCfg, obs := cfg.Telemetry.superviseConfig(cfg.Supervise, soakContext(app))
	sup := supervise.New(inst.app, supCfg)
	rep, err := sup.Run(interleave(inst.base, triggers, inst.minAt, rng))
	obs.Flush(inst.env.Monotonic())
	return rep, err
}

// RunSoak drives all three applications under sustained workload with a
// random subset of their seeded bugs active — the supervision layer's
// integration exercise. Each application gets a fresh environment, the
// chosen mechanisms' environmental preconditions are staged, their trigger
// ops are interleaved into the base workload at random positions, and the
// supervisor keeps the service running as they fire. Deterministic in Seed.
//
// The three applications are independent shards run on a pool of
// cfg.Workers workers (0 means one per processor): each shard draws its
// randomness from a source seeded only by (Seed, app) and records into a
// private telemetry, and the shards are reduced in fixed application order —
// so reports, traces, and metric dumps are byte-identical at every worker
// count.
func RunSoak(cfg SoakConfig) ([]SoakResult, error) {
	cfg = cfg.withDefaults()
	results := make([]SoakResult, len(soakApps))
	shardTels := make([]*Telemetry, len(soakApps))
	err := parallel.ForEach(cfg.Workers, len(soakApps), func(i int) error {
		app := soakApps[i]
		shardCfg := cfg
		if cfg.Telemetry != nil {
			shardTels[i] = NewTelemetry()
			shardCfg.Telemetry = shardTels[i]
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(app)))
		mechs := pickMechanisms(app, cfg.Faults, rng)
		rep, err := runSoakApp(shardCfg, app, rng, mechs)
		if err != nil {
			return err
		}
		results[i] = SoakResult{App: app, Mechanisms: mechs, Report: rep}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := cfg.Telemetry.Merge(shardTels...); err != nil {
		return nil, err
	}
	return results, nil
}

// RenderSoak formats the soak results, one report per application.
func RenderSoak(results []SoakResult) string {
	var b strings.Builder
	for i, r := range results {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "=== %s soak (%d mechanisms active: %s) ===\n",
			r.App, len(r.Mechanisms), strings.Join(r.Mechanisms, ", "))
		b.WriteString(r.Report.String())
	}
	return b.String()
}
