package recovery

import (
	"fmt"

	"faultstudy/internal/faultinject"
)

// RunRejuvenating executes the scenario's workload with periodic software
// rejuvenation (paper §6.2, after Huang95): every interval operations the
// application is stopped and reinitialized through its application-specific
// recovery code, *before* any failure occurs. No reactive recovery is
// attempted — the point of rejuvenation is prevention — so the first failure
// is terminal.
//
// Rejuvenation discards accumulated application state, which is exactly what
// defeats the resource-accumulation faults (leaks, descriptor hoarding) that
// state-preserving generic recovery carries across failover.
func (m *Manager) RunRejuvenating(app Application, sc faultinject.Scenario, interval int) (Outcome, error) {
	out := Outcome{Mechanism: sc.Mechanism, Strategy: StrategyCleanRestart}
	if interval <= 0 {
		return out, fmt.Errorf("recovery: rejuvenation interval %d must be positive", interval)
	}
	if err := app.Start(); err != nil {
		return out, fmt.Errorf("recovery: start %s: %w", app.Name(), err)
	}
	defer app.Stop()
	if sc.Stage != nil {
		sc.Stage()
	}
	for i, op := range sc.Ops {
		if i > 0 && i%interval == 0 {
			app.Stop()
			app.Env().ReclaimOwner(app.Name())
			if err := app.Reset(); err != nil {
				return out, fmt.Errorf("recovery: rejuvenate before op %d: %w", i, err)
			}
			out.Recoveries++
		}
		if err := op.Do(); err != nil {
			fe, ok := faultinject.AsFailure(err)
			if !ok {
				return out, fmt.Errorf("recovery: op %q failed outside the fault model: %w", op.Name, err)
			}
			out.Failures++
			out.FirstFailure = fe
			out.Err = fe
			return out, nil
		}
	}
	out.Survived = true
	return out, nil
}
