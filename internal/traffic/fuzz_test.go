package traffic

import (
	"math"
	"testing"
)

// FuzzParseDistribution drives arbitrary strings through the parser and
// checks the invariants every accepted distribution must hold: at least one
// entry, every weight in (0, 100], weights summing to 100 within tolerance,
// no empty values, Sample total on the unit interval, and a String() form
// that re-parses to the same rendering.
func FuzzParseDistribution(f *testing.F) {
	for _, seed := range []string{
		"90%10ms,10%100ms",
		"100%ok",
		"50%timeout,30%connection,20%deadlock",
		"33.3%a,33.3%b,33.4%c",
		"99.999%hit,0.001%miss",
		"",
		"%",
		"100%",
		"0%a,100%b",
		"50%a,30%b",
		"NaN%a",
		"1e2%x",
		"100%a,",
		" 60%fast , 40%slow ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDistribution(s)
		if err != nil {
			return
		}
		entries := d.Entries()
		if len(entries) == 0 {
			t.Fatalf("accepted %q with zero entries", s)
		}
		sum := 0.0
		for _, e := range entries {
			if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) || e.Weight <= 0 || e.Weight > 100 {
				t.Fatalf("accepted %q with weight %v outside (0, 100]", s, e.Weight)
			}
			if e.Value == "" {
				t.Fatalf("accepted %q with an empty value", s)
			}
			sum += e.Weight
		}
		if math.Abs(sum-100) > distSumTolerance {
			t.Fatalf("accepted %q with weight sum %v", s, sum)
		}
		// Sampling across the unit interval must always land in the entry set.
		seen := map[string]bool{}
		for i := 0; i <= 100; i++ {
			seen[d.Sample(float64(i)/100)] = true
		}
		for v := range seen {
			ok := false
			for _, e := range entries {
				if e.Value == v {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("Sample of %q produced %q, not an entry value", s, v)
			}
		}
		// String must be stable under one re-parse.
		rendered := d.String()
		d2, err := ParseDistribution(rendered)
		if err != nil {
			t.Fatalf("String() of %q rendered %q which does not re-parse: %v", s, rendered, err)
		}
		if d2.String() != rendered {
			t.Fatalf("String round-trip unstable: %q -> %q", rendered, d2.String())
		}
	})
}
