package traffic

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Arrivals is an open-loop arrival process: Next returns the gap until the
// next request arrives, drawing any randomness from the caller's seeded rng
// so the whole schedule is a pure function of the seed.
type Arrivals interface {
	// Next returns the inter-arrival gap before the next request.
	Next(rng *rand.Rand) time.Duration
	// Mean returns the process's mean inter-arrival gap.
	Mean() time.Duration
}

// FixedRate arrives exactly every Interval — the deterministic pacing used
// where analytic in-window arithmetic matters more than realism.
type FixedRate struct {
	// Interval is the constant inter-arrival gap.
	Interval time.Duration
}

// Next returns the constant gap.
func (f FixedRate) Next(*rand.Rand) time.Duration { return f.Interval }

// Mean returns the constant gap.
func (f FixedRate) Mean() time.Duration { return f.Interval }

// Poisson is a Poisson arrival process: exponentially distributed
// inter-arrival gaps with the given mean — the classic open-loop model of
// independent users who do not coordinate their clicks.
type Poisson struct {
	// MeanGap is the mean inter-arrival gap (1/λ).
	MeanGap time.Duration
}

// Next draws one exponential gap from the caller's rng.
func (p Poisson) Next(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(p.MeanGap))
}

// Mean returns the mean gap.
func (p Poisson) Mean() time.Duration { return p.MeanGap }

// ParseArrivals parses an arrival-process spec of the form
//
//	poisson:<mean-gap> | fixed:<interval>
//
// e.g. "poisson:1ms" (Poisson arrivals, 1000 requests per simulated second on
// average) or "fixed:2ms". The duration is any positive time.ParseDuration
// string.
func ParseArrivals(spec string) (Arrivals, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("traffic: arrival spec %q has no ':' (want poisson:<gap> or fixed:<gap>)", spec)
	}
	gap, err := time.ParseDuration(strings.TrimSpace(arg))
	if err != nil {
		return nil, fmt.Errorf("traffic: arrival spec %q has a bad gap: %v", spec, err)
	}
	if gap <= 0 {
		return nil, fmt.Errorf("traffic: arrival spec %q needs a positive gap", spec)
	}
	switch strings.TrimSpace(kind) {
	case "poisson":
		return Poisson{MeanGap: gap}, nil
	case "fixed":
		return FixedRate{Interval: gap}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown arrival process %q (want poisson or fixed)", kind)
	}
}
