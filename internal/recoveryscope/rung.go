package recoveryscope

import "fmt"

// Rung is one level of the recovery ladder, ordered by cost: a larger rung
// discards strictly more state (and loses strictly more service) than a
// smaller one. A prediction "under-scopes" when it names a rung below the
// cheapest that actually cures the fault, and "over-scopes" when it names
// one above it.
type Rung int

const (
	// RungNone means no rung on the ladder cures the fault (the environment
	// persists across every generic mechanism — the paper's unrecoverable
	// EDN residue). It never appears as a prediction, only as measured truth.
	RungNone Rung = iota
	// RungRetry re-issues the operation after a scheduling perturbation,
	// discarding nothing.
	RungRetry
	// RungMicroreboot crash-stops and restarts the owning component alone,
	// discarding its volatile state while siblings serve.
	RungMicroreboot
	// RungSubtreeReboot crash-stops the owning component's dependent subtree
	// in reverse dependency order and restarts it forward.
	RungSubtreeReboot
	// RungRestore bounces the whole process and reinstates the pre-operation
	// snapshot — generic recovery that preserves all application state,
	// leaks included.
	RungRestore
	// RungRestart bounces the whole process into pristine state, discarding
	// all accumulated application state.
	RungRestart
)

// rungNames are the canonical report names; "subtree-reboot" matches the
// obsv summary ladder order.
var rungNames = map[Rung]string{
	RungNone:          "none",
	RungRetry:         "retry",
	RungMicroreboot:   "microreboot",
	RungSubtreeReboot: "subtree-reboot",
	RungRestore:       "restore",
	RungRestart:       "restart",
}

// String returns the canonical rung name.
func (r Rung) String() string {
	if s, ok := rungNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Rung(%d)", int(r))
}

// ParseRung parses a canonical rung name.
func ParseRung(v string) (Rung, error) {
	for r, s := range rungNames {
		if s == v {
			return r, nil
		}
	}
	return RungNone, fmt.Errorf("recoveryscope: unrecognized rung %q", v)
}

// Rungs returns the ladder in ascending cost order, RungNone excluded —
// the probe axis of the SCOPE experiment.
func Rungs() []Rung {
	return []Rung{RungRetry, RungMicroreboot, RungSubtreeReboot, RungRestore, RungRestart}
}
