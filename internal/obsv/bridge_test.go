package obsv

import (
	"errors"
	"testing"
	"time"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/recovery"
	"faultstudy/internal/supervise"
	"faultstudy/internal/taxonomy"
)

// TestObserverSuperviseStream replays a hand-written supervisor event stream
// — hang charge, failure, backoff, action, failed retry, escalation, served
// retry — and checks the episode and the metrics the bridge derives from it.
func TestObserverSuperviseStream(t *testing.T) {
	reg, rec := NewRegistry(), NewRecorder()
	obs := NewObserver(reg, rec, Context{App: "apache", Class: "EI"})
	var forwarded int
	hook := obs.SuperviseTrace(func(supervise.Event) { forwarded++ })

	sec := func(s int) time.Duration { return time.Duration(s) * time.Second }
	hangErr := faultinject.Fail("httpd/wedge", taxonomy.SymptomHang, "wedged")
	events := []supervise.Event{
		// chargeHang emits the watchdog event before the failure is
		// classified; the bridge must hold the span for the episode.
		{Kind: supervise.EventWatchdog, At: sec(30), Op: "GET /", Mechanism: "httpd/wedge", Err: hangErr},
		{Kind: supervise.EventFailure, At: sec(30), Op: "GET /", Mechanism: "httpd/wedge", Err: hangErr},
		{Kind: supervise.EventBackoff, At: sec(30), Op: "GET /", Mechanism: "httpd/wedge",
			Rung: supervise.RungRetry, Attempt: 1, Delay: sec(1)},
		{Kind: supervise.EventAction, At: sec(31), Op: "GET /", Mechanism: "httpd/wedge",
			Rung: supervise.RungRetry, Attempt: 1},
		{Kind: supervise.EventFailure, At: sec(61), Op: "GET /", Mechanism: "httpd/wedge", Err: hangErr,
			Rung: supervise.RungRetry},
		{Kind: supervise.EventEscalate, At: sec(61), Op: "GET /", Mechanism: "httpd/wedge",
			Rung: supervise.RungMicroreboot},
		{Kind: supervise.EventBackoff, At: sec(61), Op: "GET /", Mechanism: "httpd/wedge",
			Rung: supervise.RungMicroreboot, Attempt: 2, Delay: sec(2)},
		{Kind: supervise.EventAction, At: sec(63), Op: "GET /", Mechanism: "httpd/wedge",
			Rung: supervise.RungMicroreboot, Attempt: 2},
		{Kind: supervise.EventRetryOK, At: sec(63), Op: "GET /", Mechanism: "httpd/wedge",
			Rung: supervise.RungMicroreboot, Attempt: 2},
	}
	for _, ev := range events {
		hook(ev)
	}
	if forwarded != len(events) {
		t.Fatalf("forwarded %d events to next hook, want %d", forwarded, len(events))
	}

	eps := rec.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1", len(eps))
	}
	e := eps[0]
	if e.Outcome != OutcomeRecovered || e.FinalRung != "microreboot" {
		t.Errorf("episode = %s at %s, want recovered at microreboot", e.Outcome, e.FinalRung)
	}
	if e.Retries != 2 {
		t.Errorf("Retries = %d, want 2", e.Retries)
	}
	if e.Duration() != 33*time.Second {
		t.Errorf("Duration = %s, want 33s", e.Duration())
	}
	if e.Spans[0].Kind != SpanWatchdog {
		t.Errorf("first span = %s, want the held watchdog span", e.Spans[0].Kind)
	}

	if got := reg.Counter(MetricFailures, L("app", "apache", "class", "EI", "mechanism", "httpd/wedge")...).Value(); got != 2 {
		t.Errorf("failures counter = %v, want 2", got)
	}
	if got := reg.Counter(MetricEpisodes, L("app", "apache", "class", "EI", "outcome", OutcomeRecovered)...).Value(); got != 1 {
		t.Errorf("episodes counter = %v, want 1", got)
	}
	if got := reg.Counter(MetricBackoffSeconds, L("app", "apache")...).Value(); got != 3 {
		t.Errorf("backoff seconds = %v, want 3", got)
	}
	if got := reg.Histogram(MetricRetriesPerRecovery, RetryBuckets, L("app", "apache", "class", "EI")...).Count(); got != 1 {
		t.Errorf("retry histogram count = %v, want 1", got)
	}
	if got := reg.Counter(MetricWatchdogTimeouts, L("app", "apache", "mechanism", "httpd/wedge")...).Value(); got != 1 {
		t.Errorf("watchdog counter = %v, want 1", got)
	}
}

// TestObserverShedAndFastFail exercises the verdict paths that end episodes
// without a served retry.
func TestObserverShedAndFastFail(t *testing.T) {
	reg, rec := NewRegistry(), NewRecorder()
	obs := NewObserver(reg, rec, Context{App: "mysql", Class: "EDN"})
	hook := obs.SuperviseTrace(nil)
	err := errors.New("disk full")

	// Episode 1: degraded entry sheds the write.
	hook(supervise.Event{Kind: supervise.EventFailure, At: time.Second, Op: "INSERT", Mechanism: "sqldb/disk-full", Err: err})
	hook(supervise.Event{Kind: supervise.EventDegraded, At: 2 * time.Second, Rung: supervise.RungDegraded})
	hook(supervise.Event{Kind: supervise.EventShed, At: 2 * time.Second, Op: "INSERT", Rung: supervise.RungDegraded})
	// Steady-state shed: no open episode, metrics only.
	hook(supervise.Event{Kind: supervise.EventShed, At: 3 * time.Second, Op: "UPDATE", Rung: supervise.RungDegraded})
	// Episode 2: open breaker fast-fails the next failure.
	hook(supervise.Event{Kind: supervise.EventFailure, At: 4 * time.Second, Op: "INSERT", Mechanism: "sqldb/disk-full", Err: err})
	hook(supervise.Event{Kind: supervise.EventFastFail, At: 4 * time.Second, Op: "INSERT", Mechanism: "sqldb/disk-full", Err: err})

	eps := rec.Episodes()
	if len(eps) != 2 {
		t.Fatalf("episodes = %d, want 2", len(eps))
	}
	if eps[0].Outcome != OutcomeShed || eps[1].Outcome != OutcomeFastFail {
		t.Fatalf("outcomes = %s, %s", eps[0].Outcome, eps[1].Outcome)
	}
	if got := reg.Counter(MetricShedOps, L("app", "mysql")...).Value(); got != 2 {
		t.Errorf("shed counter = %v, want 2", got)
	}
	if got := reg.Gauge(MetricDegraded, L("app", "mysql")...).Value(); got != 1 {
		t.Errorf("degraded gauge = %v, want 1", got)
	}
	if got := reg.Counter(MetricFastFails, L("app", "mysql", "mechanism", "sqldb/disk-full")...).Value(); got != 1 {
		t.Errorf("fast-fail counter = %v, want 1", got)
	}
}

// TestRecoveryObserverStream replays a one-shot recovery trace and checks the
// strategy-labelled episode it produces.
func TestRecoveryObserverStream(t *testing.T) {
	reg, rec := NewRegistry(), NewRecorder()
	ro := NewRecoveryObserver(reg, rec, Context{App: "apache", FaultID: "apache-7", Class: "EDT"}, "process-pairs")
	hook := ro.Trace(nil)

	ferr := faultinject.Fail("httpd/dns-error", taxonomy.SymptomError, "lookup failed")
	hook(recovery.TraceEvent{Kind: recovery.TraceFailure, At: time.Second, Op: "GET", Err: ferr})
	hook(recovery.TraceEvent{Kind: recovery.TraceRecover, At: time.Second, Op: "GET", Attempt: 1})
	hook(recovery.TraceEvent{Kind: recovery.TraceRetryFail, At: 46 * time.Second, Op: "GET", Attempt: 1, Err: ferr})
	hook(recovery.TraceEvent{Kind: recovery.TraceRecover, At: 46 * time.Second, Op: "GET", Attempt: 2})
	hook(recovery.TraceEvent{Kind: recovery.TraceRetryOK, At: 91 * time.Second, Op: "GET", Attempt: 2})

	eps := rec.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1", len(eps))
	}
	e := eps[0]
	if e.Outcome != OutcomeRecovered || e.FinalRung != "process-pairs" || e.Retries != 2 {
		t.Errorf("episode = %+v", e)
	}
	if e.Mechanism != "httpd/dns-error" || e.Class != "EDT" {
		t.Errorf("identity = %s/%s", e.Mechanism, e.Class)
	}
	if e.Duration() != 90*time.Second {
		t.Errorf("Duration = %s, want 90s", e.Duration())
	}
	if got := reg.Counter(MetricRecoveries, L("app", "apache", "class", "EDT", "rung", "process-pairs")...).Value(); got != 1 {
		t.Errorf("recoveries = %v, want 1", got)
	}

	// A strategy with no recovery leaves the episode open; Flush closes it.
	hook(recovery.TraceEvent{Kind: recovery.TraceFailure, At: 100 * time.Second, Op: "GET", Err: ferr})
	if ep := ro.Flush(101 * time.Second); ep == nil || ep.Outcome != OutcomeLost {
		t.Fatalf("Flush = %+v, want lost episode", ep)
	}
}

// TestWorkloadHook checks the generation counter and its nil-safety.
func TestWorkloadHook(t *testing.T) {
	reg := NewRegistry()
	h := &WorkloadHook{Registry: reg}
	h.Generated("http", "static")
	h.Generated("http", "static")
	h.Generated("sql", "insert")
	if got := reg.Counter(MetricWorkloadOps, L("stream", "http", "category", "static")...).Value(); got != 2 {
		t.Errorf("workload counter = %v, want 2", got)
	}
	var nilHook *WorkloadHook
	nilHook.Generated("http", "static") // must not panic
	(&WorkloadHook{}).Generated("http", "static")
}
