// Package retryloop is a fixture: blind retry of environment-dependent
// operations, against the paced shapes that must not fire.
package retryloop

import "time"

type disk struct{}

func (disk) Append(name string, n int) error { return nil }

type sim struct{}

func (sim) Disk() disk { return disk{} }

// storm retries a persistent-condition operation with no pacing.
func storm(env sim) {
	for i := 0; i < 5; i++ { // want EDN
		if err := env.Disk().Append("wal", 1); err != nil {
			continue
		}
		return
	}
}

// until spins on the error in the loop condition.
func until(env sim) error {
	err := env.Disk().Append("wal", 1)
	for err != nil { // want EDN
		err = env.Disk().Append("wal", 1)
	}
	return err
}

// paced backs off between attempts: acceptable.
func paced(env sim) {
	for i := 0; i < 5; i++ {
		if err := env.Disk().Append("wal", 1); err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		return
	}
}

// bounded never retries on error: acceptable.
func bounded(env sim) error {
	for i := 0; i < 5; i++ {
		if err := env.Disk().Append("wal", 1); err != nil {
			return err
		}
	}
	return nil
}
