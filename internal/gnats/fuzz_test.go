package gnats

import (
	"strings"
	"testing"
)

// FuzzParsePR drives the GNATS parser with arbitrary input. The invariants:
// Parse never panics, never returns (nil, nil), and a successful parse yields
// a PR whose sections survive a reparse of nothing worse than the original —
// the parser is tolerant of unknown sections, so any accepted input must
// produce a structurally sane PR (synopsis and friends are plain strings, the
// audit trail carries no empty comments).
func FuzzParsePR(f *testing.F) {
	f.Add(samplePR)
	f.Add(">Number: 1\n>Synopsis: x\n")
	f.Add(">Number:\n")
	f.Add(">Number: 999999999999999999999999\n")
	f.Add(">Synopsis: no number section\n")
	f.Add("")
	f.Add(">Number: 2\n>Audit-Trail:\nState-Changed-From-To: open-closed\nState-Changed-Why:\n\n\nComment-Added-By: a\nx\n")
	f.Add(">Number: 3\n>Arrival-Date: not a date\n>Unformatted:\n\x00\xff\n")
	f.Fuzz(func(t *testing.T, input string) {
		pr, err := Parse(strings.NewReader(input))
		if err != nil {
			if pr != nil {
				t.Fatalf("Parse returned both a PR and an error: %v", err)
			}
			return
		}
		if pr == nil {
			t.Fatal("Parse returned (nil, nil)")
		}
		for i, c := range pr.AuditTrail {
			if strings.TrimSpace(c) == "" {
				t.Fatalf("audit trail comment %d is blank", i)
			}
		}
		// The symptom inference must accept any text a parsed PR can hold.
		_ = InferSymptom(pr.Description + " " + pr.Synopsis)
	})
}
