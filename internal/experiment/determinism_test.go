package experiment

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"faultstudy/internal/recovery"
	"faultstudy/internal/supervise"
)

// This file is the property-based half of the parallel engine's verification:
// for randomly drawn root seeds, every observable output — rendered reports,
// the JSONL episode trace, the Prometheus export — must be byte-identical at
// every worker count. The worker counts {1, 2, 8} cover the serial fast path,
// the smallest real pool, and a pool larger than any shard count divides
// evenly into.

// workerArms are the pool sizes every property below sweeps.
var workerArms = []int{1, 2, 8}

// soakFingerprint runs one telemetry-instrumented soak and returns its
// complete observable output.
func soakFingerprint(t *testing.T, seed int64, workers int) []byte {
	t.Helper()
	tel := NewTelemetry()
	results, err := RunSoak(SoakConfig{
		Ops: 120, Faults: 3, Seed: seed,
		Supervise: supervise.Config{GrowResources: true},
		Telemetry: tel,
		Workers:   workers,
	})
	if err != nil {
		t.Fatalf("RunSoak(seed=%d, workers=%d): %v", seed, workers, err)
	}
	return fingerprint(t, tel, RenderSoak(results))
}

// fingerprint concatenates a run's report, trace, and metric export into one
// comparable byte string.
func fingerprint(t *testing.T, tel *Telemetry, report string) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(report)
	buf.WriteString("\n--trace--\n")
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	buf.WriteString("\n--prom--\n")
	if err := tel.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.Bytes()
}

// TestSoakDeterminismProperty draws 32 random root seeds and checks the soak's
// full output is byte-identical across worker counts for every one of them.
func TestSoakDeterminismProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is long; skipped with -short")
	}
	rng := rand.New(rand.NewSource(20260806))
	for i := 0; i < 32; i++ {
		seed := rng.Int63n(1 << 32)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			want := soakFingerprint(t, seed, workerArms[0])
			for _, w := range workerArms[1:] {
				got := soakFingerprint(t, seed, w)
				if !bytes.Equal(want, got) {
					t.Errorf("workers=%d output differs from workers=1 (seed %d):\n%s",
						w, seed, firstDiff(want, got))
				}
			}
		})
	}
}

// supervisedFingerprint runs one telemetry-instrumented supervised matrix and
// returns its complete observable output.
func supervisedFingerprint(t *testing.T, seed int64, workers int) []byte {
	t.Helper()
	tel := NewTelemetry()
	m, err := RunMatrixWorkers(recovery.Policy{}, seed, workers)
	if err != nil {
		t.Fatalf("RunMatrixWorkers(seed=%d, workers=%d): %v", seed, workers, err)
	}
	cfg := supervise.Config{GrowResources: true}
	if err := m.AddSupervisedWorkers(seed, cfg, tel, workers); err != nil {
		t.Fatalf("AddSupervisedWorkers(seed=%d, workers=%d): %v", seed, workers, err)
	}
	return fingerprint(t, tel, m.String())
}

// TestSupervisedMatrixDeterminismProperty is the matrix-side property: fewer
// seeds (the matrix is the heavier sweep) but the same all-outputs identity.
func TestSupervisedMatrixDeterminismProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is long; skipped with -short")
	}
	rng := rand.New(rand.NewSource(19990215))
	for i := 0; i < 4; i++ {
		seed := rng.Int63n(1 << 32)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			want := supervisedFingerprint(t, seed, workerArms[0])
			for _, w := range workerArms[1:] {
				got := supervisedFingerprint(t, seed, w)
				if !bytes.Equal(want, got) {
					t.Errorf("workers=%d output differs from workers=1 (seed %d):\n%s",
						w, seed, firstDiff(want, got))
				}
			}
		})
	}
}

// TestLintDeterminism checks the lint sweep renders identically at every
// worker count (one seedless analysis; the analyzer result is shared).
func TestLintDeterminism(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, w := range workerArms {
		rep, err := RunLintWorkers(root, w)
		if err != nil {
			t.Fatalf("RunLintWorkers(workers=%d): %v", w, err)
		}
		got := rep.String()
		if w == workerArms[0] {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d lint report differs:\n%s", w, firstDiff([]byte(want), []byte(got)))
		}
	}
}

// firstDiff renders the first divergence between two outputs with context —
// a full dump of two multi-kilobyte artifacts would drown the signal.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	at := n
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			at = i
			break
		}
	}
	if at == n && len(a) == len(b) {
		return "(no byte difference)"
	}
	lo := at - 80
	if lo < 0 {
		lo = 0
	}
	hiA, hiB := at+80, at+80
	if hiA > len(a) {
		hiA = len(a)
	}
	if hiB > len(b) {
		hiB = len(b)
	}
	return fmt.Sprintf("first difference at byte %d\n--- a\n…%s…\n--- b\n…%s…", at, a[lo:hiA], b[lo:hiB])
}
