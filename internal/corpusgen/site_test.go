package corpusgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"faultstudy/internal/scrape"
)

func TestSitePageArithmetic(t *testing.T) {
	c := testCorpus(t, "faults=300", 17)
	s := NewSite(c)
	want := 0
	for i := 0; i < 300; i++ {
		d := c.dupCount(i)
		if d < 0 || d >= maxDupPages {
			t.Fatalf("dup count %d out of range", d)
		}
		want += 1 + d
	}
	if s.PRPages() != want {
		t.Fatalf("PRPages %d, want %d", s.PRPages(), want)
	}
	wantIdx := (want + sitePerPage - 1) / sitePerPage
	if s.IndexPages() != wantIdx {
		t.Fatalf("IndexPages %d, want %d", s.IndexPages(), wantIdx)
	}
	if s.PageCount() != 1+wantIdx+want {
		t.Fatalf("PageCount %d, want %d", s.PageCount(), 1+wantIdx+want)
	}
}

func TestSitePages(t *testing.T) {
	c := testCorpus(t, "faults=40", 3)
	s := NewSite(c)
	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/gen/"); code != http.StatusOK || !strings.Contains(body, "/gen/index/0") {
		t.Fatalf("root: code %d body %q", code, body)
	}
	if code, body := get("/gen/index/0"); code != http.StatusOK || !strings.Contains(body, "/gen/pr/0") {
		t.Fatalf("index: code %d body %q", code, body)
	}
	code, body := get("/gen/pr/0")
	if code != http.StatusOK || !strings.Contains(body, ">Synopsis:") || !strings.Contains(body, ">How-To-Repeat:") {
		t.Fatalf("canonical PR: code %d body %q", code, body)
	}
	// Find a duplicate page (first fault with a dup) and check it points home.
	for i, n := 0, 0; i < 40; i++ {
		d := c.dupCount(i)
		if d > 0 {
			_, dupBody := get(fmt.Sprintf("/gen/pr/%d", n+1))
			if !strings.Contains(dupBody, "duplicate") || !strings.Contains(dupBody, fmt.Sprintf("/gen/pr/%d", n)) {
				t.Fatalf("dup PR body %q lacks canonical link to %d", dupBody, n)
			}
			break
		}
		n += 1 + d
	}
	for _, bad := range []string{"/gen/pr/999999", "/gen/pr/x", "/gen/index/-1", "/elsewhere"} {
		if code, _ := get(bad); code != http.StatusNotFound {
			t.Errorf("%s: code %d, want 404", bad, code)
		}
	}
}

// TestSiteRenderingIsPure re-renders the same PR twice and across corpus
// instances: lazily rendered pages must be byte-identical.
func TestSiteRenderingIsPure(t *testing.T) {
	render := func() string {
		s := NewSite(testCorpus(t, "faults=25", 9))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/gen/pr/7", nil))
		return rec.Body.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("PR 7 rendering differs:\n%q\n%q", a, b)
	}
}

// TestSiteCrawlable crawls a whole small site through the real crawler: the
// root must reach every index and PR page with no gaps.
func TestSiteCrawlable(t *testing.T) {
	c := testCorpus(t, "faults=60", 21)
	site := NewSite(c)
	srv := httptest.NewServer(site)
	defer srv.Close()
	cr := scrape.NewCrawler(
		scrape.WithMaxPages(site.PageCount()+10),
		scrape.WithDelay(0),
		scrape.WithPathFilter("/gen"),
		scrape.WithClient(srv.Client()),
	)
	pages, err := cr.Crawl(context.Background(), srv.URL+"/gen/")
	if err != nil {
		t.Fatalf("crawl: %v", err)
	}
	if len(pages) != site.PageCount() {
		t.Fatalf("crawled %d pages, want %d", len(pages), site.PageCount())
	}
	for _, p := range pages {
		if p.Err != nil || p.Status != http.StatusOK {
			t.Fatalf("gap at %s: status %d err %v", p.URL, p.Status, p.Err)
		}
	}
}

// TestSiteScale sizes a 100k-page population without rendering it: the
// tentpole's at-scale emission claim, at prefix-sum cost only.
func TestSiteScale(t *testing.T) {
	c := testCorpus(t, "faults=50000", 2026)
	s := NewSite(c)
	if s.PRPages() < 100000 {
		t.Fatalf("50k faults yield %d PR pages, want >= 100000", s.PRPages())
	}
	// Spot-render a deep page to prove lazy rendering reaches the tail.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, fmt.Sprintf("/gen/pr/%d", s.PRPages()-1), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("tail PR: code %d", rec.Code)
	}
}
