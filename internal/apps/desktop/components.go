package desktop

import (
	"time"

	"faultstudy/internal/component"
	"faultstudy/internal/simenv"
)

// Component names of the componentized desktop session.
const (
	// CompSession is the event-dispatch loop every interaction routes
	// through — the root of the tree.
	CompSession = "desktop/session"
	// CompPanel is the panel with its applets and menus.
	CompPanel = "desktop/panel"
	// CompCalendar is the calendar (gnome-pim).
	CompCalendar = "desktop/calendar"
	// CompGnumeric is the spreadsheet.
	CompGnumeric = "desktop/gnumeric"
	// CompGmc is the file manager.
	CompGmc = "desktop/gmc"
	// CompSound is the event-sound utility and its sockets; crash-stopping it
	// releases every leaked socket.
	CompSound = "desktop/sound"
)

// UIBucket is the externalized-store bucket holding UI session state (the
// calendar view) that must survive a widget reboot.
const UIBucket = "desktop/ui"

// Reboot costs on the virtual clock, in simulated milliseconds.
const (
	sessionStartCost  = 7 * time.Millisecond
	panelStartCost    = 3 * time.Millisecond
	calendarStartCost = 2 * time.Millisecond
	gnumericStartCost = 4 * time.Millisecond
	gmcStartCost      = 3 * time.Millisecond
	soundStartCost    = 1 * time.Millisecond
)

// deskComponentFor maps each seeded mechanism to the component its defect
// lives in.
var deskComponentFor = map[string]string{
	MechTasklistTab:      CompPanel,
	MechMenuFreeze:       CompPanel,
	MechAppletRace:       CompPanel,
	MechStaleWidget:      CompPanel,
	MechCalendarPrev:     CompCalendar,
	MechGnumericTab:      CompGnumeric,
	MechBadInit:          CompGnumeric,
	MechDoubleFree:       CompGnumeric,
	MechTypeMismatch:     CompGnumeric,
	MechGmcTarGz:         CompGmc,
	MechIllegalOwner:     CompGmc,
	MechViewerRace:       CompGmc,
	MechOffByOne:         CompGmc,
	MechSoundSocketLeak:  CompSound,
	MechEventLoopStall:   CompSession,
	MechConfigTruncate:   CompSession,
	MechUnknownTransient: CompSession,
	MechHostnameChange:   CompSession,
}

// Componentized is the crash-only decomposition of the desktop: each widget
// is its own component, UI session state (the calendar view) lives in the
// externalized store, and crash-stopping a widget closes its dialogs and
// releases its sockets — rebooting one applet no longer means logging out.
type Componentized struct {
	desk  *Desktop
	store *component.Store
	tree  *component.Tree
}

// Componentize wraps a desktop session into its component tree over the
// given externalized store.
func Componentize(desk *Desktop, store *component.Store) *Componentized {
	c := &Componentized{
		desk:  desk,
		store: store,
		tree:  component.NewTree(component.EnvClock{Env: desk.env}),
	}
	d := desk
	c.tree.MustAdd(component.Spec{StartCost: sessionStartCost, Component: component.NewPart(CompSession, component.Hooks{})})
	c.tree.MustAdd(component.Spec{StartCost: panelStartCost, Deps: []string{CompSession}, Component: component.NewPart(CompPanel, component.Hooks{
		// Crash-stopping the panel releases the pointer grab a frozen menu
		// holds — the microreboot answer to the menu-freeze hang.
		OnKill: func() {
			d.mu.Lock()
			defer d.mu.Unlock()
			d.menuOpen = false
		},
	})})
	c.tree.MustAdd(component.Spec{StartCost: calendarStartCost, Deps: []string{CompSession}, Component: component.NewPart(CompCalendar, component.Hooks{
		OnKill: func() {
			d.mu.Lock()
			defer d.mu.Unlock()
			d.calendarView = "month"
		},
		// The rebooted calendar rehydrates the user's view from the
		// externalized store: the reboot is invisible to the session.
		OnStart: func() error {
			if view, ok := store.Get(UIBucket, "calendarView"); ok {
				d.mu.Lock()
				d.calendarView = view
				d.mu.Unlock()
			}
			return nil
		},
	})})
	c.tree.MustAdd(component.Spec{StartCost: gnumericStartCost, Deps: []string{CompSession}, Component: component.NewPart(CompGnumeric, component.Hooks{
		// A rebooted spreadsheet comes back with its dialogs closed — the
		// poisoned focus chain is gone while the cells (document state)
		// survive in the snapshot-carried state.
		OnKill: func() {
			d.mu.Lock()
			defer d.mu.Unlock()
			d.dialogOpen = ""
		},
	})})
	c.tree.MustAdd(component.Spec{StartCost: gmcStartCost, Deps: []string{CompSession}, Component: component.NewPart(CompGmc, component.Hooks{})})
	c.tree.MustAdd(component.Spec{StartCost: soundStartCost, Deps: []string{CompSession}, Component: component.NewPart(CompSound, component.Hooks{
		// Crash-stopping the sound utility closes every leaked socket.
		OnKill: func() {
			d.mu.Lock()
			defer d.mu.Unlock()
			d.closeSoundFDsLocked()
			d.soundFDWant = 0
		},
	})})
	return c
}

// Name returns the environment owner tag.
func (c *Componentized) Name() string { return Owner }

// Env returns the underlying environment.
func (c *Componentized) Env() *simenv.Env { return c.desk.Env() }

// Running reports whether the simulated session process is alive.
func (c *Componentized) Running() bool { return c.desk.Running() }

// Start boots the session and brings every component up.
func (c *Componentized) Start() error {
	if err := c.desk.Start(); err != nil {
		return err
	}
	return c.tree.StartAll()
}

// Stop crash-stops the tree and shuts the session down.
func (c *Componentized) Stop() {
	c.tree.StopAll()
	c.desk.Stop()
}

// Snapshot captures the session's logical state; the store is outside it.
func (c *Componentized) Snapshot() ([]byte, error) { return c.desk.Snapshot() }

// Restore replaces session state from a snapshot and brings the tree up.
func (c *Componentized) Restore(snapshot []byte) error {
	if err := c.desk.Restore(snapshot); err != nil {
		return err
	}
	return c.tree.StartAll()
}

// Reset logs out and back in, then brings the tree up; the store survives.
func (c *Componentized) Reset() error {
	if err := c.desk.Reset(); err != nil {
		return err
	}
	return c.tree.StartAll()
}

// Tree returns the component tree.
func (c *Componentized) Tree() *component.Tree { return c.tree }

// Store returns the externalized UI-state store.
func (c *Componentized) Store() *component.Store { return c.store }

// ComponentFor maps a mechanism key to the component its defect lives in.
func (c *Componentized) ComponentFor(mechanism string) (string, bool) {
	name, ok := deskComponentFor[mechanism]
	return name, ok
}

// ContainCrash revives the process-level liveness flag after a crash that
// the component tree contains.
func (c *Componentized) ContainCrash() {
	c.desk.mu.Lock()
	defer c.desk.mu.Unlock()
	c.desk.running = true
}

// widgetComponent maps an event's widget to the component it routes through
// (besides the session loop, which everything routes through).
func widgetComponent(ev Event) []string {
	route := []string{CompSession}
	switch ev.Widget {
	case "panel":
		route = append(route, CompPanel)
	case "calendar":
		route = append(route, CompCalendar)
	case "gnumeric":
		route = append(route, CompGnumeric)
	case "gmc":
		route = append(route, CompGmc)
	case "session":
		if ev.Action == "play-sound" {
			route = append(route, CompSound)
		}
	}
	return route
}

// Dispatch routes one user event through the component tree: events whose
// widget is down fail fast with DownError while every other widget stays
// interactive. Calendar view changes are mirrored into the externalized
// store so a rebooted calendar comes back showing the same view.
func (c *Componentized) Dispatch(ev Event) error {
	for _, name := range widgetComponent(ev) {
		if !c.tree.Running(name) {
			return component.Down(name)
		}
	}
	if err := c.desk.Dispatch(ev); err != nil {
		return err
	}
	if ev.Widget == "calendar" {
		switch ev.Action {
		case "view-year":
			c.store.Put(UIBucket, "calendarView", "year")
		case "view-month":
			c.store.Put(UIBucket, "calendarView", "month")
		}
	}
	return nil
}
