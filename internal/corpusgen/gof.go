package corpusgen

import (
	"fmt"
	"math"
	"strings"

	"faultstudy/internal/traffic"
)

// Statistical validation of the samplers: Pearson chi-squared goodness of
// fit of each sampled dimension's observed frequencies against the spec's
// declared distribution. The significance level is fixed at alpha = 0.001 —
// tight enough that a correctly seeded sampler essentially never trips it,
// loose enough that a real sampler bug (a skipped draw, a biased pool, a
// reused seed) blows through it immediately.

// gofZ is the 0.999 standard-normal quantile.
const gofZ = 3.090232

// GOFBucket is one value's observed-versus-expected cell.
type GOFBucket struct {
	// Value is the distribution value (class key, app name, span text, ...).
	Value string
	// Observed is the sampled count.
	Observed int
	// Expected is the spec-implied count (weight% of N).
	Expected float64
}

// GOFResult is one dimension's chi-squared goodness-of-fit test.
type GOFResult struct {
	// Dimension names the sampled dimension (class, app, defect, lifetime,
	// overlap, gap).
	Dimension string
	// N is the sample size.
	N int
	// ChiSquare is the Pearson statistic over the spec's buckets.
	ChiSquare float64
	// DOF is the degrees of freedom (buckets - 1).
	DOF int
	// Critical is the alpha = 0.001 critical value for DOF.
	Critical float64
	// Buckets holds every cell, in the spec's declaration order.
	Buckets []GOFBucket
}

// Pass reports whether the observed frequencies are consistent with the
// spec's distribution at alpha = 0.001. Dimensions with a single bucket
// trivially pass, as does an empty sample.
func (g GOFResult) Pass() bool {
	if g.N == 0 || g.DOF <= 0 {
		return true
	}
	return g.ChiSquare <= g.Critical
}

// String renders the test with every observed-versus-expected cell, so a
// failure message shows exactly which bucket drifted.
func (g GOFResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d chi2=%.3f dof=%d crit=%.3f", g.Dimension, g.N, g.ChiSquare, g.DOF, g.Critical)
	if g.Pass() {
		b.WriteString(" pass")
	} else {
		b.WriteString(" FAIL")
	}
	for _, bk := range g.Buckets {
		fmt.Fprintf(&b, " [%s obs=%d exp=%.1f]", bk.Value, bk.Observed, bk.Expected)
	}
	return b.String()
}

// chiCrit001 holds the exact upper alpha = 0.001 chi-squared critical
// values for small degrees of freedom, where the Wilson–Hilferty cube is a
// few percent off; larger dof fall back to the approximation, which is
// within a fraction of a percent there.
var chiCrit001 = []float64{
	0, 10.828, 13.816, 16.266, 18.467, 20.515,
	22.458, 24.322, 26.125, 27.877, 29.588,
}

// ChiSquareCritical returns the upper alpha = 0.001 critical value of the
// chi-squared distribution with dof degrees of freedom: exact table values
// for dof <= 10, the Wilson–Hilferty cube approximation beyond.
func ChiSquareCritical(dof int) float64 {
	if dof <= 0 {
		return 0
	}
	if dof < len(chiCrit001) {
		return chiCrit001[dof]
	}
	k := float64(dof)
	t := 1 - 2/(9*k) + gofZ*math.Sqrt(2/(9*k))
	return k * t * t * t
}

// FitDist tests observed samples against a declared distribution. Duplicate
// values in the distribution are merged (their weights summed); an observed
// value absent from the distribution makes the statistic infinite, because a
// sampler can only legally emit declared values.
func FitDist(dimension string, dist *traffic.Dist, observed []string) GOFResult {
	var order []string
	weight := make(map[string]float64)
	for _, e := range dist.Entries() {
		if _, seen := weight[e.Value]; !seen {
			order = append(order, e.Value)
		}
		weight[e.Value] += e.Weight
	}
	counts := make(map[string]int, len(order))
	foreign := 0
	for _, v := range observed {
		if _, ok := weight[v]; !ok {
			foreign++
			continue
		}
		counts[v]++
	}
	n := len(observed)
	g := GOFResult{Dimension: dimension, N: n, DOF: len(order) - 1, Critical: ChiSquareCritical(len(order) - 1)}
	for _, v := range order {
		exp := weight[v] / 100 * float64(n)
		obs := counts[v]
		g.Buckets = append(g.Buckets, GOFBucket{Value: v, Observed: obs, Expected: exp})
		if exp > 0 {
			d := float64(obs) - exp
			g.ChiSquare += d * d / exp
		} else if obs > 0 {
			g.ChiSquare = math.Inf(1)
		}
	}
	if foreign > 0 {
		g.ChiSquare = math.Inf(1)
		g.Buckets = append(g.Buckets, GOFBucket{Value: "<undeclared>", Observed: foreign})
	}
	return g
}

// GoodnessOfFit tests every sampled dimension of a generated population:
// class, app, defect, and lifetime over the faults; overlap and gap over the
// episodes (skipped when there are none).
func (c *Corpus) GoodnessOfFit(faults []*GenFault, episodes []*Episode) []GOFResult {
	classes := make([]string, len(faults))
	apps := make([]string, len(faults))
	defects := make([]string, len(faults))
	lifetimes := make([]string, len(faults))
	for i, f := range faults {
		classes[i] = classKeys[f.Class]
		apps[i] = f.AppName
		defects[i] = f.Defect
		lifetimes[i] = f.LifetimeText
	}
	out := []GOFResult{
		FitDist("class", c.spec.Class, classes),
		FitDist("app", c.spec.App, apps),
		FitDist("defect", c.spec.Defect, defects),
		FitDist("lifetime", c.spec.Lifetime, lifetimes),
	}
	if len(episodes) > 0 {
		overlaps := make([]string, len(episodes))
		gaps := make([]string, len(episodes))
		for j, e := range episodes {
			overlaps[j] = e.Overlap
			gaps[j] = e.GapText
		}
		out = append(out,
			FitDist("overlap", c.spec.Overlap, overlaps),
			FitDist("gap", c.spec.Gap, gaps))
	}
	return out
}
