package bugsite

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"time"

	"faultstudy/internal/corpus"
	"faultstudy/internal/taxonomy"
)

// apacheSeverityName renders a taxonomy severity in GNATS spelling.
func apacheSeverityName(s taxonomy.Severity) string {
	switch s {
	case taxonomy.SeverityCritical:
		return "critical"
	case taxonomy.SeveritySerious:
		return "serious"
	case taxonomy.SeverityMinor:
		return "non-critical"
	case taxonomy.SeverityWishlist:
		return "change-request"
	default:
		return "non-critical"
	}
}

// gnatsPR renders one GNATS problem report.
func gnatsPR(number int, category, synopsis, severity, class, release, env, desc, howto, fix string, arrival time.Time, audit []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, ">Number:         %d\n", number)
	fmt.Fprintf(&b, ">Category:       %s\n", category)
	fmt.Fprintf(&b, ">Synopsis:       %s\n", synopsis)
	b.WriteString(">Confidential:   no\n")
	fmt.Fprintf(&b, ">Severity:       %s\n", severity)
	b.WriteString(">Priority:       medium\n>Responsible:    apache\n>State:          closed\n")
	fmt.Fprintf(&b, ">Class:          %s\n", class)
	b.WriteString(">Submitter-Id:   apache\n")
	fmt.Fprintf(&b, ">Arrival-Date:   %s\n", arrival.Format("Mon Jan 2 15:04:05 MST 2006"))
	b.WriteString(">Originator:     user@example.com\n>Organization:\n")
	fmt.Fprintf(&b, ">Release:        %s\n", release)
	fmt.Fprintf(&b, ">Environment:\n%s\n", env)
	fmt.Fprintf(&b, ">Description:\n%s\n", desc)
	fmt.Fprintf(&b, ">How-To-Repeat:\n%s\n", howto)
	fix = strings.TrimSpace(fix)
	if fix == "" {
		fix = "unknown"
	}
	fmt.Fprintf(&b, ">Fix:\n%s\n", fix)
	b.WriteString(">Audit-Trail:\n")
	for i, comment := range audit {
		fmt.Fprintf(&b, "Comment-Added-By: dev%d\nComment-Added-When: %s\nComment-Added:\n%s\n",
			i+1, arrival.AddDate(0, 0, i+2).Format("Mon Jan 2 15:04:05 MST 2006"), comment)
	}
	b.WriteString(">Unformatted:\n")
	return b.String()
}

// ApachePRs generates the raw GNATS problem reports of the simulated Apache
// tracker: one canonical PR per corpus fault, duplicate PRs per the
// configured rate, and noise PRs that fail the study's inclusion bar.
// The returned map is PR number -> report text.
func ApachePRs(cfg Config) map[int]string {
	cfg = cfg.withDefaults(220)
	rng := rand.New(rand.NewSource(cfg.Seed))
	prs := make(map[int]string)
	next := 1001

	for _, f := range faultsSorted(corpus.Apache()) {
		env := "Generic Unix, gcc"
		audit := []string{"Confirmed by the maintainer.", "Fix committed; see the next release."}
		prs[next] = gnatsPR(next, f.Component, f.Synopsis,
			apacheSeverityName(f.Severity), "sw-bug", f.Release, env,
			f.Description, f.HowToRepeat, f.Fix, f.Filed, audit)
		next++
		for d := 0; d < dupCount(rng, cfg.DuplicateRate); d++ {
			filed := f.Filed.AddDate(0, 0, 7*(d+1)+rng.Intn(5))
			prs[next] = gnatsPR(next, f.Component, f.Synopsis,
				apacheSeverityName(f.Severity), "sw-bug", f.Release, env,
				dupText(rng, f.Description+"\n"+f.HowToRepeat),
				"See above; identical to the earlier report.", "", filed, nil)
			next++
		}
	}

	for i := 0; i < cfg.NoiseReports; i++ {
		n := apacheNoise(rng, i)
		prs[next] = gnatsPR(next, n.category, n.synopsis, n.severity, n.class,
			n.release, "assorted", n.description, n.howto, "",
			time.Date(1998, time.Month(1+i%12), 1+i%27, 9, 0, 0, 0, time.UTC), nil)
		next++
	}
	return prs
}

type noiseReport struct {
	category    string
	synopsis    string
	severity    string
	class       string
	release     string
	description string
	howto       string
}

// apacheNoise synthesizes one non-qualifying Apache PR: documentation bugs,
// build problems, feature requests, mild misbehaviour, and serious reports
// against beta releases — all of which the study's filter discards.
func apacheNoise(rng *rand.Rand, i int) noiseReport {
	kinds := []noiseReport{
		{
			category: "documentation", synopsis: "typo in the mod_rewrite guide",
			severity: "non-critical", class: "doc-bug", release: "1.3.3",
			description: "The RewriteCond example in the guide swaps the pattern and the test string.",
			howto:       "Read the second example in the rewrite guide.",
		},
		{
			category: "config", synopsis: "confusing warning about ServerName at startup",
			severity: "non-critical", class: "sw-bug", release: "1.3.1",
			description: "The warning wording is confusing when ServerName is derived from DNS; cosmetic only.",
			howto:       "Start the server without ServerName set.",
		},
		{
			category: "build", synopsis: "configure mis-detects pthreads on an old libc",
			severity: "serious", class: "sw-bug", release: "1.3b6 beta",
			description: "On a beta build, configure picks the wrong thread flags and the binary will not link.",
			howto:       "Run configure on the beta tarball.",
		},
		{
			category: "general", synopsis: "please add an option to colorize directory listings",
			severity: "change-request", class: "change-request", release: "1.3.2",
			description: "It would be nice if mod_autoindex could colorize listings by file type.",
			howto:       "Feature request; nothing to repeat.",
		},
		{
			category: "os-windows", synopsis: "installer leaves a stray shortcut on the desktop",
			severity: "non-critical", class: "sw-bug", release: "1.3.4",
			description: "After installation a duplicate shortcut appears; harmless but untidy.",
			howto:       "Run the installer with default options.",
		},
		{
			category: "mod_cgi", synopsis: "slow cgi scripts make the status page boring",
			severity: "non-critical", class: "mistaken", release: "1.3.0",
			description: "Turned out to be our script taking forever; not a server problem after all.",
			howto:       "n/a",
		},
	}
	n := kinds[i%len(kinds)]
	// Light per-report variation keeps noise from deduping to one record.
	n.synopsis = fmt.Sprintf("%s (site %d)", n.synopsis, rng.Intn(1000))
	n.description = fmt.Sprintf("%s Reported from host h%03d.example.com.", n.description, i)
	return n
}

// NewApacheSite serves the simulated bugs.apache.org: a paged PR index and
// one page per PR with the GNATS text in a <pre> block.
func NewApacheSite(cfg Config) http.Handler {
	prs := ApachePRs(cfg)
	pages := make(serveIndexed, len(prs)+2)

	numbers := make([]int, 0, len(prs))
	for n := range prs {
		numbers = append(numbers, n)
	}
	sort.Ints(numbers)

	const perPage = 100
	var indexLinks []string
	for start := 0; start < len(numbers); start += perPage {
		end := start + perPage
		if end > len(numbers) {
			end = len(numbers)
		}
		var b strings.Builder
		b.WriteString("<h1>Apache Problem Report Database</h1>\n<ul>\n")
		for _, n := range numbers[start:end] {
			fmt.Fprintf(&b, `<li><a href="/bugdb/pr/%d">PR %d</a></li>`+"\n", n, n)
		}
		b.WriteString("</ul>\n")
		path := fmt.Sprintf("/bugdb/index/%d", start/perPage+1)
		if start == 0 {
			path = "/bugdb/"
		}
		pages[path] = "" // placeholder; links appended below
		indexLinks = append(indexLinks, path)
		pages[path] = b.String()
	}
	// Chain index pages together.
	for i, path := range indexLinks {
		var nav strings.Builder
		nav.WriteString(pages[path])
		if i+1 < len(indexLinks) {
			fmt.Fprintf(&nav, `<p><a href="%s">next page</a></p>`+"\n", indexLinks[i+1])
		}
		pages[path] = htmlPage("Apache bug database", nav.String())
	}

	for n, text := range prs {
		pages[fmt.Sprintf("/bugdb/pr/%d", n)] = htmlPage(
			fmt.Sprintf("PR %d", n),
			fmt.Sprintf("<h1>Problem Report %d</h1>\n%s", n, preBlock(text)))
	}
	return pages
}
