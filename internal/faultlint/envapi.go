package faultlint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"faultstudy/internal/taxonomy"
)

// This file is the exported surface other analyses build on. The envsite
// rule's internals — environment-call recognition, the guard-path backward
// walk, fail-site recognition — are re-exported here so that
// internal/recoveryscope can extend the same judgment interprocedurally
// without re-deriving (and drifting from) the intraprocedural semantics.

// EnvOp is one recognized operation against the simulated environment,
// together with the trigger kind it stands for under the paper's §5 rules.
type EnvOp struct {
	// Facility is the env getter ("FDs", "Disk", ... or "Env" for direct
	// methods such as Hostname).
	Facility string
	// Method is the operation name.
	Method string
	// Pos is the call position.
	Pos token.Pos
	// Trigger is the trigger kind the operation stands for;
	// Trigger.DefaultClass() yields the predicted fault class.
	Trigger taxonomy.TriggerKind
}

// AsEnvOp recognizes a call against the simulated environment
// (x.FDs().Open(...), s.env.Hostname()) and resolves its trigger kind.
func AsEnvOp(call *ast.CallExpr) (EnvOp, bool) {
	ec, ok := asEnvCall(call)
	if !ok {
		return EnvOp{}, false
	}
	return EnvOp{Facility: ec.Facility, Method: ec.Method, Pos: ec.Pos, Trigger: envCallTrigger(ec)}, true
}

// EnvOpsIn gathers every recognized environment operation inside a subtree,
// in source order.
func EnvOpsIn(n ast.Node) []EnvOp {
	var calls []envCall
	collectEnvCalls(n, &calls)
	out := make([]EnvOp, 0, len(calls))
	for _, c := range calls {
		out = append(out, EnvOp{Facility: c.Facility, Method: c.Method, Pos: c.Pos, Trigger: envCallTrigger(c)})
	}
	return out
}

// GuardNodes returns the syntax regions that guard a site, innermost first:
// the init/cond/tag expressions of enclosing if/switch/for/range statements
// and the simple sibling statements preceding the site in each enclosing
// block, bounded by the enclosing function. These are exactly the regions
// the envsite rule scans for environment calls; recoveryscope scans the same
// regions for calls into environment-reaching functions.
func GuardNodes(site token.Pos, stack []ast.Node) []ast.Node {
	var out []ast.Node
	add := func(n ast.Node) {
		if n != nil {
			out = append(out, n)
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			i = -1 // do not escape the enclosing function
		case *ast.IfStmt:
			add(n.Init)
			add(n.Cond)
		case *ast.SwitchStmt:
			add(n.Init)
			add(n.Tag)
		case *ast.ForStmt:
			add(n.Init)
			add(n.Cond)
		case *ast.RangeStmt:
			add(n.X)
		case *ast.BlockStmt:
			// Locate the child statement our path goes through, then walk its
			// earlier simple siblings.
			var child ast.Node
			if i+1 < len(stack) {
				child = stack[i+1]
			}
			for _, stmt := range n.List {
				if child != nil && stmt.Pos() <= child.Pos() && child.End() <= stmt.End() {
					break
				}
				if isSimpleStmt(stmt) && stmt.End() <= site {
					add(stmt)
				}
			}
		}
		if i < 0 {
			break
		}
	}
	return out
}

// GuardCalls returns every call expression inside the guard regions of a
// site that starts before the site, in source order. Callers filter these
// down to calls they can resolve (direct env operations, or functions whose
// summaries show transitive environment dependence).
func GuardCalls(site token.Pos, stack []ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	for _, n := range GuardNodes(site, stack) {
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && call.Pos() < site {
				out = append(out, call)
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// NearestEnvOp finds the environment operation that guards a site: the
// latest-positioned recognized env call preceding the site within its guard
// regions. This is the exact intraprocedural judgment of the envsite rule.
func NearestEnvOp(site token.Pos, stack []ast.Node) (EnvOp, bool) {
	ec, ok := nearestEnvCall(site, stack)
	if !ok {
		return EnvOp{}, false
	}
	return EnvOp{Facility: ec.Facility, Method: ec.Method, Pos: ec.Pos, Trigger: envCallTrigger(ec)}, true
}

// FailSite is one recognized seeded fault-raise site: a call to
// faultinject.Fail or faultinject.FailCause.
type FailSite struct {
	// Call is the raise expression.
	Call *ast.CallExpr
	// WithCause distinguishes FailCause (wraps an environment error by
	// contract) from Fail.
	WithCause bool
	// Mechanisms lists the registry keys the site speaks for: the constant
	// first argument, or the constants of the enclosing case clause.
	Mechanisms []string
	// Symptom is the declared failure symptom (taxonomy.Symptom* second
	// argument), SymptomUnknown when not syntactically resolvable.
	Symptom taxonomy.Symptom
}

// AsFailSite recognizes a faultinject.Fail/FailCause call and resolves its
// mechanism keys and declared symptom.
func (p *Package) AsFailSite(f *ast.File, call *ast.CallExpr, stack []ast.Node) (FailSite, bool) {
	isFail, withCause := p.asFailCall(f, call)
	if !isFail {
		return FailSite{}, false
	}
	return FailSite{
		Call:       call,
		WithCause:  withCause,
		Mechanisms: p.mechanismsOf(call, stack),
		Symptom:    p.failSymptom(f, call),
	}, true
}

// failSymptom resolves the symptom argument of a raise: a qualified
// taxonomy.Symptom<Name> selector in argument position 1, or a constant
// string naming the symptom (the fixture stand-in form).
func (p *Package) failSymptom(f *ast.File, call *ast.CallExpr) taxonomy.Symptom {
	if len(call.Args) < 2 {
		return taxonomy.SymptomUnknown
	}
	if v, ok := p.constString(call.Args[1]); ok {
		if s, err := taxonomy.ParseSymptom(v); err == nil {
			return s
		}
		return taxonomy.SymptomUnknown
	}
	sel, ok := call.Args[1].(*ast.SelectorExpr)
	if !ok {
		return taxonomy.SymptomUnknown
	}
	path, name, ok := p.pkgQualified(f, sel)
	if !ok || (path != "taxonomy" && !strings.HasSuffix(path, "/taxonomy")) {
		return taxonomy.SymptomUnknown
	}
	if !strings.HasPrefix(name, "Symptom") {
		return taxonomy.SymptomUnknown
	}
	s, err := taxonomy.ParseSymptom(strings.ToLower(strings.TrimPrefix(name, "Symptom")))
	if err != nil {
		return taxonomy.SymptomUnknown
	}
	return s
}

// ConstString resolves the string value of an expression — a literal, a
// constant identifier (through type info, falling back to the syntactic
// package-level constant table), or nothing for computed values.
func (p *Package) ConstString(expr ast.Expr) (string, bool) {
	return p.constString(expr)
}

// PkgQualified reports the import path and selector name of a qualified
// selector expression pkg.Name in a file, resolving the package identifier
// through type info first and the import table second.
func (p *Package) PkgQualified(f *ast.File, sel *ast.SelectorExpr) (path, name string, ok bool) {
	return p.pkgQualified(f, sel)
}

// WalkWithStack walks a file depth-first, handing each node its ancestor
// path (excluding the node itself). Returning false skips the subtree.
func WalkWithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	withStack(f, fn)
}

// SortDiagnostics orders diagnostics deterministically by
// file/line/col/rule — the canonical report order. Run applies it; callers
// that merge diagnostics from several analyses (cmd/faultlint -scope) must
// re-apply it before rendering.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// ApplySuppressions annotates diagnostics with the //faultlint:ignore
// directives found in the packages, exactly as Run does for its own
// findings. External analyses that append diagnostics (recoveryscope) call
// this so ignore comments cover their rules too.
func ApplySuppressions(pkgs []*Package, diags []Diagnostic) {
	index := newSuppressionIndex()
	for _, pkg := range pkgs {
		index.collect(pkg)
	}
	index.apply(diags)
}
