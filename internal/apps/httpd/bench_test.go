package httpd

import (
	"testing"

	"faultstudy/internal/simenv"
)

func benchServer(b *testing.B) *Server {
	b.Helper()
	env := simenv.New(1, simenv.WithDiskBytes(1<<31), simenv.WithMaxFileSize(1<<30))
	srv := New(env, nil, Config{})
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	return srv
}

func BenchmarkServeStatic(b *testing.B) {
	srv := benchServer(b)
	req := Request{Method: "GET", Path: "/index.html"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Serve(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeDirectoryListing(b *testing.B) {
	srv := benchServer(b)
	req := Request{Method: "GET", Path: "/pub/"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Serve(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeCGI(b *testing.B) {
	srv := benchServer(b)
	req := Request{Method: "GET", Path: "/cgi-bin/env"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Serve(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshot(b *testing.B) {
	srv := benchServer(b)
	for i := 0; i < 100; i++ {
		if _, err := srv.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}
