// Package httpd is a simulated web server in the mold of Apache 1.3, built
// on the simulated operating environment and seeded with the bugs the study
// catalogued for Apache (§5.1): the long-URL hash overflow, the SIGHUP crash,
// the va_list reuse, the zero-entry-directory palloc, the memory leak, and
// the full set of environment-dependent conditions (descriptor exhaustion,
// full disk/cache, oversized logs, network loss, DNS trouble, hung children,
// client aborts, entropy starvation).
//
// The server is a value-level simulation: requests are values, children are
// process-table entries, files are disk records. Everything the server holds
// from the environment is tagged with Owner so recovery systems can reclaim
// it, and everything the server *is* — its logical state — round-trips
// through Snapshot/Restore, which is what makes "truly generic recovery
// preserves all application state" a mechanically testable proposition.
package httpd

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/taxonomy"
)

// Owner is the environment owner tag for all server resources.
const Owner = "httpd"

// Default resource limits of the simulated server.
const (
	defaultPort      = 80
	defaultVHostLogs = 4
	accessLog        = "/var/log/httpd/access_log"
	cacheFile        = "/var/cache/httpd/proxy.data"
	memLimitBytes    = 100 << 20 // the paper's ">100 Mbytes in <5 hours" leak bound
	leakUnitCap      = 64        // abstract resource units before the unknown leak kills the server
	dnsTimeout       = 10 * time.Second
)

// Config sets up a Server.
type Config struct {
	// Port is the listening port (0 means 80).
	Port int
	// VHostLogs is how many per-vhost log descriptors the server holds open
	// as part of its configuration state (0 means 4).
	VHostLogs int
}

func (c Config) withDefaults() Config {
	if c.Port == 0 {
		c.Port = defaultPort
	}
	if c.VHostLogs == 0 {
		c.VHostLogs = defaultVHostLogs
	}
	return c
}

// Request is one HTTP request value.
type Request struct {
	// Method is the HTTP method.
	Method string
	// Path is the request path.
	Path string
	// Host is the client host name, looked up when HostnameLookups is in
	// effect (the dns mechanisms).
	Host string
	// SSL marks a secure request (draws kernel entropy for the handshake).
	SSL bool
	// AbortMidway marks that the client pressed stop during the transfer.
	AbortMidway bool
	// Session names the client session the request belongs to, when any. The
	// componentized server (Componentized.Serve) advances the session's
	// externalized counter on success; the monolithic server ignores it.
	Session string
}

// Response is the server's answer.
type Response struct {
	// Status is the HTTP status code.
	Status int
	// Body is the response entity.
	Body string
}

// Server is the simulated web server.
type Server struct {
	env    *simenv.Env
	faults *faultinject.Set
	cfg    Config

	mu       sync.Mutex
	running  bool
	degraded bool
	logFDs   []simenv.FD
	leakFDs  []simenv.FD
	children []simenv.PID

	// Component-tree hooks (see components.go). portBound tracks listening
	// port ownership so the listener part can release and rebind it without
	// double-binding; logSuspended makes a down logger serve unlogged.
	portBound    bool
	logSuspended bool

	// Logical state (travels through Snapshot/Restore).
	memBytes   int64
	leakUnits  int
	leakFDWant int
	requests   int64
	cacheBytes int64

	docs map[string]string   // path -> content
	dirs map[string][]string // directory path -> entries
}

// New builds a server over the environment with the given active bug set.
// A nil fault set yields a bug-free server.
func New(env *simenv.Env, faults *faultinject.Set, cfg Config) *Server {
	s := &Server{
		env:    env,
		faults: faults,
		cfg:    cfg.withDefaults(),
	}
	s.resetContent()
	return s
}

func (s *Server) resetContent() {
	s.docs = map[string]string{
		"/":            "<html>It works!</html>",
		"/index.html":  "<html>It works!</html>",
		"/manual/":     "Apache documentation",
		"/cgi-bin/env": "cgi output",
	}
	s.dirs = map[string][]string{
		"/pub/":   {"file1.tar.gz", "file2.tar.gz"},
		"/empty/": {},
	}
}

// Name returns the environment owner tag.
func (s *Server) Name() string { return Owner }

// Env returns the server's environment (for scenario staging).
func (s *Server) Env() *simenv.Env { return s.env }

// SetDegraded toggles degraded mode: the server keeps serving static content
// but suspends every disk-write and child-process path — access logging,
// proxy-cache stores, and CGI children. This is what lets a server on a full
// file system or an exhausted process table keep answering reads.
func (s *Server) SetDegraded(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.degraded = on
}

// Degraded reports whether degraded mode is on.
func (s *Server) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Running reports whether the server is started.
func (s *Server) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Start binds the port and opens the configured vhost log descriptors.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return errors.New("httpd: already running")
	}
	if err := s.env.Net().BindPort(s.cfg.Port, Owner); err != nil {
		if errors.Is(err, simenv.ErrPortInUse) && s.faults.Enabled(MechPortSquat) {
			return faultinject.FailCause(MechPortSquat, taxonomy.SymptomError,
				"cannot bind: hung child holds the port", err)
		}
		return fmt.Errorf("httpd: start: %w", err)
	}
	s.portBound = true
	if err := s.openLogFDs(); err != nil {
		_ = s.env.Net().ReleasePort(s.cfg.Port)
		s.portBound = false
		return err
	}
	// Restore-mandated leaked descriptors: a truly generic recovery restores
	// every descriptor the application held, leaks included.
	for len(s.leakFDs) < s.leakFDWant {
		fd, err := s.env.FDs().Open(Owner)
		if err != nil {
			_ = s.env.Net().ReleasePort(s.cfg.Port)
			s.portBound = false
			s.closeAllFDsLocked()
			return faultinject.FailCause(MechFDExhaustion, taxonomy.SymptomError,
				"cannot reopen held descriptors", err)
		}
		s.leakFDs = append(s.leakFDs, fd)
	}
	s.running = true
	s.logSuspended = false
	return nil
}

func (s *Server) openLogFDs() error {
	for len(s.logFDs) < s.cfg.VHostLogs {
		fd, err := s.env.FDs().Open(Owner)
		if err != nil {
			s.closeAllFDsLocked()
			return faultinject.FailCause(MechFDExhaustion, taxonomy.SymptomError,
				"cannot open vhost logs", err)
		}
		s.logFDs = append(s.logFDs, fd)
	}
	return nil
}

func (s *Server) closeLogFDsLocked() {
	for _, fd := range s.logFDs {
		_ = s.env.FDs().Close(fd)
	}
	s.logFDs = nil
}

func (s *Server) closeLeakFDsLocked() {
	for _, fd := range s.leakFDs {
		_ = s.env.FDs().Close(fd)
	}
	s.leakFDs = nil
}

func (s *Server) closeAllFDsLocked() {
	s.closeLogFDsLocked()
	s.closeLeakFDsLocked()
}

// Stop shuts the server down. Seeded bug: with MechPortSquat active, hung
// children are not killed and keep holding the listening port.
func (s *Server) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return
	}
	s.running = false
	s.portBound = false
	s.closeAllFDsLocked()
	var kept []simenv.PID
	for _, pid := range s.children {
		p, ok := s.env.Procs().Lookup(pid)
		if ok && p.State == simenv.ProcHung && s.faults.Enabled(MechPortSquat) {
			kept = append(kept, pid) // the bug: hung children survive shutdown
			continue
		}
		_ = s.env.Procs().Kill(pid)
	}
	s.children = kept
	if len(kept) > 0 && s.faults.Enabled(MechPortSquat) {
		// The surviving children inherited the listening socket, so the port
		// stays bound (still under the application's owner tag — a recovery
		// system that kills the whole process group frees it).
		return
	}
	_ = s.env.Net().ReleasePort(s.cfg.Port)
}

// Sig is a process signal.
type Sig int

const (
	// SigHUP asks for a graceful restart/rejuvenation.
	SigHUP Sig = iota + 1
)

// Signal delivers a signal. A healthy server rejuvenates on SIGHUP (kills
// children, truncates logs, frees leaked memory); the seeded SIGHUP bugs
// crash instead.
func (s *Server) Signal(sig Sig) error {
	if sig != SigHUP {
		return fmt.Errorf("httpd: unknown signal %d", sig)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return errors.New("httpd: not running")
	}
	if s.faults.Enabled(MechSighupCrash) {
		s.running = false
		return faultinject.Fail(MechSighupCrash, taxonomy.SymptomCrash,
			"SIGHUP kills the server instead of restarting it")
	}
	if s.faults.Enabled(MechMemoryLeakHup) && s.memBytes > memLimitBytes {
		s.running = false
		return faultinject.Fail(MechMemoryLeakHup, taxonomy.SymptomCrash,
			fmt.Sprintf("HUP with %d MB of leaked shared memory freezes the server", s.memBytes>>20))
	}
	// Rejuvenation proper (paper §6.2): reclaim children, logs, leaked heap.
	for _, pid := range s.children {
		_ = s.env.Procs().Kill(pid)
	}
	s.children = nil
	if s.env.Disk().Exists(accessLog) {
		_ = s.env.Disk().Truncate(accessLog)
	}
	s.memBytes = 0
	return nil
}

// Requests returns the number of requests served.
func (s *Server) Requests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// MemBytes returns the current (possibly leaked) memory footprint.
func (s *Server) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memBytes
}

// Serve handles one request. When an active seeded bug fires, the returned
// error is a *faultinject.FailureError describing the mechanism and symptom.
func (s *Server) Serve(req Request) (Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return Response{}, errors.New("httpd: not running")
	}
	s.requests++

	if resp, err, done := s.preamble(req); done {
		return resp, err
	}

	// Environment-independent seeded bugs, in request-processing order.
	if s.faults.Enabled(MechLongURLOverflow) && len(req.Path) > 8000 {
		s.running = false
		return Response{}, faultinject.Fail(MechLongURLOverflow, taxonomy.SymptomCrash,
			"hash calculation overflow on a very long URL")
	}
	if bug, ok := strings.CutPrefix(req.Path, "/bug/"); ok {
		if resp, err, done := s.genericEIBug(bug); done {
			return resp, err
		}
	}

	// Memory accounting (leaks only when the leak bug is active).
	if s.faults.Enabled(MechMemoryLeakHup) {
		s.memBytes += 256 << 10
	}
	if s.faults.Enabled(MechLoadResourceLeak) {
		s.leakUnits++
		if s.leakUnits > leakUnitCap {
			s.running = false
			return Response{}, faultinject.Fail(MechLoadResourceLeak, taxonomy.SymptomCrash,
				"unknown resource exhausted after sustained load")
		}
	}
	if s.faults.Enabled(MechFDExhaustion) {
		fd, err := s.env.FDs().Open(Owner)
		if err != nil {
			return Response{}, faultinject.FailCause(MechFDExhaustion, taxonomy.SymptomError,
				"per-request descriptor unavailable", err)
		}
		s.leakFDs = append(s.leakFDs, fd) // the bug: never closed
		s.leakFDWant = len(s.leakFDs)
	}

	// Logging: a healthy server rotates on an oversized log; the seeded bug
	// fails instead. A full file system fails the write either way, but only
	// the active mechanism reports it as the application failure under test.
	// Degraded mode suspends logging entirely — reads outlive a full disk.
	if !s.degraded && !s.logSuspended {
		if err := s.logRequest(); err != nil {
			return Response{}, err
		}
	}

	if resp, err, done := s.serveContent(req); done {
		return resp, err
	}

	// Child handling for the request (CGI-style).
	if err := s.spawnChildIfNeeded(req); err != nil {
		return Response{}, err
	}

	if s.faults.Enabled(MechClientAbort) && req.AbortMidway {
		if s.env.Sched().RaceFires(MechClientAbort, 3) {
			s.running = false
			return Response{}, faultinject.Fail(MechClientAbort, taxonomy.SymptomCrash,
				"child died when the client aborted mid-transfer")
		}
	}

	return Response{Status: 200, Body: s.docs[req.Path]}, nil
}

// preamble checks the environment-level preconditions shared by every
// request: interface presence, link speed, name service, entropy, and the
// opaque kernel network resource.
func (s *Server) preamble(req Request) (Response, error, bool) {
	if s.faults.Enabled(MechPCMCIARemoval) && !s.env.Net().InterfacePresent() {
		return Response{}, faultinject.FailCause(MechPCMCIARemoval, taxonomy.SymptomError,
			"network interface is gone", simenv.ErrNetworkDown), true
	}
	if s.faults.Enabled(MechSlowNetwork) && s.env.Net().Slow() {
		return Response{}, faultinject.Fail(MechSlowNetwork, taxonomy.SymptomError,
			"transfer failed on a saturated link"), true
	}
	if s.faults.Enabled(MechNetResource) {
		if err := s.env.Net().AcquireResource(); err != nil {
			return Response{}, faultinject.FailCause(MechNetResource, taxonomy.SymptomError,
				"kernel network resource exhausted", err), true
		}
		s.env.Net().ReleaseResource()
	}
	if req.Host != "" && (s.faults.Enabled(MechDNSError) || s.faults.Enabled(MechDNSSlow)) {
		_, latency, err := s.env.DNS().Lookup(req.Host)
		if err != nil && s.faults.Enabled(MechDNSError) {
			return Response{}, faultinject.FailCause(MechDNSError, taxonomy.SymptomError,
				"hostname lookup failed", err), true
		}
		if latency > dnsTimeout && s.faults.Enabled(MechDNSSlow) {
			return Response{}, faultinject.Fail(MechDNSSlow, taxonomy.SymptomHang,
				"request stalled on a slow DNS response"), true
		}
	}
	if req.SSL && s.faults.Enabled(MechEntropyStarved) {
		if err := s.env.Entropy().Draw(256); err != nil {
			return Response{}, faultinject.FailCause(MechEntropyStarved, taxonomy.SymptomError,
				"ssl handshake starved for entropy", err), true
		}
	}
	return Response{}, nil, false
}

// genericEIBug fires the template-class environment-independent bugs, which
// trigger on dedicated request paths (/bug/<name>).
func (s *Server) genericEIBug(bug string) (Response, error, bool) {
	key := "httpd/" + bug
	if !s.faults.Enabled(key) {
		return Response{}, nil, false
	}
	switch key {
	case MechNullDeref, MechBounds, MechTypeMismatch, MechMissingCheck, MechDoubleFree:
		s.running = false
		return Response{}, faultinject.Fail(key, taxonomy.SymptomCrash,
			"deterministic crash in request processing"), true
	case MechParseLoop:
		s.running = false
		return Response{}, faultinject.Fail(key, taxonomy.SymptomHang,
			"parser spins forever on the malformed token"), true
	case MechBadInit, MechWrongStatus:
		return Response{Status: 200, Body: ""}, faultinject.Fail(key, taxonomy.SymptomError,
			"wrong response assembled from uninitialized state"), true
	}
	return Response{}, nil, false
}

func (s *Server) logRequest() error {
	err := s.env.Disk().Append(accessLog, Owner, 128)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, simenv.ErrFileTooLarge):
		if s.faults.Enabled(MechLogFileLimit) {
			return faultinject.FailCause(MechLogFileLimit, taxonomy.SymptomError,
				"access log hit the maximum file size", err)
		}
		// Healthy behaviour: rotate and retry once.
		if terr := s.env.Disk().Truncate(accessLog); terr != nil {
			return fmt.Errorf("httpd: rotate: %w", terr)
		}
		return s.env.Disk().Append(accessLog, Owner, 128)
	case errors.Is(err, simenv.ErrDiskFull):
		if s.faults.Enabled(MechFSFull) {
			return faultinject.FailCause(MechFSFull, taxonomy.SymptomError,
				"full file system stops the server", err)
		}
		return nil // healthy server drops the log line and carries on
	default:
		return fmt.Errorf("httpd: log: %w", err)
	}
}

func (s *Server) serveContent(req Request) (Response, error, bool) {
	// Proxy cache writes.
	if strings.HasPrefix(req.Path, "/proxy/") {
		if s.degraded {
			// Degraded mode serves uncached rather than touching the disk.
			return Response{Status: 200, Body: "proxied content"}, nil, true
		}
		if err := s.env.Disk().Append(cacheFile, Owner, 4096); err != nil {
			if s.faults.Enabled(MechDiskCacheFull) {
				return Response{}, faultinject.FailCause(MechDiskCacheFull, taxonomy.SymptomError,
					"proxy cache cannot store temporary files", err), true
			}
			// Healthy behaviour: serve uncached.
		} else {
			s.cacheBytes += 4096 // s.mu held by Serve
		}
		return Response{Status: 200, Body: "proxied content"}, nil, true
	}
	// Directory listings.
	if entries, ok := s.dirs[req.Path]; ok {
		if len(entries) == 0 && s.faults.Enabled(MechPallocZero) {
			s.running = false
			return Response{}, faultinject.Fail(MechPallocZero, taxonomy.SymptomCrash,
				"palloc(0) in index_directory on an empty directory"), true
		}
		sorted := append([]string(nil), entries...)
		sort.Strings(sorted)
		return Response{Status: 200, Body: "Index of " + req.Path + ": " + strings.Join(sorted, ", ")}, nil, true
	}
	// Plain documents.
	if _, ok := s.docs[req.Path]; ok {
		return Response{}, nil, false // fall through to the child/abort path
	}
	// Nonexistent URL.
	if s.faults.Enabled(MechValistReuse) {
		s.running = false
		return Response{}, faultinject.Fail(MechValistReuse, taxonomy.SymptomCrash,
			"va_list reused in ap_log_rerror for the 404 page"), true
	}
	return Response{Status: 404, Body: "Not Found"}, nil, true
}

func (s *Server) spawnChildIfNeeded(req Request) error {
	if !strings.HasPrefix(req.Path, "/cgi-bin/") {
		return nil
	}
	if s.degraded {
		// Degraded mode spawns no children: the cached CGI output is served
		// without touching the (possibly exhausted) process table.
		return nil
	}
	pid, err := s.env.Procs().Spawn(Owner)
	if err != nil {
		if s.faults.Enabled(MechProcTableFull) {
			return faultinject.FailCause(MechProcTableFull, taxonomy.SymptomHang,
				"no process slots left for the CGI child", err)
		}
		return fmt.Errorf("httpd: spawn: %w", err)
	}
	if s.faults.Enabled(MechProcTableFull) || s.faults.Enabled(MechPortSquat) {
		// The bug: the child hangs and is never reaped; with the port-squat
		// variant it also grabs the listening port on the side.
		_ = s.env.Procs().Hang(pid)
		s.children = append(s.children, pid)
		return nil
	}
	// Healthy behaviour: the child finishes and is reaped immediately.
	if err := s.env.Procs().Exit(pid); err != nil {
		return fmt.Errorf("httpd: exit: %w", err)
	}
	return s.env.Procs().Reap(pid)
}

// serverState is the wire form of the server's logical state.
type serverState struct {
	MemBytes   int64    `json:"memBytes"`
	LeakUnits  int      `json:"leakUnits"`
	LeakFDWant int      `json:"leakFDWant"`
	Requests   int64    `json:"requests"`
	CacheBytes int64    `json:"cacheBytes"`
	VHostLogs  int      `json:"vhostLogs"`
	Docs       []string `json:"docs"` // sorted keys; content regenerable
}

// Snapshot captures the server's complete logical state. Children are
// deliberately absent: transient helper processes are not logical state, and
// a failover (which kills the primary's processes) does not resurrect them.
// Held descriptors are counted, because a truly generic recovery restores
// every resource the application state says it holds.
func (s *Server) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.docs))
	for k := range s.docs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return json.Marshal(serverState{
		MemBytes:   s.memBytes,
		LeakUnits:  s.leakUnits,
		LeakFDWant: s.leakFDWant,
		Requests:   s.requests,
		CacheBytes: s.cacheBytes,
		VHostLogs:  s.cfg.VHostLogs,
		Docs:       keys,
	})
}

// Restore replaces the server's logical state from a snapshot and restarts
// it, re-acquiring the port, the vhost logs, and every held descriptor the
// state mandates. The server must be stopped.
func (s *Server) Restore(snapshot []byte) error {
	var st serverState
	if err := json.Unmarshal(snapshot, &st); err != nil {
		return fmt.Errorf("httpd: restore: %w", err)
	}
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return errors.New("httpd: restore while running")
	}
	// The failed instance's descriptors died with its process (the recovery
	// system reclaims them); drop the stale handles so Start re-acquires
	// everything the restored state mandates.
	s.closeAllFDsLocked()
	s.memBytes = st.MemBytes
	s.leakUnits = st.LeakUnits
	s.leakFDWant = st.LeakFDWant
	s.requests = st.Requests
	s.cacheBytes = st.CacheBytes
	s.cfg.VHostLogs = st.VHostLogs
	s.children = nil
	s.mu.Unlock()
	return s.Start()
}

// Reset reinitializes the server to its pristine configuration — the
// application-specific recovery the paper contrasts with generic recovery.
// All accumulated state (leaks, counters, cache) is discarded. The server
// must be stopped.
func (s *Server) Reset() error {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return errors.New("httpd: reset while running")
	}
	s.closeAllFDsLocked()
	s.memBytes = 0
	s.leakUnits = 0
	s.leakFDWant = 0
	s.requests = 0
	s.cacheBytes = 0
	s.children = nil
	s.resetContent()
	s.mu.Unlock()
	return s.Start()
}
