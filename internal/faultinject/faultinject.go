// Package faultinject provides the seeded-bug plumbing shared by the
// simulated applications: a registry describing every bug mechanism, an
// activation set selecting which bugs are live in a given run, and the
// failure error type the applications raise when an active bug fires.
//
// A "mechanism" is one concrete defect from the corpus transplanted into a
// simulated application — e.g. httpd/long-url-overflow is the Apache hash
// overflow on long URLs. The recovery experiments activate one mechanism at a
// time, stage its environmental precondition, drive the triggering workload,
// and measure whether a generic recovery strategy survives the resulting
// failure.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"faultstudy/internal/taxonomy"
)

// Mechanism describes one seeded bug.
type Mechanism struct {
	// Key is the registry key, "app/name" (e.g. "sqldb/count-empty").
	Key string
	// App is the simulated application hosting the bug.
	App taxonomy.Application
	// Trigger is the environmental trigger kind (TriggerWorkloadOnly for
	// environment-independent bugs).
	Trigger taxonomy.TriggerKind
	// Description says what the bug does.
	Description string
}

// Class returns the fault class the mechanism's trigger implies.
func (m Mechanism) Class() taxonomy.FaultClass {
	return m.Trigger.DefaultClass()
}

// Registry is a catalogue of mechanisms.
type Registry struct {
	mu sync.Mutex
	m  map[string]Mechanism
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]Mechanism)}
}

// Register adds a mechanism; re-registering a key is an error.
func (r *Registry) Register(m Mechanism) error {
	if m.Key == "" {
		return errors.New("faultinject: mechanism with empty key")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[m.Key]; dup {
		return fmt.Errorf("faultinject: mechanism %q already registered", m.Key)
	}
	r.m[m.Key] = m
	return nil
}

// MustRegister registers and panics on error; for package-level catalogues
// whose keys are compile-time constants.
func (r *Registry) MustRegister(m Mechanism) {
	if err := r.Register(m); err != nil {
		panic(err)
	}
}

// Lookup returns the mechanism for key.
func (r *Registry) Lookup(key string) (Mechanism, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.m[key]
	return m, ok
}

// Keys returns all keys in sorted order.
func (r *Registry) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.m))
	for k := range r.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ByApp returns the mechanisms of one application, sorted by key.
func (r *Registry) ByApp(app taxonomy.Application) []Mechanism {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Mechanism
	for _, m := range r.m {
		if m.App == app {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Set is the activation set: which seeded bugs are live. The zero Set has
// everything disabled; applications consult Enabled at each potential fault
// point.
type Set struct {
	mu      sync.Mutex
	enabled map[string]bool
}

// NewSet returns a set with the given keys enabled.
func NewSet(keys ...string) *Set {
	s := &Set{enabled: make(map[string]bool, len(keys))}
	for _, k := range keys {
		s.enabled[k] = true
	}
	return s
}

// Enabled reports whether the keyed bug is live. A nil set disables
// everything, so applications can run fault-free with a nil *Set.
func (s *Set) Enabled(key string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enabled[key]
}

// Enable turns a bug on.
func (s *Set) Enable(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.enabled == nil {
		s.enabled = make(map[string]bool)
	}
	s.enabled[key] = true
}

// Disable turns a bug off.
func (s *Set) Disable(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.enabled, key)
}

// FailureError is the error a simulated application raises when a seeded bug
// fires. It carries the mechanism and the observable symptom so the recovery
// harness can score outcomes.
type FailureError struct {
	// Mechanism is the registry key of the bug that fired.
	Mechanism string
	// Symptom is the observable failure mode.
	Symptom taxonomy.Symptom
	// Msg is the failure message.
	Msg string
	// Cause is the underlying environment error, when one exists.
	Cause error
}

// Error implements error.
func (e *FailureError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("%s: %s (%s): %v", e.Mechanism, e.Msg, e.Symptom, e.Cause)
	}
	return fmt.Sprintf("%s: %s (%s)", e.Mechanism, e.Msg, e.Symptom)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *FailureError) Unwrap() error { return e.Cause }

// Fail builds a FailureError.
func Fail(mechanism string, symptom taxonomy.Symptom, msg string) *FailureError {
	return &FailureError{Mechanism: mechanism, Symptom: symptom, Msg: msg}
}

// FailCause builds a FailureError wrapping an environment error.
func FailCause(mechanism string, symptom taxonomy.Symptom, msg string, cause error) *FailureError {
	return &FailureError{Mechanism: mechanism, Symptom: symptom, Msg: msg, Cause: cause}
}

// AsFailure extracts a FailureError from an error chain.
func AsFailure(err error) (*FailureError, bool) {
	var fe *FailureError
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// Op is one unit of workload against an application: a named, retryable
// operation. Recovery strategies re-execute the failing Op after recovering
// the application — the paper's "all requested tasks need to be executed"
// assumption (§7).
type Op struct {
	// Name identifies the operation in traces.
	Name string
	// Do executes the operation against the application the scenario closed
	// over.
	Do func() error
}

// Scenario is an executable reproduction of one corpus fault: the staged
// environmental precondition plus the workload that triggers the seeded bug.
type Scenario struct {
	// Mechanism is the seeded bug the scenario exercises.
	Mechanism string
	// Description says what the scenario stages.
	Description string
	// Stage establishes the environmental precondition (may be nil for
	// workload-only faults).
	Stage func()
	// Ops is the workload; when the bug is active, some Op fails.
	Ops []Op
}
