package simenv

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

var (
	// ErrDiskFull is returned when a write would exceed the file-system
	// capacity — the study's "full file system" condition.
	ErrDiskFull = errors.New("simenv: file system full")
	// ErrFileTooLarge is returned when a file would exceed the maximum
	// allowed file size — the study's oversized log/database file condition.
	ErrFileTooLarge = errors.New("simenv: file exceeds maximum allowed size")
	// ErrNoSuchFile is returned for operations on missing files.
	ErrNoSuchFile = errors.New("simenv: no such file")
	// ErrDiskCrashed is returned by every disk operation after a simulated
	// process crash at a write boundary (ScheduleCrash/CrashNow) until
	// ClearCrash models the replacement process starting up.
	ErrDiskCrashed = errors.New("simenv: process crashed at a write boundary")
	// ErrShortWrite is returned by a Write that persisted only a prefix of
	// its payload (the armed short-write fault).
	ErrShortWrite = errors.New("simenv: short write")
	// ErrIOFault is returned by a Sync that failed and discarded the
	// unsynced tail (the armed fsync-failure fault; per POSIX the state of
	// unflushed data after a failed fsync is undefined, and this disk takes
	// the hostile reading).
	ErrIOFault = errors.New("simenv: i/o fault on sync")
)

// Disk is a simulated file system with a capacity limit and a per-file size
// limit. Two classes of file coexist:
//
//   - space-only files, grown with Append: only sizes and owner metadata are
//     tracked — the study's disk conditions are about space, not data;
//   - data-bearing files, written with Write/Sync: real bytes pass through a
//     buffered (unsynced) tail that a crash discards or tears, so durable
//     stores built on top face genuine corruption, not just accounting.
//
// The crash and fault hooks (ScheduleCrash, ArmShortWrite, ArmTornWrite,
// ArmSyncFail, ArmCrashBeforeRename) let experiments kill the writing
// process at every write boundary and damage in-flight bytes the way real
// disks do.
type Disk struct {
	mu          sync.Mutex
	capacity    int64
	maxFileSize int64
	used        int64
	files       map[string]*diskFile

	// Crash-at-write-boundary state: see ScheduleCrash.
	crashed     bool
	crashArmed  bool
	crashAfter  int
	crashKeep   int64
	writeOps    int64
	shortWrite  bool
	shortKeep   int64
	tornWrite   bool
	tornKeep    int64
	syncFail    bool
	crashRename bool
}

type diskFile struct {
	size  int64
	owner string
	// data holds the durable (synced) bytes of a data-bearing file; tail
	// holds bytes written but not yet synced. Space-only files keep both
	// nil and are tracked by size alone. Invariant for data-bearing files:
	// size == len(data)+len(tail).
	data []byte
	tail []byte
	// illegalOwner marks a file whose owner field holds an illegal value —
	// the GNOME "file has an illegal value in the owner field" trigger.
	illegalOwner bool
}

func (f *diskFile) byteLen() int64 { return int64(len(f.data) + len(f.tail)) }

func newDisk(capacity, maxFileSize int64) *Disk {
	return &Disk{
		capacity:    capacity,
		maxFileSize: maxFileSize,
		files:       make(map[string]*diskFile),
	}
}

// Capacity returns the file-system capacity in bytes.
func (d *Disk) Capacity() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.capacity
}

// SetCapacity grows or shrinks the file system (the §6.2 "automatically
// increase the disk capacity" mitigation). Shrinking below current usage is
// rejected.
func (d *Disk) SetCapacity(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < d.used {
		return fmt.Errorf("simenv: capacity %d below current usage %d", n, d.used)
	}
	d.capacity = n
	return nil
}

// MaxFileSize returns the per-file size limit.
func (d *Disk) MaxFileSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.maxFileSize
}

// SetMaxFileSize changes the per-file size limit (a large-file-support
// upgrade; the §6.2 "increase the resources available" mitigation for the
// file-size conditions).
func (d *Disk) SetMaxFileSize(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.maxFileSize = n
}

// Used returns the bytes in use.
func (d *Disk) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Free returns the bytes available.
func (d *Disk) Free() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.capacity - d.used
}

// mutateLocked is the crash-boundary gate every data-mutating operation
// passes through. It counts the operation, fires a scheduled crash when its
// countdown expires, and rejects everything on a crashed disk. Callers hold
// the lock; a non-nil error means the operation must not proceed.
func (d *Disk) mutateLocked() error {
	if d.crashed {
		return ErrDiskCrashed
	}
	d.writeOps++
	if d.crashArmed {
		if d.crashAfter <= 0 {
			d.crashLocked(d.crashKeep)
			return ErrDiskCrashed
		}
		d.crashAfter--
	}
	return nil
}

// Append grows the named file by n bytes, creating it if necessary. The file
// is charged to owner on creation. Append enforces both the capacity and the
// per-file limit; on error the file is unchanged. Append is space-only
// accounting — no bytes are stored — and therefore does not count as a
// write boundary for scheduled crashes.
func (d *Disk) Append(name, owner string, n int64) error {
	if n < 0 {
		return fmt.Errorf("simenv: negative append %d to %q", n, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return fmt.Errorf("append %q: %w", name, ErrDiskCrashed)
	}
	f := d.files[name]
	size := int64(0)
	if f != nil {
		size = f.size
	}
	if size+n > d.maxFileSize {
		return fmt.Errorf("append %q: %w", name, ErrFileTooLarge)
	}
	if d.used+n > d.capacity {
		return fmt.Errorf("append %q: %w", name, ErrDiskFull)
	}
	if f == nil {
		f = &diskFile{owner: owner}
		d.files[name] = f
	}
	f.size += n
	d.used += n
	return nil
}

// Shrink releases n bytes of previously charged space from the named file —
// the inverse of Append for space-only accounting, used to undo a charge
// when a later step of the same logical operation fails. Shrinking below
// the bytes actually held by a data-bearing file is rejected.
func (d *Disk) Shrink(name string, n int64) error {
	if n < 0 {
		return fmt.Errorf("simenv: negative shrink %d of %q", n, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return fmt.Errorf("shrink %q: %w", name, ErrNoSuchFile)
	}
	if f.size-n < f.byteLen() {
		return fmt.Errorf("simenv: shrink %d of %q below %d held bytes", n, name, f.byteLen())
	}
	f.size -= n
	d.used -= n
	return nil
}

// Write appends p to the named data-bearing file, creating it (charged to
// owner) if necessary. The bytes land in the file's unsynced tail — they
// are visible to ReadAll but a crash discards or tears them — and both the
// capacity and per-file limits are enforced up front, so a failed Write
// leaves the file unchanged. Armed faults: a short write persists only a
// prefix and returns ErrShortWrite; a torn write persists only a prefix and
// reports success (silent damage a checksum must catch later).
func (d *Disk) Write(name, owner string, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.mutateLocked(); err != nil {
		return fmt.Errorf("write %q: %w", name, err)
	}
	n := int64(len(p))
	keep := n
	var faultErr error
	switch {
	case d.shortWrite:
		d.shortWrite = false
		if d.shortKeep < n {
			keep = d.shortKeep
		}
		faultErr = fmt.Errorf("write %q: wrote %d of %d bytes: %w", name, keep, n, ErrShortWrite)
	case d.tornWrite:
		d.tornWrite = false
		if d.tornKeep < n {
			keep = d.tornKeep
		}
	}
	f := d.files[name]
	size := int64(0)
	if f != nil {
		size = f.size
	}
	if size+keep > d.maxFileSize {
		return fmt.Errorf("write %q: %w", name, ErrFileTooLarge)
	}
	if d.used+keep > d.capacity {
		return fmt.Errorf("write %q: %w", name, ErrDiskFull)
	}
	if f == nil {
		f = &diskFile{owner: owner}
		d.files[name] = f
	}
	f.tail = append(f.tail, p[:keep]...)
	f.size += keep
	d.used += keep
	return faultErr
}

// Sync flushes the named file's unsynced tail to durable storage. Only
// synced bytes survive a crash intact. With the sync-failure fault armed the
// tail is discarded and ErrIOFault returned — the hostile fsync-failure
// semantics.
func (d *Disk) Sync(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.mutateLocked(); err != nil {
		return fmt.Errorf("sync %q: %w", name, err)
	}
	f, ok := d.files[name]
	if !ok {
		return fmt.Errorf("sync %q: %w", name, ErrNoSuchFile)
	}
	if d.syncFail {
		d.syncFail = false
		dropped := int64(len(f.tail))
		f.tail = nil
		f.size -= dropped
		d.used -= dropped
		return fmt.Errorf("sync %q: %w", name, ErrIOFault)
	}
	f.data = append(f.data, f.tail...)
	f.tail = nil
	return nil
}

// ReadAll returns a copy of the named file's bytes — durable data plus any
// still-unsynced tail, which is what a reader of the live file system sees.
// Space-only files read back empty regardless of their charged size.
func (d *Disk) ReadAll(name string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, fmt.Errorf("read %q: %w", name, ErrDiskCrashed)
	}
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("read %q: %w", name, ErrNoSuchFile)
	}
	out := make([]byte, 0, f.byteLen())
	out = append(out, f.data...)
	out = append(out, f.tail...)
	return out, nil
}

// Rename atomically replaces newName with oldName's file (contents, charge,
// and owner move; a pre-existing newName is released) — the
// write-temp-then-rename commit step of checkpointing. With the
// crash-before-rename fault armed the rename does not happen: the disk
// crashes with the temporary file still in place and the target untouched.
func (d *Disk) Rename(oldName, newName string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.mutateLocked(); err != nil {
		return fmt.Errorf("rename %q: %w", oldName, err)
	}
	if d.crashRename {
		d.crashRename = false
		d.crashLocked(d.crashKeep)
		return fmt.Errorf("rename %q: %w", oldName, ErrDiskCrashed)
	}
	f, ok := d.files[oldName]
	if !ok {
		return fmt.Errorf("rename %q: %w", oldName, ErrNoSuchFile)
	}
	if old, exists := d.files[newName]; exists {
		d.used -= old.size
	}
	d.files[newName] = f
	delete(d.files, oldName)
	return nil
}

// TruncateTo cuts the named data-bearing file to exactly size bytes and
// makes the kept prefix durable — the torn-tail repair a recovering store
// performs after locating the last intact record. Growing a file or cutting
// a space-only file below zero held bytes is rejected.
func (d *Disk) TruncateTo(name string, size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.mutateLocked(); err != nil {
		return fmt.Errorf("truncate %q: %w", name, err)
	}
	f, ok := d.files[name]
	if !ok {
		return fmt.Errorf("truncate %q: %w", name, ErrNoSuchFile)
	}
	held := f.byteLen()
	if size < 0 || size > held {
		return fmt.Errorf("simenv: truncate %q to %d outside [0, %d]", name, size, held)
	}
	all := make([]byte, 0, held)
	all = append(all, f.data...)
	all = append(all, f.tail...)
	f.data = all[:size]
	f.tail = nil
	freed := f.size - size
	f.size = size
	d.used -= freed
	return nil
}

// Size returns the size of the named file.
func (d *Disk) Size(name string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("size %q: %w", name, ErrNoSuchFile)
	}
	return f.size, nil
}

// Exists reports whether the named file exists.
func (d *Disk) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[name]
	return ok
}

// Remove deletes the named file and releases its space.
func (d *Disk) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.mutateLocked(); err != nil {
		return fmt.Errorf("remove %q: %w", name, err)
	}
	f, ok := d.files[name]
	if !ok {
		return fmt.Errorf("remove %q: %w", name, ErrNoSuchFile)
	}
	d.used -= f.size
	delete(d.files, name)
	return nil
}

// Truncate resets the named file to zero bytes, keeping it on disk (log
// rotation). Both durable data and any unsynced tail are discarded; the
// file's owner charge is preserved at zero size.
func (d *Disk) Truncate(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.mutateLocked(); err != nil {
		return fmt.Errorf("truncate %q: %w", name, err)
	}
	f, ok := d.files[name]
	if !ok {
		return fmt.Errorf("truncate %q: %w", name, ErrNoSuchFile)
	}
	d.used -= f.size
	f.size = 0
	f.data = nil
	f.tail = nil
	return nil
}

// RemoveOwner deletes every file charged to owner and returns the bytes
// freed — a staging hook for scenarios that clear one tenant's files (and
// for application-specific cleanup in tests). Generic recovery deliberately
// does NOT call it: Env.ReclaimOwner frees descriptors, processes, and
// ports but leaves the disk alone, because the study's disk conditions are
// usually owned by *other* tenants and an application's durable state must
// survive its process's death.
func (d *Disk) RemoveOwner(owner string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var freed int64
	for name, f := range d.files {
		if f.owner == owner {
			freed += f.size
			d.used -= f.size
			delete(d.files, name)
		}
	}
	return freed
}

// Owner returns the owner tag the named file is charged to.
func (d *Disk) Owner(name string) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return "", fmt.Errorf("owner %q: %w", name, ErrNoSuchFile)
	}
	return f.owner, nil
}

// Files returns the file names in sorted order.
func (d *Disk) Files() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SetIllegalOwner marks the file's owner field as holding an illegal value —
// the GNOME host-config trigger. Applications that parse the owner field
// observe the flag through IllegalOwner.
func (d *Disk) SetIllegalOwner(name string, illegal bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return fmt.Errorf("set illegal owner %q: %w", name, ErrNoSuchFile)
	}
	f.illegalOwner = illegal
	return nil
}

// IllegalOwner reports whether the file's owner field is illegal.
func (d *Disk) IllegalOwner(name string) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return false, fmt.Errorf("illegal owner %q: %w", name, ErrNoSuchFile)
	}
	return f.illegalOwner, nil
}

// FillFrom consumes free space down to the given remaining byte count,
// charging the fill to owner — a convenience for staging "full file system"
// conditions caused by other tenants of the machine.
func (d *Disk) FillFrom(owner string, remaining int64) error {
	d.mu.Lock()
	free := d.capacity - d.used
	d.mu.Unlock()
	if free <= remaining {
		return nil
	}
	n := free - remaining
	// The filler file must itself respect the per-file limit; spread across
	// numbered files.
	i := 0
	for n > 0 {
		chunk := n
		if chunk > d.MaxFileSize() {
			chunk = d.MaxFileSize()
		}
		name := fmt.Sprintf("/var/fill/%s.%d", owner, i)
		if err := d.Append(name, owner, chunk); err != nil {
			return err
		}
		n -= chunk
		i++
	}
	return nil
}

// WriteOps returns the number of data-mutating disk operations performed so
// far (Write, Sync, Rename, TruncateTo, Remove, Truncate). Experiments use
// it to enumerate a workload's write boundaries before scheduling a crash
// at each one.
func (d *Disk) WriteOps() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeOps
}

// ScheduleCrash arms a process crash at a future write boundary: the next
// `after` data-mutating operations proceed, then the following one crashes
// the process instead of executing. At the crash every file's unsynced tail
// is torn to at most keepTail bytes (0 = dropped whole) and every
// subsequent disk operation returns ErrDiskCrashed until ClearCrash.
func (d *Disk) ScheduleCrash(after int, keepTail int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashArmed = true
	d.crashAfter = after
	d.crashKeep = keepTail
}

// CrashNow crashes the process immediately, tearing unsynced tails to at
// most keepTail bytes, without waiting for a write boundary.
func (d *Disk) CrashNow(keepTail int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashLocked(keepTail)
}

// crashLocked applies the crash: durable bytes survive, each unsynced tail
// is torn to at most keep bytes (the torn prefix becomes durable, the rest
// never reached the platter), and the disk rejects all further operations
// until ClearCrash. Callers hold the lock.
func (d *Disk) crashLocked(keep int64) {
	for _, f := range d.files {
		kept := int64(len(f.tail))
		if keep < kept {
			kept = keep
		}
		dropped := int64(len(f.tail)) - kept
		f.data = append(f.data, f.tail[:kept]...)
		f.tail = nil
		f.size -= dropped
		d.used -= dropped
	}
	d.crashed = true
	d.crashArmed = false
}

// Crashed reports whether the disk is in the post-crash state.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// ClearCrash models the replacement process starting up: the disk becomes
// usable again with exactly the bytes that survived the crash. Any armed
// crash schedule is cleared; armed write faults persist until they fire.
func (d *Disk) ClearCrash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = false
	d.crashArmed = false
}

// ArmShortWrite makes the next Write persist only its first keep bytes and
// return ErrShortWrite — the caller sees the damage immediately and must
// repair the tail.
func (d *Disk) ArmShortWrite(keep int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.shortWrite = true
	d.shortKeep = keep
}

// ArmTornWrite makes the next Write persist only its first keep bytes while
// reporting success — silent damage that only a checksum can catch at the
// next read.
func (d *Disk) ArmTornWrite(keep int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tornWrite = true
	d.tornKeep = keep
}

// ArmSyncFail makes the next Sync discard the unsynced tail and return
// ErrIOFault — the hostile fsync-failure semantics.
func (d *Disk) ArmSyncFail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncFail = true
}

// ArmCrashBeforeRename makes the next Rename crash the process before the
// rename takes effect: the temporary file survives (its synced bytes
// intact), the rename target is untouched, and the disk enters the
// post-crash state.
func (d *Disk) ArmCrashBeforeRename() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashRename = true
}
