package corpusgen

import (
	"fmt"

	"faultstudy/internal/taxonomy"
)

// Report-text templates. Generated reports must read the way the study's
// reports read, because the classifier recovers each fault's class from the
// same cue language the study's authors leaned on: environmental reports
// name their trigger condition, deterministic reports say "every time". The
// defect prose is deliberately trigger-neutral — it describes the code-level
// bug without environmental vocabulary, so the how-to-repeat section alone
// decides the classification.

// defectProse describes the code defect per sampled defect type.
var defectProse = map[string]string{
	"memory":      "A pointer error dereferences memory past the end of an internal buffer, corrupting the adjacent allocation.",
	"logic":       "A missing initialization leaves a state variable at its zero value, so a later branch takes the wrong arm.",
	"interface":   "The caller and callee disagree about an argument's units, so the callee is handed a value outside its contract.",
	"concurrency": "Two code paths update a shared counter without holding the same lock, so one of the updates is silently dropped.",
	"resource":    "An internal handle is not released on an early-return error path, so the table of handles slowly fills up.",
}

// symptomProse describes the observable failure per symptom.
var symptomProse = map[taxonomy.Symptom]string{
	taxonomy.SymptomCrash: "The daemon crashes with a segmentation fault.",
	taxonomy.SymptomError: "The daemon returns a wrong result to the client.",
	taxonomy.SymptomHang:  "The daemon stops responding until killed.",
}

// deterministicProse is the EI how-to-repeat: the reporters' happens-every-
// time language, with no environmental cue in sight.
const deterministicProse = "Run the triggering workload. The failure is workload-deterministic: " +
	"it happens every time, on any machine, 100% reproducible."

// triggerProse is the environmental how-to-repeat per trigger kind: each
// sentence states the §5-style trigger condition in the vocabulary the
// classifier's lexicon recognizes, and only that trigger's vocabulary.
var triggerProse = map[taxonomy.TriggerKind]string{
	taxonomy.TriggerResourceLeak: "Under sustained high load the daemon leaks a buffer per request; " +
		"memory accumulates until the resource leak exhausts the process.",
	taxonomy.TriggerFDExhaustion: "Every connection holds its descriptor open, so the process runs out of file " +
		"descriptors once the descriptor limit is reached.",
	taxonomy.TriggerDiskFull: "The write lands on a full file system: no space left on the partition, " +
		"and the disk cannot store any more.",
	taxonomy.TriggerFileSizeLimit: "The append log grows past the maximum allowed file size and the " +
		"write is rejected at the file size limit.",
	taxonomy.TriggerNetworkResource: "The kernel network resource backing the PCMCIA network card is " +
		"exhausted, and the kernel refuses new connections.",
	taxonomy.TriggerHostConfig: "The connecting host is misconfigured: its reverse DNS entry is missing, " +
		"so the PTR record never resolves to a hostname.",
	taxonomy.TriggerDNSFailure: "A call to DNS fails under load: the DNS server answers slowly or not " +
		"at all, and each DNS lookup comes back with an error.",
	taxonomy.TriggerProcessTable: "Hung child processes fill the process table and hang onto required " +
		"network ports until an operator kills all processes by hand.",
	taxonomy.TriggerRequestTiming: "Only when the user presses stop at just the right moment in the " +
		"midst of a page download; the timing of the requested workload is everything.",
	taxonomy.TriggerRace: "A race condition between the worker threads: the failure is intermittent, " +
		"not reliably reproducible, and works on a retry.",
	taxonomy.TriggerSlowNetwork: "Over a slow network the transfer stalls; once the uplink is saturated " +
		"the operation never completes.",
	taxonomy.TriggerEntropy: "SSL handshakes on a freshly booted box block reading /dev/random: the " +
		"kernel entropy pool is drained.",
}

// synopsis is the one-line summary. It deliberately avoids every lexicon cue
// — the classification signal lives in the body, like the study's reports.
func (f *GenFault) synopsis() string {
	return fmt.Sprintf("%s daemon failure #%06d (%s defect)", f.AppName, f.Index, f.Defect)
}

// description is the report body: the defect, the symptom, and the lifetime.
func (f *GenFault) description() string {
	return fmt.Sprintf("%s %s The defect was present in production for roughly %s before the fix.",
		defectProse[f.Defect], symptomProse[f.Symptom], f.LifetimeText)
}

// howToRepeat carries the classification signal: deterministic language for
// EI faults, the mechanism trigger's environmental condition otherwise.
func (f *GenFault) howToRepeat() string {
	if f.Class == taxonomy.ClassEnvIndependent {
		return deterministicProse
	}
	return triggerProse[f.Trigger]
}
