// Command recoverylab runs the recovery-verification experiment: every
// corpus fault's executable reproduction under every recovery strategy, or a
// single mechanism for close inspection.
//
// Usage:
//
//	recoverylab                                 # the full 139-fault matrix
//	recoverylab -mechanism httpd/dns-error      # one fault, all strategies
//	recoverylab -lee93                          # the Tandem reconciliation
//	recoverylab -ablate                         # retry + rejuvenation ablations
//	recoverylab -soak -ops 500 -faults 3        # supervised soak of all three apps
//	recoverylab -supervised                     # matrix with the supervision column
//	recoverylab -lint                           # faultlint static classification vs seeded truth
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"faultstudy"
	"faultstudy/internal/experiment"
	"faultstudy/internal/recovery"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "recoverylab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mechanism = flag.String("mechanism", "", "run one seeded bug (e.g. httpd/dns-error)")
		seed      = flag.Int64("seed", 42, "environment seed")
		retries   = flag.Int("retries", 0, "retry budget per failure (0 = default 3)")
		lee93     = flag.Bool("lee93", false, "print the Lee & Iyer reconciliation")
		csvDir    = flag.String("csv", "", "directory to write CSV artifacts into")
		ablate    = flag.Bool("ablate", false, "run the retry and rejuvenation ablations")
		sensitive = flag.Bool("sensitivity", false, "run the classifier sensitivity sweep")
		trace     = flag.Bool("trace", false, "print each recovery step (with -mechanism)")
		load      = flag.Bool("load", false, "run the ops-to-failure load sweep")
		soak      = flag.Bool("soak", false, "soak all three apps under supervision with random faults active")
		ops       = flag.Int("ops", 300, "base workload length per app (with -soak)")
		nfaults   = flag.Int("faults", 3, "seeded mechanisms activated per app (with -soak)")
		supCol    = flag.Bool("supervised", false, "add the supervision-layer column to the matrix")
		lint      = flag.Bool("lint", false, "validate faultlint's static classification against the registry")
		grow      = flag.Bool("grow", true, "let the supervisor apply the resource governor")
	)
	flag.Parse()

	policy := faultstudy.RecoveryPolicy{MaxRetries: *retries}
	if *trace {
		policy.Trace = func(ev recovery.TraceEvent) {
			if ev.Err != nil {
				fmt.Printf("    [%s] %s (attempt %d): %v\n", ev.Kind, ev.Op, ev.Attempt, ev.Err)
			} else {
				fmt.Printf("    [%s] %s (attempt %d)\n", ev.Kind, ev.Op, ev.Attempt)
			}
		}
	}

	if *mechanism != "" {
		return runOne(*mechanism, policy, *seed)
	}
	if *lint {
		root, err := experiment.ModuleRoot()
		if err != nil {
			return err
		}
		report, err := experiment.RunLint(root)
		if err != nil {
			return err
		}
		fmt.Print(report)
		return nil
	}
	if *soak {
		results, err := faultstudy.RunSoak(faultstudy.SoakConfig{
			Ops:       *ops,
			Faults:    *nfaults,
			Seed:      *seed,
			Supervise: faultstudy.SupervisorConfig{GrowResources: *grow},
		})
		if err != nil {
			return err
		}
		fmt.Println(faultstudy.RenderSoak(results))
		return nil
	}
	if *load {
		points, err := experiment.RunOpsToFailure(5000, *seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderOpsToFailure(points))
		return nil
	}
	if *sensitive {
		points := experiment.RunClassifierSensitivity([]float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0})
		fmt.Print(experiment.RenderSensitivity(points))
		return nil
	}
	if *ablate {
		retryAb, err := experiment.RunRetryAblation(5, *seed)
		if err != nil {
			return err
		}
		fmt.Print(retryAb)
		fmt.Println()
		rejuvAb, err := experiment.RunRejuvenationAblation([]int{0, 16, 32, 64, 128}, *seed)
		if err != nil {
			return err
		}
		fmt.Print(rejuvAb)
		fmt.Println()
		reclaimAb, err := experiment.RunReclaimAblation(*seed)
		if err != nil {
			return err
		}
		fmt.Print(reclaimAb)
		fmt.Println()
		mitAb, err := experiment.RunMitigationAblation(*seed)
		if err != nil {
			return err
		}
		fmt.Print(mitAb)
		return nil
	}

	matrix, err := faultstudy.RunRecoveryMatrix(policy, *seed)
	if err != nil {
		return err
	}
	if *supCol {
		if err := matrix.AddSupervised(*seed, faultstudy.SupervisorConfig{GrowResources: *grow}); err != nil {
			return err
		}
	}
	fmt.Print(matrix)
	if *lee93 {
		fmt.Println()
		fmt.Print(faultstudy.CompareLee93(matrix))
	}
	if *csvDir != "" {
		files, err := faultstudy.ExportArtifacts(matrix)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(content), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("\nwrote %d CSV artifacts to %s\n", len(files), *csvDir)
	}
	return nil
}

func runOne(mechanism string, policy faultstudy.RecoveryPolicy, seed int64) error {
	mgr := faultstudy.NewRecoveryManager(policy)
	for _, strat := range recovery.Strategies() {
		app, sc, err := faultstudy.BuildScenario(mechanism, seed)
		if err != nil {
			return err
		}
		out, err := mgr.Run(app, sc, strat)
		if err != nil {
			return err
		}
		status := "LOST"
		if out.Survived {
			status = "survived"
		}
		fmt.Printf("%-18s %-9s failures=%d recoveries=%d attempts=%d",
			strat, status, out.Failures, out.Recoveries, out.Attempts)
		if out.FirstFailure != nil {
			fmt.Printf("  first failure: %s", out.FirstFailure.Msg)
		}
		fmt.Println()
	}
	return nil
}
