package recovery

import (
	"errors"
	"testing"

	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
)

// mustExec runs one statement against the database and fails the test on
// any error — used to seed durable state around the scenario under test.
func mustExec(t *testing.T, srv *sqldb.Server, sql string) {
	t.Helper()
	if _, err := srv.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// TestProcessPairsRestoreReplaysWAL: when the database has durable state, a
// process-pairs takeover must be served by checkpoint-load + log-replay of
// the write-ahead log — not by the logical snapshot fallback that trusts an
// in-memory copy.
func TestProcessPairsRestoreReplaysWAL(t *testing.T) {
	env := simenv.New(23)
	srv := sqldb.New(env, faultinject.NewSet(sqldb.MechSignalMaskRace))
	sc := sqldb.Scenarios(srv)[sqldb.MechSignalMaskRace]
	// Seed real rows through the WAL before staging the losing
	// interleaving, so the takeover has durable bytes to replay. The
	// winning interleaving is pinned while seeding: the race must not fire
	// until the scenario's own query runs.
	sc.Stage = func() {
		env.Sched().Force(sqldb.MechSignalMaskRace, 1)
		mustExec(t, srv, "CREATE TABLE acct (id INT, owner TEXT)")
		mustExec(t, srv, "INSERT INTO acct VALUES (1, 'ada')")
		mustExec(t, srv, "INSERT INTO acct VALUES (2, 'bob')")
		mustExec(t, srv, "INSERT INTO acct VALUES (3, 'cyd')")
		env.Sched().Force(sqldb.MechSignalMaskRace, 0)
	}
	out := run(t, srv, sc, StrategyProcessPairs)
	if !out.Survived {
		t.Fatalf("signal-mask race should clear on takeover (err: %v)", out.Err)
	}
	if out.Attempts == 0 {
		t.Fatal("recovery never ran")
	}
	if got := srv.WALReplays(); got < 1 {
		t.Errorf("wal replays = %d, want >= 1: the takeover fell back to the logical snapshot", got)
	}
	if got := srv.LogicalFallbacks(); got != 0 {
		t.Errorf("logical fallbacks = %d, want 0 with an intact log", got)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("restart after run: %v", err)
	}
	defer srv.Stop()
	rs, err := srv.Exec("SELECT * FROM acct")
	if err != nil {
		t.Fatalf("post-recovery select: %v", err)
	}
	if len(rs.Rows) != 3 {
		t.Errorf("acct has %d rows after recovery, want 3", len(rs.Rows))
	}
}

// TestRestoreSurvivesCrashDuringReplay is the double fault: the replacement
// process crashes again in the middle of recovery itself, at the rollback's
// first write boundary (the log truncation). The half-finished recovery must
// leave the durable bytes replayable, so the attempt after that succeeds by
// log replay with the checkpointed state intact.
func TestRestoreSurvivesCrashDuringReplay(t *testing.T) {
	env := simenv.New(24)
	srv := sqldb.New(env, faultinject.NewSet())
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	mustExec(t, srv, "CREATE TABLE acct (id INT, owner TEXT)")
	mustExec(t, srv, "INSERT INTO acct VALUES (1, 'ada')")
	mustExec(t, srv, "INSERT INTO acct VALUES (2, 'bob')")
	mustExec(t, srv, "INSERT INTO acct VALUES (3, 'cyd')")
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// Rows past the checkpoint: the rollback must truncate these.
	mustExec(t, srv, "INSERT INTO acct VALUES (4, 'doomed')")
	mustExec(t, srv, "INSERT INTO acct VALUES (5, 'doomed')")
	srv.Stop()

	// First recovery attempt: the process dies at the very first write
	// boundary recovery reaches, which is the rollback truncating the log.
	env.Disk().ScheduleCrash(0, 0)
	err = srv.Restore(snap)
	if err == nil {
		t.Fatal("restore on a crashing disk should fail")
	}
	if !errors.Is(err, simenv.ErrDiskCrashed) {
		t.Fatalf("restore error = %v, want the scheduled crash", err)
	}
	if !env.Disk().Crashed() {
		t.Fatal("the scheduled crash never fired")
	}
	if got := srv.WALReplays(); got != 0 {
		t.Errorf("wal replays after the crashed attempt = %d, want 0", got)
	}

	// The replacement process starts with exactly the bytes that survived.
	env.Disk().ClearCrash()
	if err := srv.Restore(snap); err != nil {
		t.Fatalf("second restore: %v", err)
	}
	defer srv.Stop()
	if got := srv.WALReplays(); got != 1 {
		t.Errorf("wal replays = %d, want 1: the retry must be served by log replay", got)
	}
	rs, err := srv.Exec("SELECT * FROM acct")
	if err != nil {
		t.Fatalf("post-recovery select: %v", err)
	}
	if len(rs.Rows) != 3 {
		t.Errorf("acct has %d rows after rollback, want the 3 checkpointed ones", len(rs.Rows))
	}
	// The store must be healthy again, not just readable: a post-recovery
	// write has to commit.
	mustExec(t, srv, "INSERT INTO acct VALUES (4, 'alive')")
}
