package httpd

import (
	"strings"
	"time"

	"faultstudy/internal/component"
	"faultstudy/internal/simenv"
)

// Component names of the componentized server.
const (
	// CompCore is the request-processing engine: URL parsing, response
	// assembly, and the per-request heap. Every request routes through it,
	// and every environment-independent defect lives in it.
	CompCore = "httpd/core"
	// CompListener is the accept path: the listening port and the
	// per-connection network preamble (interface, DNS, entropy).
	CompListener = "httpd/listener"
	// CompLogger is the access-log writer and its vhost descriptors. When it
	// is down the server serves unlogged rather than failing.
	CompLogger = "httpd/logger"
	// CompCache is the proxy-cache writer; /proxy/ requests route through it.
	CompCache = "httpd/cache"
	// CompCGI is the child-process manager; /cgi-bin/ requests route through
	// it, and crash-stopping it reaps every hung child.
	CompCGI = "httpd/cgi"
)

// SessionBucket is the externalized-store bucket holding per-session request
// counters — the state that must survive any component reboot.
const SessionBucket = "httpd/sessions"

// Reboot costs on the virtual clock: what one microreboot of each part costs,
// in simulated milliseconds — against whole-process restart measured in
// seconds.
const (
	coreStartCost     = 8 * time.Millisecond
	listenerStartCost = 4 * time.Millisecond
	loggerStartCost   = 2 * time.Millisecond
	cacheStartCost    = 3 * time.Millisecond
	cgiStartCost      = 3 * time.Millisecond
)

// componentFor maps each seeded mechanism to the component its defect (or
// the resource it exhausts) lives in.
var componentFor = map[string]string{
	MechLongURLOverflow:  CompCore,
	MechSighupCrash:      CompCore,
	MechValistReuse:      CompCore,
	MechPallocZero:       CompCore,
	MechMemoryLeakHup:    CompCore,
	MechNullDeref:        CompCore,
	MechBounds:           CompCore,
	MechBadInit:          CompCore,
	MechParseLoop:        CompCore,
	MechTypeMismatch:     CompCore,
	MechMissingCheck:     CompCore,
	MechDoubleFree:       CompCore,
	MechWrongStatus:      CompCore,
	MechLoadResourceLeak: CompCore,
	MechFDExhaustion:     CompCore,
	MechLogFileLimit:     CompLogger,
	MechFSFull:           CompLogger,
	MechDiskCacheFull:    CompCache,
	MechProcTableFull:    CompCGI,
	MechClientAbort:      CompCGI,
	MechPortSquat:        CompCGI,
	MechNetResource:      CompListener,
	MechPCMCIARemoval:    CompListener,
	MechDNSError:         CompListener,
	MechDNSSlow:          CompListener,
	MechSlowNetwork:      CompListener,
	MechEntropyStarved:   CompListener,
}

// Componentized is the crash-only decomposition of the web server: the same
// simulated Apache, restructured into a component tree with sessions
// externalized to a store that survives component death. It implements both
// recovery.Application (the whole-process lifecycle) and component.Host (the
// per-component one).
type Componentized struct {
	srv   *Server
	store *component.Store
	tree  *component.Tree
}

// Componentize wraps a server into its component tree. The store holds the
// externalized session state; passing a shared store across restarts is what
// makes sessions survive them.
func Componentize(srv *Server, store *component.Store) *Componentized {
	c := &Componentized{
		srv:   srv,
		store: store,
		tree:  component.NewTree(component.EnvClock{Env: srv.env}),
	}
	s := srv
	c.tree.MustAdd(component.Spec{StartCost: coreStartCost, Component: component.NewPart(CompCore, component.Hooks{
		// Crash-stopping the core discards its heap and every descriptor it
		// leaked — the microreboot answer to the leak-class mechanisms.
		OnKill: func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.closeLeakFDsLocked()
			s.memBytes = 0
			s.leakUnits = 0
			s.leakFDWant = 0
		},
	})})
	c.tree.MustAdd(component.Spec{StartCost: listenerStartCost, Deps: []string{CompCore}, Component: component.NewPart(CompListener, component.Hooks{
		OnKill: func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.portBound {
				_ = s.env.Net().ReleasePort(s.cfg.Port)
				s.portBound = false
			}
		},
		OnStart: func() error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if !s.portBound {
				if err := s.env.Net().BindPort(s.cfg.Port, Owner); err != nil {
					return err
				}
				s.portBound = true
			}
			return nil
		},
	})})
	c.tree.MustAdd(component.Spec{StartCost: loggerStartCost, Deps: []string{CompCore}, Component: component.NewPart(CompLogger, component.Hooks{
		OnKill: func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.closeLogFDsLocked()
			s.logSuspended = true
		},
		OnStart: func() error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if err := s.openLogFDs(); err != nil {
				return err
			}
			s.logSuspended = false
			return nil
		},
	})})
	c.tree.MustAdd(component.Spec{StartCost: cacheStartCost, Deps: []string{CompCore}, Component: component.NewPart(CompCache, component.Hooks{})})
	c.tree.MustAdd(component.Spec{StartCost: cgiStartCost, Deps: []string{CompCore}, Component: component.NewPart(CompCGI, component.Hooks{
		// Crash-stopping the CGI manager reaps every child, hung ones
		// included — freeing the process table (and any squatted port hold).
		OnKill: func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			for _, pid := range s.children {
				_ = s.env.Procs().Kill(pid)
			}
			s.children = nil
		},
	})})
	return c
}

// Name returns the environment owner tag (unchanged by componentization).
func (c *Componentized) Name() string { return Owner }

// Env returns the underlying environment.
func (c *Componentized) Env() *simenv.Env { return c.srv.Env() }

// Running reports whether the simulated process is alive.
func (c *Componentized) Running() bool { return c.srv.Running() }

// Start boots the process and brings every component up.
func (c *Componentized) Start() error {
	if err := c.srv.Start(); err != nil {
		return err
	}
	return c.tree.StartAll()
}

// Stop crash-stops every component in reverse dependency order, then shuts
// the process down.
func (c *Componentized) Stop() {
	c.tree.StopAll()
	c.srv.Stop()
}

// Snapshot captures the process's logical state. The externalized store is
// deliberately absent: it lives outside the process, so neither a crash nor
// a rollback touches it.
func (c *Componentized) Snapshot() ([]byte, error) { return c.srv.Snapshot() }

// Restore replaces the process state from a snapshot, restarts it, and
// brings the component tree back up. Sessions in the store are untouched.
func (c *Componentized) Restore(snapshot []byte) error {
	if err := c.srv.Restore(snapshot); err != nil {
		return err
	}
	return c.tree.StartAll()
}

// Reset reinitializes the process to pristine state and brings the tree up.
// The store survives even this: sessions live in a different failure domain.
func (c *Componentized) Reset() error {
	if err := c.srv.Reset(); err != nil {
		return err
	}
	return c.tree.StartAll()
}

// Tree returns the component tree.
func (c *Componentized) Tree() *component.Tree { return c.tree }

// Store returns the externalized session store.
func (c *Componentized) Store() *component.Store { return c.store }

// ComponentFor maps a mechanism key to the component its defect lives in.
func (c *Componentized) ComponentFor(mechanism string) (string, bool) {
	name, ok := componentFor[mechanism]
	return name, ok
}

// ContainCrash reattributes a process-fatal failure to the component tree:
// in the componentized build only the faulty component's process died, so
// the process-level liveness flag comes back up and the caller reboots the
// component.
func (c *Componentized) ContainCrash() {
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	c.srv.running = true
}

// routeOf lists the components a request routes through. The logger is
// deliberately absent: a down logger degrades to unlogged serving instead of
// failing the request.
func routeOf(req Request) []string {
	route := []string{CompListener, CompCore}
	if strings.HasPrefix(req.Path, "/proxy/") {
		route = append(route, CompCache)
	}
	if strings.HasPrefix(req.Path, "/cgi-bin/") {
		route = append(route, CompCGI)
	}
	return route
}

// Serve handles one request through the component tree: requests routed
// through a down component fail fast with a DownError (these are the
// requests a microreboot window loses), everything else serves normally —
// including while a sibling component is mid-reboot. A request carrying a
// session advances its externalized session counter on success.
func (c *Componentized) Serve(req Request) (Response, error) {
	for _, name := range routeOf(req) {
		if !c.tree.Running(name) {
			return Response{}, component.Down(name)
		}
	}
	resp, err := c.srv.Serve(req)
	if err == nil && req.Session != "" {
		c.store.Incr(SessionBucket, req.Session)
	}
	return resp, err
}

// SessionDepth returns a session's externalized request counter (0 when the
// session has never been seen).
func (c *Componentized) SessionDepth(session string) int64 {
	v, ok := c.store.Get(SessionBucket, session)
	if !ok {
		return 0
	}
	var n int64
	for _, ch := range v {
		n = n*10 + int64(ch-'0')
	}
	return n
}
