package supervise

import (
	"testing"

	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
)

// TestRestoreRungReplaysWAL walks the ladder against a database with durable
// state and requires every state-preserving rung — the microreboot fallback's
// Restore(preOp) and the restore rung's Restore(epoch) — to be served by
// write-ahead-log replay, never by the logical snapshot fallback. The breaker
// threshold stops the ladder before the restart rung, whose Reset
// legitimately destroys the log.
func TestRestoreRungReplaysWAL(t *testing.T) {
	env := simenv.New(31)
	srv := sqldb.New(env, faultinject.NewSet(sqldb.MechOrderByEmpty))
	sc := sqldb.Scenarios(srv)[sqldb.MechOrderByEmpty]
	// CheckpointEvery 1 keeps the epoch on the served prefix (a snapshot
	// with durable state), so the restore rung's rollback target is real.
	sup := New(srv, Config{Seed: 31, BreakerThreshold: 5, CheckpointEvery: 1})
	rep, err := sup.Run(wrapOps(sc.Ops, OpRead))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// seedTable's five statements serve; the empty-ORDER-BY query is the
	// deterministic failure the ladder cannot repair.
	if rep.OpsOK != 5 || rep.OpsFailed != 1 {
		t.Fatalf("ops ok/failed = %d/%d, want 5/1\n%s", rep.OpsOK, rep.OpsFailed, rep)
	}
	if rep.Escalations[RungRestore] == 0 {
		t.Fatalf("the ladder never reached the restore rung\n%s", rep)
	}
	if rep.Escalations[RungRestart] != 0 {
		t.Fatalf("breaker should open before the state-discarding restart rung\n%s", rep)
	}
	// Two retry-rung restores, two microreboot fallbacks, one restore-rung
	// rollback: all served by replay.
	if got := srv.WALReplays(); got < 5 {
		t.Errorf("wal replays = %d, want >= 5 (every ladder restore)", got)
	}
	// Exactly one fallback, and it is the designed one: the give-up path
	// restores the pre-op snapshot, which lies past the restore rung's
	// truncation point — the rolled-back log cannot serve it by replay.
	if got := srv.LogicalFallbacks(); got != 1 {
		t.Errorf("logical fallbacks = %d, want exactly the post-rollback give-up restore", got)
	}
}

// TestRestartRungFallsBackToLogicalRebuild is the complementary path: once
// the restart rung's Reset has deliberately destroyed the store, a later
// restore cannot be served by replay and must take the logical rebuild —
// which also resyncs the store so replay works again afterwards.
func TestRestartRungFallsBackToLogicalRebuild(t *testing.T) {
	env := simenv.New(32)
	srv := sqldb.New(env, faultinject.NewSet(sqldb.MechOrderByEmpty))
	sc := sqldb.Scenarios(srv)[sqldb.MechOrderByEmpty]
	sup := New(srv, Config{Seed: 32})
	rep, err := sup.Run(wrapOps(sc.Ops, OpRead))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Escalations[RungRestart] == 0 {
		t.Fatalf("the ladder never reached the restart rung\n%s", rep)
	}
	if got := srv.LogicalFallbacks(); got == 0 {
		t.Error("no logical fallback recorded after Reset destroyed the log")
	}
	if got := srv.WALReplays(); got < 2 {
		t.Errorf("wal replays = %d, want >= 2 before the restart rung", got)
	}
}
