package corpus

import (
	"strings"
	"testing"

	"faultstudy/internal/taxonomy"
)

// Table 1-3 oracle counts from the paper.
var paperCounts = map[taxonomy.Application]map[taxonomy.FaultClass]int{
	taxonomy.AppApache: {
		taxonomy.ClassEnvIndependent:           36,
		taxonomy.ClassEnvDependentNonTransient: 7,
		taxonomy.ClassEnvDependentTransient:    7,
	},
	taxonomy.AppGnome: {
		taxonomy.ClassEnvIndependent:           39,
		taxonomy.ClassEnvDependentNonTransient: 3,
		taxonomy.ClassEnvDependentTransient:    3,
	},
	taxonomy.AppMySQL: {
		taxonomy.ClassEnvIndependent:           38,
		taxonomy.ClassEnvDependentNonTransient: 4,
		taxonomy.ClassEnvDependentTransient:    2,
	},
}

func TestTableCounts(t *testing.T) {
	for app, want := range paperCounts {
		got := CountByClass(ByApp(app))
		for class, n := range want {
			if got[class] != n {
				t.Errorf("%s %s: %d faults, paper says %d", app, class.Short(), got[class], n)
			}
		}
	}
}

func TestTotals(t *testing.T) {
	if n := len(Apache()); n != 50 {
		t.Errorf("Apache corpus has %d faults, want 50", n)
	}
	if n := len(Gnome()); n != 45 {
		t.Errorf("GNOME corpus has %d faults, want 45", n)
	}
	if n := len(MySQL()); n != 44 {
		t.Errorf("MySQL corpus has %d faults, want 44", n)
	}
	if n := len(All()); n != 139 {
		t.Errorf("corpus has %d faults, want 139", n)
	}
}

func TestAggregateDiscussionNumbers(t *testing.T) {
	// §5.4: of the 139 bugs, 14 are EDN (10%) and 12 are EDT (9%).
	counts := CountByClass(All())
	if counts[taxonomy.ClassEnvDependentNonTransient] != 14 {
		t.Errorf("EDN total = %d, want 14", counts[taxonomy.ClassEnvDependentNonTransient])
	}
	if counts[taxonomy.ClassEnvDependentTransient] != 12 {
		t.Errorf("EDT total = %d, want 12", counts[taxonomy.ClassEnvDependentTransient])
	}
	if counts[taxonomy.ClassEnvIndependent] != 113 {
		t.Errorf("EI total = %d, want 113", counts[taxonomy.ClassEnvIndependent])
	}
}

func TestEIShareRange(t *testing.T) {
	// §1/§8: 72-87% of each application's faults are environment-independent.
	for _, app := range taxonomy.Applications() {
		faults := ByApp(app)
		counts := CountByClass(faults)
		share := float64(counts[taxonomy.ClassEnvIndependent]) / float64(len(faults))
		if share < 0.72 || share > 0.87 {
			t.Errorf("%s EI share = %.2f, want within [0.72, 0.87]", app, share)
		}
	}
}

func TestUniqueIDs(t *testing.T) {
	seen := make(map[string]bool)
	for _, f := range All() {
		if seen[f.ID] {
			t.Errorf("duplicate fault ID %s", f.ID)
		}
		seen[f.ID] = true
	}
}

func TestValidation(t *testing.T) {
	for _, f := range All() {
		if err := validateSet([]*Fault{f}); err != nil {
			t.Errorf("fault %s: %v", f.ID, err)
		}
		if f.Synopsis == "" || f.Description == "" {
			t.Errorf("fault %s has empty text", f.ID)
		}
		if f.HowToRepeat == "" {
			t.Errorf("fault %s has no How-To-Repeat", f.ID)
		}
		r := f.Report()
		if err := r.Validate(); err != nil {
			t.Errorf("fault %s report: %v", f.ID, err)
		}
		if !r.Qualifies() {
			t.Errorf("fault %s report does not meet the study bar", f.ID)
		}
	}
}

func TestByID(t *testing.T) {
	f, ok := ByID("apache/ei-long-url")
	if !ok {
		t.Fatal("apache/ei-long-url missing")
	}
	if f.Mechanism != "httpd/long-url-overflow" {
		t.Errorf("mechanism = %q", f.Mechanism)
	}
	if _, ok := ByID("nope/nothing"); ok {
		t.Error("ByID should miss for unknown ID")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	// The synthesized records must be identical across calls.
	a := Apache()
	b := Apache()
	if len(a) != len(b) {
		t.Fatal("Apache() length varies")
	}
	for i := range a {
		if a[i] != b[i] { // memoized: same pointers
			t.Fatalf("Apache() not memoized at %d", i)
		}
	}
	// Rebuild from scratch and compare content.
	x := buildApache()
	y := buildApache()
	for i := range x {
		if x[i].ID != y[i].ID || x[i].Synopsis != y[i].Synopsis || x[i].Release != y[i].Release || !x[i].Filed.Equal(y[i].Filed) {
			t.Fatalf("buildApache not deterministic at %d: %s vs %s", i, x[i].ID, y[i].ID)
		}
	}
}

func TestApacheReleaseDistribution(t *testing.T) {
	// Figure 1 shape: totals grow with newer releases; EI share roughly
	// constant (each release majority EI).
	byRel := make(map[string]map[taxonomy.FaultClass]int)
	order := []string{"1.2.6", "1.3.0", "1.3.1", "1.3.2", "1.3.3", "1.3.4"}
	for _, f := range Apache() {
		if byRel[f.Release] == nil {
			byRel[f.Release] = make(map[taxonomy.FaultClass]int)
		}
		byRel[f.Release][f.Class]++
	}
	if len(byRel) != len(order) {
		t.Fatalf("releases = %d, want %d", len(byRel), len(order))
	}
	prevTotal := 0
	for _, rel := range order {
		counts := byRel[rel]
		total := counts[taxonomy.ClassEnvIndependent] + counts[taxonomy.ClassEnvDependentNonTransient] + counts[taxonomy.ClassEnvDependentTransient]
		if total < prevTotal {
			t.Errorf("release %s total %d < previous %d; totals should grow", rel, total, prevTotal)
		}
		prevTotal = total
		if 2*counts[taxonomy.ClassEnvIndependent] < total {
			t.Errorf("release %s: EI %d not a majority of %d", rel, counts[taxonomy.ClassEnvIndependent], total)
		}
	}
}

func TestMySQLLastReleaseSmall(t *testing.T) {
	// Figure 3: the last release has substantially fewer faults because it is
	// very new.
	counts := make(map[string]int)
	for _, f := range MySQL() {
		counts[f.Release]++
	}
	last := counts["3.23.2"]
	prev := counts["3.22.29"]
	if last >= prev/2 {
		t.Errorf("last release has %d faults vs %d before; want a substantial drop", last, prev)
	}
}

func TestGnomeTimeDistributionDips(t *testing.T) {
	// Figure 2: report volume decreases for a short interval before
	// increasing again.
	buckets := make(map[string]int)
	for _, f := range Gnome() {
		buckets[f.Filed.Format("2006-01")]++
	}
	if len(buckets) < 4 {
		t.Fatalf("GNOME reports span %d months, want >= 4 buckets", len(buckets))
	}
	months := []string{"1998-10", "1999-01", "1999-04", "1999-07", "1999-10"}
	var series []int
	for _, m := range months {
		series = append(series, buckets[m])
	}
	dipped := false
	for i := 1; i < len(series)-1; i++ {
		if series[i] < series[i-1] && series[i+1] > series[i] {
			dipped = true
		}
	}
	if !dipped {
		t.Errorf("GNOME series %v shows no dip-then-rise", series)
	}
}

func TestMechanismNamespaces(t *testing.T) {
	prefixes := map[taxonomy.Application]string{
		taxonomy.AppApache: "httpd/",
		taxonomy.AppGnome:  "desktop/",
		taxonomy.AppMySQL:  "sqldb/",
	}
	for _, f := range All() {
		if !strings.HasPrefix(f.Mechanism, prefixes[f.App]) {
			t.Errorf("fault %s mechanism %q lacks prefix %q", f.ID, f.Mechanism, prefixes[f.App])
		}
	}
}

func TestFiledDatesOrderedWithinRelease(t *testing.T) {
	for _, f := range All() {
		if f.Filed.Year() < 1998 || f.Filed.Year() > 1999 {
			t.Errorf("fault %s filed %v outside the study window", f.ID, f.Filed)
		}
	}
}
