// Package chaoshttp injects classified environmental faults into HTTP
// traffic, deterministically. It is the mining pipeline's chaos layer: the
// paper's taxonomy (environment-dependent-transient and -nontransient
// faults, §4) made executable at the transport boundary, so the crawler and
// its resilient client can be measured fault-class by fault-class instead of
// only reasoned about.
//
// The package offers the same fault plan in two shapes:
//
//   - Injector, an http.RoundTripper that wraps any inner transport (the
//     in-memory HandlerTransport in experiments, a real transport in the
//     CLI) and perturbs requests on the client side; and
//   - Middleware, an http.Handler wrapper that perturbs responses on the
//     server side, for chaos against a served bugsite.
//
// Both draw every decision from the configured seed alone: a fault targets
// a URL iff a SplitMix64-derived hash of (seed, fault, path) falls under
// the fault's rate, so two runs with equal seeds inject the same faults at
// the same URLs regardless of worker count, interleaving, or which shape is
// used. Transient (EDT) faults fire once per URL and then heal — the
// retry-survivable case; nontransient (EDN) faults persist for the life of
// the injector — the case the paper predicts generic recovery cannot help.
package chaoshttp

import (
	"errors"
	"time"

	"faultstudy/internal/taxonomy"
)

// Kind is the mechanical behaviour of one fault spec.
type Kind int

const (
	// KindStatusOnce serves one synthetic error status (with a Retry-After
	// hint) for the first request to a targeted URL, then heals. EDT.
	KindStatusOnce Kind = iota
	// KindConnResetOnce fails the first request to a targeted URL with a
	// connection-reset transport error, then heals. EDT.
	KindConnResetOnce
	// KindLatencyOnce delays the first response from a targeted URL past any
	// sane per-try deadline, then heals — a one-off latency spike. EDT.
	KindLatencyOnce
	// KindTruncateOnce serves the first response from a targeted URL with
	// its body cut short of the declared Content-Length, then heals. EDT.
	KindTruncateOnce
	// KindDNSOnce fails the first request to a targeted URL with a
	// transient name-resolution error, then heals. EDT.
	KindDNSOnce
	// KindStatusAlways serves a synthetic error status for every request to
	// a targeted URL — a persistent server-side fault. EDN.
	KindStatusAlways
	// KindHostExhaust fails every request, regardless of URL, once the
	// injector has seen TriggerAfter requests — descriptor/quota exhaustion
	// in the manner of simenv's resource tables. EDN.
	KindHostExhaust
	// KindSlowAlways delays every response from a targeted URL past any
	// per-try deadline, forever. EDN.
	KindSlowAlways
)

// Fault is one injectable fault spec: a named, classified behaviour plus its
// parameters. The catalogue constructors return the specs the RESIL
// experiment sweeps; callers may also build their own.
type Fault struct {
	// Name identifies the fault in logs, metrics, and reports
	// (e.g. "edt/503-once").
	Name string
	// Class is the paper's environment-dependence class for this fault.
	Class taxonomy.FaultClass
	// Kind selects the mechanical behaviour.
	Kind Kind
	// Rate is the fraction of URLs targeted, in [0, 1]. KindHostExhaust
	// ignores it (exhaustion is host-wide).
	Rate float64
	// Status is the synthetic status code for the status kinds.
	Status int
	// RetryAfter, when nonzero, is sent as a Retry-After header (whole
	// seconds) with synthetic statuses.
	RetryAfter time.Duration
	// Latency is the injected delay for the latency kinds.
	Latency time.Duration
	// TriggerAfter is the request count at which KindHostExhaust trips.
	TriggerAfter int
}

// Transient reports whether the fault heals after firing once per URL.
func (f Fault) Transient() bool { return f.Class == taxonomy.ClassEnvDependentTransient }

// Injected errors, distinguishable by errors.Is so clients and tests can
// assert on the exact mechanism.
var (
	// ErrInjectedReset is the synthetic connection-reset transport error.
	ErrInjectedReset = errors.New("chaoshttp: connection reset by peer (injected)")
	// ErrInjectedDNS is the synthetic transient name-resolution error.
	ErrInjectedDNS = errors.New("chaoshttp: temporary failure in name resolution (injected)")
	// ErrInjectedExhaust is the synthetic descriptor/quota-exhaustion error.
	ErrInjectedExhaust = errors.New("chaoshttp: cannot assign requested address: descriptor table full (injected)")
)

// CatalogEDT returns the transient fault specs: each fires once per targeted
// URL and then heals, so a state-preserving retry is expected to survive it.
// This is the paper's EDT column made mechanical.
func CatalogEDT() []Fault {
	return []Fault{
		{Name: "edt/503-once", Class: taxonomy.ClassEnvDependentTransient, Kind: KindStatusOnce,
			Rate: 0.25, Status: 503, RetryAfter: 1 * time.Second},
		{Name: "edt/429-once", Class: taxonomy.ClassEnvDependentTransient, Kind: KindStatusOnce,
			Rate: 0.25, Status: 429, RetryAfter: 1 * time.Second},
		{Name: "edt/conn-reset", Class: taxonomy.ClassEnvDependentTransient, Kind: KindConnResetOnce,
			Rate: 0.25},
		{Name: "edt/latency-spike", Class: taxonomy.ClassEnvDependentTransient, Kind: KindLatencyOnce,
			Rate: 0.25, Latency: 15 * time.Second},
		{Name: "edt/truncated-body", Class: taxonomy.ClassEnvDependentTransient, Kind: KindTruncateOnce,
			Rate: 0.25},
		{Name: "edt/dns-flap", Class: taxonomy.ClassEnvDependentTransient, Kind: KindDNSOnce,
			Rate: 0.25},
	}
}

// CatalogEDN returns the nontransient fault specs: each persists for the
// injector's lifetime, so no amount of state-preserving retry changes the
// outcome — the paper's negative result for generic recovery.
func CatalogEDN() []Fault {
	return []Fault{
		{Name: "edn/persistent-500", Class: taxonomy.ClassEnvDependentNonTransient, Kind: KindStatusAlways,
			Rate: 0.25, Status: 500},
		{Name: "edn/fd-exhausted", Class: taxonomy.ClassEnvDependentNonTransient, Kind: KindHostExhaust,
			TriggerAfter: 40},
		{Name: "edn/slow-forever", Class: taxonomy.ClassEnvDependentNonTransient, Kind: KindSlowAlways,
			Rate: 0.25, Latency: 30 * time.Second},
	}
}

// Catalog returns the full fault catalogue, EDT first, in a fixed order the
// RESIL experiment's arm numbering relies on.
func Catalog() []Fault { return append(CatalogEDT(), CatalogEDN()...) }
