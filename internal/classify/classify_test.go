package classify

import (
	"testing"
	"testing/quick"

	"faultstudy/internal/corpus"
	"faultstudy/internal/report"
	"faultstudy/internal/taxonomy"
)

func TestClassifierMatchesOracleExactly(t *testing.T) {
	c := New(Options{})
	cm := Evaluate(c, corpus.All())
	if cm.Accuracy() != 1.0 {
		t.Errorf("classifier disagrees with the oracle on %d faults:\n%s",
			len(cm.Disagreements), cm)
		for _, d := range cm.Disagreements {
			t.Log(d)
		}
	}
}

func TestClassifierReproducesTables(t *testing.T) {
	c := New(Options{})
	want := map[taxonomy.Application]map[taxonomy.FaultClass]int{
		taxonomy.AppApache: {
			taxonomy.ClassEnvIndependent:           36,
			taxonomy.ClassEnvDependentNonTransient: 7,
			taxonomy.ClassEnvDependentTransient:    7,
		},
		taxonomy.AppGnome: {
			taxonomy.ClassEnvIndependent:           39,
			taxonomy.ClassEnvDependentNonTransient: 3,
			taxonomy.ClassEnvDependentTransient:    3,
		},
		taxonomy.AppMySQL: {
			taxonomy.ClassEnvIndependent:           38,
			taxonomy.ClassEnvDependentNonTransient: 4,
			taxonomy.ClassEnvDependentTransient:    2,
		},
	}
	for app, table := range want {
		cm := Evaluate(c, corpus.ByApp(app))
		got := cm.PredictedCounts()
		for class, n := range table {
			if got[class] != n {
				t.Errorf("%s: predicted %d %s, paper table says %d",
					app, got[class], class.Short(), n)
			}
		}
	}
}

func TestClassifyEnvIndependentDefault(t *testing.T) {
	c := New(Options{})
	r := &report.Report{
		ID: "x", App: taxonomy.AppApache,
		Synopsis:    "server crashes when given a weird header",
		Description: "Crashes every time on any machine.",
	}
	res := c.Classify(r)
	if res.Class != taxonomy.ClassEnvIndependent {
		t.Errorf("class = %v, want EI", res.Class)
	}
	if res.Trigger != taxonomy.TriggerWorkloadOnly {
		t.Errorf("trigger = %v", res.Trigger)
	}
	if len(res.Evidence) == 0 {
		t.Error("expected deterministic evidence")
	}
}

func TestClassifyRace(t *testing.T) {
	c := New(Options{})
	r := &report.Report{
		ID: "x", App: taxonomy.AppMySQL,
		Synopsis:    "server dies under load",
		Description: "Looks like a race condition between two threads; not reliably reproducible, fails only sometimes.",
	}
	res := c.Classify(r)
	if res.Class != taxonomy.ClassEnvDependentTransient {
		t.Errorf("class = %v, want EDT", res.Class)
	}
	if res.Trigger != taxonomy.TriggerRace {
		t.Errorf("trigger = %v, want race", res.Trigger)
	}
}

func TestClassifyDiskFull(t *testing.T) {
	c := New(Options{})
	r := &report.Report{
		ID: "x", App: taxonomy.AppMySQL,
		Synopsis:    "all inserts fail",
		Description: "A full file system prevents all operations until space is freed.",
	}
	res := c.Classify(r)
	if res.Class != taxonomy.ClassEnvDependentNonTransient {
		t.Errorf("class = %v, want EDN", res.Class)
	}
	if res.Trigger != taxonomy.TriggerDiskFull {
		t.Errorf("trigger = %v, want disk-full", res.Trigger)
	}
}

func TestReverseDNSOutranksDNS(t *testing.T) {
	c := New(Options{})
	r := &report.Report{
		ID: "x", App: taxonomy.AppMySQL,
		Synopsis:    "crash on connect",
		Description: "Crashes when reverse DNS is not configured for the remote host; the PTR record is missing.",
	}
	res := c.Classify(r)
	if res.Trigger != taxonomy.TriggerHostConfig {
		t.Errorf("trigger = %v, want host-config", res.Trigger)
	}
	if res.Class != taxonomy.ClassEnvDependentNonTransient {
		t.Errorf("class = %v, want EDN", res.Class)
	}
}

func TestNegationGuard(t *testing.T) {
	if matchPhrase("this is not reproducible at all", "reproducible") {
		t.Error("negated cue should not match")
	}
	if !matchPhrase("fully reproducible here", "reproducible") {
		t.Error("plain cue should match")
	}
	if !matchPhrase("not here, but reproducible there", "reproducible") {
		t.Error("later unnegated occurrence should match")
	}
}

func TestConfidenceBounds(t *testing.T) {
	c := New(Options{})
	for _, f := range corpus.All() {
		res := c.Classify(f.Report())
		if res.Confidence <= 0 || res.Confidence > 1 {
			t.Errorf("%s: confidence %v out of range", f.ID, res.Confidence)
		}
	}
}

func TestDisabledTriggers(t *testing.T) {
	c := New(Options{DisabledTriggers: map[taxonomy.TriggerKind]bool{taxonomy.TriggerRace: true}})
	r := &report.Report{
		ID: "x", App: taxonomy.AppMySQL,
		Synopsis:    "server dies",
		Description: "race condition between threads, not reliably reproducible",
	}
	res := c.Classify(r)
	if res.Trigger == taxonomy.TriggerRace {
		t.Error("disabled trigger still selected")
	}
}

func TestWeightScaleBiasesTowardEI(t *testing.T) {
	// With trigger weights scaled to near zero, everything becomes
	// environment-independent — the ablation's extreme point.
	c := New(Options{TriggerWeightScale: 0.01})
	cm := Evaluate(c, corpus.All())
	counts := cm.PredictedCounts()
	if counts[taxonomy.ClassEnvIndependent] != cm.Total {
		t.Errorf("EI predictions = %d of %d; crushing trigger weights should flatten to EI",
			counts[taxonomy.ClassEnvIndependent], cm.Total)
	}
}

func TestMinEvidenceFloor(t *testing.T) {
	r := &report.Report{
		ID: "x", App: taxonomy.AppApache,
		Synopsis:    "weird failure",
		Description: "the disk cache seems involved",
	}
	base := New(Options{}).Classify(r)
	if base.Class != taxonomy.ClassEnvDependentNonTransient {
		t.Skip("premise changed: weak cue no longer wins at default options")
	}
	floored := New(Options{MinEvidence: 10}).Classify(r)
	if floored.Class != taxonomy.ClassEnvIndependent {
		t.Errorf("MinEvidence floor not applied: %v", floored.Class)
	}
}

func TestConfusionString(t *testing.T) {
	c := New(Options{})
	cm := Evaluate(c, corpus.Apache())
	s := cm.String()
	if s == "" {
		t.Error("empty confusion rendering")
	}
}

// Property: the classifier never panics and always returns a valid class for
// arbitrary report text.
func TestClassifierTotalProperty(t *testing.T) {
	c := New(Options{})
	f := func(synopsis, description, howto string) bool {
		res := c.Classify(&report.Report{
			ID:          "fuzz",
			App:         taxonomy.AppApache,
			Synopsis:    synopsis,
			Description: description,
			HowToRepeat: howto,
		})
		return res.Class.Valid() && res.Confidence > 0 && res.Confidence <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
