// Package stats provides the small statistical and rendering toolkit the
// experiment harness uses: class tallies, proportions with binomial
// confidence intervals, contingency-table chi-square, and ASCII tables and
// stacked bar charts for regenerating the paper's tables and figures in a
// terminal.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Proportion is a ratio with its sample size.
type Proportion struct {
	// Hits is the numerator.
	Hits int
	// N is the denominator.
	N int
}

// Value returns the ratio (0 when N is 0).
func (p Proportion) Value() float64 {
	if p.N == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.N)
}

// Percent renders the proportion as a percentage string.
func (p Proportion) Percent() string {
	return fmt.Sprintf("%.0f%%", 100*p.Value())
}

// Wilson returns the 95% Wilson score interval for the proportion — the
// right interval for the small per-class samples in this study.
func (p Proportion) Wilson() (lo, hi float64) {
	if p.N == 0 {
		return 0, 1
	}
	const z = 1.96
	n := float64(p.N)
	phat := p.Value()
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	margin := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the sample by linear
// interpolation between order statistics (the R-7/Excel definition). The
// input slice is not modified and need not be sorted. An empty sample
// returns 0; q outside [0,1] is clamped; a NaN q returns 0 rather than
// propagating into an index computation. NaN samples are ignored — a single
// corrupt measurement must not poison a whole summary row — and a sample of
// only NaNs behaves like an empty sample.
func Quantile(xs []float64, q float64) float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 || math.IsNaN(q) {
		return 0
	}
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// ChiSquare computes the chi-square statistic of an observed contingency
// table against independence, with its degrees of freedom. Rows and columns
// with zero totals are ignored.
func ChiSquare(table [][]float64) (chi2 float64, dof int) {
	if len(table) == 0 {
		return 0, 0
	}
	cols := len(table[0])
	rowTot := make([]float64, len(table))
	colTot := make([]float64, cols)
	total := 0.0
	for i, row := range table {
		for j, v := range row {
			rowTot[i] += v
			colTot[j] += v
			total += v
		}
	}
	if total == 0 {
		return 0, 0
	}
	liveRows, liveCols := 0, 0
	for _, v := range rowTot {
		if v > 0 {
			liveRows++
		}
	}
	for _, v := range colTot {
		if v > 0 {
			liveCols++
		}
	}
	for i, row := range table {
		for j, obs := range row {
			expect := rowTot[i] * colTot[j] / total
			if expect > 0 {
				d := obs - expect
				chi2 += d * d / expect
			}
		}
	}
	dof = (liveRows - 1) * (liveCols - 1)
	if dof < 0 {
		dof = 0
	}
	return chi2, dof
}

// Table renders rows as an aligned ASCII table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// StackedSeries is one category's per-bucket counts for a stacked bar chart.
type StackedSeries struct {
	// Label names the category (e.g. "EI").
	Label string
	// Glyph is the bar character for the category.
	Glyph rune
	// Counts holds one value per bucket.
	Counts []int
}

// StackedBars renders a horizontal stacked bar chart: one line per bucket,
// with each series contributing a run of its glyph. This regenerates the
// shape of the paper's Figures 1–3 in a terminal.
func StackedBars(buckets []string, series []StackedSeries) string {
	width := 0
	for _, b := range buckets {
		if len(b) > width {
			width = len(b)
		}
	}
	var out strings.Builder
	for i, bucket := range buckets {
		fmt.Fprintf(&out, "%-*s |", width, bucket)
		total := 0
		for _, s := range series {
			if i < len(s.Counts) {
				out.WriteString(strings.Repeat(string(s.Glyph), s.Counts[i]))
				total += s.Counts[i]
			}
		}
		fmt.Fprintf(&out, " %d\n", total)
	}
	out.WriteString(strings.Repeat(" ", width) + " +")
	var legend []string
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Glyph, s.Label))
	}
	out.WriteString(" " + strings.Join(legend, ", ") + "\n")
	return out.String()
}
