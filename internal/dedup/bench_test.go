package dedup

import (
	"fmt"
	"testing"
	"time"

	"faultstudy/internal/report"
	"faultstudy/internal/taxonomy"
)

// benchReports builds n reports: half distinct, half duplicates of the first
// half.
func benchReports(n int) []*report.Report {
	t0 := time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([]*report.Report, 0, n)
	for i := 0; i < n/2; i++ {
		text := fmt.Sprintf(
			"the server crashes when operation %d is issued against module %d; "+
				"the trace ends in frame f%d and the failure is deterministic on every platform", i, i%7, i%13)
		out = append(out, &report.Report{
			ID: fmt.Sprintf("R-%d", i), App: taxonomy.AppApache,
			Synopsis:    fmt.Sprintf("crash on operation %d in module %d", i, i%7),
			Description: text, Filed: t0.AddDate(0, 0, i),
		})
	}
	for i := 0; i < n-n/2; i++ {
		orig := out[i%(n/2)]
		out = append(out, &report.Report{
			ID: fmt.Sprintf("D-%d", i), App: taxonomy.AppApache,
			Synopsis:    orig.Synopsis,
			Description: "same as the earlier report: " + orig.Description,
			Filed:       orig.Filed.AddDate(0, 1, 0),
		})
	}
	return out
}

func BenchmarkMark500(b *testing.B) {
	reports := benchReports(500)
	b.ReportAllocs()
	b.ResetTimer()
	var marked int
	for i := 0; i < b.N; i++ {
		marked = Mark(reports, Options{})
	}
	b.ReportMetric(float64(marked), "duplicates")
}

func BenchmarkSimilarity(b *testing.B) {
	a := "the server dies with a segfault when the submitted url is very long, hash overflow in uri processing"
	c := "server dies with a segfault when the submitted url is very long; looks like hash overflow in the uri code"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Similarity(a, c, 3)
	}
}

func BenchmarkShingles(b *testing.B) {
	text := benchReports(2)[0].Text()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Shingles(text, 3)
	}
}
