package chaoshttp

import (
	"context"
	"sync"
	"time"
)

// Clock is the injector's view of time: latency faults advance it instead of
// sleeping, so chaos runs are as fast as the hardware allows and byte-
// reproducible. It is the minimal subset of the resilient client's clock;
// *VirtualClock satisfies both.
type Clock interface {
	// Now returns a monotonic reading.
	Now() time.Duration
	// Advance moves time forward by d.
	Advance(d time.Duration)
}

// VirtualClock is a shared, concurrency-safe virtual monotonic clock. The
// chaos injector advances it to model latency, the resilient client reads
// and sleeps on it for deadlines and backoff, and the crawler paces on it —
// one timeline, no wall-clock reads, so MTTR measurements and retry
// schedules are deterministic functions of the seed.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewVirtualClock returns a clock at time zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the current virtual reading.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative advances are ignored).
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Sleep advances the clock by d immediately, honoring an already-expired
// context. It satisfies the resilient client's Clock and the crawler's
// Sleeper without ever touching the wall clock.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}

// WithTimeout returns ctx unchanged: virtual per-try deadlines are enforced
// after the fact by comparing clock readings, not by real timers.
func (c *VirtualClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return ctx, func() {}
}
