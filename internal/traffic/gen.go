package traffic

import (
	"fmt"
	"math/rand"
	"time"
)

// Arrival is one entry of the precomputed open-loop schedule.
type Arrival struct {
	// Seq is the request's position in the schedule.
	Seq int
	// User is the simulated user the request belongs to. Users rotate
	// round-robin so a schedule at least as long as the user pool exercises
	// every user.
	User int
	// At is the absolute virtual-clock arrival time.
	At time.Duration
	// U is the request's uniform category draw in [0, 1); the serving tier
	// maps it onto an operation mix.
	U float64
	// Service is the request's sampled service latency — what the request
	// costs a healthy server. Open-loop traffic does not serialize on it:
	// it is recorded, not charged to the clock.
	Service time.Duration
}

// GenConfig describes one open-loop traffic schedule.
type GenConfig struct {
	// Seed makes the schedule reproducible; every draw comes from it.
	Seed int64
	// Users is the size of the simulated-user pool (must be positive).
	Users int
	// Requests is the schedule length (must be positive).
	Requests int
	// Process is the arrival process; nil defaults to Poisson with a 1ms
	// mean gap.
	Process Arrivals
	// Service is the service-latency distribution; nil defaults to
	// DefaultServiceDist.
	Service *LatencyDist
}

// DefaultServiceDist is the service-latency distribution used when a
// schedule does not supply one: mostly fast sub-millisecond hits with a
// small slow tail, spread to exercise the request-latency histogram buckets.
func DefaultServiceDist() *LatencyDist {
	l, err := ParseLatencyDist("60%300us,25%900us,10%3ms,4%12ms,1%80ms")
	if err != nil {
		panic(err) // the literal above is a compile-time property
	}
	return l
}

// Schedule precomputes the whole arrival stream for cfg: a pure function of
// the seed, byte-identical wherever it is computed. One rng drives gaps,
// category draws, and service samples in arrival order, so the schedule is
// reproducible but the streams are not trivially correlated.
func Schedule(cfg GenConfig) ([]Arrival, error) {
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("traffic: schedule needs a positive user pool, got %d", cfg.Users)
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("traffic: schedule needs a positive request count, got %d", cfg.Requests)
	}
	proc := cfg.Process
	if proc == nil {
		proc = Poisson{MeanGap: time.Millisecond}
	}
	svc := cfg.Service
	if svc == nil {
		svc = DefaultServiceDist()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Arrival, cfg.Requests)
	var t time.Duration
	for i := range out {
		t += proc.Next(rng)
		u := rng.Float64()
		out[i] = Arrival{
			Seq:     i,
			User:    i % cfg.Users,
			At:      t,
			U:       u,
			Service: svc.Sample(rng.Float64()),
		}
	}
	return out, nil
}
