// Package recovery implements the recovery systems the paper reasons about
// (§2, §6) and runs them against the seeded faults — the end-to-end
// verification the authors proposed as future work (§5.4, §8).
//
// The central construct is the truly application-generic recovery system:
// it knows nothing about the application beyond the Application interface.
// On failure it declares the primary dead (the operating system reclaims
// every resource the dead process held), restores the checkpointed
// application state on a backup, lets the external world move (the takeover
// takes time; thread interleavings land differently), and re-executes the
// requested operation — because the user's task still has to be performed
// (§7: "all requested tasks need to be executed").
//
// The consequences the paper predicts fall out mechanically:
//
//   - environment-independent faults recur, because the state and the request
//     are both preserved exactly;
//   - nontransient environmental conditions (full disks, exhausted
//     descriptors the state re-acquires, broken host configuration) persist
//     across the takeover;
//   - transient conditions (races, DNS blips, slow links, drained entropy,
//     hung children the reclaim killed) clear, and the retry succeeds.
package recovery

import (
	"errors"
	"fmt"
	"time"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
)

// Application is the generic-recovery view of a simulated application. The
// recovery system may only use these methods — that is what makes it
// application-generic. internal/apps/httpd.Server, internal/apps/sqldb.Server
// and internal/apps/desktop.Desktop all satisfy it.
type Application interface {
	// Name returns the environment owner tag of the application's resources.
	Name() string
	// Start brings the application up, acquiring environment resources.
	Start() error
	// Stop shuts the application down gracefully.
	Stop()
	// Running reports whether the application is up.
	Running() bool
	// Snapshot captures the complete logical application state.
	Snapshot() ([]byte, error)
	// Restore replaces the logical state from a snapshot and restarts the
	// application, re-acquiring every state-mandated resource.
	Restore(snapshot []byte) error
	// Reset reinitializes the application to pristine state and restarts it
	// — the application-specific recovery path generic systems cannot use.
	Reset() error
	// Env returns the application's operating environment.
	Env() *simenv.Env
}

// Strategy selects a recovery system.
type Strategy int

const (
	// StrategyNone performs no recovery: the first failure is terminal.
	StrategyNone Strategy = iota + 1
	// StrategyProcessPairs is the truly generic system: checkpoint before
	// every operation; on failure, reclaim the dead primary's resources,
	// restore the checkpoint on the backup, let takeover time pass (the
	// environment evolves), and re-execute the failed operation.
	StrategyProcessPairs
	// StrategyProgressiveRetry is process pairs plus Wang93-style induced
	// environment change: each retry deliberately forces a different event
	// ordering at the failing program point and waits progressively longer.
	StrategyProgressiveRetry
	// StrategyCleanRestart is application-specific recovery: on failure,
	// reclaim and reinitialize the application to pristine state (losing all
	// accumulated state), then re-execute the failed operation.
	StrategyCleanRestart
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "none"
	case StrategyProcessPairs:
		return "process-pairs"
	case StrategyProgressiveRetry:
		return "progressive-retry"
	case StrategyCleanRestart:
		return "clean-restart"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies returns all strategies in presentation order.
func Strategies() []Strategy {
	return []Strategy{StrategyNone, StrategyProcessPairs, StrategyProgressiveRetry, StrategyCleanRestart}
}

// Generic reports whether the strategy is application-generic (uses no
// application-specific knowledge or code).
func (s Strategy) Generic() bool {
	return s == StrategyProcessPairs || s == StrategyProgressiveRetry
}

// Policy tunes a recovery run.
type Policy struct {
	// MaxRetries is how many times a failing operation is retried after
	// recovery before the run is declared lost (0 means 3).
	MaxRetries int
	// Takeover is the wall-clock the environment advances per recovery —
	// failure detection plus backup takeover (0 means 45s).
	Takeover time.Duration
	// SkipReclaim leaves the failed primary's operating-system resources
	// (hung children, held ports, open descriptors) in place instead of
	// reclaiming them — the ablation for the paper's observation that "the
	// recovery system is likely to kill all processes associated with the
	// application". With reclaim off, the process-table and port-holding
	// transients stop being survivable.
	SkipReclaim bool
	// GrowResources enables the §6.2 resource governor: when a failure's
	// underlying cause is an exhausted, growable environment resource
	// (descriptors, disk capacity, file-size limits, the opaque network
	// resource), the recovery widens the limit before retrying. Several
	// nontransient faults become survivable; conditions without a growable
	// resource stay fatal.
	GrowResources bool
	// Trace, when non-nil, receives an event at each step of a run: the
	// initial failure, every recovery action, every retry outcome, and the
	// final verdict. For logging and the recoverylab CLI.
	Trace func(TraceEvent)
}

// TraceEventKind discriminates trace events.
type TraceEventKind int

const (
	// TraceFailure is an operation failing with a seeded-bug error.
	TraceFailure TraceEventKind = iota + 1
	// TraceRecover is a recovery action (failover/restart) being applied.
	TraceRecover
	// TraceRetryOK is a retried operation succeeding.
	TraceRetryOK
	// TraceRetryFail is a retried operation failing again.
	TraceRetryFail
	// TraceGaveUp is the retry budget running out.
	TraceGaveUp
)

// String names the event kind.
func (k TraceEventKind) String() string {
	switch k {
	case TraceFailure:
		return "failure"
	case TraceRecover:
		return "recover"
	case TraceRetryOK:
		return "retry-ok"
	case TraceRetryFail:
		return "retry-fail"
	case TraceGaveUp:
		return "gave-up"
	default:
		return fmt.Sprintf("TraceEventKind(%d)", int(k))
	}
}

// TraceEvent is one step of a recovery run.
type TraceEvent struct {
	// Kind is the event kind.
	Kind TraceEventKind
	// At is the environment's monotonic virtual clock reading when the event
	// was emitted — deterministic for a seeded environment, so traces built
	// from these events are byte-stable across runs.
	At time.Duration
	// Op is the workload operation involved.
	Op string
	// Attempt is the retry attempt number (0 for the initial failure).
	Attempt int
	// Err is the error involved, when any.
	Err error
}

func (p Policy) withDefaults() Policy {
	// Negative values are configuration mistakes, not requests for "retry
	// minus-one times": clamp them to the defaults alongside the zero value.
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.Takeover <= 0 {
		p.Takeover = 45 * time.Second
	}
	return p
}

// Outcome is the result of running one scenario under one strategy.
type Outcome struct {
	// Mechanism is the seeded bug exercised.
	Mechanism string
	// Strategy is the recovery system used.
	Strategy Strategy
	// Survived reports whether the whole workload completed.
	Survived bool
	// Failures is how many operations failed during the run.
	Failures int
	// Recoveries is how many recoveries succeeded (the failed operation
	// passed on a retry).
	Recoveries int
	// Attempts is the total number of post-recovery retries executed.
	Attempts int
	// FirstFailure is the first seeded-bug failure observed.
	FirstFailure *faultinject.FailureError
	// Err is the terminal error for runs that did not survive.
	Err error
}

// Manager runs scenarios under recovery strategies.
type Manager struct {
	policy Policy
}

// NewManager builds a manager.
func NewManager(policy Policy) *Manager {
	return &Manager{policy: policy.withDefaults()}
}

// Run executes the scenario's workload against the application under the
// given strategy and reports the outcome. The application must be
// constructed with exactly the scenario's mechanism enabled and must not be
// started; Run starts it, stages the environment, and drives the ops.
//
// Errors are reserved for harness problems (the application failed in a way
// the scenario did not predict); every behaviour of the recovery system
// itself — including recoveries that make things worse — lands in Outcome.
func (m *Manager) Run(app Application, sc faultinject.Scenario, strat Strategy) (Outcome, error) {
	out := Outcome{Mechanism: sc.Mechanism, Strategy: strat}
	env := app.Env()
	if err := app.Start(); err != nil {
		return out, fmt.Errorf("recovery: start %s: %w", app.Name(), err)
	}
	defer app.Stop()
	if sc.Stage != nil {
		sc.Stage()
	}

	for _, op := range sc.Ops {
		snapshot, err := app.Snapshot()
		if err != nil {
			return out, fmt.Errorf("recovery: checkpoint before %q: %w", op.Name, err)
		}
		err = op.Do()
		if err == nil {
			continue
		}
		fe, ok := faultinject.AsFailure(err)
		if !ok {
			return out, fmt.Errorf("recovery: op %q failed outside the fault model: %w", op.Name, err)
		}
		out.Failures++
		if out.FirstFailure == nil {
			out.FirstFailure = fe
		}
		m.trace(env, TraceEvent{Kind: TraceFailure, Op: op.Name, Err: fe})
		if strat == StrategyNone {
			out.Err = fe
			return out, nil
		}

		recovered := false
		for attempt := 1; attempt <= m.policy.MaxRetries; attempt++ {
			out.Attempts++
			m.trace(env, TraceEvent{Kind: TraceRecover, Op: op.Name, Attempt: attempt})
			if rerr := m.recover(app, snapshot, strat, fe, attempt); rerr != nil {
				out.Err = fmt.Errorf("recovery failed on attempt %d: %w", attempt, rerr)
				return out, nil
			}
			retryErr := op.Do()
			if retryErr == nil {
				recovered = true
				out.Recoveries++
				m.trace(env, TraceEvent{Kind: TraceRetryOK, Op: op.Name, Attempt: attempt})
				break
			}
			m.trace(env, TraceEvent{Kind: TraceRetryFail, Op: op.Name, Attempt: attempt, Err: retryErr})
			if rfe, ok := faultinject.AsFailure(retryErr); ok {
				fe = rfe
				continue
			}
			// The strategy broke the application for this workload (e.g. a
			// state-discarding restart lost the tables an INSERT needs).
			out.Err = fmt.Errorf("retry of %q failed outside the fault model: %w", op.Name, retryErr)
			return out, nil
		}
		if !recovered {
			m.trace(env, TraceEvent{Kind: TraceGaveUp, Op: op.Name, Attempt: m.policy.MaxRetries, Err: fe})
			out.Err = fe
			return out, nil
		}
	}
	out.Survived = true
	return out, nil
}

// trace emits an event to the policy's trace hook, when one is set, stamped
// with the environment's monotonic clock. Nothing is computed when tracing
// is disabled.
func (m *Manager) trace(env *simenv.Env, ev TraceEvent) {
	if m.policy.Trace != nil {
		ev.At = env.Monotonic()
		m.policy.Trace(ev)
	}
}

// recover applies one recovery action. The dead primary's operating-system
// resources are reclaimed in every strategy — processes do not outlive their
// failure — and the environment advances by the takeover time.
func (m *Manager) recover(app Application, snapshot []byte, strat Strategy, fe *faultinject.FailureError, attempt int) error {
	env := app.Env()
	app.Stop()
	if !m.policy.SkipReclaim {
		env.ReclaimOwner(app.Name())
	}
	if m.policy.GrowResources {
		growResources(env, fe)
	}
	env.Advance(m.policy.Takeover)

	switch strat {
	case StrategyProcessPairs:
		// The backup runs on its own machine: interleavings land differently
		// and any adversarial scheduling alignment from the failed run is
		// gone.
		env.Sched().UnforceAll()
		env.Reroll()
		return app.Restore(snapshot)
	case StrategyProgressiveRetry:
		// Wang93: deliberately reorder events at the failing point so the
		// retry observes a *different* interleaving, and back off longer on
		// each attempt so slow external conditions have time to heal.
		env.Sched().UnforceAll()
		env.Reroll()
		env.Sched().Force(fe.Mechanism, attempt)
		env.Advance(time.Duration(attempt) * m.policy.Takeover)
		return app.Restore(snapshot)
	case StrategyCleanRestart:
		env.Sched().UnforceAll()
		env.Reroll()
		return app.Reset()
	default:
		return errors.New("recovery: unknown strategy")
	}
}
