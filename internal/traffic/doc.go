// Package traffic is the open-loop load-generator behind the serving tier:
// it turns a seed into a deterministic schedule of simulated-user arrivals on
// the virtual clock, and scores what each of those users experienced against
// a service-level objective.
//
// The pieces, in the order a SERVE run uses them:
//
//   - probability-encoded distributions ("90%10ms,10%100ms") describe service
//     latency the way pingpong's simulator encodes it: a comma-separated list
//     of <probability>%<value> segments whose probabilities sum to 100.
//     ParseDistribution handles the grammar; ParseLatencyDist adds duration
//     parsing on top.
//   - arrival processes (Poisson, fixed-rate) turn a mean inter-arrival gap
//     into a stream of gaps. Open-loop means arrivals do not wait for
//     completions: when the server stalls mid-recovery the schedule keeps
//     arriving, which is exactly how real users pile onto an outage.
//   - Schedule precomputes the whole arrival stream — sequence number, owning
//     user, arrival time, category draw, sampled service latency — as a pure
//     function of the seed, so any worker of a sharded sweep reproduces it
//     byte-for-byte.
//   - Record is what one request experienced (arrival time, latency, outcome,
//     the component that refused it); WriteRecords emits the JSONL request
//     log documented in OBSERVABILITY.md.
//   - SLO scores a record stream: a request is good when it was served within
//     the latency threshold, and Burn reports how many multiples of the error
//     budget the bad ones consumed — the user-visible cost of a recovery
//     mechanism, which is what the SERVE experiment ranks mechanisms by.
//
// Nothing in this package knows about the applications; the serving tier
// (internal/workload's Server interface, internal/experiment's SERVE sweep)
// binds schedules to componentized apps. SERVING.md documents the model
// end-to-end.
package traffic
