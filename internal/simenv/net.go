package simenv

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

var (
	// ErrPortInUse is returned when binding an occupied port — the study's
	// "hung child processes hang onto required network ports" condition.
	ErrPortInUse = errors.New("simenv: port already bound")
	// ErrNetworkDown is returned when the network interface is absent — the
	// study's "removal of PCMCIA network card" condition.
	ErrNetworkDown = errors.New("simenv: network interface unavailable")
	// ErrNetResourceExhausted is returned when an unspecified kernel network
	// resource is exhausted — the study's "unknown network resource
	// exhausted" condition.
	ErrNetResourceExhausted = errors.New("simenv: network resource exhausted")
)

// Network simulates the host's network stack: interface presence, link
// speed, port bindings, and an opaque kernel network resource pool.
type Network struct {
	mu           sync.Mutex
	ifacePresent bool
	slow         bool
	slowHealIn   time.Duration
	ports        map[int]string // port -> owner
	resourceCap  int
	resourceUsed int
}

func newNetwork() *Network {
	return &Network{
		ifacePresent: true,
		ports:        make(map[int]string),
		resourceCap:  1024,
	}
}

// RemoveInterface pulls the network card. The condition is nontransient:
// nothing restores the card without operator action.
func (n *Network) RemoveInterface() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ifacePresent = false
}

// InsertInterface restores the card.
func (n *Network) InsertInterface() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ifacePresent = true
}

// InterfacePresent reports whether the card is installed.
func (n *Network) InterfacePresent() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ifacePresent
}

// SlowFor stages a transiently slow network that heals after ttr of virtual
// time — the study's "slow network connection" transient.
func (n *Network) SlowFor(ttr time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.slow = true
	n.slowHealIn = ttr
}

// Slow reports whether the network is currently slow.
func (n *Network) Slow() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.slow
}

func (n *Network) advance(dt time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.slow {
		return
	}
	if dt >= n.slowHealIn {
		n.slow = false
		n.slowHealIn = 0
		return
	}
	n.slowHealIn -= dt
}

// BindPort binds a port for owner.
func (n *Network) BindPort(port int, owner string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.ifacePresent {
		return fmt.Errorf("bind %d: %w", port, ErrNetworkDown)
	}
	if holder, ok := n.ports[port]; ok {
		return fmt.Errorf("bind %d (held by %s): %w", port, holder, ErrPortInUse)
	}
	n.ports[port] = owner
	return nil
}

// ReleasePort unbinds a port.
func (n *Network) ReleasePort(port int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.ports[port]; !ok {
		return fmt.Errorf("simenv: release of unbound port %d", port)
	}
	delete(n.ports, port)
	return nil
}

// PortOwner returns the owner of a bound port, or "".
func (n *Network) PortOwner(port int) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ports[port]
}

// ReleaseOwnerPorts releases every port bound by owner and returns the count.
func (n *Network) ReleaseOwnerPorts(owner string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for port, o := range n.ports {
		if o == owner {
			delete(n.ports, port)
			c++
		}
	}
	return c
}

// AcquireResource takes one unit of the opaque kernel network resource.
func (n *Network) AcquireResource() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.ifacePresent {
		return ErrNetworkDown
	}
	if n.resourceUsed >= n.resourceCap {
		return ErrNetResourceExhausted
	}
	n.resourceUsed++
	return nil
}

// ReleaseResource returns one unit.
func (n *Network) ReleaseResource() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.resourceUsed > 0 {
		n.resourceUsed--
	}
}

// ResourceInUse returns the units currently held.
func (n *Network) ResourceInUse() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.resourceUsed
}

// SetResourceCap changes the opaque resource capacity.
func (n *Network) SetResourceCap(c int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.resourceCap = c
}
