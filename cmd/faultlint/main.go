// Command faultlint runs the environment-dependence analyzer suite over Go
// packages and gates on the findings: it exits 0 when every gating finding
// is suppressed or absent, 1 when active non-advisory findings remain, and 2
// on usage or load errors — the contract the CI job relies on. Advisory
// findings (envsite's classification of seeded fault sites) are reported
// but never fail the gate.
//
// Usage:
//
//	faultlint [flags] [packages]
//
//	faultlint ./...                  # whole module
//	faultlint -json ./internal/...   # machine-readable report
//	faultlint -rules envcheck,wallclock ./cmd/...
//	faultlint -list                  # describe the analyzers
//
// Packages are directories or dir/... trees relative to the working
// directory. Findings are suppressed in source with
// //faultlint:ignore <rule> [reason] on or above the flagged line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"faultstudy/internal/faultlint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit the JSON report (schema in EXPERIMENTS.md)")
		rules   = flag.String("rules", "", "comma-separated analyzer subset (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		verbose = flag.Bool("v", false, "include suppressed findings in text output")
	)
	flag.Parse()

	if *list {
		for _, a := range faultlint.Analyzers() {
			fmt.Printf("%-12s [%s] %s\n", a.Name, a.Class.Short(), a.Doc)
		}
		return 0
	}

	var ruleList []string
	if *rules != "" {
		for _, r := range strings.Split(*rules, ",") {
			if r = strings.TrimSpace(r); r != "" {
				ruleList = append(ruleList, r)
			}
		}
	}

	patterns := flag.Args()
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultlint:", err)
		return 2
	}
	pkgs, err := faultlint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultlint:", err)
		return 2
	}
	result, err := faultlint.Run(pkgs, ruleList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultlint:", err)
		return 2
	}

	if *jsonOut {
		data, err := faultlint.RenderJSON(result)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultlint:", err)
			return 2
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(faultlint.RenderText(result, *verbose))
	}

	if len(result.Gating()) > 0 {
		return 1
	}
	return 0
}
