package scrape

import (
	"fmt"
	"strings"
)

// Gap is one URL a crawl could not fetch: the per-URL residue of graceful
// degradation. A crawl that hits unrecoverable faults emits a partial
// corpus plus its gaps, instead of aborting — the miner's version of the
// supervision layer's degraded mode.
type Gap struct {
	// URL is the page that could not be fetched.
	URL string
	// Reason is the final error text.
	Reason string
}

// GapsOf extracts the gap entries from a crawl's pages, in crawl order.
func GapsOf(pages []*Page) []Gap {
	var out []Gap
	for _, p := range pages {
		if p.Err != nil {
			out = append(out, Gap{URL: p.URL, Reason: p.Err.Error()})
		}
	}
	return out
}

// Coverage summarizes a crawl: pages attempted, fetched cleanly (2xx),
// non-2xx responses, and gaps.
type Coverage struct {
	// Attempted is the number of pages the crawl tried.
	Attempted int
	// Fetched counts 2xx pages.
	Fetched int
	// NonOK counts non-2xx responses (recorded, not followed).
	NonOK int
	// Gaps counts pages lost to fetch failures.
	Gaps int
}

// CoverageOf tallies a crawl's coverage.
func CoverageOf(pages []*Page) Coverage {
	cov := Coverage{Attempted: len(pages)}
	for _, p := range pages {
		switch {
		case p.Err != nil:
			cov.Gaps++
		case p.Status >= 200 && p.Status < 300:
			cov.Fetched++
		default:
			cov.NonOK++
		}
	}
	return cov
}

// RenderGaps renders the coverage summary and the gap report for a crawl —
// the text bugminer prints on exit instead of dying mid-crawl.
func RenderGaps(pages []*Page) string {
	cov := CoverageOf(pages)
	var b strings.Builder
	fmt.Fprintf(&b, "crawl coverage: %d/%d pages fetched (%d non-2xx, %d gaps)\n",
		cov.Fetched, cov.Attempted, cov.NonOK, cov.Gaps)
	gaps := GapsOf(pages)
	if len(gaps) == 0 {
		b.WriteString("no gaps: every reachable page was fetched\n")
		return b.String()
	}
	b.WriteString("gap report (pages lost after exhausting recovery):\n")
	b.WriteString(RenderGapList(gaps))
	return b.String()
}

// RenderGapList renders the per-gap lines of an already-extracted gap set —
// the shape callers holding a Miner's accumulated gaps (rather than raw
// pages) print.
func RenderGapList(gaps []Gap) string {
	var b strings.Builder
	for _, g := range gaps {
		fmt.Fprintf(&b, "  %-40s %s\n", g.URL, g.Reason)
	}
	return b.String()
}
