package recovery

import (
	"errors"
	"strings"
	"testing"
	"time"

	"faultstudy/internal/faultinject"
)

// Satellite coverage for RunRejuvenating's error paths and for the Policy
// clamp. The happy paths (reset cadence, first-failure terminality, interval
// validation at zero) live in edge_test.go; here we exercise the run when the
// rejuvenation itself breaks, when the interval never fires, when the staged
// precondition panics, and when an op fails outside the fault model.

func noopOps(n int) []faultinject.Op {
	ops := make([]faultinject.Op, n)
	for i := range ops {
		ops[i] = faultinject.Op{Name: "noop", Do: func() error { return nil }}
	}
	return ops
}

func TestRejuvenationRejectsNegativeInterval(t *testing.T) {
	app := newFakeApp()
	m := NewManager(Policy{})
	_, err := m.RunRejuvenating(app, failingScenario(0), -3)
	if err == nil || !strings.Contains(err.Error(), "must be positive") {
		t.Errorf("err = %v, want interval rejection", err)
	}
	if app.Running() {
		t.Error("app must not be started when the interval is rejected")
	}
	if app.resets != 0 {
		t.Errorf("resets = %d, want 0", app.resets)
	}
}

func TestRejuvenationResetFailureMidRun(t *testing.T) {
	app := newFakeApp()
	app.resetErr = errors.New("init scripts broken")
	m := NewManager(Policy{})
	sc := faultinject.Scenario{Mechanism: "fake/x", Ops: noopOps(4)}
	out, err := m.RunRejuvenating(app, sc, 2)
	if err == nil || !strings.Contains(err.Error(), "rejuvenate before op 2") {
		t.Fatalf("err = %v, want rejuvenation failure before op 2", err)
	}
	if out.Survived {
		t.Error("run must not survive a failed rejuvenation")
	}
	if out.Recoveries != 0 {
		t.Errorf("recoveries = %d, want 0 (the reset never completed)", out.Recoveries)
	}
	if app.resets != 1 {
		t.Errorf("resets = %d, want exactly 1 attempt", app.resets)
	}
	if app.Running() {
		t.Error("deferred Stop must leave the app down after a harness error")
	}
}

func TestRejuvenationIntervalBeyondWorkload(t *testing.T) {
	// An interval at or past the workload length means the cadence never
	// fires: the run is plain execution, zero rejuvenations.
	for _, interval := range []int{3, 100} {
		app := newFakeApp()
		m := NewManager(Policy{})
		sc := faultinject.Scenario{Mechanism: "fake/x", Ops: noopOps(3)}
		out, err := m.RunRejuvenating(app, sc, interval)
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		if !out.Survived {
			t.Errorf("interval %d: out = %+v, want survived", interval, out)
		}
		if out.Recoveries != 0 || app.resets != 0 {
			t.Errorf("interval %d: recoveries=%d resets=%d, want 0/0",
				interval, out.Recoveries, app.resets)
		}
	}
}

func TestRejuvenationStagePanicStopsApp(t *testing.T) {
	// A panicking Stage propagates (it is a scenario bug, not a run outcome),
	// but the deferred Stop must still bring the application down so a
	// panicking test run cannot leak a live app into the next one.
	app := newFakeApp()
	m := NewManager(Policy{})
	sc := faultinject.Scenario{
		Mechanism: "fake/x",
		Stage:     func() { panic("staging exploded") },
		Ops:       noopOps(1),
	}
	defer func() {
		if recover() == nil {
			t.Error("stage panic should propagate")
		}
		if app.Running() {
			t.Error("deferred Stop must run on a Stage panic")
		}
	}()
	_, _ = m.RunRejuvenating(app, sc, 1)
}

func TestRejuvenationUnmodeledOpErrorIsHarnessError(t *testing.T) {
	app := newFakeApp()
	m := NewManager(Policy{})
	sc := faultinject.Scenario{
		Mechanism: "fake/x",
		Ops: []faultinject.Op{{Name: "op", Do: func() error {
			return errors.New("plain error")
		}}},
	}
	out, err := m.RunRejuvenating(app, sc, 10)
	if err == nil || !strings.Contains(err.Error(), "outside the fault model") {
		t.Fatalf("err = %v, want fault-model violation", err)
	}
	if out.Survived || out.Failures != 0 {
		t.Errorf("out = %+v, want unsurvived with no modeled failures", out)
	}
	if app.Running() {
		t.Error("deferred Stop must leave the app down")
	}
}

func TestPolicyClampsNegativeValues(t *testing.T) {
	p := Policy{MaxRetries: -5, Takeover: -time.Second}.withDefaults()
	if p.MaxRetries != 3 {
		t.Errorf("MaxRetries = %d, want clamped default 3", p.MaxRetries)
	}
	if p.Takeover != 45*time.Second {
		t.Errorf("Takeover = %v, want clamped default 45s", p.Takeover)
	}

	// Zero values take the same defaults; positive values pass through.
	z := Policy{}.withDefaults()
	if z.MaxRetries != 3 || z.Takeover != 45*time.Second {
		t.Errorf("zero policy = %+v, want defaults", z)
	}
	q := Policy{MaxRetries: 7, Takeover: time.Minute}.withDefaults()
	if q.MaxRetries != 7 || q.Takeover != time.Minute {
		t.Errorf("explicit policy mangled: %+v", q)
	}
}

func TestNegativePolicyBehavesAsDefault(t *testing.T) {
	// End to end: a manager built with nonsense negatives retries the default
	// three times rather than zero (or "minus five") times.
	app := newFakeApp()
	m := NewManager(Policy{MaxRetries: -5, Takeover: -time.Minute})
	out, err := m.Run(app, failingScenario(10), StrategyProcessPairs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Survived {
		t.Fatal("ten consecutive failures must exhaust the default budget")
	}
	if out.Attempts != 3 {
		t.Errorf("attempts = %d, want default budget 3", out.Attempts)
	}
}
