package obsv

import (
	"bytes"
	"testing"
)

func TestNarrativeCollapsesRuns(t *testing.T) {
	eps := fixtureEpisodes(t)
	if got, want := eps[0].Narrative(), "activated → retried → microrebooted → served"; got != want {
		t.Errorf("Narrative = %q, want %q", got, want)
	}
	if got, want := eps[1].Narrative(), "activated → fast-failed"; got != want {
		t.Errorf("Narrative = %q, want %q", got, want)
	}
	// A repeated rung collapses into ×N.
	e := &Episode{Outcome: OutcomeLost, Spans: []Span{
		{Kind: SpanAction, Rung: "retry"},
		{Kind: SpanAction, Rung: "retry"},
		{Kind: SpanAction, Rung: "retry"},
	}}
	if got, want := e.Narrative(), "activated → retried ×3 → lost"; got != want {
		t.Errorf("Narrative = %q, want %q", got, want)
	}
}

func TestWriteTimelineGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, fixtureEpisodes(t)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline.txt", buf.Bytes())
}

func TestSummarizeClasses(t *testing.T) {
	eps := fixtureEpisodes(t)
	sums := Summarize(eps)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	if sums[0].Class != "EI" || sums[1].Class != "EDN" {
		t.Fatalf("class order = %s, %s; want EI, EDN", sums[0].Class, sums[1].Class)
	}
	ei := sums[0]
	if ei.Episodes != 1 || ei.Recovered != 1 || ei.Retries != 2 {
		t.Errorf("EI row = %+v", ei)
	}
	if ei.MTTRP50 != ei.MTTRMax || ei.MTTRMax.Seconds() != 4 {
		t.Errorf("EI MTTR p50=%s max=%s, want both 4s", ei.MTTRP50, ei.MTTRMax)
	}
	if ei.RetriesPerRecovery != 2 {
		t.Errorf("RetriesPerRecovery = %v, want 2", ei.RetriesPerRecovery)
	}
	if ei.RungAttempts["retry"] != 1 || ei.RungAttempts["microreboot"] != 1 {
		t.Errorf("RungAttempts = %v, want retry=1 microreboot=1", ei.RungAttempts)
	}
	if ei.RungSuccesses["retry"] != 0 || ei.RungSuccesses["microreboot"] != 1 {
		t.Errorf("RungSuccesses = %v, want microreboot=1 only", ei.RungSuccesses)
	}
	edn := sums[1]
	if edn.FastFailed != 1 || edn.Recovered != 0 {
		t.Errorf("EDN row = %+v", edn)
	}
	out := RenderSummary(sums)
	for _, want := range []string{"EI", "EDN", "fast-fail", "microreboot=1",
		"rung attempts/ok", "retry=1/0 microreboot=1/1"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}
