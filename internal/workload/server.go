package workload

import (
	"faultstudy/internal/apps/cache"
	"faultstudy/internal/apps/httpd"
	"faultstudy/internal/apps/sqldb"
)

// Server is what the serving tier asks of an application: a name, a warmup
// to steady state, and the ability to serve one open-loop arrival at a
// time. The contract deliberately uses only basic types — the arrival's
// schedule position, its simulated user, and its uniform category draw — so
// app packages can implement it without importing the traffic model, and
// the traffic model can drive apps without importing them.
//
// ServeArrival's contract: category names the operation-mix bucket the draw
// mapped to; component names the down component when the request was
// refused mid-reboot (empty otherwise); err is the serve error, which
// callers classify with faultinject.AsFailure into fault-induced failures
// versus refusals. Implementations must be deterministic functions of
// (seq, user, u) and current server state.
type Server interface {
	// Name identifies the application ("httpd", "sqldb").
	Name() string
	// ServeWarm brings the application to serving steady state.
	ServeWarm() error
	// ServeArrival serves one scheduled arrival.
	ServeArrival(seq, user int, u float64) (category, component string, err error)
}

// The componentized applications are the serving tier's drivers; keep them
// honest at compile time.
var (
	_ Server = (*httpd.Componentized)(nil)
	_ Server = (*sqldb.Componentized)(nil)
	_ Server = (*cache.Componentized)(nil)
)
