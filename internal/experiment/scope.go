package experiment

import (
	"fmt"
	"strings"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/faultlint"
	"faultstudy/internal/obsv"
	"faultstudy/internal/parallel"
	"faultstudy/internal/recoveryscope"
	"faultstudy/internal/stats"
	"faultstudy/internal/taxonomy"
)

// Metric names of the SCOPE experiment; the catalogue entry lives in
// OBSERVABILITY.md.
const (
	// MetricScopeSites counts statically analyzed fault-raise sites by app
	// and predicted class.
	MetricScopeSites = "faultstudy_scope_sites_total"
	// MetricScopeClassVerdicts counts per-mechanism class predictions by
	// predicted/truth class and outcome.
	MetricScopeClassVerdicts = "faultstudy_scope_class_verdicts_total"
	// MetricScopeRungVerdicts counts per-mechanism rung predictions by
	// verdict (exact, over, under).
	MetricScopeRungVerdicts = "faultstudy_scope_rung_verdicts_total"
	// MetricScopeProbeEpisodes counts dynamic probe fault episodes by rung
	// and outcome.
	MetricScopeProbeEpisodes = "faultstudy_scope_probe_episodes_total"
)

// The SCOPE probe's workload model, mirroring MREBOOT's virtual clock.
const (
	// scopeInterval is the arrival spacing of the probe workload.
	scopeInterval = mrebootInterval
	// scopeBgOps is the background workload length per probe arm.
	scopeBgOps = 40
	// scopeAttempts bounds recovery attempts per fault episode; after the
	// last the trigger is abandoned and the rung's action is applied once
	// more so the arm ends rung-faithfully revived (or not — that is the
	// measurement).
	scopeAttempts = 2
)

// CI gate thresholds: the static class prediction must agree with the
// registry on at least scopeClassRecallFloor of the mechanisms, and on
// environment-independent faults the predicted rung may fall below the
// dynamically measured minimal rung (an under-scoped recovery plan that
// would strand real faults) on at most scopeEIUnderScopeCeil of them.
const (
	scopeClassRecallFloor = 0.85
	scopeEIUnderScopeCeil = 0.05
)

// ScopeConfig tunes the SCOPE experiment: whole-program static prediction of
// every registered mechanism's fault class and minimal recovery rung, scored
// against the registry and a dynamic per-rung probe sweep.
type ScopeConfig struct {
	// Seed drives every probe arm's environment and schedule stream.
	Seed int64
	// Telemetry, when non-nil, receives the scope metric family. Nil costs
	// nothing.
	Telemetry *Telemetry
	// Workers bounds the worker pool the probe arms are sharded over (0 or
	// negative means one per processor; 1 is serial). Reports and telemetry
	// are byte-identical at every worker count.
	Workers int
	// Root overrides the module root the application sources are loaded
	// from ("" walks up from the working directory to the nearest go.mod).
	Root string
}

// ScopeArm is one (mechanism, rung) probe cell: the application run under
// workload with every fault episode recovered at exactly that rung.
type ScopeArm struct {
	// Mechanism is the seeded bug active in this arm.
	Mechanism string
	// App is the application hosting the bug.
	App taxonomy.Application
	// Rung is the recovery rung under test.
	Rung recoveryscope.Rung
	// Episodes counts fault episodes (any arrival failing with a seeded
	// fault).
	Episodes int
	// Recovered counts episodes whose arrival was eventually served.
	Recovered int
	// BgUnserved counts background arrivals that were never served —
	// residue the rung failed to clear.
	BgUnserved int
	// Cured is the arm's verdict: at least one episode, every background
	// arrival served, and the process plus the whole component tree alive
	// at the end of the workload.
	Cured bool
}

// ScopeMech is the per-mechanism scorecard: the static prediction against
// the registry truth and the probe-measured minimal rung.
type ScopeMech struct {
	// Mechanism is the registry key.
	Mechanism string
	// App is the hosting application.
	App taxonomy.Application
	// TruthClass is the registry's class; StaticClass the analysis verdict.
	TruthClass, StaticClass taxonomy.FaultClass
	// StaticRung is the predicted minimal rung; TruthRung the cheapest rung
	// whose probe arm cured (RungRestart when none did — the ladder's
	// ceiling is the honest floor for an uncurable fault).
	StaticRung, TruthRung recoveryscope.Rung
	// Curable reports whether any rung's probe cured the mechanism.
	Curable bool
	// Component is the statically predicted owning component.
	Component string
	// Sites counts the mechanism's raise sites.
	Sites int
	// Interprocedural marks mechanisms whose class needed call-graph
	// evidence.
	Interprocedural bool
}

// ClassOK reports whether the static class matches the registry.
func (m ScopeMech) ClassOK() bool { return m.StaticClass == m.TruthClass }

// RungVerdict compares the predicted rung against the measured one:
// "exact", "over" (paid too much — safe), or "under" (predicted a rung that
// does not cure — the dangerous direction).
func (m ScopeMech) RungVerdict() string {
	switch {
	case m.StaticRung == m.TruthRung:
		return "exact"
	case m.StaticRung > m.TruthRung:
		return "over"
	default:
		return "under"
	}
}

// ScopeReport is the assembled experiment: per-mechanism scorecards in key
// order, the probe arms behind them, and the static site count.
type ScopeReport struct {
	// Seed is the probe sweep's root seed.
	Seed int64
	// Mechs are the scorecards, in registry key order.
	Mechs []ScopeMech
	// Arms are the probe cells, in (mechanism, rung) order.
	Arms []ScopeArm
	// Sites counts the statically analyzed raise sites.
	Sites int
}

// RunScope runs the SCOPE experiment. The static half loads the application
// sources and predicts, per mechanism, the fault class and the minimal
// recovery rung (internal/recoveryscope). The dynamic half probes every
// (mechanism, rung) cell: a componentized application under workload whose
// every fault episode is recovered at exactly that rung, curing when service
// is fully restored. The scorecard compares prediction against the registry
// class and the cheapest curing rung.
//
// Probe arms are independent shards on a pool of cfg.Workers workers, each
// deriving its seed from (Seed, arm index); shards reduce in fixed arm
// order, so reports and telemetry are byte-identical at every worker count.
func RunScope(cfg ScopeConfig) (*ScopeReport, error) {
	root := cfg.Root
	if root == "" {
		var err error
		if root, err = ModuleRoot(); err != nil {
			return nil, err
		}
	}
	pkgs, err := faultlint.Load(root, []string{"internal/apps/..."})
	if err != nil {
		return nil, fmt.Errorf("experiment: scope: load sources: %w", err)
	}
	analysis := recoveryscope.Analyze(pkgs)
	byMech := analysis.ByMechanism()

	keys := Registry().Keys()
	rungs := recoveryscope.Rungs()
	type shardOut struct {
		arm ScopeArm
		tel *Telemetry
	}
	n := len(keys) * len(rungs)
	outs, err := parallel.MapOrdered(cfg.Workers, n, func(i int) (shardOut, error) {
		var tel *Telemetry
		if cfg.Telemetry != nil {
			tel = NewTelemetry()
		}
		mech, _ := Registry().Lookup(keys[i/len(rungs)])
		arm, err := runScopeArm(cfg, i, mech, rungs[i%len(rungs)], byMech[mech.Key].Rung, tel)
		return shardOut{arm: arm, tel: tel}, err
	})
	if err != nil {
		return nil, err
	}
	rep := &ScopeReport{Seed: cfg.Seed, Sites: len(analysis.Sites)}
	tels := make([]*Telemetry, 0, n)
	curedAt := make(map[string]recoveryscope.Rung, len(keys))
	for _, o := range outs {
		rep.Arms = append(rep.Arms, o.arm)
		tels = append(tels, o.tel)
		if o.arm.Cured {
			if _, ok := curedAt[o.arm.Mechanism]; !ok {
				curedAt[o.arm.Mechanism] = o.arm.Rung // arms arrive in ladder order
			}
		}
	}
	if err := cfg.Telemetry.Merge(tels...); err != nil {
		return nil, err
	}

	for _, key := range keys {
		mech, _ := Registry().Lookup(key)
		sm := ScopeMech{Mechanism: key, App: mech.App, TruthClass: mech.Class()}
		if mp, ok := byMech[key]; ok {
			sm.StaticClass = mp.Class
			sm.StaticRung = mp.Rung
			sm.Component = mp.Component
			sm.Sites = mp.Sites
			sm.Interprocedural = mp.Interprocedural
		}
		if rung, ok := curedAt[key]; ok {
			sm.TruthRung, sm.Curable = rung, true
		} else {
			// Nothing cures (a persistent environment condition): the
			// ladder's top is the minimal honest plan.
			sm.TruthRung = recoveryscope.RungRestart
		}
		rep.Mechs = append(rep.Mechs, sm)
	}
	rep.observe(cfg.Telemetry, analysis)
	return rep, nil
}

// observe folds the scorecard into the telemetry registry (deterministic:
// fixed iteration orders only).
func (r *ScopeReport) observe(tel *Telemetry, analysis *recoveryscope.Analysis) {
	if tel == nil {
		return
	}
	obsv.RegisterBridgeHelp(tel.Registry)
	for _, s := range analysis.Sites {
		app := strings.SplitN(firstMechanism(s.Mechanisms), "/", 2)[0]
		if app == "" {
			app = "none"
		}
		tel.Registry.Counter(MetricScopeSites,
			obsv.L("app", app, "class", s.Class.Short())...).Inc()
	}
	for _, m := range r.Mechs {
		outcome := "miss"
		if m.ClassOK() {
			outcome = "match"
		}
		tel.Registry.Counter(MetricScopeClassVerdicts,
			obsv.L("app", m.App.String(), "predicted", m.StaticClass.Short(),
				"truth", m.TruthClass.Short(), "outcome", outcome)...).Inc()
		tel.Registry.Counter(MetricScopeRungVerdicts,
			obsv.L("app", m.App.String(), "predicted", m.StaticRung.String(),
				"truth", m.TruthRung.String(), "verdict", m.RungVerdict())...).Inc()
	}
	for _, a := range r.Arms {
		outcome := "uncured"
		if a.Cured {
			outcome = "cured"
		}
		tel.Registry.Counter(MetricScopeProbeEpisodes,
			obsv.L("app", a.App.String(), "rung", a.Rung.String(),
				"outcome", outcome)...).Add(float64(a.Episodes))
	}
}

// firstMechanism returns the first mechanism key of a site ("" when the
// site speaks for none).
func firstMechanism(mechs []string) string {
	if len(mechs) == 0 {
		return ""
	}
	return mechs[0]
}

// scopeRun is the per-arm state shared by the workload loop and the episode
// handler.
type scopeRun struct {
	mech      faultinject.Mechanism
	rung      recoveryscope.Rung
	drv       *mrebootDriver
	arm       *ScopeArm
	rec       *obsv.Recorder
	target    string
	hasTarget bool
}

// runScopeArm probes one (mechanism, rung) cell. Everything it does is a
// pure function of (cfg, arm index); it shares no state with other arms.
// planned is the statically predicted minimal rung for the mechanism
// (RungNone when the analysis found no site), stamped onto the recorded
// episodes so the telemetry summary reads planned against final.
func runScopeArm(cfg ScopeConfig, armIdx int, mech faultinject.Mechanism, rung recoveryscope.Rung, planned recoveryscope.Rung, tel *Telemetry) (ScopeArm, error) {
	arm := ScopeArm{Mechanism: mech.Key, App: mech.App, Rung: rung}
	armSeed := parallel.Derive(cfg.Seed, uint64(armIdx))
	drv, sc, err := buildComponentized(mech.Key, armSeed)
	if err != nil {
		return arm, err
	}
	app := drv.app
	if err := app.Start(); err != nil {
		return arm, fmt.Errorf("experiment: scope %s × %s: start: %w", mech.Key, rung, err)
	}
	drv.warm()
	if sc.Stage != nil {
		sc.Stage()
	}
	run := &scopeRun{mech: mech, rung: rung, drv: drv, arm: &arm}
	if tel != nil {
		run.rec = tel.Recorder
		ctx := obsv.Context{App: mech.App.String(), FaultID: mech.Key, Class: mech.Class().Short()}
		if planned != recoveryscope.RungNone {
			ctx.PlannedRung = planned.String()
		}
		run.rec.SetContext(ctx)
	}
	run.target, run.hasTarget = app.ComponentFor(mech.Key)

	for _, a := range spliceArrivals(drv, sc.Ops, scopeBgOps) {
		app.Env().Advance(scopeInterval)
		preOp, err := app.Snapshot()
		if err != nil {
			return arm, fmt.Errorf("experiment: scope %s × %s: checkpoint: %w", mech.Key, rung, err)
		}
		opErr := a.do()
		if opErr == nil {
			continue
		}
		if _, isFault := faultinject.AsFailure(opErr); isFault {
			if run.episode(a, preOp, opErr) {
				continue
			}
			// The arrival is abandoned; only unserved background traffic
			// counts against the cure (the trigger is the fault itself).
			if !a.trigger {
				arm.BgUnserved++
			}
			continue
		}
		// A plain failure — most often a dead process the rung's action
		// failed to revive. Unserved background traffic is the cure signal.
		if !a.trigger {
			arm.BgUnserved++
		}
	}
	arm.Cured = arm.Episodes >= 1 && arm.BgUnserved == 0 &&
		app.Running() && app.Tree().AllRunning()
	app.Stop()
	return arm, nil
}

// episode recovers one faulted arrival at exactly the arm's rung: up to
// scopeAttempts (rung action, retry) rounds, then one final rung action so
// abandonment still leaves whatever revival the rung can buy. Every episode
// is recorded with the static plan stamped on it (Recorder is nil-safe).
func (r *scopeRun) episode(a mrebootArrival, preOp []byte, opErr error) bool {
	r.arm.Episodes++
	env := r.drv.app.Env()
	rung := r.rung.String()
	start := env.Monotonic()
	r.rec.Begin(start, a.name, r.mech.Key)
	r.rec.Note(start, obsv.Span{Kind: obsv.SpanActivation, Note: opErr.Error()})
	for attempt := 1; attempt <= scopeAttempts; attempt++ {
		target := r.applyRung(attempt, preOp)
		r.rec.Note(env.Monotonic(), obsv.Span{Kind: obsv.SpanAction, Rung: rung,
			Attempt: attempt, Outcome: "ok", Component: target})
		retryErr := a.do()
		if retryErr == nil {
			end := env.Monotonic()
			r.arm.Recovered++
			r.rec.Note(end, obsv.Span{Kind: obsv.SpanRetry, Rung: rung,
				Attempt: attempt, Outcome: "ok"})
			r.rec.End(end, obsv.OutcomeRecovered, rung)
			return true
		}
		r.rec.Note(env.Monotonic(), obsv.Span{Kind: obsv.SpanRetry, Rung: rung,
			Attempt: attempt, Outcome: "fail", Note: retryErr.Error()})
	}
	target := r.applyRung(scopeAttempts+1, preOp)
	end := env.Monotonic()
	r.rec.Note(end, obsv.Span{Kind: obsv.SpanAction, Rung: rung,
		Attempt: scopeAttempts + 1, Outcome: "ok", Component: target})
	r.rec.End(end, obsv.OutcomeLost, rung)
	return false
}

// applyRung performs one recovery action at the arm's rung, then perturbs
// the schedule exactly as the supervisor's ladder does before a retry. It
// returns the component a structural rung targeted ("" for process-level
// rungs), for the action span.
//
// The retry rung deliberately performs no structural recovery — a crashed
// process cannot retry itself back to life; measuring that is the point.
func (r *scopeRun) applyRung(attempt int, preOp []byte) string {
	app := r.drv.app
	tree := app.Tree()
	target := ""
	switch r.rung {
	case recoveryscope.RungMicroreboot:
		app.ContainCrash()
		if r.hasTarget {
			target = r.target
			if tree.Kill(r.target) == nil {
				_ = tree.Restart(r.target)
			}
		}
	case recoveryscope.RungSubtreeReboot:
		app.ContainCrash()
		if r.hasTarget {
			target = r.target
			members := tree.SubtreeOf(r.target)
			for i := len(members) - 1; i >= 0; i-- {
				_ = tree.Kill(members[i])
			}
			for _, name := range members {
				_ = tree.Restart(name)
			}
		}
	case recoveryscope.RungRestore:
		app.Stop()
		app.Env().ReclaimOwner(app.Name())
		if err := app.Restore(preOp); err != nil {
			_ = app.Reset()
		}
	case recoveryscope.RungRestart:
		app.Stop()
		app.Env().ReclaimOwner(app.Name())
		_ = app.Reset()
	}
	app.Env().Sched().UnforceAll()
	app.Env().Reroll()
	app.Env().Sched().Force(r.mech.Key, attempt)
	return target
}

// ClassRecall is the fraction of mechanisms whose static class matches the
// registry, overall or (with class set) restricted to one truth class.
func (r *ScopeReport) ClassRecall(class taxonomy.FaultClass, all bool) stats.Proportion {
	var p stats.Proportion
	for _, m := range r.Mechs {
		if !all && m.TruthClass != class {
			continue
		}
		p.N++
		if m.ClassOK() {
			p.Hits++
		}
	}
	return p
}

// RungVerdicts counts rung verdicts ("exact", "over", "under") across all
// mechanisms, or restricted to one truth class.
func (r *ScopeReport) RungVerdicts(class taxonomy.FaultClass, all bool) map[string]int {
	out := map[string]int{"exact": 0, "over": 0, "under": 0}
	for _, m := range r.Mechs {
		if !all && m.TruthClass != class {
			continue
		}
		out[m.RungVerdict()]++
	}
	return out
}

// EIUnderScope is the fraction of environment-independent mechanisms whose
// predicted rung falls below the measured minimal rung — the plans that
// would strand a real fault.
func (r *ScopeReport) EIUnderScope() stats.Proportion {
	var p stats.Proportion
	for _, m := range r.Mechs {
		if m.TruthClass != taxonomy.ClassEnvIndependent {
			continue
		}
		p.N++
		if m.RungVerdict() == "under" {
			p.Hits++
		}
	}
	return p
}

// Check asserts the SCOPE gates: overall class recall at or above
// scopeClassRecallFloor, and EI under-scoping at or below
// scopeEIUnderScopeCeil.
func (r *ScopeReport) Check() error {
	recall := r.ClassRecall(taxonomy.ClassEnvIndependent, true)
	if recall.N == 0 {
		return fmt.Errorf("experiment: scope check: no mechanisms scored")
	}
	if float64(recall.Hits) < scopeClassRecallFloor*float64(recall.N) {
		return fmt.Errorf("experiment: scope check: class recall %d/%d below %.0f%%",
			recall.Hits, recall.N, scopeClassRecallFloor*100)
	}
	under := r.EIUnderScope()
	if float64(under.Hits) > scopeEIUnderScopeCeil*float64(under.N) {
		return fmt.Errorf("experiment: scope check: EI under-scoped %d/%d above %.0f%%",
			under.Hits, under.N, scopeEIUnderScopeCeil*100)
	}
	return nil
}

// String renders the scorecard: the per-class recall and rung-verdict
// matrix, the mechanisms the prediction got wrong, and the headline.
func (r *ScopeReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCOPE experiment (seed %d, %d mechanisms, %d sites, %d probe arms):\n",
		r.Seed, len(r.Mechs), r.Sites, len(r.Arms))
	tbl := &stats.Table{Header: []string{
		"truth class", "mechs", "class recall", "rung exact", "over", "under"}}
	for _, class := range taxonomy.Classes() {
		recall := r.ClassRecall(class, false)
		v := r.RungVerdicts(class, false)
		tbl.Add(class.Short(), fmt.Sprint(recall.N),
			fmt.Sprintf("%d/%d (%s)", recall.Hits, recall.N, recall.Percent()),
			fmt.Sprint(v["exact"]), fmt.Sprint(v["over"]), fmt.Sprint(v["under"]))
	}
	all := r.ClassRecall(taxonomy.ClassEnvIndependent, true)
	v := r.RungVerdicts(taxonomy.ClassEnvIndependent, true)
	tbl.Add("all", fmt.Sprint(all.N),
		fmt.Sprintf("%d/%d (%s)", all.Hits, all.N, all.Percent()),
		fmt.Sprint(v["exact"]), fmt.Sprint(v["over"]), fmt.Sprint(v["under"]))
	b.WriteString(tbl.String())

	var misses []string
	for _, m := range r.Mechs {
		if m.ClassOK() && m.RungVerdict() != "under" {
			continue
		}
		misses = append(misses, fmt.Sprintf("  %-28s class %s->%s rung %s->%s (%s)",
			m.Mechanism, m.TruthClass.Short(), m.StaticClass.Short(),
			m.TruthRung, m.StaticRung, m.RungVerdict()))
	}
	if len(misses) > 0 {
		fmt.Fprintf(&b, "\nDisagreements (truth->static):\n%s\n", strings.Join(misses, "\n"))
	}
	under := r.EIUnderScope()
	fmt.Fprintf(&b,
		"\nHeadline: from source alone the analysis recovers the fault class of %d/%d seeded\nmechanisms and under-scopes recovery on %d/%d environment-independent faults —\nthe recovery ladder can be planned before the first failure ever fires.\n",
		all.Hits, all.N, under.Hits, under.N)
	return b.String()
}
