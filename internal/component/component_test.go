package component

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// fakeClock is a test clock.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration      { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now += d }

// fakeComp is a minimal crash-only component for tree tests.
type fakeComp struct {
	name    string
	up      bool
	starts  int
	kills   int
	stops   int
	probeFn func() error
}

func (f *fakeComp) Name() string { return f.name }
func (f *fakeComp) Start() error { f.starts++; f.up = true; return nil }
func (f *fakeComp) Stop()        { f.stops++; f.up = false }
func (f *fakeComp) Kill()        { f.kills++; f.up = false }
func (f *fakeComp) Probe() error {
	if f.probeFn != nil {
		return f.probeFn()
	}
	if !f.up {
		return Down(f.name)
	}
	return nil
}
func (f *fakeComp) Running() bool { return f.up }

// buildTree assembles core <- (logger, cache <- proxy) for the tests.
func buildTree(t *testing.T) (*Tree, *fakeClock, map[string]*fakeComp) {
	t.Helper()
	clock := &fakeClock{}
	tree := NewTree(clock)
	comps := map[string]*fakeComp{
		"core":   {name: "core"},
		"logger": {name: "logger"},
		"cache":  {name: "cache"},
		"proxy":  {name: "proxy"},
	}
	tree.MustAdd(Spec{Component: comps["core"], StartCost: 10 * time.Millisecond})
	tree.MustAdd(Spec{Component: comps["logger"], Deps: []string{"core"}, StartCost: 2 * time.Millisecond})
	tree.MustAdd(Spec{Component: comps["cache"], Deps: []string{"core"}, StartCost: 5 * time.Millisecond})
	tree.MustAdd(Spec{Component: comps["proxy"], Deps: []string{"cache"}, StartCost: 3 * time.Millisecond})
	return tree, clock, comps
}

func TestTreeAddValidation(t *testing.T) {
	tree := NewTree(&fakeClock{})
	if err := tree.Add(Spec{}); err == nil {
		t.Fatal("nil component accepted")
	}
	if err := tree.Add(Spec{Component: &fakeComp{name: "a"}, Deps: []string{"missing"}}); err == nil {
		t.Fatal("unknown dependency accepted")
	}
	if err := tree.Add(Spec{Component: &fakeComp{name: "a"}}); err != nil {
		t.Fatalf("add a: %v", err)
	}
	if err := tree.Add(Spec{Component: &fakeComp{name: "a"}}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestTreeStartStopOrder(t *testing.T) {
	tree, clock, comps := buildTree(t)
	if err := tree.StartAll(); err != nil {
		t.Fatalf("StartAll: %v", err)
	}
	if !tree.AllRunning() {
		t.Fatal("not all running after StartAll")
	}
	if got, want := clock.Now(), 20*time.Millisecond; got != want {
		t.Fatalf("StartAll cost = %s, want %s", got, want)
	}
	// Idempotent: a second StartAll must not double-start or re-charge.
	if err := tree.StartAll(); err != nil {
		t.Fatalf("StartAll twice: %v", err)
	}
	if comps["core"].starts != 1 {
		t.Fatalf("core started %d times, want 1", comps["core"].starts)
	}
	if clock.Now() != 20*time.Millisecond {
		t.Fatalf("idempotent StartAll re-charged the clock: %s", clock.Now())
	}
	tree.StopAll()
	if tree.AllRunning() || tree.Running("core") {
		t.Fatal("still running after StopAll")
	}
}

func TestTreeRebootChargesClockAndCounts(t *testing.T) {
	tree, clock, comps := buildTree(t)
	if err := tree.StartAll(); err != nil {
		t.Fatalf("StartAll: %v", err)
	}
	before := clock.Now()
	if err := tree.Reboot("logger"); err != nil {
		t.Fatalf("Reboot: %v", err)
	}
	if got, want := clock.Now()-before, 2*time.Millisecond; got != want {
		t.Fatalf("reboot cost = %s, want %s", got, want)
	}
	if comps["logger"].kills != 1 || comps["logger"].starts != 2 {
		t.Fatalf("logger kills=%d starts=%d, want 1/2", comps["logger"].kills, comps["logger"].starts)
	}
	if comps["core"].kills != 0 {
		t.Fatal("sibling core was killed by a leaf reboot")
	}
	if tree.Reboots("logger") != 1 || tree.TotalReboots() != 1 {
		t.Fatalf("reboot counters: %d/%d", tree.Reboots("logger"), tree.TotalReboots())
	}
	if err := tree.Reboot("nope"); err == nil {
		t.Fatal("reboot of unknown component accepted")
	}
}

func TestTreeSubtree(t *testing.T) {
	tree, _, comps := buildTree(t)
	if err := tree.StartAll(); err != nil {
		t.Fatalf("StartAll: %v", err)
	}
	sub := tree.SubtreeOf("cache")
	if len(sub) != 2 || sub[0] != "cache" || sub[1] != "proxy" {
		t.Fatalf("SubtreeOf(cache) = %v", sub)
	}
	if got, want := tree.SubtreeCost("cache"), 8*time.Millisecond; got != want {
		t.Fatalf("SubtreeCost = %s, want %s", got, want)
	}
	if err := tree.RebootSubtree("cache"); err != nil {
		t.Fatalf("RebootSubtree: %v", err)
	}
	if comps["cache"].kills != 1 || comps["proxy"].kills != 1 {
		t.Fatal("subtree reboot missed a dependent")
	}
	if comps["core"].kills != 0 || comps["logger"].kills != 0 {
		t.Fatal("subtree reboot touched components outside the subtree")
	}
	if tree.TotalReboots() != 2 {
		t.Fatalf("TotalReboots = %d, want 2", tree.TotalReboots())
	}
	root := tree.SubtreeOf("core")
	if len(root) != 4 {
		t.Fatalf("SubtreeOf(core) = %v, want all 4", root)
	}
}

func TestTreeKillRestartWindow(t *testing.T) {
	tree, clock, _ := buildTree(t)
	if err := tree.StartAll(); err != nil {
		t.Fatalf("StartAll: %v", err)
	}
	if err := tree.Kill("cache"); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	if tree.Running("cache") {
		t.Fatal("cache running after Kill")
	}
	if !tree.Running("core") || !tree.Running("logger") {
		t.Fatal("siblings down after a single-component Kill")
	}
	before := clock.Now()
	if err := tree.Restart("cache"); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if clock.Now()-before != 5*time.Millisecond {
		t.Fatalf("restart charged %s", clock.Now()-before)
	}
	if !tree.Running("cache") || tree.Reboots("cache") != 1 {
		t.Fatal("cache not back up or not counted")
	}
}

func TestTreeProbe(t *testing.T) {
	tree, _, comps := buildTree(t)
	if err := tree.StartAll(); err != nil {
		t.Fatalf("StartAll: %v", err)
	}
	if findings := tree.Probe(); len(findings) != 0 {
		t.Fatalf("healthy probe found %v", findings)
	}
	comps["logger"].up = false
	findings := tree.Probe()
	if len(findings) != 1 {
		t.Fatalf("probe findings = %v", findings)
	}
	var de *DownError
	if !errors.As(findings["logger"], &de) || de.Component != "logger" {
		t.Fatalf("logger probe error = %v", findings["logger"])
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Put("b", "k", "v")
	if v, ok := s.Get("b", "k"); !ok || v != "v" {
		t.Fatalf("Get = %q/%v", v, ok)
	}
	if n := s.Incr("b", "seq"); n != 1 {
		t.Fatalf("first Incr = %d", n)
	}
	if n := s.Incr("b", "seq"); n != 2 {
		t.Fatalf("second Incr = %d", n)
	}
	if s.Len("b") != 2 {
		t.Fatalf("Len = %d", s.Len("b"))
	}
	keys := s.Keys("b")
	if len(keys) != 2 || keys[0] != "k" || keys[1] != "seq" {
		t.Fatalf("Keys = %v", keys)
	}
	s.Delete("b", "k")
	if _, ok := s.Get("b", "k"); ok {
		t.Fatal("key survived Delete")
	}
	s.Reset()
	if s.Len("b") != 0 {
		t.Fatal("bucket survived Reset")
	}
}

func TestStoreSnapshotDeterministicAndRestores(t *testing.T) {
	s := NewStore()
	s.Put("z", "b", "2")
	s.Put("z", "a", "1")
	s.Put("a", "x", "9")
	snap1, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	snap2, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if !bytes.Equal(snap1, snap2) {
		t.Fatal("snapshots of identical state differ")
	}
	s.Put("z", "c", "3")
	if err := s.Restore(snap1); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if _, ok := s.Get("z", "c"); ok {
		t.Fatal("post-snapshot write survived Restore")
	}
	if v, _ := s.Get("z", "a"); v != "1" {
		t.Fatalf("restored value = %q", v)
	}
	snap3, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if !bytes.Equal(snap1, snap3) {
		t.Fatal("round-tripped snapshot differs")
	}
	if err := s.Restore([]byte("not json")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestDownError(t *testing.T) {
	err := Down("httpd/cache")
	var de *DownError
	if !errors.As(err, &de) || de.Component != "httpd/cache" {
		t.Fatalf("Down = %v", err)
	}
	if err.Error() != "component httpd/cache is down" {
		t.Fatalf("Error() = %q", err.Error())
	}
}
