package chaoshttp

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"faultstudy/internal/parallel"
	"faultstudy/internal/taxonomy"
)

// Config parameterizes an Injector (and a Middleware: both shapes share it).
type Config struct {
	// Seed drives every injection decision. Equal seeds inject identically.
	Seed int64
	// Faults is the active fault plan, applied in order; the first fault
	// applicable to a request wins (faults do not stack on one request).
	Faults []Fault
}

// Injection is one injected fault occurrence, as recorded in the log.
type Injection struct {
	// URL is the request path the fault fired on.
	URL string
	// Fault is the fault spec's name.
	Fault string
	// Class is the fault's environment-dependence class.
	Class taxonomy.FaultClass
	// At is the virtual time of the injection.
	At time.Duration
}

// URLOutcome summarizes one URL's chaos history: how often it was hit and
// whether the traffic through the injector eventually saw it healthy again.
// The RESIL experiment's survival metric is exactly Recovered.
type URLOutcome struct {
	// URL is the request path.
	URL string
	// Fault is the name of the (first) fault that fired on the URL.
	Fault string
	// Class is that fault's environment-dependence class.
	Class taxonomy.FaultClass
	// Injections counts fault firings on the URL.
	Injections int
	// FirstAt is the virtual time of the first injection.
	FirstAt time.Duration
	// RecoveredAt is the virtual time the URL was first served cleanly after
	// an injection (meaningful only when Recovered).
	RecoveredAt time.Duration
	// Recovered reports whether a clean response ever followed an injection.
	Recovered bool
}

// urlState is the injector's per-URL bookkeeping.
type urlState struct {
	fired       map[string]int // transient firings per fault name
	injections  int
	firstFault  Fault
	firstAt     time.Duration
	recoveredAt time.Duration
	recovered   bool
}

// Injector is a seed-deterministic chaos http.RoundTripper. It decides, per
// (fault, URL), whether to perturb the request, forwards untargeted traffic
// to the inner transport unchanged, and keeps an injection log plus per-URL
// outcomes for the experiment layer. It is safe for concurrent use; with a
// sequential caller (one crawl) its log order is deterministic.
type Injector struct {
	cfg   Config
	next  http.RoundTripper
	clock Clock

	mu       sync.Mutex
	requests int
	urls     map[string]*urlState
	log      []Injection
}

// NewInjector wraps next with the fault plan in cfg on the given clock. A
// nil clock panics early rather than on first latency fault.
func NewInjector(cfg Config, next http.RoundTripper, clock Clock) *Injector {
	if next == nil {
		panic("chaoshttp: nil inner transport")
	}
	if clock == nil {
		panic("chaoshttp: nil clock")
	}
	return &Injector{cfg: cfg, next: next, clock: clock, urls: make(map[string]*urlState)}
}

// targeted reports whether fault f targets the URL path under the seed: a
// pure hash decision, identical across runs, shapes, and worker counts.
func targeted(seed int64, f Fault, path string) bool {
	if f.Rate <= 0 {
		return false
	}
	if f.Rate >= 1 {
		return true
	}
	h := fnv.New64a()
	io.WriteString(h, f.Name)
	h.Write([]byte{0})
	io.WriteString(h, path)
	v := uint64(parallel.Derive(seed, h.Sum64()))
	return v%10000 < uint64(f.Rate*10000+0.5)
}

// state returns (creating if needed) the bookkeeping for one URL. Callers
// hold the lock.
func (in *Injector) state(path string) *urlState {
	st, ok := in.urls[path]
	if !ok {
		st = &urlState{fired: make(map[string]int)}
		in.urls[path] = st
	}
	return st
}

// pick decides which fault (if any) applies to this request, updates the
// bookkeeping, and appends to the injection log. Callers hold the lock.
func (in *Injector) pick(path string, at time.Duration) (Fault, bool) {
	for _, f := range in.cfg.Faults {
		applies := false
		switch {
		case f.Kind == KindHostExhaust:
			applies = in.requests > f.TriggerAfter
		case !targeted(in.cfg.Seed, f, path):
			// not this fault's URL
		case f.Transient():
			applies = in.state(path).fired[f.Name] == 0
		default:
			applies = true
		}
		if !applies {
			continue
		}
		st := in.state(path)
		st.fired[f.Name]++
		if st.injections == 0 {
			st.firstFault = f
			st.firstAt = at
		}
		st.injections++
		in.log = append(in.log, Injection{URL: path, Fault: f.Name, Class: f.Class, At: at})
		return f, true
	}
	return Fault{}, false
}

// markClean records a clean (uninjected, transport-successful) response for
// a URL: the first one after any injection is the URL's recovery.
func (in *Injector) markClean(path string, at time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.urls[path]
	if !ok || st.injections == 0 || st.recovered {
		return
	}
	st.recovered = true
	st.recoveredAt = at
}

// RoundTrip applies the fault plan to one request. Untargeted requests pass
// through unchanged; targeted ones are perturbed per the fault's kind.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	path := req.URL.Path
	in.mu.Lock()
	in.requests++
	f, injected := in.pick(path, in.clock.Now())
	in.mu.Unlock()

	if !injected {
		resp, err := in.next.RoundTrip(req)
		if err == nil {
			in.markClean(path, in.clock.Now())
		}
		return resp, err
	}

	switch f.Kind {
	case KindStatusOnce, KindStatusAlways:
		return syntheticResponse(req, f), nil
	case KindConnResetOnce:
		return nil, ErrInjectedReset
	case KindDNSOnce:
		return nil, ErrInjectedDNS
	case KindHostExhaust:
		return nil, ErrInjectedExhaust
	case KindLatencyOnce, KindSlowAlways:
		in.clock.Advance(f.Latency)
		return in.next.RoundTrip(req)
	case KindTruncateOnce:
		resp, err := in.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		return truncateBody(resp)
	default:
		return nil, fmt.Errorf("chaoshttp: unknown fault kind %d", f.Kind)
	}
}

// Requests returns the number of requests the injector has seen.
func (in *Injector) Requests() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.requests
}

// Injections returns a copy of the injection log, in firing order.
func (in *Injector) Injections() []Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Injection, len(in.log))
	copy(out, in.log)
	return out
}

// Outcomes returns the per-URL chaos outcomes, sorted by first-injection
// time then URL so reports are deterministic.
func (in *Injector) Outcomes() []URLOutcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]URLOutcome, 0, len(in.urls))
	for path, st := range in.urls {
		if st.injections == 0 {
			continue
		}
		out = append(out, URLOutcome{
			URL:         path,
			Fault:       st.firstFault.Name,
			Class:       st.firstFault.Class,
			Injections:  st.injections,
			FirstAt:     st.firstAt,
			RecoveredAt: st.recoveredAt,
			Recovered:   st.recovered,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FirstAt != out[j].FirstAt {
			return out[i].FirstAt < out[j].FirstAt
		}
		return out[i].URL < out[j].URL
	})
	return out
}

// syntheticResponse builds the injected error response for the status kinds,
// complete with a consistent Content-Length and an optional Retry-After
// hint the resilient client can honor.
func syntheticResponse(req *http.Request, f Fault) *http.Response {
	body := fmt.Sprintf("chaos: injected %s\n", f.Name)
	h := make(http.Header)
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	if f.RetryAfter > 0 {
		h.Set("Retry-After", strconv.Itoa(int(f.RetryAfter/time.Second)))
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", f.Status, http.StatusText(f.Status)),
		StatusCode:    f.Status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody rewrites resp so its body carries only the first half of the
// payload while the Content-Length header still declares the full size —
// the silent-truncation fault a length-checking client can detect.
func truncateBody(resp *http.Response) (*http.Response, error) {
	full, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	cut := full[:len(full)/2]
	resp.Header.Set("Content-Length", strconv.Itoa(len(full)))
	resp.ContentLength = int64(len(full))
	resp.Body = io.NopCloser(strings.NewReader(string(cut)))
	return resp, nil
}
