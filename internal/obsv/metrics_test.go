package obsv

import (
	"testing"
	"time"
)

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 3.5 {
		t.Fatalf("Value = %v, want 3.5", got)
	}
}

func TestGaugeUpDown(t *testing.T) {
	var g Gauge
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("Value = %v, want 2.5", got)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 5, 1, 10}) // dup 1 must dedupe
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	bounds, cum, sum, total := h.snapshot()
	wantBounds := []float64{1, 5, 10}
	if len(bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v, want %v", bounds, wantBounds)
	}
	for i, b := range wantBounds {
		if bounds[i] != b {
			t.Fatalf("bounds = %v, want %v", bounds, wantBounds)
		}
	}
	// Cumulative: ≤1 → 2, ≤5 → 3, ≤10 → 4, +Inf → 5.
	wantCum := []uint64{2, 3, 4, 5}
	for i, c := range wantCum {
		if cum[i] != c {
			t.Fatalf("cumulative = %v, want %v", cum, wantCum)
		}
	}
	if total != 5 || sum != 111.5 {
		t.Fatalf("total=%d sum=%v, want 5 and 111.5", total, sum)
	}
	h.ObserveDuration(1500 * time.Millisecond)
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
}

func TestRegistryLookupAndLabels(t *testing.T) {
	r := NewRegistry()
	// Same series regardless of label argument order.
	a := r.Counter("x_total", L("b", "2", "a", "1")...)
	b := r.Counter("x_total", Label{Name: "a", Value: "1"}, Label{Name: "b", Value: "2"})
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("label order created distinct series")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	// Different labels → different series.
	r.Counter("x_total", L("a", "other")...).Inc()
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	// Kind mismatch panics.
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", L("a", "1", "b", "2")...)
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", LatencyBuckets).Observe(1)
	r.Help("a", "help")
	if r.Len() != 0 {
		t.Fatal("nil registry reported series")
	}
	if err := r.WritePrometheus(discard{}); err != nil {
		t.Fatal(err)
	}
	if got := r.Export(); got != nil {
		t.Fatalf("nil registry exported %v", got)
	}
}

// discard is an io.Writer that drops everything.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestRequestLatencyBuckets is the regression test for the serving tier's
// bucket preset: strictly increasing bounds spanning sub-millisecond hits
// through multi-second reboot stalls, and representative serve-mode
// latencies must spread across buckets instead of collapsing into the first
// bucket the way they would under the episode-scale LatencyBuckets.
func TestRequestLatencyBuckets(t *testing.T) {
	if RequestLatencyBuckets[0] >= 0.001 {
		t.Fatalf("first bound %v is not sub-millisecond", RequestLatencyBuckets[0])
	}
	last := RequestLatencyBuckets[len(RequestLatencyBuckets)-1]
	if last < 1 {
		t.Fatalf("last bound %v does not reach seconds scale", last)
	}
	for i := 1; i < len(RequestLatencyBuckets); i++ {
		if RequestLatencyBuckets[i] <= RequestLatencyBuckets[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, RequestLatencyBuckets)
		}
	}
	// The serving tier's default service mix: each latency tier must land in
	// its own bucket so the histogram actually resolves the distribution.
	h := newHistogram(RequestLatencyBuckets)
	mix := []time.Duration{
		300 * time.Microsecond, 900 * time.Microsecond,
		3 * time.Millisecond, 12 * time.Millisecond, 80 * time.Millisecond,
	}
	for _, d := range mix {
		h.ObserveDuration(d)
	}
	_, cum, _, total := h.snapshot()
	if total != uint64(len(mix)) {
		t.Fatalf("total = %d, want %d", total, len(mix))
	}
	occupied := 0
	prev := uint64(0)
	for _, c := range cum {
		if c > prev {
			occupied++
		}
		prev = c
	}
	if occupied < len(mix) {
		t.Errorf("serve-mode mix occupies %d buckets, want %d distinct", occupied, len(mix))
	}
	// Under the episode-scale preset the same mix collapses: the first two
	// tiers share the 1ms bucket — exactly the resolution loss the request
	// preset exists to avoid.
	eh := newHistogram(LatencyBuckets)
	for _, d := range mix {
		eh.ObserveDuration(d)
	}
	_, ecum, _, _ := eh.snapshot()
	if ecum[0] < 2 {
		t.Fatalf("expected episode buckets to collapse sub-ms tiers, got %v", ecum)
	}
}
