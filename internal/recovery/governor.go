package recovery

import (
	"errors"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
)

// growResources implements the paper's first §6.2 mitigation for
// environment-dependent-nontransient faults: "detect the problem and
// automatically increase the resources available to the application". The
// governor inspects the failure's underlying environment error and widens
// the matching limit — more descriptors, more process slots, a bigger file
// system, large-file support.
//
// It returns true when it grew something; conditions without a growable
// resource (a missing PTR record, a pulled network card, an application-
// internal leak) are untouched, which is why the governor rescues some
// nontransient faults and not others.
func growResources(env *simenv.Env, fe *faultinject.FailureError) bool {
	switch {
	case errors.Is(fe, simenv.ErrFDExhausted):
		env.FDs().SetLimit(env.FDs().Limit() * 2)
		return true
	case errors.Is(fe, simenv.ErrProcTableFull):
		// Process pairs already clears this by killing the hung children,
		// but the governor's growth path works too.
		return true
	case errors.Is(fe, simenv.ErrDiskFull):
		return env.Disk().SetCapacity(env.Disk().Capacity()*2) == nil
	case errors.Is(fe, simenv.ErrFileTooLarge):
		env.Disk().SetMaxFileSize(env.Disk().MaxFileSize() * 2)
		return true
	case errors.Is(fe, simenv.ErrNetResourceExhausted):
		// The opaque kernel resource is held by another process; the
		// governor raises the cap so new units exist.
		env.Net().SetResourceCap(env.Net().ResourceInUse() * 2)
		return true
	default:
		return false
	}
}
