package httpd

import (
	"errors"
	"strings"
	"testing"
	"time"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/taxonomy"
)

func newServer(t *testing.T, faults *faultinject.Set, opts ...simenv.Option) *Server {
	t.Helper()
	env := simenv.New(42, opts...)
	srv := New(env, faults, Config{})
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return srv
}

func TestHealthyServing(t *testing.T) {
	srv := newServer(t, nil)
	resp, err := srv.Serve(Request{Method: "GET", Path: "/index.html"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !strings.Contains(resp.Body, "It works") {
		t.Errorf("resp = %+v", resp)
	}
	// 404s, directory listings, proxied and CGI requests all succeed.
	resp, err = srv.Serve(Request{Method: "GET", Path: "/missing"})
	if err != nil || resp.Status != 404 {
		t.Errorf("404 path: %+v, %v", resp, err)
	}
	resp, err = srv.Serve(Request{Method: "GET", Path: "/pub/"})
	if err != nil || !strings.Contains(resp.Body, "file1.tar.gz") {
		t.Errorf("listing: %+v, %v", resp, err)
	}
	resp, err = srv.Serve(Request{Method: "GET", Path: "/empty/"})
	if err != nil || resp.Status != 200 {
		t.Errorf("empty listing: %+v, %v", resp, err)
	}
	if _, err := srv.Serve(Request{Method: "GET", Path: "/proxy/page"}); err != nil {
		t.Errorf("proxy: %v", err)
	}
	if _, err := srv.Serve(Request{Method: "GET", Path: "/cgi-bin/env"}); err != nil {
		t.Errorf("cgi: %v", err)
	}
	// Healthy HUP rejuvenates without error.
	if err := srv.Signal(SigHUP); err != nil {
		t.Errorf("HUP: %v", err)
	}
}

func TestHealthyServerSurvivesLongWorkload(t *testing.T) {
	srv := newServer(t, nil)
	for i := 0; i < 500; i++ {
		if _, err := srv.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if i%50 == 49 {
			if _, err := srv.Serve(Request{Method: "GET", Path: "/cgi-bin/env"}); err != nil {
				t.Fatalf("cgi %d: %v", i, err)
			}
		}
	}
	if srv.Env().Procs().OwnedBy(Owner) != 0 {
		t.Error("healthy server leaked child processes")
	}
	if srv.MemBytes() != 0 {
		t.Error("healthy server leaked memory")
	}
}

func TestLifecycleErrors(t *testing.T) {
	srv := newServer(t, nil)
	if err := srv.Start(); err == nil {
		t.Error("double start should fail")
	}
	srv.Stop()
	srv.Stop() // idempotent
	if _, err := srv.Serve(Request{Path: "/"}); err == nil {
		t.Error("serve while stopped should fail")
	}
	if err := srv.Signal(SigHUP); err == nil {
		t.Error("signal while stopped should fail")
	}
	if err := srv.Start(); err != nil {
		t.Errorf("restart: %v", err)
	}
}

func TestStopReleasesEnvironment(t *testing.T) {
	env := simenv.New(1)
	srv := New(env, nil, Config{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	srv.Stop()
	if n := env.FDs().OwnedBy(Owner); n != 0 {
		t.Errorf("stop left %d fds", n)
	}
	if o := env.Net().PortOwner(80); o != "" {
		t.Errorf("stop left port bound to %q", o)
	}
}

func failFrom(t *testing.T, err error) *faultinject.FailureError {
	t.Helper()
	fe, ok := faultinject.AsFailure(err)
	if !ok {
		t.Fatalf("error %v is not a FailureError", err)
	}
	return fe
}

func TestLongURLOverflow(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechLongURLOverflow))
	_, err := srv.Serve(Request{Method: "GET", Path: "/" + strings.Repeat("a", 9000)})
	fe := failFrom(t, err)
	if fe.Mechanism != MechLongURLOverflow || fe.Symptom != taxonomy.SymptomCrash {
		t.Errorf("failure = %+v", fe)
	}
	if srv.Running() {
		t.Error("server should be down after the crash")
	}
	// Short URLs never trigger it.
	srv2 := newServer(t, faultinject.NewSet(MechLongURLOverflow))
	if _, err := srv2.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
		t.Errorf("short URL: %v", err)
	}
}

func TestSighupCrash(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechSighupCrash))
	err := srv.Signal(SigHUP)
	fe := failFrom(t, err)
	if fe.Mechanism != MechSighupCrash {
		t.Errorf("failure = %+v", fe)
	}
}

func TestValistReuse(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechValistReuse))
	_, err := srv.Serve(Request{Method: "GET", Path: "/definitely-not-here"})
	if fe := failFrom(t, err); fe.Mechanism != MechValistReuse {
		t.Errorf("failure = %+v", fe)
	}
	// Existing documents are unaffected.
	srv2 := newServer(t, faultinject.NewSet(MechValistReuse))
	if _, err := srv2.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
		t.Errorf("existing doc: %v", err)
	}
}

func TestPallocZero(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechPallocZero))
	if _, err := srv.Serve(Request{Method: "GET", Path: "/pub/"}); err != nil {
		t.Errorf("nonempty dir: %v", err)
	}
	_, err := srv.Serve(Request{Method: "GET", Path: "/empty/"})
	if fe := failFrom(t, err); fe.Mechanism != MechPallocZero {
		t.Errorf("failure = %+v", fe)
	}
}

func TestMemoryLeakHup(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechMemoryLeakHup))
	// Below the limit a HUP is survivable (and frees the leak).
	for i := 0; i < 10; i++ {
		if _, err := srv.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
			t.Fatal(err)
		}
	}
	if srv.MemBytes() == 0 {
		t.Fatal("leak not accumulating")
	}
	if err := srv.Signal(SigHUP); err != nil {
		t.Fatalf("early HUP: %v", err)
	}
	if srv.MemBytes() != 0 {
		t.Error("rejuvenation should free the leak")
	}
	// Past the limit the HUP kills the server.
	for i := 0; i < 500; i++ {
		if _, err := srv.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
			t.Fatal(err)
		}
	}
	err := srv.Signal(SigHUP)
	if fe := failFrom(t, err); fe.Mechanism != MechMemoryLeakHup {
		t.Errorf("failure = %+v", fe)
	}
}

func TestGenericEIBugs(t *testing.T) {
	tests := []struct {
		key     string
		symptom taxonomy.Symptom
	}{
		{MechNullDeref, taxonomy.SymptomCrash},
		{MechBounds, taxonomy.SymptomCrash},
		{MechBadInit, taxonomy.SymptomError},
		{MechParseLoop, taxonomy.SymptomHang},
		{MechTypeMismatch, taxonomy.SymptomCrash},
		{MechMissingCheck, taxonomy.SymptomCrash},
		{MechDoubleFree, taxonomy.SymptomCrash},
		{MechWrongStatus, taxonomy.SymptomError},
	}
	for _, tt := range tests {
		srv := newServer(t, faultinject.NewSet(tt.key))
		path := "/bug/" + strings.TrimPrefix(tt.key, "httpd/")
		_, err := srv.Serve(Request{Method: "GET", Path: path})
		fe := failFrom(t, err)
		if fe.Mechanism != tt.key || fe.Symptom != tt.symptom {
			t.Errorf("%s: failure = %+v", tt.key, fe)
		}
		// The same path on a fault-free server is an ordinary 404.
		clean := newServer(t, nil)
		if resp, err := clean.Serve(Request{Method: "GET", Path: path}); err != nil || resp.Status != 404 {
			t.Errorf("%s clean: %+v, %v", tt.key, resp, err)
		}
	}
}

func TestFDExhaustion(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechFDExhaustion), simenv.WithFDLimit(20))
	var failure error
	for i := 0; i < 30; i++ {
		if _, err := srv.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
			failure = err
			break
		}
	}
	if fe := failFrom(t, failure); fe.Mechanism != MechFDExhaustion {
		t.Errorf("failure = %+v", fe)
	}
}

func TestDiskCacheFull(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechDiskCacheFull))
	if err := srv.Env().Disk().FillFrom("tenant", 3*4096); err != nil {
		t.Fatal(err)
	}
	var failure error
	for i := 0; i < 10; i++ {
		if _, err := srv.Serve(Request{Method: "GET", Path: "/proxy/p"}); err != nil {
			failure = err
			break
		}
	}
	if fe := failFrom(t, failure); fe.Mechanism != MechDiskCacheFull {
		t.Errorf("failure = %+v", fe)
	}
}

func TestLogFileLimitBugVsHealthyRotation(t *testing.T) {
	// Buggy server: fails when the log hits the per-file limit.
	env := simenv.New(1, simenv.WithMaxFileSize(1024), simenv.WithDiskBytes(1<<20))
	srv := New(env, faultinject.NewSet(MechLogFileLimit), Config{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	var failure error
	for i := 0; i < 20; i++ {
		if _, err := srv.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
			failure = err
			break
		}
	}
	if fe := failFrom(t, failure); fe.Mechanism != MechLogFileLimit {
		t.Errorf("failure = %+v", fe)
	}

	// Healthy server: rotates and survives indefinitely.
	env2 := simenv.New(1, simenv.WithMaxFileSize(1024), simenv.WithDiskBytes(1<<20))
	srv2 := New(env2, nil, Config{})
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := srv2.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
			t.Fatalf("healthy rotation failed at %d: %v", i, err)
		}
	}
}

func TestFSFull(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechFSFull))
	if err := srv.Env().Disk().FillFrom("tenant", 64); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Serve(Request{Method: "GET", Path: "/index.html"})
	if fe := failFrom(t, err); fe.Mechanism != MechFSFull {
		t.Errorf("failure = %+v", fe)
	}
}

func TestNetResource(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechNetResource))
	srv.Env().Net().SetResourceCap(4)
	for i := 0; i < 4; i++ {
		if err := srv.Env().Net().AcquireResource(); err != nil {
			t.Fatal(err)
		}
	}
	_, err := srv.Serve(Request{Method: "GET", Path: "/index.html"})
	if fe := failFrom(t, err); fe.Mechanism != MechNetResource {
		t.Errorf("failure = %+v", fe)
	}
}

func TestPCMCIARemoval(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechPCMCIARemoval))
	srv.Env().Net().RemoveInterface()
	_, err := srv.Serve(Request{Method: "GET", Path: "/index.html"})
	if fe := failFrom(t, err); fe.Mechanism != MechPCMCIARemoval {
		t.Errorf("failure = %+v", fe)
	}
}

func TestDNSErrorAndHealing(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechDNSError))
	env := srv.Env()
	env.DNS().AddHost("c.example.com", "10.0.0.1")
	env.DNS().Fail(time.Minute)
	req := Request{Method: "GET", Path: "/index.html", Host: "c.example.com"}
	_, err := srv.Serve(req)
	if fe := failFrom(t, err); fe.Mechanism != MechDNSError {
		t.Errorf("failure = %+v", fe)
	}
	env.Advance(2 * time.Minute)
	if _, err := srv.Serve(req); err != nil {
		t.Errorf("request after DNS healed: %v", err)
	}
}

func TestDNSSlow(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechDNSSlow))
	env := srv.Env()
	env.DNS().AddHost("c.example.com", "10.0.0.1")
	env.DNS().Slow(time.Minute)
	_, err := srv.Serve(Request{Method: "GET", Path: "/index.html", Host: "c.example.com"})
	fe := failFrom(t, err)
	if fe.Mechanism != MechDNSSlow || fe.Symptom != taxonomy.SymptomHang {
		t.Errorf("failure = %+v", fe)
	}
}

func TestProcTableFull(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechProcTableFull), simenv.WithProcLimit(20))
	var failure error
	for i := 0; i < 40; i++ {
		if _, err := srv.Serve(Request{Method: "GET", Path: "/cgi-bin/env"}); err != nil {
			failure = err
			break
		}
	}
	if fe := failFrom(t, failure); fe.Mechanism != MechProcTableFull {
		t.Errorf("failure = %+v", fe)
	}
	// Killing the application's processes (what recovery does) clears the
	// condition.
	srv.Env().ReclaimOwner(Owner)
	if srv.Env().Procs().InUse() != 0 {
		t.Error("reclaim left processes behind")
	}
}

func TestClientAbortRace(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechClientAbort))
	srv.Env().Sched().Force(MechClientAbort, 0)
	_, err := srv.Serve(Request{Method: "GET", Path: "/index.html", AbortMidway: true})
	if fe := failFrom(t, err); fe.Mechanism != MechClientAbort {
		t.Errorf("failure = %+v", fe)
	}
	// With the losing interleaving unpinned the abort usually survives.
	srv2 := newServer(t, faultinject.NewSet(MechClientAbort))
	srv2.Env().Sched().Force(MechClientAbort, 1)
	if _, err := srv2.Serve(Request{Method: "GET", Path: "/index.html", AbortMidway: true}); err != nil {
		t.Errorf("winning interleaving: %v", err)
	}
}

func TestPortSquat(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechPortSquat))
	for i := 0; i < 3; i++ {
		if _, err := srv.Serve(Request{Method: "GET", Path: "/cgi-bin/env"}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Stop()
	err := srv.Start()
	if fe := failFrom(t, err); fe.Mechanism != MechPortSquat {
		t.Errorf("failure = %+v", fe)
	}
	// Recovery kills the children and frees the port.
	srv.Env().ReclaimOwner(Owner)
	srv.children = nil
	if err := srv.Start(); err != nil {
		t.Errorf("start after reclaim: %v", err)
	}
}

func TestSlowNetwork(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechSlowNetwork))
	srv.Env().Net().SlowFor(time.Minute)
	_, err := srv.Serve(Request{Method: "GET", Path: "/index.html"})
	if fe := failFrom(t, err); fe.Mechanism != MechSlowNetwork {
		t.Errorf("failure = %+v", fe)
	}
	srv.Env().Advance(2 * time.Minute)
	if _, err := srv.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
		t.Errorf("after healing: %v", err)
	}
}

func TestEntropyStarved(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechEntropyStarved))
	srv.Env().Entropy().Drain()
	_, err := srv.Serve(Request{Method: "GET", Path: "/x", SSL: true})
	if fe := failFrom(t, err); fe.Mechanism != MechEntropyStarved {
		t.Errorf("failure = %+v", fe)
	}
	srv.Env().Advance(time.Minute)
	if _, err := srv.Serve(Request{Method: "GET", Path: "/index.html", SSL: true}); err != nil {
		t.Errorf("after refill: %v", err)
	}
}

func TestSnapshotRestorePreservesLeaks(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechLoadResourceLeak))
	for i := 0; i < 10; i++ {
		if _, err := srv.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stop()
	if err := srv.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if srv.leakUnits != 10 {
		t.Errorf("leakUnits after restore = %d, want 10 (generic recovery preserves state)", srv.leakUnits)
	}
	if srv.Requests() != 10 {
		t.Errorf("requests after restore = %d", srv.Requests())
	}
}

func TestSnapshotRestorePreservesHeldFDs(t *testing.T) {
	env := simenv.New(9, simenv.WithFDLimit(30))
	srv := New(env, faultinject.NewSet(MechFDExhaustion), Config{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := srv.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
			t.Fatal(err)
		}
	}
	held := env.FDs().OwnedBy(Owner)
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stop()
	env.ReclaimOwner(Owner) // the failed primary's descriptors are freed...
	if err := srv.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// ...but the restored state re-acquires every one of them.
	if got := env.FDs().OwnedBy(Owner); got != held {
		t.Errorf("restored fd count = %d, want %d", got, held)
	}
}

func TestResetDropsState(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechLoadResourceLeak))
	for i := 0; i < 10; i++ {
		if _, err := srv.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Stop()
	if err := srv.Reset(); err != nil {
		t.Fatal(err)
	}
	if srv.leakUnits != 0 || srv.Requests() != 0 {
		t.Error("reset should drop accumulated state")
	}
	if !srv.Running() {
		t.Error("reset should leave the server running")
	}
}

func TestRestoreWhileRunningFails(t *testing.T) {
	srv := newServer(t, nil)
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Restore(snap); err == nil {
		t.Error("restore while running should fail")
	}
	if err := srv.Reset(); err == nil {
		t.Error("reset while running should fail")
	}
	if err := srv.Restore([]byte("not json")); !errors.Is(err, err) || err == nil {
		t.Error("bad snapshot should fail")
	}
}

func TestScenariosCoverEveryMechanism(t *testing.T) {
	reg := faultinject.NewRegistry()
	RegisterMechanisms(reg)
	env := simenv.New(1)
	srv := New(env, faultinject.NewSet(), Config{})
	scenarios := Scenarios(srv)
	for _, key := range reg.Keys() {
		sc, ok := scenarios[key]
		if !ok {
			t.Errorf("mechanism %s has no scenario", key)
			continue
		}
		if sc.Mechanism != key {
			t.Errorf("scenario for %s names %s", key, sc.Mechanism)
		}
		if len(sc.Ops) == 0 {
			t.Errorf("scenario %s has no ops", key)
		}
	}
	if len(scenarios) != len(reg.Keys()) {
		t.Errorf("%d scenarios vs %d mechanisms", len(scenarios), len(reg.Keys()))
	}
}

func TestEveryScenarioTriggersItsMechanism(t *testing.T) {
	reg := faultinject.NewRegistry()
	RegisterMechanisms(reg)
	for _, key := range reg.Keys() {
		key := key
		t.Run(key, func(t *testing.T) {
			env := simenv.New(7, simenv.WithFDLimit(64), simenv.WithProcLimit(64))
			srv := New(env, faultinject.NewSet(key), Config{})
			if err := srv.Start(); err != nil {
				t.Fatalf("start: %v", err)
			}
			sc := Scenarios(srv)[key]
			if sc.Stage != nil {
				sc.Stage()
			}
			var failure *faultinject.FailureError
			for _, op := range sc.Ops {
				if err := op.Do(); err != nil {
					fe, ok := faultinject.AsFailure(err)
					if !ok {
						t.Fatalf("op %s returned non-failure error: %v", op.Name, err)
					}
					failure = fe
					break
				}
			}
			if failure == nil {
				t.Fatalf("scenario never triggered %s", key)
			}
			if failure.Mechanism != key {
				t.Errorf("scenario for %s triggered %s", key, failure.Mechanism)
			}
		})
	}
}

func TestMultipleFaultsCoexist(t *testing.T) {
	// A server can carry several latent bugs at once; each fires only on its
	// own trigger, exactly like a real release with many seeded defects.
	srv := newServer(t, faultinject.NewSet(MechLongURLOverflow, MechPallocZero, MechValistReuse))
	if _, err := srv.Serve(Request{Method: "GET", Path: "/index.html"}); err != nil {
		t.Fatalf("benign request: %v", err)
	}
	if _, err := srv.Serve(Request{Method: "GET", Path: "/pub/"}); err != nil {
		t.Fatalf("nonempty listing: %v", err)
	}
	_, err := srv.Serve(Request{Method: "GET", Path: "/empty/"})
	if fe := failFrom(t, err); fe.Mechanism != MechPallocZero {
		t.Errorf("wrong fault fired: %v", fe)
	}
}

func TestFaultToggleAtRuntime(t *testing.T) {
	faults := faultinject.NewSet()
	srv := newServer(t, faults)
	if _, err := srv.Serve(Request{Method: "GET", Path: "/missing"}); err != nil {
		t.Fatalf("clean 404: %v", err)
	}
	faults.Enable(MechValistReuse)
	if _, err := srv.Serve(Request{Method: "GET", Path: "/missing"}); err == nil {
		t.Fatal("enabled fault should fire")
	}
}
