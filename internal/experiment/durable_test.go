package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// durableOutputs renders everything a DURABLE run emits: the report text,
// the episode trace, and the Prometheus dump.
func durableOutputs(t *testing.T, cfg DurableConfig) (string, []byte, []byte) {
	t.Helper()
	cfg.Telemetry = NewTelemetry()
	rep, err := RunDurable(cfg)
	if err != nil {
		t.Fatalf("RunDurable: %v", err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	var trace, prom bytes.Buffer
	if err := cfg.Telemetry.WriteTrace(&trace); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := cfg.Telemetry.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return rep.String(), trace.Bytes(), prom.Bytes()
}

// TestRunDurableGate runs the full experiment once and asserts the gate and
// the arms' headline properties directly.
func TestRunDurableGate(t *testing.T) {
	rep, err := RunDurable(DurableConfig{Seed: 7})
	if err != nil {
		t.Fatalf("RunDurable: %v", err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(rep.Arms) != len(durableArmNames()) {
		t.Fatalf("got %d arms, want %d", len(rep.Arms), len(durableArmNames()))
	}
	byName := make(map[string]DurableArm)
	for _, a := range rep.Arms {
		byName[a.Name] = a
	}
	for _, name := range []string{"crash-drop", "crash-tear"} {
		a := byName[name]
		if a.Boundaries < durableCrashOps*2 {
			t.Errorf("%s: only %d boundaries enumerated", name, a.Boundaries)
		}
		if a.Crashes != a.Boundaries {
			t.Errorf("%s: %d crashes over %d boundaries", name, a.Crashes, a.Boundaries)
		}
	}
	if a := byName["crash-tear"]; a.Repairs == 0 {
		t.Errorf("crash-tear: torn tails never needed repair")
	}
	if a := byName["torn-write"]; a.DetectedLoss != 1 {
		t.Errorf("torn-write: detected loss = %d, want exactly the lied-about record", a.DetectedLoss)
	}
	if a := byName["short-write"]; a.Repairs == 0 {
		t.Errorf("short-write: the persisted prefix never needed repair")
	}
	if a := byName["none"]; a.Repairs != 0 {
		t.Errorf("baseline: %d repairs on a clean close", a.Repairs)
	}
	out := rep.String()
	if !bytes.Contains([]byte(out), []byte("DURABLE experiment")) {
		t.Fatalf("report render missing header:\n%s", out)
	}
}

// TestRunDurableWorkerIdentity asserts the contract the sharded sweeps
// document: report, trace, and metric dumps are byte-identical at every
// worker count.
func TestRunDurableWorkerIdentity(t *testing.T) {
	baseRep, baseTrace, baseProm := durableOutputs(t, DurableConfig{Seed: 11, Workers: 1})
	for _, workers := range []int{2, 8} {
		rep, trace, prom := durableOutputs(t, DurableConfig{Seed: 11, Workers: workers})
		if rep != baseRep {
			t.Fatalf("report differs at %d workers", workers)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Fatalf("trace differs at %d workers", workers)
		}
		if !bytes.Equal(prom, baseProm) {
			t.Fatalf("metrics differ at %d workers", workers)
		}
	}
}

// TestRunDurableResumeEquivalence is the warehouse claim end to end: halt a
// sweep partway (with a torn tail on the warehouse file, as a real kill
// would leave), resume it, and require the resumed run's report, trace, and
// metrics to be byte-identical to an uninterrupted run's.
func TestRunDurableResumeEquivalence(t *testing.T) {
	full := filepath.Join(t.TempDir(), "full.whs")
	fullRep, fullTrace, fullProm := durableOutputs(t, DurableConfig{Seed: 7, Workers: 2, Warehouse: full})

	resumed := filepath.Join(t.TempDir(), "resumed.whs")
	rep, err := RunDurable(DurableConfig{Seed: 7, Warehouse: resumed, HaltAfter: 4})
	if err != nil {
		t.Fatalf("halted run: %v", err)
	}
	if !rep.Halted || rep.Done != 4 || rep.Total != len(durableArmNames()) {
		t.Fatalf("halted run: got halted=%v done=%d total=%d", rep.Halted, rep.Done, rep.Total)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("halted report must not gate: %v", err)
	}
	// A kill mid-append leaves a torn record; resume must shrug it off.
	f, err := os.OpenFile(resumed, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x2a, 0xff}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	resRep, resTrace, resProm := durableOutputs(t, DurableConfig{Seed: 7, Workers: 8, Warehouse: resumed, Resume: true})
	if resRep != fullRep {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- full ---\n%s\n--- resumed ---\n%s", fullRep, resRep)
	}
	if !bytes.Equal(resTrace, fullTrace) {
		t.Fatalf("resumed trace differs from uninterrupted run")
	}
	if !bytes.Equal(resProm, fullProm) {
		t.Fatalf("resumed metrics differ from uninterrupted run")
	}
}

// TestRunDurableFreshWarehouseResets asserts that a non-resume run does not
// inherit stale arms: the warehouse is recreated from scratch.
func TestRunDurableFreshWarehouseResets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.whs")
	if _, err := RunDurable(DurableConfig{Seed: 7, Warehouse: path, HaltAfter: 2}); err != nil {
		t.Fatalf("halted run: %v", err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDurable(DurableConfig{Seed: 7, Warehouse: path, HaltAfter: 1}); err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("fresh run did not reset the warehouse: %d -> %d bytes", before.Size(), after.Size())
	}
}
