package resilient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a test virtual clock: Sleep advances it, WithTimeout is a
// stamp-only no-op (the client enforces per-try deadlines post hoc).
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.advance(d)
	return nil
}

func (c *fakeClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return ctx, func() {}
}

// scriptTransport serves a scripted sequence of outcomes, then repeats the
// last one. Each step may also advance the clock, simulating a slow attempt.
type scriptTransport struct {
	mu    sync.Mutex
	clock *fakeClock
	steps []scriptStep
	calls int
}

type scriptStep struct {
	status  int
	header  http.Header
	body    string
	declare int64 // Content-Length to declare (-1 = len(body))
	err     error
	cost    time.Duration
}

func (s *scriptTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	s.mu.Lock()
	step := s.steps[len(s.steps)-1]
	if s.calls < len(s.steps) {
		step = s.steps[s.calls]
	}
	s.calls++
	s.mu.Unlock()
	if step.cost > 0 {
		s.clock.advance(step.cost)
	}
	if step.err != nil {
		return nil, step.err
	}
	declared := step.declare
	if declared == -1 {
		declared = int64(len(step.body))
	}
	h := step.header
	if h == nil {
		h = make(http.Header)
	}
	return &http.Response{
		StatusCode: step.status,
		Status:     fmt.Sprintf("%d %s", step.status, http.StatusText(step.status)),
		Proto:      "HTTP/1.1",
		ProtoMajor: 1, ProtoMinor: 1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(step.body)),
		ContentLength: declared,
		Request:       req,
	}, nil
}

func (s *scriptTransport) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func doGet(t *testing.T, c *Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c.RoundTrip(req)
}

func TestNaiveGivesUpImmediately(t *testing.T) {
	clock := &fakeClock{}
	st := &scriptTransport{clock: clock, steps: []scriptStep{
		{err: errors.New("boom")},
		{status: 200, body: "fine", declare: -1},
	}}
	c := New(NaivePolicy(), WithTransport(st), WithClock(clock))
	if _, err := doGet(t, c, "http://h/x"); err == nil {
		t.Fatal("naive client should surface the first failure")
	}
	if st.callCount() != 1 {
		t.Errorf("naive client made %d attempts, want 1", st.callCount())
	}
}

func TestRetryRecoversTransient(t *testing.T) {
	clock := &fakeClock{}
	st := &scriptTransport{clock: clock, steps: []scriptStep{
		{err: errors.New("reset")},
		{status: 503, body: "busy", declare: -1},
		{status: 200, body: "fine", declare: -1},
	}}
	c := New(RetryPolicy(), WithTransport(st), WithClock(clock), WithRand(rand.New(rand.NewSource(1))))
	resp, err := doGet(t, c, "http://h/x")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("got %v %v, want a recovered 200", resp, err)
	}
	stats := c.Stats()
	if stats.Retries != 2 || stats.Successes != 1 {
		t.Errorf("stats = %+v, want 2 retries and 1 success", stats)
	}
	if clock.Now() == 0 {
		t.Error("retries should have slept backoff on the clock")
	}
}

func TestGiveUpReturnsLastResponse(t *testing.T) {
	clock := &fakeClock{}
	st := &scriptTransport{clock: clock, steps: []scriptStep{{status: 500, body: "dead", declare: -1}}}
	c := New(RetryPolicy(), WithTransport(st), WithClock(clock))
	resp, err := doGet(t, c, "http://h/x")
	if err != nil {
		t.Fatalf("exhausted attempts on a status should return the response, got %v", err)
	}
	if resp.StatusCode != 500 {
		t.Errorf("status = %d, want the real 500", resp.StatusCode)
	}
	if got := c.Stats().GiveUps; got != 1 {
		t.Errorf("give-ups = %d, want 1", got)
	}
	if st.callCount() != RetryPolicy().MaxAttempts {
		t.Errorf("made %d attempts, want %d", st.callCount(), RetryPolicy().MaxAttempts)
	}
}

func TestRetryAfterHonoredAndCapped(t *testing.T) {
	h := make(http.Header)
	h.Set("Retry-After", "3600")
	clock := &fakeClock{}
	st := &scriptTransport{clock: clock, steps: []scriptStep{
		{status: 429, body: "slow down", declare: -1, header: h},
		{status: 200, body: "fine", declare: -1},
	}}
	c := New(RetryPolicy(), WithTransport(st), WithClock(clock), WithRand(nil))
	resp, err := doGet(t, c, "http://h/x")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("got %v %v", resp, err)
	}
	if got, cap := clock.Now(), RetryPolicy().RetryAfterCap; got != cap {
		t.Errorf("slept %v, want the %v cap", got, cap)
	}
	if c.Stats().RetryAfterWaits != 1 {
		t.Errorf("retry-after waits = %d, want 1", c.Stats().RetryAfterWaits)
	}
}

func TestTruncationDetected(t *testing.T) {
	clock := &fakeClock{}
	st := &scriptTransport{clock: clock, steps: []scriptStep{
		{status: 200, body: "half", declare: 8},
		{status: 200, body: "complete", declare: -1},
	}}
	c := New(RetryPolicy(), WithTransport(st), WithClock(clock))
	resp, err := doGet(t, c, "http://h/x")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("got %v %v, want recovery from truncation", resp, err)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "complete" {
		t.Errorf("body = %q", body)
	}
	if c.Stats().Truncations != 1 {
		t.Errorf("truncations = %d, want 1", c.Stats().Truncations)
	}

	// The naive policy swallows the short body silently.
	st2 := &scriptTransport{clock: clock, steps: []scriptStep{{status: 200, body: "half", declare: 8}}}
	n := New(NaivePolicy(), WithTransport(st2), WithClock(clock))
	resp, err = doGet(t, n, "http://h/x")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("naive got %v %v", resp, err)
	}
	if n.Stats().Truncations != 0 {
		t.Error("naive policy should not detect truncation")
	}
}

func TestPerTryTimeoutAndHedge(t *testing.T) {
	clock := &fakeClock{}
	pol := FullPolicy()
	st := &scriptTransport{clock: clock, steps: []scriptStep{
		{status: 200, body: "slow", declare: -1, cost: 10 * time.Second}, // blows the 1s per-try deadline
		{status: 200, body: "fast", declare: -1},
	}}
	c := New(pol, WithTransport(st), WithClock(clock), WithRand(rand.New(rand.NewSource(1))))
	resp, err := doGet(t, c, "http://h/x")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("got %v %v, want hedged recovery", resp, err)
	}
	stats := c.Stats()
	if stats.Hedges != 1 {
		t.Errorf("hedges = %d, want 1", stats.Hedges)
	}
	if stats.Retries != 0 {
		t.Errorf("retries = %d; a hedge must not charge the retry path", stats.Retries)
	}
}

func TestBudgetExhaustionStopsRetries(t *testing.T) {
	clock := &fakeClock{}
	st := &scriptTransport{clock: clock, steps: []scriptStep{{err: errors.New("down")}}}
	budget := NewBudget(1, 0) // one retry, ever
	c := New(RetryPolicy(), WithTransport(st), WithClock(clock), WithBudget(budget))
	_, err := doGet(t, c, "http://h/x")
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if got := c.Stats().BudgetDenied; got != 1 {
		t.Errorf("budget denied = %d, want 1", got)
	}
	if st.callCount() != 2 { // first attempt + the single budgeted retry
		t.Errorf("made %d attempts, want 2", st.callCount())
	}
}

func TestBudgetTokenBucket(t *testing.T) {
	b := NewBudget(2, 0.5)
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("fresh budget should cover its burst")
	}
	if b.Withdraw() {
		t.Fatal("drained budget should refuse")
	}
	b.Deposit()
	if b.Withdraw() {
		t.Fatal("half a token is not a whole token")
	}
	b.Deposit()
	if !b.Withdraw() {
		t.Fatal("two deposits at 0.5 should fund one retry")
	}
	for i := 0; i < 10; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got != 2 {
		t.Errorf("tokens = %v, want capped at burst 2", got)
	}
	var nilB *Budget
	nilB.Deposit()
	if !nilB.Withdraw() {
		t.Error("nil budget must be unlimited")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(3, 10*time.Second)
	now := time.Duration(0)
	if !b.Allow("h", now) || b.State("h") != BreakerClosed {
		t.Fatal("fresh breaker should admit")
	}
	b.Failure("h", now)
	b.Failure("h", now)
	if opened := b.Failure("h", now); !opened {
		t.Fatal("third failure should open the breaker")
	}
	if b.Allow("h", now+time.Second) {
		t.Fatal("open breaker should fail fast before cooldown")
	}
	if !b.Allow("h", now+11*time.Second) {
		t.Fatal("cooldown elapsed: breaker should admit the half-open trial")
	}
	if b.State("h") != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State("h"))
	}
	if opened := b.Failure("h", now+12*time.Second); !opened {
		t.Fatal("failed trial should re-open")
	}
	if !b.Allow("h", now+23*time.Second) {
		t.Fatal("second cooldown should admit another trial")
	}
	b.Success("h")
	if b.State("h") != BreakerClosed {
		t.Fatalf("state after served trial = %v, want closed", b.State("h"))
	}
	if got := b.Hosts(); len(got) != 1 || got[0] != "h" {
		t.Errorf("hosts = %v", got)
	}
	if (BreakerState(42)).String() == "" {
		t.Error("unknown state should still render")
	}
}

func TestClientFastFailsOnOpenBreaker(t *testing.T) {
	clock := &fakeClock{}
	st := &scriptTransport{clock: clock, steps: []scriptStep{{err: errors.New("down")}}}
	breaker := NewBreaker(2, time.Hour)
	c := New(FullPolicy(), WithTransport(st), WithClock(clock), WithBreaker(breaker),
		WithRand(rand.New(rand.NewSource(1))))
	if _, err := doGet(t, c, "http://h/x"); err == nil {
		t.Fatal("dead host should fail")
	}
	if breaker.State("h") != BreakerOpen {
		t.Fatalf("breaker state = %v, want open after repeated failures", breaker.State("h"))
	}
	before := st.callCount()
	if _, err := doGet(t, c, "http://h/y"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want fast-fail", err)
	}
	if st.callCount() != before {
		t.Error("fast-fail must not touch the network")
	}
	if c.Stats().FastFails != 1 {
		t.Errorf("fast-fails = %d, want 1", c.Stats().FastFails)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"naive", "retry", "full"} {
		p, err := PolicyByName(name)
		if err != nil || p.Name != name {
			t.Errorf("PolicyByName(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Error("unknown policy should error")
	}
}

// TestSharedBreakerBudgetConcurrency is the -race exercise: many clients
// sharing one breaker and one budget hammer a flaky server concurrently.
// The assertions are structural (no panic, no race, bounded attempts);
// correctness of individual outcomes is covered by the serial tests.
func TestSharedBreakerBudgetConcurrency(t *testing.T) {
	var mu sync.Mutex
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		n := hits
		mu.Unlock()
		if n%3 == 0 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	breaker := NewBreaker(50, time.Second) // high threshold: stay closed under 1/3 failures
	budget := NewBudget(100, 1)
	clock := NewRealClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			pol := RetryPolicy()
			pol.BackoffBase, pol.BackoffCap = time.Microsecond, 10*time.Microsecond
			c := New(pol, WithClock(clock), WithBreaker(breaker), WithBudget(budget),
				WithRand(rand.New(rand.NewSource(int64(id)))))
			for j := 0; j < 20; j++ {
				resp, err := doGet(t, c, fmt.Sprintf("%s/p/%d/%d", srv.URL, id, j))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(i)
	}
	wg.Wait()
	if budget.Tokens() > 100 {
		t.Errorf("budget overfilled: %v tokens", budget.Tokens())
	}
	if got := breaker.Hosts(); len(got) != 1 {
		t.Errorf("breaker tracked hosts %v, want exactly the test server", got)
	}
}
