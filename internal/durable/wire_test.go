package durable

import (
	"bytes"
	"errors"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Seq: 7, Ops: []Op{{Kind: OpPut, Key: "alpha", Value: []byte("one")}}},
		{Seq: 8, Ops: []Op{
			{Kind: OpPut, Key: "beta", Value: []byte("two")},
			{Kind: OpDelete, Key: "alpha"},
		}},
		{Seq: 9, Ops: []Op{{Kind: OpClear}, {Kind: OpPut, Key: "gamma", Value: nil}}},
	}
}

func encodeAll(recs []Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	return buf
}

func TestWALRoundTrip(t *testing.T) {
	want := sampleRecords()
	buf := encodeAll(want)
	recs, valid, err := ReadWAL(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if valid != len(buf) {
		t.Fatalf("valid %d, want %d", valid, len(buf))
	}
	if len(recs) != len(want) {
		t.Fatalf("%d records, want %d", len(recs), len(want))
	}
	if !bytes.Equal(encodeAll(recs), buf) {
		t.Fatal("re-encoding differs: encoding is not canonical")
	}
}

func TestWALTornTail(t *testing.T) {
	buf := encodeAll(sampleRecords())
	for cut := len(buf) - 1; cut > 0; cut-- {
		recs, valid, err := ReadWAL(buf[:cut])
		if valid > cut {
			t.Fatalf("cut %d: valid %d beyond input", cut, valid)
		}
		if err == nil {
			// A cut exactly at a record boundary reads clean.
			if valid != cut {
				t.Fatalf("cut %d: clean read but valid %d", cut, valid)
			}
			continue
		}
		if !errors.Is(err, ErrTornTail) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: untyped error %v", cut, err)
		}
		if !bytes.Equal(encodeAll(recs), buf[:valid]) {
			t.Fatalf("cut %d: clean prefix does not re-encode", cut)
		}
	}
}

func TestWALCorruptionDetected(t *testing.T) {
	buf := encodeAll(sampleRecords())
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x5a
		_, valid, err := ReadWAL(mut)
		if err == nil && valid == len(mut) {
			// The flip must not produce a silently different parse.
			recs, _, _ := ReadWAL(mut)
			if !bytes.Equal(encodeAll(recs), buf) {
				t.Fatalf("flip at %d silently accepted with altered content", i)
			}
		}
		if err != nil && !errors.Is(err, ErrTornTail) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: untyped error %v", i, err)
		}
	}
}

func TestWALSeqDiscontinuity(t *testing.T) {
	buf := AppendRecord(nil, Record{Seq: 3, Ops: []Op{{Kind: OpClear}}})
	buf = AppendRecord(buf, Record{Seq: 5, Ops: []Op{{Kind: OpClear}}})
	recs, _, err := ReadWAL(buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gap read: %v, want ErrCorrupt", err)
	}
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("kept %d records, want the clean prefix of 1", len(recs))
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	state := map[string][]byte{
		"a":     []byte("1"),
		"b/2":   []byte("two"),
		"empty": nil,
	}
	buf := EncodeCheckpoint(state, 42)
	got, seq, err := ReadCheckpoint(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if seq != 42 {
		t.Fatalf("seq %d, want 42", seq)
	}
	if len(got) != len(state) {
		t.Fatalf("%d keys, want %d", len(got), len(state))
	}
	for k, v := range state {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("key %q: %q, want %q", k, got[k], v)
		}
	}
	if !bytes.Equal(EncodeCheckpoint(got, seq), buf) {
		t.Fatal("checkpoint encoding is not canonical")
	}
}

func TestCheckpointDamageDetected(t *testing.T) {
	buf := EncodeCheckpoint(map[string][]byte{"k": []byte("v"), "l": []byte("w")}, 9)
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xff
		if _, _, err := ReadCheckpoint(mut); err == nil {
			t.Fatalf("flip at %d silently accepted", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: untyped error %v", i, err)
		}
	}
	for cut := len(buf) - 1; cut >= 0; cut-- {
		if _, _, err := ReadCheckpoint(buf[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: %v, want ErrCorrupt", cut, err)
		}
	}
}
