package traffic

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestParseArrivals(t *testing.T) {
	p, err := ParseArrivals("poisson:1ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Mean() != time.Millisecond {
		t.Errorf("poisson mean = %v, want 1ms", p.Mean())
	}
	f, err := ParseArrivals("fixed:2ms")
	if err != nil {
		t.Fatal(err)
	}
	if f.Mean() != 2*time.Millisecond {
		t.Errorf("fixed mean = %v, want 2ms", f.Mean())
	}
	if gap := f.Next(nil); gap != 2*time.Millisecond {
		t.Errorf("fixed gap = %v, want 2ms", gap)
	}
	for _, bad := range []string{"", "poisson", "poisson:", "poisson:-1ms", "poisson:0s", "uniform:1ms", "fixed:abc"} {
		if _, err := ParseArrivals(bad); err == nil {
			t.Errorf("ParseArrivals(%q) succeeded, want error", bad)
		}
	}
}

func TestPoissonGapsSeededAndPositiveMean(t *testing.T) {
	p := Poisson{MeanGap: time.Millisecond}
	sum := time.Duration(0)
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	for i := 0; i < n; i++ {
		g := p.Next(rng)
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	mean := sum / n
	// Exponential gaps with 1ms mean: the empirical mean of 20k draws sits
	// well within 10% of the parameter.
	if mean < 900*time.Microsecond || mean > 1100*time.Microsecond {
		t.Errorf("empirical mean gap %v too far from 1ms", mean)
	}
	// Same seed, same stream.
	a := Poisson{MeanGap: time.Millisecond}
	r1, r2 := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if g1, g2 := a.Next(r1), a.Next(r2); g1 != g2 {
			t.Fatalf("draw %d diverged: %v vs %v", i, g1, g2)
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 1234, Users: 50, Requests: 500}
	a, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs between identical schedules: %+v vs %+v", i, a[i], b[i])
		}
	}
	other, err := Schedule(GenConfig{Seed: 1235, Users: 50, Requests: 500})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].At == other[i].At {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical arrival times")
	}
}

func TestScheduleShape(t *testing.T) {
	const users, reqs = 1000, 3000
	arrivals, err := Schedule(GenConfig{Seed: 9, Users: users, Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != reqs {
		t.Fatalf("got %d arrivals, want %d", len(arrivals), reqs)
	}
	seen := make(map[int]bool, users)
	var prev time.Duration = -1
	for i, a := range arrivals {
		if a.Seq != i {
			t.Fatalf("arrival %d has seq %d", i, a.Seq)
		}
		if a.At < prev {
			t.Fatalf("arrival %d not monotone: %v after %v", i, a.At, prev)
		}
		prev = a.At
		if a.U < 0 || a.U >= 1 {
			t.Fatalf("arrival %d draw %v outside [0,1)", i, a.U)
		}
		if a.Service < 0 {
			t.Fatalf("arrival %d negative service %v", i, a.Service)
		}
		seen[a.User] = true
	}
	// Round-robin assignment with Requests >= Users exercises every user.
	if len(seen) != users {
		t.Errorf("only %d/%d users received traffic", len(seen), users)
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := Schedule(GenConfig{Seed: 1, Users: 0, Requests: 10}); err == nil {
		t.Error("zero users accepted")
	}
	if _, err := Schedule(GenConfig{Seed: 1, Users: 10, Requests: 0}); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 0, User: 3, At: 1500 * time.Microsecond, Category: "static", Latency: 300 * time.Microsecond, Outcome: OutcomeOK},
		{Seq: 1, User: 4, At: 2 * time.Millisecond, Category: "cgi", Latency: 80 * time.Millisecond, Outcome: OutcomeSlow},
		{Seq: 2, User: 5, At: 3 * time.Millisecond, Category: "proxy", Outcome: OutcomeRefused, Component: "cache", Err: "component cache is down"},
		{Seq: 3, User: 6, At: 4 * time.Millisecond, Category: "select", Outcome: OutcomeError, Err: "disk full"},
		{Seq: 4, User: 7, At: 5 * time.Millisecond, Category: "insert", Outcome: OutcomeLost, Err: "process down"},
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d != %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	// Byte determinism: encoding the same slice twice is identical.
	var buf2 bytes.Buffer
	if err := WriteRecords(&buf2, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteRecords not byte-deterministic")
	}
}

func TestReadRecordsRejectsBadLogs(t *testing.T) {
	for name, log := range map[string]string{
		"unknown outcome": `{"seq":0,"user":0,"at_ns":0,"category":"x","latency_ns":0,"outcome":"maybe"}`,
		"negative seq":    `{"seq":-1,"user":0,"at_ns":0,"category":"x","latency_ns":0,"outcome":"ok"}`,
		"refused no comp": `{"seq":0,"user":0,"at_ns":0,"category":"x","latency_ns":0,"outcome":"refused"}`,
		"garbage":         `not json`,
	} {
		if _, err := ReadRecords(bytes.NewReader([]byte(log + "\n"))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSLO(t *testing.T) {
	slo := DefaultSLO()
	if slo.Outcome(10*time.Millisecond) != OutcomeOK {
		t.Error("10ms should be ok under the 50ms default")
	}
	if slo.Outcome(60*time.Millisecond) != OutcomeSlow {
		t.Error("60ms should be slow under the 50ms default")
	}
	// Burn: 5 bad of 1000 at 99.9% = 5 / (1000*0.001) = 5 budgets.
	if got := slo.Burn(5, 1000); math.Abs(got-5) > 1e-9 {
		t.Errorf("Burn(5, 1000) = %v, want 5", got)
	}
	if got := slo.Burn(0, 0); got != 0 {
		t.Errorf("Burn on empty stream = %v, want 0", got)
	}
	perfect := SLO{Objective: 1, Latency: time.Second}
	if got := perfect.Burn(3, 100); got != 3 {
		t.Errorf("zero-budget burn = %v, want bad count 3", got)
	}
	sc := slo.ScoreRecords([]Record{
		{Outcome: OutcomeOK, Latency: time.Millisecond},
		{Outcome: OutcomeSlow, Latency: 80 * time.Millisecond},
		{Outcome: OutcomeLost},
	})
	if sc.Good != 1 || sc.Bad != 2 || sc.Requests != 3 {
		t.Errorf("ScoreRecords = %+v, want 1 good / 2 bad of 3", sc)
	}
}
