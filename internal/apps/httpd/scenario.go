package httpd

import (
	"strings"
	"time"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
)

// healTTR is how long the transient environmental conditions staged by the
// scenarios take to heal on their own — short enough that a recovery
// strategy which waits between retries observes the healed environment.
const healTTR = 90 * time.Second

// Scenarios returns the executable reproduction of each seeded Apache bug:
// the staged environmental precondition and the workload that triggers it.
// The ops close over srv, so a recovery manager that restores srv's state
// can re-execute the failing op directly.
func Scenarios(srv *Server) map[string]faultinject.Scenario {
	env := srv.Env()
	get := func(path string) faultinject.Op {
		return faultinject.Op{Name: "GET " + path, Do: func() error {
			_, err := srv.Serve(Request{Method: "GET", Path: path})
			return err
		}}
	}
	getN := func(path string, n int) []faultinject.Op {
		ops := make([]faultinject.Op, 0, n)
		for i := 0; i < n; i++ {
			ops = append(ops, get(path))
		}
		return ops
	}

	scenarios := map[string]faultinject.Scenario{
		MechLongURLOverflow: {
			Description: "a browser submits a 9000-character URL",
			Ops:         []faultinject.Op{get("/" + strings.Repeat("a", 9000))},
		},
		MechSighupCrash: {
			Description: "the operator sends SIGHUP to rotate logs",
			Ops: []faultinject.Op{
				get("/index.html"),
				{Name: "SIGHUP", Do: func() error { return srv.Signal(SigHUP) }},
			},
		},
		MechValistReuse: {
			Description: "a client requests a nonexistent URL",
			Ops:         []faultinject.Op{get("/no-such-page")},
		},
		MechPallocZero: {
			Description: "a client lists an empty directory with Indexes on",
			Ops:         []faultinject.Op{get("/empty/")},
		},
		MechMemoryLeakHup: {
			Description: "hours of traffic leak shared memory, then HUP rotates logs",
			Ops: append(getN("/index.html", 500),
				faultinject.Op{Name: "SIGHUP", Do: func() error { return srv.Signal(SigHUP) }}),
		},
		MechLoadResourceLeak: {
			Description: "sustained peak load leaks an unknown resource",
			Ops:         getN("/index.html", leakUnitCap+5),
		},
		MechFDExhaustion: {
			Description: "per-request descriptors leak until the table is full",
			Stage:       func() { env.FDs().SetLimit(40) },
			Ops:         getN("/index.html", 60),
		},
		MechDiskCacheFull: {
			Description: "the proxy cache partition fills up",
			Stage: func() {
				// Another tenant of the cache partition leaves little room.
				_ = env.Disk().FillFrom("cache-tenant", 6*4096) //faultlint:ignore envcheck staging the hostile environment is the point
			},
			Ops: getN("/proxy/page", 10),
		},
		MechLogFileLimit: {
			Description: "the access log reaches the maximum allowed file size",
			Stage: func() {
				_ = env.Disk().SetCapacity(1 << 30)
				// Pre-grow the log to just under the per-file limit.
				_ = env.Disk().Append(accessLog, Owner, env.Disk().MaxFileSize()-200) //faultlint:ignore envcheck staging the hostile environment is the point
			},
			Ops: getN("/index.html", 4),
		},
		MechFSFull: {
			Description: "another tenant fills the file system",
			Stage:       func() { _ = env.Disk().FillFrom("other-tenant", 64) }, //faultlint:ignore envcheck staging the hostile environment is the point
			Ops:         getN("/index.html", 3),
		},
		MechNetResource: {
			Description: "an opaque kernel network resource is exhausted",
			Stage: func() {
				env.Net().SetResourceCap(8)
				for i := 0; i < 8; i++ {
					_ = env.Net().AcquireResource() //faultlint:ignore envcheck held by another process: staging the exhaustion
				}
			},
			Ops: getN("/index.html", 3),
		},
		MechPCMCIARemoval: {
			Description: "the PCMCIA network card is removed mid-operation",
			Stage:       func() { env.Net().RemoveInterface() },
			Ops:         getN("/index.html", 3),
		},
		MechDNSError: {
			Description: "the site DNS server starts answering with errors",
			Stage: func() {
				env.DNS().AddHost("client.example.com", "10.1.2.3")
				env.DNS().Fail(healTTR)
			},
			Ops: []faultinject.Op{{Name: "GET with lookup", Do: func() error {
				_, err := srv.Serve(Request{Method: "GET", Path: "/index.html", Host: "client.example.com"})
				return err
			}}},
		},
		MechDNSSlow: {
			Description: "the site DNS server answers very slowly",
			Stage: func() {
				env.DNS().AddHost("client.example.com", "10.1.2.3")
				env.DNS().Slow(healTTR)
			},
			Ops: []faultinject.Op{{Name: "GET with lookup", Do: func() error {
				_, err := srv.Serve(Request{Method: "GET", Path: "/index.html", Host: "client.example.com"})
				return err
			}}},
		},
		MechProcTableFull: {
			Description: "peak load hangs CGI children until the process table fills",
			Stage:       func() {},
			Ops:         getN("/cgi-bin/env", 200),
		},
		MechClientAbort: {
			Description: "the user presses stop in the middle of a download",
			Stage:       func() { env.Sched().Force(MechClientAbort, 0) },
			Ops: []faultinject.Op{{Name: "aborted GET", Do: func() error {
				_, err := srv.Serve(Request{Method: "GET", Path: "/index.html", AbortMidway: true})
				return err
			}}},
		},
		MechPortSquat: {
			Description: "hung children keep the listening port across a restart",
			Ops: append(getN("/cgi-bin/env", 3),
				faultinject.Op{Name: "restart", Do: func() error {
					srv.Stop()
					return srv.Start()
				}}),
		},
		MechSlowNetwork: {
			Description: "the uplink saturates",
			Stage:       func() { env.Net().SlowFor(healTTR) },
			Ops:         getN("/index.html", 2),
		},
		MechEntropyStarved: {
			Description: "ssl handshakes on an idle machine drain /dev/random",
			Stage:       func() { env.Entropy().Drain() },
			Ops: []faultinject.Op{{Name: "GET https", Do: func() error {
				_, err := srv.Serve(Request{Method: "GET", Path: "/index.html", SSL: true})
				return err
			}}},
		},
	}

	for _, bug := range []string{"null-deref", "bounds", "bad-init", "parse-loop",
		"type-mismatch", "missing-check", "double-free", "wrong-status"} {
		key := "httpd/" + bug
		scenarios[key] = faultinject.Scenario{
			Mechanism:   key,
			Description: "a request exercises the " + bug + " defect path",
			Ops:         []faultinject.Op{get("/bug/" + bug)},
		}
	}

	for key, sc := range scenarios {
		sc.Mechanism = key
		scenarios[key] = sc
	}
	return scenarios
}

// StageProcTablePressure pre-loads the process table so the proc-table
// scenario fails quickly; exported for tests that want a fast trigger.
func StageProcTablePressure(env *simenv.Env, slotsLeft int) {
	for env.Procs().Limit()-env.Procs().InUse() > slotsLeft {
		if _, err := env.Procs().Spawn("other-daemon"); err != nil {
			return
		}
	}
}
