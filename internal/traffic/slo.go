package traffic

import (
	"fmt"
	"time"
)

// SLO is a service-level objective over a request stream: at least Objective
// of all requests must be good, where good means served (ok, not refused,
// errored, or lost) within the Latency threshold.
type SLO struct {
	// Objective is the target good fraction, e.g. 0.999 for three nines.
	Objective float64
	// Latency is the threshold a served request must beat to count as good.
	Latency time.Duration
}

// DefaultSLO is the serving tier's objective: 99.9% of requests served
// within 50 virtual milliseconds.
func DefaultSLO() SLO {
	return SLO{Objective: 0.999, Latency: 50 * time.Millisecond}
}

// Good reports whether one record met the objective.
func (s SLO) Good(rec Record) bool {
	return (rec.Outcome == OutcomeOK || rec.Outcome == OutcomeSlow) && rec.Latency <= s.Latency
}

// Outcome classifies a served request's latency against the threshold —
// the ok/slow split the serving tier records.
func (s SLO) Outcome(latency time.Duration) string {
	if latency <= s.Latency {
		return OutcomeOK
	}
	return OutcomeSlow
}

// Burn reports how many multiples of the error budget the bad requests
// consumed: bad / (total * (1 - Objective)). A burn of 1.0 means the stream
// spent exactly its budget; a process restart that loses thousands of
// requests burns hundreds of budgets. Zero-length streams burn nothing.
func (s SLO) Burn(bad, total int) float64 {
	if total == 0 {
		return 0
	}
	budget := float64(total) * (1 - s.Objective)
	if budget <= 0 {
		// A 100% objective has no budget: any badness is infinite burn,
		// reported as the bad count to stay finite and comparable.
		return float64(bad)
	}
	return float64(bad) / budget
}

// Score tallies a record stream against the SLO.
type Score struct {
	// Requests is the stream length.
	Requests int
	// Good counts records meeting the objective.
	Good int
	// Bad counts records missing it (slow beyond threshold, refused,
	// errored, or lost).
	Bad int
	// Burn is the error-budget multiple the bad records consumed.
	Burn float64
}

// ScoreRecords scores a record stream against the SLO.
func (s SLO) ScoreRecords(recs []Record) Score {
	sc := Score{Requests: len(recs)}
	for _, r := range recs {
		if s.Good(r) {
			sc.Good++
		} else {
			sc.Bad++
		}
	}
	sc.Burn = s.Burn(sc.Bad, sc.Requests)
	return sc
}

// String renders the score compactly.
func (sc Score) String() string {
	return fmt.Sprintf("%d/%d good, burn %.1fx", sc.Good, sc.Requests, sc.Burn)
}
