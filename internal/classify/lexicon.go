package classify

import "faultstudy/internal/taxonomy"

// phrase is one weighted lexicon cue. Phrases are matched as lowercase
// substrings of the report text.
type phrase struct {
	text   string
	weight float64
}

// triggerLexicon maps each environmental trigger kind to its cue phrases.
// The phrases encode the study's §5 trigger descriptions: the classifier
// reproduces the authors' judgment by recognizing the same conditions they
// cite.
var triggerLexicon = map[taxonomy.TriggerKind][]phrase{
	taxonomy.TriggerResourceLeak: {
		{"resource leak", 3},
		{"resource it never returns", 3},
		{"leaks a", 1.5},
		{"accumulates", 1},
		{"under sustained high load", 1.5},
	},
	taxonomy.TriggerFDExhaustion: {
		{"file descriptors", 3},
		{"file descriptor", 2.5},
		{"out of descriptors", 3},
		{"descriptor limit", 2},
		{"descriptor shortage", 3},
		{"runs out of file", 2},
	},
	taxonomy.TriggerDiskFull: {
		{"full file system", 4},
		{"file system full", 4},
		{"disk full", 3.5},
		{"disk cache", 2.5},
		{"fill the partition", 2.5},
		{"fills the partition", 2.5},
		{"partition size", 1.5},
		{"cannot store any more", 2},
		{"no space left", 3},
	},
	taxonomy.TriggerFileSizeLimit: {
		{"maximum allowed file size", 5},
		{"maximum file size", 4},
		{"file size limit", 3.5},
		{"size limit, then", 2},
		{"grows past the file", 2},
	},
	taxonomy.TriggerNetworkResource: {
		{"pcmcia", 5},
		{"network card", 3.5},
		{"network resource", 3},
		{"kernel network resource", 3},
		{"kernel refuses new connections", 2},
	},
	taxonomy.TriggerHostConfig: {
		{"reverse dns", 5},
		{"ptr record", 4},
		{"hostname", 3.5},
		{"owner field", 4},
		{"illegal value", 2},
		{"out-of-range uid", 2},
	},
	taxonomy.TriggerDNSFailure: {
		{"domain name service", 3},
		{"dns server", 2.5},
		{"dns lookup", 2.5},
		{"slow dns", 3},
		{"dns response", 2},
		{"call to dns", 2.5},
		{"dns returns an error", 3},
	},
	taxonomy.TriggerProcessTable: {
		{"process table", 4},
		{"hung child", 3},
		{"child processes hang", 3},
		{"children pile up", 2},
		{"fork fails", 2},
		{"listening port", 3},
		{"holding the listening", 2},
		{"hang onto required network ports", 4},
		{"ports freed", 2},
		{"ports will be freed", 2},
		{"kills all processes", 1.5},
	},
	taxonomy.TriggerRequestTiming: {
		{"presses stop", 4},
		{"press stop", 3},
		{"mid-download", 2.5},
		{"midst of a page download", 3},
		{"timing of the requested workload", 4},
		{"at just the right moment", 2.5},
		{"user's typing speed", 2},
	},
	taxonomy.TriggerRace: {
		{"race condition", 4.5},
		{"race between", 4},
		{"thread scheduling", 2.5},
		{"interleav", 2.5},
		{"signal and its arrival", 3},
		{"timing dependent", 2.5},
		{"timing dependence", 2.5},
		{"works on a retry", 3.5},
		{"works on retry", 3.5},
		{"succeeded on retry", 3.5},
		{"not reliably reproducible", 3},
		{"not reproducible", 2.5},
		{"fails only sometimes", 2.5},
		{"fails rarely", 2.5},
		{"intermittent", 2},
		{"hard to hit twice", 2},
		{"could not pin down", 1.5},
	},
	taxonomy.TriggerSlowNetwork: {
		{"slow network", 4},
		{"network may be fixed", 2.5},
		{"uplink is saturated", 2.5},
		{"network is overloaded", 2},
	},
	taxonomy.TriggerEntropy: {
		{"/dev/random", 5},
		{"entropy", 3.5},
		{"random numbers", 2.5},
		{"ssl handshakes on a freshly booted", 1.5},
	},
}

// deterministicLexicon holds the cues that a fault is workload-deterministic
// — the reporters' "happens every time" language the study leaned on when a
// report showed no environmental dependence.
var deterministicLexicon = []phrase{
	{"every time", 2},
	{"everytime", 2},
	{"each time", 1.5},
	{"every attempt", 2},
	{"every single time", 2.5},
	{"deterministic", 2.5},
	{"reliably", 1.5},
	{"on every platform", 2},
	{"on every machine", 2},
	{"any platform", 1.5},
	{"on any machine", 1.5},
	{"on the first request", 1.5},
	{"first statement", 1},
	{"always", 1},
	{"100% reproducible", 2.5},
}
