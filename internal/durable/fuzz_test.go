package durable

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzWALSeed builds a clean three-record log for the seed corpus.
func fuzzWALSeed() []byte {
	return encodeAll(sampleRecords())
}

// FuzzReadWAL drives the WAL reader with arbitrary bytes. Invariants: never
// panics; valid never exceeds the input; the accepted prefix re-encodes to
// the identical bytes (canonical encoding — no silent reinterpretation);
// any rejection is one of the two typed errors, so corrupt input can never
// masquerade as success.
func FuzzReadWAL(f *testing.F) {
	seed := fuzzWALSeed()
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add(seed[:9])
	flipped := append([]byte(nil), seed...)
	flipped[13] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := ReadWAL(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid %d outside [0, %d]", valid, len(data))
		}
		if err != nil && !errors.Is(err, ErrTornTail) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped error: %v", err)
		}
		if err == nil && valid != len(data) {
			t.Fatalf("silent success on a partial read: valid %d of %d", valid, len(data))
		}
		if !bytes.Equal(encodeAll(recs), data[:valid]) {
			t.Fatal("accepted prefix does not re-encode to the input bytes")
		}
	})
}

// FuzzReadCheckpoint drives the checkpoint reader with arbitrary bytes.
// Invariants: never panics; acceptance means the bytes are exactly the
// canonical encoding of the decoded state (so damage cannot be silently
// absorbed); every rejection is the typed ErrCorrupt.
func FuzzReadCheckpoint(f *testing.F) {
	seed := EncodeCheckpoint(map[string][]byte{
		"a/key":  []byte("value-one"),
		"b/key":  []byte("value-two"),
		"scheme": nil,
	}, 17)
	f.Add(seed)
	f.Add(seed[:len(seed)-1])
	flipped := append([]byte(nil), seed...)
	flipped[10] ^= 0x01
	f.Add(flipped)
	f.Add([]byte("FSDCKPT1"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xa5}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		state, seq, err := ReadCheckpoint(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if !bytes.Equal(EncodeCheckpoint(state, seq), data) {
			t.Fatal("accepted checkpoint does not re-encode to the input bytes")
		}
	})
}
