// Package mbox parses Unix mbox mail archives and threads the messages — the
// format of the MySQL mailing-list archive the study mined (paper §4). It
// implements the study's methodology for that source: keyword search over the
// archive ("crash", "segmentation", "race", "died") followed by narrowing the
// matching messages to unique bugs by thread.
package mbox

import (
	"bufio"
	"fmt"
	"io"
	"net/textproto"
	"sort"
	"strings"
	"time"
)

// Message is one parsed mail message.
type Message struct {
	// MessageID is the Message-ID header without angle brackets.
	MessageID string
	// InReplyTo is the In-Reply-To header without angle brackets, or "".
	InReplyTo string
	// References lists the References header IDs, oldest first.
	References []string
	// From is the From header.
	From string
	// Subject is the Subject header.
	Subject string
	// Date is the parsed Date header; zero when absent or unparseable.
	Date time.Time
	// Body is the message body.
	Body string
}

// Parse reads an mbox stream and returns its messages in file order.
// A message begins at a line starting with "From " (the mbox From_ line);
// ">From" quoting in bodies is unescaped.
func Parse(r io.Reader) ([]*Message, error) {
	br := bufio.NewReader(r)
	var (
		msgs []*Message
		raw  []string
	)
	flush := func() error {
		if raw == nil {
			return nil
		}
		m, err := parseMessage(raw)
		if err != nil {
			return err
		}
		msgs = append(msgs, m)
		raw = nil
		return nil
	}
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if line != "" {
			lineNo++
			trimmed := strings.TrimRight(line, "\r\n")
			if strings.HasPrefix(trimmed, "From ") {
				if err := flush(); err != nil {
					return nil, fmt.Errorf("mbox line %d: %w", lineNo, err)
				}
				raw = []string{} // start new message; From_ line itself is dropped
			} else if raw != nil {
				if strings.HasPrefix(trimmed, ">From") {
					trimmed = trimmed[1:]
				}
				raw = append(raw, trimmed)
			} else if strings.TrimSpace(trimmed) != "" {
				return nil, fmt.Errorf("mbox line %d: content before first From_ line", lineNo)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("mbox read: %w", err)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return msgs, nil
}

// dateLayouts are the Date header formats seen in late-90s list archives.
var dateLayouts = []string{
	time.RFC1123Z,
	time.RFC1123,
	"Mon, 2 Jan 2006 15:04:05 -0700",
	"Mon, 2 Jan 2006 15:04:05 MST",
	"2 Jan 2006 15:04:05 -0700",
}

func parseMessage(lines []string) (*Message, error) {
	// Split headers from body at the first blank line.
	sep := len(lines)
	for i, l := range lines {
		if strings.TrimSpace(l) == "" {
			sep = i
			break
		}
	}
	hdrText := strings.Join(lines[:sep], "\r\n") + "\r\n\r\n"
	tp := textproto.NewReader(bufio.NewReader(strings.NewReader(hdrText)))
	hdr, err := tp.ReadMIMEHeader()
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("headers: %w", err)
	}
	body := ""
	if sep+1 <= len(lines) {
		body = strings.Join(lines[min(sep+1, len(lines)):], "\n")
	}
	m := &Message{
		MessageID: stripAngle(hdr.Get("Message-Id")),
		InReplyTo: stripAngle(hdr.Get("In-Reply-To")),
		From:      hdr.Get("From"),
		Subject:   hdr.Get("Subject"),
		Body:      body,
	}
	for _, ref := range strings.Fields(hdr.Get("References")) {
		if id := stripAngle(ref); id != "" {
			m.References = append(m.References, id)
		}
	}
	if ds := hdr.Get("Date"); ds != "" {
		for _, layout := range dateLayouts {
			if t, perr := time.Parse(layout, ds); perr == nil {
				m.Date = t.UTC()
				break
			}
		}
	}
	if m.MessageID == "" {
		return nil, fmt.Errorf("message %q has no Message-Id", m.Subject)
	}
	return m, nil
}

func stripAngle(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "<")
	s = strings.TrimSuffix(s, ">")
	return s
}

// Thread is a root message and all transitive replies, ordered by date.
type Thread struct {
	// RootID is the Message-ID of the thread root.
	RootID string
	// Subject is the root subject with any Re:/Fwd: prefixes removed.
	Subject string
	// Messages holds the thread's messages, root first.
	Messages []*Message
}

// ThreadMessages groups messages into threads. A message joins the thread of
// its In-Reply-To or first References ancestor; messages whose ancestors are
// missing from the archive fall back to subject-based grouping (normalized by
// stripping reply prefixes), matching how list archives reconstruct broken
// threading.
func ThreadMessages(msgs []*Message) []*Thread {
	idToThread := make(map[string]*Thread, len(msgs))
	subjToThread := make(map[string]*Thread, len(msgs))
	var threads []*Thread

	addTo := func(t *Thread, m *Message) {
		t.Messages = append(t.Messages, m)
		idToThread[m.MessageID] = t
	}

	for _, m := range msgs {
		parent := m.InReplyTo
		if parent == "" && len(m.References) > 0 {
			parent = m.References[len(m.References)-1]
		}
		if parent != "" {
			if t, ok := idToThread[parent]; ok {
				addTo(t, m)
				continue
			}
		}
		subj := NormalizeSubject(m.Subject)
		if isReply(m.Subject) || parent != "" {
			if t, ok := subjToThread[subj]; ok {
				addTo(t, m)
				continue
			}
		}
		t := &Thread{RootID: m.MessageID, Subject: subj}
		addTo(t, m)
		subjToThread[subj] = t
		threads = append(threads, t)
	}

	for _, t := range threads {
		sort.SliceStable(t.Messages, func(i, j int) bool {
			return t.Messages[i].Date.Before(t.Messages[j].Date)
		})
	}
	return threads
}

// NormalizeSubject strips Re:/Fwd:/mailing-list tags and collapses
// whitespace, lowercased.
func NormalizeSubject(s string) string {
	s = strings.TrimSpace(s)
	for {
		lower := strings.ToLower(s)
		switch {
		case strings.HasPrefix(lower, "re:"):
			s = strings.TrimSpace(s[3:])
		case strings.HasPrefix(lower, "fwd:"):
			s = strings.TrimSpace(s[4:])
		case strings.HasPrefix(s, "[") && strings.Contains(s, "]"):
			s = strings.TrimSpace(s[strings.Index(s, "]")+1:])
		default:
			return strings.ToLower(strings.Join(strings.Fields(s), " "))
		}
	}
}

func isReply(subject string) bool {
	return strings.HasPrefix(strings.ToLower(strings.TrimSpace(subject)), "re:")
}

// DefaultKeywords are the study's serious-bug search terms for the MySQL
// list archive (paper §4).
func DefaultKeywords() []string {
	return []string{"crash", "segmentation", "race", "died"}
}

// MatchesKeywords reports whether the message's subject or body contains any
// of the keywords, case-insensitively.
func (m *Message) MatchesKeywords(keywords []string) bool {
	text := strings.ToLower(m.Subject + "\n" + m.Body)
	for _, k := range keywords {
		if strings.Contains(text, strings.ToLower(k)) {
			return true
		}
	}
	return false
}

// FilterThreads returns the threads in which at least one message matches the
// keywords.
func FilterThreads(threads []*Thread, keywords []string) []*Thread {
	out := make([]*Thread, 0, len(threads))
	for _, t := range threads {
		for _, m := range t.Messages {
			if m.MatchesKeywords(keywords) {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
