// Package resilient is the mining pipeline's tail-tolerant HTTP client
// layer: per-try deadlines, exponential backoff with seeded jitter, a
// token-bucket retry budget, optional hedged re-attempts (after Dean &
// Barroso's "The Tail at Scale"), per-host circuit breakers (the
// supervision layer's breaker state machine extracted to the transport),
// Retry-After honoring, and Content-Length truncation detection.
//
// The layer exists to make the paper's Table 8 logic measurable end-to-end:
// a state-preserving retry survives environment-dependent-transient faults
// because the condition heals between attempts, and survives essentially no
// nontransient ones because it cannot change the environment. The client
// implements exactly that generic recovery — plus the storm-control
// mechanisms (budget, breaker) that keep the unsurvivable case cheap — and
// internal/experiment's RESIL sweep verifies the prediction fault class by
// fault class.
//
// The Client is an http.RoundTripper: wrap it in an http.Client and every
// caller above it (the crawler, the miners) gets resilience without code
// changes. All time flows through an injected Clock, so experiment runs on
// the virtual clock are byte-deterministic in the seed.
package resilient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Named failure modes, distinguishable with errors.Is.
var (
	// ErrBreakerOpen reports a request declined fast by an open per-host
	// circuit breaker.
	ErrBreakerOpen = errors.New("resilient: circuit breaker open")
	// ErrTryTimeout reports an attempt that exceeded the per-try deadline.
	ErrTryTimeout = errors.New("resilient: per-try deadline exceeded")
	// ErrTruncatedBody reports a response body shorter than its declared
	// Content-Length.
	ErrTruncatedBody = errors.New("resilient: response body truncated")
	// ErrBudgetExhausted reports a retry suppressed by the token-bucket
	// retry budget.
	ErrBudgetExhausted = errors.New("resilient: retry budget exhausted")
)

// Policy is one client configuration. The presets — NaivePolicy,
// RetryPolicy, FullPolicy — are the three arms the RESIL experiment
// crosses with the chaos classes.
type Policy struct {
	// Name labels the policy in reports and metrics.
	Name string
	// MaxAttempts bounds total tries per request, first attempt included.
	// Values below 1 mean 1.
	MaxAttempts int
	// PerTryTimeout bounds each attempt; 0 disables. On a virtual clock the
	// deadline is enforced after the fact (a response that arrived later
	// than the deadline is discarded as a timeout).
	PerTryTimeout time.Duration
	// BackoffBase and BackoffCap shape the exponential retry delay
	// base·2^(attempt−1), capped.
	BackoffBase time.Duration
	// BackoffCap caps the exponential delay.
	BackoffCap time.Duration
	// Jitter adds up to Jitter×delay of seeded random slack to each backoff
	// (0 disables; a nil client rng also disables, as in supervise).
	Jitter float64
	// BudgetBurst is the retry budget's bucket size; 0 means no budget.
	BudgetBurst float64
	// BudgetEarn is the budget credit per first attempt.
	BudgetEarn float64
	// HedgeAfter enables hedged re-attempts: an attempt that failed slow
	// (per-try timeout, or slower than this threshold) is retried
	// immediately, without backoff and without charging the retry budget.
	// 0 disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold opens a host's breaker after this many consecutive
	// failures; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open cooldown.
	BreakerCooldown time.Duration
	// HonorRetryAfter makes 429/503 Retry-After headers override the
	// backoff delay (capped at RetryAfterCap).
	HonorRetryAfter bool
	// RetryAfterCap bounds an honored Retry-After wait; 0 means no cap.
	RetryAfterCap time.Duration
	// DetectTruncation buffers bodies and fails attempts whose length
	// disagrees with Content-Length (a retryable fault).
	DetectTruncation bool
}

// NaivePolicy is the baseline: one attempt, a generous per-try deadline,
// no detection, no recovery — the pre-chaos crawler's behaviour.
func NaivePolicy() Policy {
	return Policy{Name: "naive", MaxAttempts: 1, PerTryTimeout: 10 * time.Second}
}

// RetryPolicy is plain generic recovery: bounded retries with jittered
// exponential backoff, a retry budget, Retry-After honoring, and truncation
// detection — but no hedging and no breaker.
func RetryPolicy() Policy {
	return Policy{
		Name:             "retry",
		MaxAttempts:      4,
		PerTryTimeout:    5 * time.Second,
		BackoffBase:      100 * time.Millisecond,
		BackoffCap:       2 * time.Second,
		Jitter:           0.2,
		BudgetBurst:      40,
		BudgetEarn:       0.5,
		HonorRetryAfter:  true,
		RetryAfterCap:    2 * time.Second,
		DetectTruncation: true,
	}
}

// FullPolicy is the complete resilient client: RetryPolicy plus a tight
// per-try deadline, hedged re-attempts, and a per-host circuit breaker.
func FullPolicy() Policy {
	p := RetryPolicy()
	p.Name = "full"
	p.PerTryTimeout = 1 * time.Second
	p.HedgeAfter = 500 * time.Millisecond
	p.BreakerThreshold = 5
	p.BreakerCooldown = 30 * time.Second
	return p
}

// PolicyByName resolves "naive", "retry", or "full" to its preset.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "naive":
		return NaivePolicy(), nil
	case "retry":
		return RetryPolicy(), nil
	case "full":
		return FullPolicy(), nil
	default:
		return Policy{}, fmt.Errorf("resilient: unknown policy %q (want naive, retry, or full)", name)
	}
}

// Event kinds emitted to the trace hook.
const (
	// EventSuccess is a request served (possibly after retries).
	EventSuccess = "success"
	// EventAttemptFail is one failed attempt (transport error, retryable
	// status, timeout, or truncation).
	EventAttemptFail = "attempt-fail"
	// EventRetry is a backoff-paced retry about to be made; Delay carries
	// the wait.
	EventRetry = "retry"
	// EventHedge is an immediate hedged re-attempt after a slow failure.
	EventHedge = "hedge"
	// EventFastFail is a request declined by an open breaker.
	EventFastFail = "fast-fail"
	// EventBudgetDeny is a retry suppressed by the exhausted budget.
	EventBudgetDeny = "budget-deny"
	// EventGiveUp is a request abandoned with attempts exhausted.
	EventGiveUp = "give-up"
	// EventBreakerOpen is a host breaker newly opening.
	EventBreakerOpen = "breaker-open"
)

// Event is one client decision, delivered to the trace hook.
type Event struct {
	// Kind is one of the Event* constants.
	Kind string
	// URL is the request URL.
	URL string
	// Host is the request host (the breaker key).
	Host string
	// Attempt is the attempt number the event belongs to (1-based).
	Attempt int
	// Status is the HTTP status observed, when one was.
	Status int
	// Err is the failure observed, when one was.
	Err error
	// At is the clock reading at the event.
	At time.Duration
	// Delay is the wait chosen for retry events.
	Delay time.Duration
}

// Stats are the client's cumulative counters.
type Stats struct {
	// Requests counts RoundTrip calls admitted past the breaker.
	Requests int
	// Attempts counts individual tries, first attempts included.
	Attempts int
	// Retries counts backoff-paced re-attempts.
	Retries int
	// Hedges counts hedged (immediate) re-attempts.
	Hedges int
	// FastFails counts requests declined by an open breaker.
	FastFails int
	// BudgetDenied counts retries suppressed by the budget.
	BudgetDenied int
	// Truncations counts bodies failing the Content-Length check.
	Truncations int
	// RetryAfterWaits counts backoffs overridden by a Retry-After header.
	RetryAfterWaits int
	// Successes counts requests ultimately served with a success status.
	Successes int
	// GiveUps counts requests abandoned with attempts exhausted.
	GiveUps int
}

// Client is the resilient http.RoundTripper. Build with New; share Breaker
// and Budget across clients via options when several clients talk to the
// same backend.
type Client struct {
	policy  Policy
	next    http.RoundTripper
	clock   Clock
	breaker *Breaker
	budget  *Budget
	trace   func(Event)

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// Option configures a Client.
type Option func(*Client)

// WithTransport sets the inner transport (default http.DefaultTransport).
func WithTransport(rt http.RoundTripper) Option { return func(c *Client) { c.next = rt } }

// WithClock injects the clock (default the wall clock).
func WithClock(clock Clock) Option { return func(c *Client) { c.clock = clock } }

// WithRand injects the jitter generator; nil disables jitter (the seeded
// convention shared with the supervision layer).
func WithRand(rng *rand.Rand) Option { return func(c *Client) { c.rng = rng } }

// WithBreaker shares a breaker set across clients.
func WithBreaker(b *Breaker) Option { return func(c *Client) { c.breaker = b } }

// WithBudget shares a retry budget across clients.
func WithBudget(b *Budget) Option { return func(c *Client) { c.budget = b } }

// WithTrace installs the event hook.
func WithTrace(fn func(Event)) Option { return func(c *Client) { c.trace = fn } }

// New builds a client for the policy. A breaker and budget are created from
// the policy's parameters unless shared ones are injected.
func New(p Policy, opts ...Option) *Client {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	c := &Client{policy: p, next: http.DefaultTransport, clock: NewRealClock()}
	for _, o := range opts {
		o(c)
	}
	if c.breaker == nil && p.BreakerThreshold > 0 {
		c.breaker = NewBreaker(p.BreakerThreshold, p.BreakerCooldown)
	}
	if c.budget == nil && p.BudgetBurst > 0 {
		c.budget = NewBudget(p.BudgetBurst, p.BudgetEarn)
	}
	return c
}

// Policy returns the client's policy.
func (c *Client) Policy() Policy { return c.policy }

// HTTPClient wraps the client in an *http.Client for callers that want the
// standard interface (the crawler's WithClient option).
func (c *Client) HTTPClient() *http.Client { return &http.Client{Transport: c} }

// Stats returns a snapshot of the cumulative counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// count applies a mutation to the stats under the lock.
func (c *Client) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// emit delivers an event to the trace hook, if any.
func (c *Client) emit(ev Event) {
	if c.trace != nil {
		c.trace(ev)
	}
}

// retryableStatus reports whether a status code indicates a fault worth
// retrying: server errors, throttling, and request timeout.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests || code == http.StatusRequestTimeout
}

// RoundTrip performs req with the policy's full recovery ladder. It returns
// the last response for requests that exhausted attempts on a retryable
// status (callers see the real server state), and an error for requests
// that exhausted attempts on transport-level failures.
func (c *Client) RoundTrip(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	host := req.URL.Host
	urlStr := req.URL.String()

	if c.breaker != nil && !c.breaker.Allow(host, c.clock.Now()) {
		c.count(func(s *Stats) { s.FastFails++ })
		c.emit(Event{Kind: EventFastFail, URL: urlStr, Host: host, At: c.clock.Now()})
		return nil, fmt.Errorf("resilient: %s: %w", host, ErrBreakerOpen)
	}
	c.budget.Deposit()
	c.count(func(s *Stats) { s.Requests++ })

	attempt := 0
	for {
		attempt++
		resp, elapsed, err := c.try(req)
		c.count(func(s *Stats) { s.Attempts++ })

		if err == nil && !retryableStatus(resp.StatusCode) {
			c.breaker.Success(host)
			c.count(func(s *Stats) { s.Successes++ })
			c.emit(Event{Kind: EventSuccess, URL: urlStr, Host: host, Attempt: attempt,
				Status: resp.StatusCode, At: c.clock.Now()})
			return resp, nil
		}

		// Failed attempt: transport error, timeout, truncation, or a
		// retryable status.
		status := 0
		if err == nil {
			status = resp.StatusCode
		}
		if opened := c.breaker.Failure(host, c.clock.Now()); opened {
			c.emit(Event{Kind: EventBreakerOpen, URL: urlStr, Host: host, Attempt: attempt, At: c.clock.Now()})
		}
		c.emit(Event{Kind: EventAttemptFail, URL: urlStr, Host: host, Attempt: attempt,
			Status: status, Err: err, At: c.clock.Now()})
		if ctx.Err() != nil {
			closeResp(resp)
			return nil, ctx.Err()
		}

		if attempt >= c.policy.MaxAttempts {
			c.count(func(s *Stats) { s.GiveUps++ })
			c.emit(Event{Kind: EventGiveUp, URL: urlStr, Host: host, Attempt: attempt,
				Status: status, Err: err, At: c.clock.Now()})
			if err == nil {
				return resp, nil // the caller sees the real retryable status
			}
			return nil, fmt.Errorf("resilient: %s %s: %d attempt(s) exhausted: %w",
				req.Method, urlStr, attempt, err)
		}

		// A slow failure hedges: immediate re-attempt, no backoff, no
		// budget charge. Everything else pays the budget and backs off.
		hedged := c.policy.HedgeAfter > 0 &&
			(errors.Is(err, ErrTryTimeout) || elapsed >= c.policy.HedgeAfter)
		if hedged {
			closeResp(resp)
			c.count(func(s *Stats) { s.Hedges++ })
			c.emit(Event{Kind: EventHedge, URL: urlStr, Host: host, Attempt: attempt, At: c.clock.Now()})
			continue
		}

		if !c.budget.Withdraw() {
			c.count(func(s *Stats) { s.BudgetDenied++ })
			c.emit(Event{Kind: EventBudgetDeny, URL: urlStr, Host: host, Attempt: attempt, At: c.clock.Now()})
			if err == nil {
				return resp, nil
			}
			closeResp(resp)
			return nil, fmt.Errorf("resilient: %s %s: %w: %w", req.Method, urlStr, ErrBudgetExhausted, err)
		}

		delay, honored := retryAfterDelay(resp, c.policy)
		if !honored {
			delay = c.backoffDelay(attempt)
		} else {
			c.count(func(s *Stats) { s.RetryAfterWaits++ })
		}
		closeResp(resp)
		c.emit(Event{Kind: EventRetry, URL: urlStr, Host: host, Attempt: attempt,
			At: c.clock.Now(), Delay: delay})
		if err := c.clock.Sleep(ctx, delay); err != nil {
			return nil, err
		}
		c.count(func(s *Stats) { s.Retries++ })
	}
}

// try performs one attempt: per-try deadline, post-hoc virtual-clock
// timeout enforcement, and (when the policy asks) body buffering with the
// Content-Length truncation check.
func (c *Client) try(req *http.Request) (*http.Response, time.Duration, error) {
	start := c.clock.Now()
	ctx, cancel := req.Context(), func() {}
	if c.policy.PerTryTimeout > 0 {
		ctx, cancel = c.clock.WithTimeout(req.Context(), c.policy.PerTryTimeout)
	}
	defer cancel()
	resp, err := c.next.RoundTrip(req.Clone(ctx))
	elapsed := c.clock.Now() - start
	if err != nil {
		return nil, elapsed, err
	}
	if c.policy.PerTryTimeout > 0 && elapsed > c.policy.PerTryTimeout {
		closeResp(resp)
		return nil, elapsed, fmt.Errorf("resilient: attempt took %s (deadline %s): %w",
			elapsed, c.policy.PerTryTimeout, ErrTryTimeout)
	}
	if !c.policy.DetectTruncation {
		return resp, elapsed, nil
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, elapsed, fmt.Errorf("resilient: read body of %s: %w", req.URL, rerr)
	}
	if resp.ContentLength >= 0 && int64(len(body)) != resp.ContentLength {
		c.count(func(s *Stats) { s.Truncations++ })
		return nil, elapsed, fmt.Errorf("resilient: %s: body %d bytes, Content-Length %d: %w",
			req.URL, len(body), resp.ContentLength, ErrTruncatedBody)
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	return resp, elapsed, nil
}

// backoffDelay returns the jittered exponential delay before the retry that
// follows the attempt-th attempt.
func (c *Client) backoffDelay(attempt int) time.Duration {
	d := c.policy.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.policy.BackoffCap || d <= 0 {
			d = c.policy.BackoffCap
			break
		}
	}
	if d > c.policy.BackoffCap {
		d = c.policy.BackoffCap
	}
	if c.policy.Jitter > 0 {
		c.mu.Lock()
		rng := c.rng
		var f float64
		if rng != nil {
			f = rng.Float64()
		}
		c.mu.Unlock()
		d += time.Duration(float64(d) * c.policy.Jitter * f)
	}
	return d
}

// retryAfterDelay extracts an honored Retry-After wait from a 429/503
// response, capped by the policy. Only the delta-seconds form is honored;
// HTTP-dates would reintroduce the wall clock.
func retryAfterDelay(resp *http.Response, p Policy) (time.Duration, bool) {
	if !p.HonorRetryAfter || resp == nil {
		return 0, false
	}
	if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
		return 0, false
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs) * time.Second
	if p.RetryAfterCap > 0 && d > p.RetryAfterCap {
		d = p.RetryAfterCap
	}
	return d, true
}

// closeResp drains nothing and closes the body of a response being
// discarded; nil-safe.
func closeResp(resp *http.Response) {
	if resp != nil && resp.Body != nil {
		resp.Body.Close()
	}
}

// Sleeper is the pacing interface the crawler accepts; the Clock satisfies
// it, so one virtual clock paces the whole stack.
type Sleeper interface {
	// Sleep pauses for d, returning early with the context's error.
	Sleep(ctx context.Context, d time.Duration) error
}
