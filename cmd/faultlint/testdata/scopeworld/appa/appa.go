// Package appa is a golden-test fixture: a miniature componentized
// application whose seeded fault sites exercise the scope and scopegap
// findings of faultlint -scope.
package appa

import (
	"sim/component"
	"sim/faultinject"
)

const (
	compCore  = "appa/core"
	compCache = "appa/cache"
)

const (
	mechLeak   = "appa/slow-leak"
	mechOrphan = "appa/orphan"
	mechHushed = "appa/hushed"
)

// componentFor attributes mechanisms to components; mechOrphan and
// mechHushed are deliberately absent (scopegap cases, one suppressed).
var componentFor = map[string]string{
	mechLeak: compCore,
}

type server struct {
	running  bool
	leakBufs int
	hits     int
}

// Componentize declares the two-part tree: core <- cache.
func (s *server) Componentize(add func(component.Spec)) {
	add(component.Spec{Component: component.NewPart(compCore, component.Hooks{
		OnKill: func() { s.leakBufs = 0 },
	})})
	add(component.Spec{Deps: []string{compCore}, Component: component.NewPart(compCache, component.Hooks{
		OnKill: func() { s.hits = 0 },
	})})
}

// slowLeak: EI crash with kill-released path taint -> microreboot appa/core.
func (s *server) slowLeak() error {
	s.leakBufs++
	if s.leakBufs > 10 {
		s.running = false
		return faultinject.Fail(mechLeak, "crash", "leak tipped over")
	}
	return nil
}

// orphan raises a mechanism with no component attribution: a gating
// scopegap finding.
func (s *server) orphan() error {
	if s.hits < 0 {
		return faultinject.Fail(mechOrphan, "crash", "unattributed")
	}
	return nil
}

// hushed is the same gap with the finding suppressed in source.
func (s *server) hushed() error {
	if s.hits > 1<<30 {
		//faultlint:ignore scopegap legacy mechanism, retired next release
		return faultinject.Fail(mechHushed, "crash", "suppressed gap")
	}
	return nil
}
