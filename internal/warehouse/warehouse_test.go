package warehouse

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTest(t *testing.T, path string) (*Warehouse, *Info) {
	t.Helper()
	w, info, err := Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return w, info
}

func TestPutGetReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.whs")
	w, info := openTest(t, path)
	if info.Records != 0 || info.Torn || info.Corrupt {
		t.Fatalf("fresh open info %+v", info)
	}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("arm/%d", i)
		if err := w.Put(key, []byte(fmt.Sprintf("result-%d", i))); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	if err := w.Put("arm/3", []byte("revised")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2, info2 := openTest(t, path)
	defer w2.Close()
	if info2.Records != 11 || info2.TruncatedBytes != 0 {
		t.Fatalf("reopen info %+v, want 11 clean records", info2)
	}
	if w2.Len() != 10 {
		t.Fatalf("len %d, want 10", w2.Len())
	}
	if v, ok := w2.Get("arm/3"); !ok || !bytes.Equal(v, []byte("revised")) {
		t.Fatalf("arm/3 = %q, %v", v, ok)
	}
	if !w2.Has("arm/9") || w2.Has("arm/10") {
		t.Fatal("Has gave the wrong membership")
	}
	keys := w2.Keys()
	if len(keys) != 10 || keys[0] != "arm/0" || keys[9] != "arm/9" {
		t.Fatalf("keys %v", keys)
	}
}

// TestTornTailTruncated simulates a kill mid-append: every possible torn
// tail must reopen cleanly with exactly the acknowledged prefix, and the
// repair must leave the file appendable.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.whs")
	w, _ := openTest(t, path)
	boundaries := []int64{0}
	for i := 0; i < 4; i++ {
		if err := w.Put(fmt.Sprintf("arm/%d", i), []byte("payload")); err != nil {
			t.Fatalf("put: %v", err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		boundaries = append(boundaries, st.Size())
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	for cut := int64(len(full)) - 1; cut > 0; cut-- {
		torn := filepath.Join(t.TempDir(), "torn.whs")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatalf("write torn copy: %v", err)
		}
		w2, info := openTest(t, torn)
		acked := 0
		for _, b := range boundaries {
			if cut >= b {
				acked++
			}
		}
		acked-- // boundary 0 holds no record
		if info.Records != acked {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, info.Records, acked)
		}
		onBoundary := false
		for _, b := range boundaries {
			if cut == b {
				onBoundary = true
			}
		}
		if onBoundary {
			if info.TruncatedBytes != 0 {
				t.Fatalf("cut %d is a boundary but %d bytes truncated", cut, info.TruncatedBytes)
			}
		} else if !info.Torn && !info.Corrupt {
			t.Fatalf("cut %d: damage not classified: %+v", cut, info)
		}
		// The repaired file accepts new records.
		if err := w2.Put("arm/next", []byte("resumed")); err != nil {
			t.Fatalf("cut %d: put after repair: %v", cut, err)
		}
		w2.Close()
		w3, info3 := openTest(t, torn)
		if info3.TruncatedBytes != 0 || info3.Records != acked+1 {
			t.Fatalf("cut %d: post-repair reopen %+v", cut, info3)
		}
		if !w3.Has("arm/next") {
			t.Fatalf("cut %d: resumed record lost", cut)
		}
		w3.Close()
	}
}

func TestCorruptMiddleDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.whs")
	w, _ := openTest(t, path)
	for i := 0; i < 3; i++ {
		if err := w.Put(fmt.Sprintf("arm/%d", i), bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	raw[len(raw)/2] ^= 0x5a
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	w2, info := openTest(t, path)
	defer w2.Close()
	if !info.Corrupt && !info.Torn {
		t.Fatalf("flip undetected: %+v", info)
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("corrupt suffix not truncated")
	}
	if info.Records >= 3 {
		t.Fatalf("recovered %d records past the damage", info.Records)
	}
}

func TestClosedPutFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.whs")
	w, _ := openTest(t, path)
	w.Close()
	if err := w.Put("k", nil); err == nil {
		t.Fatal("put after close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
