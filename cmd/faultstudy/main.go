// Command faultstudy runs the complete study end to end: it serves the three
// simulated 1999-era bug sources on loopback, mines them over HTTP exactly
// as the paper's methodology describes, narrows and classifies the faults,
// and prints the regenerated tables, figures, and aggregate numbers.
//
// Usage:
//
//	faultstudy [-seed N] [-noise N] [-dup-rate R] [-figures] [-verbose]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"faultstudy"
	"faultstudy/internal/taxonomy"
)

// now is the injectable wall-clock read (the faultlint wallclock pattern):
// the CLI's progress timing goes through this seam so tests can pin it.
var now = time.Now

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultstudy:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Int64("seed", 1999, "site generation seed")
		noise   = flag.Int("noise", 0, "noise reports per site (0 = default volume)")
		dupRate = flag.Float64("dup-rate", 0, "expected duplicates per fault (0 = default 1.0)")
		figures = flag.Bool("figures", true, "render the release/time distribution figures")
		verbose = flag.Bool("verbose", false, "list each classified fault")
		dump    = flag.String("dump-corpus", "", "write the 139-fault corpus as JSON to this file and exit")
		appOnly = flag.String("app", "", "study a single application: apache | gnome | mysql")
	)
	flag.Parse()

	if *dump != "" {
		data, err := faultstudy.CorpusJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*dump, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d faults (%d bytes) to %s\n", len(faultstudy.Corpus()), len(data), *dump)
		return nil
	}

	cfg := faultstudy.SiteConfig{Seed: *seed, NoiseReports: *noise, DuplicateRate: *dupRate}
	sources, shutdown, err := serveSites(cfg)
	if err != nil {
		return err
	}
	defer shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	start := now()

	if *appOnly != "" {
		return runSingle(ctx, *appOnly, sources, *verbose)
	}

	res, err := faultstudy.RunStudy(ctx, sources, faultstudy.StudyOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("mined, narrowed and classified in %v\n\n", now().Sub(start).Round(time.Millisecond))

	for _, app := range []faultstudy.Application{faultstudy.AppApache, faultstudy.AppGnome, faultstudy.AppMySQL} {
		r := res.Apps[app]
		fmt.Printf("%s: %d raw -> %d qualifying -> %d unique (%d duplicates folded)\n",
			app, r.Raw, r.Qualifying, r.Unique, r.Duplicates)
		fmt.Print(r.Table())
		if *verbose {
			for _, c := range r.Faults {
				fmt.Printf("    [%s] %s (trigger %s, confidence %.2f)\n",
					c.Result.Class.Short(), c.Report.Synopsis, c.Result.Trigger, c.Result.Confidence)
			}
		}
		fmt.Println()
	}

	counts, total := res.Totals()
	fmt.Printf("aggregate: %d unique faults; %d environment-dependent-nontransient, %d environment-dependent-transient\n\n",
		total,
		counts[taxonomy.ClassEnvDependentNonTransient],
		counts[taxonomy.ClassEnvDependentTransient])

	if *figures {
		fmt.Print(faultstudy.Figure1Apache().Render())
		fmt.Println()
		fmt.Print(faultstudy.Figure2Gnome().Render())
		fmt.Println()
		fmt.Print(faultstudy.Figure3MySQL().Render())
	}
	return nil
}

// runSingle mines and classifies one application's source.
func runSingle(ctx context.Context, name string, sources faultstudy.StudySources, verbose bool) error {
	var (
		raw []*faultstudy.Report
		err error
	)
	switch name {
	case "apache":
		raw, err = faultstudy.MineApache(ctx, sources.ApacheBase)
	case "gnome":
		raw, err = faultstudy.MineGnome(ctx, sources.GnomeBase)
	case "mysql":
		raw, err = faultstudy.MineMySQL(ctx, sources.MySQLBase)
	default:
		return fmt.Errorf("unknown -app %q (want apache, gnome, or mysql)", name)
	}
	if err != nil {
		return err
	}
	res := faultstudy.ClassifyReports(raw, faultstudy.StudyOptions{})
	fmt.Printf("%s: %d raw -> %d qualifying -> %d unique (%d duplicates folded)\n",
		name, res.Raw, res.Qualifying, res.Unique, res.Duplicates)
	fmt.Print(res.Table())
	if verbose {
		for _, c := range res.Faults {
			fmt.Printf("    [%s] %s (trigger %s)\n", c.Result.Class.Short(), c.Report.Synopsis, c.Result.Trigger)
		}
	}
	return nil
}

// serveSites binds the three simulated trackers to loopback listeners.
func serveSites(cfg faultstudy.SiteConfig) (faultstudy.StudySources, func(), error) {
	var (
		src     faultstudy.StudySources
		servers []*http.Server
	)
	shutdown := func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}
	serve := func(h http.Handler) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := &http.Server{Handler: h}
		servers = append(servers, srv)
		go func() { _ = srv.Serve(ln) }()
		return "http://" + ln.Addr().String(), nil
	}
	var err error
	if src.ApacheBase, err = serve(faultstudy.NewApacheTrackerSite(cfg)); err != nil {
		shutdown()
		return src, nil, err
	}
	if src.GnomeBase, err = serve(faultstudy.NewGnomeTrackerSite(cfg)); err != nil {
		shutdown()
		return src, nil, err
	}
	if src.MySQLBase, err = serve(faultstudy.NewMySQLArchiveSite(cfg)); err != nil {
		shutdown()
		return src, nil, err
	}
	return src, shutdown, nil
}
