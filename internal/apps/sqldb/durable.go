package sqldb

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"faultstudy/internal/durable"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/taxonomy"
)

// storeDir roots the engine's durable store; the write-ahead log and
// checkpoint live beside the table datafiles on the same partition, so the
// same disk faults hit both.
const storeDir = "/var/db"

// Durable-store key layout. Schemas live under "s/<table>" (column
// definitions plus the sorted index list); rows live under
// "r/<table>/<%08d row id>" so a sorted key walk yields rows in id order.
// A deleted row keeps its key with the JSON value "null" — the tombstone
// preserves the id holes the ISAM-style format leaves until OPTIMIZE.
func schemaKey(table string) string { return "s/" + table }

func rowKey(table string, id int) string { return fmt.Sprintf("r/%s/%08d", table, id) }

// schemaRec is the stored form of a table definition.
type schemaRec struct {
	// Cols holds the column definitions in declaration order.
	Cols []ColDef `json:"cols"`
	// Indexes lists the indexed columns, sorted.
	Indexes []string `json:"indexes"`
}

// schemaOp encodes the put recording t's definition with the given index
// list.
func schemaOp(t *table, indexes []string) durable.Op {
	sorted := append([]string(nil), indexes...)
	sort.Strings(sorted)
	raw, err := json.Marshal(schemaRec{Cols: t.cols, Indexes: sorted})
	if err != nil {
		// ColDef and string marshal unconditionally; reaching this is a bug.
		panic("sqldb: schema encode: " + err.Error())
	}
	return durable.Op{Kind: durable.OpPut, Key: schemaKey(t.name), Value: raw}
}

// indexList returns t's indexed columns, sorted.
func indexList(t *table) []string {
	cols := make([]string, 0, len(t.indexes))
	for col := range t.indexes {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	return cols
}

// rowOp encodes the put recording one row (nil row = tombstone).
func rowOp(table string, id int, row Row) durable.Op {
	raw, err := json.Marshal(row)
	if err != nil {
		panic("sqldb: row encode: " + err.Error())
	}
	return durable.Op{Kind: durable.OpPut, Key: rowKey(table, id), Value: raw}
}

// logDurable appends one atomic batch to the engine's write-ahead log,
// synced before acknowledgement. Environment failures map to the same
// mechanisms as datafile writes: the log lives on the same partition, so a
// full file system or the file-size limit hits it the same way.
func (s *Server) logDurable(what string, ops []durable.Op) error {
	if s.store == nil {
		return nil
	}
	err := s.store.Apply(ops)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, simenv.ErrFileTooLarge) && s.faults.Enabled(MechDBFileLimit):
		return faultinject.FailCause(MechDBFileLimit, taxonomy.SymptomError,
			"write-ahead log exceeds the maximum allowed file size", err)
	case errors.Is(err, simenv.ErrDiskFull) && s.faults.Enabled(MechFSFull):
		return faultinject.FailCause(MechFSFull, taxonomy.SymptomError,
			"full file system prevents all operations", err)
	default:
		return fmt.Errorf("sqldb: %s: %w", what, err)
	}
}

// stateOps flattens the server's in-memory tables into one batch that,
// applied after a Clear, makes the durable store agree with memory — the
// resync run when a restore could not be served by log replay.
func (s *Server) stateOps() []durable.Op {
	ops := []durable.Op{{Kind: durable.OpClear}}
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.tables[name]
		ops = append(ops, schemaOp(t, indexList(t)))
		for id, row := range t.rows {
			ops = append(ops, rowOp(name, id, row))
		}
	}
	return ops
}

// tablesFromStore rebuilds the full table map from the durable store's
// key-value state — the restore path that replays recovered bytes instead of
// trusting an in-memory copy.
func tablesFromStore(st *durable.Store) (map[string]*table, error) {
	keys := st.Keys()
	sort.Strings(keys)
	tables := make(map[string]*table)
	schemas := make(map[string]schemaRec)
	// Schemas first: row keys sort before schema keys ("r/" < "s/"), but a
	// row can only be decoded into a table that already exists.
	for _, key := range keys {
		if !strings.HasPrefix(key, "s/") {
			continue
		}
		name := key[len("s/"):]
		raw, _ := st.Get(key)
		var rec schemaRec
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("sqldb: stored schema %q: %w", name, err)
		}
		schemas[name] = rec
		tables[name] = &table{
			name:    name,
			cols:    append([]ColDef(nil), rec.Cols...),
			indexes: make(map[string]*btree),
		}
	}
	for _, key := range keys {
		switch {
		case strings.HasPrefix(key, "s/"):
			// Handled in the first pass.
		case strings.HasPrefix(key, "r/"):
			rest := key[len("r/"):]
			slash := strings.LastIndexByte(rest, '/')
			if slash < 0 {
				return nil, fmt.Errorf("sqldb: malformed row key %q", key)
			}
			name := rest[:slash]
			t, ok := tables[name]
			if !ok {
				return nil, fmt.Errorf("sqldb: row key %q has no schema", key)
			}
			var id int
			if _, err := fmt.Sscanf(rest[slash+1:], "%d", &id); err != nil {
				return nil, fmt.Errorf("sqldb: malformed row key %q: %w", key, err)
			}
			if id != len(t.rows) {
				return nil, fmt.Errorf("sqldb: row ids for %q not contiguous at %d", name, id)
			}
			raw, _ := st.Get(key)
			var row Row
			if err := json.Unmarshal(raw, &row); err != nil {
				return nil, fmt.Errorf("sqldb: stored row %q: %w", key, err)
			}
			if row != nil {
				t.live++
			}
			t.rows = append(t.rows, row)
		default:
			return nil, fmt.Errorf("sqldb: unexpected stored key %q", key)
		}
	}
	for name, rec := range schemas {
		t := tables[name]
		for _, col := range rec.Indexes {
			ci, err := t.colIndex(col)
			if err != nil {
				return nil, err
			}
			idx := newBTree()
			for id, row := range t.rows {
				if row != nil {
					idx.Insert(row[ci], id)
				}
			}
			t.indexes[col] = idx
		}
	}
	return tables, nil
}
