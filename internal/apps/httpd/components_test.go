package httpd

import (
	"errors"
	"testing"

	"faultstudy/internal/component"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
)

func newComponentized(t *testing.T, mechs ...string) *Componentized {
	t.Helper()
	env := simenv.New(1, simenv.WithFDLimit(64), simenv.WithProcLimit(192))
	c := Componentize(New(env, faultinject.NewSet(mechs...), Config{}), component.NewStore())
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return c
}

// TestSessionsSurviveComponentReboot is the externalization regression test:
// a session's counter must survive a core microreboot, a subtree reboot, and
// a full process restart, because it lives outside every component.
func TestSessionsSurviveComponentReboot(t *testing.T) {
	c := newComponentized(t)
	req := Request{Method: "GET", Path: "/", Session: "alice"}
	for i := 0; i < 2; i++ {
		if _, err := c.Serve(req); err != nil {
			t.Fatalf("serve %d: %v", i, err)
		}
	}
	if got := c.SessionDepth("alice"); got != 2 {
		t.Fatalf("session depth = %d, want 2", got)
	}

	if err := c.Tree().Reboot(CompCore); err != nil {
		t.Fatalf("reboot core: %v", err)
	}
	if got := c.SessionDepth("alice"); got != 2 {
		t.Fatalf("session lost in core reboot: depth = %d", got)
	}
	if _, err := c.Serve(req); err != nil {
		t.Fatalf("serve after reboot: %v", err)
	}
	if got := c.SessionDepth("alice"); got != 3 {
		t.Fatalf("session did not resume: depth = %d", got)
	}

	if err := c.Tree().RebootSubtree(CompCore); err != nil {
		t.Fatalf("reboot subtree: %v", err)
	}
	if got := c.SessionDepth("alice"); got != 3 {
		t.Fatalf("session lost in subtree reboot: depth = %d", got)
	}

	snap, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	c.Stop()
	if err := c.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if _, err := c.Serve(req); err != nil {
		t.Fatalf("serve after restart: %v", err)
	}
	if got := c.SessionDepth("alice"); got != 4 {
		t.Fatalf("session lost across process restart: depth = %d", got)
	}
}

// TestRoutingFailsFastThroughDownComponents verifies the DownError routing:
// requests through a dead component fail fast, siblings keep serving, and a
// down logger degrades to unlogged serving instead of failing.
func TestRoutingFailsFastThroughDownComponents(t *testing.T) {
	c := newComponentized(t)
	if err := c.Tree().Kill(CompCache); err != nil {
		t.Fatalf("kill cache: %v", err)
	}
	_, err := c.Serve(Request{Method: "GET", Path: "/proxy/x"})
	var de *component.DownError
	if !errors.As(err, &de) || de.Component != CompCache {
		t.Fatalf("proxy request with cache down: %v", err)
	}
	if resp, err := c.Serve(Request{Method: "GET", Path: "/"}); err != nil || resp.Status != 200 {
		t.Fatalf("sibling request failed during cache outage: %v (%+v)", err, resp)
	}
	if err := c.Tree().Restart(CompCache); err != nil {
		t.Fatalf("restart cache: %v", err)
	}
	if _, err := c.Serve(Request{Method: "GET", Path: "/proxy/x"}); err != nil {
		t.Fatalf("proxy request after cache restart: %v", err)
	}

	// Logger down: requests still serve, just unlogged.
	if err := c.Tree().Kill(CompLogger); err != nil {
		t.Fatalf("kill logger: %v", err)
	}
	if resp, err := c.Serve(Request{Method: "GET", Path: "/"}); err != nil || resp.Status != 200 {
		t.Fatalf("request with logger down: %v (%+v)", err, resp)
	}
	if err := c.Tree().Restart(CompLogger); err != nil {
		t.Fatalf("restart logger: %v", err)
	}
}

// TestCoreRebootDiscardsLeakedDescriptors verifies the crash-only payoff for
// the leak mechanisms: rebooting the core closes every leaked descriptor and
// zeroes the leak accounting, where a generic restore would faithfully
// re-leak them.
func TestCoreRebootDiscardsLeakedDescriptors(t *testing.T) {
	c := newComponentized(t, MechFDExhaustion)
	for i := 0; i < 10; i++ {
		if _, err := c.Serve(Request{Method: "GET", Path: "/"}); err != nil {
			t.Fatalf("serve %d: %v", i, err)
		}
	}
	c.srv.mu.Lock()
	leaked := len(c.srv.leakFDs)
	c.srv.mu.Unlock()
	if leaked != 10 {
		t.Fatalf("leaked fds = %d, want 10", leaked)
	}
	if err := c.Tree().Reboot(CompCore); err != nil {
		t.Fatalf("reboot core: %v", err)
	}
	c.srv.mu.Lock()
	leaked, want := len(c.srv.leakFDs), c.srv.leakFDWant
	c.srv.mu.Unlock()
	if leaked != 0 || want != 0 {
		t.Fatalf("core reboot kept leaks: fds=%d want=%d", leaked, want)
	}
}

// TestContainCrashRevivesProcess verifies crash containment: a seeded crash
// marks the process dead, containment brings the process flag back, and a
// reboot of the attributed component restores service.
func TestContainCrashRevivesProcess(t *testing.T) {
	c := newComponentized(t, MechNullDeref)
	_, err := c.Serve(Request{Method: "GET", Path: "/bug/null-deref"})
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechNullDeref {
		t.Fatalf("bug path error = %v", err)
	}
	if c.Running() {
		t.Fatal("process alive after seeded crash")
	}
	comp, ok := c.ComponentFor(MechNullDeref)
	if !ok || comp != CompCore {
		t.Fatalf("ComponentFor = %q/%v", comp, ok)
	}
	c.ContainCrash()
	if !c.Running() {
		t.Fatal("process dead after containment")
	}
	if err := c.Tree().Reboot(comp); err != nil {
		t.Fatalf("reboot: %v", err)
	}
	if resp, err := c.Serve(Request{Method: "GET", Path: "/"}); err != nil || resp.Status != 200 {
		t.Fatalf("serve after contained reboot: %v (%+v)", err, resp)
	}
}

// TestCGIRebootReapsHungChildren verifies that crash-stopping the CGI part
// frees the process table the hung children exhausted.
func TestCGIRebootReapsHungChildren(t *testing.T) {
	c := newComponentized(t, MechProcTableFull)
	for i := 0; i < 5; i++ {
		if _, err := c.Serve(Request{Method: "GET", Path: "/cgi-bin/env"}); err != nil {
			t.Fatalf("cgi %d: %v", i, err)
		}
	}
	c.srv.mu.Lock()
	kids := len(c.srv.children)
	c.srv.mu.Unlock()
	if kids != 5 {
		t.Fatalf("hung children = %d, want 5", kids)
	}
	if err := c.Tree().Reboot(CompCGI); err != nil {
		t.Fatalf("reboot cgi: %v", err)
	}
	c.srv.mu.Lock()
	kids = len(c.srv.children)
	c.srv.mu.Unlock()
	if kids != 0 {
		t.Fatalf("children after cgi reboot = %d", kids)
	}
}
