// Package taxonomy defines the fault-classification vocabulary of Chandra &
// Chen (DSN 2000): the three fault classes ordered by their dependence on the
// operating environment, the environmental trigger kinds observed in the
// study, failure symptoms, and report severities.
//
// The taxonomy is deliberately small and closed: the study's entire argument
// rests on partitioning faults into environment-independent,
// environment-dependent-nontransient, and environment-dependent-transient
// classes, so the types here are enums with explicit parsing and validation
// rather than free-form strings.
package taxonomy

import (
	"fmt"
	"strings"
)

// FaultClass partitions faults by how they depend on the operating
// environment (paper §3).
type FaultClass int

const (
	// ClassUnknown marks a fault that has not been classified yet.
	ClassUnknown FaultClass = iota
	// ClassEnvIndependent faults occur independent of the operating
	// environment: given a specific workload the fault always occurs. They
	// are completely deterministic (Bohrbugs); application-generic recovery
	// cannot survive them.
	ClassEnvIndependent
	// ClassEnvDependentNonTransient faults depend on an environmental
	// condition that is unlikely to be fixed during retry (full disk,
	// exhausted file descriptors, oversized log file, ...).
	ClassEnvDependentNonTransient
	// ClassEnvDependentTransient faults depend on an environmental condition
	// that is likely to change on retry (thread interleavings, DNS blips,
	// request timing, ...). These are the classic Heisenbugs that process
	// pairs and rollback-retry survive.
	ClassEnvDependentTransient
)

// classNames maps FaultClass values to their canonical names. The names match
// the paper's terminology.
var classNames = map[FaultClass]string{
	ClassUnknown:                  "unknown",
	ClassEnvIndependent:           "environment-independent",
	ClassEnvDependentNonTransient: "environment-dependent-nontransient",
	ClassEnvDependentTransient:    "environment-dependent-transient",
}

// String returns the paper's name for the class.
func (c FaultClass) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("FaultClass(%d)", int(c))
}

// Short returns the compact abbreviation used in tables: EI, EDN, EDT.
func (c FaultClass) Short() string {
	switch c {
	case ClassEnvIndependent:
		return "EI"
	case ClassEnvDependentNonTransient:
		return "EDN"
	case ClassEnvDependentTransient:
		return "EDT"
	default:
		return "?"
	}
}

// Valid reports whether c is one of the three study classes.
func (c FaultClass) Valid() bool {
	return c == ClassEnvIndependent || c == ClassEnvDependentNonTransient || c == ClassEnvDependentTransient
}

// Deterministic reports whether a fault of this class recurs deterministically
// under a truly generic recovery system that preserves all application state
// and replays the same workload. Environment-independent faults are
// deterministic by definition; the other classes depend on the environment.
func (c FaultClass) Deterministic() bool {
	return c == ClassEnvIndependent
}

// ParseClass parses a class name in any of the accepted spellings
// (full paper name, short form, or common aliases). Matching is
// case-insensitive.
func ParseClass(s string) (FaultClass, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "environment-independent", "env-independent", "ei", "bohrbug", "deterministic":
		return ClassEnvIndependent, nil
	case "environment-dependent-nontransient", "env-dependent-nontransient", "edn", "nontransient":
		return ClassEnvDependentNonTransient, nil
	case "environment-dependent-transient", "env-dependent-transient", "edt", "transient", "heisenbug":
		return ClassEnvDependentTransient, nil
	case "unknown", "":
		return ClassUnknown, nil
	}
	return ClassUnknown, fmt.Errorf("taxonomy: unrecognized fault class %q", s)
}

// Classes returns the three study classes in table order.
func Classes() []FaultClass {
	return []FaultClass{ClassEnvIndependent, ClassEnvDependentNonTransient, ClassEnvDependentTransient}
}

// TriggerKind names the environmental condition (or lack of one) that
// triggers a fault. The kinds enumerate the concrete triggers the paper
// describes in §5.1–5.3 for the environment-dependent faults, plus
// TriggerWorkloadOnly for environment-independent faults.
type TriggerKind int

const (
	// TriggerUnknownKind is the zero value; reports that do not identify a
	// trigger carry it.
	TriggerUnknownKind TriggerKind = iota
	// TriggerWorkloadOnly marks environment-independent faults: the workload
	// alone triggers the bug.
	TriggerWorkloadOnly
	// TriggerResourceLeak is an application-held resource leak (memory,
	// process slots) that accumulates under load and persists across a
	// state-preserving recovery.
	TriggerResourceLeak
	// TriggerFDExhaustion is exhaustion of file descriptors.
	TriggerFDExhaustion
	// TriggerDiskFull is a full file system or full application disk cache.
	TriggerDiskFull
	// TriggerFileSizeLimit is a file (log or database) exceeding the maximum
	// allowed file size.
	TriggerFileSizeLimit
	// TriggerNetworkResource is exhaustion or removal of a network resource
	// (unknown network resource, PCMCIA card removal).
	TriggerNetworkResource
	// TriggerHostConfig is a persistent host-configuration condition
	// (changed hostname, missing reverse DNS, illegal file owner field).
	TriggerHostConfig
	// TriggerDNSFailure is a DNS error or slow DNS response that is likely to
	// be fixed on retry.
	TriggerDNSFailure
	// TriggerProcessTable is exhaustion of process-table slots or ports by
	// hung children that a recovery system would kill.
	TriggerProcessTable
	// TriggerRequestTiming is dependence on the exact timing of workload
	// requests (user presses stop mid-download).
	TriggerRequestTiming
	// TriggerRace is a race condition: dependence on thread-scheduling or
	// signal-delivery interleavings.
	TriggerRace
	// TriggerSlowNetwork is a transiently slow network connection.
	TriggerSlowNetwork
	// TriggerEntropy is starvation of the kernel entropy pool
	// (/dev/random).
	TriggerEntropy
)

var triggerNames = map[TriggerKind]string{
	TriggerUnknownKind:     "unknown",
	TriggerWorkloadOnly:    "workload-only",
	TriggerResourceLeak:    "resource-leak",
	TriggerFDExhaustion:    "fd-exhaustion",
	TriggerDiskFull:        "disk-full",
	TriggerFileSizeLimit:   "file-size-limit",
	TriggerNetworkResource: "network-resource",
	TriggerHostConfig:      "host-config",
	TriggerDNSFailure:      "dns-failure",
	TriggerProcessTable:    "process-table",
	TriggerRequestTiming:   "request-timing",
	TriggerRace:            "race",
	TriggerSlowNetwork:     "slow-network",
	TriggerEntropy:         "entropy",
}

// String returns the canonical trigger name.
func (k TriggerKind) String() string {
	if s, ok := triggerNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TriggerKind(%d)", int(k))
}

// ParseTrigger parses a canonical trigger name (as produced by String).
func ParseTrigger(s string) (TriggerKind, error) {
	want := strings.ToLower(strings.TrimSpace(s))
	for k, name := range triggerNames {
		if name == want {
			return k, nil
		}
	}
	return TriggerUnknownKind, fmt.Errorf("taxonomy: unrecognized trigger kind %q", s)
}

// DefaultClass returns the fault class a trigger kind implies under the
// paper's classification rules (§5): workload-only triggers are
// environment-independent; persistent conditions are nontransient; timing and
// self-healing conditions are transient. TriggerUnknownKind maps to
// ClassUnknown.
func (k TriggerKind) DefaultClass() FaultClass {
	switch k {
	case TriggerWorkloadOnly:
		return ClassEnvIndependent
	case TriggerResourceLeak, TriggerFDExhaustion, TriggerDiskFull,
		TriggerFileSizeLimit, TriggerNetworkResource, TriggerHostConfig:
		return ClassEnvDependentNonTransient
	case TriggerDNSFailure, TriggerProcessTable, TriggerRequestTiming,
		TriggerRace, TriggerSlowNetwork, TriggerEntropy:
		return ClassEnvDependentTransient
	default:
		return ClassUnknown
	}
}

// Symptom is the observable failure mode of a fault. The study restricts
// itself to high-impact faults (paper §4): crashes, error returns, security
// problems, and hangs.
type Symptom int

const (
	// SymptomUnknown is the zero value.
	SymptomUnknown Symptom = iota
	// SymptomCrash covers segfaults, core dumps, and aborts.
	SymptomCrash
	// SymptomError covers wrong or error results returned to the client.
	SymptomError
	// SymptomHang covers freezes and stopped responses.
	SymptomHang
	// SymptomSecurity covers security problems.
	SymptomSecurity
)

var symptomNames = map[Symptom]string{
	SymptomUnknown:  "unknown",
	SymptomCrash:    "crash",
	SymptomError:    "error",
	SymptomHang:     "hang",
	SymptomSecurity: "security",
}

// String returns the canonical symptom name.
func (s Symptom) String() string {
	if n, ok := symptomNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Symptom(%d)", int(s))
}

// ParseSymptom parses a canonical symptom name.
func ParseSymptom(v string) (Symptom, error) {
	want := strings.ToLower(strings.TrimSpace(v))
	for s, name := range symptomNames {
		if name == want {
			return s, nil
		}
	}
	return SymptomUnknown, fmt.Errorf("taxonomy: unrecognized symptom %q", v)
}

// HighImpact reports whether the symptom meets the study's inclusion bar
// (crash, error, hang, or security problem).
func (s Symptom) HighImpact() bool {
	switch s {
	case SymptomCrash, SymptomError, SymptomHang, SymptomSecurity:
		return true
	default:
		return false
	}
}

// Severity is the tracker-assigned severity of a bug report. The study keeps
// only reports categorized as severe or critical (paper §4).
type Severity int

const (
	// SeverityUnknown is the zero value for reports without a severity field.
	SeverityUnknown Severity = iota
	// SeverityWishlist is a feature request.
	SeverityWishlist
	// SeverityMinor is a cosmetic or low-impact bug.
	SeverityMinor
	// SeverityNormal is a routine bug.
	SeverityNormal
	// SeveritySerious is a severe bug (GNATS "serious").
	SeveritySerious
	// SeverityCritical is a critical bug.
	SeverityCritical
)

var severityNames = map[Severity]string{
	SeverityUnknown:  "unknown",
	SeverityWishlist: "wishlist",
	SeverityMinor:    "minor",
	SeverityNormal:   "normal",
	SeveritySerious:  "serious",
	SeverityCritical: "critical",
}

// String returns the canonical severity name.
func (s Severity) String() string {
	if n, ok := severityNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// ParseSeverity parses a severity name. GNATS spellings ("serious",
// "critical", "non-critical") and debbugs spellings ("grave", "important")
// are accepted.
func ParseSeverity(v string) (Severity, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "wishlist", "enhancement":
		return SeverityWishlist, nil
	case "minor", "trivial", "cosmetic":
		return SeverityMinor, nil
	case "normal", "non-critical":
		return SeverityNormal, nil
	case "serious", "severe", "important", "major":
		return SeveritySerious, nil
	case "critical", "grave", "showstopper":
		return SeverityCritical, nil
	case "unknown", "":
		return SeverityUnknown, nil
	}
	return SeverityUnknown, fmt.Errorf("taxonomy: unrecognized severity %q", v)
}

// Qualifies reports whether the severity meets the study's inclusion bar
// (serious or critical).
func (s Severity) Qualifies() bool {
	return s == SeveritySerious || s == SeverityCritical
}

// Application identifies one of the three studied applications, or an
// extension archetype added after the paper's study.
type Application int

const (
	// AppUnknown is the zero value.
	AppUnknown Application = iota
	// AppApache is the Apache web server.
	AppApache
	// AppGnome is the GNOME desktop environment.
	AppGnome
	// AppMySQL is the MySQL database server.
	AppMySQL
	// AppCache is the LRU cache daemon — an extension archetype outside the
	// paper's three studied applications (it is absent from Applications()
	// and from every paper-table path; the generated-corpus experiments use
	// it to test whether the taxonomy holds beyond the studied set).
	AppCache
)

var appNames = map[Application]string{
	AppUnknown: "unknown",
	AppApache:  "apache",
	AppGnome:   "gnome",
	AppMySQL:   "mysql",
	AppCache:   "cached",
}

// String returns the lowercase application name.
func (a Application) String() string {
	if n, ok := appNames[a]; ok {
		return n
	}
	return fmt.Sprintf("Application(%d)", int(a))
}

// ParseApplication parses an application name.
func ParseApplication(v string) (Application, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "apache", "httpd":
		return AppApache, nil
	case "gnome":
		return AppGnome, nil
	case "mysql", "mysqld":
		return AppMySQL, nil
	case "cached", "cache":
		return AppCache, nil
	}
	return AppUnknown, fmt.Errorf("taxonomy: unrecognized application %q", v)
}

// Applications returns the three studied applications in paper order.
func Applications() []Application {
	return []Application{AppApache, AppGnome, AppMySQL}
}
