package scrape

import (
	"strings"
	"testing"
)

func benchDoc() string {
	var b strings.Builder
	b.WriteString("<html><head><title>index</title></head><body>")
	for i := 0; i < 500; i++ {
		b.WriteString(`<li><a href="/bugdb/pr/`)
		b.WriteString(strings.Repeat("1", 1+i%4))
		b.WriteString(`">PR</a> some descriptive text with &amp; entities</li>`)
	}
	b.WriteString("</body></html>")
	return b.String()
}

func BenchmarkTokenize(b *testing.B) {
	doc := benchDoc()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Tokenize(doc)
	}
}

func BenchmarkLinks(b *testing.B) {
	doc := benchDoc()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Links(doc)
	}
}

func BenchmarkText(b *testing.B) {
	doc := benchDoc()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Text(doc)
	}
}
