package obsv

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// -update regenerates the golden files from current output.
var update = flag.Bool("update", false, "rewrite golden files")

// fixtureRegistry builds the registry every exporter golden test renders.
func fixtureRegistry() *Registry {
	r := NewRegistry()
	r.Help(MetricFailures, "Observed operation failures, initial and retried.")
	r.Help(MetricEpisodeSeconds, "Episode duration from dispatch to verdict, virtual seconds.")
	r.Counter(MetricFailures, L("app", "apache", "class", "EI", "mechanism", "httpd/null-deref")...).Add(4)
	r.Counter(MetricFailures, L("app", "mysql", "class", "EDT", "mechanism", "sqldb/signal-mask-race")...).Inc()
	r.Gauge(MetricDegraded, L("app", "apache")...).Set(1)
	h := r.Histogram(MetricEpisodeSeconds, LatencyBuckets, L("app", "apache", "class", "EI")...)
	for _, d := range []time.Duration{800 * time.Millisecond, 31 * time.Second, 4 * time.Minute} {
		h.ObserveDuration(d)
	}
	r.Counter(MetricWorkloadOps, L("stream", "http", "category", "static")...).Add(70)
	return r
}

// checkGolden compares got against the named golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry.prom", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry.json", buf.Bytes())
}

func TestExportersDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := fixtureRegistry().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := fixtureRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical registries rendered differently")
	}
}
