package recoveryscope

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"faultstudy/internal/faultlint"
)

// WriteSet is the state a region of code can mutate, in the three state
// domains the component runtime distinguishes: receiver/struct fields
// (volatile per-process state a crash-stop discards), package-level
// variables (process-global state), and externalized-store buckets (state
// outside every component's failure domain).
type WriteSet struct {
	// Fields holds struct field names written through a selector
	// (s.leakFDs = ..., s.memBytes += ...).
	Fields map[string]bool
	// Globals holds package-level variable names written.
	Globals map[string]bool
	// Buckets holds externalized-store bucket names written via
	// Put/Incr/Delete calls with a constant bucket argument.
	Buckets map[string]bool
}

// NewWriteSet returns an empty write set.
func NewWriteSet() *WriteSet {
	return &WriteSet{
		Fields:  make(map[string]bool),
		Globals: make(map[string]bool),
		Buckets: make(map[string]bool),
	}
}

// Empty reports whether nothing is written.
func (w *WriteSet) Empty() bool {
	return len(w.Fields) == 0 && len(w.Globals) == 0 && len(w.Buckets) == 0
}

// Clone returns an independent copy.
func (w *WriteSet) Clone() *WriteSet {
	out := NewWriteSet()
	out.Merge(w)
	return out
}

// Merge folds other into w and reports whether anything changed.
func (w *WriteSet) Merge(other *WriteSet) bool {
	if other == nil {
		return false
	}
	changed := false
	for f := range other.Fields {
		if !w.Fields[f] {
			w.Fields[f] = true
			changed = true
		}
	}
	for g := range other.Globals {
		if !w.Globals[g] {
			w.Globals[g] = true
			changed = true
		}
	}
	for b := range other.Buckets {
		if !w.Buckets[b] {
			w.Buckets[b] = true
			changed = true
		}
	}
	return changed
}

// SortedFields returns the written field names in sorted order.
func (w *WriteSet) SortedFields() []string { return sortedKeys(w.Fields) }

// SortedGlobals returns the written package-level variable names sorted.
func (w *WriteSet) SortedGlobals() []string { return sortedKeys(w.Globals) }

// SortedBuckets returns the written store bucket names sorted.
func (w *WriteSet) SortedBuckets() []string { return sortedKeys(w.Buckets) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// storeWriteMethods are the externalized-store mutators; a call to one with
// a constant first argument taints that bucket.
var storeWriteMethods = map[string]bool{
	"Put":    true,
	"Incr":   true,
	"Delete": true,
}

// collectWrites gathers the direct write set of a subtree: assignment and
// inc/dec targets, plus store-mutator calls. globals is the package's
// syntactic set of package-level variable names, the fallback when type
// information cannot settle whether an identifier is package-scoped.
func collectWrites(p *faultlint.Package, n ast.Node, globals map[string]bool, out *WriteSet) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch stmt := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				recordWrite(p, lhs, globals, out)
			}
		case *ast.IncDecStmt:
			recordWrite(p, stmt.X, globals, out)
		case *ast.CallExpr:
			recordStoreWrite(p, stmt, out)
		}
		return true
	})
}

// Field keys are qualified by the written struct's type ("Server.leakFDs")
// when type information pins it down, bare otherwise. The qualifier is what
// lets the analysis tell app-struct state from auxiliary structs (a parsed
// statement, a scratch buffer) that share field names with nothing.

// fieldType returns the type qualifier of a field key ("" when bare).
func fieldType(key string) string {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		return key[:i]
	}
	return ""
}

// fieldBase returns the field name of a (possibly qualified) field key.
func fieldBase(key string) string {
	return key[strings.LastIndexByte(key, '.')+1:]
}

// baseNames collapses qualified field keys to their sorted, deduplicated
// field names — the report form, where the type qualifier is noise.
func baseNames(keys []string) []string {
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		seen[fieldBase(k)] = true
	}
	if len(seen) == 0 {
		return nil
	}
	return sortedKeys(seen)
}

// recordWrite classifies one assignment target into the write set.
func recordWrite(p *faultlint.Package, lhs ast.Expr, globals map[string]bool, out *WriteSet) {
	// Unwrap indexing and dereference down to the written base.
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.StarExpr:
			lhs = e.X
			continue
		case *ast.ParenExpr:
			lhs = e.X
			continue
		}
		break
	}
	switch e := lhs.(type) {
	case *ast.SelectorExpr:
		// x.field = ...; a package-qualified selector is a cross-package
		// global write instead.
		if id, ok := e.X.(*ast.Ident); ok {
			if obj, found := p.Info.Uses[id]; found {
				if _, isPkg := obj.(*types.PkgName); isPkg {
					out.Globals[e.Sel.Name] = true
					return
				}
			}
		}
		key := e.Sel.Name
		if t := receiverTypeName(p, e.X); t != "" {
			key = t + "." + key
		}
		out.Fields[key] = true
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		if isPackageLevelVar(p, e, globals) {
			out.Globals[e.Name] = true
		}
	}
}

// isPackageLevelVar reports whether an identifier resolves to (or, without
// type information, syntactically matches) a package-level variable.
func isPackageLevelVar(p *faultlint.Package, id *ast.Ident, globals map[string]bool) bool {
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok {
		// The package scope's parent is the universe scope; any local's
		// scope chain passes through a function scope first.
		if scope := v.Parent(); scope != nil {
			return scope.Parent() == types.Universe
		}
		return false
	}
	return globals[id.Name]
}

// recordStoreWrite recognizes externalized-store mutations with a constant
// bucket argument (store.Incr(SessionBucket, key)).
func recordStoreWrite(p *faultlint.Package, call *ast.CallExpr, out *WriteSet) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !storeWriteMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	if bucket, ok := p.ConstString(call.Args[0]); ok && strings.Contains(bucket, "/") {
		out.Buckets[bucket] = true
	}
}

// packageGlobals collects the package-level variable names of a package
// syntactically, as the no-type-info fallback for global-write detection.
func packageGlobals(p *faultlint.Package) map[string]bool {
	out := make(map[string]bool)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						out[name.Name] = true
					}
				}
			}
		}
	}
	return out
}
