package mbox

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func benchArchive(n int) string {
	var b strings.Builder
	base := time.Date(1999, 3, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		date := base.Add(time.Duration(i) * time.Hour)
		fmt.Fprintf(&b, "From u%d@example.com %s\n", i, date.Format("Mon Jan 2 15:04:05 2006"))
		fmt.Fprintf(&b, "Message-Id: <m%d@list>\n", i)
		if i%3 != 0 {
			fmt.Fprintf(&b, "In-Reply-To: <m%d@list>\n", i-i%3)
		}
		fmt.Fprintf(&b, "From: u%d@example.com\nSubject: thread %d about the server\n", i, i/3)
		fmt.Fprintf(&b, "Date: %s\n\n", date.Format(time.RFC1123Z))
		fmt.Fprintf(&b, "Body of message %d; the server crashed during operation %d.\n\n", i, i)
	}
	return b.String()
}

func BenchmarkParse(b *testing.B) {
	archive := benchArchive(300)
	b.SetBytes(int64(len(archive)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(strings.NewReader(archive)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThreadMessages(b *testing.B) {
	msgs, err := Parse(strings.NewReader(benchArchive(300)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		threads := ThreadMessages(msgs)
		if len(threads) != 100 {
			b.Fatalf("threads = %d", len(threads))
		}
	}
}

func BenchmarkFilterThreads(b *testing.B) {
	msgs, err := Parse(strings.NewReader(benchArchive(300)))
	if err != nil {
		b.Fatal(err)
	}
	threads := ThreadMessages(msgs)
	keywords := DefaultKeywords()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FilterThreads(threads, keywords)
	}
}
