package faultlint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// fileImports maps the local name of each import in a file to its path.
// Dot and blank imports are skipped.
func fileImports(f *ast.File) map[string]string {
	out := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		} else {
			name = path
			if i := strings.LastIndexByte(name, '/'); i >= 0 {
				name = name[i+1:]
			}
		}
		out[name] = path
	}
	return out
}

// pkgQualified reports the import path and selector name of a qualified call
// or selector expression pkg.Name, resolving pkg first through type info
// (shadow-proof) and then through the file's import table.
func (p *Package) pkgQualified(f *ast.File, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if obj, found := p.Info.Uses[id]; found {
		if pn, isPkg := obj.(*types.PkgName); isPkg {
			return pn.Imported().Path(), sel.Sel.Name, true
		}
		// Resolved to a non-package object: a local variable shadows the
		// import (or it never was one).
		return "", "", false
	}
	imports := fileImports(f)
	if path, found := imports[id.Name]; found {
		return path, sel.Sel.Name, true
	}
	return "", "", false
}

// constString resolves the string value of an expression: a string literal,
// a constant identifier (via type info, falling back to the syntactic
// package-level constant table), or a qualified constant reference.
func (p *Package) constString(expr ast.Expr) (string, bool) {
	if tv, ok := p.Info.Types[expr]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	switch e := expr.(type) {
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			if v, err := strconv.Unquote(e.Value); err == nil {
				return v, true
			}
		}
	case *ast.Ident:
		if obj, ok := p.Info.Uses[e]; ok {
			if c, isConst := obj.(*types.Const); isConst && c.Val().Kind() == constant.String {
				return constant.StringVal(c.Val()), true
			}
		}
		if v, ok := p.consts[e.Name]; ok {
			return v, true
		}
	case *ast.SelectorExpr:
		// Qualified constant (httpd.MechFDExhaustion): unresolvable through
		// stub imports; give up.
	}
	return "", false
}

// envGetters names the simenv.Env facility accessors. A call chain of the
// shape <recv>.<getter>().<method>(...) marks <method> as an operation
// against the simulated operating environment.
var envGetters = map[string]bool{
	"FDs":     true,
	"Procs":   true,
	"Disk":    true,
	"DNS":     true,
	"Net":     true,
	"Sched":   true,
	"Entropy": true,
}

// envDirectMethods are environment operations invoked directly on an Env
// value (or on a struct field named env) without a facility getter.
var envDirectMethods = map[string]bool{
	"Hostname": true,
	"Advance":  true,
	"Reroll":   true,
}

// envCall describes one recognized environment operation.
type envCall struct {
	// Facility is the env getter ("FDs", "Disk", ... or "Env" for direct
	// methods).
	Facility string
	// Method is the operation name.
	Method string
	// Pos is the call position.
	Pos token.Pos
}

// asEnvCall recognizes calls against the simulated environment:
//
//	x.FDs().Open(...)    -> {FDs, Open}
//	s.env.Hostname()     -> {Env, Hostname}
func asEnvCall(call *ast.CallExpr) (envCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return envCall{}, false
	}
	// Facility form: receiver is itself a call to an env getter.
	if inner, ok := sel.X.(*ast.CallExpr); ok {
		if innerSel, ok := inner.Fun.(*ast.SelectorExpr); ok && envGetters[innerSel.Sel.Name] && len(inner.Args) == 0 {
			return envCall{Facility: innerSel.Sel.Name, Method: sel.Sel.Name, Pos: call.Pos()}, true
		}
	}
	// Direct form: method on something named env/Env.
	if envDirectMethods[sel.Sel.Name] {
		switch x := sel.X.(type) {
		case *ast.Ident:
			if strings.EqualFold(x.Name, "env") {
				return envCall{Facility: "Env", Method: sel.Sel.Name, Pos: call.Pos()}, true
			}
		case *ast.SelectorExpr:
			if strings.EqualFold(x.Sel.Name, "env") {
				return envCall{Facility: "Env", Method: sel.Sel.Name, Pos: call.Pos()}, true
			}
		}
	}
	return envCall{}, false
}

// enclosure computes, per file, the ancestor path of every node of
// interest. It is a lightweight replacement for ast.Inspect-with-stack
// utilities: analyzers that need context walk with WithStack.
func withStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		stack = append(stack, n)
		if !keep {
			// Still must push/pop symmetrically; Inspect will not descend,
			// and will not call us with nil for this node.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// enclosingFunc returns the innermost function declaration or literal in the
// stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit node.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// identNamed reports whether the expression is (or ends in) an identifier
// with the given name.
func identNamed(expr ast.Expr, name string) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name == name
	case *ast.SelectorExpr:
		return e.Sel.Name == name
	}
	return false
}

// isNilIdent reports whether the expression is the predeclared nil.
func isNilIdent(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "nil"
}

// callName returns the bare name of a called function or method
// ("Sleep" for time.Sleep, x.Sleep, or Sleep).
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
