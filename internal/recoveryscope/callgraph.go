package recoveryscope

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"faultstudy/internal/faultlint"
	"faultstudy/internal/taxonomy"
)

// FuncKey identifies one function declaration across the loaded program.
type FuncKey struct {
	// Pkg is the directory the declaring package was loaded from.
	Pkg string
	// Recv is the receiver type name ("" for package functions).
	Recv string
	// Name is the function name.
	Name string
}

// String renders pkg.(Recv).Name for reports.
func (k FuncKey) String() string {
	base := filepath.Base(k.Pkg)
	if k.Recv != "" {
		return base + ".(" + k.Recv + ")." + k.Name
	}
	return base + "." + k.Name
}

// CallSite is one resolved direct call from a function.
type CallSite struct {
	// Pos is the call position.
	Pos int
	// Callee is the resolved target.
	Callee *FuncNode
}

// FuncNode is one function in the call graph, with its direct facts and the
// transitive summaries the fixpoint fills in.
type FuncNode struct {
	// Key identifies the function.
	Key FuncKey
	// Decl is the declaration.
	Decl *ast.FuncDecl
	// File is the declaring file.
	File *ast.File
	// Pkg is the declaring package.
	Pkg *faultlint.Package

	// EnvOps are the environment operations the body performs directly.
	EnvOps []faultlint.EnvOp
	// Calls are the resolved direct calls the body makes.
	Calls []CallSite

	// Writes is the body's direct write set.
	Writes *WriteSet
	// Triggers is the transitive set of environment trigger kinds the
	// function can reach (its own EnvOps joined with every callee's, to a
	// fixpoint).
	Triggers map[taxonomy.TriggerKind]bool
	// Reach is the transitive write set (Writes joined with every callee's).
	Reach *WriteSet
}

// SortedTriggers returns the reachable trigger kinds in ascending order.
func (n *FuncNode) SortedTriggers() []taxonomy.TriggerKind {
	out := make([]taxonomy.TriggerKind, 0, len(n.Triggers))
	for t := range n.Triggers {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Graph is the whole-program call graph over the loaded packages.
type Graph struct {
	// Pkgs are the packages, in load (directory) order.
	Pkgs []*faultlint.Package
	// Funcs indexes every function declaration.
	Funcs map[FuncKey]*FuncNode

	// methodsByPkg indexes methods by package dir and name, for the
	// best-effort resolution of method calls whose receiver type is unknown.
	methodsByPkg map[string]map[string][]*FuncNode
	// globalsByPkg caches each package's syntactic package-level var names.
	globalsByPkg map[string]map[string]bool
}

// BuildGraph indexes every function of the packages, collects their direct
// environment operations, calls, and writes, and runs the trigger/taint
// fixpoint so Triggers and Reach are transitive.
func BuildGraph(pkgs []*faultlint.Package) *Graph {
	g := &Graph{
		Pkgs:         pkgs,
		Funcs:        make(map[FuncKey]*FuncNode),
		methodsByPkg: make(map[string]map[string][]*FuncNode),
		globalsByPkg: make(map[string]map[string]bool),
	}
	// Pass 1: index declarations, direct env ops and writes.
	for _, p := range pkgs {
		g.globalsByPkg[p.Dir] = packageGlobals(p)
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := FuncKey{Pkg: p.Dir, Recv: recvTypeName(fd), Name: fd.Name.Name}
				node := &FuncNode{
					Key:      key,
					Decl:     fd,
					File:     f,
					Pkg:      p,
					EnvOps:   faultlint.EnvOpsIn(fd.Body),
					Writes:   NewWriteSet(),
					Triggers: make(map[taxonomy.TriggerKind]bool),
				}
				collectWrites(p, fd.Body, g.globalsByPkg[p.Dir], node.Writes)
				node.Reach = node.Writes.Clone()
				for _, op := range node.EnvOps {
					if op.Trigger != taxonomy.TriggerUnknownKind {
						node.Triggers[op.Trigger] = true
					}
				}
				g.Funcs[key] = node
				if key.Recv != "" {
					byName := g.methodsByPkg[p.Dir]
					if byName == nil {
						byName = make(map[string][]*FuncNode)
						g.methodsByPkg[p.Dir] = byName
					}
					byName[key.Name] = append(byName[key.Name], node)
				}
			}
		}
	}
	// Pass 2: resolve direct calls (the index is complete now).
	for _, key := range g.sortedKeys() {
		node := g.Funcs[key]
		ast.Inspect(node.Decl.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range g.ResolveCall(node.Pkg, node.File, call) {
				node.Calls = append(node.Calls, CallSite{Pos: int(call.Pos()), Callee: callee})
			}
			return true
		})
	}
	g.propagate()
	return g
}

// sortedKeys returns the function keys in deterministic order.
func (g *Graph) sortedKeys() []FuncKey {
	keys := make([]FuncKey, 0, len(g.Funcs))
	for k := range g.Funcs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Recv != b.Recv {
			return a.Recv < b.Recv
		}
		return a.Name < b.Name
	})
	return keys
}

// propagate runs the transitive-summary fixpoint: every function's Triggers
// and Reach absorb its callees' until nothing changes. Graphs here are tiny
// (hundreds of functions), so a simple round-robin fixpoint suffices; cycles
// (mutual recursion) converge because the joins are monotone.
func (g *Graph) propagate() {
	keys := g.sortedKeys()
	for changed := true; changed; {
		changed = false
		for _, key := range keys {
			node := g.Funcs[key]
			for _, call := range node.Calls {
				for t := range call.Callee.Triggers {
					if !node.Triggers[t] {
						node.Triggers[t] = true
						changed = true
					}
				}
				if node.Reach.Merge(call.Callee.Reach) {
					changed = true
				}
			}
		}
	}
}

// recvTypeName extracts the receiver type name of a method declaration,
// pointer receivers unwrapped ("" for package functions).
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
			continue
		case *ast.IndexExpr: // generic receiver
			t = e.X
			continue
		}
		break
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// ResolveCall resolves a call expression to the function nodes it may
// target, best effort:
//
//   - f(...)            -> the package function f of the same package
//   - pkg.F(...)        -> F of the loaded package the import path names
//   - x.M(...)          -> methods named M: the receiver type's when type
//     information pins x down, every same-package M otherwise
//
// Unresolvable calls (stdlib, interfaces across packages, function values)
// return nil — the analysis degrades to intraprocedural there.
func (g *Graph) ResolveCall(p *faultlint.Package, f *ast.File, call *ast.CallExpr) []*FuncNode {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if node, ok := g.Funcs[FuncKey{Pkg: p.Dir, Name: fun.Name}]; ok {
			return []*FuncNode{node}
		}
	case *ast.SelectorExpr:
		if path, name, ok := p.PkgQualified(f, fun); ok {
			if target := g.pkgByImport(path); target != nil {
				if node, ok := g.Funcs[FuncKey{Pkg: target.Dir, Name: name}]; ok {
					return []*FuncNode{node}
				}
			}
			return nil
		}
		// Method call: pin the receiver type through type info when possible.
		if recv := receiverTypeName(p, fun.X); recv != "" {
			if node, ok := g.Funcs[FuncKey{Pkg: p.Dir, Recv: recv, Name: fun.Sel.Name}]; ok {
				return []*FuncNode{node}
			}
			return nil
		}
		// Unknown receiver: every same-package method of that name.
		return g.methodsByPkg[p.Dir][fun.Sel.Name]
	}
	return nil
}

// receiverTypeName resolves the named type of a method-call receiver
// expression through type information ("" when undeterminable).
func receiverTypeName(p *faultlint.Package, x ast.Expr) string {
	if tv, ok := p.Info.Types[x]; ok && tv.Type != nil {
		if name := namedTypeName(tv.Type); name != "" {
			return name
		}
	}
	if id, ok := x.(*ast.Ident); ok {
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok {
			return namedTypeName(v.Type())
		}
	}
	return ""
}

// namedTypeName unwraps pointers down to a named type's object name.
func namedTypeName(t types.Type) string {
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// pkgByImport finds the loaded package an import path names: the path's
// module-relative tail must match the loaded directory's tail. Standard
// library paths resolve to nothing (their single segment never matches a
// loaded directory).
func (g *Graph) pkgByImport(path string) *faultlint.Package {
	i := strings.IndexByte(path, '/')
	if i < 0 {
		return nil
	}
	rel := path[i+1:]
	for _, p := range g.Pkgs {
		dir := filepath.ToSlash(p.Dir)
		if dir == path || dir == rel || strings.HasSuffix(dir, "/"+rel) {
			return p
		}
	}
	return nil
}
