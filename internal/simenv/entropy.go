package simenv

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrEntropyStarved is returned when /dev/random has too few bits — the
// study's "lack of events to generate sufficient random numbers in
// /dev/random" transient.
var ErrEntropyStarved = errors.New("simenv: entropy pool starved")

// EntropyPool simulates the kernel /dev/random pool. The pool refills as
// virtual time advances (interrupt events arrive), which is what makes
// entropy starvation a transient condition: recovery that simply waits will
// find the pool replenished.
type EntropyPool struct {
	mu         sync.Mutex
	bits       int
	capBits    int
	refillRate int // bits per second of virtual time
}

func newEntropyPool(bits int) *EntropyPool {
	return &EntropyPool{bits: bits, capBits: bits, refillRate: 64}
}

// Bits returns the bits currently available.
func (p *EntropyPool) Bits() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bits
}

// Draw removes n bits from the pool, failing with ErrEntropyStarved when the
// pool holds fewer than n bits (a real /dev/random read would block; the
// applications under study treat the blocked read as a failure).
func (p *EntropyPool) Draw(n int) error {
	if n < 0 {
		return fmt.Errorf("simenv: negative entropy draw %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bits < n {
		return fmt.Errorf("draw %d bits (have %d): %w", n, p.bits, ErrEntropyStarved)
	}
	p.bits -= n
	return nil
}

// Drain empties the pool, staging the starvation condition.
func (p *EntropyPool) Drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bits = 0
}

// SetRefillRate sets the replenishment rate in bits per virtual second.
func (p *EntropyPool) SetRefillRate(bitsPerSecond int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refillRate = bitsPerSecond
}

func (p *EntropyPool) advance(dt time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	gained := int(dt.Seconds() * float64(p.refillRate))
	p.bits += gained
	if p.bits > p.capBits {
		p.bits = p.capBits
	}
}
