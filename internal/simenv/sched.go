package simenv

import (
	"fmt"
	"math/rand"
	"sync"
)

// Scheduler simulates the kernel thread scheduler's interleaving decisions.
// Race-condition faults in the simulated applications trigger only under
// particular interleavings; the scheduler supplies those interleavings from a
// seeded generator so a run is deterministic until the environment is
// explicitly rerolled (Env.Reroll), which models the clock interrupt arriving
// at a different moment on retry.
type Scheduler struct {
	mu  sync.Mutex
	rng *rand.Rand
	// forced pins the next Interleave results for adversarial tests:
	// key -> forced choice.
	forced map[string]int
}

func newScheduler(rng *rand.Rand) *Scheduler {
	return &Scheduler{
		rng:    rand.New(rand.NewSource(rng.Int63())),
		forced: make(map[string]int),
	}
}

func (s *Scheduler) reseed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rng = rand.New(rand.NewSource(seed))
}

// Interleave chooses which of n runnable threads at the named program point
// runs first and returns its index in [0, n). A forced choice, if staged for
// the point, wins.
func (s *Scheduler) Interleave(point string, n int) int {
	if n <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.forced[point]; ok {
		if c >= n {
			c = n - 1
		}
		return c
	}
	return s.rng.Intn(n)
}

// Force pins the choice at a program point; used to stage the losing
// interleaving deterministically.
func (s *Scheduler) Force(point string, choice int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forced[point] = choice
}

// Unforce removes a pinned choice.
func (s *Scheduler) Unforce(point string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.forced, point)
}

// UnforceAll clears every pinned choice.
func (s *Scheduler) UnforceAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forced = make(map[string]int)
}

// RaceFires evaluates a two-way race at the named point: it returns true when
// the scheduler picks the losing interleaving. window is the number of
// equally likely interleavings of which exactly one loses; a window of 1
// always fires (the race is certain), larger windows fire with probability
// 1/window.
func (s *Scheduler) RaceFires(point string, window int) bool {
	if window <= 1 {
		return true
	}
	return s.Interleave(point, window) == 0
}

// Describe returns a human-readable summary of the pinned points, for debug
// logs.
func (s *Scheduler) Describe() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.forced) == 0 {
		return "scheduler: free-running"
	}
	return fmt.Sprintf("scheduler: %d forced point(s)", len(s.forced))
}
