// Command faultlint runs the environment-dependence analyzer suite over Go
// packages and gates on the findings: it exits 0 when every gating finding
// is suppressed or absent, 1 when active non-advisory findings remain, and 2
// on usage or load errors — the contract the CI job relies on. Advisory
// findings (envsite's classification of seeded fault sites, scope's recovery
// predictions) are reported but never fail the gate.
//
// Usage:
//
//	faultlint [flags] [packages]
//
//	faultlint ./...                  # whole module
//	faultlint -json ./internal/...   # machine-readable report
//	faultlint -rules envcheck,wallclock ./cmd/...
//	faultlint -scope ./internal/apps/...  # + interprocedural recovery scope
//	faultlint -list                  # describe the analyzers
//
// With -scope the interprocedural recoveryscope analysis runs over the same
// load: every seeded fault-raise site gains an advisory "scope" finding
// ({class, owning component, blast radius, minimal rung}), and sites whose
// mechanisms have no component attribution in a componentized package gain a
// gating "scopegap" finding. Both honor //faultlint:ignore.
//
// Packages are directories or dir/... trees relative to the working
// directory. Findings are suppressed in source with
// //faultlint:ignore <rule> [reason] on or above the flagged line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"faultstudy/internal/faultlint"
	"faultstudy/internal/recoveryscope"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// config is the parsed flag set; separated from flag parsing so tests can
// drive the full report pipeline.
type config struct {
	jsonOut  bool
	rules    []string
	list     bool
	verbose  bool
	scope    bool
	patterns []string
	dir      string // working directory override for tests ("" = cwd)
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("faultlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit the JSON report (schema in EXPERIMENTS.md)")
		rules   = fs.String("rules", "", "comma-separated analyzer subset (default: all)")
		list    = fs.Bool("list", false, "list analyzers and exit")
		verbose = fs.Bool("v", false, "include suppressed findings in text output")
		scope   = fs.Bool("scope", false, "run the interprocedural recovery-scope analysis (advisory scope + gating scopegap findings)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range faultlint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s [%s] %s\n", a.Name, a.Class.Short(), a.Doc)
		}
		fmt.Fprintf(stdout, "%-12s [%s] %s\n", "scope", "*",
			"interprocedural recovery-scope prediction per seeded fault site (advisory; -scope)")
		fmt.Fprintf(stdout, "%-12s [%s] %s\n", "scopegap", "*",
			"seeded fault site with no component attribution in a componentized package (-scope)")
		return 0
	}

	cfg := config{jsonOut: *jsonOut, list: *list, verbose: *verbose, scope: *scope, patterns: fs.Args()}
	if *rules != "" {
		for _, r := range strings.Split(*rules, ",") {
			if r = strings.TrimSpace(r); r != "" {
				cfg.rules = append(cfg.rules, r)
			}
		}
	}
	return report(stdout, stderr, cfg)
}

// report loads, analyzes, renders, and gates: the whole pipeline behind flag
// parsing. Diagnostics from the analyzer suite and (with scope) the
// interprocedural analysis are merged and re-sorted here, at the CLI layer,
// so reports diff stably across packages whatever mix of analyses ran.
func report(stdout, stderr io.Writer, cfg config) int {
	root := cfg.dir
	if root == "" {
		var err error
		if root, err = os.Getwd(); err != nil {
			fmt.Fprintln(stderr, "faultlint:", err)
			return 2
		}
	}
	pkgs, err := faultlint.Load(root, cfg.patterns)
	if err != nil {
		fmt.Fprintln(stderr, "faultlint:", err)
		return 2
	}
	result, err := faultlint.Run(pkgs, cfg.rules)
	if err != nil {
		fmt.Fprintln(stderr, "faultlint:", err)
		return 2
	}
	if cfg.scope {
		extra := recoveryscope.Analyze(pkgs).Diagnostics()
		faultlint.ApplySuppressions(pkgs, extra)
		result.Diagnostics = append(result.Diagnostics, extra...)
		faultlint.SortDiagnostics(result.Diagnostics)
		result.Rules = append(result.Rules, "scope", "scopegap")
	}

	if cfg.jsonOut {
		data, err := faultlint.RenderJSON(result)
		if err != nil {
			fmt.Fprintln(stderr, "faultlint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	} else {
		fmt.Fprint(stdout, faultlint.RenderText(result, cfg.verbose))
	}

	if len(result.Gating()) > 0 {
		return 1
	}
	return 0
}
