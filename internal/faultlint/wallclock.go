package faultlint

import (
	"go/ast"
	"strings"

	"faultstudy/internal/taxonomy"
)

// wallclock flags direct wall-clock reads and sleeps — time.Now, time.Sleep,
// time.Since, time.Tick — outside the packages that own the injectable
// clock (internal/simenv implements the virtual clock; internal/supervise
// consumes it through its Clock interface). Everything else must thread a
// clock so experiment runs are deterministic; a raw wall-clock read makes
// behaviour depend on host timing, the classic EDT nondeterminism the paper
// files under request-timing triggers.
//
// Referencing time.Now as a *value* (the injectable-clock default, as in
// `var now = time.Now`) is deliberately not flagged: that reference is the
// injection point.
var wallclockAnalyzer = &Analyzer{
	Name:  "wallclock",
	Doc:   "direct wall-clock call outside the injectable-clock packages",
	Class: taxonomy.ClassEnvDependentTransient,
	Run:   runWallclock,
}

// wallclockFuncs are the package-level time functions that read or depend on
// the wall clock.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// wallclockExemptDirs are directory suffixes whose packages legitimately
// touch the clock (they implement or adapt the injectable clock).
var wallclockExemptDirs = []string{
	"internal/simenv",
	"internal/supervise",
}

func wallclockExempt(dir string) bool {
	norm := strings.ReplaceAll(dir, "\\", "/")
	for _, suffix := range wallclockExemptDirs {
		if strings.HasSuffix(norm, suffix) {
			return true
		}
	}
	return false
}

func runWallclock(p *Pass) {
	if wallclockExempt(p.Pkg.Dir) {
		return
	}
	for _, f := range p.Pkg.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, resolved := p.Pkg.pkgQualified(file, sel)
			if !resolved || path != "time" || !wallclockFuncs[name] {
				return true
			}
			p.Reportf(call.Pos(),
				"direct time.%s call; thread an injectable clock (supervise.Clock / simenv virtual time) so runs are deterministic", name)
			return true
		})
	}
}
