package experiment

import (
	"strings"
	"testing"

	"faultstudy/internal/recovery"
	"faultstudy/internal/supervise"
	"faultstudy/internal/taxonomy"
)

func TestSupervisedColumn(t *testing.T) {
	m, err := RunMatrix(recovery.Policy{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m.HasSupervised() {
		t.Fatal("fresh matrix should have no supervised column")
	}
	if err := m.AddSupervised(42, supervise.Config{GrowResources: true}); err != nil {
		t.Fatal(err)
	}
	if !m.HasSupervised() {
		t.Fatal("supervised column missing after AddSupervised")
	}
	for _, fo := range m.PerFault {
		if fo.Supervised == VerdictNone {
			t.Fatalf("%s has no supervised verdict", fo.FaultID)
		}
	}

	// The supervisor must never lose more than the best bare strategy per
	// class: its ladder includes every bare mechanism plus degraded mode.
	for _, c := range taxonomy.Classes() {
		sup, _ := m.SupervisedRate(c)
		if sup.N == 0 {
			continue
		}
		best := 0
		for _, s := range m.Strategies {
			if r := m.Rate(s, c); r.Hits > best {
				best = r.Hits
			}
		}
		if sup.Hits < best {
			t.Errorf("%s: supervised not-lost %d/%d below best bare strategy %d",
				c, sup.Hits, sup.N, best)
		}
	}

	// The headline structure: EI faults overwhelmingly recur (many lost even
	// under supervision), while transients overwhelmingly survive.
	edt, _ := m.SupervisedRate(taxonomy.ClassEnvDependentTransient)
	if edt.N > 0 && edt.Hits*2 < edt.N {
		t.Errorf("EDT supervised not-lost = %d/%d, want majority", edt.Hits, edt.N)
	}

	if !strings.Contains(m.String(), "supervised") {
		t.Error("matrix rendering missing the supervised column")
	}
}

func TestRunSoakDeterministic(t *testing.T) {
	cfg := SoakConfig{Ops: 120, Faults: 2, Seed: 7}
	run := func() string {
		results, err := RunSoak(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 3 {
			t.Fatalf("soak results = %d apps, want 3", len(results))
		}
		for _, r := range results {
			if len(r.Mechanisms) != 2 {
				t.Errorf("%s: %d mechanisms active, want 2", r.App, len(r.Mechanisms))
			}
			if r.Report.OpsTotal < cfg.Ops {
				t.Errorf("%s: %d ops accounted, want >= %d", r.App, r.Report.OpsTotal, cfg.Ops)
			}
			if got := r.Report.OpsOK + r.Report.OpsFailed + r.Report.OpsShed; got != r.Report.OpsTotal {
				t.Errorf("%s: ops don't add up: ok+failed+shed=%d total=%d", r.App, got, r.Report.OpsTotal)
			}
		}
		return RenderSoak(results)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("soak not deterministic:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	for _, app := range []string{"apache", "gnome", "mysql"} {
		if !strings.Contains(strings.ToLower(a), app) {
			t.Errorf("soak rendering missing %s section", app)
		}
	}
}

func TestVerdictNames(t *testing.T) {
	cases := map[SupervisorVerdict]string{
		VerdictNone:     "-",
		VerdictServed:   "served",
		VerdictDegraded: "degraded",
		VerdictLost:     "lost",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v, want)
		}
	}
}
