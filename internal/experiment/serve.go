package experiment

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"faultstudy/internal/apps/httpd"
	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/component"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/obsv"
	"faultstudy/internal/parallel"
	"faultstudy/internal/simenv"
	"faultstudy/internal/stats"
	"faultstudy/internal/taxonomy"
	"faultstudy/internal/traffic"
	"faultstudy/internal/workload"
)

// Metric names of the SERVE experiment; the catalogue entry lives in
// OBSERVABILITY.md.
const (
	// MetricServeRequests counts scheduled arrivals by final outcome.
	MetricServeRequests = "faultstudy_serve_requests_total"
	// MetricServeRequestLatency is the per-request latency histogram
	// (RequestLatencyBuckets): service latency for clean serves, service plus
	// the full recovery wait for requests that rode out an episode.
	MetricServeRequestLatency = "faultstudy_serve_request_latency_seconds"
	// MetricServeEpisodes counts fault episodes opened mid-traffic by outcome.
	MetricServeEpisodes = "faultstudy_serve_episodes_total"
	// MetricServeMTTRSeconds is the per-episode repair-time histogram
	// (failure to service restored, virtual clock).
	MetricServeMTTRSeconds = "faultstudy_serve_mttr_seconds"
	// MetricServeSLOBurn is the arm's error-budget burn: multiples of the
	// SLO's error budget the arm's bad requests consumed.
	MetricServeSLOBurn = "faultstudy_serve_slo_burn"
)

// The serving tier's virtual-time model, shared with the MREBOOT sweep where
// the quantities coincide: detection and process restart are properties of
// the platform, not of the experiment asking the question.
const (
	// serveDetect is the failure-detection latency charged to every episode:
	// arrivals inside it find nothing serving and are lost.
	serveDetect = 100 * time.Millisecond
	// serveProcRestart is the cost of bouncing the whole process; the
	// retry-on-a-dead-process, restore, and restart rungs all pay it.
	serveProcRestart = 2 * time.Second
	// serveAttempts bounds recovery attempts per episode at the arm's rung.
	serveAttempts = 2
	// serveBreakerLimit caps recovery episodes per arm: after this many, the
	// arm sheds further fault failures as plain errors instead of walking the
	// ladder again — the supervisor's circuit breaker, keeping an
	// every-request-fails environmental fault from turning the schedule into
	// back-to-back recovery windows.
	serveBreakerLimit = 6
	// serveCheckpointEvery is the arrival stride between state checkpoints
	// while healthy; the restore rung reinstates the most recent one.
	serveCheckpointEvery = 200
	// serveDefaultUsers and serveDefaultRequests size the default schedule:
	// every user serves at least twice.
	serveDefaultUsers    = 1200
	serveDefaultRequests = 2400
	// serveDefaultArrival is the default arrival process: Poisson, one
	// arrival per simulated millisecond on average.
	serveDefaultArrival = "poisson:1ms"
)

// ServeRungs is the recovery-mechanism axis of the SERVE experiment: the
// full escalation ladder, in ascending cost order, matching
// recoveryscope.Rungs.
func ServeRungs() []string {
	return []string{"retry", "microreboot", "subtree-reboot", "restore", "restart"}
}

// ServeConfig tunes the SERVE experiment: sustained open-loop traffic
// against daemonized applications with seeded bugs striking mid-stream, one
// arm per (mechanism, rung) cell.
type ServeConfig struct {
	// Seed drives every arm's environment and traffic schedule.
	Seed int64
	// Users is the simulated-user pool per arm (default 1200).
	Users int
	// Requests is the scheduled arrivals per arm (default 2400, at least
	// Users so round-robin assignment exercises every user).
	Requests int
	// Arrival is the arrival-process spec ("poisson:<gap>" or
	// "fixed:<gap>"; default "poisson:1ms").
	Arrival string
	// SLO is the objective requests are scored against (default
	// traffic.DefaultSLO).
	SLO traffic.SLO
	// Telemetry, when non-nil, receives per-episode traces and the serve
	// metric family from every arm. Nil costs nothing.
	Telemetry *Telemetry
	// Workers bounds the worker pool the arms are sharded over (0 or
	// negative means one per processor; 1 is serial). Reports, telemetry,
	// and request logs are byte-identical at every worker count.
	Workers int
}

// withDefaults fills the zero fields.
func (c ServeConfig) withDefaults() ServeConfig {
	if c.Users <= 0 {
		c.Users = serveDefaultUsers
	}
	if c.Requests <= 0 {
		c.Requests = serveDefaultRequests
	}
	if c.Requests < c.Users {
		c.Requests = c.Users
	}
	if c.Arrival == "" {
		c.Arrival = serveDefaultArrival
	}
	if c.SLO == (traffic.SLO{}) {
		c.SLO = traffic.DefaultSLO()
	}
	return c
}

// ServeArm is one (mechanism, rung) cell: one daemonized application under
// the full traffic schedule with the mechanism's faults striking mid-stream
// and every episode recovered at the arm's rung.
type ServeArm struct {
	// Mechanism is the seeded bug active in this arm.
	Mechanism string
	// App is the application hosting the bug.
	App taxonomy.Application
	// Class is the mechanism's EI/EDN/EDT class.
	Class taxonomy.FaultClass
	// Rung is the recovery mechanism under test.
	Rung string
	// Requests counts scheduled arrivals (the schedule length).
	Requests int
	// Good counts arrivals served within the SLO latency threshold.
	Good int
	// Slow counts arrivals served over the threshold (including requests
	// that rode out a recovery and were eventually answered).
	Slow int
	// Refused counts arrivals fast-failed by a mid-reboot component while
	// siblings kept serving.
	Refused int
	// Errored counts arrivals that failed against a live process.
	Errored int
	// Lost counts arrivals nothing answered: detection windows and
	// process-down windows.
	Lost int
	// Shed counts fault failures the arm's circuit breaker refused to open
	// an episode for (a subset of Errored).
	Shed int
	// OutageArrivals and OutageServed measure goodput during recovery:
	// arrivals landing inside component-reboot windows, and how many of
	// those still served through sibling components.
	OutageArrivals, OutageServed int
	// Episodes and Recovered count recovery episodes opened and those whose
	// failing request was eventually served.
	Episodes, Recovered int
	// MTTRTotal accumulates repair time over recovered episodes.
	MTTRTotal time.Duration
	// Burn is the arm's SLO burn: error-budget multiples consumed.
	Burn float64
	// Records is the arm's complete per-request log, in schedule order.
	Records []traffic.Record
}

// MTTR is the arm's mean time to repair over recovered episodes (0 when
// nothing recovered).
func (a ServeArm) MTTR() time.Duration {
	if a.Recovered == 0 {
		return 0
	}
	return a.MTTRTotal / time.Duration(a.Recovered)
}

// ServeReport is the assembled experiment, arms in (mechanism, rung) order.
type ServeReport struct {
	// Seed is the experiment's root seed.
	Seed int64
	// Users and Requests are the per-arm schedule dimensions.
	Users, Requests int
	// Arrival is the arrival-process spec the schedules used.
	Arrival string
	// SLO is the objective every arm was scored against.
	SLO traffic.SLO
	// Arms holds every (mechanism, rung) cell.
	Arms []ServeArm
}

// serveMechanisms picks the experiment's fault axis from the registry: per
// daemonized application (httpd, sqldb), the first two EI, one EDN, and one
// EDT mechanisms in sorted key order — a small cross-class slice of the
// corpus so the sweep stays tractable while still striking every class
// mid-traffic.
func serveMechanisms() []faultinject.Mechanism {
	reg := Registry()
	var out []faultinject.Mechanism
	for _, prefix := range []string{"httpd/", "sqldb/"} {
		quota := map[taxonomy.FaultClass]int{
			taxonomy.ClassEnvIndependent:           2,
			taxonomy.ClassEnvDependentNonTransient: 1,
			taxonomy.ClassEnvDependentTransient:    1,
		}
		for _, k := range reg.Keys() {
			if !strings.HasPrefix(k, prefix) {
				continue
			}
			m, _ := reg.Lookup(k)
			if quota[m.Class()] <= 0 {
				continue
			}
			quota[m.Class()]--
			out = append(out, m)
		}
	}
	return out
}

// RunServe runs the SERVE experiment: serveMechanisms() × ServeRungs(), one
// arm per cell. Each arm daemonizes a componentized application, precomputes
// an open-loop traffic schedule over cfg.Users simulated users, splices the
// mechanism's trigger ops into the stream at evenly spaced positions, and
// recovers every fault episode at the arm's rung while traffic keeps
// arriving — scoring SLO burn, goodput during recovery, per-request latency,
// and MTTR.
//
// Arms are independent shards on a pool of cfg.Workers workers: each derives
// its seed from (Seed, arm index) and records into a private telemetry, and
// the shards are reduced in fixed arm order — so reports, traces, metric
// dumps, and request logs are byte-identical at every worker count.
func RunServe(cfg ServeConfig) (*ServeReport, error) {
	cfg = cfg.withDefaults()
	if _, err := traffic.ParseArrivals(cfg.Arrival); err != nil {
		return nil, err
	}
	mechs := serveMechanisms()
	rungs := ServeRungs()
	type shardOut struct {
		arm ServeArm
		tel *Telemetry
	}
	n := len(mechs) * len(rungs)
	outs, err := parallel.MapOrdered(cfg.Workers, n, func(i int) (shardOut, error) {
		var tel *Telemetry
		if cfg.Telemetry != nil {
			tel = NewTelemetry()
		}
		arm, err := runServeArm(cfg, i, mechs[i/len(rungs)], rungs[i%len(rungs)], tel)
		return shardOut{arm: arm, tel: tel}, err
	})
	if err != nil {
		return nil, err
	}
	rep := &ServeReport{Seed: cfg.Seed, Users: cfg.Users, Requests: cfg.Requests,
		Arrival: cfg.Arrival, SLO: cfg.SLO, Arms: make([]ServeArm, 0, n)}
	tels := make([]*Telemetry, 0, n)
	for _, o := range outs {
		rep.Arms = append(rep.Arms, o.arm)
		tels = append(tels, o.tel)
	}
	if err := cfg.Telemetry.Merge(tels...); err != nil {
		return nil, err
	}
	return rep, nil
}

// serveApp is what a SERVE arm needs from an application: the recovery
// lifecycle, the component tree, and the serving contract.
type serveApp interface {
	componentApp
	workload.Server
}

// buildServeApp constructs the daemonized application and its scenario for
// a mechanism. Only the componentized daemons serve open-loop traffic, so
// only httpd/ and sqldb/ mechanisms are valid here.
func buildServeApp(mechanism string, seed int64) (serveApp, faultinject.Scenario, error) {
	switch {
	case strings.HasPrefix(mechanism, "httpd/"):
		env := simenv.New(seed, simenv.WithFDLimit(64), simenv.WithProcLimit(192))
		srv := httpd.New(env, faultinject.NewSet(mechanism), httpd.Config{})
		sc, ok := httpd.Scenarios(srv)[mechanism]
		if !ok {
			return nil, faultinject.Scenario{}, fmt.Errorf("experiment: no httpd scenario for %s", mechanism)
		}
		return httpd.Componentize(srv, component.NewStore()), sc, nil
	case strings.HasPrefix(mechanism, "sqldb/"):
		env := simenv.New(seed, simenv.WithFDLimit(64))
		srv := sqldb.New(env, faultinject.NewSet(mechanism))
		sc, ok := sqldb.Scenarios(srv)[mechanism]
		if !ok {
			return nil, faultinject.Scenario{}, fmt.Errorf("experiment: no sqldb scenario for %s", mechanism)
		}
		return sqldb.Componentize(srv, component.NewStore()), sc, nil
	default:
		return nil, faultinject.Scenario{}, fmt.Errorf("experiment: mechanism %q is not a daemon mechanism", mechanism)
	}
}

// serveRun is the per-arm state shared by the traffic loop and the episode
// machinery.
type serveRun struct {
	cfg      ServeConfig
	mech     faultinject.Mechanism
	rung     string
	app      serveApp
	env      *simenv.Env
	arm      *ServeArm
	tel      *Telemetry
	schedule []traffic.Arrival
	next     int           // cursor into schedule
	base     time.Duration // virtual clock at traffic start
	cp       []byte        // most recent healthy checkpoint (restore rung)
}

// runServeArm runs one (mechanism, rung) cell. Everything it does is a pure
// function of (cfg, arm index); it shares no state with other arms.
func runServeArm(cfg ServeConfig, armIdx int, mech faultinject.Mechanism, rung string, tel *Telemetry) (ServeArm, error) {
	arm := ServeArm{Mechanism: mech.Key, App: mech.App, Class: mech.Class(), Rung: rung}
	armSeed := parallel.Derive(cfg.Seed, uint64(armIdx))
	app, sc, err := buildServeApp(mech.Key, armSeed)
	if err != nil {
		return arm, err
	}
	if err := app.Start(); err != nil {
		return arm, fmt.Errorf("experiment: serve %s × %s: start: %w", mech.Key, rung, err)
	}
	// Warm to steady state, tolerating an early-firing bug the traffic will
	// then report, and stage the mechanism's environmental precondition.
	if app.ServeWarm() != nil && !app.Running() {
		app.ContainCrash()
		_ = app.ServeWarm()
	}
	if sc.Stage != nil {
		sc.Stage()
	}
	proc, err := traffic.ParseArrivals(cfg.Arrival)
	if err != nil {
		return arm, err
	}
	schedule, err := traffic.Schedule(traffic.GenConfig{
		Seed: armSeed, Users: cfg.Users, Requests: cfg.Requests, Process: proc})
	if err != nil {
		return arm, err
	}
	cp, err := app.Snapshot()
	if err != nil {
		return arm, fmt.Errorf("experiment: serve %s × %s: checkpoint: %w", mech.Key, rung, err)
	}
	run := &serveRun{cfg: cfg, mech: mech, rung: rung, app: app,
		env: app.Env(), arm: &arm, tel: tel, schedule: schedule,
		base: app.Env().Monotonic(), cp: cp}
	if tel != nil {
		obsv.RegisterBridgeHelp(tel.Registry)
		tel.Recorder.SetContext(obsv.Context{
			App: mech.App.String(), FaultID: mech.Key, Class: mech.Class().Short()})
	}

	// The mechanism's trigger ops fire at evenly spaced schedule positions:
	// position -> op, spliced ahead of the arrival at that position.
	triggers := make(map[int]faultinject.Op, len(sc.Ops))
	if len(sc.Ops) > 0 {
		stride := len(schedule) / (len(sc.Ops) + 1)
		for i, op := range sc.Ops {
			triggers[(i+1)*stride] = op
		}
	}

	for run.next < len(run.schedule) {
		arr := run.schedule[run.next]
		run.next++
		// Advance the clock to the arrival (recovery may already have pushed
		// it past).
		if target := run.base + arr.At; target > run.env.Monotonic() {
			run.env.Advance(target - run.env.Monotonic())
		}
		if arr.Seq%serveCheckpointEvery == 0 {
			run.checkpoint()
		}
		if op, ok := triggers[arr.Seq]; ok {
			run.trigger(op)
		}
		run.serve(arr)
	}
	app.Stop()
	arm.Burn = run.score()
	return arm, nil
}

// checkpoint snapshots a healthy application for the restore rung; unhealthy
// moments keep the previous checkpoint.
func (r *serveRun) checkpoint() {
	if !r.app.Running() || !r.app.Tree().AllRunning() {
		return
	}
	if snap, err := r.app.Snapshot(); err == nil {
		r.cp = snap
	}
}

// trigger fires one spliced scenario op. A fault failure opens a recovery
// episode around the op itself; anything else is the scenario idling.
func (r *serveRun) trigger(op faultinject.Op) {
	err := op.Do()
	if err == nil {
		return
	}
	if _, isFault := faultinject.AsFailure(err); !isFault { //faultlint:ignore swallowfail fault failures proceed to an episode below; only non-fault scenario idling returns here
		return
	}
	if r.breakerOpen() {
		r.arm.Shed++
		r.ensureServing()
		return
	}
	r.episode(op.Name, err, op.Do)
}

// serve drives one scheduled arrival through the daemon and records its
// outcome. A fault failure opens a recovery episode with the arrival itself
// as the retried op — the request waits out the recovery, and its final
// latency includes the full wait.
func (r *serveRun) serve(arr traffic.Arrival) {
	if !r.app.Running() {
		// Nothing is listening; the supervisor of last resort brings the
		// process back for subsequent traffic.
		r.record(arr, traffic.OutcomeLost, "", "process down", 0)
		r.ensureServing()
		return
	}
	category, comp, err := r.app.ServeArrival(arr.Seq, arr.User, arr.U)
	var de *component.DownError
	switch {
	case err == nil:
		r.record(arr, r.cfg.SLO.Outcome(arr.Service), "", "", arr.Service)
	case errors.As(err, &de):
		r.record(arr, traffic.OutcomeRefused, de.Component, err.Error(), 0)
	default:
		if _, isFault := faultinject.AsFailure(err); !isFault { //faultlint:ignore swallowfail fault failures proceed to the breaker/episode paths below; non-fault errors are recorded as error outcomes
			r.record(arr, traffic.OutcomeError, comp, err.Error(), 0)
			return
		}
		if r.breakerOpen() {
			r.arm.Shed++
			r.record(arr, traffic.OutcomeError, comp, err.Error(), 0)
			r.ensureServing()
			return
		}
		arrivedAt := r.base + arr.At
		recovered := r.episode(fmt.Sprintf("arr-%04d", arr.Seq), err, func() error {
			_, _, rerr := r.app.ServeArrival(arr.Seq, arr.User, arr.U)
			return rerr
		})
		if recovered {
			// The user waited from arrival through recovery, then was served.
			latency := r.env.Monotonic() - arrivedAt + arr.Service
			r.record(arr, r.cfg.SLO.Outcome(latency), "", "", latency)
		} else {
			r.record(arr, traffic.OutcomeLost, "", err.Error(), 0)
		}
	}
	_ = category
}

// breakerOpen reports whether the arm's episode budget is spent.
func (r *serveRun) breakerOpen() bool { return r.arm.Episodes >= serveBreakerLimit }

// record appends one request record and folds it into telemetry.
func (r *serveRun) record(arr traffic.Arrival, outcome, comp, errMsg string, latency time.Duration) {
	r.arm.Requests++
	switch outcome {
	case traffic.OutcomeOK:
		r.arm.Good++
	case traffic.OutcomeSlow:
		r.arm.Slow++
	case traffic.OutcomeRefused:
		r.arm.Refused++
	case traffic.OutcomeError:
		r.arm.Errored++
	case traffic.OutcomeLost:
		r.arm.Lost++
	}
	category := categoryFor(r.app, arr)
	r.arm.Records = append(r.arm.Records, traffic.Record{
		Seq: arr.Seq, User: arr.User, At: arr.At, Category: category,
		Latency: latency, Outcome: outcome, Component: comp, Err: errMsg,
	})
	if r.tel != nil {
		r.tel.Registry.Counter(MetricServeRequests,
			obsv.L("app", r.mech.App.String(), "rung", r.rung, "outcome", outcome)...).Inc()
		if outcome == traffic.OutcomeOK || outcome == traffic.OutcomeSlow {
			r.tel.Registry.Histogram(MetricServeRequestLatency, obsv.RequestLatencyBuckets,
				obsv.L("app", r.mech.App.String(), "rung", r.rung)...).ObserveDuration(latency)
		}
	}
}

// categoryFor names the operation-mix bucket an arrival's draw maps to,
// without serving anything — pure threshold arithmetic mirroring the apps'
// ServeArrival switch.
func categoryFor(app serveApp, arr traffic.Arrival) string {
	switch app.Name() {
	case httpd.Owner:
		switch {
		case arr.U < 0.70:
			return httpd.ServeStatic
		case arr.U < 0.80:
			return httpd.ServeListing
		case arr.U < 0.90:
			return httpd.ServeCGI
		case arr.U < 0.95:
			return httpd.ServeProxy
		default:
			return httpd.ServeNotFound
		}
	default:
		switch {
		case arr.U < 0.55:
			return sqldb.ServeSelect
		case arr.U < 0.75:
			return sqldb.ServeInsert
		case arr.U < 0.90:
			return sqldb.ServeCount
		default:
			return sqldb.ServeUpdate
		}
	}
}

// episode recovers one fault failure at the arm's rung while traffic keeps
// arriving: a detection window (arrivals lost), then up to serveAttempts
// (recovery action, retry) rounds. Reports whether the failing op was
// eventually served.
func (r *serveRun) episode(name string, faultErr error, retry func() error) bool {
	arm := r.arm
	arm.Episodes++
	start := r.env.Monotonic()
	var rec *obsv.Recorder
	if r.tel != nil {
		rec = r.tel.Recorder
		rec.Begin(start, name, r.mech.Key)
		rec.Note(start, obsv.Span{Kind: obsv.SpanActivation, Note: faultErr.Error()})
	}

	// Detection: between the fault firing and recovery engaging, nothing
	// serves, under every rung alike.
	r.env.Advance(serveDetect)
	r.drainLost(r.env.Monotonic(), "detection window")

	recovered := false
	for attempt := 1; attempt <= serveAttempts && !recovered; attempt++ {
		target := r.applyServeRung(attempt)
		if rec != nil {
			rec.Note(r.env.Monotonic(), obsv.Span{Kind: obsv.SpanAction, Rung: r.rung,
				Attempt: attempt, Outcome: "ok", Component: target})
		}
		retryErr := retry()
		if retryErr == nil {
			recovered = true
			break
		}
		if rec != nil {
			rec.Note(r.env.Monotonic(), obsv.Span{Kind: obsv.SpanRetry, Rung: r.rung,
				Attempt: attempt, Outcome: "fail", Note: retryErr.Error()})
		}
	}
	end := r.env.Monotonic()
	if recovered {
		arm.Recovered++
		arm.MTTRTotal += end - start
		if rec != nil {
			rec.End(end, obsv.OutcomeRecovered, r.rung)
		}
		if r.tel != nil {
			r.tel.Registry.Histogram(MetricServeMTTRSeconds, obsv.LatencyBuckets,
				obsv.L("rung", r.rung, "class", r.mech.Class().Short())...).ObserveDuration(end - start)
		}
	} else {
		r.ensureServing()
		if rec != nil {
			rec.End(end, obsv.OutcomeLost, r.rung)
		}
	}
	if r.tel != nil {
		outcome := obsv.OutcomeLost
		if recovered {
			outcome = obsv.OutcomeRecovered
		}
		r.tel.Registry.Counter(MetricServeEpisodes,
			obsv.L("app", r.mech.App.String(), "rung", r.rung,
				"class", r.mech.Class().Short(), "outcome", outcome)...).Inc()
	}
	return recovered
}

// applyServeRung performs one recovery attempt at the arm's rung and returns
// the component a structural rung targeted ("" for process-level rungs).
//
// The retry rung deliberately performs no structural recovery — a crashed
// process cannot retry itself back to life; measuring that under live
// traffic is part of the point.
func (r *serveRun) applyServeRung(attempt int) string {
	app := r.app
	target := ""
	switch r.rung {
	case "retry":
		// Perturb only.
	case "microreboot":
		app.ContainCrash()
		if name, ok := app.ComponentFor(r.mech.Key); ok {
			target = name
			tree := app.Tree()
			if tree.Kill(name) == nil {
				r.drainOutage(r.env.Monotonic() + tree.RebootCost(name))
				_ = tree.Restart(name)
			}
		} else {
			r.bounceProcess(false)
		}
	case "subtree-reboot":
		app.ContainCrash()
		if name, ok := app.ComponentFor(r.mech.Key); ok {
			target = name
			tree := app.Tree()
			members := tree.SubtreeOf(name)
			for i := len(members) - 1; i >= 0; i-- {
				_ = tree.Kill(members[i])
			}
			r.drainOutage(r.env.Monotonic() + tree.SubtreeCost(name))
			for _, m := range members {
				_ = tree.Restart(m)
			}
		} else {
			r.bounceProcess(false)
		}
	case "restore":
		r.bounceProcess(false)
	case "restart":
		r.bounceProcess(true)
	}
	r.env.Sched().UnforceAll()
	r.env.Reroll()
	r.env.Sched().Force(r.mech.Key, attempt)
	return target
}

// bounceProcess restarts the whole process: stop, a full restart window
// with every in-window arrival lost, then reinstate state — the latest
// checkpoint for restore (and as the fallback), or pristine state re-warmed
// for restart.
func (r *serveRun) bounceProcess(pristine bool) {
	app := r.app
	app.Stop()
	r.env.Advance(serveProcRestart)
	r.drainLost(r.env.Monotonic(), "process restart")
	r.env.ReclaimOwner(app.Name())
	if pristine {
		_ = app.Reset()
		// A restart re-runs the init script: schema and seed state return,
		// accumulated state does not.
		_ = app.ServeWarm()
		return
	}
	if err := app.Restore(r.cp); err != nil {
		_ = app.Reset()
		_ = app.ServeWarm()
	}
}

// ensureServing is the supervisor of last resort: whatever an abandoned
// episode (or a shed failure) left behind, subsequent traffic must find a
// listening process. Component-level damage is rebooted in place; a dead
// process pays the full restart window.
func (r *serveRun) ensureServing() {
	app := r.app
	if app.Running() && app.Tree().AllRunning() {
		return
	}
	if app.Running() {
		app.ContainCrash()
		_ = app.Tree().StartAll()
		return
	}
	app.ContainCrash()
	if app.Running() {
		_ = app.Tree().StartAll()
		return
	}
	r.bounceProcess(false)
}

// drainLost consumes every scheduled arrival at or before the given virtual
// time as lost: the process (or the whole service) was not answering.
func (r *serveRun) drainLost(until time.Duration, why string) {
	for r.next < len(r.schedule) && r.base+r.schedule[r.next].At <= until {
		arr := r.schedule[r.next]
		r.next++
		r.record(arr, traffic.OutcomeLost, "", why, 0)
	}
}

// drainOutage consumes every scheduled arrival up to the given virtual time
// through the partially-down component tree: arrivals routed through the
// dead component are refused fast, arrivals through live siblings still
// serve — the goodput a microreboot preserves and a process restart
// forfeits.
func (r *serveRun) drainOutage(until time.Duration) {
	for r.next < len(r.schedule) && r.base+r.schedule[r.next].At <= until {
		arr := r.schedule[r.next]
		r.next++
		r.arm.OutageArrivals++
		_, comp, err := r.app.ServeArrival(arr.Seq, arr.User, arr.U)
		var de *component.DownError
		switch {
		case err == nil:
			r.arm.OutageServed++
			r.record(arr, r.cfg.SLO.Outcome(arr.Service), "", "", arr.Service)
		case errors.As(err, &de):
			r.record(arr, traffic.OutcomeRefused, de.Component, err.Error(), 0)
		default:
			// The arrival hit the active fault rather than the outage; the
			// episode in progress already owns recovery.
			r.record(arr, traffic.OutcomeError, comp, err.Error(), 0)
		}
	}
}

// score computes the arm's SLO burn and emits the terminal gauge.
func (r *serveRun) score() float64 {
	bad := r.arm.Requests - r.arm.Good
	burn := r.cfg.SLO.Burn(bad, r.arm.Requests)
	if r.tel != nil {
		r.tel.Registry.Gauge(MetricServeSLOBurn,
			obsv.L("app", r.mech.App.String(), "rung", r.rung,
				"mechanism", r.mech.Key)...).Set(burn)
	}
	return burn
}

// BurnBy aggregates SLO burn across the arms of one class at one rung:
// total bad requests over total requests, as error-budget multiples.
func (r *ServeReport) BurnBy(class taxonomy.FaultClass, rung string) float64 {
	bad, total := 0, 0
	for _, a := range r.Arms {
		if a.Class != class || a.Rung != rung {
			continue
		}
		bad += a.Requests - a.Good
		total += a.Requests
	}
	return r.SLO.Burn(bad, total)
}

// GoodputBy aggregates served-during-reboot over reboot-window arrivals for
// one class × rung.
func (r *ServeReport) GoodputBy(class taxonomy.FaultClass, rung string) stats.Proportion {
	var p stats.Proportion
	for _, a := range r.Arms {
		if a.Class != class || a.Rung != rung {
			continue
		}
		p.Hits += a.OutageServed
		p.N += a.OutageArrivals
	}
	return p
}

// MTTRBy is the mean time to repair across one class's recovered episodes
// at one rung (0 when nothing recovered).
func (r *ServeReport) MTTRBy(class taxonomy.FaultClass, rung string) time.Duration {
	var total time.Duration
	var n int
	for _, a := range r.Arms {
		if a.Class != class || a.Rung != rung {
			continue
		}
		total += a.MTTRTotal
		n += a.Recovered
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// WriteRequestLog writes every arm's request records as one JSONL stream in
// arm order (sequence numbers restart at each arm boundary). The stream is
// byte-identical at every worker count.
func (r *ServeReport) WriteRequestLog(w io.Writer) error {
	for _, a := range r.Arms {
		if err := traffic.WriteRecords(w, a.Records); err != nil {
			return fmt.Errorf("experiment: serve request log %s × %s: %w", a.Mechanism, a.Rung, err)
		}
	}
	return nil
}

// Check asserts the experiment's headline claim under sustained traffic:
// for environment-independent faults, a targeted microreboot must burn
// strictly less error budget than a whole-process restart, and every cell
// of the sweep must actually have served traffic.
func (r *ServeReport) Check() error {
	for _, a := range r.Arms {
		if a.Requests == 0 {
			return fmt.Errorf("experiment: serve check: arm %s × %s served no traffic", a.Mechanism, a.Rung)
		}
	}
	ei := taxonomy.ClassEnvIndependent
	micro := r.BurnBy(ei, "microreboot")
	restart := r.BurnBy(ei, "restart")
	if micro >= restart {
		return fmt.Errorf("experiment: serve check: EI SLO burn %.1fx (microreboot) not below %.1fx (restart)",
			micro, restart)
	}
	return nil
}

// serveMTTRCell renders a mean repair time ("-" when nothing recovered).
func serveMTTRCell(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// String renders the class × rung aggregate and the headline.
func (r *ServeReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SERVE experiment (seed %d, %d arms, %d users × %d requests, %s, SLO %.3g%% @ %s):\n",
		r.Seed, len(r.Arms), r.Users, r.Requests, r.Arrival,
		r.SLO.Objective*100, r.SLO.Latency)
	tbl := &stats.Table{Header: []string{
		"class", "rung", "requests", "good", "refused", "lost", "burn", "reboot-served", "mttr"}}
	for _, class := range taxonomy.Classes() {
		for _, rung := range ServeRungs() {
			good, refused, lost, req := 0, 0, 0, 0
			for _, a := range r.Arms {
				if a.Class != class || a.Rung != rung {
					continue
				}
				good += a.Good
				refused += a.Refused
				lost += a.Lost
				req += a.Requests
			}
			if req == 0 {
				continue
			}
			gp := r.GoodputBy(class, rung)
			tbl.Add(class.Short(), rung,
				fmt.Sprint(req), fmt.Sprint(good), fmt.Sprint(refused), fmt.Sprint(lost),
				fmt.Sprintf("%.1fx", r.BurnBy(class, rung)),
				fmt.Sprintf("%d/%d (%s)", gp.Hits, gp.N, gp.Percent()),
				serveMTTRCell(r.MTTRBy(class, rung)))
		}
	}
	b.WriteString(tbl.String())
	ei := taxonomy.ClassEnvIndependent
	fmt.Fprintf(&b,
		"\nHeadline: under sustained open-loop traffic, recovering EI faults by component\nmicroreboot burns %.1fx the SLO error budget where a process restart burns %.1fx —\nkeeping siblings serving through the reboot window is what an SLO actually buys.\n",
		r.BurnBy(ei, "microreboot"), r.BurnBy(ei, "restart"))
	return b.String()
}
