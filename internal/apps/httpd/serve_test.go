package httpd

import "testing"

// TestServeArrivalMix pins the category thresholds: the uniform draw must
// map onto the standard 70/10/10/5/5 mix, and healthy serving must answer
// every category — including unknown paths, which the server 404s without
// erroring.
func TestServeArrivalMix(t *testing.T) {
	c := newComponentized(t)
	if err := c.ServeWarm(); err != nil {
		t.Fatalf("ServeWarm: %v", err)
	}
	cases := []struct {
		u    float64
		want string
	}{
		{0, ServeStatic},
		{0.699, ServeStatic},
		{0.70, ServeListing},
		{0.799, ServeListing},
		{0.80, ServeCGI},
		{0.899, ServeCGI},
		{0.90, ServeProxy},
		{0.949, ServeProxy},
		{0.95, ServeNotFound},
		{0.999, ServeNotFound},
	}
	for i, tc := range cases {
		cat, comp, err := c.ServeArrival(i, i%7, tc.u)
		if cat != tc.want {
			t.Errorf("u=%v category %q, want %q", tc.u, cat, tc.want)
		}
		if err != nil {
			t.Errorf("u=%v healthy serve errored: %v", tc.u, err)
		}
		if comp != "" {
			t.Errorf("u=%v healthy serve named down component %q", tc.u, comp)
		}
	}
	// The session counter advanced for each user touched.
	if got := c.SessionDepth("u00000"); got == 0 {
		t.Error("ServeArrival did not advance the user session counter")
	}
}

// TestServeArrivalRefusedNamesComponent verifies the refusal contract the
// SERVE experiment classifies on: a request routed through a down component
// returns that component's name, while siblings keep serving.
func TestServeArrivalRefusedNamesComponent(t *testing.T) {
	c := newComponentized(t)
	c.Tree().Kill(CompCache)
	if _, comp, err := c.ServeArrival(1, 1, 0.92); err == nil || comp != CompCache {
		t.Fatalf("proxy through dead cache: comp=%q err=%v, want refusal naming %q", comp, err, CompCache)
	}
	// Static requests do not route through the cache: still served.
	if _, comp, err := c.ServeArrival(2, 2, 0.1); err != nil || comp != "" {
		t.Fatalf("static with dead cache: comp=%q err=%v, want clean serve", comp, err)
	}
}
