package workload

import (
	"reflect"
	"sync"
	"testing"
)

// countingHook is a mutex-guarded Hook, the concurrency discipline a hook
// shared across generator goroutines must provide (the generators themselves
// never synchronize — the Hook doc makes sharing the hook's problem).
type countingHook struct {
	mu     sync.Mutex
	counts map[string]int
}

func (h *countingHook) Generated(stream, category string) {
	h.mu.Lock()
	h.counts[stream+"/"+category]++
	h.mu.Unlock()
}

// TestGeneratorsConcurrentWithSharedHook runs all three observed generators
// simultaneously against one shared hook. Under -race this pins the parallel
// engine's workload-layer contract: generators share no package-level state,
// so distinct shards may generate concurrently, and a properly locked shared
// hook sees every item exactly once. The generated streams must equal their
// serial counterparts item for item.
func TestGeneratorsConcurrentWithSharedHook(t *testing.T) {
	const n = 400
	wantHTTP := HTTPRequests(7, DefaultHTTPMix(), n)
	wantSQL := SQLStatements(7, n)
	wantEvents := DesktopEvents(7, n)

	hook := &countingHook{counts: make(map[string]int)}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		mismatch  []string
		addErr    = func(s string) { mu.Lock(); mismatch = append(mismatch, s); mu.Unlock() }
		totalWant = 0
	)

	for g := 0; g < 4; g++ {
		wg.Add(3)
		totalWant += 3 * n
		go func() {
			defer wg.Done()
			if got := HTTPRequestsObserved(7, DefaultHTTPMix(), n, hook); !reflect.DeepEqual(got, wantHTTP) {
				addErr("http stream diverged from serial generation")
			}
		}()
		go func() {
			defer wg.Done()
			if got := SQLStatementsObserved(7, n, hook); !reflect.DeepEqual(got, wantSQL) {
				addErr("sql stream diverged from serial generation")
			}
		}()
		go func() {
			defer wg.Done()
			if got := DesktopEventsObserved(7, n, hook); !reflect.DeepEqual(got, wantEvents) {
				addErr("desktop stream diverged from serial generation")
			}
		}()
	}
	wg.Wait()

	for _, m := range mismatch {
		t.Error(m)
	}
	total := 0
	for _, c := range hook.counts {
		total += c
	}
	if total != totalWant {
		t.Errorf("shared hook saw %d items, want %d", total, totalWant)
	}
}
