package faultlint

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONSchema validates the machine-readable report against the schema
// documented in EXPERIMENTS.md (LINT): top-level version/packages/rules/
// diagnostics/summary, per-diagnostic rule/class/file/line/col/message, and
// summary tallies that add up.
func TestJSONSchema(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	result, err := Run([]*Package{pkg}, []string{"wallclock"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := RenderJSON(result)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Version     int      `json:"version"`
		Packages    int      `json:"packages"`
		Rules       []string `json:"rules"`
		Diagnostics []struct {
			Rule    string `json:"rule"`
			Class   string `json:"class"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Message string `json:"message"`

			Suppressed     bool   `json:"suppressed"`
			SuppressReason string `json:"suppressReason"`
		} `json:"diagnostics"`
		Summary struct {
			Active     int            `json:"active"`
			Suppressed int            `json:"suppressed"`
			ByRule     map[string]int `json:"byRule"`
			ByClass    map[string]int `json:"byClass"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, data)
	}
	if report.Version != JSONSchemaVersion {
		t.Errorf("version = %d, want %d", report.Version, JSONSchemaVersion)
	}
	if report.Packages != 1 {
		t.Errorf("packages = %d, want 1", report.Packages)
	}
	if len(report.Rules) != 1 || report.Rules[0] != "wallclock" {
		t.Errorf("rules = %v, want [wallclock]", report.Rules)
	}
	if len(report.Diagnostics) == 0 {
		t.Fatal("no diagnostics in report")
	}
	active, suppressed := 0, 0
	for _, d := range report.Diagnostics {
		if d.Rule != "wallclock" || d.Class != "environment-dependent-transient" {
			t.Errorf("diagnostic rule/class = %s/%s", d.Rule, d.Class)
		}
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Message == "" {
			t.Errorf("diagnostic with missing position/message: %+v", d)
		}
		if d.Suppressed {
			suppressed++
		} else {
			active++
		}
	}
	if report.Summary.Active != active || report.Summary.Suppressed != suppressed {
		t.Errorf("summary active/suppressed = %d/%d, tallied %d/%d",
			report.Summary.Active, report.Summary.Suppressed, active, suppressed)
	}
	if report.Summary.ByRule["wallclock"] != active {
		t.Errorf("byRule[wallclock] = %d, want %d (active only)",
			report.Summary.ByRule["wallclock"], active)
	}
	if report.Summary.ByClass["environment-dependent-transient"] != active {
		t.Errorf("byClass = %v, want %d under environment-dependent-transient",
			report.Summary.ByClass, active)
	}
}

// TestRenderText checks the human format: one position-prefixed line per
// active finding, suppressed lines only under -v, and the trailing summary.
func TestRenderText(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	result, err := Run([]*Package{pkg}, []string{"wallclock"})
	if err != nil {
		t.Fatal(err)
	}
	quiet := RenderText(result, false)
	verbose := RenderText(result, true)
	if !strings.Contains(quiet, "faultlint:") {
		t.Errorf("no summary line:\n%s", quiet)
	}
	if strings.Contains(quiet, "suppressed)") == strings.Contains(quiet, "ignored") {
		// Suppressed findings must be counted in the summary but not listed.
		t.Logf("quiet output:\n%s", quiet)
	}
	if len(verbose) <= len(quiet) {
		t.Errorf("verbose output not longer than quiet output")
	}
	for _, d := range result.Active() {
		if !strings.Contains(quiet, d.Pos()) {
			t.Errorf("active finding %s missing from text output", d.Pos())
		}
	}
}

// TestRunRuleSubset checks unknown-rule rejection and subset selection.
func TestRunRuleSubset(t *testing.T) {
	pkg := loadFixture(t, "wallclock")
	if _, err := Run([]*Package{pkg}, []string{"nosuchrule"}); err == nil {
		t.Error("Run with unknown rule did not fail")
	}
	result, err := Run([]*Package{pkg}, []string{"rawrand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Diagnostics) != 0 {
		t.Errorf("rawrand over the wallclock fixture found %d diagnostics, want 0",
			len(result.Diagnostics))
	}
}

// TestLoadSkipsNonPackageDirs checks the ./... expansion skips testdata and
// hidden trees.
func TestLoadSkipsNonPackageDirs(t *testing.T) {
	pkgs, err := Load(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(./...) from internal/faultlint = %d packages, want just this one", len(pkgs))
	}
	if pkgs[0].Name != "faultlint" {
		t.Errorf("loaded package %q, want faultlint", pkgs[0].Name)
	}
}

// TestAnalyzersHaveDocsAndClasses guards the suite's self-description, which
// cmd/faultlint -list prints.
func TestAnalyzersHaveDocsAndClasses(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
		if _, ok := LookupAnalyzer(a.Name); !ok {
			t.Errorf("LookupAnalyzer(%s) failed", a.Name)
		}
	}
	if _, ok := LookupAnalyzer("nosuchrule"); ok {
		t.Error("LookupAnalyzer accepted an unknown name")
	}
}

// TestStubImporterTolerance: loading a package whose imports cannot be
// resolved must not error; type information degrades, syntax survives.
func TestStubImporterTolerance(t *testing.T) {
	pkg, err := LoadDir(token.NewFileSet(), filepath.Join("testdata", "envsite"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files parsed")
	}
	// The fixture imports "sim/faultinject", which does not exist on disk;
	// the stub importer must have satisfied it rather than failing the load.
	if pkg.Name != "envsite" {
		t.Errorf("package name = %q", pkg.Name)
	}
}

// TestAdvisoryGating: envsite findings are advisory — present in the report
// and in Active(), absent from Gating() — while defect-rule findings gate.
func TestAdvisoryGating(t *testing.T) {
	pkg := loadFixture(t, "envsite")
	result, err := Run([]*Package{pkg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var advisories, gating int
	for _, d := range result.Diagnostics {
		if d.Advisory != (d.Rule == "envsite") {
			t.Errorf("%s: rule %s advisory=%v", d.Pos(), d.Rule, d.Advisory)
		}
		if d.Advisory {
			advisories++
		}
	}
	gating = len(result.Gating())
	if advisories == 0 {
		t.Fatal("no advisory envsite findings over the envsite fixture")
	}
	if len(result.Active()) != advisories+gating {
		t.Errorf("Active()=%d, advisory=%d + gating=%d", len(result.Active()), advisories, gating)
	}
	for _, d := range result.Gating() {
		if d.Advisory || d.Suppressed {
			t.Errorf("Gating() returned advisory/suppressed finding %s [%s]", d.Pos(), d.Rule)
		}
	}
}
