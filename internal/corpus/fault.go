// Package corpus encodes the study's fault dataset: the 139 unique faults of
// Chandra & Chen (50 Apache, 45 GNOME, 44 MySQL) with their oracle
// classifications.
//
// Every environment-dependent fault (14 nontransient + 12 transient) is
// transcribed from the paper's §5.1–5.3 enumerations, as are the
// representative environment-independent faults the paper describes. The
// remaining environment-independent records — which the paper counts but does
// not individually describe for space — are synthesized deterministically
// from defect-type templates drawn from the same populations the paper cites
// (boundary conditions, missing initialization, bad declarations, pointer
// errors). Release and date assignments follow the shapes of Figures 1–3:
// roughly constant environment-independent share per release, totals growing
// with newer releases (GNOME dipping mid-study, the last MySQL release small
// because it was new).
package corpus

import (
	"fmt"
	"time"

	"faultstudy/internal/report"
	"faultstudy/internal/taxonomy"
)

// Fault is one classified fault from the study.
type Fault struct {
	// ID is the stable corpus identifier, e.g. "apache/edt-dns-error".
	ID string `json:"id"`
	// App is the application.
	App taxonomy.Application `json:"app"`
	// Class is the oracle classification (the study authors' judgment).
	Class taxonomy.FaultClass `json:"class"`
	// Trigger is the environmental trigger kind.
	Trigger taxonomy.TriggerKind `json:"trigger"`
	// Component is the module the fault lives in.
	Component string `json:"component"`
	// Release is the release the fault was reported against (Apache, MySQL)
	// or empty for GNOME, which Figure 2 buckets by time instead.
	Release string `json:"release,omitempty"`
	// Filed is the report date.
	Filed time.Time `json:"filed"`
	// Synopsis is the one-line summary.
	Synopsis string `json:"synopsis"`
	// Description is the report body.
	Description string `json:"description"`
	// HowToRepeat is the reproduction recipe.
	HowToRepeat string `json:"howToRepeat"`
	// Fix describes how the underlying bug was fixed, when known.
	Fix string `json:"fix,omitempty"`
	// Severity is the tracker severity.
	Severity taxonomy.Severity `json:"severity"`
	// Symptom is the failure mode.
	Symptom taxonomy.Symptom `json:"symptom"`
	// Mechanism names the concrete seeded-bug mechanism in the simulated
	// applications (internal/faultinject registry key) used by the recovery
	// experiments.
	Mechanism string `json:"mechanism"`
}

// Report converts the fault to a normalized bug report (the canonical report
// the mining pipeline should recover for this fault).
func (f *Fault) Report() *report.Report {
	return &report.Report{
		ID:             f.ID,
		App:            f.App,
		Component:      f.Component,
		Release:        f.Release,
		Synopsis:       f.Synopsis,
		Description:    f.Description,
		HowToRepeat:    f.HowToRepeat,
		FixDescription: f.Fix,
		Severity:       f.Severity,
		Symptom:        f.Symptom,
		Filed:          f.Filed,
		Production:     true,
	}
}

// All returns every fault in the corpus: Apache, then GNOME, then MySQL.
func All() []*Fault {
	out := make([]*Fault, 0, 139)
	out = append(out, Apache()...)
	out = append(out, Gnome()...)
	out = append(out, MySQL()...)
	return out
}

// ByID returns the fault with the given corpus ID.
func ByID(id string) (*Fault, bool) {
	for _, f := range All() {
		if f.ID == id {
			return f, true
		}
	}
	return nil, false
}

// ByApp returns the faults of one application.
func ByApp(app taxonomy.Application) []*Fault {
	switch app {
	case taxonomy.AppApache:
		return Apache()
	case taxonomy.AppGnome:
		return Gnome()
	case taxonomy.AppMySQL:
		return MySQL()
	default:
		return nil
	}
}

// CountByClass tallies faults per class.
func CountByClass(faults []*Fault) map[taxonomy.FaultClass]int {
	out := make(map[taxonomy.FaultClass]int, 3)
	for _, f := range faults {
		out[f.Class]++
	}
	return out
}

// validateSet checks structural invariants of a per-app fault list; used by
// tests and by the generators' own self-checks.
func validateSet(faults []*Fault) error {
	seen := make(map[string]bool, len(faults))
	for _, f := range faults {
		if f.ID == "" {
			return fmt.Errorf("corpus: fault with empty ID (%q)", f.Synopsis)
		}
		if seen[f.ID] {
			return fmt.Errorf("corpus: duplicate fault ID %s", f.ID)
		}
		seen[f.ID] = true
		if !f.Class.Valid() {
			return fmt.Errorf("corpus: %s has invalid class", f.ID)
		}
		if f.Trigger.DefaultClass() != f.Class {
			return fmt.Errorf("corpus: %s trigger %s implies %s, labeled %s",
				f.ID, f.Trigger, f.Trigger.DefaultClass(), f.Class)
		}
		if f.Mechanism == "" {
			return fmt.Errorf("corpus: %s has no mechanism", f.ID)
		}
		if f.Filed.IsZero() {
			return fmt.Errorf("corpus: %s has no filing date", f.ID)
		}
	}
	return nil
}
