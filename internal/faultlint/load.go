package faultlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, and (best-effort) type-checked package.
type Package struct {
	// Dir is the directory the files were read from.
	Dir string
	// Name is the package clause name.
	Name string
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// FileNames maps each *ast.File to the path it was parsed from.
	FileNames map[*ast.File]string
	// Fset is the file set the files were parsed into.
	Fset *token.FileSet
	// Info carries the best-effort type information (Defs, Uses, Types).
	// Imports resolve through a stub importer, so cross-package selections
	// are unresolved; package-local objects and constants are reliable.
	Info *types.Info
	// TypeErrors collects the (expected, tolerated) type-check errors.
	TypeErrors []error

	// consts maps package-level constant names to their string literal
	// values, as a syntactic fallback when type info is unavailable.
	consts map[string]string
}

// stubImporter satisfies go/types.Importer by fabricating an empty package
// for every import path. The type checker then records package-name uses and
// tolerates (via the soft error handler) the unresolved member lookups. This
// keeps faultlint hermetic: no export data, no module resolution, no go
// command.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.pkgs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	// "math/rand/v2"-style paths name the package after the parent element.
	// A bare version-shaped path ("v8") has no parent and keeps its own name.
	if strings.HasPrefix(name, "v") && len(name) > 1 && name[1] >= '0' && name[1] <= '9' &&
		len(path) > len(name) {
		trimmed := path[:len(path)-len(name)-1]
		if i := strings.LastIndexByte(trimmed, '/'); i >= 0 {
			name = trimmed[i+1:]
		} else {
			name = trimmed
		}
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	if si.pkgs == nil {
		si.pkgs = make(map[string]*types.Package)
	}
	si.pkgs[path] = p
	return p, nil
}

// LoadDir parses and best-effort type-checks the non-test Go files of one
// directory as a single package. Directories with no Go files return
// (nil, nil).
func LoadDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("faultlint: read %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	pkg := &Package{
		Dir:       dir,
		Fset:      fset,
		FileNames: make(map[*ast.File]string, len(names)),
		consts:    make(map[string]string),
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("faultlint: parse %s: %w", path, err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		if f.Name.Name != pkg.Name {
			// Mixed-package directory (rare outside GOPATH-era layouts):
			// keep the majority clause, skip strays.
			continue
		}
		pkg.Files = append(pkg.Files, f)
		pkg.FileNames[f] = path
	}
	pkg.typecheck()
	pkg.collectConsts()
	return pkg, nil
}

// typecheck runs go/types in tolerant mode with stub imports.
func (p *Package) typecheck() {
	p.Info = &types.Info{
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{
		Importer:         &stubImporter{},
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	// The checker returns an error when any soft error occurred; that is
	// expected with stub imports, so only the collected Info matters.
	_, _ = conf.Check(p.Dir, p.Fset, p.Files, p.Info)
}

// collectConsts records package-level string constants syntactically so
// mechanism keys resolve even where type checking gave up.
func (p *Package) collectConsts() {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					if lit, ok := vs.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if v, err := strconv.Unquote(lit.Value); err == nil {
							p.consts[name.Name] = v
						}
					}
				}
			}
		}
	}
}

// Load expands the patterns (plain directories or "dir/..." trees) relative
// to root and loads every package found. Hidden directories, testdata,
// and vendor trees are skipped.
func Load(root string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset := token.NewFileSet()
	seen := make(map[string]bool)
	var pkgs []*Package
	addDir := func(dir string) error {
		clean := filepath.Clean(dir)
		if seen[clean] {
			return nil
		}
		seen[clean] = true
		pkg, err := LoadDir(fset, clean)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			if err := addDir(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "node_modules") {
				return filepath.SkipDir
			}
			return addDir(path)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	return pkgs, nil
}
