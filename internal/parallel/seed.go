package parallel

// SplitMix64 is the 64-bit mixing generator from Steele, Lea & Flood,
// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014) — the
// standard way to split one root seed into statistically independent
// per-shard streams. It is tiny, allocation-free, and passes BigCrush when
// used as a stepper, which is far more than the experiment engine needs:
// here it only has to guarantee that shard i's seed is a pure function of
// (root, i), so any worker can compute it without coordination.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 seeds a stepper.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

// mix64 is SplitMix64's output finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive returns the seed for shard index of the stream rooted at root. It
// is a pure function — no stepper state — so shard seeds can be computed in
// any order by any worker and always agree: Derive(root, i) is the i-th
// element of the SplitMix64 stream seeded with root.
func Derive(root int64, index uint64) int64 {
	// Jump the stepper directly to position index+1: state after k steps is
	// seed + k*gamma, so no loop is needed.
	const gamma = 0x9e3779b97f4a7c15
	return int64(mix64(uint64(root) + (index+1)*gamma))
}

// Stream hands out per-shard seeds derived from one root. The zero value is
// the stream rooted at 0. Stream is stateless and safe for concurrent use:
// Seed(i) always returns Derive(root, i).
type Stream struct {
	// Root is the root seed the per-shard seeds derive from.
	Root int64
}

// Seed returns shard i's seed.
func (s Stream) Seed(i int) int64 { return Derive(s.Root, uint64(i)) }
