// Package rawrand is a fixture: draws from the global math/rand source,
// against the seeded-generator shape that must not fire.
package rawrand

import "math/rand"

func roll() int {
	return rand.Intn(6) // want EDT
}

func noise() float64 {
	return rand.Float64() // want EDT
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}
