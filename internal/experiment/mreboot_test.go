package experiment

import (
	"bytes"
	"strings"
	"testing"

	"faultstudy/internal/taxonomy"
)

// mrebootDump renders everything a MREBOOT run produces: the report and the
// telemetry trace, timeline, and metric dumps.
func mrebootDump(t *testing.T, workers int) string {
	t.Helper()
	tel := NewTelemetry()
	rep, err := RunMReboot(MRebootConfig{Seed: 42, Telemetry: tel, Workers: workers})
	if err != nil {
		t.Fatalf("RunMReboot(workers=%d): %v", workers, err)
	}
	var b bytes.Buffer
	b.WriteString(rep.String())
	if err := tel.WriteTrace(&b); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := tel.WriteTimeline(&b); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// TestMRebootWorkerInvariance is the determinism contract: every report,
// trace, timeline, and metrics dump of the MREBOOT sweep is byte-identical
// at 1, 2, and 8 workers.
func TestMRebootWorkerInvariance(t *testing.T) {
	serial := mrebootDump(t, 1)
	for _, workers := range []int{2, 8} {
		if got := mrebootDump(t, workers); got != serial {
			t.Fatalf("MREBOOT output at %d workers differs from serial run", workers)
		}
	}
}

// TestMRebootGate runs the sweep once and asserts the CI gate plus the
// mechanics behind it: microreboot strictly beats process restart on
// EI requests lost, repairs faster wherever both recovered, reboots
// components only under the microreboot policy, and is the only policy
// that serves anything during an outage.
func TestMRebootGate(t *testing.T) {
	rep, err := RunMReboot(MRebootConfig{Seed: 42, Workers: 0})
	if err != nil {
		t.Fatalf("RunMReboot: %v", err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(rep.Arms) != len(Registry().Keys())*len(MRebootPolicies()) {
		t.Fatalf("arms = %d, want mechanisms x policies", len(rep.Arms))
	}

	ei := taxonomy.ClassEnvIndependent
	microLost, _ := rep.LostBy(ei, "microreboot")
	restartLost, _ := rep.LostBy(ei, "restart")
	if microLost >= restartLost {
		t.Fatalf("EI requests lost: microreboot %d, restart %d — want strict win", microLost, restartLost)
	}

	var microOutageServed, procOutageServed, microReboots, procReboots int
	for _, a := range rep.Arms {
		if a.Policy == "microreboot" {
			microOutageServed += a.OutageServed
			microReboots += a.Reboots
		} else {
			procOutageServed += a.OutageServed
			procReboots += a.Reboots
		}
		if a.Requests < mrebootBgOps {
			t.Fatalf("%s x %s: %d requests, want >= %d scheduled arrivals",
				a.Mechanism, a.Policy, a.Requests, mrebootBgOps)
		}
		if a.Served+a.Lost > a.Requests {
			t.Fatalf("%s x %s: served %d + lost %d > requests %d",
				a.Mechanism, a.Policy, a.Served, a.Lost, a.Requests)
		}
	}
	if microOutageServed == 0 {
		t.Fatal("microreboot arms served nothing during outages — sibling serving is broken")
	}
	if procOutageServed != 0 {
		t.Fatalf("process-level arms served %d requests during outages, want 0", procOutageServed)
	}
	if microReboots == 0 {
		t.Fatal("microreboot arms performed no component reboots")
	}
	if procReboots != 0 {
		t.Fatalf("process-level arms performed %d component reboots, want 0", procReboots)
	}

	for _, class := range taxonomy.Classes() {
		micro, restart := rep.MTTRBy(class, "microreboot"), rep.MTTRBy(class, "restart")
		if micro > 0 && restart > 0 && micro >= restart {
			t.Fatalf("%s MTTR: microreboot %s, restart %s — want strictly faster", class.Short(), micro, restart)
		}
	}

	s := rep.String()
	for _, want := range []string{"MREBOOT sweep", "microreboot", "restart", "rollback", "mttr", "Headline"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

// TestMRebootTelemetry asserts the sweep emits the documented metric family
// and episode traces.
func TestMRebootTelemetry(t *testing.T) {
	tel := NewTelemetry()
	if _, err := RunMReboot(MRebootConfig{Seed: 42, Telemetry: tel, Workers: 0}); err != nil {
		t.Fatalf("RunMReboot: %v", err)
	}
	if len(tel.Episodes()) == 0 {
		t.Fatal("no episodes recorded")
	}
	var prom bytes.Buffer
	if err := tel.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, metric := range []string{
		MetricMRebootEpisodes, MetricMRebootRequestsLost,
		MetricMRebootMTTRSeconds, MetricMRebootComponentReboots,
	} {
		if !strings.Contains(prom.String(), metric) {
			t.Fatalf("metrics dump missing %s", metric)
		}
	}
	// Component attribution must reach the trace: some recorded action span
	// names the rebooted component.
	var attributed bool
	for _, ep := range tel.Episodes() {
		for _, sp := range ep.Spans {
			if sp.Kind == "action" && sp.Component != "" {
				attributed = true
			}
		}
	}
	if !attributed {
		t.Fatal("no action span carries a component attribution")
	}
}

// TestSpliceArrivals pins the schedule shape: every scenario op appears once,
// in order, at deterministic positions, with background arrivals filling the
// rest.
func TestSpliceArrivals(t *testing.T) {
	drv, sc, err := buildComponentized("httpd/null-deref", 1)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	arrivals := spliceArrivals(drv, sc.Ops, mrebootBgOps)
	if len(arrivals) != mrebootBgOps+len(sc.Ops) {
		t.Fatalf("arrivals = %d, want %d", len(arrivals), mrebootBgOps+len(sc.Ops))
	}
	var triggers []string
	for _, a := range arrivals {
		if a.trigger {
			triggers = append(triggers, a.name)
		}
	}
	if len(triggers) != len(sc.Ops) {
		t.Fatalf("triggers = %d, want %d", len(triggers), len(sc.Ops))
	}
	for i, op := range sc.Ops {
		if triggers[i] != op.Name {
			t.Fatalf("trigger %d = %q, want %q (order must be preserved)", i, triggers[i], op.Name)
		}
	}
}
