package supervise

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"faultstudy/internal/apps/desktop"
	"faultstudy/internal/apps/httpd"
	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/component"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/taxonomy"
)

// Interface compliance: every simulated application supports degraded mode.
var (
	_ Degradable = (*httpd.Server)(nil)
	_ Degradable = (*sqldb.Server)(nil)
	_ Degradable = (*desktop.Desktop)(nil)
)

// httpdUnder builds an httpd server with one active fault mechanism and
// returns it together with the mechanism's staged scenario.
func httpdUnder(t *testing.T, mech string, seed int64) (*httpd.Server, faultinject.Scenario) {
	t.Helper()
	env := simenv.New(seed, simenv.WithFDLimit(64), simenv.WithProcLimit(192))
	srv := httpd.New(env, faultinject.NewSet(mech), httpd.Config{})
	sc, ok := httpd.Scenarios(srv)[mech]
	if !ok {
		t.Fatalf("no scenario for %s", mech)
	}
	return srv, sc
}

// wrapOps converts scenario ops into supervised ops of the given kind.
func wrapOps(ops []faultinject.Op, kind OpKind) []Op {
	out := make([]Op, 0, len(ops))
	for _, op := range ops {
		out = append(out, Op{Name: op.Name, Kind: kind, Do: op.Do})
	}
	return out
}

func TestBackoffScheduleShape(t *testing.T) {
	cfg := Config{BackoffBase: time.Second, BackoffCap: 8 * time.Second, BackoffJitter: -1}
	got := BackoffSchedule(cfg, 6)
	want := []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second,
		8 * time.Second, 8 * time.Second, 8 * time.Second, // capped
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delay[%d] = %s, want %s", i, got[i], want[i])
		}
	}

	// With jitter: every delay lies in [pure, pure*(1+jitter)] and the
	// sequence is reproducible from the seed.
	cfg = Config{BackoffBase: time.Second, BackoffCap: 8 * time.Second, BackoffJitter: 0.5, Seed: 42}
	a := BackoffSchedule(cfg, 6)
	b := BackoffSchedule(cfg, 6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not reproducible at %d: %s vs %s", i, a[i], b[i])
		}
		lo, hi := want[i], want[i]+want[i]/2
		if a[i] < lo || a[i] > hi {
			t.Errorf("jittered delay[%d] = %s outside [%s, %s]", i, a[i], lo, hi)
		}
	}
}

// TestRetryInPlaceSurvivesTransientRace drives the EDT client-abort race: the
// staged losing interleaving kills the server once, and the first ladder rung
// (retry with a perturbed schedule) must recover it without escalating.
func TestRetryInPlaceSurvivesTransientRace(t *testing.T) {
	srv, sc := httpdUnder(t, httpd.MechClientAbort, 3)
	sc.Stage()
	sup := New(srv, Config{Seed: 3})
	rep, err := sup.Run(wrapOps(sc.Ops, OpRead))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.OpsFailed != 0 || rep.OpsShed != 0 {
		t.Fatalf("ops failed=%d shed=%d, want 0/0\n%s", rep.OpsFailed, rep.OpsShed, rep)
	}
	if rep.Recovered != 1 {
		t.Errorf("recovered = %d, want 1", rep.Recovered)
	}
	if rep.FirstFailureOp != 1 {
		t.Errorf("first failure op = %d, want 1", rep.FirstFailureOp)
	}
	ms := rep.Mechanisms[httpd.MechClientAbort]
	if ms == nil || ms.Retries != 1 || ms.Recoveries != 1 {
		t.Errorf("mech stats = %+v, want 1 retry / 1 recovery", ms)
	}
	if len(rep.Escalations) != 0 {
		t.Errorf("escalations = %v, want none (first rung must suffice)", rep.Escalations)
	}
	if rep.Degraded {
		t.Error("transient race must not degrade the service")
	}
	for _, bs := range rep.Breakers {
		if bs.State != BreakerClosed {
			t.Errorf("breaker %s = %s, want closed", bs.Mechanism, bs.State)
		}
	}
}

// TestBreakerOpensOnEnvironmentIndependentFault drives the EI valist-reuse
// crash: every state-preserving retry recurs, so the failed-recovery streak
// reaches the breaker threshold, the breaker opens, and later occurrences
// fast-fail without spending retries.
func TestBreakerOpensOnEnvironmentIndependentFault(t *testing.T) {
	srv, sc := httpdUnder(t, httpd.MechValistReuse, 5)
	cfg := Config{Seed: 5, BreakerThreshold: 3, RungAttempts: 2}
	sup := New(srv, cfg)
	// The same deterministic-crash op three times.
	op := wrapOps(sc.Ops, OpRead)[0]
	rep, err := sup.Run([]Op{op, op, op})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ms := rep.Mechanisms[httpd.MechValistReuse]
	if ms == nil {
		t.Fatal("no mechanism stats recorded")
	}
	if ms.BreakerOpens != 1 {
		t.Errorf("breaker opens = %d, want 1", ms.BreakerOpens)
	}
	if ms.Retries != 3 {
		t.Errorf("retries = %d, want 3 (threshold reached within the budget)", ms.Retries)
	}
	if ms.FastFails != 2 {
		t.Errorf("fast fails = %d, want 2 (ops after the breaker opened)", ms.FastFails)
	}
	if ms.Recoveries != 0 {
		t.Errorf("recoveries = %d, want 0", ms.Recoveries)
	}
	if rep.OpsFailed != 3 {
		t.Errorf("ops failed = %d, want 3", rep.OpsFailed)
	}
	var open bool
	for _, bs := range rep.Breakers {
		if bs.Mechanism == httpd.MechValistReuse && bs.State == BreakerOpen {
			open = true
		}
	}
	if !open {
		t.Errorf("final breaker states = %+v, want %s open", rep.Breakers, httpd.MechValistReuse)
	}
	if rep.Degraded {
		t.Error("breaker must stop the ladder before degraded mode")
	}
}

// TestFullDiskEscalatesToDegraded drives the EDN fs-full condition: no rung
// can un-fill a disk another tenant filled, so the ladder climbs to degraded
// mode, where reads are served (logging suspended) and writes are shed.
func TestFullDiskEscalatesToDegraded(t *testing.T) {
	srv, sc := httpdUnder(t, httpd.MechFSFull, 7)
	sc.Stage()
	read := Op{Name: "GET /index.html", Kind: OpRead, Do: sc.Ops[0].Do}
	write := Op{Name: "GET /proxy/page", Kind: OpWrite, Do: func() error {
		_, err := srv.Serve(httpd.Request{Method: "GET", Path: "/proxy/page"})
		return err
	}}
	sup := New(srv, Config{Seed: 7})
	rep, err := sup.Run([]Op{read, read, write, read, write, read})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Degraded || rep.DegradedAtOp != 1 {
		t.Fatalf("degraded=%v at op %d, want degraded at op 1\n%s", rep.Degraded, rep.DegradedAtOp, rep)
	}
	if rep.OpsFailed != 0 {
		t.Errorf("ops failed = %d, want 0 (degraded mode keeps serving reads)\n%s", rep.OpsFailed, rep)
	}
	if rep.OpsShed != 2 {
		t.Errorf("ops shed = %d, want 2 (both proxy writes)", rep.OpsShed)
	}
	if rep.OpsOK != 4 {
		t.Errorf("ops ok = %d, want 4 (every read served)", rep.OpsOK)
	}
	if !rep.Served() {
		t.Error("Served() = false, want true: nothing was lost")
	}
	if rep.Healthy() {
		t.Error("Healthy() = true, want false: service is degraded")
	}
	// The ladder was walked in full: every intermediate rung was tried.
	for _, rung := range []Rung{RungMicroreboot, RungRestore, RungRestart, RungDegraded} {
		if rep.Escalations[rung] == 0 {
			t.Errorf("escalations[%s] = 0, want > 0", rung)
		}
	}
	if !srv.Degraded() {
		t.Error("server not left in degraded mode")
	}
}

// TestDegradedRetryFailureReverts drives an EI crash all the way up the
// ladder with an unreachable breaker threshold: degraded mode is entered, the
// degraded retry still fails (the fault is not a resource condition), so
// degraded mode is reverted, the breaker force-opens, and full service
// resumes for the rest of the workload.
func TestDegradedRetryFailureReverts(t *testing.T) {
	srv, sc := httpdUnder(t, httpd.MechValistReuse, 11)
	sup := New(srv, Config{Seed: 11, BreakerThreshold: 99, RungAttempts: 1})
	bad := wrapOps(sc.Ops, OpRead)[0]
	good := Op{Name: "GET /index.html", Kind: OpRead, Do: func() error {
		_, err := srv.Serve(httpd.Request{Method: "GET", Path: "/index.html"})
		return err
	}}
	rep, err := sup.Run([]Op{bad, good, bad, good})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Degraded {
		t.Error("degraded mode should have been reverted (the degraded retry failed)")
	}
	if srv.Degraded() {
		t.Error("server left degraded")
	}
	ms := rep.Mechanisms[httpd.MechValistReuse]
	if ms == nil || ms.BreakerOpens != 1 {
		t.Errorf("mech stats = %+v, want exactly 1 (forced) breaker open", ms)
	}
	if ms != nil && ms.FastFails != 1 {
		t.Errorf("fast fails = %d, want 1 (second bad op)", ms.FastFails)
	}
	if rep.OpsFailed != 2 {
		t.Errorf("ops failed = %d, want 2 (both bad ops)", rep.OpsFailed)
	}
	if rep.OpsOK != 2 {
		t.Errorf("ops ok = %d, want 2 (good ops served at full service)", rep.OpsOK)
	}
}

// TestBackoffTraceMatchesSchedule asserts the supervisor's first recovery
// episode sleeps exactly the delays BackoffSchedule predicts for its config.
func TestBackoffTraceMatchesSchedule(t *testing.T) {
	var delays []time.Duration
	cfg := Config{Seed: 21, BreakerThreshold: 3, RungAttempts: 2,
		Trace: func(ev Event) {
			if ev.Kind == EventBackoff {
				delays = append(delays, ev.Delay)
			}
		}}
	srv, sc := httpdUnder(t, httpd.MechValistReuse, 21)
	sup := New(srv, cfg)
	rep, err := sup.Run(wrapOps(sc.Ops, OpRead))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := BackoffSchedule(Config{Seed: 21}, len(delays))
	if len(delays) == 0 {
		t.Fatal("no backoff events traced")
	}
	var total time.Duration
	for i := range delays {
		if delays[i] != want[i] {
			t.Errorf("backoff[%d] = %s, want %s", i, delays[i], want[i])
		}
		total += delays[i]
	}
	if rep.BackoffTotal != total {
		t.Errorf("BackoffTotal = %s, want %s", rep.BackoffTotal, total)
	}
}

// stubApp is a minimal Application for watchdog tests.
type stubApp struct {
	env     *simenv.Env
	running bool
}

func newStubApp(seed int64) *stubApp         { return &stubApp{env: simenv.New(seed)} }
func (a *stubApp) Name() string              { return "stub" }
func (a *stubApp) Env() *simenv.Env          { return a.env }
func (a *stubApp) Running() bool             { return a.running }
func (a *stubApp) Start() error              { a.running = true; return nil }
func (a *stubApp) Stop()                     { a.running = false }
func (a *stubApp) Snapshot() ([]byte, error) { return []byte("{}"), nil }
func (a *stubApp) Restore([]byte) error      { a.running = true; return nil }
func (a *stubApp) Reset() error              { a.running = true; return nil }

// TestWatchdogChargesHangSymptom: a failure reporting the hang symptom
// charges the virtual clock with the watchdog timeout — the modeled time the
// application sat unresponsive — before recovery proceeds.
func TestWatchdogChargesHangSymptom(t *testing.T) {
	app := newStubApp(31)
	const mech = "stub/hang"
	fails := 1
	op := Op{Name: "hang-once", Kind: OpRead, Do: func() error {
		if fails > 0 {
			fails--
			return faultinject.Fail(mech, taxonomy.SymptomHang, "stuck in a loop")
		}
		return nil
	}}
	wd := 45 * time.Second
	sup := New(app, Config{Seed: 31, WatchdogTimeout: wd})
	rep, err := sup.Run([]Op{op})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.OpsFailed != 0 || rep.Recovered != 1 {
		t.Fatalf("failed=%d recovered=%d, want 0/1\n%s", rep.OpsFailed, rep.Recovered, rep)
	}
	ms := rep.Mechanisms[mech]
	if ms == nil || ms.WatchdogTimeouts != 1 {
		t.Errorf("mech stats = %+v, want 1 watchdog timeout", ms)
	}
	if got := app.env.Monotonic(); got < wd {
		t.Errorf("virtual clock advanced %s, want >= %s (the hang was charged)", got, wd)
	}
}

// TestWallClockWatchdogAbandonsBlockedOp: an op that genuinely blocks is
// abandoned after WallTimeout, every retry times out too, the retry budget
// trips the crash-loop guard, and the degraded retry failure reverts degraded
// mode — the op is lost but the supervisor survives.
func TestWallClockWatchdogAbandonsBlockedOp(t *testing.T) {
	app := newStubApp(37)
	block := make(chan struct{})
	defer close(block)
	op := Op{Name: "blocked", Kind: OpRead, Do: func() error {
		<-block
		return nil
	}}
	sup := New(app, Config{Seed: 37, WallTimeout: 25 * time.Millisecond, RetryBudget: 2, RungAttempts: 1})
	rep, err := sup.Run([]Op{op})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.OpsFailed != 1 {
		t.Errorf("ops failed = %d, want 1\n%s", rep.OpsFailed, rep)
	}
	ms := rep.Mechanisms[MechWatchdog]
	if ms == nil || ms.WatchdogTimeouts == 0 {
		t.Fatalf("mech stats = %+v, want wall watchdog timeouts", ms)
	}
	if rep.CrashLoopTrips != 1 {
		t.Errorf("crash loop trips = %d, want 1 (retry budget of 2 exhausted)", rep.CrashLoopTrips)
	}
	if rep.Degraded {
		t.Error("degraded mode should have been reverted after the degraded retry also blocked")
	}
	var open bool
	for _, bs := range rep.Breakers {
		if bs.Mechanism == MechWatchdog && bs.State == BreakerOpen {
			open = true
		}
	}
	if !open {
		t.Errorf("breakers = %+v, want %s open", rep.Breakers, MechWatchdog)
	}
}

// TestPanicIsSupervised: a panicking op is converted into a failure and
// survives supervision instead of unwinding the harness.
func TestPanicIsSupervised(t *testing.T) {
	app := newStubApp(41)
	panics := 1
	op := Op{Name: "panicky", Kind: OpRead, Do: func() error {
		if panics > 0 {
			panics--
			panic("boom")
		}
		return nil
	}}
	sup := New(app, Config{Seed: 41})
	rep, err := sup.Run([]Op{op})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Recovered != 1 || rep.OpsFailed != 0 {
		t.Fatalf("recovered=%d failed=%d, want 1/0\n%s", rep.Recovered, rep.OpsFailed, rep)
	}
	if ms := rep.Mechanisms[MechPanic]; ms == nil || ms.Failures != 1 {
		t.Errorf("mech stats = %+v, want 1 panic failure", ms)
	}
}

// TestBreakerHalfOpenTrialCloses: after the cooldown an open breaker admits
// one trial episode; a successful recovery closes it again.
func TestBreakerHalfOpenTrialCloses(t *testing.T) {
	app := newStubApp(43)
	const mech = "stub/heals-later"
	// The fault fails a fixed number of executions, then heals: 3 in the
	// first run (initial + two retries, opening the breaker at threshold 2),
	// 1 fast-failed initial in the second run, and 1 more initial failure in
	// the third run whose half-open trial retry then succeeds.
	failsLeft := 5
	op := Op{Name: "heals-later", Kind: OpRead, Do: func() error {
		if failsLeft > 0 {
			failsLeft--
			return faultinject.Fail(mech, taxonomy.SymptomError, "still broken")
		}
		return nil
	}}
	cooldown := 10 * time.Minute
	sup := New(app, Config{Seed: 43, BreakerThreshold: 2, RungAttempts: 1, BreakerCooldown: cooldown})
	// First run: breaker opens.
	if rep, err := sup.Run([]Op{op}); err != nil || rep.Mechanisms[mech].BreakerOpens != 1 {
		t.Fatalf("first run: err=%v report=\n%s", err, rep)
	}
	// Second run on the same supervisor, before cooldown: fast-fail.
	rep, err := sup.Run([]Op{op})
	if err != nil || rep.Mechanisms[mech].FastFails != 1 {
		t.Fatalf("pre-cooldown run: err=%v report=\n%s", err, rep)
	}
	// Let the cooldown pass: the next failure is admitted as a half-open
	// trial, and its successful recovery closes the breaker.
	app.env.Advance(cooldown)
	rep, err = sup.Run([]Op{op})
	if err != nil {
		t.Fatalf("post-cooldown run: %v", err)
	}
	if rep.OpsOK != 1 || rep.Recovered != 1 {
		t.Errorf("post-cooldown ok=%d recovered=%d, want 1/1\n%s", rep.OpsOK, rep.Recovered, rep)
	}
	for _, bs := range rep.Breakers {
		if bs.Mechanism == mech && bs.State != BreakerClosed {
			t.Errorf("breaker %s = %s, want closed after successful trial", mech, bs.State)
		}
	}
}

// TestRunDeterminism: identical seeds produce identical reports.
func TestRunDeterminism(t *testing.T) {
	render := func() string {
		srv, sc := httpdUnder(t, httpd.MechFSFull, 53)
		sc.Stage()
		sup := New(srv, Config{Seed: 53})
		rep, err := sup.Run(wrapOps(sc.Ops, OpRead))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return rep.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("two identical runs diverged:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

// TestSqldbDegradedReadOnly: the database's degraded mode rejects writes with
// ErrReadOnly and keeps answering SELECTs.
func TestSqldbDegradedReadOnly(t *testing.T) {
	env := simenv.New(61)
	db := sqldb.New(env, faultinject.NewSet())
	if err := db.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer db.Stop()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE t (id INT, name TEXT)")
	mustExec("INSERT INTO t VALUES (1, 'a')")
	db.SetDegraded(true)
	if _, err := db.Exec("INSERT INTO t VALUES (2, 'b')"); !errors.Is(err, sqldb.ErrReadOnly) {
		t.Errorf("degraded INSERT err = %v, want ErrReadOnly", err)
	}
	rs, err := db.Exec("SELECT id, name FROM t")
	if err != nil {
		t.Fatalf("degraded SELECT: %v", err)
	}
	if len(rs.Rows) != 1 {
		t.Errorf("degraded SELECT rows = %d, want 1", len(rs.Rows))
	}
	db.SetDegraded(false)
	mustExec("INSERT INTO t VALUES (2, 'b')")
}

// TestHttpdDegradedServesOnFullDisk: with the disk full and logging the only
// blocked path, degraded mode serves static content that full service cannot.
func TestHttpdDegradedServesOnFullDisk(t *testing.T) {
	srv, sc := httpdUnder(t, httpd.MechFSFull, 67)
	sc.Stage()
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Stop()
	if _, err := srv.Serve(httpd.Request{Method: "GET", Path: "/index.html"}); err == nil {
		t.Fatal("full-service GET on a full disk should fail")
	}
	srv.SetDegraded(true)
	resp, err := srv.Serve(httpd.Request{Method: "GET", Path: "/index.html"})
	if err != nil || resp.Status != 200 {
		t.Errorf("degraded GET = (%+v, %v), want 200", resp, err)
	}
}

// TestRungAndEventNames pins the human-readable names reports rely on.
func TestRungAndEventNames(t *testing.T) {
	wantRungs := []string{"retry", "microreboot", "restore", "restart", "degraded"}
	for i, r := range Rungs() {
		if r.String() != wantRungs[i] {
			t.Errorf("rung %d = %q, want %q", i, r, wantRungs[i])
		}
	}
	if !strings.Contains((&Report{Mechanisms: map[string]*MechStats{}, Escalations: map[Rung]int{}}).String(), "Supervisor report") {
		t.Error("report header missing")
	}
}

func TestBackoffInjectedRandReproducible(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		b := newBackoff(10*time.Millisecond, 500*time.Millisecond, 0.5, seededRand(seed))
		out := make([]time.Duration, 0, 6)
		for i := 1; i <= 6; i++ {
			out = append(out, b.next(i))
		}
		return out
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	c := mk(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jittered sequences")
	}
}

func TestBackoffNilRandDisablesJitter(t *testing.T) {
	b := newBackoff(10*time.Millisecond, 500*time.Millisecond, 0.5, nil)
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	for i, w := range want {
		if got := b.next(i + 1); got != w {
			t.Errorf("attempt %d: delay %v, want exact %v (nil rng must mean no jitter)", i+1, got, w)
		}
	}
}

// TestEpisodeDurationStampedAtDecisionTime is the regression test for the
// percentile misreport: an episode's duration must be stamped when the
// supervisor reaches its verdict — after every backoff slept and every
// watchdog charge incurred — not when the last recovery action ran. An
// episode that ends mid-ladder (crash-loop trip into a shed) previously
// excluded its trailing watchdog charge from the percentile sample.
func TestEpisodeDurationStampedAtDecisionTime(t *testing.T) {
	const hangCharge = 30 * time.Second

	// Served case: one hang, one backoff, then success. The repair duration
	// must be hang + first backoff exactly.
	srv, _ := httpdUnder(t, httpd.MechNullDeref, 7) // mechanism unused; no scenario ops run
	failures := 1
	op := Op{Name: "flaky", Kind: OpRead, Do: func() error {
		if failures > 0 {
			failures--
			return faultinject.Fail("httpd/test-hang", taxonomy.SymptomHang, "wedged")
		}
		return nil
	}}
	cfg := Config{
		WatchdogTimeout: hangCharge,
		BackoffBase:     time.Second,
		BackoffJitter:   -1, // exact schedule
		RungAttempts:    1,
	}
	sup := New(srv, cfg)
	rep, err := sup.Run([]Op{op})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantServed := hangCharge + time.Second // initial hang charge + backoff(1)
	if len(rep.EpisodeDurations) != 1 || rep.EpisodeDurations[0] != wantServed {
		t.Fatalf("EpisodeDurations = %v, want [%s]", rep.EpisodeDurations, wantServed)
	}
	if len(rep.RepairDurations) != 1 || rep.RepairDurations[0] != wantServed {
		t.Fatalf("RepairDurations = %v, want [%s]", rep.RepairDurations, wantServed)
	}
	if s := rep.String(); !strings.Contains(s, "episodes: 1") || !strings.Contains(s, "MTTR (served episodes)") {
		t.Fatalf("report missing episode percentiles:\n%s", s)
	}

	// Mid-ladder case: the op always hangs and the retry budget is 1, so the
	// second budget check trips the crash loop and the write is shed at the
	// degraded rung. The episode's duration must still include the retry's
	// trailing watchdog charge: hang + backoff(1) + hang.
	srv2, _ := httpdUnder(t, httpd.MechNullDeref, 8)
	always := Op{Name: "wedged-write", Kind: OpWrite, Do: func() error {
		return faultinject.Fail("httpd/test-hang", taxonomy.SymptomHang, "wedged")
	}}
	cfg2 := cfg
	cfg2.RetryBudget = 1
	sup2 := New(srv2, cfg2)
	rep2, err := sup2.Run([]Op{always})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep2.OpsShed != 1 {
		t.Fatalf("OpsShed = %d, want 1 (crash loop should shed the write)", rep2.OpsShed)
	}
	wantShed := hangCharge + time.Second + hangCharge
	if len(rep2.EpisodeDurations) != 1 || rep2.EpisodeDurations[0] != wantShed {
		t.Fatalf("EpisodeDurations = %v, want [%s] (must include the trailing watchdog charge)",
			rep2.EpisodeDurations, wantShed)
	}
	if len(rep2.RepairDurations) != 0 {
		t.Fatalf("RepairDurations = %v, want empty (op was shed, not served)", rep2.RepairDurations)
	}
}

// TestMicrorebootTargetsFaultyComponent drives the EDN fd-exhaustion leak
// against the componentized httpd: in-place retries cannot un-leak
// descriptors, so the ladder escalates to the microreboot rung, which must
// reboot only the attributed core component — after which the retry succeeds
// because the crash-only kill closed every leaked descriptor. Sessions,
// living in the externalized store, must survive the whole run.
func TestMicrorebootTargetsFaultyComponent(t *testing.T) {
	env := simenv.New(7, simenv.WithFDLimit(16), simenv.WithProcLimit(192))
	c := httpd.Componentize(
		httpd.New(env, faultinject.NewSet(httpd.MechFDExhaustion), httpd.Config{}),
		component.NewStore())

	var actions []Event
	cfg := Config{Seed: 7, Trace: func(ev Event) {
		if ev.Kind == EventAction {
			actions = append(actions, ev)
		}
	}}
	sup := New(c, cfg)

	ops := make([]Op, 0, 40)
	for i := 0; i < 40; i++ {
		ops = append(ops, Op{Name: fmt.Sprintf("GET-/-%02d", i), Kind: OpRead, Do: func() error {
			_, err := c.Serve(httpd.Request{Method: "GET", Path: "/", Session: "alice"})
			return err
		}})
	}
	rep, err := sup.Run(ops)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.OpsFailed != 0 || rep.OpsShed != 0 {
		t.Fatalf("ops failed=%d shed=%d, want 0/0\n%s", rep.OpsFailed, rep.OpsShed, rep)
	}
	if rep.Recovered == 0 {
		t.Fatal("expected at least one recovered episode")
	}
	if rep.Escalations[RungMicroreboot] == 0 {
		t.Fatalf("escalations = %v, want microreboot reached", rep.Escalations)
	}
	for _, r := range []Rung{RungRestore, RungRestart, RungDegraded} {
		if rep.Escalations[r] != 0 {
			t.Fatalf("escalated past microreboot (%v): the component reboot must suffice", rep.Escalations)
		}
	}
	var targeted int
	for _, ev := range actions {
		if ev.Rung == RungMicroreboot {
			if ev.Component != httpd.CompCore {
				t.Fatalf("microreboot action component = %q, want %q", ev.Component, httpd.CompCore)
			}
			targeted++
		} else if ev.Component != "" {
			t.Fatalf("%s action carries component %q, want empty", ev.Rung, ev.Component)
		}
	}
	if targeted == 0 {
		t.Fatal("no microreboot action events recorded")
	}
	if got := c.Tree().Reboots(httpd.CompCore); got == 0 {
		t.Fatal("core component was never rebooted")
	}
	// Siblings were never cycled: only the attributed component rebooted.
	for _, name := range []string{httpd.CompLogger, httpd.CompCache, httpd.CompCGI, httpd.CompListener} {
		if got := c.Tree().Reboots(name); got != 0 {
			t.Fatalf("sibling %s rebooted %d times, want 0", name, got)
		}
	}
	// The session counter counted every served op: it survived each reboot.
	if got := c.SessionDepth("alice"); got != int64(rep.OpsOK) {
		t.Fatalf("session depth = %d, want %d (one per served op)", got, rep.OpsOK)
	}
}

// TestMicrorebootWidensToSubtree drives the EI null-deref crash: the first
// microreboot attempt cycles only the attributed core component, and when
// the deterministic bug recurs the rung's second attempt must widen to the
// core's dependent subtree before the ladder escalates past it.
func TestMicrorebootWidensToSubtree(t *testing.T) {
	env := simenv.New(9, simenv.WithFDLimit(64), simenv.WithProcLimit(192))
	c := httpd.Componentize(
		httpd.New(env, faultinject.NewSet(httpd.MechNullDeref), httpd.Config{}),
		component.NewStore())

	var microAttempts int
	cfg := Config{Seed: 9, RungAttempts: 2, Trace: func(ev Event) {
		if ev.Kind == EventAction && ev.Rung == RungMicroreboot {
			if ev.Component != httpd.CompCore {
				t.Errorf("microreboot component = %q, want %q", ev.Component, httpd.CompCore)
			}
			microAttempts++
		}
	}}
	sup := New(c, cfg)
	_, err := sup.Run([]Op{{Name: "GET /bug/null-deref", Kind: OpRead, Do: func() error {
		_, err := c.Serve(httpd.Request{Method: "GET", Path: "/bug/null-deref"})
		return err
	}}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if microAttempts != 2 {
		t.Fatalf("microreboot attempts = %d, want 2", microAttempts)
	}
	// Attempt 1 rebooted core alone; attempt 2 widened to the subtree, which
	// cycles core's dependents exactly once each.
	if got := c.Tree().Reboots(httpd.CompCore); got != 2 {
		t.Fatalf("core reboots = %d, want 2", got)
	}
	for _, name := range []string{httpd.CompLogger, httpd.CompCache, httpd.CompCGI, httpd.CompListener} {
		if got := c.Tree().Reboots(name); got != 1 {
			t.Fatalf("%s reboots = %d, want 1 (subtree widening only)", name, got)
		}
	}
}
