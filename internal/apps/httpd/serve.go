package httpd

import (
	"errors"
	"fmt"

	"faultstudy/internal/component"
)

// Serving-tier category names for the HTTP operation mix — the same mix
// workload.HTTPRequests generates, re-expressed as cumulative thresholds
// over a uniform draw so the open-loop schedule can carry the category
// choice as a single float.
const (
	ServeStatic   = "static"
	ServeListing  = "listing"
	ServeCGI      = "cgi"
	ServeProxy    = "proxy"
	ServeNotFound = "notfound"
)

// ServeWarm brings the server to steady state before traffic. The web
// server needs no schema or cache priming: a freshly started tree serves
// immediately, so warmup is a no-op kept for the workload.Server contract.
func (c *Componentized) ServeWarm() error { return nil }

// ServeArrival serves one open-loop arrival: u in [0, 1) picks the request
// category from the standard 70/10/10/5/5 HTTP mix, seq individualizes
// paths, and user names the session whose externalized counter the request
// advances. It returns the category served, the name of the down component
// when the request was refused mid-reboot, and the serve error.
func (c *Componentized) ServeArrival(seq, user int, u float64) (category, comp string, err error) {
	var path string
	switch {
	case u < 0.70:
		category, path = ServeStatic, "/index.html"
	case u < 0.80:
		category, path = ServeListing, "/pub/"
	case u < 0.90:
		category, path = ServeCGI, "/cgi-bin/env"
	case u < 0.95:
		category, path = ServeProxy, fmt.Sprintf("/proxy/page%d", seq%8)
	default:
		category, path = ServeNotFound, fmt.Sprintf("/missing-%d", seq)
	}
	req := Request{
		Method:  "GET",
		Path:    path,
		Session: fmt.Sprintf("u%05d", user),
	}
	_, err = c.Serve(req)
	var de *component.DownError
	if errors.As(err, &de) {
		comp = de.Component
	}
	return category, comp, err
}
