package faultlint

import (
	"strings"
)

// ignoreDirective is the comment prefix that suppresses findings:
//
//	//faultlint:ignore <rule>[,<rule>...] [reason]
//
// The directive covers diagnostics on its own line and on the line
// immediately following it, so it works both trailing and preceding:
//
//	_ = env.Disk().Truncate(log) //faultlint:ignore envcheck best-effort rotate
//
//	//faultlint:ignore wallclock CLI progress timing only
//	start := time.Now()
const ignoreDirective = "faultlint:ignore"

// suppression is one parsed ignore comment.
type suppression struct {
	rules  map[string]bool // nil means all rules
	reason string
}

func (s suppression) covers(rule string) bool {
	return s.rules == nil || s.rules[rule]
}

// parseIgnore parses the directive text after "//". Returns ok=false for
// non-directive comments.
func parseIgnore(text string) (suppression, bool) {
	text = strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(text, ignoreDirective) {
		return suppression{}, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
	if rest == "" {
		// Bare directive: suppress everything on the line.
		return suppression{}, true
	}
	fields := strings.Fields(rest)
	ruleList := fields[0]
	reason := strings.TrimSpace(strings.TrimPrefix(rest, ruleList))
	sup := suppression{reason: reason}
	if ruleList != "all" && ruleList != "*" {
		sup.rules = make(map[string]bool)
		for _, r := range strings.Split(ruleList, ",") {
			if r = strings.TrimSpace(r); r != "" {
				sup.rules[r] = true
			}
		}
	}
	return sup, true
}

// suppressionIndex maps file -> line -> suppressions in force on that line.
type suppressionIndex struct {
	byFile map[string]map[int][]suppression
}

func newSuppressionIndex() *suppressionIndex {
	return &suppressionIndex{byFile: make(map[string]map[int][]suppression)}
}

// collect scans every comment of the package for ignore directives. A
// directive on line N covers lines N and N+1.
func (x *suppressionIndex) collect(pkg *Package) {
	for _, f := range pkg.Files {
		name := pkg.FileNames[f]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				sup, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				m := x.byFile[name]
				if m == nil {
					m = make(map[int][]suppression)
					x.byFile[name] = m
				}
				m[line] = append(m[line], sup)
				m[line+1] = append(m[line+1], sup)
			}
		}
	}
}

// apply marks the diagnostics covered by collected directives.
func (x *suppressionIndex) apply(diags []Diagnostic) {
	for i := range diags {
		d := &diags[i]
		for _, sup := range x.byFile[d.File][d.Line] {
			if sup.covers(d.Rule) {
				d.Suppressed = true
				d.SuppressReason = sup.reason
				break
			}
		}
	}
}
