package cache

import (
	"fmt"
	"strings"
	"time"

	"faultstudy/internal/faultinject"
)

// healTTR is how long the transient environmental conditions staged by the
// scenarios take to heal on their own — short enough that a recovery
// strategy which waits between retries observes the healed environment.
const healTTR = 90 * time.Second

// Scenarios returns the executable reproduction of each seeded cache-daemon
// bug: the staged environmental precondition and the workload that triggers
// it. The ops close over srv, so a recovery manager that restores srv's
// state can re-execute the failing op directly.
func Scenarios(srv *Server) map[string]faultinject.Scenario {
	env := srv.Env()
	get := func(key string) faultinject.Op {
		return faultinject.Op{Name: "GET " + key, Do: func() error {
			_, err := srv.Get(key)
			return err
		}}
	}
	set := func(key, value string) faultinject.Op {
		return faultinject.Op{Name: "SET " + key, Do: func() error {
			return srv.Set(key, value)
		}}
	}
	setN := func(prefix string, n int) []faultinject.Op {
		ops := make([]faultinject.Op, 0, n)
		for i := 0; i < n; i++ {
			ops = append(ops, set(fmt.Sprintf("%s%d", prefix, i), "v"))
		}
		return ops
	}
	getN := func(key string, n int) []faultinject.Op {
		ops := make([]faultinject.Op, 0, n)
		for i := 0; i < n; i++ {
			ops = append(ops, get(key))
		}
		return ops
	}
	stats := faultinject.Op{Name: "STATS", Do: func() error {
		_, err := srv.Stats()
		return err
	}}
	flush := faultinject.Op{Name: "FLUSH", Do: func() error { return srv.Flush() }}

	scenarios := map[string]faultinject.Scenario{
		MechEmptyKeyDeref: {
			Description: "a client sends a get with an empty key",
			Ops:         []faultinject.Op{set("a", "1"), get("")},
		},
		MechEvictOffByOne: {
			Description: "a store at exactly the LRU capacity forces an eviction",
			Ops:         setN("fill", srv.cfg.Capacity+1),
		},
		MechTTLParseLoop: {
			Description: "a store carries a negative TTL in its value",
			Ops:         []faultinject.Op{set("k", "payload ttl=-1")},
		},
		MechStatsDivZero: {
			Description: "stats are requested before the first lookup",
			Ops:         []faultinject.Op{stats},
		},
		MechBigValueBounds: {
			Description: "a client stores a value larger than the slab size",
			Ops:         []faultinject.Op{set("big", strings.Repeat("x", maxValueBytes+1))},
		},
		MechFlushDoubleFree: {
			Description: "an operator script flushes twice in a row",
			Ops:         []faultinject.Op{flush, flush},
		},
		MechWrongHitCount: {
			Description: "stats are read after normal traffic",
			Ops:         []faultinject.Op{set("a", "1"), get("a"), stats},
		},
		MechAOFDiskFull: {
			Description: "another tenant fills the persistence partition",
			// The margin must be smaller than the smallest log record the
			// triggering SET can append (29 bytes for SET k v), so the
			// append genuinely hits the full partition.
			Stage: func() { _ = env.Disk().FillFrom("other-tenant", 16) }, //faultlint:ignore envcheck staging the hostile environment is the point
			Ops:   []faultinject.Op{set("k", "v")},
		},
		MechConnFDLeak: {
			Description: "leaked connection descriptors fill the table",
			Stage:       func() { env.FDs().SetLimit(40) },
			Ops:         getN("motd", 60),
		},
		MechShadowCopyLeak: {
			Description: "sustained store traffic leaks shadow copies",
			Ops:         setN("load", shadowCopyCap+5),
		},
		MechPeerDNSFlap: {
			Description: "the resolver starts failing replication-peer lookups",
			Stage: func() {
				env.DNS().AddHost(peerHost, "10.9.9.9")
				env.DNS().Fail(healTTR)
			},
			Ops: []faultinject.Op{get("missing-key")},
		},
		MechExpiryRace: {
			Description: "a delete lands inside the expiry sweep's window",
			Stage:       func() { env.Sched().Force(MechExpiryRace, 0) },
			Ops: []faultinject.Op{set("doomed", "v"), {Name: "DEL doomed", Do: func() error {
				return srv.Del("doomed")
			}}},
		},
		MechSlowReplFlush: {
			Description: "the replication uplink saturates",
			Stage:       func() { env.Net().SlowFor(healTTR) },
			Ops:         []faultinject.Op{set("k", "v"), get("k")},
		},
	}

	for key, sc := range scenarios {
		sc.Mechanism = key
		scenarios[key] = sc
	}
	return scenarios
}
