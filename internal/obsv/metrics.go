package obsv

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	// Name is the label name (a Prometheus-legal identifier).
	Name string
	// Value is the label value.
	Value string
}

// L builds a label list from alternating name, value strings. Odd trailing
// arguments are dropped; the list is sorted by name so series identity does
// not depend on argument order.
func L(pairs ...string) []Label {
	out := make([]Label, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	sortLabels(out)
	return out
}

// sortLabels orders labels by name (then value, for pathological duplicates).
func sortLabels(ls []Label) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Name != ls[j].Name {
			return ls[i].Name < ls[j].Name
		}
		return ls[i].Value < ls[j].Value
	})
}

// labelKey serializes a sorted label list into a map key.
func labelKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(escapeLabelValue(l.Value))
	}
	return b.String()
}

// escapeLabelValue escapes a label value for the Prometheus text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// Counter is a monotonically increasing value.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter; negative deltas are ignored (counters only go
// up).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a value that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates observations into fixed, cumulative buckets, the way
// Prometheus histograms do: Counts[i] counts observations ≤ Buckets[i], and
// an implicit +Inf bucket catches the rest.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // sorted upper bounds
	counts  []uint64  // per-bucket (non-cumulative) counts, +Inf last
	sum     float64
	total   uint64
}

// newHistogram builds a histogram over the given (sorted, deduplicated)
// upper bounds. NaN bounds are dropped — they compare false against every
// observation and would leave permanently-dead buckets; a histogram with no
// finite bounds degenerates to a single +Inf bucket, which is still a valid
// count+sum series.
func newHistogram(buckets []float64) *Histogram {
	bs := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if !math.IsNaN(b) {
			bs = append(bs, b)
		}
	}
	sort.Float64s(bs)
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{buckets: dedup, counts: make([]uint64, len(dedup)+1)}
}

// Observe records one observation. NaN observations are dropped: a NaN
// would fail every bucket comparison, land in +Inf, and poison the sum —
// turning one bad instrumentation site into a corrupt export — so the guard
// lives here, once, instead of at every call site.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.total++
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.buckets)]++ // +Inf
}

// ObserveDuration records a duration observation in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns the bucket bounds with cumulative counts, plus sum and
// total, under the lock.
func (h *Histogram) snapshot() (bounds []float64, cumulative []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.buckets...)
	cumulative = make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cumulative[i] = run
	}
	return bounds, cumulative, h.sum, h.total
}

// LatencyBuckets are the fixed upper bounds, in seconds, for recovery and
// episode latencies: sub-second retries through hour-scale backoff walks.
// Fixed buckets keep longitudinal data comparable across runs — the "Faults
// in Linux" lesson that fault data is only useful when schemas are stable.
var LatencyBuckets = []float64{0.001, 0.01, 0.1, 1, 5, 15, 60, 300, 900, 3600}

// RequestLatencyBuckets are the fixed upper bounds, in seconds, for
// per-request serving latencies: sub-millisecond cache hits through the
// multi-second stalls a request rides out while its component reboots.
// LatencyBuckets starts at 1ms and is tuned for episode durations — request
// latencies cluster two orders of magnitude lower, so they get their own
// preset rather than collapsing into LatencyBuckets' first bucket.
var RequestLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// RetryBuckets are the fixed upper bounds for retries-per-recovery counts:
// the escalation ladder spends at most RungAttempts×4 attempts before the
// degraded rung, so the top bucket is comfortably above a full ladder walk.
var RetryBuckets = []float64{1, 2, 3, 5, 8, 13, 21}

// metricKind discriminates the series types held by a Registry.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

// series is one (name, labels) metric instance.
type series struct {
	name   string
	labels []Label
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metric series. The zero value is not usable; call
// NewRegistry. All lookup methods create the series on first use, so
// instrumentation sites need no registration ceremony. A nil *Registry is
// legal everywhere: the lookup methods return live but unexported-from-export
// metric objects, making disabled instrumentation cost one branch and one
// allocation at worst.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
	help   map[string]string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series), help: make(map[string]string)}
}

// Help attaches a help string to a metric name, emitted as # HELP by the
// Prometheus exporter.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// seriesKey builds the registry key for a (name, labels) pair.
func seriesKey(name string, labels []Label) string {
	return name + "{" + labelKey(labels) + "}"
}

// lookup returns (creating if needed) the series for name+labels, verifying
// the kind matches. Mismatched kinds panic: that is a programming error at
// an instrumentation site, not a runtime condition.
func (r *Registry) lookup(name string, labels []Label, kind metricKind, mk func() *series) *series {
	ls := append([]Label(nil), labels...)
	sortLabels(ls)
	key := seriesKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[key]
	if !ok {
		s = mk()
		s.name, s.labels, s.kind = name, ls, kind
		r.series[key] = s
	}
	if s.kind != kind {
		panic(fmt.Sprintf("obsv: metric %q registered with two kinds", name))
	}
	return s
}

// Counter returns the counter series for name+labels, creating it on first
// use. Safe on a nil registry (returns a detached counter).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.lookup(name, labels, kindCounter, func() *series { return &series{c: &Counter{}} }).c
}

// Gauge returns the gauge series for name+labels, creating it on first use.
// Safe on a nil registry (returns a detached gauge).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.lookup(name, labels, kindGauge, func() *series { return &series{g: &Gauge{}} }).g
}

// Histogram returns the histogram series for name+labels with the given
// fixed buckets, creating it on first use; later calls for the same series
// ignore the bucket argument. Safe on a nil registry (returns a detached
// histogram).
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return newHistogram(buckets)
	}
	return r.lookup(name, labels, kindHistogram, func() *series { return &series{h: newHistogram(buckets)} }).h
}

// sortedSeries returns every series ordered by name then label key — the
// stable iteration order both exporters rely on.
func (r *Registry) sortedSeries() []*series {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return labelKey(out[i].labels) < labelKey(out[j].labels)
	})
	return out
}

// Len returns the number of live series.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.series)
}
