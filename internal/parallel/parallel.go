// Package parallel is the experiment engine's sharding substrate: a bounded,
// GOMAXPROCS-aware worker pool with ordered result reduction, and
// deterministic per-shard seed streams derived SplitMix64-style from one root
// seed.
//
// The design contract is worker-count invariance: every quantity a shard
// computes may depend only on the shard's index and the root seed — never on
// which worker ran it, when it ran, or what ran before it. Shards write into
// index-addressed slots and derive their randomness through Derive/Stream, so
// an experiment sharded over N workers is byte-identical to the same
// experiment run serially. That property is what lets the recovery-matrix and
// soak sweeps run as fast as the hardware allows while keeping the paper's
// reproducibility guarantees (and the repo's golden files) intact.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count request: values below 1 mean "use every
// processor" (GOMAXPROCS), and any positive request is returned as-is —
// oversubscription is legal, the pool simply multiplexes.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every shard i in [0, shards) on a pool of at most
// workers goroutines (normalized by Workers) and waits for all of them.
// Shards are handed out in index order, but completion order is
// unspecified — fn must only write to per-shard state.
//
// Every shard runs even when some fail; the first error in shard order is
// returned, so the reported error does not depend on scheduling. A panicking
// shard is converted into an error rather than crashing the pool.
func ForEach(workers, shards int, fn func(shard int) error) error {
	workers = Workers(workers)
	if workers > shards {
		workers = shards
	}
	if shards <= 0 {
		return nil
	}
	if workers <= 1 {
		// Serial fast path: no goroutines, same semantics.
		var firstErr error
		for i := 0; i < shards; i++ {
			if err := runShard(i, fn); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, shards)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = runShard(i, fn)
			}
		}()
	}
	for i := 0; i < shards; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runShard invokes fn(i) with a panic guard: a panicking shard becomes an
// error attributed to its index instead of taking the whole pool down.
func runShard(i int, fn func(shard int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("parallel: shard %d panicked: %v", i, v)
		}
	}()
	return fn(i)
}

// MapOrdered runs fn over every shard index and returns the results in shard
// order — the ordered-reduction helper the experiment engine builds reports
// from. Results are positionally stable regardless of worker count.
func MapOrdered[T any](workers, shards int, fn func(shard int) (T, error)) ([]T, error) {
	out := make([]T, shards)
	err := ForEach(workers, shards, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
