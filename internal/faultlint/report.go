package faultlint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"faultstudy/internal/taxonomy"
)

// JSONSchemaVersion identifies the report wire format. The documented schema
// (EXPERIMENTS.md, "LINT") is:
//
//	{
//	  "version": 1,
//	  "packages": <int>,
//	  "rules": ["envsite", ...],
//	  "diagnostics": [
//	    {
//	      "rule": "...", "class": "<taxonomy class name>",
//	      "file": "...", "line": N, "col": N, "message": "...",
//	      "mechanisms": ["app/key", ...],      // envsite only
//	      "suppressed": true, "suppressReason": "..."  // when suppressed
//	    }, ...
//	  ],
//	  "summary": {"active": N, "advisory": N, "suppressed": N,
//	              "byRule": {...}, "byClass": {...}}
//	}
//
// "active" counts unsuppressed findings (advisory included); "advisory"
// counts the subset from classification rules, which do not fail the gate.
const JSONSchemaVersion = 1

// jsonReport is the serialized form of a Result.
type jsonReport struct {
	Version     int          `json:"version"`
	Packages    int          `json:"packages"`
	Rules       []string     `json:"rules"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	Summary     jsonSummary  `json:"summary"`
}

type jsonSummary struct {
	Active     int            `json:"active"`
	Advisory   int            `json:"advisory"`
	Suppressed int            `json:"suppressed"`
	ByRule     map[string]int `json:"byRule"`
	ByClass    map[string]int `json:"byClass"`
}

// RenderJSON serializes the result in the documented schema.
func RenderJSON(r *Result) ([]byte, error) {
	rep := jsonReport{
		Version:     JSONSchemaVersion,
		Packages:    r.Packages,
		Rules:       r.Rules,
		Diagnostics: r.Diagnostics,
		Summary: jsonSummary{
			ByRule:  make(map[string]int),
			ByClass: make(map[string]int),
		},
	}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{}
	}
	for _, d := range r.Diagnostics {
		if d.Suppressed {
			rep.Summary.Suppressed++
			continue
		}
		rep.Summary.Active++
		if d.Advisory {
			rep.Summary.Advisory++
		}
		rep.Summary.ByRule[d.Rule]++
		rep.Summary.ByClass[d.Class.String()]++
	}
	return json.MarshalIndent(rep, "", "  ")
}

// RenderText formats the result for terminals: one line per finding, then a
// per-rule summary. Suppressed findings appear only with verbose=true.
func RenderText(r *Result, verbose bool) string {
	var b strings.Builder
	active, advisory, suppressed := 0, 0, 0
	for _, d := range r.Diagnostics {
		if d.Suppressed {
			suppressed++
			if verbose {
				fmt.Fprintf(&b, "%s: [%s, suppressed] %s", d.Pos(), d.Rule, d.Message)
				if d.SuppressReason != "" {
					fmt.Fprintf(&b, " (reason: %s)", d.SuppressReason)
				}
				b.WriteByte('\n')
			}
			continue
		}
		active++
		if d.Advisory {
			advisory++
		}
		fmt.Fprintf(&b, "%s: [%s %s] %s", d.Pos(), d.Rule, d.Class.Short(), d.Message)
		if len(d.Mechanisms) > 0 {
			fmt.Fprintf(&b, " {%s}", strings.Join(d.Mechanisms, ", "))
		}
		b.WriteByte('\n')
	}
	byRule := make(map[string]int)
	for _, d := range r.Diagnostics {
		if !d.Suppressed {
			byRule[d.Rule]++
		}
	}
	rules := make([]string, 0, len(byRule))
	for rule := range byRule {
		rules = append(rules, rule)
	}
	sort.Strings(rules)
	fmt.Fprintf(&b, "faultlint: %d package(s), %d finding(s) (%d advisory), %d suppressed",
		r.Packages, active, advisory, suppressed)
	if len(rules) > 0 {
		parts := make([]string, len(rules))
		for i, rule := range rules {
			parts[i] = fmt.Sprintf("%s=%d", rule, byRule[rule])
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
	}
	b.WriteByte('\n')
	return b.String()
}

// ClassCounts tallies active findings per predicted class, in table order.
func ClassCounts(r *Result) map[taxonomy.FaultClass]int {
	out := make(map[taxonomy.FaultClass]int)
	for _, d := range r.Diagnostics {
		if !d.Suppressed {
			out[d.Class]++
		}
	}
	return out
}
