package corpusgen

import (
	"math"
	"strings"
	"testing"

	"faultstudy/internal/traffic"
)

func mustTestDist(t *testing.T, s string) *traffic.Dist {
	t.Helper()
	d, err := traffic.ParseDistribution(s)
	if err != nil {
		t.Fatalf("dist %q: %v", s, err)
	}
	return d
}

// TestChiSquareCritical pins the Wilson–Hilferty approximation against
// published alpha = 0.001 chi-squared table values.
func TestChiSquareCritical(t *testing.T) {
	cases := []struct {
		dof  int
		want float64
	}{
		{1, 10.828}, {2, 13.816}, {3, 16.266}, {4, 18.467}, {7, 24.322},
	}
	for _, c := range cases {
		got := ChiSquareCritical(c.dof)
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("crit(%d) = %.3f, want ~%.3f", c.dof, got, c.want)
		}
	}
	if got := ChiSquareCritical(0); got != 0 {
		t.Errorf("crit(0) = %v, want 0", got)
	}
}

// TestFitDistTable drives FitDist through matched, biased, merged-value, and
// foreign-value samples.
func TestFitDistTable(t *testing.T) {
	cases := []struct {
		name     string
		dist     string
		observed []string
		wantPass bool
	}{
		{"exact", "50%a,50%b", append(repeat("a", 500), repeat("b", 500)...), true},
		{"close", "50%a,50%b", append(repeat("a", 520), repeat("b", 480)...), true},
		{"biased", "50%a,50%b", append(repeat("a", 900), repeat("b", 100)...), false},
		{"missing-bucket", "60%a,30%b,10%c", append(repeat("a", 700), repeat("b", 300)...), false},
		{"merged-dup-values", "30%a,20%a,50%b", append(repeat("a", 500), repeat("b", 500)...), true},
		{"foreign-value", "50%a,50%b", append(repeat("a", 5), "z"), false},
		{"single-bucket", "100%a", repeat("a", 10), true},
		{"empty-sample", "50%a,50%b", nil, true},
	}
	for _, c := range cases {
		g := FitDist(c.name, mustTestDist(t, c.dist), c.observed)
		if g.Pass() != c.wantPass {
			t.Errorf("%s: pass=%v want %v\n%s", c.name, g.Pass(), c.wantPass, g.String())
		}
	}
}

// TestGOFFailureMessagePrintsCells ensures a failing test's rendering shows
// observed versus expected for every bucket — the satellite's debuggability
// requirement.
func TestGOFFailureMessagePrintsCells(t *testing.T) {
	g := FitDist("class", mustTestDist(t, "50%ei,50%edt"), repeat("ei", 100))
	if g.Pass() {
		t.Fatal("biased sample should fail")
	}
	s := g.String()
	for _, want := range []string{"FAIL", "ei obs=100 exp=50.0", "edt obs=0 exp=50.0", "chi2="} {
		if !strings.Contains(s, want) {
			t.Errorf("failure message %q missing %q", s, want)
		}
	}
}

// TestSamplerGoodnessOfFit is the satellite's core claim: every sampler's
// observed frequencies fit its spec'd distribution at alpha = 0.001, across
// several seeds, for faults and episodes alike.
func TestSamplerGoodnessOfFit(t *testing.T) {
	for _, seed := range []int64{1, 42, 1234, 99991} {
		c := testCorpus(t, "faults=3000;episodes=400", seed)
		faults, err := c.Faults(0)
		if err != nil {
			t.Fatalf("seed %d: faults: %v", seed, err)
		}
		episodes, err := c.Episodes(0)
		if err != nil {
			t.Fatalf("seed %d: episodes: %v", seed, err)
		}
		results := c.GoodnessOfFit(faults, episodes)
		if len(results) != 6 {
			t.Fatalf("seed %d: %d dimensions, want 6", seed, len(results))
		}
		for _, g := range results {
			if !g.Pass() {
				t.Errorf("seed %d: %s", seed, g.String())
			}
		}
	}
}

// TestGoodnessOfFitCatchesBias feeds a deliberately corrupted population:
// overwriting every class with EI must blow the class dimension while
// leaving app/defect dimensions alone.
func TestGoodnessOfFitCatchesBias(t *testing.T) {
	c := testCorpus(t, "faults=2000", 5)
	faults, err := c.Faults(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range faults {
		f.Class = classValues["ei"]
	}
	results := c.GoodnessOfFit(faults, nil)
	byDim := map[string]GOFResult{}
	for _, g := range results {
		byDim[g.Dimension] = g
	}
	if byDim["class"].Pass() {
		t.Errorf("class dimension should fail on corrupted sample:\n%s", byDim["class"].String())
	}
	for _, dim := range []string{"app", "defect", "lifetime"} {
		if !byDim[dim].Pass() {
			t.Errorf("%s dimension should still pass:\n%s", dim, byDim[dim].String())
		}
	}
}

func repeat(v string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = v
	}
	return out
}
