package scrape

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Page is one fetched page.
type Page struct {
	// URL is the final URL of the page.
	URL string
	// Body is the raw response body.
	Body string
	// Status is the HTTP status code.
	Status int
}

// CrawlerOption configures a Crawler.
type CrawlerOption func(*Crawler)

// WithMaxPages caps the number of pages fetched.
func WithMaxPages(n int) CrawlerOption { return func(c *Crawler) { c.maxPages = n } }

// WithDelay sets the politeness delay between requests.
func WithDelay(d time.Duration) CrawlerOption { return func(c *Crawler) { c.delay = d } }

// WithPathFilter restricts the crawl to URLs whose path has the given prefix.
func WithPathFilter(prefix string) CrawlerOption {
	return func(c *Crawler) { c.pathPrefix = prefix }
}

// WithClient sets the HTTP client (the default has a 10s timeout).
func WithClient(client *http.Client) CrawlerOption { return func(c *Crawler) { c.client = client } }

// Crawler is a polite, same-host, breadth-first crawler.
type Crawler struct {
	client     *http.Client
	maxPages   int
	delay      time.Duration
	pathPrefix string

	mu      sync.Mutex
	visited map[string]bool
}

// NewCrawler builds a crawler with the given options.
func NewCrawler(opts ...CrawlerOption) *Crawler {
	c := &Crawler{
		client:   &http.Client{Timeout: 10 * time.Second},
		maxPages: 10000,
		visited:  make(map[string]bool),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Crawl fetches start and every same-host page reachable from it, breadth
// first, honoring the page cap and path filter. Pages are returned in fetch
// order. Non-2xx responses are recorded but not followed.
func (c *Crawler) Crawl(ctx context.Context, start string) ([]*Page, error) {
	base, err := url.Parse(start)
	if err != nil {
		return nil, fmt.Errorf("scrape: bad start url %q: %w", start, err)
	}
	if base.Scheme == "" || base.Host == "" {
		return nil, fmt.Errorf("scrape: start url %q must be absolute", start)
	}

	queue := []string{base.String()}
	c.markVisited(base.String())
	var pages []*Page
	first := true
	for len(queue) > 0 && len(pages) < c.maxPages {
		if err := ctx.Err(); err != nil {
			return pages, err
		}
		next := queue[0]
		queue = queue[1:]
		if !first && c.delay > 0 {
			select {
			case <-time.After(c.delay): //faultlint:ignore wallclock politeness delay against a real HTTP server; ctx bounds it
			case <-ctx.Done():
				return pages, ctx.Err()
			}
		}
		first = false
		page, err := c.fetch(ctx, next)
		if err != nil {
			return pages, fmt.Errorf("scrape: fetch %s: %w", next, err)
		}
		pages = append(pages, page)
		if page.Status < 200 || page.Status >= 300 {
			continue
		}
		for _, link := range c.eligibleLinks(base, next, page.Body) {
			if c.markVisited(link) {
				continue
			}
			queue = append(queue, link)
		}
	}
	return pages, nil
}

// markVisited records the URL; it returns true when it was already visited.
func (c *Crawler) markVisited(u string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.visited[u] {
		return true
	}
	c.visited[u] = true
	return false
}

func (c *Crawler) fetch(ctx context.Context, u string) (*Page, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("User-Agent", "faultstudy-crawler/1.0")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	return &Page{URL: u, Body: string(body), Status: resp.StatusCode}, nil
}

// eligibleLinks resolves and filters the links on a page: same host as base,
// http(s), fragment-stripped, matching the path filter, deduplicated, in
// stable order.
func (c *Crawler) eligibleLinks(base *url.URL, pageURL, body string) []string {
	pu, err := url.Parse(pageURL)
	if err != nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, raw := range Links(body) {
		lu, err := url.Parse(strings.TrimSpace(raw))
		if err != nil {
			continue
		}
		abs := pu.ResolveReference(lu)
		abs.Fragment = ""
		if abs.Scheme != "http" && abs.Scheme != "https" {
			continue
		}
		if abs.Host != base.Host {
			continue
		}
		if c.pathPrefix != "" && !strings.HasPrefix(abs.Path, c.pathPrefix) {
			continue
		}
		s := abs.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
