// Package dedup narrows raw bug reports to unique bugs — the study's
// reduction of 5220 Apache PRs to 50 unique faults, ~500 GNOME reports to 45,
// and 44k MySQL messages to 44 (paper §4).
//
// Duplicate detection combines text similarity (Jaccard over word shingles,
// with an inverted index so the comparison stays near-linear) with a
// structural prefilter (same application). The earliest-filed report of a
// duplicate group is canonical; later members point at it via
// Report.DuplicateOf.
package dedup

import (
	"sort"
	"strings"

	"faultstudy/internal/report"
)

// Options tunes the deduplicator.
type Options struct {
	// ShingleSize is the word-shingle width; 0 means 3.
	ShingleSize int
	// Threshold is the Jaccard similarity at or above which two reports are
	// duplicates; 0 means 0.6.
	Threshold float64
	// MaxDocFreq drops shingles appearing in more than this many reports from
	// the candidate index (boilerplate suppression); 0 means 50.
	MaxDocFreq int
	// DisableSynopsisRule turns off the structural duplicate signal: a
	// report whose normalized synopsis contains (or equals) an earlier
	// canonical's synopsis, with at least MinContainmentSim body similarity,
	// is that report's duplicate even below Threshold. Trackers title
	// re-reports with the same summary, so the rule is what lets short
	// reports dedup reliably.
	DisableSynopsisRule bool
	// MinContainmentSim is the body-similarity floor for the synopsis rule;
	// 0 means 0.25.
	MinContainmentSim float64
}

func (o Options) withDefaults() Options {
	if o.ShingleSize == 0 {
		o.ShingleSize = 3
	}
	if o.Threshold == 0 {
		o.Threshold = 0.6
	}
	if o.MaxDocFreq == 0 {
		o.MaxDocFreq = 50
	}
	if o.MinContainmentSim == 0 {
		o.MinContainmentSim = 0.25
	}
	return o
}

// Mark detects duplicate reports in place: for every duplicate it sets
// DuplicateOf to the canonical (earliest-filed) report's ID and returns the
// number of reports so marked. Reports of different applications are never
// duplicates of each other.
func Mark(reports []*report.Report, opts Options) int {
	opts = opts.withDefaults()

	// Earliest-filed first, so canonical reports are seen before their
	// duplicates; ties break by ID for determinism.
	order := make([]*report.Report, len(reports))
	copy(order, reports)
	sort.SliceStable(order, func(i, j int) bool {
		if !order[i].Filed.Equal(order[j].Filed) {
			return order[i].Filed.Before(order[j].Filed)
		}
		return order[i].Key() < order[j].Key()
	})

	shingleSets := make([]map[string]struct{}, len(order))
	synopses := make([]string, len(order))
	for i, r := range order {
		shingleSets[i] = Shingles(r.Text(), opts.ShingleSize)
		synopses[i] = normalizeSynopsis(r.Synopsis)
	}

	// Inverted index: shingle -> indices of canonical reports containing it.
	index := make(map[string][]int)
	marked := 0

	for i, r := range order {
		r.DuplicateOf = ""
		set := shingleSets[i]
		// Gather candidate canonicals sharing at least one indexed shingle.
		candSeen := make(map[int]struct{})
		best, bestSim := -1, 0.0
		for sh := range set {
			for _, j := range index[sh] {
				if _, dup := candSeen[j]; dup {
					continue
				}
				candSeen[j] = struct{}{}
				if order[j].App != r.App {
					continue
				}
				sim := jaccard(set, shingleSets[j])
				match := sim >= opts.Threshold
				if !match && !opts.DisableSynopsisRule && sim >= opts.MinContainmentSim {
					match = synopsisContains(synopses[i], synopses[j])
				}
				if match && sim > bestSim {
					best, bestSim = j, sim
				}
			}
		}
		if best >= 0 {
			r.DuplicateOf = order[best].ID
			marked++
			continue
		}
		// Canonical: index its shingles (subject to the doc-frequency cap).
		for sh := range set {
			if len(index[sh]) < opts.MaxDocFreq {
				index[sh] = append(index[sh], i)
			}
		}
	}
	return marked
}

// Shingles returns the set of k-word shingles of the normalized text. Texts
// shorter than k words yield a single shingle of the whole text so that even
// tiny reports can match.
func Shingles(text string, k int) map[string]struct{} {
	words := tokenize(text)
	set := make(map[string]struct{}, len(words))
	if len(words) == 0 {
		return set
	}
	if len(words) < k {
		set[strings.Join(words, " ")] = struct{}{}
		return set
	}
	for i := 0; i+k <= len(words); i++ {
		set[strings.Join(words[i:i+k], " ")] = struct{}{}
	}
	return set
}

// Similarity returns the Jaccard similarity of two texts' k-shingle sets.
func Similarity(a, b string, k int) float64 {
	return jaccard(Shingles(a, k), Shingles(b, k))
}

func jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for s := range small {
		if _, ok := large[s]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// normalizeSynopsis lowercases a synopsis and collapses its whitespace.
func normalizeSynopsis(s string) string {
	return strings.Join(tokenize(s), " ")
}

// synopsisContains reports whether the later report's synopsis contains the
// canonical's (or vice versa). Very short synopses are excluded: containment
// of a three-word title is not evidence.
func synopsisContains(later, canonical string) bool {
	const minWords = 4
	if strings.Count(canonical, " ") < minWords-1 || strings.Count(later, " ") < minWords-1 {
		return false
	}
	return strings.Contains(later, canonical) || strings.Contains(canonical, later)
}

// tokenize lowercases and splits text into alphanumeric word runs.
func tokenize(text string) []string {
	text = strings.ToLower(text)
	words := strings.FieldsFunc(text, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
	return words
}
