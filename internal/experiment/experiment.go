// Package experiment regenerates every table and figure of the paper's
// evaluation (§5), runs the recovery-verification experiment the paper
// proposed as future work, reconciles the results with Lee & Iyer's Tandem
// study (§7), and provides the ablations DESIGN.md calls out.
//
// Two paths produce the tables: the *pipeline* path mines the simulated
// trackers over HTTP exactly as the study did, and the *oracle* path reads
// the curated corpus directly. Both must agree; the benchmarks default to
// the oracle path and the integration tests exercise the pipeline path.
package experiment

import (
	"fmt"
	"strings"

	"faultstudy/internal/apps/cache"
	"faultstudy/internal/apps/desktop"
	"faultstudy/internal/apps/httpd"
	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/classify"
	"faultstudy/internal/corpus"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/recovery"
	"faultstudy/internal/simenv"
	"faultstudy/internal/stats"
	"faultstudy/internal/taxonomy"
)

// PaperTables holds the oracle counts of Tables 1–3.
var PaperTables = map[taxonomy.Application]map[taxonomy.FaultClass]int{
	taxonomy.AppApache: {
		taxonomy.ClassEnvIndependent:           36,
		taxonomy.ClassEnvDependentNonTransient: 7,
		taxonomy.ClassEnvDependentTransient:    7,
	},
	taxonomy.AppGnome: {
		taxonomy.ClassEnvIndependent:           39,
		taxonomy.ClassEnvDependentNonTransient: 3,
		taxonomy.ClassEnvDependentTransient:    3,
	},
	taxonomy.AppMySQL: {
		taxonomy.ClassEnvIndependent:           38,
		taxonomy.ClassEnvDependentNonTransient: 4,
		taxonomy.ClassEnvDependentTransient:    2,
	},
}

// TableResult is one regenerated classification table.
type TableResult struct {
	// App is the application.
	App taxonomy.Application
	// Counts is the regenerated per-class tally.
	Counts map[taxonomy.FaultClass]int
	// Paper is the paper's tally.
	Paper map[taxonomy.FaultClass]int
}

// Matches reports whether the regenerated counts equal the paper's.
func (t *TableResult) Matches() bool {
	for c, n := range t.Paper {
		if t.Counts[c] != n {
			return false
		}
	}
	return len(t.Counts) <= len(t.Paper)+1 // tolerate an explicit zero entry
}

// String renders the comparison.
func (t *TableResult) String() string {
	tbl := &stats.Table{Header: []string{"class", "measured", "paper"}}
	for _, c := range taxonomy.Classes() {
		tbl.Add(c.String(), fmt.Sprint(t.Counts[c]), fmt.Sprint(t.Paper[c]))
	}
	return fmt.Sprintf("Table (%s):\n%s", t.App, tbl.String())
}

// Table regenerates one application's classification table from the corpus
// via the reproducible classifier (the oracle path).
func Table(app taxonomy.Application, opts classify.Options) *TableResult {
	classifier := classify.New(opts)
	counts := make(map[taxonomy.FaultClass]int, 3)
	for _, f := range corpus.ByApp(app) {
		counts[classifier.Classify(f.Report()).Class]++
	}
	return &TableResult{App: app, Counts: counts, Paper: PaperTables[app]}
}

// Aggregate reproduces the §5.4 discussion numbers across all three
// applications.
type Aggregate struct {
	// Total is the number of unique faults (139 in the paper).
	Total int
	// Counts tallies per class.
	Counts map[taxonomy.FaultClass]int
	// EIShare holds each application's environment-independent share
	// (72–87% in the paper).
	EIShare map[taxonomy.Application]stats.Proportion
}

// ComputeAggregate builds the aggregate from the oracle tables.
func ComputeAggregate(opts classify.Options) *Aggregate {
	agg := &Aggregate{
		Counts:  make(map[taxonomy.FaultClass]int, 3),
		EIShare: make(map[taxonomy.Application]stats.Proportion, 3),
	}
	for _, app := range taxonomy.Applications() {
		t := Table(app, opts)
		total := 0
		for c, n := range t.Counts {
			agg.Counts[c] += n
			agg.Total += n
			total += n
		}
		agg.EIShare[app] = stats.Proportion{
			Hits: t.Counts[taxonomy.ClassEnvIndependent],
			N:    total,
		}
	}
	return agg
}

// String renders the aggregate in the §5.4 phrasing.
func (a *Aggregate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Of the %d bugs: %d (%s) environment-dependent-nontransient, %d (%s) environment-dependent-transient.\n",
		a.Total,
		a.Counts[taxonomy.ClassEnvDependentNonTransient],
		stats.Proportion{Hits: a.Counts[taxonomy.ClassEnvDependentNonTransient], N: a.Total}.Percent(),
		a.Counts[taxonomy.ClassEnvDependentTransient],
		stats.Proportion{Hits: a.Counts[taxonomy.ClassEnvDependentTransient], N: a.Total}.Percent())
	for _, app := range taxonomy.Applications() {
		fmt.Fprintf(&b, "  %s environment-independent share: %s\n", app, a.EIShare[app].Percent())
	}
	return b.String()
}

// BuildScenario constructs the simulated application and executable scenario
// for a seeded-bug mechanism. The environment is sized so the scenario's
// exhaustion conditions trigger quickly.
func BuildScenario(mechanism string, seed int64) (recovery.Application, faultinject.Scenario, error) {
	switch {
	case strings.HasPrefix(mechanism, "httpd/"):
		env := simenv.New(seed, simenv.WithFDLimit(64), simenv.WithProcLimit(192))
		srv := httpd.New(env, faultinject.NewSet(mechanism), httpd.Config{})
		sc, ok := httpd.Scenarios(srv)[mechanism]
		if !ok {
			return nil, faultinject.Scenario{}, fmt.Errorf("experiment: no httpd scenario for %s", mechanism)
		}
		return srv, sc, nil
	case strings.HasPrefix(mechanism, "sqldb/"):
		env := simenv.New(seed, simenv.WithFDLimit(64))
		srv := sqldb.New(env, faultinject.NewSet(mechanism))
		sc, ok := sqldb.Scenarios(srv)[mechanism]
		if !ok {
			return nil, faultinject.Scenario{}, fmt.Errorf("experiment: no sqldb scenario for %s", mechanism)
		}
		return srv, sc, nil
	case strings.HasPrefix(mechanism, "desktop/"):
		env := simenv.New(seed)
		d := desktop.New(env, faultinject.NewSet(mechanism))
		sc, ok := desktop.Scenarios(d)[mechanism]
		if !ok {
			return nil, faultinject.Scenario{}, fmt.Errorf("experiment: no desktop scenario for %s", mechanism)
		}
		return d, sc, nil
	case strings.HasPrefix(mechanism, "cache/"):
		env := simenv.New(seed, simenv.WithFDLimit(64))
		srv := cache.New(env, faultinject.NewSet(mechanism), cache.Config{Capacity: 16})
		sc, ok := cache.Scenarios(srv)[mechanism]
		if !ok {
			return nil, faultinject.Scenario{}, fmt.Errorf("experiment: no cache scenario for %s", mechanism)
		}
		return srv, sc, nil
	default:
		return nil, faultinject.Scenario{}, fmt.Errorf("experiment: unknown mechanism namespace %q", mechanism)
	}
}

// classifyDefaults returns the study's classifier configuration.
func classifyDefaults() classify.Options { return classify.Options{} }

// Registry returns the full seeded-bug catalogue of all three applications.
func Registry() *faultinject.Registry {
	r := faultinject.NewRegistry()
	httpd.RegisterMechanisms(r)
	sqldb.RegisterMechanisms(r)
	desktop.RegisterMechanisms(r)
	return r
}

// CorpusRegistry returns the extended mechanism catalogue the generated
// corpus samples from: the paper's three applications plus the extension
// archetypes. It is deliberately distinct from Registry() so the paper-table
// experiments (matrix, soak, mreboot, lint, scope, serve) keep the studied
// universe untouched.
func CorpusRegistry() *faultinject.Registry {
	r := faultinject.NewRegistry()
	httpd.RegisterMechanisms(r)
	sqldb.RegisterMechanisms(r)
	desktop.RegisterMechanisms(r)
	cache.RegisterMechanisms(r)
	return r
}
