package simenv

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTestDisk(capacity, maxFile int64) *Disk { return newDisk(capacity, maxFile) }

func TestWriteSyncReadAll(t *testing.T) {
	d := newTestDisk(1024, 512)
	if err := d.Write("/w/log", "app", []byte("hello ")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := d.Write("/w/log", "app", []byte("world")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Unsynced bytes are visible to a live reader.
	got, err := d.ReadAll("/w/log")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != "hello world" {
		t.Fatalf("read %q, want %q", got, "hello world")
	}
	if err := d.Sync("/w/log"); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if sz, _ := d.Size("/w/log"); sz != 11 {
		t.Fatalf("size %d, want 11", sz)
	}
	if d.Used() != 11 {
		t.Fatalf("used %d, want 11", d.Used())
	}
}

func TestWriteEnforcesLimits(t *testing.T) {
	d := newTestDisk(100, 60)
	if err := d.Write("/w/a", "app", make([]byte, 70)); !errors.Is(err, ErrFileTooLarge) {
		t.Fatalf("oversized write: %v, want ErrFileTooLarge", err)
	}
	if err := d.Write("/w/a", "app", make([]byte, 60)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := d.Write("/w/b", "app", make([]byte, 50)); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("over-capacity write: %v, want ErrDiskFull", err)
	}
	// Failed writes leave the file and accounting unchanged.
	if d.Used() != 60 {
		t.Fatalf("used %d, want 60", d.Used())
	}
}

func TestCrashDiscardsUnsyncedTail(t *testing.T) {
	d := newTestDisk(1024, 512)
	mustWrite(t, d, "/w/log", []byte("durable."))
	if err := d.Sync("/w/log"); err != nil {
		t.Fatalf("sync: %v", err)
	}
	mustWrite(t, d, "/w/log", []byte("buffered"))
	d.CrashNow(0)
	if !d.Crashed() {
		t.Fatal("disk not crashed")
	}
	if _, err := d.ReadAll("/w/log"); !errors.Is(err, ErrDiskCrashed) {
		t.Fatalf("read on crashed disk: %v, want ErrDiskCrashed", err)
	}
	if err := d.Write("/w/log", "app", []byte("x")); !errors.Is(err, ErrDiskCrashed) {
		t.Fatalf("write on crashed disk: %v, want ErrDiskCrashed", err)
	}
	d.ClearCrash()
	got, err := d.ReadAll("/w/log")
	if err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if string(got) != "durable." {
		t.Fatalf("survived %q, want %q", got, "durable.")
	}
	if d.Used() != 8 {
		t.Fatalf("used %d, want 8", d.Used())
	}
}

func TestCrashTearsTail(t *testing.T) {
	d := newTestDisk(1024, 512)
	mustWrite(t, d, "/w/log", []byte("abcd"))
	if err := d.Sync("/w/log"); err != nil {
		t.Fatalf("sync: %v", err)
	}
	mustWrite(t, d, "/w/log", []byte("EFGHIJ"))
	d.CrashNow(3) // keep a 3-byte torn prefix of the tail
	d.ClearCrash()
	got, _ := d.ReadAll("/w/log")
	if string(got) != "abcdEFG" {
		t.Fatalf("torn contents %q, want %q", got, "abcdEFG")
	}
}

func TestScheduleCrashCountsBoundaries(t *testing.T) {
	d := newTestDisk(1024, 512)
	d.ScheduleCrash(2, 0) // two ops proceed, the third crashes
	if err := d.Write("/w/a", "app", []byte("one")); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if err := d.Sync("/w/a"); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if err := d.Write("/w/a", "app", []byte("three")); !errors.Is(err, ErrDiskCrashed) {
		t.Fatalf("op 3: %v, want ErrDiskCrashed", err)
	}
	d.ClearCrash()
	got, _ := d.ReadAll("/w/a")
	if string(got) != "one" {
		t.Fatalf("survived %q, want %q", got, "one")
	}
}

func TestWriteOpsCounter(t *testing.T) {
	d := newTestDisk(1024, 512)
	mustWrite(t, d, "/w/a", []byte("x"))
	_ = d.Sync("/w/a")
	_ = d.Truncate("/w/a")
	_ = d.Remove("/w/a")
	if got := d.WriteOps(); got != 4 {
		t.Fatalf("write ops %d, want 4", got)
	}
	// Space-only appends are not write boundaries.
	_ = d.Append("/w/b", "app", 10)
	if got := d.WriteOps(); got != 4 {
		t.Fatalf("write ops after Append %d, want 4", got)
	}
}

func TestArmShortWrite(t *testing.T) {
	d := newTestDisk(1024, 512)
	d.ArmShortWrite(2)
	err := d.Write("/w/log", "app", []byte("abcdef"))
	if !errors.Is(err, ErrShortWrite) {
		t.Fatalf("short write: %v, want ErrShortWrite", err)
	}
	got, _ := d.ReadAll("/w/log")
	if string(got) != "ab" {
		t.Fatalf("persisted %q, want %q", got, "ab")
	}
	if d.Used() != 2 {
		t.Fatalf("used %d, want 2", d.Used())
	}
	// The arm is consumed: the next write is whole.
	if err := d.Write("/w/log", "app", []byte("cd")); err != nil {
		t.Fatalf("second write: %v", err)
	}
}

func TestArmTornWriteIsSilent(t *testing.T) {
	d := newTestDisk(1024, 512)
	d.ArmTornWrite(3)
	if err := d.Write("/w/log", "app", []byte("abcdef")); err != nil {
		t.Fatalf("torn write reported failure: %v", err)
	}
	got, _ := d.ReadAll("/w/log")
	if string(got) != "abc" {
		t.Fatalf("persisted %q, want %q", got, "abc")
	}
}

func TestArmSyncFail(t *testing.T) {
	d := newTestDisk(1024, 512)
	mustWrite(t, d, "/w/log", []byte("gone"))
	d.ArmSyncFail()
	if err := d.Sync("/w/log"); !errors.Is(err, ErrIOFault) {
		t.Fatalf("sync: %v, want ErrIOFault", err)
	}
	got, _ := d.ReadAll("/w/log")
	if len(got) != 0 {
		t.Fatalf("tail survived failed sync: %q", got)
	}
	if d.Used() != 0 {
		t.Fatalf("used %d, want 0", d.Used())
	}
}

func TestArmCrashBeforeRename(t *testing.T) {
	d := newTestDisk(1024, 512)
	mustWrite(t, d, "/w/ckpt", []byte("old"))
	_ = d.Sync("/w/ckpt")
	mustWrite(t, d, "/w/ckpt.tmp", []byte("newer"))
	_ = d.Sync("/w/ckpt.tmp")
	d.ArmCrashBeforeRename()
	if err := d.Rename("/w/ckpt.tmp", "/w/ckpt"); !errors.Is(err, ErrDiskCrashed) {
		t.Fatalf("rename: %v, want ErrDiskCrashed", err)
	}
	d.ClearCrash()
	got, _ := d.ReadAll("/w/ckpt")
	if string(got) != "old" {
		t.Fatalf("target %q, want untouched %q", got, "old")
	}
	tmp, _ := d.ReadAll("/w/ckpt.tmp")
	if string(tmp) != "newer" {
		t.Fatalf("tmp %q, want surviving %q", tmp, "newer")
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	d := newTestDisk(1024, 512)
	mustWrite(t, d, "/w/ckpt", []byte("old!"))
	mustWrite(t, d, "/w/ckpt.tmp", []byte("newer"))
	if err := d.Rename("/w/ckpt.tmp", "/w/ckpt"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	got, _ := d.ReadAll("/w/ckpt")
	if string(got) != "newer" {
		t.Fatalf("target %q, want %q", got, "newer")
	}
	if d.Exists("/w/ckpt.tmp") {
		t.Fatal("tmp survived rename")
	}
	if d.Used() != 5 {
		t.Fatalf("used %d, want 5 (old charge released)", d.Used())
	}
	owner, err := d.Owner("/w/ckpt")
	if err != nil || owner != "app" {
		t.Fatalf("owner %q (%v), want app", owner, err)
	}
}

func TestTruncateToRepairsTail(t *testing.T) {
	d := newTestDisk(1024, 512)
	mustWrite(t, d, "/w/log", []byte("goodrecord|torngarba"))
	_ = d.Sync("/w/log")
	if err := d.TruncateTo("/w/log", 11); err != nil {
		t.Fatalf("truncate to: %v", err)
	}
	got, _ := d.ReadAll("/w/log")
	if string(got) != "goodrecord|" {
		t.Fatalf("repaired %q, want %q", got, "goodrecord|")
	}
	if d.Used() != 11 {
		t.Fatalf("used %d, want 11", d.Used())
	}
	if err := d.TruncateTo("/w/log", 999); err == nil {
		t.Fatal("growing TruncateTo accepted")
	}
}

func TestShrinkAccounting(t *testing.T) {
	d := newTestDisk(1024, 512)
	if err := d.Append("/var/db/t.ISD", "mysqld", 128); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := d.Shrink("/var/db/t.ISD", 64); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if d.Used() != 64 {
		t.Fatalf("used %d, want 64", d.Used())
	}
	// A data-bearing file cannot shrink below its held bytes.
	mustWrite(t, d, "/w/log", []byte("held"))
	if err := d.Shrink("/w/log", 1); err == nil {
		t.Fatal("shrink below held bytes accepted")
	}
}

func TestTruncateClearsData(t *testing.T) {
	d := newTestDisk(1024, 512)
	mustWrite(t, d, "/w/log", []byte("rotate me"))
	_ = d.Sync("/w/log")
	if err := d.Truncate("/w/log"); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	got, err := d.ReadAll("/w/log")
	if err != nil || len(got) != 0 {
		t.Fatalf("post-rotation read %q (%v), want empty", got, err)
	}
}

// TestTruncatePreservesOwnerAccountingUnderRace is the satellite regression:
// concurrent appends and truncates on one owner's files must leave the used
// counter exactly equal to the surviving sizes, so RemoveOwner frees
// precisely what the owner holds (run under -race).
func TestTruncatePreservesOwnerAccountingUnderRace(t *testing.T) {
	d := newTestDisk(1<<20, 1<<20)
	const writers = 4
	const appends = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("/var/log/app.%d", w)
		wg.Add(2)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < appends; i++ {
				_ = d.Append(name, "app", 8)
			}
		}(name)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < appends/10; i++ {
				_ = d.Truncate(name)
			}
		}(name)
	}
	wg.Wait()
	var total int64
	for _, name := range d.Files() {
		sz, err := d.Size(name)
		if err != nil {
			t.Fatalf("size %q: %v", name, err)
		}
		owner, err := d.Owner(name)
		if err != nil || owner != "app" {
			t.Fatalf("owner %q: %q (%v), want app", name, owner, err)
		}
		total += sz
	}
	if used := d.Used(); used != total {
		t.Fatalf("used %d != sum of sizes %d after concurrent truncates", used, total)
	}
	if freed := d.RemoveOwner("app"); freed != total {
		t.Fatalf("RemoveOwner freed %d, want %d", freed, total)
	}
	if used := d.Used(); used != 0 {
		t.Fatalf("used %d after RemoveOwner, want 0", used)
	}
}

func mustWrite(t *testing.T, d *Disk, name string, p []byte) {
	t.Helper()
	if err := d.Write(name, "app", p); err != nil {
		t.Fatalf("write %q: %v", name, err)
	}
}

func TestReadAllMissing(t *testing.T) {
	d := newTestDisk(64, 64)
	if _, err := d.ReadAll("/nope"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("read missing: %v, want ErrNoSuchFile", err)
	}
}
