package experiment

import (
	"strings"
	"testing"

	"faultstudy/internal/classify"
	"faultstudy/internal/corpus"
	"faultstudy/internal/recovery"
	"faultstudy/internal/taxonomy"
)

func TestTablesMatchPaper(t *testing.T) {
	for _, app := range taxonomy.Applications() {
		res := Table(app, classify.Options{})
		if !res.Matches() {
			t.Errorf("%s table does not match the paper:\n%s", app, res)
		}
	}
}

func TestAggregateMatchesDiscussion(t *testing.T) {
	agg := ComputeAggregate(classify.Options{})
	if agg.Total != 139 {
		t.Errorf("total = %d, want 139", agg.Total)
	}
	if agg.Counts[taxonomy.ClassEnvDependentNonTransient] != 14 {
		t.Errorf("EDN = %d, want 14", agg.Counts[taxonomy.ClassEnvDependentNonTransient])
	}
	if agg.Counts[taxonomy.ClassEnvDependentTransient] != 12 {
		t.Errorf("EDT = %d, want 12", agg.Counts[taxonomy.ClassEnvDependentTransient])
	}
	for app, share := range agg.EIShare {
		if v := share.Value(); v < 0.72 || v > 0.87 {
			t.Errorf("%s EI share %.2f outside the paper's 72-87%% band", app, v)
		}
	}
	if agg.String() == "" {
		t.Error("empty aggregate rendering")
	}
}

func TestFigure1Shape(t *testing.T) {
	fig := Figure1Apache()
	if len(fig.Buckets) != 6 {
		t.Fatalf("Apache releases = %d, want 6", len(fig.Buckets))
	}
	totals := fig.Totals()
	sum := 0
	for i := 1; i < len(totals); i++ {
		if totals[i] < totals[i-1] {
			t.Errorf("totals not nondecreasing: %v", totals)
		}
	}
	for _, n := range totals {
		sum += n
	}
	if sum != 50 {
		t.Errorf("figure covers %d faults, want 50", sum)
	}
	for i, share := range fig.EIShare() {
		if share < 0.5 {
			t.Errorf("bucket %d EI share %.2f; should stay a majority", i, share)
		}
	}
	if !strings.Contains(fig.Render(), "#") {
		t.Error("render missing bars")
	}
}

func TestFigure2Shape(t *testing.T) {
	fig := Figure2Gnome()
	totals := fig.Totals()
	sum := 0
	for _, n := range totals {
		sum += n
	}
	if sum != 45 {
		t.Errorf("figure covers %d faults, want 45", sum)
	}
	// The paper's dip-then-rise.
	dipped := false
	for i := 1; i < len(totals)-1; i++ {
		if totals[i] < totals[i-1] && totals[i+1] > totals[i] {
			dipped = true
		}
	}
	if !dipped {
		t.Errorf("GNOME series %v shows no dip", totals)
	}
}

func TestFigure3Shape(t *testing.T) {
	fig := Figure3MySQL()
	totals := fig.Totals()
	sum := 0
	for _, n := range totals {
		sum += n
	}
	if sum != 44 {
		t.Errorf("figure covers %d faults, want 44", sum)
	}
	last := totals[len(totals)-1]
	prev := totals[len(totals)-2]
	if last >= prev/2 {
		t.Errorf("last release count %d vs %d; should drop substantially", last, prev)
	}
}

func TestBuildScenarioErrors(t *testing.T) {
	if _, _, err := BuildScenario("kernel/unknown", 1); err == nil {
		t.Error("unknown namespace should fail")
	}
	if _, _, err := BuildScenario("httpd/not-a-mechanism", 1); err == nil {
		t.Error("unknown httpd mechanism should fail")
	}
}

func TestRegistryComplete(t *testing.T) {
	r := Registry()
	keys := r.Keys()
	if len(keys) < 27+17+18 {
		t.Errorf("registry has %d mechanisms", len(keys))
	}
	// Every corpus mechanism must exist in the registry with a scenario.
	for _, key := range keys {
		if _, _, err := BuildScenario(key, 1); err != nil {
			t.Errorf("mechanism %s has no scenario: %v", key, err)
		}
	}
}

func TestRecoveryMatrixHeadline(t *testing.T) {
	m, err := RunMatrix(recovery.Policy{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerFault) != 139 {
		t.Fatalf("matrix covers %d faults, want 139", len(m.PerFault))
	}

	// No recovery never survives.
	none := m.Rate(recovery.StrategyNone, taxonomy.ClassUnknown)
	if none.Hits != 0 {
		t.Errorf("no-recovery survived %d faults", none.Hits)
	}

	// The paper's headline: generic recovery survives the transients and
	// nothing else.
	pp := m.Rate(recovery.StrategyProcessPairs, taxonomy.ClassEnvIndependent)
	if pp.Hits != 0 {
		t.Errorf("process pairs survived %d/%d EI faults; must be 0", pp.Hits, pp.N)
	}
	pp = m.Rate(recovery.StrategyProcessPairs, taxonomy.ClassEnvDependentNonTransient)
	if pp.Hits != 0 {
		t.Errorf("process pairs survived %d/%d EDN faults; must be 0", pp.Hits, pp.N)
	}
	pp = m.Rate(recovery.StrategyProcessPairs, taxonomy.ClassEnvDependentTransient)
	if pp.Value() < 0.9 {
		t.Errorf("process pairs survived only %d/%d EDT faults", pp.Hits, pp.N)
	}

	// Overall generic survival lands in the paper's 5-14%+epsilon band.
	overall := m.Rate(recovery.StrategyProcessPairs, taxonomy.ClassUnknown)
	if v := overall.Value(); v < 0.04 || v > 0.15 {
		t.Errorf("overall generic survival %.3f outside the expected band", v)
	}

	// Progressive retry dominates plain process pairs.
	for _, c := range taxonomy.Classes() {
		plain := m.Rate(recovery.StrategyProcessPairs, c)
		prog := m.Rate(recovery.StrategyProgressiveRetry, c)
		if prog.Hits < plain.Hits {
			t.Errorf("%s: progressive (%d) < plain (%d)", c.Short(), prog.Hits, plain.Hits)
		}
	}

	// Clean restart beats generic recovery on leak faults but still cannot
	// fix deterministic request-triggered faults.
	cr := m.Rate(recovery.StrategyCleanRestart, taxonomy.ClassEnvDependentNonTransient)
	ppEDN := m.Rate(recovery.StrategyProcessPairs, taxonomy.ClassEnvDependentNonTransient)
	if cr.Hits <= ppEDN.Hits {
		t.Errorf("clean restart EDN survival %d should beat generic %d", cr.Hits, ppEDN.Hits)
	}
	crEI := m.Rate(recovery.StrategyCleanRestart, taxonomy.ClassEnvIndependent)
	if crEI.Value() > 0.25 {
		t.Errorf("clean restart survived %d/%d EI faults; deterministic faults should mostly recur", crEI.Hits, crEI.N)
	}

	if !strings.Contains(m.String(), "process-pairs") {
		t.Error("matrix rendering incomplete")
	}
}

func TestLee93Reconciliation(t *testing.T) {
	m, err := RunMatrix(recovery.Policy{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	l := ComputeLee93(m)
	if l.TandemReported != 0.82 || l.TandemAdjusted != 0.29 {
		t.Error("published Tandem constants wrong")
	}
	// Our generic rate must sit at or below the transient share (its
	// ceiling), and both land in the paper's 5-14% band.
	if l.OurGenericRate.Value() > l.OurTransientShare.Value() {
		t.Errorf("generic rate %.3f exceeds its transient ceiling %.3f",
			l.OurGenericRate.Value(), l.OurTransientShare.Value())
	}
	if v := l.OurTransientShare.Value(); v < 0.05 || v > 0.14 {
		t.Errorf("transient share %.3f outside 5-14%%", v)
	}
	for app, p := range l.PerApp {
		if p.Value() > 0.2 {
			t.Errorf("%s generic survival %.2f implausibly high", app, p.Value())
		}
	}
	if !strings.Contains(l.String(), "Tandem") {
		t.Error("rendering incomplete")
	}
}

func TestRetryAblation(t *testing.T) {
	ab, err := RunRetryAblation(3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Plain.N != ab.Progressive.N || ab.Plain.N != 12*3 {
		t.Fatalf("trial counts: plain %d, progressive %d", ab.Plain.N, ab.Progressive.N)
	}
	if ab.Progressive.Hits < ab.Plain.Hits {
		t.Errorf("progressive (%d) should not lose to plain (%d)", ab.Progressive.Hits, ab.Plain.Hits)
	}
	if ab.Progressive.Value() < 0.9 {
		t.Errorf("progressive survival %.2f too low", ab.Progressive.Value())
	}
	if ab.String() == "" {
		t.Error("empty rendering")
	}
}

func TestRejuvenationAblation(t *testing.T) {
	ab, err := RunRejuvenationAblation([]int{0, 16, 128}, 99)
	if err != nil {
		t.Fatal(err)
	}
	baseline := ab.Intervals[0]
	if baseline.Hits != 0 {
		t.Errorf("without rejuvenation %d/%d leak faults survived; want 0", baseline.Hits, baseline.N)
	}
	frequent := ab.Intervals[16]
	if frequent.Value() != 1.0 {
		t.Errorf("16-op rejuvenation survived %d/%d; want all", frequent.Hits, frequent.N)
	}
	if ab.String() == "" {
		t.Error("empty rendering")
	}
}

func TestClassifierSensitivity(t *testing.T) {
	points := RunClassifierSensitivity([]float64{0.25, 0.5, 1.0, 2.0})
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// At the study configuration accuracy is perfect.
	for _, p := range points {
		if p.Scale == 1.0 && p.Accuracy != 1.0 {
			t.Errorf("accuracy at scale 1.0 = %.3f", p.Accuracy)
		}
		// The environment-independent majority is robust at every scale.
		total := 0
		for _, n := range p.Counts {
			total += n
		}
		if 2*p.Counts[taxonomy.ClassEnvIndependent] < total {
			t.Errorf("scale %.2f: EI not a majority (%d of %d)", p.Scale,
				p.Counts[taxonomy.ClassEnvIndependent], total)
		}
	}
	// Crushing trigger weights flattens everything to EI.
	low := points[0]
	if low.Counts[taxonomy.ClassEnvDependentTransient] > 12 {
		t.Errorf("scale 0.25 EDT = %d", low.Counts[taxonomy.ClassEnvDependentTransient])
	}
	if RenderSensitivity(points) == "" {
		t.Error("empty rendering")
	}
}

func TestReclaimAblation(t *testing.T) {
	ab, err := RunReclaimAblation(42)
	if err != nil {
		t.Fatal(err)
	}
	if ab.WithReclaim.Value() != 1.0 {
		t.Errorf("with reclaim: %d/%d", ab.WithReclaim.Hits, ab.WithReclaim.N)
	}
	if ab.WithoutReclaim.Hits >= ab.WithReclaim.Hits {
		t.Errorf("without reclaim (%d) should lose faults vs with (%d)",
			ab.WithoutReclaim.Hits, ab.WithReclaim.Hits)
	}
	if ab.String() == "" {
		t.Error("empty rendering")
	}
}

func TestCSVExports(t *testing.T) {
	m, err := RunMatrix(recovery.Policy{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	files, err := ExportAll(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"figure1_apache.csv", "figure2_gnome.csv", "figure3_mysql.csv",
		"table1_apache.csv", "table2_gnome.csv", "table3_mysql.csv",
		"recovery_matrix.csv", "recovery_summary.csv",
	}
	for _, name := range want {
		content, ok := files[name]
		if !ok {
			t.Errorf("missing export %s", name)
			continue
		}
		lines := strings.Count(content, "\n")
		if lines < 2 {
			t.Errorf("%s has only %d lines", name, lines)
		}
	}
	if got := strings.Count(files["recovery_matrix.csv"], "\n"); got != 140 {
		t.Errorf("recovery_matrix.csv has %d lines, want 140 (header + 139 faults)", got)
	}
	if !strings.Contains(files["table1_apache.csv"], "environment-independent,36,36") {
		t.Errorf("table1 csv content wrong:\n%s", files["table1_apache.csv"])
	}
	if !strings.Contains(files["figure3_mysql.csv"], "3.23.2") {
		t.Errorf("figure3 csv missing release:\n%s", files["figure3_mysql.csv"])
	}
	// Without a matrix the recovery files are omitted.
	partial, err := ExportAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := partial["recovery_matrix.csv"]; ok {
		t.Error("nil matrix should omit recovery exports")
	}
}

func TestClassProportionIndependence(t *testing.T) {
	// The paper's reading of Figures 1 and 3: class proportions do not move
	// much across releases. Chi-square should stay well under the rough
	// critical value for the table's degrees of freedom (18.3 at dof=10,
	// alpha=0.05).
	for _, fig := range []*FigureSeries{Figure1Apache(), Figure3MySQL()} {
		chi2, dof := ClassReleaseIndependence(fig)
		if dof == 0 {
			t.Fatalf("%s: degenerate table", fig.App)
		}
		if chi2 > 2.2*float64(dof) {
			t.Errorf("%s: chi2=%.2f at dof=%d; class proportions shift too much across releases",
				fig.App, chi2, dof)
		}
	}
}

func TestMitigationAblation(t *testing.T) {
	ab, err := RunMitigationAblation(42)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Plain.Hits != 0 {
		t.Errorf("plain process pairs survived %d EDN faults; want 0", ab.Plain.Hits)
	}
	if ab.Governed.Hits == 0 {
		t.Error("the governor rescued nothing; the §6.2 mitigation should work for growable resources")
	}
	if ab.Governed.Hits >= ab.Governed.N {
		t.Errorf("governor rescued all %d EDN faults; host-config conditions must remain fatal", ab.Governed.N)
	}
	for _, id := range ab.Rescued {
		f, ok := corpus.ByID(id)
		if !ok {
			t.Fatalf("unknown rescued fault %s", id)
		}
		switch f.Trigger {
		case taxonomy.TriggerHostConfig:
			t.Errorf("%s: the governor cannot fix host configuration", id)
		}
	}
	if ab.String() == "" {
		t.Error("empty rendering")
	}
}

func TestOpsToFailureMonotone(t *testing.T) {
	points, err := RunOpsToFailure(5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	// No CGI -> never fails.
	if points[0].Failed {
		t.Errorf("static-only mix failed at op %d", points[0].OpsToFailure)
	}
	// More resource-consuming load -> failure arrives no later.
	for i := 2; i < len(points); i++ {
		if !points[i].Failed {
			t.Errorf("%s never failed", points[i].Label)
			continue
		}
		if points[i].OpsToFailure > points[i-1].OpsToFailure {
			t.Errorf("%s failed at %d ops, later than lighter mix %s at %d",
				points[i].Label, points[i].OpsToFailure, points[i-1].Label, points[i-1].OpsToFailure)
		}
	}
	if RenderOpsToFailure(points) == "" {
		t.Error("empty rendering")
	}
}

func TestRecoveryMatrixDeterministic(t *testing.T) {
	a, err := RunMatrix(recovery.Policy{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMatrix(recovery.Policy{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.PerFault) != len(b.PerFault) {
		t.Fatal("matrix sizes differ")
	}
	for i := range a.PerFault {
		fa, fb := a.PerFault[i], b.PerFault[i]
		if fa.FaultID != fb.FaultID {
			t.Fatalf("fault order differs at %d", i)
		}
		for _, s := range a.Strategies {
			if fa.Survived[s] != fb.Survived[s] {
				t.Errorf("%s under %s: %v vs %v across identical runs",
					fa.FaultID, s, fa.Survived[s], fb.Survived[s])
			}
		}
	}
}

func TestRecoveryMatrixStableAcrossSeeds(t *testing.T) {
	// The class-level shape must hold for any seed, not just the default:
	// EI and EDN survival are exactly zero under generic recovery, and EDT
	// survival stays near-total (individual race retries are probabilistic
	// within the 3-attempt budget).
	for _, seed := range []int64{1, 1999, 123456} {
		m, err := RunMatrix(recovery.Policy{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if hits := m.Rate(recovery.StrategyProcessPairs, taxonomy.ClassEnvIndependent).Hits; hits != 0 {
			t.Errorf("seed %d: EI survival %d", seed, hits)
		}
		if hits := m.Rate(recovery.StrategyProcessPairs, taxonomy.ClassEnvDependentNonTransient).Hits; hits != 0 {
			t.Errorf("seed %d: EDN survival %d", seed, hits)
		}
		edt := m.Rate(recovery.StrategyProcessPairs, taxonomy.ClassEnvDependentTransient)
		if edt.Value() < 0.9 {
			t.Errorf("seed %d: EDT survival %d/%d", seed, edt.Hits, edt.N)
		}
	}
}

func TestPerAppGenericSurvivalBand(t *testing.T) {
	// The paper's 5-14% per-application band, measured end to end.
	m, err := RunMatrix(recovery.Policy{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range taxonomy.Applications() {
		p := m.AppRate(recovery.StrategyProcessPairs, app)
		if v := p.Value(); v < 0.04 || v > 0.15 {
			t.Errorf("%s generic survival %.3f (%d/%d) outside the paper's band",
				app, v, p.Hits, p.N)
		}
	}
}
