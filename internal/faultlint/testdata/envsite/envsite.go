// Package envsite is a fixture: seeded fault-raise sites under each
// environmental-facility shape the analyzer classifies.
package envsite

import (
	"sim/faultinject"
)

const (
	mechDisk = "app/disk-full"
	mechDNS  = "app/dns-error"
)

type disk struct{}

func (disk) Append(name string, n int) error { return nil }

type dns struct{}

func (dns) Lookup(host string) (string, error) { return "", nil }

type sim struct{}

func (sim) Disk() disk       { return disk{} }
func (sim) DNS() dns         { return dns{} }
func (sim) Hostname() string { return "" }

// fill raises behind a persistent-condition facility: predicted EDN.
func fill(env sim) error {
	if err := env.Disk().Append("wal", 4096); err != nil {
		return faultinject.Fail(mechDisk, "crash", "disk full") // want EDN
	}
	return nil
}

// resolve raises behind a self-healing facility: predicted EDT.
func resolve(env sim, host string) error {
	addr, err := env.DNS().Lookup(host)
	if err != nil || addr == "" {
		return faultinject.Fail(mechDNS, "hang", "no address") // want EDT
	}
	return nil
}

// greet raises behind a direct env method (host configuration): EDN.
func greet(env sim) error {
	name := env.Hostname()
	if name == "" {
		return faultinject.Fail("app/hostname", "wrong", "empty hostname") // want EDN
	}
	return nil
}

// compute raises with no environment operation in scope: workload-only EI.
func compute(n int) error {
	if n > 10 {
		return faultinject.Fail("app/bounds", "wrong", "overflow") // want EI
	}
	return nil
}

// wrap raises through FailCause with no visible facility: the
// persistent-condition prior applies (EDN).
func wrap(err error) error {
	if err != nil {
		return faultinject.FailCause("app/fs", "crash", "io", err) // want EDN
	}
	return nil
}

// template is the template-bug pattern: the mechanism key is computed, so
// attribution comes from the enclosing case clause.
func template(key string) error {
	switch key {
	case "app/null-deref", "app/bad-init":
		return faultinject.Fail(key, "crash", "template bug") // want EI
	}
	return nil
}
