package component

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Spec declares one component's position in a Tree: the component itself,
// the components it requires, and what its crash-only reboot costs on the
// virtual clock.
type Spec struct {
	// Component is the unit being added.
	Component Component
	// Deps names the components this one requires. Dependencies must already
	// be in the tree, which keeps the graph acyclic by construction.
	Deps []string
	// StartCost is the virtual time one Start of this component charges —
	// the price of a microreboot, in simulated milliseconds.
	StartCost time.Duration
}

// Tree is a dependency-ordered collection of crash-only components — the
// componentized application's skeleton. It starts components in dependency
// order, stops them in reverse, and reboots a single component (or the
// subtree that depends on it) on demand, charging reboot time to the
// virtual clock.
//
// Tree methods are safe for concurrent use: one goroutine may reboot a
// component while others query liveness and serve through siblings.
type Tree struct {
	clock Clock

	mu    sync.Mutex
	nodes map[string]*node
	order []string // insertion order; dependencies precede dependents
	// reboots counts completed component reboots by name.
	reboots map[string]int
}

// node is one tree entry.
type node struct {
	spec Spec
}

// NewTree builds an empty tree over the given clock.
func NewTree(clock Clock) *Tree {
	return &Tree{
		clock:   clock,
		nodes:   make(map[string]*node),
		reboots: make(map[string]int),
	}
}

// Add inserts a component. It is an error to reuse a name or to depend on a
// component that has not been added yet (the ordering rule that keeps the
// dependency graph acyclic).
func (t *Tree) Add(spec Spec) error {
	if spec.Component == nil {
		return errors.New("component: Add with nil component")
	}
	name := spec.Component.Name()
	if name == "" {
		return errors.New("component: Add with empty name")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.nodes[name]; dup {
		return fmt.Errorf("component: %q already in tree", name)
	}
	for _, dep := range spec.Deps {
		if _, ok := t.nodes[dep]; !ok {
			return fmt.Errorf("component: %q depends on unknown %q (dependencies must be added first)", name, dep)
		}
	}
	t.nodes[name] = &node{spec: spec}
	t.order = append(t.order, name)
	return nil
}

// MustAdd adds and panics on error; for fixed catalogues whose shape is a
// compile-time property of the application.
func (t *Tree) MustAdd(spec Spec) {
	if err := t.Add(spec); err != nil {
		panic(err)
	}
}

// Names returns the component names in dependency order.
func (t *Tree) Names() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// lookup returns the node for name or an error.
func (t *Tree) lookup(name string) (*node, error) {
	n, ok := t.nodes[name]
	if !ok {
		return nil, fmt.Errorf("component: unknown component %q", name)
	}
	return n, nil
}

// StartAll starts every component in dependency order, charging each
// component's StartCost. It stops at the first failure, leaving earlier
// components up.
func (t *Tree) StartAll() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, name := range t.order {
		n := t.nodes[name]
		if n.spec.Component.Running() {
			continue
		}
		t.clock.Advance(n.spec.StartCost)
		if err := n.spec.Component.Start(); err != nil {
			return fmt.Errorf("component: start %s: %w", name, err)
		}
	}
	return nil
}

// StopAll stops every component in reverse dependency order.
func (t *Tree) StopAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.order) - 1; i >= 0; i-- {
		t.nodes[t.order[i]].spec.Component.Stop()
	}
}

// KillAll crash-stops every component in reverse dependency order — the
// whole-process crash, for the recovery arms that model it.
func (t *Tree) KillAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.order) - 1; i >= 0; i-- {
		t.nodes[t.order[i]].spec.Component.Kill()
	}
}

// Running reports whether the named component is up; unknown names are not
// running.
func (t *Tree) Running(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[name]
	return ok && n.spec.Component.Running()
}

// AllRunning reports whether every component is up.
func (t *Tree) AllRunning() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, name := range t.order {
		if !t.nodes[name].spec.Component.Running() {
			return false
		}
	}
	return true
}

// Probe runs every component's health probe and returns the findings by
// component name (empty map when everything is healthy).
func (t *Tree) Probe() map[string]error {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]error)
	for _, name := range t.order {
		if err := t.nodes[name].spec.Component.Probe(); err != nil {
			out[name] = err
		}
	}
	return out
}

// SubtreeOf returns name followed by every transitive dependent, in
// dependency order — the set a subtree reboot cycles.
func (t *Tree) SubtreeOf(name string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.subtreeLocked(name)
}

func (t *Tree) subtreeLocked(name string) []string {
	in := map[string]bool{name: true}
	// One forward pass over insertion order suffices: dependencies precede
	// dependents, so a dependent of anything already in the set is seen
	// after it.
	var out []string
	for _, n := range t.order {
		if !in[n] {
			for _, dep := range t.nodes[n].spec.Deps {
				if in[dep] {
					in[n] = true
					break
				}
			}
		}
		if in[n] {
			out = append(out, n)
		}
	}
	return out
}

// RebootCost returns the virtual time a Reboot of name charges (zero for
// unknown names).
func (t *Tree) RebootCost(name string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[name]
	if !ok {
		return 0
	}
	return n.spec.StartCost
}

// SubtreeCost returns the virtual time a RebootSubtree of name charges: the
// summed StartCost of the component and its transitive dependents.
func (t *Tree) SubtreeCost(name string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total time.Duration
	for _, n := range t.subtreeLocked(name) {
		total += t.nodes[n].spec.StartCost
	}
	return total
}

// Kill crash-stops one component without restarting it — the first half of
// a windowed reboot. Serving continues through siblings; operations routed
// through the dead component observe DownError until Restart brings it
// back.
func (t *Tree) Kill(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, err := t.lookup(name)
	if err != nil {
		return err
	}
	n.spec.Component.Kill()
	return nil
}

// Restart brings one killed component back up, charging its StartCost to
// the clock and counting the completed reboot.
func (t *Tree) Restart(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.restartLocked(name)
}

func (t *Tree) restartLocked(name string) error {
	n, err := t.lookup(name)
	if err != nil {
		return err
	}
	t.clock.Advance(n.spec.StartCost)
	if err := n.spec.Component.Start(); err != nil {
		return fmt.Errorf("component: restart %s: %w", name, err)
	}
	t.reboots[name]++
	return nil
}

// Reboot microreboots one component: crash-stop, then start, charging the
// StartCost. Siblings are untouched — this is the cheap recovery the
// escalation ladder's microreboot rung engages.
func (t *Tree) Reboot(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, err := t.lookup(name)
	if err != nil {
		return err
	}
	n.spec.Component.Kill()
	return t.restartLocked(name)
}

// RebootSubtree reboots the named component and every transitive dependent:
// all are crash-stopped in reverse dependency order, then restarted in
// dependency order — the escalation between a leaf microreboot and a
// whole-process restart.
func (t *Tree) RebootSubtree(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	sub := t.subtreeLocked(name)
	if len(sub) == 0 {
		return fmt.Errorf("component: unknown component %q", name)
	}
	for i := len(sub) - 1; i >= 0; i-- {
		t.nodes[sub[i]].spec.Component.Kill()
	}
	for _, n := range sub {
		if err := t.restartLocked(n); err != nil {
			return err
		}
	}
	return nil
}

// Reboots returns how many completed reboots the named component has had.
func (t *Tree) Reboots(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reboots[name]
}

// TotalReboots returns the completed reboot count across all components.
func (t *Tree) TotalReboots() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for _, n := range t.reboots {
		total += n
	}
	return total
}
