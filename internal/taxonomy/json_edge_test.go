package taxonomy

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONUnknownClassRoundTrip: the zero (unclassified) value is a legal
// corpus state — it must survive serialization, and the "unknown" spelling
// must parse back to it for every enum that admits one.
func TestJSONUnknownClassRoundTrip(t *testing.T) {
	data, err := json.Marshal(ClassUnknown)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"unknown"` {
		t.Fatalf("ClassUnknown marshals as %s, want \"unknown\"", data)
	}
	var c FaultClass = ClassEnvIndependent
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	if c != ClassUnknown {
		t.Errorf("round trip of unknown class = %v", c)
	}
	// The empty spelling is the documented alias for unclassified.
	if err := json.Unmarshal([]byte(`""`), &c); err != nil {
		t.Errorf(`"" should parse as the unknown class: %v`, err)
	}

	var k TriggerKind = TriggerRace
	if err := json.Unmarshal([]byte(`"unknown"`), &k); err != nil {
		t.Fatalf(`trigger "unknown": %v`, err)
	}
	if k != TriggerUnknownKind {
		t.Errorf("trigger round trip = %v", k)
	}
}

// TestJSONInvalidStringsRejected: every enum decoder must reject an
// unrecognized name with an error that names the offending value, not
// silently coerce it to the zero value.
func TestJSONInvalidStringsRejected(t *testing.T) {
	bad := []byte(`"sideways"`)
	var (
		c  FaultClass
		k  TriggerKind
		sy Symptom
		sv Severity
		a  Application
	)
	for name, err := range map[string]error{
		"class":       json.Unmarshal(bad, &c),
		"trigger":     json.Unmarshal(bad, &k),
		"symptom":     json.Unmarshal(bad, &sy),
		"severity":    json.Unmarshal(bad, &sv),
		"application": json.Unmarshal(bad, &a),
	} {
		if err == nil {
			t.Errorf("%s: %s accepted", name, bad)
			continue
		}
		if !strings.Contains(err.Error(), "sideways") {
			t.Errorf("%s: error does not name the bad value: %v", name, err)
		}
	}
}

// TestJSONNonStringPayloadsRejected: integers and objects are type errors
// for every enum — the wire format is names only.
func TestJSONNonStringPayloadsRejected(t *testing.T) {
	for _, payload := range []string{`17`, `{"name":"race"}`, `true`} {
		var (
			c  FaultClass
			k  TriggerKind
			sy Symptom
			sv Severity
			a  Application
		)
		targets := map[string]error{
			"class":       json.Unmarshal([]byte(payload), &c),
			"trigger":     json.Unmarshal([]byte(payload), &k),
			"symptom":     json.Unmarshal([]byte(payload), &sy),
			"severity":    json.Unmarshal([]byte(payload), &sv),
			"application": json.Unmarshal([]byte(payload), &a),
		}
		for name, err := range targets {
			if err == nil {
				t.Errorf("%s: payload %s accepted", name, payload)
			}
		}
	}
}

// TestJSONOutOfRangeValueMarshals: an out-of-range enum value marshals as
// its debug spelling and then fails to parse — corruption is caught at the
// next read, not hidden.
func TestJSONOutOfRangeValueMarshals(t *testing.T) {
	data, err := json.Marshal(FaultClass(42))
	if err != nil {
		t.Fatal(err)
	}
	var c FaultClass
	if err := json.Unmarshal(data, &c); err == nil {
		t.Errorf("out-of-range class %s round-tripped silently", data)
	}
}
