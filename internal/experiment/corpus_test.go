package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"faultstudy/internal/corpusgen"
	"faultstudy/internal/stats"
	"faultstudy/internal/supervise"
	"faultstudy/internal/taxonomy"
)

// corpusTestConfig is a small, fast CORPUS population: every phase runs —
// classification, ladder, episodes, baseline, goodness of fit, site crawl —
// at a fraction of the default scale.
func corpusTestConfig(tel *Telemetry, workers int) CorpusConfig {
	return CorpusConfig{
		Seed:       42,
		Spec:       "faults=120;episodes=30",
		Supervise:  supervise.Config{GrowResources: true},
		SiteFaults: 400,
		CrawlPages: 40,
		Telemetry:  tel,
		Workers:    workers,
	}
}

// corpusDump renders everything a CORPUS run produces: the report and the
// telemetry trace, timeline, and metric dumps.
func corpusDump(t *testing.T, workers int) string {
	t.Helper()
	tel := NewTelemetry()
	rep, err := RunCorpus(corpusTestConfig(tel, workers))
	if err != nil {
		t.Fatalf("RunCorpus(workers=%d): %v", workers, err)
	}
	var b bytes.Buffer
	b.WriteString(rep.String())
	if err := tel.WriteTrace(&b); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := tel.WriteTimeline(&b); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// TestCorpusWorkerInvariance is the determinism contract: the CORPUS report,
// trace, timeline, and metrics dump are byte-identical at 1, 2, and 8
// workers.
func TestCorpusWorkerInvariance(t *testing.T) {
	serial := corpusDump(t, 1)
	for _, workers := range []int{2, 8} {
		if got := corpusDump(t, workers); got != serial {
			t.Fatalf("CORPUS output at %d workers differs from serial run", workers)
		}
	}
}

// TestCorpusGate runs the experiment once and asserts the CI gate plus the
// mechanics behind it: population sizes honour the spec, every class was
// sampled and graded, both episode modes ran, the samplers fit, and the site
// crawl sample is gap-free.
func TestCorpusGate(t *testing.T) {
	tel := NewTelemetry()
	rep, err := RunCorpus(corpusTestConfig(tel, 0))
	if err != nil {
		t.Fatalf("RunCorpus: %v", err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.Faults != 120 || rep.Episodes != 30 {
		t.Fatalf("population %d/%d, want 120/30", rep.Faults, rep.Episodes)
	}
	total := 0
	for _, st := range rep.Classes {
		if st.Agreement.N != st.NotLost.N {
			t.Fatalf("%s graded %d classifications but %d ladder runs", st.Class.Short(), st.Agreement.N, st.NotLost.N)
		}
		if st.NotLost.N == 0 {
			t.Fatalf("class %s never sampled at n=120", st.Class.Short())
		}
		if st.Curated.N == 0 {
			t.Fatalf("class %s has no curated baseline runs", st.Class.Short())
		}
		if st.Covered.N == 0 {
			t.Fatalf("class %s has no curated-covered generated runs", st.Class.Short())
		}
		total += st.NotLost.N
	}
	if total != rep.Faults {
		t.Fatalf("class rows cover %d faults of %d", total, rep.Faults)
	}
	eps := 0
	for _, es := range rep.EpisodeStats {
		if es.NotLost.N == 0 {
			t.Fatalf("no %s episodes at n=30", es.Overlap)
		}
		eps += es.NotLost.N
	}
	if eps != rep.Episodes {
		t.Fatalf("episode rows cover %d episodes of %d", eps, rep.Episodes)
	}
	if len(rep.GOF) != 6 {
		t.Fatalf("%d GOF dimensions, want 6", len(rep.GOF))
	}
	if rep.SiteCrawled != 40 || rep.SiteGaps != 0 {
		t.Fatalf("crawl sample %d ok %d gaps, want 40/0", rep.SiteCrawled, rep.SiteGaps)
	}
	if !strings.Contains(rep.String(), "CORPUS experiment") {
		t.Fatal("report misses headline")
	}
	// The corpus metric family landed on the merged registry.
	var prom bytes.Buffer
	if err := tel.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, metric := range []string{
		MetricCorpusFaults, MetricCorpusClassified, MetricCorpusEpisodes,
		MetricCorpusGOFChi, MetricCorpusDrift, MetricCorpusSitePages, MetricCorpusCrawled,
	} {
		if !strings.Contains(prom.String(), metric) {
			t.Errorf("metrics dump misses %s", metric)
		}
	}
}

// TestCorpusNilTelemetry proves the telemetry hook is optional.
func TestCorpusNilTelemetry(t *testing.T) {
	rep, err := RunCorpus(corpusTestConfig(nil, 1))
	if err != nil {
		t.Fatalf("RunCorpus: %v", err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

// TestCorpusBadSpec propagates parse errors instead of running.
func TestCorpusBadSpec(t *testing.T) {
	if _, err := RunCorpus(CorpusConfig{Spec: "class=100%unknown"}); err == nil {
		t.Fatal("bad spec accepted")
	}
}

// TestCorpusCheckGates exercises every Check failure branch on a synthetic
// report.
func TestCorpusCheckGates(t *testing.T) {
	good := func() *CorpusReport {
		return &CorpusReport{
			Faults: 100, Episodes: 10,
			DriftBand: 10, MinAgreement: 0.98, MinSitePages: 100,
			Classes: []CorpusClassStat{{
				Class:        taxonomy.ClassEnvIndependent,
				Agreement:    stats.Proportion{Hits: 100, N: 100},
				NotLost:      stats.Proportion{Hits: 30, N: 100},
				Covered:      stats.Proportion{Hits: 22, N: 80},
				Curated:      stats.Proportion{Hits: 7, N: 100},
				BaselineRate: 22.0 / 80,
			}},
			EpisodeStats: []CorpusEpisodeStat{
				{Overlap: "concurrent", NotLost: stats.Proportion{Hits: 2, N: 6}},
				{Overlap: "cascade", NotLost: stats.Proportion{Hits: 1, N: 4}},
			},
			GOF:       []corpusgen.GOFResult{{Dimension: "class", N: 100, DOF: 1, ChiSquare: 1, Critical: 10.828}},
			SitePages: 120,
		}
	}
	if err := good().Check(); err != nil {
		t.Fatalf("good report fails: %v", err)
	}
	cases := []struct {
		name  string
		mut   func(*CorpusReport)
		wants string
	}{
		{"gof", func(r *CorpusReport) { r.GOF[0].ChiSquare = math.Inf(1) }, "goodness of fit"},
		{"agreement", func(r *CorpusReport) { r.Classes[0].Agreement.Hits = 90 }, "agreement"},
		{"drift", func(r *CorpusReport) { r.Classes[0].BaselineRate = 0.9 }, "drifts"},
		{"episode-mode", func(r *CorpusReport) { r.EpisodeStats[1].NotLost.N = 0 }, "cascade"},
		{"site-floor", func(r *CorpusReport) { r.SitePages = 99 }, "floor"},
		{"crawl-gap", func(r *CorpusReport) { r.SiteGaps = 3 }, "gap"},
	}
	for _, tc := range cases {
		r := good()
		tc.mut(r)
		err := r.Check()
		if err == nil {
			t.Errorf("%s: mutated report passes", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wants) {
			t.Errorf("%s: error %q misses %q", tc.name, err, tc.wants)
		}
	}
}

// TestCorpusEpisodeSpansApps guards the duet invariant: mechanisms from two
// applications cannot form an episode.
func TestCorpusEpisodeSpansApps(t *testing.T) {
	if _, _, _, err := buildDuet("httpd/heap-leak", "sqldb/heap-leak", 1); err == nil {
		t.Fatal("cross-application duet accepted")
	}
}
