// Quickstart: classify bug reports with the study's fault taxonomy.
//
// The example builds the classifier, feeds it three bug reports (one per
// class), and prints the decisions — then checks the whole 139-fault corpus
// against the paper's aggregate numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"faultstudy"
)

func main() {
	classifier := faultstudy.NewClassifier(faultstudy.ClassifierOptions{})

	reports := []*faultstudy.Report{
		{
			ID:          "demo-1",
			App:         faultstudy.AppApache,
			Synopsis:    "server dies with a segfault when the submitted URL is very long",
			Description: "Happens every time, on every machine we tried. Overflow in the hash calculation.",
			HowToRepeat: "Request a URL of 9000 characters.",
		},
		{
			ID:          "demo-2",
			App:         faultstudy.AppMySQL,
			Synopsis:    "all inserts fail on the production box",
			Description: "A full file system prevents all operations until the operator frees space.",
			HowToRepeat: "Fill the data partition, then INSERT.",
		},
		{
			ID:          "demo-3",
			App:         faultstudy.AppGnome,
			Synopsis:    "panel dies occasionally when applets are removed",
			Description: "Looks like a race condition between the applet action and its removal; not reliably reproducible, works on a retry.",
			HowToRepeat: "Remove an applet at the exact moment it acts; timing dependent.",
		},
	}

	fmt.Println("Classifying three reports:")
	for _, r := range reports {
		decision := classifier.Classify(r)
		fmt.Printf("  %-12s -> %-36s trigger=%-14s confidence=%.2f\n",
			r.ID, decision.Class, decision.Trigger, decision.Confidence)
		fmt.Printf("               evidence: %v\n", decision.Evidence)
	}

	fmt.Println("\nThe study's aggregate over the full 139-fault corpus:")
	fmt.Print(faultstudy.Aggregate())

	fmt.Println("\nConclusion (paper §8): only the small transient slice is survivable")
	fmt.Println("by generic recovery; everything else needs application knowledge.")
}
