package sqldb

import "testing"

// TestServeWarmAndMix verifies warmup creates the serve table and that every
// category of the 55/20/15/10 mix executes cleanly against it, with lazy
// per-user session connects.
func TestServeWarmAndMix(t *testing.T) {
	c := newComponentized(t)
	if err := c.ServeWarm(); err != nil {
		t.Fatalf("ServeWarm: %v", err)
	}
	cases := []struct {
		u    float64
		want string
	}{
		{0, ServeSelect},
		{0.549, ServeSelect},
		{0.55, ServeInsert},
		{0.749, ServeInsert},
		{0.75, ServeCount},
		{0.899, ServeCount},
		{0.90, ServeUpdate},
		{0.999, ServeUpdate},
	}
	for i, tc := range cases {
		cat, comp, err := c.ServeArrival(i, i%5, tc.u)
		if cat != tc.want {
			t.Errorf("u=%v category %q, want %q", tc.u, cat, tc.want)
		}
		if err != nil {
			t.Errorf("u=%v healthy serve errored: %v", tc.u, err)
		}
		if comp != "" {
			t.Errorf("u=%v healthy serve named down component %q", tc.u, comp)
		}
	}
	if !c.SessionAlive("u00000") {
		t.Error("ServeArrival did not connect the user session")
	}
}

// TestServeArrivalRefusedNamesComponent pins the refusal contract: a
// statement through a down executor names the executor; after the reboot the
// same user serves again without reconnecting.
func TestServeArrivalRefusedNamesComponent(t *testing.T) {
	c := newComponentized(t)
	if err := c.ServeWarm(); err != nil {
		t.Fatalf("ServeWarm: %v", err)
	}
	if _, _, err := c.ServeArrival(0, 9, 0.1); err != nil {
		t.Fatalf("pre-kill serve: %v", err)
	}
	c.Tree().Kill(CompExecutor)
	if _, comp, err := c.ServeArrival(1, 9, 0.1); err == nil || comp != CompExecutor {
		t.Fatalf("select through dead executor: comp=%q err=%v, want refusal naming %q", comp, err, CompExecutor)
	}
	if err := c.Tree().Reboot(CompExecutor); err != nil {
		t.Fatalf("reboot executor: %v", err)
	}
	if _, comp, err := c.ServeArrival(2, 9, 0.1); err != nil || comp != "" {
		t.Fatalf("post-reboot serve: comp=%q err=%v, want clean serve", comp, err)
	}
}
