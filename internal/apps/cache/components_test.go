package cache

import (
	"errors"
	"testing"

	"faultstudy/internal/component"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
)

func newComponentized(t *testing.T, mechs ...string) *Componentized {
	t.Helper()
	env := simenv.New(1, simenv.WithFDLimit(64))
	c := Componentize(New(env, faultinject.NewSet(mechs...), Config{}), component.NewStore())
	if err := c.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return c
}

func TestComponentForCoversEveryMechanism(t *testing.T) {
	reg := faultinject.NewRegistry()
	RegisterMechanisms(reg)
	c := newComponentized(t)
	parts := map[string]bool{}
	for _, name := range c.Tree().Names() {
		parts[name] = true
	}
	for _, key := range reg.Keys() {
		comp, ok := c.ComponentFor(key)
		if !ok {
			t.Errorf("mechanism %s maps to no component", key)
			continue
		}
		if !parts[comp] {
			t.Errorf("mechanism %s maps to unknown component %s", key, comp)
		}
	}
	if len(componentFor) != len(reg.Keys()) {
		t.Errorf("%d component mappings vs %d mechanisms", len(componentFor), len(reg.Keys()))
	}
}

func TestHotKeysSurviveRebootAndRestart(t *testing.T) {
	// The externalization regression test: a session's hot-key counter must
	// survive a core microreboot, a subtree reboot, and a process restart.
	c := newComponentized(t)
	if err := c.ServeWarm(); err != nil {
		t.Fatalf("warm: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := c.ServeArrival(i, 1, 0.10); err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
	}
	if v, ok := c.Store().Get(HotKeyBucket, "u00001"); !ok || v != "2" {
		t.Fatalf("hot-key counter = %q/%v, want 2", v, ok)
	}

	if err := c.Tree().Reboot(CompCore); err != nil {
		t.Fatalf("reboot core: %v", err)
	}
	if v, _ := c.Store().Get(HotKeyBucket, "u00001"); v != "2" {
		t.Fatalf("hot key lost in core reboot: %q", v)
	}
	if err := c.Tree().RebootSubtree(CompCore); err != nil {
		t.Fatalf("reboot subtree: %v", err)
	}
	if v, _ := c.Store().Get(HotKeyBucket, "u00001"); v != "2" {
		t.Fatalf("hot key lost in subtree reboot: %q", v)
	}

	snap, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	c.Stop()
	if err := c.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if _, _, err := c.ServeArrival(2, 1, 0.10); err != nil {
		t.Fatalf("arrival after restart: %v", err)
	}
	if v, _ := c.Store().Get(HotKeyBucket, "u00001"); v != "3" {
		t.Fatalf("hot key did not resume across restart: %q, want 3", v)
	}
}

func TestServeRefusesThroughDownComponents(t *testing.T) {
	c := newComponentized(t)
	if err := c.ServeWarm(); err != nil {
		t.Fatal(err)
	}
	if err := c.Tree().Kill(CompSweeper); err != nil {
		t.Fatalf("kill sweeper: %v", err)
	}
	// Miss fills and deletes route through the sweeper and must refuse…
	for _, u := range []float64{0.70, 0.92} {
		category, comp, err := c.ServeArrival(0, 1, u)
		var de *component.DownError
		if !errors.As(err, &de) || de.Component != CompSweeper || comp != CompSweeper {
			t.Fatalf("%s with sweeper down: comp=%q err=%v", category, comp, err)
		}
	}
	// …while hits, sets, and stats keep serving.
	for _, u := range []float64{0.10, 0.80, 0.97} {
		if category, _, err := c.ServeArrival(1, 1, u); err != nil {
			t.Fatalf("%s failed during sweeper outage: %v", category, err)
		}
	}
	if err := c.Tree().Restart(CompSweeper); err != nil {
		t.Fatalf("restart sweeper: %v", err)
	}
	if _, _, err := c.ServeArrival(2, 1, 0.70); err != nil {
		t.Fatalf("miss after sweeper restart: %v", err)
	}

	// A dead listener refuses every category.
	if err := c.Tree().Kill(CompListener); err != nil {
		t.Fatalf("kill listener: %v", err)
	}
	for _, u := range []float64{0.10, 0.70, 0.80, 0.92, 0.97} {
		category, comp, err := c.ServeArrival(3, 1, u)
		if err == nil || comp != CompListener {
			t.Fatalf("%s served through a dead listener: comp=%q err=%v", category, comp, err)
		}
	}
}

func TestPersistDownDegradesToUnpersisted(t *testing.T) {
	c := newComponentized(t)
	if err := c.ServeWarm(); err != nil {
		t.Fatal(err)
	}
	if err := c.Tree().Kill(CompPersist); err != nil {
		t.Fatalf("kill persist: %v", err)
	}
	c.srv.mu.Lock()
	suspended := c.srv.aofSuspended
	c.srv.mu.Unlock()
	if !suspended {
		t.Fatal("persist kill did not suspend the append-only log")
	}
	// Mutations still serve — unpersisted rather than refused.
	if category, comp, err := c.ServeArrival(0, 1, 0.80); err != nil {
		t.Fatalf("%s with persist down: comp=%q err=%v", category, comp, err)
	}
	if err := c.Tree().Restart(CompPersist); err != nil {
		t.Fatalf("restart persist: %v", err)
	}
	c.srv.mu.Lock()
	suspended = c.srv.aofSuspended
	c.srv.mu.Unlock()
	if suspended {
		t.Fatal("persist restart did not resume the append-only log")
	}
}

func TestListenerRebootDropsLeakedDescriptors(t *testing.T) {
	// The crash-only payoff for the leak mechanisms: rebooting the listener
	// closes every leaked connection descriptor and rebinds the port clean,
	// where a generic restore would faithfully re-leak them.
	c := newComponentized(t, MechConnFDLeak)
	if err := c.ServeWarm(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := c.ServeArrival(i, 1, 0.10); err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
	}
	c.srv.mu.Lock()
	held := len(c.srv.connFDs)
	c.srv.mu.Unlock()
	if held == 0 {
		t.Fatal("leak mechanism held no descriptors")
	}
	if err := c.Tree().Reboot(CompListener); err != nil {
		t.Fatalf("reboot listener: %v", err)
	}
	c.srv.mu.Lock()
	held, want := len(c.srv.connFDs), c.srv.connFDWant
	c.srv.mu.Unlock()
	if held != 0 || want != 0 {
		t.Fatalf("listener reboot kept leaks: fds=%d want=%d", held, want)
	}
	if _, _, err := c.ServeArrival(9, 1, 0.10); err != nil {
		t.Fatalf("arrival after listener reboot: %v", err)
	}
}

func TestContainCrashRevivesProcess(t *testing.T) {
	// Crash containment: a seeded crash marks the process dead, containment
	// brings the process flag back, and rebooting the attributed component
	// restores service with the crash window (lastFlush, shadow copies) reset.
	c := newComponentized(t, MechEmptyKeyDeref)
	_, err := c.srv.Get("")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechEmptyKeyDeref {
		t.Fatalf("bug path error = %v", err)
	}
	if c.Running() {
		t.Fatal("process alive after seeded crash")
	}
	comp, ok := c.ComponentFor(MechEmptyKeyDeref)
	if !ok || comp != CompCore {
		t.Fatalf("ComponentFor = %q/%v", comp, ok)
	}
	c.ContainCrash()
	if !c.Running() {
		t.Fatal("process dead after containment")
	}
	if err := c.Tree().Reboot(comp); err != nil {
		t.Fatalf("reboot: %v", err)
	}
	if v, err := c.srv.Get("motd"); err != nil || v == "" {
		t.Fatalf("serve after contained reboot: %q, %v", v, err)
	}
	if got := c.Tree().Reboots(comp); got != 1 {
		t.Errorf("core reboots = %d, want 1", got)
	}
}

func TestCoreRebootClearsShadowCopies(t *testing.T) {
	c := newComponentized(t, MechShadowCopyLeak)
	for i := 0; i < 5; i++ {
		if err := c.srv.Set("k", "v"); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	c.srv.mu.Lock()
	leaked := c.srv.shadowBytes
	c.srv.mu.Unlock()
	if leaked != 5 {
		t.Fatalf("shadow copies = %d, want 5", leaked)
	}
	if err := c.Tree().Reboot(CompCore); err != nil {
		t.Fatalf("reboot core: %v", err)
	}
	c.srv.mu.Lock()
	leaked = c.srv.shadowBytes
	c.srv.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("core reboot kept %d shadow copies", leaked)
	}
}
