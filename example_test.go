package faultstudy_test

import (
	"fmt"

	"faultstudy"
)

// Classify a bug report with the study's rule classifier.
func ExampleNewClassifier() {
	classifier := faultstudy.NewClassifier(faultstudy.ClassifierOptions{})
	decision := classifier.Classify(&faultstudy.Report{
		ID:          "demo",
		App:         faultstudy.AppMySQL,
		Synopsis:    "server dies under load",
		Description: "race condition between threads; not reliably reproducible, works on a retry",
	})
	fmt.Println(decision.Class)
	fmt.Println(decision.Trigger)
	// Output:
	// environment-dependent-transient
	// race
}

// Regenerate Table 1 from the corpus and compare with the paper.
func ExampleTable() {
	res := faultstudy.Table(faultstudy.AppApache)
	fmt.Println(res.Matches())
	fmt.Println(res.Counts[faultstudy.ClassEnvIndependent],
		res.Counts[faultstudy.ClassEnvDependentNonTransient],
		res.Counts[faultstudy.ClassEnvDependentTransient])
	// Output:
	// true
	// 36 7 7
}

// Reproduce the §5.4 aggregate: 139 faults, 10% nontransient, 9% transient.
func ExampleAggregate() {
	agg := faultstudy.Aggregate()
	fmt.Println(agg.Total)
	fmt.Println(agg.Counts[faultstudy.ClassEnvDependentNonTransient],
		agg.Counts[faultstudy.ClassEnvDependentTransient])
	// Output:
	// 139
	// 14 12
}

// Run one seeded fault under truly generic recovery: a DNS outage is
// transient, so the failover survives it.
func ExampleBuildScenario() {
	mgr := faultstudy.NewRecoveryManager(faultstudy.RecoveryPolicy{})
	app, scenario, err := faultstudy.BuildScenario("httpd/dns-error", 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	out, _ := mgr.Run(app, scenario, faultstudy.StrategyProcessPairs)
	fmt.Println(out.Survived)
	// Output:
	// true
}

// The same recovery system cannot save a deterministic fault: the restored
// state and the re-executed request reproduce it exactly.
func ExampleRunRecoveryMatrix() {
	matrix, err := faultstudy.RunRecoveryMatrix(faultstudy.RecoveryPolicy{}, 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	ei := matrix.Rate(faultstudy.StrategyProcessPairs, faultstudy.ClassEnvIndependent)
	edt := matrix.Rate(faultstudy.StrategyProcessPairs, faultstudy.ClassEnvDependentTransient)
	fmt.Printf("deterministic faults survived: %d/%d\n", ei.Hits, ei.N)
	fmt.Printf("transient faults survived: %d/%d\n", edt.Hits, edt.N)
	// Output:
	// deterministic faults survived: 0/113
	// transient faults survived: 12/12
}
