// Paper tables: regenerate every table and figure of the paper's evaluation
// from the corpus via the reproducible classifier, run the recovery
// verification, and print the full set side by side with the published
// numbers.
//
//	go run ./examples/paper-tables
package main

import (
	"fmt"
	"log"

	"faultstudy"
)

func main() {
	fmt.Println("==== Tables 1-3: fault classification ====")
	for _, app := range []faultstudy.Application{faultstudy.AppApache, faultstudy.AppGnome, faultstudy.AppMySQL} {
		res := faultstudy.Table(app)
		fmt.Print(res)
		if res.Matches() {
			fmt.Println("-> matches the paper exactly")
		} else {
			fmt.Println("-> DIVERGES from the paper")
		}
		fmt.Println()
	}

	fmt.Println("==== Section 5.4 aggregate ====")
	fmt.Print(faultstudy.Aggregate())
	fmt.Println()

	fmt.Println("==== Figures 1-3: fault distributions ====")
	for _, fig := range []*faultstudy.FigureSeries{
		faultstudy.Figure1Apache(),
		faultstudy.Figure2Gnome(),
		faultstudy.Figure3MySQL(),
	} {
		fmt.Print(fig.Render())
		fmt.Println()
	}

	fmt.Println("==== Recovery verification (the paper's future work, §8) ====")
	matrix, err := faultstudy.RunRecoveryMatrix(faultstudy.RecoveryPolicy{}, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(matrix)
	fmt.Println()

	fmt.Println("==== Section 7: reconciliation with Lee & Iyer ====")
	fmt.Print(faultstudy.CompareLee93(matrix))
}
