package debbugs

import (
	"strings"
	"testing"
)

// FuzzParseDebbugs drives the debbugs log parser with arbitrary input. The
// invariants: Parse never panics, never returns (nil, nil), an accepted log
// always has a bug number and a synopsis derived per the documented rule, and
// follow-ups are never blank.
func FuzzParseDebbugs(f *testing.F) {
	f.Add(sampleBug)
	f.Add("Bug: #1\n\nbody\n")
	f.Add("Bug: #1\nDate: not a date\n\n\nMessage #2\n\nMessage #3\nx\n")
	f.Add("Bug: #0\n\nzero is missing\n")
	f.Add("no colon header\n")
	f.Add("Bug: #-7\nTags: a b  c\n\n\n")
	f.Add("")
	f.Add("Bug: #5\nPackage: panel\n\n\x00\xff\nMessage #2\n")
	f.Fuzz(func(t *testing.T, input string) {
		b, err := Parse(strings.NewReader(input))
		if err != nil {
			if b != nil {
				t.Fatalf("Parse returned both a Bug and an error: %v", err)
			}
			return
		}
		if b == nil {
			t.Fatal("Parse returned (nil, nil)")
		}
		if b.Number == 0 {
			t.Fatal("accepted log has no bug number")
		}
		if b.Subject == "" && strings.TrimSpace(b.Body) != "" {
			t.Fatalf("non-empty body %q but no derived subject", b.Body)
		}
		for i, fu := range b.FollowUps {
			if strings.TrimSpace(fu) == "" {
				t.Fatalf("follow-up %d is blank", i)
			}
		}
	})
}

// FuzzParseCVSLog drives the CVS log parser with arbitrary input; it must
// never panic and never emit a commit without a revision.
func FuzzParseCVSLog(f *testing.F) {
	f.Add(sampleCVSLog)
	f.Add("revision 1.1\nFixes bug #3\n")
	f.Add("revision\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		commits, err := ParseCVSLog(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, c := range commits {
			if c == nil || c.Revision == "" {
				t.Fatalf("commit %d has no revision", i)
			}
		}
	})
}
