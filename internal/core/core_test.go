package core

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"faultstudy/internal/bugsite"
	"faultstudy/internal/corpus"
	"faultstudy/internal/mbox"
	"faultstudy/internal/taxonomy"
)

// startSites serves all three simulated trackers and returns the study
// sources.
func startSites(t *testing.T, cfg bugsite.Config) Sources {
	t.Helper()
	apache := httptest.NewServer(bugsite.NewApacheSite(cfg))
	t.Cleanup(apache.Close)
	gnome := httptest.NewServer(bugsite.NewGnomeSite(cfg))
	t.Cleanup(gnome.Close)
	mysql := httptest.NewServer(bugsite.NewMySQLSite(cfg))
	t.Cleanup(mysql.Close)
	return Sources{ApacheBase: apache.URL, GnomeBase: gnome.URL, MySQLBase: mysql.URL}
}

// paperTables holds the oracle counts from the paper's Tables 1-3.
var paperTables = map[taxonomy.Application]map[taxonomy.FaultClass]int{
	taxonomy.AppApache: {
		taxonomy.ClassEnvIndependent:           36,
		taxonomy.ClassEnvDependentNonTransient: 7,
		taxonomy.ClassEnvDependentTransient:    7,
	},
	taxonomy.AppGnome: {
		taxonomy.ClassEnvIndependent:           39,
		taxonomy.ClassEnvDependentNonTransient: 3,
		taxonomy.ClassEnvDependentTransient:    3,
	},
	taxonomy.AppMySQL: {
		taxonomy.ClassEnvIndependent:           38,
		taxonomy.ClassEnvDependentNonTransient: 4,
		taxonomy.ClassEnvDependentTransient:    2,
	},
}

var paperUnique = map[taxonomy.Application]int{
	taxonomy.AppApache: 50,
	taxonomy.AppGnome:  45,
	taxonomy.AppMySQL:  44,
}

func TestFullStudyReproducesPaperTables(t *testing.T) {
	src := startSites(t, bugsite.Config{Seed: 1999})
	res, err := Study(context.Background(), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for app, want := range paperTables {
		got := res.Apps[app]
		if got == nil {
			t.Fatalf("no result for %s", app)
		}
		if got.Unique != paperUnique[app] {
			t.Errorf("%s: %d unique faults, paper says %d (raw %d, qualifying %d, dups %d)",
				app, got.Unique, paperUnique[app], got.Raw, got.Qualifying, got.Duplicates)
		}
		for class, n := range want {
			if got.Counts[class] != n {
				t.Errorf("%s %s: %d, paper table says %d", app, class.Short(), got.Counts[class], n)
			}
		}
		// For the trackers the inclusion bar discards noise; for the mailing
		// list the keyword search already did, so raw == qualifying there.
		if app != taxonomy.AppMySQL && got.Raw <= got.Qualifying {
			t.Errorf("%s: filter removed nothing (raw %d, qualifying %d)", app, got.Raw, got.Qualifying)
		}
		if got.Duplicates == 0 {
			t.Errorf("%s: dedup found no duplicates; the narrowing stage did no work", app)
		}
	}

	counts, total := res.Totals()
	if total != 139 {
		t.Errorf("total unique faults = %d, want 139", total)
	}
	if counts[taxonomy.ClassEnvDependentNonTransient] != 14 {
		t.Errorf("EDN total = %d, want 14", counts[taxonomy.ClassEnvDependentNonTransient])
	}
	if counts[taxonomy.ClassEnvDependentTransient] != 12 {
		t.Errorf("EDT total = %d, want 12", counts[taxonomy.ClassEnvDependentTransient])
	}
}

func TestStudyDeterministicAcrossRuns(t *testing.T) {
	src := startSites(t, bugsite.Config{Seed: 7})
	a, err := Study(context.Background(), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Study(context.Background(), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for app, ra := range a.Apps {
		rb := b.Apps[app]
		if ra.Unique != rb.Unique || ra.Qualifying != rb.Qualifying {
			t.Errorf("%s: nondeterministic pipeline (%d/%d vs %d/%d)",
				app, ra.Unique, ra.Qualifying, rb.Unique, rb.Qualifying)
		}
	}
}

func TestStudyRobustToSeedVariation(t *testing.T) {
	// Different site seeds shuffle duplicates and noise but must not change
	// the unique-fault tables.
	for _, seed := range []int64{5, 2024} {
		src := startSites(t, bugsite.Config{Seed: seed})
		res, err := Study(context.Background(), src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for app, want := range paperUnique {
			if got := res.Apps[app].Unique; got != want {
				t.Errorf("seed %d %s: unique = %d, want %d", seed, app, got, want)
			}
		}
	}
}

func TestAppResultTableRendering(t *testing.T) {
	src := startSites(t, bugsite.Config{Seed: 3})
	raw, err := MineApache(context.Background(), src.ApacheBase)
	if err != nil {
		t.Fatal(err)
	}
	res := Classify(raw, Options{})
	table := res.Table()
	if table == "" {
		t.Fatal("empty table rendering")
	}
	for _, want := range []string{"environment-independent", "apache"} {
		if !contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestEveryCorpusFaultSurvivesMining(t *testing.T) {
	// Each corpus fault must come back from the pipeline as a canonical
	// classified report whose class matches the oracle.
	src := startSites(t, bugsite.Config{Seed: 1999})
	res, err := Study(context.Background(), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range taxonomy.Applications() {
		oracle := corpus.ByApp(app)
		mined := res.Apps[app].Faults
		for _, f := range oracle {
			found := false
			for _, c := range mined {
				if c.Report.Synopsis == f.Synopsis ||
					contains(c.Report.Text(), f.Synopsis) ||
					contains(c.Report.Synopsis, f.Synopsis) {
					found = true
					if c.Result.Class != f.Class {
						t.Errorf("%s mined as %s, oracle %s", f.ID, c.Result.Class.Short(), f.Class.Short())
					}
					break
				}
			}
			if !found {
				t.Errorf("fault %s (%q) missing from mined results", f.ID, f.Synopsis)
			}
		}
	}
}

func TestThreadReportErrors(t *testing.T) {
	if _, err := ThreadReport(&mbox.Thread{Subject: "empty"}); err == nil {
		t.Error("empty thread should fail")
	}
}

func contains(haystack, needle string) bool {
	return strings.Contains(strings.ToLower(haystack), strings.ToLower(needle))
}

func TestClassifyEmptyInput(t *testing.T) {
	res := Classify(nil, Options{})
	if res.Raw != 0 || res.Unique != 0 || len(res.Faults) != 0 {
		t.Errorf("empty input produced %+v", res)
	}
	if res.Table() == "" {
		t.Error("empty result should still render")
	}
}
