package experiment

import (
	"bytes"
	"testing"

	"faultstudy/internal/obsv"
	"faultstudy/internal/recovery"
	"faultstudy/internal/supervise"
)

// soakTrace runs a small telemetry-instrumented soak and returns the trace
// JSONL and Prometheus dump it produces.
func soakTrace(t *testing.T, seed int64) (trace, prom []byte) {
	t.Helper()
	tel := NewTelemetry()
	if _, err := RunSoak(SoakConfig{Ops: 60, Faults: 2, Seed: seed, Telemetry: tel}); err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	var tb, pb bytes.Buffer
	if err := tel.WriteTrace(&tb); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := tel.WritePrometheus(&pb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return tb.Bytes(), pb.Bytes()
}

// TestSoakTelemetryDeterministic is the determinism acceptance test: two
// identical seeded runs must produce byte-identical trace JSONL and metric
// dumps — the virtual clock, seeded generators, and sorted exporters leave no
// nondeterminism anywhere in the pipeline.
func TestSoakTelemetryDeterministic(t *testing.T) {
	t1, p1 := soakTrace(t, 11)
	t2, p2 := soakTrace(t, 11)
	if !bytes.Equal(t1, t2) {
		t.Error("trace JSONL differs between identical seeded runs")
	}
	if !bytes.Equal(p1, p2) {
		t.Error("Prometheus dump differs between identical seeded runs")
	}
	if len(t1) == 0 {
		t.Error("trace is empty: the soak recorded no episodes")
	}
}

// TestSoakTraceRoundTrips validates the schema acceptance criterion: the
// trace a soak writes parses back through ReadJSONL and re-encodes
// byte-identically.
func TestSoakTraceRoundTrips(t *testing.T) {
	trace, _ := soakTrace(t, 11)
	eps, err := obsv.ReadJSONL(bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("ReadJSONL rejected the soak trace: %v", err)
	}
	if len(eps) == 0 {
		t.Fatal("no episodes parsed")
	}
	var again bytes.Buffer
	if err := obsv.WriteJSONL(&again, eps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(trace, again.Bytes()) {
		t.Error("trace does not round-trip byte-identically")
	}
}

// TestSoakTelemetryOffMatchesOn checks the zero-cost-off contract at the
// behavioural level: running with telemetry attached must not change the
// supervision outcome (reports are rendered identically with and without).
func TestSoakTelemetryOffMatchesOn(t *testing.T) {
	plain, err := RunSoak(SoakConfig{Ops: 60, Faults: 2, Seed: 11})
	if err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	observed, err := RunSoak(SoakConfig{Ops: 60, Faults: 2, Seed: 11, Telemetry: NewTelemetry()})
	if err != nil {
		t.Fatalf("RunSoak observed: %v", err)
	}
	if a, b := RenderSoak(plain), RenderSoak(observed); a != b {
		t.Errorf("telemetry changed the soak outcome\n--- plain ---\n%s\n--- observed ---\n%s", a, b)
	}
}

// TestSupervisedObservedFillsMatrixAndEpisodes checks the matrix path: the
// observed supervised column equals the unobserved one and the telemetry
// carries per-fault identities.
func TestSupervisedObservedFillsMatrixAndEpisodes(t *testing.T) {
	m1, err := RunMatrix(recovery.Policy{}, 5)
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	tel := NewTelemetry()
	if err := m1.AddSupervisedObserved(5, supervise.Config{GrowResources: true}, tel); err != nil {
		t.Fatalf("AddSupervisedObserved: %v", err)
	}
	if !m1.HasSupervised() {
		t.Fatal("supervised column not filled")
	}
	eps := tel.Episodes()
	if len(eps) == 0 {
		t.Fatal("no episodes recorded")
	}
	for _, e := range eps {
		if e.FaultID == "" || e.Class == "" || e.App == "" {
			t.Fatalf("episode missing identity: %+v", e)
		}
	}
	if s := tel.Summary(); len(s) == 0 {
		t.Fatal("empty summary")
	}
}
