package report

import (
	"strings"
	"testing"
	"time"

	"faultstudy/internal/taxonomy"
)

func sample() *Report {
	return &Report{
		ID:          "PR-1001",
		App:         taxonomy.AppApache,
		Component:   "mod_cgi",
		Release:     "1.3.4",
		Synopsis:    "server dies with a segfault on long URL",
		Description: "Submitting a very long URL crashes the child process.",
		HowToRepeat: "GET /" + strings.Repeat("a", 9000),
		Severity:    taxonomy.SeverityCritical,
		Symptom:     taxonomy.SymptomCrash,
		Filed:       time.Date(1999, 3, 14, 0, 0, 0, 0, time.UTC),
		Production:  true,
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateFailures(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Report)
	}{
		{"empty id", func(r *Report) { r.ID = "  " }},
		{"unknown app", func(r *Report) { r.App = taxonomy.AppUnknown }},
		{"no text", func(r *Report) { r.Synopsis, r.Description = "", "" }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := sample()
			tt.mutate(r)
			if err := r.Validate(); err == nil {
				t.Errorf("Validate should fail for %s", tt.name)
			}
		})
	}
}

func TestValidateNil(t *testing.T) {
	var r *Report
	if err := r.Validate(); err == nil {
		t.Error("Validate(nil) should fail")
	}
}

func TestQualifies(t *testing.T) {
	r := sample()
	if !r.Qualifies() {
		t.Fatal("sample should qualify")
	}

	low := sample()
	low.Severity = taxonomy.SeverityMinor
	if low.Qualifies() {
		t.Error("minor severity should not qualify")
	}

	beta := sample()
	beta.Production = false
	if beta.Qualifies() {
		t.Error("non-production release should not qualify")
	}

	mild := sample()
	mild.Symptom = taxonomy.SymptomUnknown
	if mild.Qualifies() {
		t.Error("non-high-impact symptom should not qualify")
	}

	// Mailing-list reports carry no severity; high-impact symptom suffices.
	list := sample()
	list.Severity = taxonomy.SeverityUnknown
	if !list.Qualifies() {
		t.Error("unknown severity with crash symptom should qualify")
	}
}

func TestTextContainsAllParts(t *testing.T) {
	r := sample()
	r.Comments = []string{"confirmed on linux", "fixed in 1.3.6"}
	r.FixDescription = "bounds check in hash calculation"
	text := r.Text()
	for _, want := range []string{r.Synopsis, r.Description, "confirmed on linux", "fixed in 1.3.6", "bounds check"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q", want)
		}
	}
}

func TestSortByKey(t *testing.T) {
	a := sample()
	b := sample()
	b.ID = "PR-0002"
	c := sample()
	c.App = taxonomy.AppGnome
	c.ID = "12"
	in := []*Report{c, a, b}
	Sort(in)
	if in[0].ID != "PR-0002" || in[1].ID != "PR-1001" || in[2].App != taxonomy.AppGnome {
		t.Errorf("unexpected order: %s, %s, %s", in[0].Key(), in[1].Key(), in[2].Key())
	}
}

func TestFilterQualifying(t *testing.T) {
	good := sample()
	bad := sample()
	bad.Production = false
	got := FilterQualifying([]*Report{good, bad})
	if len(got) != 1 || got[0] != good {
		t.Errorf("FilterQualifying kept %d reports, want 1", len(got))
	}
}

func TestByApp(t *testing.T) {
	a := sample()
	g := sample()
	g.App = taxonomy.AppGnome
	m := ByApp([]*Report{a, g})
	if len(m[taxonomy.AppApache]) != 1 || len(m[taxonomy.AppGnome]) != 1 {
		t.Errorf("ByApp partition wrong: %v", m)
	}
}

func TestCanonical(t *testing.T) {
	a := sample()
	dup := sample()
	dup.ID = "PR-1002"
	dup.DuplicateOf = "PR-1001"
	got := Canonical([]*Report{a, dup})
	if len(got) != 1 || got[0] != a {
		t.Errorf("Canonical kept %d, want 1", len(got))
	}
}
