// Package component is the crash-only component runtime behind the real
// microreboot rung: applications are restructured into trees of individually
// restartable components so that recovery can reboot exactly the part that
// failed — in simulated milliseconds — while the rest of the application
// keeps serving.
//
// The design follows Candea & Fox ("Microreboot — A Technique for Cheap
// Recovery", and the crash-only software position paper it grew from), the
// 2004 answer to the source paper's §8 question of whether generic recovery
// can get cheaper than whole-process restart:
//
//   - every component implements a crash-only lifecycle: Kill is always safe,
//     always instant, and never negotiates — cleanup happens on the next
//     Start, not on the way down;
//   - components hold no private session state. Sessions, prepared
//     statements, and open-request context live in an externalized Store
//     that survives component death, so rebooting a component loses work in
//     flight but never the user's session;
//   - components declare dependency edges in a Tree, so the runtime can
//     reboot one leaf (or, when that does not help, the subtree above it)
//     in dependency order while siblings keep serving;
//   - reboot time is charged to the injectable virtual clock, which is what
//     makes "a microreboot costs milliseconds, a process restart costs
//     seconds" a measured claim instead of an assertion (the MREBOOT
//     experiment, EXPERIMENTS.md).
//
// internal/apps/{httpd,sqldb,desktop} each provide a componentized
// decomposition built on this runtime, and internal/supervise targets the
// ladder's microreboot rung at the faulty component through the Host
// interface.
package component

import (
	"fmt"
	"time"
)

// Component is one individually restartable unit of an application. The
// contract is crash-only: Kill must always succeed instantly from any state
// (resources the component held are dropped, not handed back gracefully),
// and Start must be able to bring the component up from the wreckage Kill
// leaves behind. Stop exists for orderly shutdown of the whole tree; the
// recovery paths never rely on it.
type Component interface {
	// Name is the component's unique name within its tree, conventionally
	// "app/part" (e.g. "httpd/logger").
	Name() string
	// Start brings the component up, re-acquiring whatever environment
	// resources it owns. Start on a running component is a no-op; that
	// idempotence is what lets a whole-process restore bring the tree back
	// without double-acquiring resources.
	Start() error
	// Stop shuts the component down gracefully (orderly whole-tree shutdown
	// only; recovery uses Kill).
	Stop()
	// Kill crash-stops the component: its in-memory state and in-flight work
	// are gone immediately, resources it held are dropped for the
	// environment to reclaim, and nothing is flushed. Kill never fails.
	Kill()
	// Probe reports the component's health: nil when it is up and its owned
	// resources are intact, an error describing what is wrong otherwise.
	Probe() error
	// Running reports whether the component is up.
	Running() bool
}

// Clock is the virtual clock reboot costs are charged to. simenv.Env
// satisfies the shape via EnvClock in the apps; tests may supply fakes.
type Clock interface {
	// Now returns the current monotonic virtual time.
	Now() time.Duration
	// Advance moves the virtual clock forward by d.
	Advance(d time.Duration)
}

// EnvClock adapts a simenv-style environment — anything exposing
// Monotonic/Advance — to the Clock interface reboot costs are charged to.
type EnvClock struct {
	// Env is the adapted environment.
	Env interface {
		// Monotonic returns the virtual monotonic time.
		Monotonic() time.Duration
		// Advance moves the virtual clock forward.
		Advance(time.Duration)
	}
}

// Now returns the environment's monotonic virtual time.
func (c EnvClock) Now() time.Duration { return c.Env.Monotonic() }

// Advance moves the environment's virtual clock forward by d.
func (c EnvClock) Advance(d time.Duration) { c.Env.Advance(d) }

// DownError is the failure an operation observes when a component it routes
// through is down (killed, mid-reboot, or never started). The serving tier
// returns it for requests that arrive while a microreboot is in progress —
// these are the "requests lost" the MREBOOT experiment scores.
type DownError struct {
	// Component is the name of the component that was down.
	Component string
}

// Error implements error.
func (e *DownError) Error() string {
	return fmt.Sprintf("component %s is down", e.Component)
}

// Down builds a DownError for the named component.
func Down(name string) error { return &DownError{Component: name} }

// Host is implemented by applications that have been restructured into a
// component tree. The supervisor's microreboot rung and the MREBOOT
// experiment use it to target recovery at the faulty component instead of
// the whole process.
type Host interface {
	// Tree returns the application's component tree.
	Tree() *Tree
	// ComponentFor maps a fault mechanism key to the component the defect
	// lives in. The second result is false for mechanisms with no component
	// attribution (recovery then falls back to process-level actions).
	ComponentFor(mechanism string) (string, bool)
	// ContainCrash reattributes a process-fatal failure to the component
	// tree. The simulated monolithic applications mark themselves dead when
	// a seeded crash bug fires; in the componentized decomposition only the
	// faulty component's process dies, so containment revives the
	// process-level liveness flag and leaves the caller to reboot the
	// faulty component. Calling it when the process is healthy is a no-op.
	ContainCrash()
}
