package sqldb

import (
	"fmt"
	"sort"
	"time"

	"faultstudy/internal/component"
	"faultstudy/internal/simenv"
)

// Component names of the componentized database server.
const (
	// CompExecutor is the query-execution engine — the root every other part
	// depends on, and where the executor-path defects live.
	CompExecutor = "sqldb/executor"
	// CompParser is the SQL parser; ad-hoc statements route through it, but
	// prepared statements do not — they were parsed at Prepare time.
	CompParser = "sqldb/parser"
	// CompListener is the accept path: the listening port and connection
	// admission (reverse DNS, privilege checks).
	CompListener = "sqldb/listener"
	// CompStorage is the table-file layer: datafile descriptors and disk
	// writes. Crash-stopping it releases every table descriptor.
	CompStorage = "sqldb/storage"
)

// Externalized-store buckets: sessions (session -> client address), live
// connection ids (session -> conn id), and prepared statements
// (session/name -> SQL text). All survive any component reboot.
const (
	// SessionBucket maps a session name to its client address.
	SessionBucket = "sqldb/sessions"
	// ConnBucket maps a session name to its current server connection id.
	ConnBucket = "sqldb/conns"
	// PreparedBucket maps "session/name" to prepared SQL text.
	PreparedBucket = "sqldb/prepared"
)

// Reboot costs on the virtual clock, in simulated milliseconds.
const (
	executorStartCost   = 9 * time.Millisecond
	parserStartCost     = 2 * time.Millisecond
	dbListenerStartCost = 4 * time.Millisecond
	storageStartCost    = 6 * time.Millisecond
)

// dbComponentFor maps each seeded mechanism to the component its defect
// lives in.
var dbComponentFor = map[string]string{
	MechIndexUpdateScan: CompExecutor,
	MechOrderByEmpty:    CompExecutor,
	MechCountEmpty:      CompExecutor,
	MechOptimizeCrash:   CompExecutor,
	MechFlushAfterLock:  CompExecutor,
	MechNullDeref:       CompExecutor,
	MechStaleBuffer:     CompExecutor,
	MechBadInit:         CompExecutor,
	MechExecLoop:        CompExecutor,
	MechBounds:          CompExecutor,
	MechMissingCheck:    CompExecutor,
	MechSignalMaskRace:  CompExecutor,
	MechNoReverseDNS:    CompListener,
	MechLoginAdminRace:  CompListener,
	MechFDCompetition:   CompStorage,
	MechDBFileLimit:     CompStorage,
	MechFSFull:          CompStorage,
}

// Componentized is the crash-only decomposition of the database server:
// sessions and prepared statements live in an externalized store, so a
// listener reboot drops TCP connections but not sessions — clients re-attach
// transparently on their next statement.
type Componentized struct {
	srv   *Server
	store *component.Store
	tree  *component.Tree
}

// Componentize wraps a server into its component tree over the given
// externalized store.
func Componentize(srv *Server, store *component.Store) *Componentized {
	c := &Componentized{
		srv:   srv,
		store: store,
		tree:  component.NewTree(component.EnvClock{Env: srv.env}),
	}
	s := srv
	c.tree.MustAdd(component.Spec{StartCost: executorStartCost, Component: component.NewPart(CompExecutor, component.Hooks{})})
	c.tree.MustAdd(component.Spec{StartCost: parserStartCost, Deps: []string{CompExecutor}, Component: component.NewPart(CompParser, component.Hooks{})})
	c.tree.MustAdd(component.Spec{StartCost: dbListenerStartCost, Deps: []string{CompExecutor}, Component: component.NewPart(CompListener, component.Hooks{
		// Crash-stopping the listener drops every TCP connection; sessions
		// survive in the store and re-attach on the next statement.
		OnKill: func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.connections = make(map[int]string)
			if s.portBound {
				_ = s.env.Net().ReleasePort(serverPort)
				s.portBound = false
			}
		},
		OnStart: func() error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if !s.portBound {
				if err := s.env.Net().BindPort(serverPort, Owner); err != nil {
					return err
				}
				s.portBound = true
			}
			return nil
		},
	})})
	c.tree.MustAdd(component.Spec{StartCost: storageStartCost, Deps: []string{CompExecutor}, Component: component.NewPart(CompStorage, component.Hooks{
		OnKill: func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.closeTableFDsLocked()
		},
		OnStart: func() error {
			s.mu.Lock()
			defer s.mu.Unlock()
			names := make([]string, 0, len(s.tables))
			for name := range s.tables {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				t := s.tables[name]
				if !t.hasFD {
					if err := s.openTableFD(t); err != nil {
						return err
					}
				}
			}
			return nil
		},
	})})
	return c
}

// Name returns the environment owner tag.
func (c *Componentized) Name() string { return Owner }

// Env returns the underlying environment.
func (c *Componentized) Env() *simenv.Env { return c.srv.Env() }

// Running reports whether the simulated process is alive.
func (c *Componentized) Running() bool { return c.srv.Running() }

// Start boots the process and brings every component up.
func (c *Componentized) Start() error {
	if err := c.srv.Start(); err != nil {
		return err
	}
	return c.tree.StartAll()
}

// Stop crash-stops the tree and shuts the process down.
func (c *Componentized) Stop() {
	c.tree.StopAll()
	c.srv.Stop()
}

// Snapshot captures the process's logical state; the store is outside it.
func (c *Componentized) Snapshot() ([]byte, error) { return c.srv.Snapshot() }

// Restore replaces process state from a snapshot and brings the tree up.
func (c *Componentized) Restore(snapshot []byte) error {
	if err := c.srv.Restore(snapshot); err != nil {
		return err
	}
	return c.tree.StartAll()
}

// Reset reinitializes the process and brings the tree up; the store and its
// sessions survive.
func (c *Componentized) Reset() error {
	if err := c.srv.Reset(); err != nil {
		return err
	}
	return c.tree.StartAll()
}

// Tree returns the component tree.
func (c *Componentized) Tree() *component.Tree { return c.tree }

// Store returns the externalized session store.
func (c *Componentized) Store() *component.Store { return c.store }

// ComponentFor maps a mechanism key to the component its defect lives in.
func (c *Componentized) ComponentFor(mechanism string) (string, bool) {
	name, ok := dbComponentFor[mechanism]
	return name, ok
}

// ContainCrash revives the process-level liveness flag after a crash that
// the component tree contains.
func (c *Componentized) ContainCrash() {
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	c.srv.running = true
}

// Connect opens (or re-opens) a named session from the given client address.
// The session is externalized: it survives listener reboots and process
// restarts, re-attaching to a fresh connection id on demand.
func (c *Componentized) Connect(session, clientAddr string) error {
	if !c.tree.Running(CompListener) {
		return component.Down(CompListener)
	}
	id, err := c.srv.Connect(clientAddr)
	if err != nil {
		return err
	}
	c.store.Put(SessionBucket, session, clientAddr)
	c.store.Put(ConnBucket, session, fmt.Sprint(id))
	return nil
}

// reattach ensures the session has a live server connection, transparently
// reconnecting with the externalized client address when the old connection
// died with a rebooted listener.
func (c *Componentized) reattach(session string) error {
	addr, ok := c.store.Get(SessionBucket, session)
	if !ok {
		return fmt.Errorf("sqldb: unknown session %q", session)
	}
	if v, ok := c.store.Get(ConnBucket, session); ok {
		var id int
		if _, err := fmt.Sscanf(v, "%d", &id); err == nil && c.srv.Connected(id) {
			return nil
		}
	}
	if !c.tree.Running(CompListener) {
		return component.Down(CompListener)
	}
	id, err := c.srv.Connect(addr)
	if err != nil {
		return err
	}
	c.store.Put(ConnBucket, session, fmt.Sprint(id))
	return nil
}

// Exec runs one ad-hoc statement on a session: it routes through the parser,
// executor, and storage, re-attaching the session's connection first if a
// listener reboot dropped it.
func (c *Componentized) Exec(session, sql string) (*ResultSet, error) {
	for _, name := range []string{CompParser, CompExecutor, CompStorage} {
		if !c.tree.Running(name) {
			return nil, component.Down(name)
		}
	}
	if err := c.reattach(session); err != nil {
		return nil, err
	}
	return c.srv.Exec(sql)
}

// Prepare validates and externalizes a named statement for the session. The
// parser must be up at Prepare time; afterwards the statement outlives both
// the parser and the process.
func (c *Componentized) Prepare(session, name, sql string) error {
	if !c.tree.Running(CompParser) {
		return component.Down(CompParser)
	}
	if _, err := Parse(sql); err != nil {
		return err
	}
	c.store.Put(PreparedBucket, session+"/"+name, sql)
	return nil
}

// ExecPrepared runs a prepared statement: it routes through the executor and
// storage only — the parse happened at Prepare time — so prepared traffic
// keeps flowing while the parser is mid-reboot.
func (c *Componentized) ExecPrepared(session, name string) (*ResultSet, error) {
	sql, ok := c.store.Get(PreparedBucket, session+"/"+name)
	if !ok {
		return nil, fmt.Errorf("sqldb: no prepared statement %q for session %q", name, session)
	}
	for _, comp := range []string{CompExecutor, CompStorage} {
		if !c.tree.Running(comp) {
			return nil, component.Down(comp)
		}
	}
	if err := c.reattach(session); err != nil {
		return nil, err
	}
	return c.srv.Exec(sql)
}

// SessionAlive reports whether the session exists in the externalized store.
func (c *Componentized) SessionAlive(session string) bool {
	_, ok := c.store.Get(SessionBucket, session)
	return ok
}
