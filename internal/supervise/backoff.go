package supervise

import (
	"math/rand"
	"time"
)

// backoff produces the jittered exponential delay sequence the supervisor
// sleeps between recovery attempts: base·2^(attempt−1), capped, plus a
// uniformly drawn jitter fraction so synchronized restarts don't stampede.
// The jitter generator is injected rather than constructed here, so a caller
// owns the seeding discipline: soak runs thread one seeded *rand.Rand per
// supervisor and the full delay sequence is reproducible from the config
// seed alone (never the global math/rand source — see faultlint's rawrand
// rule).
type backoff struct {
	base   time.Duration
	cap    time.Duration
	jitter float64
	rng    *rand.Rand
}

// newBackoff builds the delay sequence around the caller's generator. A nil
// rng disables jitter rather than falling back to the global source.
func newBackoff(base, cap time.Duration, jitter float64, rng *rand.Rand) *backoff {
	if rng == nil {
		jitter = 0
	}
	return &backoff{base: base, cap: cap, jitter: jitter, rng: rng}
}

// seededRand is the supervisor's canonical jitter generator: dedicated to
// one backoff sequence and derived only from the config seed.
func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// next returns the delay before the attempt-th recovery attempt (1-based).
func (b *backoff) next(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := b.base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= b.cap || d <= 0 {
			d = b.cap
			break
		}
	}
	if d > b.cap {
		d = b.cap
	}
	if b.jitter > 0 {
		d += time.Duration(float64(d) * b.jitter * b.rng.Float64())
	}
	return d
}

// BackoffSchedule returns the first n delays the supervisor would sleep for
// consecutive recovery attempts under cfg — the expected jittered exponential
// sequence, for tests and capacity planning. It consumes an independent
// generator seeded identically to the supervisor's, so it reproduces a run's
// backoff trace exactly.
func BackoffSchedule(cfg Config, n int) []time.Duration {
	cfg = cfg.withDefaults()
	b := newBackoff(cfg.BackoffBase, cfg.BackoffCap, cfg.BackoffJitter, seededRand(cfg.Seed))
	out := make([]time.Duration, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, b.next(i))
	}
	return out
}
