package corpus

import (
	"sync"

	"faultstudy/internal/taxonomy"
)

var (
	gnomeOnce   sync.Once
	gnomeFaults []*Fault
)

// Gnome returns the 45 classified GNOME faults (Table 2: 39
// environment-independent, 3 nontransient, 3 transient).
func Gnome() []*Fault {
	gnomeOnce.Do(func() {
		gnomeFaults = buildGnome()
		if err := validateSet(gnomeFaults); err != nil {
			panic(err)
		}
	})
	return gnomeFaults
}

func buildGnome() []*Fault {
	named := gnomeNamed()
	ei := filterClass(named, taxonomy.ClassEnvIndependent)
	ei = append(ei, expandEI(
		taxonomy.AppGnome, "gnome",
		gnomeEITemplates,
		[]string{"panel", "gnome-pim", "gnumeric", "gmc", "gnome-core"},
		[]string{
			"dragging an applet off the edge of the panel",
			"opening the recurrence dialog for an all-day appointment",
			"pasting a 65536-character cell",
			"renaming a file to a name containing only dots",
			"resizing the window to one pixel wide",
			"opening the preferences dialog twice quickly",
			"importing an empty vCard",
			"sorting an empty sheet by column B",
			"dropping a desktop icon onto itself",
			"undoing immediately after launching",
		},
		39-len(ei),
	)...)
	edn := filterClass(named, taxonomy.ClassEnvDependentNonTransient)
	edt := filterClass(named, taxonomy.ClassEnvDependentTransient)

	// Figure 2 buckets GNOME faults by time: one module release ("1.0")
	// spans the whole study, with a mid-study dip in report volume.
	buckets := []releaseBucket{
		{release: "1.0", date: date(1998, 10, 15), ei: 7, edn: 0, edt: 1},
		{release: "1.0", date: date(1999, 1, 15), ei: 9, edn: 1, edt: 0},
		{release: "1.0", date: date(1999, 4, 15), ei: 5, edn: 0, edt: 1},
		{release: "1.0", date: date(1999, 7, 15), ei: 8, edn: 1, edt: 0},
		{release: "1.0", date: date(1999, 10, 15), ei: 10, edn: 1, edt: 1},
	}
	assignSchedule(buckets, ei, edn, edt)

	out := make([]*Fault, 0, 45)
	out = append(out, ei...)
	out = append(out, edn...)
	out = append(out, edt...)
	return out
}

// gnomeNamed transcribes the faults the paper describes individually in §5.2.
func gnomeNamed() []*Fault {
	G := taxonomy.AppGnome
	return []*Fault{
		// --- representative environment-independent faults ---
		{
			ID: "gnome/ei-tasklist-tab", App: G,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "panel",
			Synopsis:  "clicking the tasklist tab in gnome-pager settings kills the pager",
			Description: "Clicking on the \"tasklist\" tab in the gnome-pager settings dialog " +
				"causes the pager to die immediately.",
			HowToRepeat: "Open pager Properties, click the tasklist tab. Dies every time.",
			Fix:         "Guard the tab callback against the uninitialized applet pointer.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "desktop/tasklist-tab",
		},
		{
			ID: "gnome/ei-calendar-prev", App: G,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "gnome-pim",
			Synopsis:  "prev button in the calendar year view crashes the application",
			Description: "Clicking on the \"prev\" button in the \"year\" view of the gnome " +
				"calendar application causes it to crash. The handler assigned a value to a " +
				"local copy of the variable instead of the global copy.",
			HowToRepeat: "Switch to year view, click prev. Crashes every time.",
			Fix:         "Assign to the global variable, not the shadowing local.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "desktop/calendar-prev",
		},
		{
			ID: "gnome/ei-gnumeric-tab", App: G,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "gnumeric",
			Synopsis:  "gnumeric crashes when tab is pressed in the define-name dialog",
			Description: "The spreadsheet crashes if a tab is pressed in the \"define name\" " +
				"dialog or in the \"File/Summary\" dialog. Caused by initializing a variable " +
				"to an incorrect value.",
			HowToRepeat: "Open Insert/Name/Define, press Tab. Crashes every time.",
			Fix:         "Initialize the focus-chain variable correctly.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "desktop/gnumeric-tab",
		},
		{
			ID: "gnome/ei-gmc-targz", App: G,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "gmc",
			Synopsis:  "double-clicking a tar.gz desktop icon crashes gmc",
			Description: "Double-clicking on a \"tar.gz\" file that is lying as an icon on the " +
				"desktop crashes gmc, the GNOME file manager. Caused by declaring a variable " +
				"as \"long\" instead of \"unsigned long\".",
			HowToRepeat: "Put a tar.gz on the desktop and double-click it. Crashes every time.",
			Fix:         "Declare the size variable unsigned long.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "desktop/gmc-targz",
		},
		{
			ID: "gnome/ei-menu-freeze", App: G,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "panel",
			Synopsis:  "clicking the desktop to dismiss the main menu freezes the desktop",
			Description: "After clicking the main button once to pop up the main menu, a " +
				"click again on the desktop in order to remove the menu freezes the desktop.",
			HowToRepeat: "Click the foot menu, then click the desktop. Freezes every time.",
			Fix:         "Release the pointer grab before dismissing the menu.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomHang,
			Mechanism: "desktop/menu-freeze",
		},

		// --- environment-dependent-nontransient faults (3) ---
		{
			ID: "gnome/edn-hostname", App: G,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerHostConfig,
			Component: "gnome-core",
			Synopsis:  "application fails after the machine hostname changes while it runs",
			Description: "The hostname of the machine was changed while the application was " +
				"running; the session's display authority entries no longer match and the " +
				"application fails. The new hostname persists across recovery.",
			HowToRepeat: "Start the application, change the hostname, trigger any X call.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "desktop/hostname-change",
		},
		{
			ID: "gnome/edn-sound-sockets", App: G,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerFDExhaustion,
			Component: "gnome-core",
			Synopsis:  "sound utilities leak open sockets until descriptors run out",
			Description: "Open sockets are left around by sound utilities while exiting. Each " +
				"open socket consumes a file descriptor and the application eventually runs " +
				"out of file descriptors.",
			HowToRepeat: "Play event sounds repeatedly; watch the descriptor count climb.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "desktop/sound-socket-leak",
		},
		{
			ID: "gnome/edn-illegal-owner", App: G,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerHostConfig,
			Component: "gmc",
			Synopsis:  "file with an illegal owner field crashes the file manager",
			Description: "A file has an illegal value in the owner field. The application " +
				"crashes when trying to edit the file or its properties. The bad metadata " +
				"persists on disk across recovery.",
			HowToRepeat: "Create a file with an out-of-range uid, open its properties dialog.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "desktop/illegal-owner",
		},

		// --- environment-dependent-transient faults (3) ---
		{
			ID: "gnome/edt-unknown-retry", App: G,
			Class: taxonomy.ClassEnvDependentTransient, Trigger: taxonomy.TriggerRace,
			Component: "gnome-core",
			Synopsis:  "unknown failure of the application which works on a retry",
			Description: "The application fails in a way the reporter could not pin down; the " +
				"same operation works on a retry, pointing at a timing dependence.",
			HowToRepeat: "Not reliably reproducible; succeeded on retry.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomCrash,
			Mechanism: "desktop/unknown-transient",
		},
		{
			ID: "gnome/edt-viewer-race", App: G,
			Class: taxonomy.ClassEnvDependentTransient, Trigger: taxonomy.TriggerRace,
			Component: "gmc",
			Synopsis:  "race between the image viewer and the property editor",
			Description: "A race condition between an image viewer and a property editor " +
				"crashes the application. Race conditions depend on the exact timing of " +
				"thread scheduling events, which are likely to change during retry.",
			HowToRepeat: "Open the viewer and the property editor on the same file quickly; " +
				"fails only sometimes.",
			Severity: taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "desktop/viewer-race",
		},
		{
			ID: "gnome/edt-applet-race", App: G,
			Class: taxonomy.ClassEnvDependentTransient, Trigger: taxonomy.TriggerRace,
			Component: "panel",
			Synopsis:  "race between an applet action request and its removal",
			Description: "A race condition between a request for action from an applet and " +
				"its removal from the panel crashes the panel when the removal wins.",
			HowToRepeat: "Remove an applet at the moment it is asked to act; timing dependent.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "desktop/applet-race",
		},
	}
}

// gnomeEITemplates are the defect-type templates for the synthesized
// environment-independent GNOME faults.
var gnomeEITemplates = []eiTemplate{
	{
		synopsis:    "{component} segfaults when {input}",
		description: "{input} makes {component} dereference a widget pointer that was already destroyed; the application dies with SIGSEGV.",
		howto:       "{input}. Crashes every time.",
		fix:         "Null the pointer on destroy and check before use.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "desktop/stale-widget",
	},
	{
		synopsis:    "{component} crashes from an uninitialized struct field when {input}",
		description: "A dialog struct in {component} leaves one field uninitialized; {input} reads it and crashes.",
		howto:       "{input} right after starting the application.",
		fix:         "Zero the struct at allocation.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "desktop/bad-init",
	},
	{
		synopsis:    "{component} freezes when {input}",
		description: "{input} makes {component} wait on a reply it already consumed; the event loop never runs again.",
		howto:       "{input}. The window stops redrawing every time.",
		fix:         "Do not re-enter the blocking wait after the reply is consumed.",
		symptom:     taxonomy.SymptomHang,
		mechanism:   "desktop/event-loop-stall",
	},
	{
		synopsis:    "{component} corrupts its config when {input}",
		description: "{input} makes {component} write the config file with a truncated integer; on next start the value is garbage and the app errors out.",
		howto:       "{input}, restart the application.",
		fix:         "Use the full-width type when serializing.",
		symptom:     taxonomy.SymptomError,
		mechanism:   "desktop/config-truncate",
		severity:    taxonomy.SeveritySerious,
	},
	{
		synopsis:    "{component} crashes on an off-by-one when {input}",
		description: "{component} iterates one element past the end of its item list when {input}.",
		howto:       "{input}. Deterministic crash.",
		fix:         "Fix the loop bound.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "desktop/off-by-one",
	},
	{
		synopsis:    "{component} mixes up signed comparison and errors out when {input}",
		description: "A size declared long instead of unsigned long in {component} goes negative when {input}, failing a sanity check.",
		howto:       "{input}.",
		fix:         "Declare the size unsigned long.",
		symptom:     taxonomy.SymptomError,
		mechanism:   "desktop/type-mismatch",
		severity:    taxonomy.SeveritySerious,
	},
	{
		synopsis:    "{component} double-frees a list node when {input}",
		description: "The undo path in {component} frees the same list node twice when {input}; glib aborts.",
		howto:       "{input}. Aborts every time.",
		fix:         "Take ownership of the node exactly once.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "desktop/double-free",
	},
}
