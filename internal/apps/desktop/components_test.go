package desktop

import (
	"errors"
	"testing"

	"faultstudy/internal/component"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
)

func newComponentized(t *testing.T, mechs ...string) *Componentized {
	t.Helper()
	env := simenv.New(1)
	c := Componentize(New(env, faultinject.NewSet(mechs...)), component.NewStore())
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return c
}

// TestCalendarViewSurvivesWidgetReboot verifies UI-state externalization:
// the rebooted calendar rehydrates the user's view from the store.
func TestCalendarViewSurvivesWidgetReboot(t *testing.T) {
	c := newComponentized(t)
	if err := c.Dispatch(Event{Widget: "calendar", Action: "view-year"}); err != nil {
		t.Fatalf("view-year: %v", err)
	}
	if err := c.Tree().Reboot(CompCalendar); err != nil {
		t.Fatalf("reboot calendar: %v", err)
	}
	c.desk.mu.Lock()
	view := c.desk.calendarView
	c.desk.mu.Unlock()
	if view != "year" {
		t.Fatalf("calendar view after reboot = %q, want year", view)
	}
}

// TestWidgetRebootClosesPoisonedDialog verifies the microreboot win on the
// gnumeric tab crash: rebooting the spreadsheet closes the dialog with the
// poisoned focus chain while the cells survive, so the retried interaction
// succeeds.
func TestWidgetRebootClosesPoisonedDialog(t *testing.T) {
	c := newComponentized(t, MechGnumericTab)
	if err := c.Dispatch(Event{Widget: "gnumeric", Action: "set-cell", Arg: "A1=42"}); err != nil {
		t.Fatalf("set-cell: %v", err)
	}
	if err := c.Dispatch(Event{Widget: "gnumeric", Action: "open-define-name"}); err != nil {
		t.Fatalf("open dialog: %v", err)
	}
	err := c.Dispatch(Event{Widget: "gnumeric", Action: "press-tab"})
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechGnumericTab {
		t.Fatalf("press-tab: %v", err)
	}
	c.ContainCrash()
	if err := c.Tree().Reboot(CompGnumeric); err != nil {
		t.Fatalf("reboot gnumeric: %v", err)
	}
	// The dialog is gone, the document is not, and Tab is harmless now.
	if err := c.Dispatch(Event{Widget: "gnumeric", Action: "press-tab"}); err != nil {
		t.Fatalf("press-tab after reboot: %v", err)
	}
	if err := c.Dispatch(Event{Widget: "gnumeric", Action: "get-cell", Arg: "A1"}); err != nil {
		t.Fatalf("cells lost in widget reboot: %v", err)
	}
}

// TestSoundRebootReleasesLeakedSockets verifies that crash-stopping the
// sound part frees the leaked descriptors.
func TestSoundRebootReleasesLeakedSockets(t *testing.T) {
	c := newComponentized(t, MechSoundSocketLeak)
	for i := 0; i < 8; i++ {
		if err := c.Dispatch(Event{Widget: "session", Action: "play-sound"}); err != nil {
			t.Fatalf("play-sound %d: %v", i, err)
		}
	}
	c.desk.mu.Lock()
	leaked := len(c.desk.soundFDs)
	c.desk.mu.Unlock()
	if leaked != 8 {
		t.Fatalf("leaked sockets = %d, want 8", leaked)
	}
	if err := c.Tree().Reboot(CompSound); err != nil {
		t.Fatalf("reboot sound: %v", err)
	}
	c.desk.mu.Lock()
	leaked, want := len(c.desk.soundFDs), c.desk.soundFDWant
	c.desk.mu.Unlock()
	if leaked != 0 || want != 0 {
		t.Fatalf("sound reboot kept leaks: fds=%d want=%d", leaked, want)
	}
}

// TestWidgetOutageLeavesSiblingsInteractive verifies DownError routing: a
// dead widget fails fast while every other widget keeps dispatching.
func TestWidgetOutageLeavesSiblingsInteractive(t *testing.T) {
	c := newComponentized(t)
	if err := c.Tree().Kill(CompGmc); err != nil {
		t.Fatalf("kill gmc: %v", err)
	}
	var de *component.DownError
	if err := c.Dispatch(Event{Widget: "gmc", Action: "open", Arg: "notes.txt"}); !errors.As(err, &de) || de.Component != CompGmc {
		t.Fatalf("gmc event with gmc down: %v", err)
	}
	if err := c.Dispatch(Event{Widget: "panel", Action: "open-main-menu"}); err != nil {
		t.Fatalf("panel during gmc outage: %v", err)
	}
	if err := c.Dispatch(Event{Widget: "calendar", Action: "next"}); err != nil {
		t.Fatalf("calendar during gmc outage: %v", err)
	}
	if err := c.Tree().Restart(CompGmc); err != nil {
		t.Fatalf("restart gmc: %v", err)
	}
	if err := c.Dispatch(Event{Widget: "gmc", Action: "open", Arg: "notes.txt"}); err != nil {
		t.Fatalf("gmc after restart: %v", err)
	}
}

// TestPanelRebootReleasesFrozenMenuGrab verifies the microreboot win on the
// menu-freeze hang: the rebooted panel no longer holds the pointer grab.
func TestPanelRebootReleasesFrozenMenuGrab(t *testing.T) {
	c := newComponentized(t, MechMenuFreeze)
	if err := c.Dispatch(Event{Widget: "panel", Action: "open-main-menu"}); err != nil {
		t.Fatalf("open menu: %v", err)
	}
	err := c.Dispatch(Event{Widget: "panel", Action: "click-desktop"})
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechMenuFreeze {
		t.Fatalf("click-desktop: %v", err)
	}
	c.ContainCrash()
	if err := c.Tree().Reboot(CompPanel); err != nil {
		t.Fatalf("reboot panel: %v", err)
	}
	// The grab is released with the menu closed; the same click is harmless.
	if err := c.Dispatch(Event{Widget: "panel", Action: "click-desktop"}); err != nil {
		t.Fatalf("click after panel reboot: %v", err)
	}
}
