package desktop

import (
	"testing"

	"faultstudy/internal/simenv"
)

func benchDesktop(b *testing.B) *Desktop {
	b.Helper()
	d := New(simenv.New(1), nil)
	if err := d.Start(); err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkDispatchPanel(b *testing.B) {
	d := benchDesktop(b)
	ev := Event{Widget: "panel", Action: "open-main-menu"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Dispatch(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDispatchSetCell(b *testing.B) {
	d := benchDesktop(b)
	ev := Event{Widget: "gnumeric", Action: "set-cell", Arg: "A1=42"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Dispatch(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	d := benchDesktop(b)
	for i := 0; i < 50; i++ {
		if err := d.Dispatch(Event{Widget: "gnumeric", Action: "set-cell", Arg: "A1=1"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := d.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		d.Stop()
		if err := d.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
}
