package traffic

import (
	"strings"
	"testing"
	"time"
)

func TestParseDistributionValid(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []Entry
	}{
		{
			name: "pingpong latency pair",
			in:   "90%10ms,10%100ms",
			want: []Entry{{90, "10ms"}, {10, "100ms"}},
		},
		{
			name: "single segment",
			in:   "100%ok",
			want: []Entry{{100, "ok"}},
		},
		{
			name: "error mix",
			in:   "50%timeout,30%connection,20%deadlock",
			want: []Entry{{50, "timeout"}, {30, "connection"}, {20, "deadlock"}},
		},
		{
			name: "fractional weights within tolerance",
			in:   "33.3%a,33.3%b,33.4%c",
			want: []Entry{{33.3, "a"}, {33.3, "b"}, {33.4, "c"}},
		},
		{
			name: "whitespace around segments",
			in:   " 60%fast , 40%slow ",
			want: []Entry{{60, "fast"}, {40, "slow"}},
		},
		{
			name: "tiny tail segment",
			in:   "99.999%hit,0.001%miss",
			want: []Entry{{99.999, "hit"}, {0.001, "miss"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := ParseDistribution(tc.in)
			if err != nil {
				t.Fatalf("ParseDistribution(%q): %v", tc.in, err)
			}
			got := d.Entries()
			if len(got) != len(tc.want) {
				t.Fatalf("got %d entries, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("entry %d = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestParseDistributionInvalid(t *testing.T) {
	cases := []struct {
		name string
		in   string
		frag string // expected error fragment
	}{
		{"empty", "", "empty distribution"},
		{"whitespace only", "   ", "empty distribution"},
		{"no separator", "90-10ms", "no % separator"},
		{"empty segment", "50%a,,50%b", "segment 2 is empty"},
		{"trailing comma", "100%a,", "is empty"},
		{"bad probability", "abc%10ms", "bad probability"},
		{"empty probability", "%10ms", "bad probability"},
		{"zero weight", "0%a,100%b", "outside (0, 100]"},
		{"negative weight", "-10%a,110%b", "outside (0, 100]"},
		{"weight above 100", "150%a", "outside (0, 100]"},
		{"nan weight", "NaN%a", "outside (0, 100]"},
		{"inf weight", "+Inf%a", "outside (0, 100]"},
		{"empty value", "100%", "empty value"},
		{"sum under 100", "50%a,30%b", "sum to 80"},
		{"sum over 100", "90%a,20%b", "sum to 110"},
		{"sum off by rounding beyond tolerance", "33%a,33%b,33%c", "want 100"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := ParseDistribution(tc.in)
			if err == nil {
				t.Fatalf("ParseDistribution(%q) = %v, want error", tc.in, d)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestDistSampleBoundaries(t *testing.T) {
	d, err := ParseDistribution("90%fast,10%slow")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		u    float64
		want string
	}{
		{0, "fast"},
		{0.5, "fast"},
		{0.899999, "fast"},
		{0.9, "slow"}, // boundary lands on the next segment
		{0.999, "slow"},
		{1.0, "slow"},  // clamp: u at 1 stays in range
		{1.5, "slow"},  // clamp: sloppy caller
		{-0.1, "fast"}, // negative draws map below the first boundary
	}
	for _, tc := range cases {
		if got := d.Sample(tc.u); got != tc.want {
			t.Errorf("Sample(%v) = %q, want %q", tc.u, got, tc.want)
		}
	}
}

func TestDistSampleProportions(t *testing.T) {
	d, err := ParseDistribution("70%a,20%b,10%c")
	if err != nil {
		t.Fatal(err)
	}
	// A uniform grid of draws lands in segments proportional to weight.
	const n = 10000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[d.Sample(float64(i)/n)]++
	}
	if counts["a"] != 7000 || counts["b"] != 2000 || counts["c"] != 1000 {
		t.Errorf("grid sampling got %v, want a:7000 b:2000 c:1000", counts)
	}
}

func TestParseLatencyDist(t *testing.T) {
	l, err := ParseLatencyDist("90%10ms,10%100ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Sample(0); got != 10*time.Millisecond {
		t.Errorf("Sample(0) = %v, want 10ms", got)
	}
	if got := l.Sample(0.95); got != 100*time.Millisecond {
		t.Errorf("Sample(0.95) = %v, want 100ms", got)
	}
	for _, bad := range []string{
		"90%10ms,10%fast",  // non-duration value
		"100%-5ms",         // negative duration
		"90%10ms,10%100xs", // bad unit
	} {
		if _, err := ParseLatencyDist(bad); err == nil {
			t.Errorf("ParseLatencyDist(%q) succeeded, want error", bad)
		}
	}
}

func TestDistStringRoundTrip(t *testing.T) {
	for _, in := range []string{"90%10ms,10%100ms", "100%ok", "33.3%a,33.3%b,33.4%c"} {
		d, err := ParseDistribution(in)
		if err != nil {
			t.Fatal(err)
		}
		got := d.String()
		d2, err := ParseDistribution(got)
		if err != nil {
			t.Fatalf("re-parse of String() %q: %v", got, err)
		}
		if d2.String() != got {
			t.Errorf("String round-trip unstable: %q -> %q", got, d2.String())
		}
	}
}
