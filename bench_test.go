// Benchmarks regenerating every table and figure in the paper's evaluation,
// plus the recovery experiments and ablations (see DESIGN.md's experiment
// index). Each benchmark recomputes its artifact per iteration and reports
// the headline values as custom metrics, so `go test -bench=.` doubles as a
// results run:
//
//	T1-T3   BenchmarkTable{1Apache,2Gnome,3MySQL}      — classification tables
//	PIPE    BenchmarkPipelineStudy                     — full mine->classify run
//	F1-F3   BenchmarkFigure{1Apache...,2Gnome...,3...} — distribution figures
//	AGG     BenchmarkAggregateDiscussion               — §5.4 totals
//	REC     BenchmarkRecoveryMatrix                    — generic-recovery verification
//	LEE     BenchmarkLee93Comparison                   — §7 reconciliation
//	ABL-*   BenchmarkAblation*                         — design-choice ablations
package faultstudy_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"faultstudy"
	"faultstudy/internal/experiment"
	"faultstudy/internal/taxonomy"
)

func benchTable(b *testing.B, app faultstudy.Application) {
	b.Helper()
	var res *faultstudy.TableResult
	for i := 0; i < b.N; i++ {
		res = faultstudy.Table(app)
	}
	if !res.Matches() {
		b.Fatalf("table diverges from the paper:\n%s", res)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	b.ReportMetric(float64(res.Counts[faultstudy.ClassEnvIndependent]), "EI")
	b.ReportMetric(float64(res.Counts[faultstudy.ClassEnvDependentNonTransient]), "EDN")
	b.ReportMetric(float64(res.Counts[faultstudy.ClassEnvDependentTransient]), "EDT")
	b.ReportMetric(float64(total), "faults")
}

// BenchmarkTable1Apache regenerates Table 1 (36/7/7 over 50 Apache faults).
func BenchmarkTable1Apache(b *testing.B) { benchTable(b, faultstudy.AppApache) }

// BenchmarkTable2Gnome regenerates Table 2 (39/3/3 over 45 GNOME faults).
func BenchmarkTable2Gnome(b *testing.B) { benchTable(b, faultstudy.AppGnome) }

// BenchmarkTable3MySQL regenerates Table 3 (38/4/2 over 44 MySQL faults).
func BenchmarkTable3MySQL(b *testing.B) { benchTable(b, faultstudy.AppMySQL) }

// BenchmarkPipelineStudy runs the full methodology — crawl the three
// simulated trackers over HTTP, parse the native formats, filter, fold
// duplicates, classify — and checks the tables come out exactly.
func BenchmarkPipelineStudy(b *testing.B) {
	cfg := faultstudy.SiteConfig{Seed: 1999}
	apache := httptest.NewServer(faultstudy.NewApacheTrackerSite(cfg))
	defer apache.Close()
	gnome := httptest.NewServer(faultstudy.NewGnomeTrackerSite(cfg))
	defer gnome.Close()
	mysql := httptest.NewServer(faultstudy.NewMySQLArchiveSite(cfg))
	defer mysql.Close()
	src := faultstudy.StudySources{ApacheBase: apache.URL, GnomeBase: gnome.URL, MySQLBase: mysql.URL}

	b.ResetTimer()
	var res *faultstudy.StudyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = faultstudy.RunStudy(context.Background(), src, faultstudy.StudyOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	_, total := res.Totals()
	if total != 139 {
		b.Fatalf("pipeline found %d unique faults, want 139", total)
	}
	raw := 0
	for _, r := range res.Apps {
		raw += r.Raw
	}
	b.ReportMetric(float64(raw), "raw_reports")
	b.ReportMetric(float64(total), "unique_faults")
}

func benchFigure(b *testing.B, build func() *faultstudy.FigureSeries, wantTotal int) {
	b.Helper()
	var fig *faultstudy.FigureSeries
	for i := 0; i < b.N; i++ {
		fig = build()
	}
	sum := 0
	for _, n := range fig.Totals() {
		sum += n
	}
	if sum != wantTotal {
		b.Fatalf("figure covers %d faults, want %d", sum, wantTotal)
	}
	shares := fig.EIShare()
	b.ReportMetric(float64(len(fig.Buckets)), "buckets")
	b.ReportMetric(100*shares[len(shares)-1], "EI_share_last_pct")
}

// BenchmarkFigure1ApacheReleases regenerates Figure 1 (faults per Apache
// release, EI share roughly constant, totals growing).
func BenchmarkFigure1ApacheReleases(b *testing.B) {
	benchFigure(b, faultstudy.Figure1Apache, 50)
}

// BenchmarkFigure2GnomeTime regenerates Figure 2 (GNOME faults over time with
// the mid-study dip).
func BenchmarkFigure2GnomeTime(b *testing.B) {
	benchFigure(b, faultstudy.Figure2Gnome, 45)
}

// BenchmarkFigure3MySQLReleases regenerates Figure 3 (faults per MySQL
// release, last release small because it is new).
func BenchmarkFigure3MySQLReleases(b *testing.B) {
	benchFigure(b, faultstudy.Figure3MySQL, 44)
}

// BenchmarkAggregateDiscussion regenerates the §5.4 numbers: 139 faults,
// 14 EDN (10%), 12 EDT (9%), EI share 72-87% per application.
func BenchmarkAggregateDiscussion(b *testing.B) {
	var agg *faultstudy.AggregateResult
	for i := 0; i < b.N; i++ {
		agg = faultstudy.Aggregate()
	}
	if agg.Total != 139 {
		b.Fatalf("total = %d", agg.Total)
	}
	b.ReportMetric(float64(agg.Counts[faultstudy.ClassEnvDependentNonTransient]), "EDN")
	b.ReportMetric(float64(agg.Counts[faultstudy.ClassEnvDependentTransient]), "EDT")
	b.ReportMetric(100*agg.EIShare[faultstudy.AppApache].Value(), "apache_EI_pct")
	b.ReportMetric(100*agg.EIShare[faultstudy.AppGnome].Value(), "gnome_EI_pct")
	b.ReportMetric(100*agg.EIShare[faultstudy.AppMySQL].Value(), "mysql_EI_pct")
}

// BenchmarkRecoveryMatrix runs the end-to-end recovery verification: all 139
// faults' executable reproductions under all four strategies (556 recovery
// runs per iteration). The reported metrics are the paper's headline: pure
// generic recovery survives only the transient slice.
func BenchmarkRecoveryMatrix(b *testing.B) {
	var m *faultstudy.RecoveryMatrix
	for i := 0; i < b.N; i++ {
		var err error
		m, err = faultstudy.RunRecoveryMatrix(faultstudy.RecoveryPolicy{}, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	pp := m.Rate(faultstudy.StrategyProcessPairs, taxonomy.ClassUnknown)
	edt := m.Rate(faultstudy.StrategyProcessPairs, faultstudy.ClassEnvDependentTransient)
	b.ReportMetric(100*pp.Value(), "generic_survival_pct")
	b.ReportMetric(100*edt.Value(), "EDT_survival_pct")
	b.ReportMetric(100*m.Rate(faultstudy.StrategyProcessPairs, faultstudy.ClassEnvIndependent).Value(), "EI_survival_pct")
	b.ReportMetric(100*m.Rate(faultstudy.StrategyCleanRestart, faultstudy.ClassEnvDependentNonTransient).Value(), "restart_EDN_pct")
}

// BenchmarkLee93Comparison computes the §7 reconciliation with the Tandem
// study: 82% reported, 29% after the paper's adjustments, 5-14% here.
func BenchmarkLee93Comparison(b *testing.B) {
	m, err := faultstudy.RunRecoveryMatrix(faultstudy.RecoveryPolicy{}, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var l *faultstudy.Lee93Result
	for i := 0; i < b.N; i++ {
		l = faultstudy.CompareLee93(m)
	}
	b.ReportMetric(100*l.TandemReported, "tandem_reported_pct")
	b.ReportMetric(100*l.TandemAdjusted, "tandem_adjusted_pct")
	b.ReportMetric(100*l.OurGenericRate.Value(), "our_generic_pct")
	b.ReportMetric(100*l.PerApp[faultstudy.AppApache].Value(), "apache_pct")
	b.ReportMetric(100*l.PerApp[faultstudy.AppGnome].Value(), "gnome_pct")
	b.ReportMetric(100*l.PerApp[faultstudy.AppMySQL].Value(), "mysql_pct")
}

// BenchmarkAblationProgressiveRetry compares plain process pairs against
// Wang93-style progressive retry on the transient faults under a one-retry
// budget (§6.3).
func BenchmarkAblationProgressiveRetry(b *testing.B) {
	var ab *experiment.RetryAblation
	for i := 0; i < b.N; i++ {
		var err error
		ab, err = experiment.RunRetryAblation(3, 77)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*ab.Plain.Value(), "plain_pct")
	b.ReportMetric(100*ab.Progressive.Value(), "progressive_pct")
}

// BenchmarkAblationRejuvenation sweeps the rejuvenation interval over the
// resource-accumulation faults (§6.2).
func BenchmarkAblationRejuvenation(b *testing.B) {
	var ab *experiment.RejuvenationAblation
	for i := 0; i < b.N; i++ {
		var err error
		ab, err = experiment.RunRejuvenationAblation([]int{0, 16, 64}, 99)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*ab.Intervals[0].Value(), "never_pct")
	b.ReportMetric(100*ab.Intervals[16].Value(), "every16_pct")
	b.ReportMetric(100*ab.Intervals[64].Value(), "every64_pct")
}

// BenchmarkAblationClassifierSensitivity sweeps the trigger-cue weighting to
// quantify the §5.4 subjectivity caveat.
func BenchmarkAblationClassifierSensitivity(b *testing.B) {
	var points []experiment.SensitivityPoint
	for i := 0; i < b.N; i++ {
		points = experiment.RunClassifierSensitivity([]float64{0.25, 0.5, 1.0, 2.0})
	}
	for _, p := range points {
		if p.Scale == 1.0 {
			b.ReportMetric(100*p.Accuracy, "accuracy_at_study_config_pct")
		}
		if p.Scale == 0.25 {
			b.ReportMetric(float64(p.Counts[faultstudy.ClassEnvDependentTransient]), "EDT_at_quarter_weight")
		}
	}
}

// BenchmarkAblationReclaim compares generic recovery with and without
// reclaiming the failed primary's operating-system resources (DESIGN.md
// ablation 2): hung children and held ports must be killed for several
// transients to be survivable.
func BenchmarkAblationReclaim(b *testing.B) {
	var ab *experiment.ReclaimAblation
	for i := 0; i < b.N; i++ {
		var err error
		ab, err = experiment.RunReclaimAblation(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*ab.WithReclaim.Value(), "with_reclaim_pct")
	b.ReportMetric(100*ab.WithoutReclaim.Value(), "without_reclaim_pct")
}

// BenchmarkAblationResourceGovernor measures the §6.2 "automatically
// increase the resources available" mitigation: nontransient faults under
// process pairs with and without the resource governor.
func BenchmarkAblationResourceGovernor(b *testing.B) {
	var ab *experiment.MitigationAblation
	for i := 0; i < b.N; i++ {
		var err error
		ab, err = experiment.RunMitigationAblation(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*ab.Plain.Value(), "plain_EDN_pct")
	b.ReportMetric(100*ab.Governed.Value(), "governed_EDN_pct")
}

// BenchmarkOpsToFailure measures the §5.1 "failure point varies with load"
// observation: requests sustained before the hung-children fault manifests,
// across load mixes of increasing CGI share.
func BenchmarkOpsToFailure(b *testing.B) {
	var points []experiment.OpsToFailurePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiment.RunOpsToFailure(5000, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Failed {
			b.ReportMetric(float64(p.OpsToFailure), p.Label+"_ops")
		}
	}
}
