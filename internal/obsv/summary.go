package obsv

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"faultstudy/internal/stats"
)

// ClassSummary aggregates every episode of one environment-dependence class
// — the per-class telemetry row the paper's headline EI/EDN/EDT split can be
// read off directly.
type ClassSummary struct {
	// Class is the class short name (EI, EDN, EDT) or "?" for episodes whose
	// mechanism has no class (supervisor pseudo-mechanisms).
	Class string
	// Episodes is the number of fault episodes observed.
	Episodes int
	// Recovered, Degraded, Shed, Lost, FastFailed partition the episodes by
	// outcome.
	Recovered, Degraded, Shed, Lost, FastFailed int
	// Retries is the total number of recovery attempts spent.
	Retries int
	// RetriesPerRecovery is the mean retries among episodes that were served
	// (recovered or served-degraded).
	RetriesPerRecovery float64
	// MTTRMean, MTTRP50, MTTRP95, MTTRMax summarize time-to-repair over the
	// served episodes, on the virtual clock.
	MTTRMean, MTTRP50, MTTRP95, MTTRMax time.Duration
	// Rungs is the final-rung distribution over all episodes.
	Rungs map[string]int
	// RungAttempts counts recovery actions applied at each ladder rung across
	// the class's episodes; RungSuccesses counts, per rung, the retries that
	// then served the failed operation. Together they show where on the
	// ladder a class's recovery effort goes and where it pays off.
	RungAttempts, RungSuccesses map[string]int
	// Planned is the statically planned-rung distribution over episodes that
	// carry a recovery-scope prediction (the SCOPE experiment); empty
	// elsewhere. Read against Rungs it shows where the static plan and the
	// dynamic outcome diverge.
	Planned map[string]int
}

// served counts episodes that ended with the op served.
func (c *ClassSummary) served() int { return c.Recovered + c.Degraded }

// classOrder fixes the presentation order of summary rows.
func classOrder(class string) int {
	switch class {
	case "EI":
		return 0
	case "EDN":
		return 1
	case "EDT":
		return 2
	default:
		return 3
	}
}

// Summarize folds episodes into per-class summaries, ordered EI, EDN, EDT,
// then any remaining classes alphabetically.
func Summarize(episodes []*Episode) []*ClassSummary {
	byClass := make(map[string]*ClassSummary)
	repair := make(map[string][]float64) // seconds, served episodes only
	for _, e := range episodes {
		cs, ok := byClass[e.Class]
		if !ok {
			cs = &ClassSummary{Class: e.Class, Rungs: make(map[string]int),
				RungAttempts: make(map[string]int), RungSuccesses: make(map[string]int),
				Planned: make(map[string]int)}
			byClass[e.Class] = cs
		}
		cs.Episodes++
		cs.Retries += e.Retries
		if e.FinalRung != "" {
			cs.Rungs[e.FinalRung]++
		}
		if e.PlannedRung != "" {
			cs.Planned[e.PlannedRung]++
		}
		for _, sp := range e.Spans {
			if sp.Rung == "" {
				continue
			}
			switch {
			case sp.Kind == SpanAction:
				cs.RungAttempts[sp.Rung]++
			case sp.Kind == SpanRetry && sp.Outcome == "ok":
				cs.RungSuccesses[sp.Rung]++
			}
		}
		switch e.Outcome {
		case OutcomeRecovered:
			cs.Recovered++
		case OutcomeDegraded:
			cs.Degraded++
		case OutcomeShed:
			cs.Shed++
		case OutcomeFastFail:
			cs.FastFailed++
		default:
			cs.Lost++
		}
		if e.Outcome == OutcomeRecovered || e.Outcome == OutcomeDegraded {
			repair[e.Class] = append(repair[e.Class], e.Duration().Seconds())
		}
	}
	out := make([]*ClassSummary, 0, len(byClass))
	for class, cs := range byClass {
		if xs := repair[class]; len(xs) > 0 {
			sum, retries := 0.0, 0
			for _, x := range xs {
				sum += x
			}
			for _, e := range episodes {
				if e.Class == class && (e.Outcome == OutcomeRecovered || e.Outcome == OutcomeDegraded) {
					retries += e.Retries
				}
			}
			cs.MTTRMean = secDur(sum / float64(len(xs)))
			cs.MTTRP50 = secDur(stats.Quantile(xs, 0.50))
			cs.MTTRP95 = secDur(stats.Quantile(xs, 0.95))
			cs.MTTRMax = secDur(stats.Quantile(xs, 1))
			cs.RetriesPerRecovery = float64(retries) / float64(len(xs))
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool {
		oi, oj := classOrder(out[i].Class), classOrder(out[j].Class)
		if oi != oj {
			return oi < oj
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// secDur converts float seconds to a duration rounded to the microsecond —
// the schema's resolution, so summaries stay byte-stable.
func secDur(s float64) time.Duration {
	return (time.Duration(s*1e6) * time.Microsecond).Round(time.Microsecond)
}

// rungOrder fixes the ladder order used when rendering rung distributions.
var rungOrder = []string{"retry", "microreboot", "subtree-reboot", "restore", "restart", "degraded"}

// renderRungs renders a final-rung distribution compactly in ladder order,
// unknown rungs last alphabetically.
func renderRungs(rungs map[string]int) string {
	if len(rungs) == 0 {
		return "-"
	}
	var parts []string
	seen := make(map[string]bool)
	for _, r := range rungOrder {
		if n := rungs[r]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", r, n))
			seen[r] = true
		}
	}
	var rest []string
	for r := range rungs {
		if !seen[r] {
			rest = append(rest, r)
		}
	}
	sort.Strings(rest)
	for _, r := range rest {
		parts = append(parts, fmt.Sprintf("%s=%d", r, rungs[r]))
	}
	return strings.Join(parts, " ")
}

// renderRungRatio renders per-rung attempts/successes compactly in ladder
// order ("retry=3/1" is 3 attempts, 1 of which served the op), unknown rungs
// last alphabetically.
func renderRungRatio(attempts, successes map[string]int) string {
	if len(attempts) == 0 {
		return "-"
	}
	var parts []string
	seen := make(map[string]bool)
	add := func(r string) {
		parts = append(parts, fmt.Sprintf("%s=%d/%d", r, attempts[r], successes[r]))
		seen[r] = true
	}
	for _, r := range rungOrder {
		if attempts[r] > 0 {
			add(r)
		}
	}
	var rest []string
	for r := range attempts {
		if !seen[r] {
			rest = append(rest, r)
		}
	}
	sort.Strings(rest)
	for _, r := range rest {
		add(r)
	}
	return strings.Join(parts, " ")
}

// RenderSummary renders the per-class telemetry table: episode counts,
// served/degraded/lost fractions, MTTR, retries-per-recovery, the per-rung
// attempt/success counts, and the final-rung distribution.
func RenderSummary(sums []*ClassSummary) string {
	tbl := &stats.Table{Header: []string{
		"class", "episodes", "served", "degraded", "shed", "lost", "fast-fail",
		"MTTR(mean)", "MTTR(p95)", "retries/recovery", "rung attempts/ok", "planned rungs", "final rungs",
	}}
	for _, cs := range sums {
		frac := func(n int) string {
			if cs.Episodes == 0 {
				return "0"
			}
			return fmt.Sprintf("%d (%s)", n, stats.Proportion{Hits: n, N: cs.Episodes}.Percent())
		}
		mttrMean, mttrP95, rpr := "-", "-", "-"
		if cs.served() > 0 {
			mttrMean = cs.MTTRMean.String()
			mttrP95 = cs.MTTRP95.String()
			rpr = fmt.Sprintf("%.1f", cs.RetriesPerRecovery)
		}
		tbl.Add(cs.Class, fmt.Sprint(cs.Episodes),
			frac(cs.served()), frac(cs.Degraded), frac(cs.Shed), frac(cs.Lost), frac(cs.FastFailed),
			mttrMean, mttrP95, rpr,
			renderRungRatio(cs.RungAttempts, cs.RungSuccesses),
			renderRungs(cs.Planned), renderRungs(cs.Rungs))
	}
	return "Recovery telemetry by fault class:\n" + tbl.String()
}
