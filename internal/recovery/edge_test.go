package recovery

import (
	"errors"
	"strings"
	"testing"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/taxonomy"
)

// fakeApp is a scriptable Application for exercising the manager's edge
// paths without a real simulated application.
type fakeApp struct {
	env         *simenv.Env
	running     bool
	startErr    error
	snapshotErr error
	restoreErr  error
	resetErr    error
	restores    int
	resets      int
}

func newFakeApp() *fakeApp { return &fakeApp{env: simenv.New(1)} }

func (f *fakeApp) Name() string { return "fake" }
func (f *fakeApp) Start() error {
	if f.startErr != nil {
		return f.startErr
	}
	f.running = true
	return nil
}
func (f *fakeApp) Stop()         { f.running = false }
func (f *fakeApp) Running() bool { return f.running }
func (f *fakeApp) Snapshot() ([]byte, error) {
	if f.snapshotErr != nil {
		return nil, f.snapshotErr
	}
	return []byte("{}"), nil
}
func (f *fakeApp) Restore(_ []byte) error {
	f.restores++
	if f.restoreErr != nil {
		return f.restoreErr
	}
	f.running = true
	return nil
}
func (f *fakeApp) Reset() error {
	f.resets++
	if f.resetErr != nil {
		return f.resetErr
	}
	f.running = true
	return nil
}
func (f *fakeApp) Env() *simenv.Env { return f.env }

var _ Application = (*fakeApp)(nil)

func failingScenario(failures int) faultinject.Scenario {
	n := 0
	return faultinject.Scenario{
		Mechanism: "fake/transient",
		Ops: []faultinject.Op{{Name: "op", Do: func() error {
			n++
			if n <= failures {
				return faultinject.Fail("fake/transient", taxonomy.SymptomCrash, "boom")
			}
			return nil
		}}},
	}
}

func TestStartErrorIsHarnessError(t *testing.T) {
	app := newFakeApp()
	app.startErr = errors.New("no port")
	m := NewManager(Policy{})
	if _, err := m.Run(app, failingScenario(0), StrategyProcessPairs); err == nil {
		t.Error("start error should surface as a harness error")
	}
}

func TestSnapshotErrorIsHarnessError(t *testing.T) {
	app := newFakeApp()
	app.snapshotErr = errors.New("disk gone")
	m := NewManager(Policy{})
	if _, err := m.Run(app, failingScenario(0), StrategyProcessPairs); err == nil {
		t.Error("snapshot error should surface as a harness error")
	}
}

func TestRestoreErrorFailsTheRunNotTheHarness(t *testing.T) {
	app := newFakeApp()
	app.restoreErr = errors.New("backup refused")
	m := NewManager(Policy{})
	out, err := m.Run(app, failingScenario(1), StrategyProcessPairs)
	if err != nil {
		t.Fatalf("restore failure must not be a harness error: %v", err)
	}
	if out.Survived {
		t.Error("run should be lost when recovery itself fails")
	}
	if out.Err == nil || !strings.Contains(out.Err.Error(), "recovery failed") {
		t.Errorf("err = %v", out.Err)
	}
}

func TestResetErrorFailsCleanRestart(t *testing.T) {
	app := newFakeApp()
	app.resetErr = errors.New("init scripts broken")
	m := NewManager(Policy{})
	out, err := m.Run(app, failingScenario(1), StrategyCleanRestart)
	if err != nil {
		t.Fatal(err)
	}
	if out.Survived {
		t.Error("run should be lost")
	}
}

func TestTransientFailureRecoversAfterOneRetry(t *testing.T) {
	app := newFakeApp()
	m := NewManager(Policy{})
	out, err := m.Run(app, failingScenario(1), StrategyProcessPairs)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Survived || out.Attempts != 1 || app.restores != 1 {
		t.Errorf("out=%+v restores=%d", out, app.restores)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	app := newFakeApp()
	m := NewManager(Policy{MaxRetries: 2})
	out, err := m.Run(app, failingScenario(10), StrategyProcessPairs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Survived {
		t.Error("should be lost")
	}
	if out.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", out.Attempts)
	}
}

func TestFirstOpNonFailureErrorIsHarnessError(t *testing.T) {
	app := newFakeApp()
	sc := faultinject.Scenario{
		Mechanism: "fake/x",
		Ops: []faultinject.Op{{Name: "op", Do: func() error {
			return errors.New("plain error")
		}}},
	}
	m := NewManager(Policy{})
	if _, err := m.Run(app, sc, StrategyProcessPairs); err == nil {
		t.Error("non-failure op error should be a harness error")
	}
}

func TestRejuvenationIntervalValidation(t *testing.T) {
	app := newFakeApp()
	m := NewManager(Policy{})
	if _, err := m.RunRejuvenating(app, failingScenario(0), 0); err == nil {
		t.Error("interval 0 should be rejected")
	}
}

func TestRejuvenationCountsResets(t *testing.T) {
	app := newFakeApp()
	ops := make([]faultinject.Op, 10)
	for i := range ops {
		ops[i] = faultinject.Op{Name: "noop", Do: func() error { return nil }}
	}
	m := NewManager(Policy{})
	out, err := m.RunRejuvenating(app, faultinject.Scenario{Mechanism: "fake/x", Ops: ops}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Survived {
		t.Errorf("out = %+v", out)
	}
	// Rejuvenation before ops 3, 6, 9.
	if out.Recoveries != 3 || app.resets != 3 {
		t.Errorf("recoveries=%d resets=%d, want 3/3", out.Recoveries, app.resets)
	}
}

func TestRejuvenationFirstFailureIsTerminal(t *testing.T) {
	app := newFakeApp()
	m := NewManager(Policy{})
	out, err := m.RunRejuvenating(app, failingScenario(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if out.Survived || out.Failures != 1 {
		t.Errorf("out = %+v", out)
	}
}

func TestSkipReclaimLeavesResources(t *testing.T) {
	app := newFakeApp()
	// A resource held by the "failed primary".
	if _, err := app.env.Procs().Spawn("fake"); err != nil {
		t.Fatal(err)
	}
	m := NewManager(Policy{SkipReclaim: true})
	out, err := m.Run(app, failingScenario(1), StrategyProcessPairs)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Survived {
		t.Fatalf("out = %+v", out)
	}
	if app.env.Procs().OwnedBy("fake") != 1 {
		t.Error("SkipReclaim should leave the process in place")
	}
	// Default policy reclaims it.
	app2 := newFakeApp()
	if _, err := app2.env.Procs().Spawn("fake"); err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(Policy{})
	if _, err := m2.Run(app2, failingScenario(1), StrategyProcessPairs); err != nil {
		t.Fatal(err)
	}
	if app2.env.Procs().OwnedBy("fake") != 0 {
		t.Error("default policy should reclaim the process")
	}
}

func TestGovernorGrowsExhaustedResources(t *testing.T) {
	env := simenv.New(3, simenv.WithFDLimit(4), simenv.WithDiskBytes(100), simenv.WithMaxFileSize(50))

	// Descriptors.
	for {
		if _, err := env.FDs().Open("x"); err != nil {
			break
		}
	}
	_, fdErr := env.FDs().Open("x")
	if !growResources(env, faultinject.FailCause("m", taxonomy.SymptomError, "fds", fdErr)) {
		t.Error("fd exhaustion should be growable")
	}
	if _, err := env.FDs().Open("x"); err != nil {
		t.Errorf("open after growth: %v", err)
	}

	// Disk capacity: fill it, capture the failing append, grow, retry.
	if err := env.Disk().Append("/a", "x", 50); err != nil {
		t.Fatal(err)
	}
	if err := env.Disk().Append("/b", "x", 50); err != nil {
		t.Fatal(err)
	}
	diskErr := env.Disk().Append("/c", "x", 50)
	if diskErr == nil {
		t.Fatal("premise broken: disk not full")
	}
	if !growResources(env, faultinject.FailCause("m", taxonomy.SymptomError, "disk", diskErr)) {
		t.Error("full disk should be growable")
	}
	if err := env.Disk().Append("/c", "x", 50); err != nil {
		t.Errorf("append after growth: %v", err)
	}

	// File-size limit.
	sizeErr := env.Disk().Append("/a", "x", 10)
	if sizeErr == nil {
		t.Skip("premise broken: file not at limit")
	}
	if !growResources(env, faultinject.FailCause("m", taxonomy.SymptomError, "file", sizeErr)) {
		t.Error("file-size limit should be growable")
	}
	if err := env.Disk().Append("/a", "x", 10); err != nil {
		t.Errorf("append after file-size growth: %v", err)
	}

	// Non-growable conditions.
	if growResources(env, faultinject.Fail("m", taxonomy.SymptomError, "hostname changed")) {
		t.Error("host config must not be growable")
	}
	if growResources(env, faultinject.FailCause("m", taxonomy.SymptomError, "card", simenv.ErrNetworkDown)) {
		t.Error("a removed card must not be growable")
	}
}

func TestGovernorGrowsNetResource(t *testing.T) {
	env := simenv.New(3)
	env.Net().SetResourceCap(2)
	_ = env.Net().AcquireResource()
	_ = env.Net().AcquireResource()
	err := env.Net().AcquireResource()
	if !growResources(env, faultinject.FailCause("m", taxonomy.SymptomError, "net", err)) {
		t.Error("net resource should be growable")
	}
	if err := env.Net().AcquireResource(); err != nil {
		t.Errorf("acquire after growth: %v", err)
	}
}

func TestTraceSequence(t *testing.T) {
	var events []TraceEventKind
	app := newFakeApp()
	m := NewManager(Policy{Trace: func(ev TraceEvent) {
		events = append(events, ev.Kind)
	}})
	out, err := m.Run(app, failingScenario(2), StrategyProcessPairs)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Survived {
		t.Fatalf("out = %+v", out)
	}
	want := []TraceEventKind{TraceFailure, TraceRecover, TraceRetryFail, TraceRecover, TraceRetryOK}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestTraceGaveUp(t *testing.T) {
	var last TraceEvent
	app := newFakeApp()
	m := NewManager(Policy{MaxRetries: 1, Trace: func(ev TraceEvent) { last = ev }})
	out, err := m.Run(app, failingScenario(10), StrategyProcessPairs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Survived {
		t.Fatal("should be lost")
	}
	if last.Kind != TraceGaveUp {
		t.Errorf("last event = %v, want gave-up", last.Kind)
	}
	for _, k := range []TraceEventKind{TraceFailure, TraceRecover, TraceRetryOK, TraceRetryFail, TraceGaveUp} {
		if k.String() == "" {
			t.Errorf("empty kind string for %d", int(k))
		}
	}
	if TraceEventKind(42).String() != "TraceEventKind(42)" {
		t.Error("unknown kind string")
	}
}
