package durable

import (
	"errors"
	"fmt"
	"sync"

	"faultstudy/internal/simenv"
)

var (
	// ErrClosed rejects operations on a closed store.
	ErrClosed = errors.New("durable: store is closed")
	// ErrRollbackUnreachable means the requested sequence number lies
	// before the on-disk checkpoint (or after the log's end), so
	// checkpoint-load + replay cannot reconstruct it.
	ErrRollbackUnreachable = errors.New("durable: rollback target not reachable from checkpoint + log")
)

// Options tunes a store.
type Options struct {
	// CheckpointEvery is the number of applied records between automatic
	// checkpoints; 0 picks the default (64), negative disables automatic
	// checkpointing.
	CheckpointEvery int
	// NoFD opens the store without charging a file descriptor — for
	// callers that model descriptor ownership elsewhere.
	NoFD bool
}

// DefaultCheckpointEvery is the automatic checkpoint cadence when Options
// leaves it zero.
const DefaultCheckpointEvery = 64

// Stats counts a store's lifetime activity.
type Stats struct {
	// Appends is the number of records durably applied.
	Appends uint64
	// Checkpoints is the number of checkpoints committed.
	Checkpoints uint64
	// CheckpointFailures counts automatic checkpoints that failed; the
	// store carries on — a checkpoint is an optimization, the WAL is the
	// truth — and retries at the next cadence point.
	CheckpointFailures uint64
	// Repairs counts torn-tail truncations performed after a failed
	// append, before the next one.
	Repairs uint64
}

// RecoveryInfo reports what Open had to do to reach a consistent state.
type RecoveryInfo struct {
	// CheckpointSeq is the sequence number the loaded checkpoint covered
	// (0 when none existed).
	CheckpointSeq uint64
	// Replayed is the number of WAL records replayed on top of the
	// checkpoint.
	Replayed int
	// TornTail is true when the log ended in an incomplete record —
	// the expected crash aftermath.
	TornTail bool
	// Corrupt is true when the log held a checksum or structural failure —
	// detected damage, truncated like a torn tail but never expected from
	// a clean crash.
	Corrupt bool
	// TruncatedBytes is how many damaged trailing log bytes were cut.
	TruncatedBytes int64
	// TmpRemoved is true when a leftover mid-checkpoint temporary file was
	// swept away.
	TmpRemoved bool
}

// Store is a crash-consistent keyed record store over the simulated disk.
// All mutations append a WAL record (synced before acknowledgement) and
// periodic checkpoints bound replay; Open is the recovery path. A Store is
// safe for concurrent use.
type Store struct {
	env   *simenv.Env
	owner string
	dir   string
	opts  Options

	mu        sync.Mutex
	state     map[string][]byte
	seq       uint64
	ckptSeq   uint64
	walGood   int64 // bytes of known-good WAL prefix
	wounded   bool  // a failed append may have left garbage after walGood
	sinceCkpt int
	fd        simenv.FD
	hasFD     bool
	closed    bool
	stats     Stats
}

func (s *Store) walPath() string  { return s.dir + "/wal.log" }
func (s *Store) ckptPath() string { return s.dir + "/checkpoint.db" }
func (s *Store) tmpPath() string  { return s.dir + "/checkpoint.tmp" }

// Open builds a store rooted at dir, recovering whatever a previous
// incarnation left behind: it sweeps a mid-checkpoint temporary file, loads
// the checkpoint, replays the WAL on top, and truncates the log at the
// first torn or corrupt record. The returned RecoveryInfo says what was
// found. Open charges one descriptor to owner (unless Options.NoFD) and
// fails with the underlying simenv error when the table is exhausted — the
// study's descriptor-competition condition applies to the durability layer
// like any other.
func Open(env *simenv.Env, owner, dir string, opts Options) (*Store, *RecoveryInfo, error) {
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	s := &Store{env: env, owner: owner, dir: dir, opts: opts, state: make(map[string][]byte)}
	if !opts.NoFD {
		fd, err := env.FDs().Open(owner)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: open %q: %w", dir, err)
		}
		s.fd, s.hasFD = fd, true
	}
	info := &RecoveryInfo{}
	if err := s.recover(info); err != nil {
		s.releaseFD()
		return nil, nil, err
	}
	return s, info, nil
}

// recover is Open's body: checkpoint-load + log-replay + tail repair.
func (s *Store) recover(info *RecoveryInfo) error {
	disk := s.env.Disk()
	if disk.Exists(s.tmpPath()) {
		if err := disk.Remove(s.tmpPath()); err != nil {
			return fmt.Errorf("durable: sweep %q: %w", s.tmpPath(), err)
		}
		info.TmpRemoved = true
	}
	if disk.Exists(s.ckptPath()) {
		raw, err := disk.ReadAll(s.ckptPath())
		if err != nil {
			return fmt.Errorf("durable: read checkpoint: %w", err)
		}
		state, seq, err := ReadCheckpoint(raw)
		if err != nil {
			return fmt.Errorf("durable: checkpoint %q: %w", s.ckptPath(), err)
		}
		s.state, s.ckptSeq, s.seq = state, seq, seq
		info.CheckpointSeq = seq
	}
	if disk.Exists(s.walPath()) {
		raw, err := disk.ReadAll(s.walPath())
		if err != nil {
			return fmt.Errorf("durable: read wal: %w", err)
		}
		recs, valid, rerr := ReadWAL(raw)
		for _, rec := range recs {
			if rec.Seq <= s.ckptSeq {
				continue // checkpointed before the crash interrupted log truncation
			}
			applyOps(s.state, rec.Ops)
			s.seq = rec.Seq
			info.Replayed++
		}
		if rerr != nil {
			info.TornTail = errors.Is(rerr, ErrTornTail)
			info.Corrupt = errors.Is(rerr, ErrCorrupt)
			info.TruncatedBytes = int64(len(raw) - valid)
			if err := disk.TruncateTo(s.walPath(), int64(valid)); err != nil {
				return fmt.Errorf("durable: repair wal tail: %w", err)
			}
		}
		s.walGood = int64(valid)
		s.sinceCkpt = int(s.seq - s.ckptSeq)
	}
	return nil
}

func (s *Store) releaseFD() {
	if s.hasFD {
		_ = s.env.FDs().Close(s.fd)
		s.hasFD = false
	}
}

// Apply durably appends one record carrying the batch and, on success,
// applies it to the in-memory state. The record is synced before Apply
// returns nil — an acknowledged batch survives any later crash. On error
// nothing is applied; a partial append is repaired (tail truncated to the
// last acknowledged byte) before the next attempt.
func (s *Store) Apply(ops []Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	disk := s.env.Disk()
	if s.wounded {
		if sz, err := disk.Size(s.walPath()); err == nil && sz > s.walGood {
			if err := disk.TruncateTo(s.walPath(), s.walGood); err != nil {
				return fmt.Errorf("durable: repair wal tail: %w", err)
			}
			s.stats.Repairs++
		}
		s.wounded = false
	}
	buf := AppendRecord(nil, Record{Seq: s.seq + 1, Ops: ops})
	if err := disk.Write(s.walPath(), s.owner, buf); err != nil {
		s.wounded = true
		return fmt.Errorf("durable: append: %w", err)
	}
	if err := disk.Sync(s.walPath()); err != nil {
		s.wounded = true
		return fmt.Errorf("durable: sync: %w", err)
	}
	applyOps(s.state, ops)
	s.seq++
	s.walGood += int64(len(buf))
	s.sinceCkpt++
	s.stats.Appends++
	if s.opts.CheckpointEvery > 0 && s.sinceCkpt >= s.opts.CheckpointEvery {
		if err := s.checkpointLocked(); err != nil {
			// The record is already durable; a failed checkpoint only means
			// replay stays longer. Count it and retry at the next cadence.
			s.stats.CheckpointFailures++
		}
	}
	return nil
}

// Put stores value under key.
func (s *Store) Put(key string, value []byte) error {
	return s.Apply([]Op{{Kind: OpPut, Key: key, Value: value}})
}

// Delete removes key (idempotent).
func (s *Store) Delete(key string) error {
	return s.Apply([]Op{{Kind: OpDelete, Key: key}})
}

// Clear removes every key.
func (s *Store) Clear() error {
	return s.Apply([]Op{{Kind: OpClear}})
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.state[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Keys returns every key in unspecified order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.state))
	for k := range s.state {
		keys = append(keys, k)
	}
	return keys
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.state)
}

// Seq returns the sequence number of the last acknowledged record.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// CheckpointSeq returns the sequence number the on-disk checkpoint covers.
func (s *Store) CheckpointSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptSeq
}

// Stats returns a copy of the lifetime counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Checkpoint writes the full state to a temporary file, syncs it, renames
// it over the live checkpoint (the atomic commit point), and truncates the
// WAL. A crash anywhere in between is safe: before the rename the old
// checkpoint + full WAL still reconstruct everything; after it, replay
// skips records the new checkpoint already covers.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	disk := s.env.Disk()
	if disk.Exists(s.tmpPath()) {
		if err := disk.Remove(s.tmpPath()); err != nil {
			return fmt.Errorf("durable: checkpoint sweep: %w", err)
		}
	}
	buf := EncodeCheckpoint(s.state, s.seq)
	if err := disk.Write(s.tmpPath(), s.owner, buf); err != nil {
		return fmt.Errorf("durable: checkpoint write: %w", err)
	}
	if err := disk.Sync(s.tmpPath()); err != nil {
		return fmt.Errorf("durable: checkpoint sync: %w", err)
	}
	if err := disk.Rename(s.tmpPath(), s.ckptPath()); err != nil {
		return fmt.Errorf("durable: checkpoint commit: %w", err)
	}
	s.ckptSeq = s.seq
	s.sinceCkpt = 0
	s.stats.Checkpoints++
	if disk.Exists(s.walPath()) {
		if err := disk.Truncate(s.walPath()); err != nil {
			// The checkpoint committed; stale log records before ckptSeq are
			// skipped at replay, so a failed truncation costs bytes, not
			// correctness.
			return nil
		}
		s.walGood = 0
	}
	return nil
}

// CanRollbackTo reports whether RollbackTo(seq) can succeed: the target
// must lie between the on-disk checkpoint and the last acknowledged record.
func (s *Store) CanRollbackTo(seq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return seq >= s.ckptSeq && seq <= s.seq
}

// RollbackTo rewinds the store to exactly the state after record seq was
// applied, by re-running recovery (checkpoint-load + replay) up to seq and
// truncating the discarded log suffix. This is the restore/rollback rung's
// real mechanism: the past is reconstructed from durable bytes, not from a
// cached in-memory snapshot.
func (s *Store) RollbackTo(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if seq < s.ckptSeq || seq > s.seq {
		return fmt.Errorf("durable: rollback to %d (checkpoint %d, head %d): %w",
			seq, s.ckptSeq, s.seq, ErrRollbackUnreachable)
	}
	disk := s.env.Disk()
	state := make(map[string][]byte)
	if disk.Exists(s.ckptPath()) {
		raw, err := disk.ReadAll(s.ckptPath())
		if err != nil {
			return fmt.Errorf("durable: rollback read checkpoint: %w", err)
		}
		cstate, _, err := ReadCheckpoint(raw)
		if err != nil {
			return fmt.Errorf("durable: rollback checkpoint: %w", err)
		}
		state = cstate
	}
	var off int64
	if disk.Exists(s.walPath()) {
		raw, err := disk.ReadAll(s.walPath())
		if err != nil {
			return fmt.Errorf("durable: rollback read wal: %w", err)
		}
		recs, _, _ := ReadWAL(raw)
		prev := 0
		for _, rec := range recs {
			end := prev + walHeader + recordPayloadLen(rec)
			if rec.Seq <= seq {
				off = int64(end)
				if rec.Seq > s.ckptSeq {
					applyOps(state, rec.Ops)
				}
			}
			prev = end
		}
		if err := disk.TruncateTo(s.walPath(), off); err != nil {
			return fmt.Errorf("durable: rollback truncate: %w", err)
		}
	}
	s.state = state
	s.seq = seq
	s.walGood = off
	s.sinceCkpt = int(seq - s.ckptSeq)
	s.wounded = false
	return nil
}

// recordPayloadLen returns the encoded payload length of rec.
func recordPayloadLen(rec Record) int {
	n := minPayload
	for _, op := range rec.Ops {
		n += 5 + len(op.Key)
		if op.Kind == OpPut {
			n += 4 + len(op.Value)
		}
	}
	return n
}

// Close releases the store's descriptor. Closing is crash-equivalent by
// design (crash-only software: stop == kill): every acknowledged record is
// already synced, so there is nothing to flush.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.releaseFD()
}

// Destroy closes the store and deletes its files — application-specific
// reset, the one recovery that deliberately forgets.
func (s *Store) Destroy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.releaseFD()
	disk := s.env.Disk()
	for _, p := range []string{s.walPath(), s.ckptPath(), s.tmpPath()} {
		if disk.Exists(p) {
			if err := disk.Remove(p); err != nil {
				return fmt.Errorf("durable: destroy: %w", err)
			}
		}
	}
	return nil
}
