// Mining pipeline: scrape a simulated 1999-era bug tracker over HTTP and
// watch the study's narrowing stages work — raw reports in, unique
// classified faults out.
//
// The example serves the GNATS-style Apache tracker on loopback (thousands
// of problem-report pages behind a paged index), crawls it, parses the PR
// format, applies the inclusion bar (severe/critical, production releases,
// high-impact symptoms), folds duplicates, classifies what remains, and
// prints Table 1.
//
//	go run ./examples/mining-pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"faultstudy"
)

// now is the injectable wall-clock read; the example only times its own
// progress, but keeping the seam means faultlint's wallclock rule holds
// everywhere outside the clock-owning packages.
var now = time.Now

func main() {
	// Serve the simulated tracker on loopback.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	site := &http.Server{Handler: faultstudy.NewApacheTrackerSite(faultstudy.SiteConfig{Seed: 1999})}
	defer site.Close()
	go func() { _ = site.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("simulated bugs.apache.org serving at %s/bugdb/\n", base)

	// Mine it the way the study did.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	start := now()
	raw, err := faultstudy.MineApache(ctx, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawled and parsed %d problem reports in %v\n", len(raw), now().Sub(start).Round(time.Millisecond))

	// Narrow and classify.
	res := faultstudy.ClassifyReports(raw, faultstudy.StudyOptions{})
	fmt.Printf("inclusion bar kept %d; duplicate folding left %d unique faults\n\n",
		res.Qualifying, res.Unique)

	fmt.Print(res.Table())

	fmt.Println("\nThe environment-dependent minority, in detail:")
	for _, c := range res.Faults {
		if c.Result.Class == faultstudy.ClassEnvIndependent {
			continue
		}
		fmt.Printf("  [%s] %-16s %s\n", c.Result.Class.Short(), c.Result.Trigger, c.Report.Synopsis)
	}
}
