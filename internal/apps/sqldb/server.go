package sqldb

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"faultstudy/internal/durable"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/taxonomy"
)

// Owner is the environment owner tag for all database resources.
const Owner = "mysqld"

// serverPort is the listening port.
const serverPort = 3306

// Server is the simulated database server.
type Server struct {
	env    *simenv.Env
	faults *faultinject.Set

	mu       sync.Mutex
	running  bool
	degraded bool
	// portBound tracks listening-port ownership so the componentized
	// listener part (components.go) can release and rebind it.
	portBound   bool
	tables      map[string]*table
	lockedTable string
	connections map[int]string // conn id -> client address
	nextConn    int
	queries     int64
	// pendingGrants counts GRANTs awaiting FLUSH PRIVILEGES — the shared
	// structure the login/admin race corrupts.
	pendingGrants int
	// store is the engine's durable backend: every committed statement is
	// WAL-logged through it before acknowledgement, and the restore rung
	// replays its recovered bytes instead of trusting an in-memory copy.
	store *durable.Store
	// walReplays counts restores served by checkpoint-load + log-replay;
	// logicalFallbacks counts restores that had to rebuild from the JSON
	// snapshot because the log no longer reached the snapshot's sequence.
	walReplays       int64
	logicalFallbacks int64
}

// New builds a server over the environment with the given active bug set.
func New(env *simenv.Env, faults *faultinject.Set) *Server {
	return &Server{
		env:         env,
		faults:      faults,
		tables:      make(map[string]*table),
		connections: make(map[int]string),
		nextConn:    1,
	}
}

// Name returns the environment owner tag.
func (s *Server) Name() string { return Owner }

// Env returns the server's environment.
func (s *Server) Env() *simenv.Env { return s.env }

// ErrReadOnly rejects writes while the server is degraded.
var ErrReadOnly = errors.New("sqldb: server is read-only (degraded mode)")

// SetDegraded toggles degraded mode: the server answers SELECTs but rejects
// every mutating statement with ErrReadOnly, so a database whose environment
// can no longer absorb writes still serves reads.
func (s *Server) SetDegraded(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.degraded = on
}

// Degraded reports whether degraded mode is on.
func (s *Server) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Running reports whether the server is up.
func (s *Server) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// crash marks the server dead; callers return the FailureError describing
// why. Must be called with s.mu held.
func (s *Server) crash() { s.running = false }

// Start binds the listening port, reopens every table's datafile
// descriptor, and reopens the durable store — a real recovery pass
// (checkpoint-load + log-replay + tail repair) on every boot, because the
// recovery code IS the startup path.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return errors.New("sqldb: already running")
	}
	if err := s.env.Net().BindPort(serverPort, Owner); err != nil {
		return fmt.Errorf("sqldb: start: %w", err)
	}
	s.portBound = true
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.tables[name]
		if !t.hasFD {
			if err := s.openTableFD(t); err != nil {
				_ = s.env.Net().ReleasePort(serverPort)
				s.closeTableFDsLocked()
				return err
			}
		}
	}
	if _, err := s.reopenStoreLocked(); err != nil {
		_ = s.env.Net().ReleasePort(serverPort)
		s.portBound = false
		s.closeTableFDsLocked()
		return err
	}
	s.running = true
	return nil
}

// reopenStoreLocked closes any previous store incarnation and runs durable
// recovery over whatever it left on disk. The store charges no descriptor of
// its own: table datafiles model the engine's descriptor footprint.
func (s *Server) reopenStoreLocked() (*durable.RecoveryInfo, error) {
	if s.store != nil {
		s.store.Close()
		s.store = nil
	}
	st, info, err := durable.Open(s.env, Owner, storeDir, durable.Options{NoFD: true})
	if err != nil {
		return nil, fmt.Errorf("sqldb: open durable store: %w", err)
	}
	s.store = st
	return info, nil
}

func (s *Server) closeTableFDsLocked() {
	for _, t := range s.tables {
		if t.hasFD {
			_ = s.env.FDs().Close(t.fd)
			t.hasFD = false
		}
	}
}

// Stop shuts the server down and releases its environment resources.
// Closing the durable store is crash-equivalent: every acknowledged record
// is already synced, so stop == kill.
func (s *Server) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return
	}
	s.running = false
	_ = s.env.Net().ReleasePort(serverPort)
	s.portBound = false
	s.closeTableFDsLocked()
	if s.store != nil {
		s.store.Close()
	}
	s.connections = make(map[int]string)
	s.lockedTable = ""
}

// Connect opens a client session from the given address. With the
// reverse-DNS bug active, a client whose address has no PTR record kills the
// server; with the login/admin race active, a login that interleaves with a
// privilege reload the wrong way does the same.
func (s *Server) Connect(clientAddr string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return 0, errors.New("sqldb: not running")
	}
	if s.faults.Enabled(MechNoReverseDNS) {
		if _, err := s.env.DNS().Reverse(clientAddr); err != nil {
			if errors.Is(err, simenv.ErrNoReverseDNS) {
				s.crash()
				return 0, faultinject.FailCause(MechNoReverseDNS, taxonomy.SymptomCrash,
					"host-cache insert with a NULL hostname", err)
			}
			return 0, fmt.Errorf("sqldb: connect: %w", err)
		}
	}
	if s.faults.Enabled(MechLoginAdminRace) && s.pendingGrants > 0 {
		if s.env.Sched().RaceFires(MechLoginAdminRace, 3) {
			s.crash()
			return 0, faultinject.Fail(MechLoginAdminRace, taxonomy.SymptomCrash,
				"login read the privilege table mid-reload")
		}
	}
	id := s.nextConn
	s.nextConn++
	s.connections[id] = clientAddr
	return id, nil
}

// Disconnect closes a client session.
func (s *Server) Disconnect(conn int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.connections, conn)
}

// Connected reports whether a connection id is still open — the probe the
// componentized layer uses to re-attach externalized sessions after a
// listener reboot dropped their connections.
func (s *Server) Connected(conn int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.connections[conn]
	return ok
}

// Connections returns the number of open sessions.
func (s *Server) Connections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.connections)
}

// Queries returns the number of statements executed.
func (s *Server) Queries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Exec parses and executes one SQL statement. Failures from seeded bugs are
// *faultinject.FailureError values; other errors are ordinary statement
// errors (bad SQL, unknown tables) that leave the server healthy.
func (s *Server) Exec(sql string) (*ResultSet, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return nil, errors.New("sqldb: not running")
	}
	if s.degraded && st.Kind != StmtSelect {
		return nil, ErrReadOnly
	}
	s.queries++
	// The signal-mask race: under connection churn a signal can arrive in
	// the window where the worker unmasked it; the wrong interleaving kills
	// the server regardless of the statement being executed.
	if s.faults.Enabled(MechSignalMaskRace) {
		if s.env.Sched().RaceFires(MechSignalMaskRace, 3) {
			s.crash()
			return nil, faultinject.Fail(MechSignalMaskRace, taxonomy.SymptomCrash,
				"signal arrived inside the unmask window")
		}
	}
	// Template-class environment-independent bugs live on the defect paths
	// exercised by queries against their trigger tables.
	if key := genericBugKey(st.Table); key != "" && s.faults.Enabled(key) && st.Kind != StmtCreateTable {
		switch key {
		case MechExecLoop:
			s.crash()
			return nil, faultinject.Fail(key, taxonomy.SymptomHang,
				"executor re-enqueues the same work item forever")
		case MechStaleBuffer:
			return nil, faultinject.Fail(key, taxonomy.SymptomError,
				"rows from the previous query leaked into the result")
		default:
			s.crash()
			return nil, faultinject.Fail(key, taxonomy.SymptomCrash,
				"deterministic crash on the defect path")
		}
	}
	return s.execStmt(st)
}

// flushPrivileges applies pending grants; part of the login/admin race
// staging.
func (s *Server) flushPrivileges() error {
	s.pendingGrants = 0
	return nil
}

// dbState is the wire form of the server's logical state.
type dbState struct {
	Tables        []tableState `json:"tables"`
	LockedTable   string       `json:"lockedTable"`
	Queries       int64        `json:"queries"`
	PendingGrants int          `json:"pendingGrants"`
	// DurableSeq is the durable store's last acknowledged sequence number at
	// snapshot time — the rollback target a restore rewinds the log to.
	DurableSeq uint64 `json:"durableSeq"`
}

type tableState struct {
	Name    string    `json:"name"`
	Cols    []ColDef  `json:"cols"`
	Rows    [][]Value `json:"rows"` // nil rows elided via Deleted
	Deleted []int     `json:"deleted"`
	Indexes []string  `json:"indexes"`
}

// Snapshot captures the server's complete logical state: schemas, rows,
// index definitions, locks, and the pending-grant count. Connections are
// sessions, not state — a failover drops them.
func (s *Server) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := dbState{
		LockedTable:   s.lockedTable,
		Queries:       s.queries,
		PendingGrants: s.pendingGrants,
	}
	if s.store != nil {
		st.DurableSeq = s.store.Seq()
	}
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.tables[name]
		ts := tableState{Name: t.name, Cols: append([]ColDef(nil), t.cols...)}
		for rowID, row := range t.rows {
			if row == nil {
				ts.Deleted = append(ts.Deleted, rowID)
				ts.Rows = append(ts.Rows, []Value{})
				continue
			}
			ts.Rows = append(ts.Rows, append([]Value(nil), row...))
		}
		for col := range t.indexes {
			ts.Indexes = append(ts.Indexes, col)
		}
		sort.Strings(ts.Indexes)
		st.Tables = append(st.Tables, ts)
	}
	return json.Marshal(st)
}

// Restore replaces the server's logical state from a snapshot and restarts
// it, re-acquiring the port, every table descriptor, and the disk footprint
// the state mandates. The data plane is rebuilt by recovering the durable
// store from disk and rewinding its log to the snapshot's sequence number —
// checkpoint-load plus replay of real bytes — with the snapshot's JSON as
// the fallback when the log no longer reaches that point (and as the only
// source for session scalars, which are state, not data). The server must be
// stopped.
func (s *Server) Restore(snapshot []byte) error {
	var st dbState
	if err := json.Unmarshal(snapshot, &st); err != nil {
		return fmt.Errorf("sqldb: restore: %w", err)
	}
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return errors.New("sqldb: restore while running")
	}
	// Release descriptors held by the dead instance before rebuilding.
	s.closeTableFDsLocked()
	replayed := false
	if _, err := s.reopenStoreLocked(); err == nil &&
		st.DurableSeq > 0 && s.store.CanRollbackTo(st.DurableSeq) {
		if err := s.store.RollbackTo(st.DurableSeq); err == nil {
			if tables, terr := tablesFromStore(s.store); terr == nil {
				s.tables = tables
				s.walReplays++
				replayed = true
			}
		}
	}
	if !replayed {
		s.logicalFallbacks++
		s.tables = make(map[string]*table, len(st.Tables))
		for _, ts := range st.Tables {
			t := &table{name: ts.Name, cols: append([]ColDef(nil), ts.Cols...), indexes: make(map[string]*btree)}
			deleted := make(map[int]bool, len(ts.Deleted))
			for _, d := range ts.Deleted {
				deleted[d] = true
			}
			for rowID, row := range ts.Rows {
				if deleted[rowID] {
					t.rows = append(t.rows, nil)
					continue
				}
				t.rows = append(t.rows, append(Row(nil), row...))
				t.live++
			}
			for _, col := range ts.Indexes {
				ci, err := t.colIndex(col)
				if err != nil {
					s.mu.Unlock()
					return err
				}
				idx := newBTree()
				for rowID, row := range t.rows {
					if row != nil {
						idx.Insert(row[ci], rowID)
					}
				}
				t.indexes[col] = idx
			}
			s.tables[t.name] = t
		}
		// Resync the store so the next restore can replay again. A failed
		// resync leaves the store wounded; the next append repairs it.
		if s.store != nil {
			_ = s.store.Apply(s.stateOps())
		}
	}
	// Restore each datafile's footprint if the failover lost it.
	for _, t := range s.tables {
		want := int64(len(t.rows)) * rowBytes
		have := int64(0)
		if s.env.Disk().Exists(t.dataFile()) {
			sz, err := s.env.Disk().Size(t.dataFile())
			if err == nil {
				have = sz
			}
		}
		if want > have {
			if err := s.env.Disk().Append(t.dataFile(), Owner, want-have); err != nil {
				s.mu.Unlock()
				return fmt.Errorf("sqldb: restore datafile %q: %w", t.name, err)
			}
		}
	}
	s.lockedTable = st.LockedTable
	s.queries = st.Queries
	s.pendingGrants = st.PendingGrants
	s.connections = make(map[int]string)
	s.mu.Unlock()
	return s.Start()
}

// Reset reinitializes the server to an empty database — application-specific
// recovery that discards all state. The server must be stopped.
func (s *Server) Reset() error {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return errors.New("sqldb: reset while running")
	}
	s.closeTableFDsLocked()
	for _, t := range s.tables {
		if s.env.Disk().Exists(t.dataFile()) {
			_ = s.env.Disk().Remove(t.dataFile())
		}
	}
	if s.store != nil {
		_ = s.store.Destroy()
		s.store = nil
	}
	s.tables = make(map[string]*table)
	s.lockedTable = ""
	s.queries = 0
	s.pendingGrants = 0
	s.connections = make(map[int]string)
	s.mu.Unlock()
	return s.Start()
}

// DurableStore exposes the engine's durable backend for probes that verify
// acknowledged statements against recovered bytes.
func (s *Server) DurableStore() *durable.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

// WALReplays counts restores served by checkpoint-load + log-replay.
func (s *Server) WALReplays() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walReplays
}

// LogicalFallbacks counts restores that rebuilt from the JSON snapshot
// because the log no longer reached the snapshot's sequence number.
func (s *Server) LogicalFallbacks() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logicalFallbacks
}
