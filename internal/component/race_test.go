package component

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// lockedClock is a fakeClock safe for concurrent Advance — the race tests
// reboot from several goroutines at once.
type lockedClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *lockedClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *lockedClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
}

// TestConcurrentRebootWhileSiblingsServe drives one component through
// repeated microreboots while goroutines keep "serving" through its siblings
// and the externalized store. Run under -race, this is the crash-only
// contract's concurrency proof: a mid-reboot component never blocks or
// corrupts siblings or sessions.
func TestConcurrentRebootWhileSiblingsServe(t *testing.T) {
	clock := &lockedClock{}
	tree := NewTree(clock)
	store := NewStore()
	comps := []*fakeComp{
		{name: "core"},
		{name: "flaky"},
		{name: "sibling"},
	}
	tree.MustAdd(Spec{Component: comps[0], StartCost: time.Millisecond})
	tree.MustAdd(Spec{Component: comps[1], Deps: []string{"core"}, StartCost: time.Millisecond})
	tree.MustAdd(Spec{Component: comps[2], Deps: []string{"core"}, StartCost: time.Millisecond})
	if err := tree.StartAll(); err != nil {
		t.Fatalf("StartAll: %v", err)
	}

	const (
		rebooters = 2
		servers   = 4
		rounds    = 200
	)
	var served, refused atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < rebooters; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := tree.Reboot("flaky"); err != nil {
					t.Errorf("Reboot: %v", err)
					return
				}
			}
		}()
	}
	for s := 0; s < servers; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := []string{"alice", "bob", "carol", "dave"}[id]
			for i := 0; i < rounds; i++ {
				// A request routed through the flaky component is refused
				// while it is mid-reboot; siblings must always serve.
				if !tree.Running("flaky") {
					refused.Add(1)
				}
				if !tree.Running("sibling") || !tree.Running("core") {
					t.Errorf("sibling or core went down during a leaf reboot")
					return
				}
				store.Incr("sessions", key)
				served.Add(1)
			}
		}(s)
	}
	wg.Wait()

	if !tree.AllRunning() {
		t.Fatal("tree not fully up after the storm")
	}
	if got := tree.Reboots("flaky"); got != rebooters*rounds {
		t.Fatalf("flaky reboots = %d, want %d", got, rebooters*rounds)
	}
	if served.Load() != servers*rounds {
		t.Fatalf("served = %d, want %d", served.Load(), servers*rounds)
	}
	// Sessions survived every reboot: the store is outside the components.
	total := int64(0)
	for _, k := range store.Keys("sessions") {
		v, _ := store.Get("sessions", k)
		var n int64
		for _, ch := range v {
			n = n*10 + int64(ch-'0')
		}
		total += n
	}
	if total != servers*rounds {
		t.Fatalf("session increments = %d, want %d", total, servers*rounds)
	}
}

// TestConcurrentStoreAccess hammers the store from many goroutines; run
// under -race it proves the externalized state is safe to share between a
// rebooting component and its serving siblings.
func TestConcurrentStoreAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := string(rune('a' + id))
			for i := 0; i < 500; i++ {
				s.Incr("counters", key)
				s.Put("scratch", key, "v")
				s.Get("scratch", key)
				if i%100 == 0 {
					if _, err := s.Snapshot(); err != nil {
						t.Errorf("Snapshot: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, k := range s.Keys("counters") {
		if v, _ := s.Get("counters", k); v != "500" {
			t.Fatalf("counter %s = %s, want 500", k, v)
		}
	}
}
