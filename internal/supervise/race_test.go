package supervise

import (
	"sync"
	"testing"

	"faultstudy/internal/apps/httpd"
)

// TestConcurrentSupervisorsShareNothing is the parallel engine's shard-safety
// contract for this package: one supervisor per goroutine, each over its own
// application and environment, running simultaneously. Under -race this
// proves a shard's supervisor touches no package-level mutable state — the
// property that lets internal/experiment run one supervised shard per worker
// without locks. Each seed's report must also match what a serial run of the
// same seed produces.
func TestConcurrentSupervisorsShareNothing(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}

	run := func(seed int64) string {
		srv, sc := httpdUnder(t, httpd.MechClientAbort, seed)
		sc.Stage()
		sup := New(srv, Config{Seed: seed, GrowResources: true})
		rep, err := sup.Run(wrapOps(sc.Ops, OpRead))
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return ""
		}
		return rep.String()
	}

	// Serial pass first: the ground truth per seed.
	want := make([]string, len(seeds))
	for i, seed := range seeds {
		want[i] = run(seed)
	}

	// Concurrent pass: all seeds at once, twice each to double the overlap.
	got := make([]string, len(seeds))
	extra := make([]string, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			got[i] = run(seed)
		}(i, seed)
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			extra[i] = run(seed)
		}(i, seed)
	}
	wg.Wait()

	for i, seed := range seeds {
		if got[i] != want[i] || extra[i] != want[i] {
			t.Errorf("seed %d: concurrent report differs from serial:\n--- serial\n%s--- concurrent\n%s",
				seed, want[i], got[i])
		}
	}
}

// TestBackoffScheduleConcurrentReads verifies BackoffSchedule is safe to call
// from many goroutines with the same config (it derives a private RNG per
// call) and stays reproducible while racing.
func TestBackoffScheduleConcurrentReads(t *testing.T) {
	cfg := Config{Seed: 9, BackoffJitter: 0.5}
	want := BackoffSchedule(cfg, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := BackoffSchedule(cfg, 8)
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("concurrent schedule diverged at %d: %s vs %s", j, got[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
