// Package gnats parses GNU GNATS problem reports — the format of the Apache
// bug database (bugs.apache.org) the study mined. A GNATS PR is a header
// block followed by named multi-line sections introduced by ">Field:" lines
// (>Synopsis:, >Severity:, >Description:, >How-To-Repeat:, ...), with an
// audit trail of developer comments.
package gnats

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"faultstudy/internal/report"
	"faultstudy/internal/taxonomy"
)

// PR is a parsed GNATS problem report.
type PR struct {
	// Number is the PR number.
	Number int
	// Category is the GNATS category (e.g. "general", "mod_cgi").
	Category string
	// Synopsis is the one-line summary.
	Synopsis string
	// Severity is the raw >Severity: field.
	Severity string
	// Class is the GNATS class field (sw-bug, doc-bug, ...).
	Class string
	// Release is the raw >Release: field.
	Release string
	// Environment is the >Environment: section.
	Environment string
	// Description is the >Description: section.
	Description string
	// HowToRepeat is the >How-To-Repeat: section.
	HowToRepeat string
	// Fix is the >Fix: section.
	Fix string
	// AuditTrail holds the developer comments from the audit trail.
	AuditTrail []string
	// Arrival is the arrival date.
	Arrival time.Time
	// State is the GNATS state (open, analyzed, closed, ...).
	State string
}

// sectionOrder preserves unknown-section tolerance: any ">Name:" line starts
// a new section whether or not we use it.
var knownSections = map[string]bool{
	"Number": true, "Category": true, "Synopsis": true, "Confidential": true,
	"Severity": true, "Priority": true, "Responsible": true, "State": true,
	"Class": true, "Submitter-Id": true, "Arrival-Date": true,
	"Originator": true, "Organization": true, "Release": true,
	"Environment": true, "Description": true, "How-To-Repeat": true,
	"Fix": true, "Audit-Trail": true, "Unformatted": true,
}

var arrivalLayouts = []string{
	"Mon Jan 2 15:04:05 MST 2006",
	"Mon Jan  2 15:04:05 MST 2006",
	time.RFC1123,
	"2006-01-02",
}

// Parse reads one GNATS problem report.
func Parse(r io.Reader) (*PR, error) {
	sections := make(map[string][]string)
	var current string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ">") {
			if idx := strings.Index(line, ":"); idx > 1 {
				name := line[1:idx]
				if knownSections[name] || !strings.ContainsAny(name, " \t") {
					current = name
					rest := strings.TrimSpace(line[idx+1:])
					if rest != "" {
						sections[current] = append(sections[current], rest)
					}
					continue
				}
			}
		}
		if current != "" {
			sections[current] = append(sections[current], line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gnats: scan: %w", err)
	}
	if len(sections) == 0 {
		return nil, fmt.Errorf("gnats: no sections found")
	}

	get := func(name string) string {
		return strings.TrimSpace(strings.Join(sections[name], "\n"))
	}

	pr := &PR{
		Category:    get("Category"),
		Synopsis:    get("Synopsis"),
		Severity:    get("Severity"),
		Class:       get("Class"),
		Release:     get("Release"),
		Environment: get("Environment"),
		Description: get("Description"),
		HowToRepeat: get("How-To-Repeat"),
		Fix:         get("Fix"),
		State:       get("State"),
	}
	numText := get("Number")
	if numText == "" {
		return nil, fmt.Errorf("gnats: missing >Number: field")
	}
	n, err := strconv.Atoi(numText)
	if err != nil {
		return nil, fmt.Errorf("gnats: bad PR number %q: %w", numText, err)
	}
	pr.Number = n
	if ad := get("Arrival-Date"); ad != "" {
		for _, layout := range arrivalLayouts {
			if t, perr := time.Parse(layout, ad); perr == nil {
				pr.Arrival = t.UTC()
				break
			}
		}
	}
	pr.AuditTrail = parseAuditTrail(sections["Audit-Trail"])
	return pr, nil
}

// parseAuditTrail splits the audit trail into individual comments. Comments
// are delimited by "State-Changed-*" or "Comment-Added-*" stanza markers;
// free text between markers attaches to the preceding comment.
func parseAuditTrail(lines []string) []string {
	var (
		comments []string
		cur      []string
	)
	flush := func() {
		text := strings.TrimSpace(strings.Join(cur, "\n"))
		if text != "" {
			comments = append(comments, text)
		}
		cur = nil
	}
	for _, l := range lines {
		trimmed := strings.TrimSpace(l)
		if strings.HasPrefix(trimmed, "State-Changed-") || strings.HasPrefix(trimmed, "Comment-Added-") {
			if strings.HasPrefix(trimmed, "State-Changed-From-To:") ||
				strings.HasPrefix(trimmed, "Comment-Added-By:") {
				flush()
			}
			continue // drop stanza metadata lines
		}
		cur = append(cur, l)
	}
	flush()
	return comments
}

// productionRelease reports whether a raw GNATS release string names a
// production Apache version (no alpha/beta/dev suffix).
func productionRelease(rel string) bool {
	rel = strings.ToLower(rel)
	if rel == "" {
		return false
	}
	for _, marker := range []string{"alpha", "beta", "-dev", "snapshot", "cvs"} {
		if strings.Contains(rel, marker) {
			return false
		}
	}
	return true
}

// ToReport converts a PR to the normalized report schema.
func (pr *PR) ToReport() (*report.Report, error) {
	sev, err := taxonomy.ParseSeverity(pr.Severity)
	if err != nil {
		sev = taxonomy.SeverityUnknown
	}
	r := &report.Report{
		ID:          fmt.Sprintf("PR-%d", pr.Number),
		App:         taxonomy.AppApache,
		Component:   pr.Category,
		Release:     strings.TrimSpace(pr.Release),
		Synopsis:    pr.Synopsis,
		Description: pr.Description,
		HowToRepeat: pr.HowToRepeat,
		Environment: pr.Environment,
		Comments:    pr.AuditTrail,
		FixDescription: func() string {
			if pr.Fix != "" && !strings.EqualFold(pr.Fix, "unknown") {
				return pr.Fix
			}
			return ""
		}(),
		Severity:   sev,
		Symptom:    InferSymptom(pr.Synopsis + "\n" + pr.Description + "\n" + pr.HowToRepeat),
		Filed:      pr.Arrival,
		Production: productionRelease(pr.Release),
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("gnats PR %d: %w", pr.Number, err)
	}
	return r, nil
}

// InferSymptom derives the failure mode from report text, preferring the most
// severe mention. Shared by the debbugs converter.
func InferSymptom(text string) taxonomy.Symptom {
	t := strings.ToLower(text)
	switch {
	case containsAny(t, "segfault", "segmentation", "core dump", "dumps core",
		"sigsegv", "crash", "dies", "died", "aborts", "assertion", "corrupt",
		"kills", "killed"):
		return taxonomy.SymptomCrash
	case containsAny(t, "security", "exploit", "vulnerab"):
		return taxonomy.SymptomSecurity
	case containsAny(t, "hang", "freez", "stops responding", "deadlock",
		"spins", "stuck", "stall"):
		return taxonomy.SymptomHang
	case containsAny(t, "error", "fail", "wrong", "incorrect",
		"refuses", "garbage", "runs out", "cannot store", "exhaust"):
		return taxonomy.SymptomError
	default:
		return taxonomy.SymptomUnknown
	}
}

func containsAny(haystack string, needles ...string) bool {
	for _, n := range needles {
		if strings.Contains(haystack, n) {
			return true
		}
	}
	return false
}
