package corpusgen

import (
	"bytes"
	"testing"
)

// TestCorpusBytesWorkerIndependent is the determinism property sweep: for 32
// root seeds, the JSONL corpus stream must be byte-identical at workers 1, 2,
// and 8. Run under -race in CI, this is also the data race check on the
// shared corpus structures.
func TestCorpusBytesWorkerIndependent(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		c := testCorpus(t, "faults=120;episodes=30", seed)
		var ref bytes.Buffer
		if err := c.WriteJSONL(&ref, 1); err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		if ref.Len() == 0 {
			t.Fatalf("seed %d: empty corpus stream", seed)
		}
		for _, workers := range []int{2, 8} {
			var got bytes.Buffer
			if err := c.WriteJSONL(&got, workers); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !bytes.Equal(ref.Bytes(), got.Bytes()) {
				t.Fatalf("seed %d: corpus bytes differ at %d workers", seed, workers)
			}
		}
	}
}

// TestSeedsIndependent makes sure different seeds actually produce different
// populations — the sweep above would pass trivially on a constant sampler.
func TestSeedsIndependent(t *testing.T) {
	a := testCorpus(t, "faults=200", 1)
	b := testCorpus(t, "faults=200", 2)
	same := 0
	for i := 0; i < 200; i++ {
		if a.FaultAt(i).Mechanism == b.FaultAt(i).Mechanism {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seeds 1 and 2 generated identical populations")
	}
}
