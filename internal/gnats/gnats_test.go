package gnats

import (
	"strings"
	"testing"
	"time"

	"faultstudy/internal/taxonomy"
)

const samplePR = `>Number:         3893
>Category:       general
>Synopsis:       httpd dies with a segfault when the submitted URL is very long
>Confidential:   no
>Severity:       critical
>Priority:       medium
>Responsible:    apache
>State:          closed
>Class:          sw-bug
>Submitter-Id:   apache
>Arrival-Date:   Mon Feb 15 10:20:01 PST 1999
>Originator:     user@example.com
>Organization:
>Release:        1.3.4
>Environment:
Linux 2.2.1 i686, gcc 2.8.1
>Description:
The server child dies with a segmentation fault whenever a browser
submits a URL longer than 8000 characters. The hash calculation in
the URI handling overflows.
>How-To-Repeat:
Request a URL of 9000 'a' characters against any virtual host.
Happens every time, on every machine we tried.
>Fix:
Bounds-check the hash calculation before indexing.
>Audit-Trail:
State-Changed-From-To: open-analyzed
State-Changed-By: coar
State-Changed-When: Tue Feb 16 08:00:00 PST 1999
State-Changed-Why:
Reproduced on Linux and Solaris. Deterministic.
Comment-Added-By: fielding
Comment-Added-When: Wed Feb 17 09:00:00 PST 1999
Comment-Added:
Fixed in rev 1.52 of util_uri.c; will ship in 1.3.6.
>Unformatted:
`

func TestParsePR(t *testing.T) {
	pr, err := Parse(strings.NewReader(samplePR))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Number != 3893 {
		t.Errorf("Number = %d", pr.Number)
	}
	if pr.Category != "general" {
		t.Errorf("Category = %q", pr.Category)
	}
	if pr.Severity != "critical" {
		t.Errorf("Severity = %q", pr.Severity)
	}
	if pr.Release != "1.3.4" {
		t.Errorf("Release = %q", pr.Release)
	}
	if !strings.Contains(pr.Description, "hash calculation") {
		t.Errorf("Description = %q", pr.Description)
	}
	if !strings.Contains(pr.HowToRepeat, "9000 'a'") {
		t.Errorf("HowToRepeat = %q", pr.HowToRepeat)
	}
	if !strings.Contains(pr.Fix, "Bounds-check") {
		t.Errorf("Fix = %q", pr.Fix)
	}
	// Named-zone abbreviations parse with a zero offset absent zone data, so
	// only the calendar fields are asserted.
	if y, m, d := pr.Arrival.Date(); y != 1999 || m != time.February || d != 15 {
		t.Errorf("Arrival = %v, want 1999-02-15", pr.Arrival)
	}
	if len(pr.AuditTrail) != 2 {
		t.Fatalf("AuditTrail has %d comments, want 2: %q", len(pr.AuditTrail), pr.AuditTrail)
	}
	if !strings.Contains(pr.AuditTrail[0], "Reproduced on Linux") {
		t.Errorf("comment 0 = %q", pr.AuditTrail[0])
	}
	if !strings.Contains(pr.AuditTrail[1], "rev 1.52") {
		t.Errorf("comment 1 = %q", pr.AuditTrail[1])
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Parse(strings.NewReader(">Synopsis: no number\n")); err == nil {
		t.Error("missing >Number should fail")
	}
	if _, err := Parse(strings.NewReader(">Number: abc\n")); err == nil {
		t.Error("non-numeric number should fail")
	}
}

func TestToReport(t *testing.T) {
	pr, err := Parse(strings.NewReader(samplePR))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pr.ToReport()
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "PR-3893" {
		t.Errorf("ID = %q", r.ID)
	}
	if r.App != taxonomy.AppApache {
		t.Errorf("App = %v", r.App)
	}
	if r.Severity != taxonomy.SeverityCritical {
		t.Errorf("Severity = %v", r.Severity)
	}
	if r.Symptom != taxonomy.SymptomCrash {
		t.Errorf("Symptom = %v", r.Symptom)
	}
	if !r.Production {
		t.Error("release 1.3.4 is a production version")
	}
	if !r.Qualifies() {
		t.Error("report should meet the study bar")
	}
	if len(r.Comments) != 2 {
		t.Errorf("Comments = %d", len(r.Comments))
	}
}

func TestBetaReleaseNotProduction(t *testing.T) {
	beta := strings.Replace(samplePR, ">Release:        1.3.4", ">Release: 1.3b3 beta", 1)
	pr, err := Parse(strings.NewReader(beta))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pr.ToReport()
	if err != nil {
		t.Fatal(err)
	}
	if r.Production {
		t.Error("beta release must not count as production")
	}
	if r.Qualifies() {
		t.Error("beta-release report must not qualify")
	}
}

func TestInferSymptom(t *testing.T) {
	tests := []struct {
		text string
		want taxonomy.Symptom
	}{
		{"server dumps core on restart", taxonomy.SymptomCrash},
		{"apache freezes under load", taxonomy.SymptomHang},
		{"remote exploit via cgi", taxonomy.SymptomSecurity},
		{"returns wrong content-length", taxonomy.SymptomError},
		{"documentation typo", taxonomy.SymptomUnknown},
		// Crash outranks error when both appear.
		{"error log fills then the server crashes", taxonomy.SymptomCrash},
	}
	for _, tt := range tests {
		if got := InferSymptom(tt.text); got != tt.want {
			t.Errorf("InferSymptom(%q) = %v, want %v", tt.text, got, tt.want)
		}
	}
}

func TestUnknownSeverityTolerated(t *testing.T) {
	odd := strings.Replace(samplePR, ">Severity:       critical", ">Severity: weird", 1)
	pr, err := Parse(strings.NewReader(odd))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pr.ToReport()
	if err != nil {
		t.Fatal(err)
	}
	if r.Severity != taxonomy.SeverityUnknown {
		t.Errorf("Severity = %v, want unknown", r.Severity)
	}
}

func TestFixUnknownDropped(t *testing.T) {
	odd := strings.Replace(samplePR, "Bounds-check the hash calculation before indexing.", "unknown", 1)
	pr, err := Parse(strings.NewReader(odd))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pr.ToReport()
	if err != nil {
		t.Fatal(err)
	}
	if r.FixDescription != "" {
		t.Errorf("FixDescription = %q, want empty for 'unknown'", r.FixDescription)
	}
}

func BenchmarkParsePR(b *testing.B) {
	b.SetBytes(int64(len(samplePR)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(strings.NewReader(samplePR)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferSymptom(b *testing.B) {
	const text = "the server freezes under load and then dumps core while rotating logs"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = InferSymptom(text)
	}
}
