package httpd

import (
	"faultstudy/internal/faultinject"
	"faultstudy/internal/taxonomy"
)

// Mechanism keys for the seeded Apache bugs. The env-dependent keys map
// one-to-one onto the paper's §5.1 trigger list; the generic keys host the
// template-class environment-independent faults.
const (
	// Named environment-independent bugs.
	MechLongURLOverflow = "httpd/long-url-overflow"
	MechSighupCrash     = "httpd/sighup-crash"
	MechValistReuse     = "httpd/valist-reuse"
	MechPallocZero      = "httpd/palloc-zero"
	MechMemoryLeakHup   = "httpd/memory-leak-hup"

	// Template-class environment-independent bugs.
	MechNullDeref    = "httpd/null-deref"
	MechBounds       = "httpd/bounds"
	MechBadInit      = "httpd/bad-init"
	MechParseLoop    = "httpd/parse-loop"
	MechTypeMismatch = "httpd/type-mismatch"
	MechMissingCheck = "httpd/missing-check"
	MechDoubleFree   = "httpd/double-free"
	MechWrongStatus  = "httpd/wrong-status"

	// Environment-dependent-nontransient bugs.
	MechLoadResourceLeak = "httpd/load-resource-leak"
	MechFDExhaustion     = "httpd/fd-exhaustion"
	MechDiskCacheFull    = "httpd/disk-cache-full"
	MechLogFileLimit     = "httpd/log-file-limit"
	MechFSFull           = "httpd/fs-full"
	MechNetResource      = "httpd/net-resource"
	MechPCMCIARemoval    = "httpd/pcmcia-removal"

	// Environment-dependent-transient bugs.
	MechDNSError       = "httpd/dns-error"
	MechProcTableFull  = "httpd/proc-table-full"
	MechClientAbort    = "httpd/client-abort"
	MechPortSquat      = "httpd/port-squat"
	MechDNSSlow        = "httpd/dns-slow"
	MechSlowNetwork    = "httpd/slow-network"
	MechEntropyStarved = "httpd/entropy-starved"
)

// RegisterMechanisms adds the server's seeded-bug catalogue to a registry.
func RegisterMechanisms(r *faultinject.Registry) {
	A := taxonomy.AppApache
	for _, m := range []faultinject.Mechanism{
		{Key: MechLongURLOverflow, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "hash overflow crashes the child on URLs over 8000 bytes"},
		{Key: MechSighupCrash, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "SIGHUP kills the server instead of restarting it"},
		{Key: MechValistReuse, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "va_list reuse crashes the 404 error path"},
		{Key: MechPallocZero, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "palloc(0) crashes empty-directory listings"},
		{Key: MechMemoryLeakHup, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "per-request leak grows shared memory; HUP then kills the server"},
		{Key: MechNullDeref, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "null dereference on a specific request"},
		{Key: MechBounds, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "buffer overrun on a specific request"},
		{Key: MechBadInit, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "uninitialized status variable yields a garbage response"},
		{Key: MechParseLoop, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "parser loops forever on a malformed token"},
		{Key: MechTypeMismatch, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "signed/unsigned conversion crashes allocation"},
		{Key: MechMissingCheck, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "missing boundary check crashes table indexing"},
		{Key: MechDoubleFree, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "double free of the request pool on an error path"},
		{Key: MechWrongStatus, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "switch fall-through returns the wrong status"},
		{Key: MechLoadResourceLeak, App: A, Trigger: taxonomy.TriggerResourceLeak, Description: "unknown resource leak under sustained load"},
		{Key: MechFDExhaustion, App: A, Trigger: taxonomy.TriggerFDExhaustion, Description: "per-request descriptors never closed until the table is full"},
		{Key: MechDiskCacheFull, App: A, Trigger: taxonomy.TriggerDiskFull, Description: "full proxy cache fails cacheable requests"},
		{Key: MechLogFileLimit, App: A, Trigger: taxonomy.TriggerFileSizeLimit, Description: "access log at the maximum file size fails requests"},
		{Key: MechFSFull, App: A, Trigger: taxonomy.TriggerDiskFull, Description: "full file system fails every logged request"},
		{Key: MechNetResource, App: A, Trigger: taxonomy.TriggerNetworkResource, Description: "opaque kernel network resource exhausted"},
		{Key: MechPCMCIARemoval, App: A, Trigger: taxonomy.TriggerNetworkResource, Description: "network card removal fails all requests"},
		{Key: MechDNSError, App: A, Trigger: taxonomy.TriggerDNSFailure, Description: "DNS lookup errors fail requests needing hostname lookups"},
		{Key: MechProcTableFull, App: A, Trigger: taxonomy.TriggerProcessTable, Description: "hung CGI children exhaust the process table"},
		{Key: MechClientAbort, App: A, Trigger: taxonomy.TriggerRequestTiming, Description: "client stop at the wrong moment crashes the child"},
		{Key: MechPortSquat, App: A, Trigger: taxonomy.TriggerProcessTable, Description: "hung children keep the listening port across restart"},
		{Key: MechDNSSlow, App: A, Trigger: taxonomy.TriggerDNSFailure, Description: "slow DNS responses stall requests past the timeout"},
		{Key: MechSlowNetwork, App: A, Trigger: taxonomy.TriggerSlowNetwork, Description: "saturated link fails transfers"},
		{Key: MechEntropyStarved, App: A, Trigger: taxonomy.TriggerEntropy, Description: "ssl handshakes starve on an empty entropy pool"},
	} {
		r.MustRegister(m)
	}
}
