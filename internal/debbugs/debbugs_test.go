package debbugs

import (
	"strings"
	"testing"
	"time"

	"faultstudy/internal/taxonomy"
)

const sampleBug = `Bug: #771
Package: panel
Severity: grave
Version: 1.0.9
Tags: confirmed
Subject: clicking the tasklist tab kills the pager
Date: Mon, 05 Jul 1999 14:22:00 +0000

Clicking on the "tasklist" tab in gnome-pager settings causes the
pager to die immediately.

Steps to reproduce:
1. Right-click the pager, choose Properties.
2. Click the "tasklist" tab.

The pager segfaults every time.

Message #2
I can confirm this on Red Hat 6.0 with panel 1.0.9.

Message #3
Fixed in CVS; the tab callback dereferenced a NULL applet pointer.
`

const sampleCVSLog = `RCS file: /cvs/gnome/gnome-core/panel/pager.c,v
----------------------------
revision 1.42
date: 1999/07/08 10:00:00;  author: dev;
Fixes bug #771: guard the tasklist tab callback against a NULL
applet pointer.
----------------------------
revision 1.41
date: 1999/07/01 09:00:00;  author: dev;
Cosmetic cleanups.
=============================================================
`

func TestParseBug(t *testing.T) {
	b, err := Parse(strings.NewReader(sampleBug))
	if err != nil {
		t.Fatal(err)
	}
	if b.Number != 771 {
		t.Errorf("Number = %d", b.Number)
	}
	if b.Package != "panel" {
		t.Errorf("Package = %q", b.Package)
	}
	if b.Severity != "grave" {
		t.Errorf("Severity = %q", b.Severity)
	}
	if b.Version != "1.0.9" {
		t.Errorf("Version = %q", b.Version)
	}
	if len(b.Tags) != 1 || b.Tags[0] != "confirmed" {
		t.Errorf("Tags = %v", b.Tags)
	}
	if b.Subject != "clicking the tasklist tab kills the pager" {
		t.Errorf("Subject = %q", b.Subject)
	}
	want := time.Date(1999, 7, 5, 14, 22, 0, 0, time.UTC)
	if !b.Date.Equal(want) {
		t.Errorf("Date = %v, want %v", b.Date, want)
	}
	if len(b.FollowUps) != 2 {
		t.Fatalf("FollowUps = %d, want 2", len(b.FollowUps))
	}
	if !strings.Contains(b.FollowUps[1], "Fixed in CVS") {
		t.Errorf("follow-up 1 = %q", b.FollowUps[1])
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("Package: panel\n\nbody\n")); err == nil {
		t.Error("missing Bug header should fail")
	}
	if _, err := Parse(strings.NewReader("Bug: #xyz\n\nbody\n")); err == nil {
		t.Error("bad bug number should fail")
	}
	if _, err := Parse(strings.NewReader("not a header line\n\nbody\n")); err == nil {
		t.Error("malformed header should fail")
	}
}

func TestSubjectFallsBackToFirstBodyLine(t *testing.T) {
	raw := "Bug: #9\nPackage: gmc\nSeverity: grave\n\nDouble-clicking a tar.gz icon crashes gmc.\nMore detail here.\n"
	b, err := Parse(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if b.Subject != "Double-clicking a tar.gz icon crashes gmc." {
		t.Errorf("Subject = %q", b.Subject)
	}
}

func TestParseCVSLog(t *testing.T) {
	commits, err := ParseCVSLog(strings.NewReader(sampleCVSLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(commits) != 2 {
		t.Fatalf("commits = %d, want 2", len(commits))
	}
	fix := commits[0]
	if fix.Revision != "1.42" {
		t.Errorf("Revision = %q", fix.Revision)
	}
	if fix.BugNumber != 771 {
		t.Errorf("BugNumber = %d", fix.BugNumber)
	}
	if !strings.Contains(fix.Module, "pager.c") {
		t.Errorf("Module = %q", fix.Module)
	}
	if commits[1].BugNumber != 0 {
		t.Errorf("cosmetic commit claimed bug #%d", commits[1].BugNumber)
	}
}

func TestExtractBugNumberVariants(t *testing.T) {
	tests := []struct {
		log  string
		want int
	}{
		{"Fixes bug #123: guard pointer", 123},
		{"fix bug #45", 45},
		{"Closes #9", 9},
		{"see bug #77 for details", 77},
		{"no reference here", 0},
	}
	for _, tt := range tests {
		if got := extractBugNumber(tt.log); got != tt.want {
			t.Errorf("extractBugNumber(%q) = %d, want %d", tt.log, got, tt.want)
		}
	}
}

func TestToReport(t *testing.T) {
	b, err := Parse(strings.NewReader(sampleBug))
	if err != nil {
		t.Fatal(err)
	}
	commits, err := ParseCVSLog(strings.NewReader(sampleCVSLog))
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.ToReport(commits)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "GB-771" {
		t.Errorf("ID = %q", r.ID)
	}
	if r.App != taxonomy.AppGnome {
		t.Errorf("App = %v", r.App)
	}
	if r.Severity != taxonomy.SeverityCritical { // grave -> critical
		t.Errorf("Severity = %v", r.Severity)
	}
	if r.Symptom != taxonomy.SymptomCrash {
		t.Errorf("Symptom = %v", r.Symptom)
	}
	if !strings.Contains(r.HowToRepeat, "tasklist") {
		t.Errorf("HowToRepeat = %q", r.HowToRepeat)
	}
	if !strings.Contains(r.FixDescription, "NULL") {
		t.Errorf("FixDescription = %q", r.FixDescription)
	}
	if !r.Qualifies() {
		t.Error("report should qualify")
	}
}

func TestCVSVersionNotProduction(t *testing.T) {
	raw := strings.Replace(sampleBug, "Version: 1.0.9", "Version: 1.0.9-cvs", 1)
	b, err := Parse(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.ToReport(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Production {
		t.Error("CVS snapshot must not count as production")
	}
}

func TestExtractHowToRepeatNumberedFallback(t *testing.T) {
	body := "The pager dies.\n1. open properties\n2) click tab\nsome trailing text"
	got := extractHowToRepeat(body)
	if !strings.Contains(got, "open properties") || !strings.Contains(got, "click tab") {
		t.Errorf("extractHowToRepeat = %q", got)
	}
}

func TestExtractHowToRepeatEmpty(t *testing.T) {
	if got := extractHowToRepeat("no steps at all"); got != "" {
		t.Errorf("extractHowToRepeat = %q, want empty", got)
	}
}

func BenchmarkParseBug(b *testing.B) {
	b.SetBytes(int64(len(sampleBug)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(strings.NewReader(sampleBug)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseCVSLog(b *testing.B) {
	b.SetBytes(int64(len(sampleCVSLog)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseCVSLog(strings.NewReader(sampleCVSLog)); err != nil {
			b.Fatal(err)
		}
	}
}
