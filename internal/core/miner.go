// Package core is the paper's primary contribution as a runnable system: the
// fault-study pipeline. It mines each application's bug source in its native
// form (GNATS tracker, debbugs tracker plus CVS log, mailing-list mbox
// archive), normalizes the reports, applies the study's inclusion bar
// (severe/critical, production releases, high-impact symptoms — or the
// keyword search for the mailing list), narrows to unique faults, classifies
// each by environment dependence, and tallies the per-class tables.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"faultstudy/internal/debbugs"
	"faultstudy/internal/gnats"
	"faultstudy/internal/mbox"
	"faultstudy/internal/report"
	"faultstudy/internal/scrape"
	"faultstudy/internal/taxonomy"
)

// Miner runs the three per-application mining pipelines. The zero value
// mines with a default crawler; Options threads extra crawler options (a
// chaos-wrapped HTTP client, a virtual pacing clock, a Retry-After policy)
// into every crawl, and Gaps accumulates the URLs each crawl lost after the
// client exhausted recovery. A Miner that returns reports with a non-empty
// Gaps has degraded gracefully: the corpus is partial and says so, instead
// of the whole mine dying on one bad page.
type Miner struct {
	// Options is appended to each pipeline's baseline crawler options.
	Options []scrape.CrawlerOption
	// Gaps collects the gap entries of every crawl this miner ran.
	Gaps []scrape.Gap
}

// newCrawler builds a crawler from the pipeline's baseline options plus the
// miner's injected ones (injected options win, being applied last).
func (m *Miner) newCrawler(base ...scrape.CrawlerOption) *scrape.Crawler {
	return scrape.NewCrawler(append(base, m.Options...)...)
}

// record accumulates the crawl's gaps onto the miner and draws the line
// between degraded and dead: a crawl that fetched *something* proceeds on
// the partial corpus, but a crawl that fetched nothing and lost pages (the
// root itself was unreachable) is a total failure and surfaces as an error.
func (m *Miner) record(what string, pages []*scrape.Page) error {
	m.Gaps = append(m.Gaps, scrape.GapsOf(pages)...)
	cov := scrape.CoverageOf(pages)
	if cov.Fetched == 0 && cov.Gaps > 0 {
		gaps := scrape.GapsOf(pages)
		return fmt.Errorf("core: %s unreachable: fetched 0/%d pages (first gap: %s: %s)",
			what, cov.Attempted, gaps[0].URL, gaps[0].Reason)
	}
	return nil
}

// MineApache crawls a GNATS-style tracker rooted at baseURL (the /bugdb/
// index) and returns the parsed problem reports.
func MineApache(ctx context.Context, baseURL string) ([]*report.Report, error) {
	return (&Miner{}).MineApache(ctx, baseURL)
}

// MineApache is the Apache pipeline under this miner's crawler options.
func (m *Miner) MineApache(ctx context.Context, baseURL string) ([]*report.Report, error) {
	crawler := m.newCrawler(scrape.WithPathFilter("/bugdb/"))
	pages, err := crawler.Crawl(ctx, baseURL+"/bugdb/")
	if err != nil {
		return nil, fmt.Errorf("core: crawl apache tracker: %w", err)
	}
	if err := m.record("apache tracker", pages); err != nil {
		return nil, err
	}
	var reports []*report.Report
	for _, page := range pages {
		if page.Status != 200 || !strings.Contains(page.URL, "/bugdb/pr/") {
			continue
		}
		text := scrape.Text(page.Body)
		start := strings.Index(text, ">Number:")
		if start < 0 {
			continue
		}
		pr, err := gnats.Parse(strings.NewReader(text[start:]))
		if err != nil {
			return nil, fmt.Errorf("core: parse %s: %w", page.URL, err)
		}
		r, err := pr.ToReport()
		if err != nil {
			return nil, fmt.Errorf("core: normalize %s: %w", page.URL, err)
		}
		reports = append(reports, r)
	}
	report.Sort(reports)
	return reports, nil
}

// MineGnome crawls a debbugs-style tracker rooted at baseURL (the /bugs/
// index plus /cvs/log) and returns the parsed reports with fix information
// joined from the CVS log.
func MineGnome(ctx context.Context, baseURL string) ([]*report.Report, error) {
	return (&Miner{}).MineGnome(ctx, baseURL)
}

// MineGnome is the GNOME pipeline under this miner's crawler options.
func (m *Miner) MineGnome(ctx context.Context, baseURL string) ([]*report.Report, error) {
	crawler := m.newCrawler()
	pages, err := crawler.Crawl(ctx, baseURL+"/bugs/")
	if err != nil {
		return nil, fmt.Errorf("core: crawl gnome tracker: %w", err)
	}
	if err := m.record("gnome tracker", pages); err != nil {
		return nil, err
	}
	var (
		bugs    []*debbugs.Bug
		commits []*debbugs.CVSCommit
	)
	for _, page := range pages {
		if page.Status != 200 {
			continue
		}
		text := scrape.Text(page.Body)
		switch {
		case strings.Contains(page.URL, "/cvs/log"):
			cs, err := debbugs.ParseCVSLog(strings.NewReader(text))
			if err != nil {
				return nil, fmt.Errorf("core: parse cvs log: %w", err)
			}
			commits = append(commits, cs...)
		case strings.Contains(page.URL, "/bugs/") && !strings.Contains(page.URL, "/bugs/index/") && !strings.HasSuffix(page.URL, "/bugs/"):
			start := strings.Index(text, "Bug: #")
			if start < 0 {
				continue
			}
			b, err := debbugs.Parse(strings.NewReader(text[start:]))
			if err != nil {
				return nil, fmt.Errorf("core: parse %s: %w", page.URL, err)
			}
			bugs = append(bugs, b)
		}
	}
	var reports []*report.Report
	for _, b := range bugs {
		r, err := b.ToReport(commits)
		if err != nil {
			return nil, fmt.Errorf("core: normalize bug %d: %w", b.Number, err)
		}
		reports = append(reports, r)
	}
	report.Sort(reports)
	return reports, nil
}

// MineMySQL fetches the mailing-list archive rooted at baseURL (the /archive/
// index of monthly mbox files), applies the study's keyword search, threads
// the messages, and returns one report per matching thread.
func MineMySQL(ctx context.Context, baseURL string) ([]*report.Report, error) {
	return (&Miner{}).MineMySQL(ctx, baseURL)
}

// MineMySQL is the MySQL pipeline under this miner's crawler options.
func (m *Miner) MineMySQL(ctx context.Context, baseURL string) ([]*report.Report, error) {
	crawler := m.newCrawler(scrape.WithPathFilter("/archive/"))
	pages, err := crawler.Crawl(ctx, baseURL+"/archive/")
	if err != nil {
		return nil, fmt.Errorf("core: crawl mysql archive: %w", err)
	}
	if err := m.record("mysql archive", pages); err != nil {
		return nil, err
	}
	var msgs []*mbox.Message
	for _, page := range pages {
		if page.Status != 200 || !strings.HasSuffix(page.URL, ".mbox") {
			continue
		}
		ms, err := mbox.Parse(strings.NewReader(page.Body))
		if err != nil {
			return nil, fmt.Errorf("core: parse %s: %w", page.URL, err)
		}
		msgs = append(msgs, ms...)
	}
	threads := mbox.ThreadMessages(msgs)
	serious := mbox.FilterThreads(threads, mbox.DefaultKeywords())
	reports := make([]*report.Report, 0, len(serious))
	for _, th := range serious {
		r, err := ThreadReport(th)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	report.Sort(reports)
	return reports, nil
}

// ThreadReport converts a mailing-list thread into a normalized report: the
// root message is the problem description, the replies are developer
// comments, and the "Server version:" and "How-To-Repeat:" body lines supply
// the release and reproduction fields. Mailing-list reports carry no tracker
// severity; the study admits them by symptom.
func ThreadReport(th *mbox.Thread) (*report.Report, error) {
	if len(th.Messages) == 0 {
		return nil, fmt.Errorf("core: empty thread %q", th.Subject)
	}
	root := th.Messages[0]
	r := &report.Report{
		ID:          root.MessageID,
		App:         taxonomy.AppMySQL,
		Synopsis:    mbox.NormalizeSubject(root.Subject),
		Description: root.Body,
		HowToRepeat: bodyField(root.Body, "How-To-Repeat:"),
		Release:     bodyField(root.Body, "Server version:"),
		Filed:       root.Date,
		Production:  true,
	}
	for _, m := range th.Messages[1:] {
		r.Comments = append(r.Comments, m.Body)
		if fix := bodyField(m.Body, "Fixed for the next release:"); fix != "" {
			r.FixDescription = fix
		}
	}
	r.Symptom = gnats.InferSymptom(r.Synopsis + "\n" + r.Description + "\n" + strings.Join(r.Comments, "\n"))
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("core: thread %q: %w", th.Subject, err)
	}
	return r, nil
}

// bodyField extracts the remainder of the first body line starting with the
// given marker.
func bodyField(body, marker string) string {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), marker); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// sortReports orders reports deterministically by filing date then key.
func sortReports(reports []*report.Report) {
	sort.SliceStable(reports, func(i, j int) bool {
		if !reports[i].Filed.Equal(reports[j].Filed) {
			return reports[i].Filed.Before(reports[j].Filed)
		}
		return reports[i].Key() < reports[j].Key()
	})
}
