// Package wallclock is a fixture: direct wall-clock calls, against the
// injectable-clock value reference that must not fire.
package wallclock

import "time"

// now is the injection point: referencing time.Now as a value is the
// sanctioned pattern and must not be flagged.
var now = time.Now

func stamp() time.Time {
	return time.Now() // want EDT
}

func nap() {
	time.Sleep(time.Millisecond) // want EDT
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want EDT
}

func injected() time.Time {
	return now()
}
