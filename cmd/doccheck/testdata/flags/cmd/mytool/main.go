// Command mytool is a doccheck -flags test fixture.
package main

import "flag"

var spec string

func main() {
	seed := flag.Int64("seed", 42, "rng seed")
	serve := flag.Bool("serve", false, "run the serving tier")
	out := flag.String("out", "", "report path")
	flag.StringVar(&spec, "arrive", "poisson:1ms", "arrival spec")
	fs := flag.NewFlagSet("mytool", flag.ExitOnError)
	verbose := fs.Bool("v", false, "verbose output")
	flag.Parse()
	_ = seed
	_ = serve
	_ = out
	_ = verbose
}
