package faultlint

import (
	"go/ast"

	"faultstudy/internal/taxonomy"
)

// rawrand flags draws from math/rand's package-level (global) source. The
// global source is shared, lockstepped across the process, and — absent an
// explicit Seed — differently seeded per run, so any experiment path that
// touches it stops being reproducible: the same workload no longer produces
// the same interleaving of simulated events. That is manufactured EDT
// nondeterminism. Constructing a dedicated generator (rand.New(
// rand.NewSource(seed))) and threading it is always available and is what
// every seeded path in this repository does.
var rawrandAnalyzer = &Analyzer{
	Name:  "rawrand",
	Doc:   "draw from the global math/rand source in a deterministic experiment path",
	Class: taxonomy.ClassEnvDependentTransient,
	Run:   runRawrand,
}

// globalRandFuncs are the math/rand package functions that consume the
// global source. Constructors (New, NewSource, NewZipf) are fine.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// randPaths are the import paths of math/rand across Go versions.
var randPaths = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func runRawrand(p *Pass) {
	for _, f := range p.Pkg.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, resolved := p.Pkg.pkgQualified(file, sel)
			if !resolved || !randPaths[path] || !globalRandFuncs[name] {
				return true
			}
			p.Reportf(call.Pos(),
				"rand.%s draws from the global math/rand source; thread a seeded *rand.Rand so the run is reproducible", name)
			return true
		})
	}
}
