package corpusgen

import (
	"strings"
	"testing"

	"faultstudy/internal/classify"
	"faultstudy/internal/taxonomy"
)

// testCorpus builds a small population for unit tests.
func testCorpus(t *testing.T, spec string, seed int64) *Corpus {
	t.Helper()
	s, err := ParseCorpusSpec(spec)
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	return New(s, seed)
}

func TestFaultInvariants(t *testing.T) {
	c := testCorpus(t, "faults=400;episodes=60", 11)
	for i := 0; i < 400; i++ {
		f := c.FaultAt(i)
		if f.Index != i || f.ID != strings.TrimSpace(f.ID) || f.ID == "" {
			t.Fatalf("fault %d: bad identity %+v", i, f)
		}
		if !strings.HasPrefix(f.Mechanism, f.AppName+"/") {
			t.Fatalf("fault %d: mechanism %q outside app %q", i, f.Mechanism, f.AppName)
		}
		if got := f.Trigger.DefaultClass(); got != f.Class {
			t.Fatalf("fault %d: mechanism class %v != sampled class %v", i, got, f.Class)
		}
		if appValues[f.AppName] != f.App {
			t.Fatalf("fault %d: app name %q vs app %v", i, f.AppName, f.App)
		}
		if f.Lifetime <= 0 {
			t.Fatalf("fault %d: non-positive lifetime %v (%q)", i, f.Lifetime, f.LifetimeText)
		}
		if err := f.Report().Validate(); err != nil {
			t.Fatalf("fault %d: invalid report: %v", i, err)
		}
	}
}

func TestFaultAtIsPure(t *testing.T) {
	c := testCorpus(t, "faults=50", 7)
	c2 := testCorpus(t, "faults=50", 7)
	for i := 0; i < 50; i++ {
		a, b := c.FaultAt(i), c2.FaultAt(i)
		if *a != *b {
			t.Fatalf("fault %d differs across corpus instances: %+v vs %+v", i, a, b)
		}
	}
	if a, b := c.FaultAt(3), c.FaultAt(3); *a != *b {
		t.Fatalf("fault 3 differs across calls: %+v vs %+v", a, b)
	}
}

func TestEpisodeInvariants(t *testing.T) {
	c := testCorpus(t, "faults=200;episodes=120", 23)
	for j := 0; j < 120; j++ {
		e := c.EpisodeAt(j)
		if e.Primary < 0 || e.Primary >= 200 {
			t.Fatalf("episode %d: primary %d out of range", j, e.Primary)
		}
		pf := c.FaultAt(e.Primary)
		if e.PrimaryMechanism != pf.Mechanism {
			t.Fatalf("episode %d: primary mechanism mismatch", j)
		}
		if e.Secondary == e.PrimaryMechanism {
			t.Fatalf("episode %d: secondary equals primary %q", j, e.Secondary)
		}
		if !strings.HasPrefix(e.Secondary, pf.AppName+"/") {
			t.Fatalf("episode %d: secondary %q not in app %q", j, e.Secondary, pf.AppName)
		}
		if e.Overlap != "concurrent" && e.Overlap != "cascade" {
			t.Fatalf("episode %d: overlap %q", j, e.Overlap)
		}
		if e.Gap <= 0 {
			t.Fatalf("episode %d: gap %v", j, e.Gap)
		}
	}
}

// TestTriggerProseClassifies pins the contract between the generator's
// trigger prose and the classifier's lexicon: each trigger's sentence must
// win its own trigger hypothesis, so a generated environmental fault is
// recovered as its sampled class.
func TestTriggerProseClassifies(t *testing.T) {
	cl := classify.New(classify.Options{})
	for kind, prose := range triggerProse {
		f := &GenFault{
			Index: 1, ID: "gen/prose", App: taxonomy.AppApache, AppName: "httpd",
			Class: kind.DefaultClass(), Trigger: kind, Defect: "memory",
			LifetimeText: "30d", Severity: taxonomy.SeveritySerious,
			Symptom: taxonomy.SymptomCrash,
		}
		res := cl.Classify(f.Report())
		if res.Trigger != kind {
			t.Errorf("trigger %v: prose %q classified as trigger %v (evidence %v)",
				kind, prose, res.Trigger, res.Evidence)
		}
		if res.Class != kind.DefaultClass() {
			t.Errorf("trigger %v: class %v, want %v", kind, res.Class, kind.DefaultClass())
		}
	}
}

// TestClassifierAgreement runs a whole population through the classifier:
// the sampled class must be recovered for every generated report.
func TestClassifierAgreement(t *testing.T) {
	c := testCorpus(t, "faults=1500", 31)
	cl := classify.New(classify.Options{})
	agree := 0
	for i := 0; i < 1500; i++ {
		f := c.FaultAt(i)
		res := cl.Classify(f.Report())
		if res.Class == f.Class {
			agree++
		} else if agree == i { // log only the first disagreement in detail
			t.Logf("fault %d (%s, %v): classified %v via %v, evidence %v",
				i, f.Mechanism, f.Class, res.Class, res.Trigger, res.Evidence)
		}
	}
	if agree != 1500 {
		t.Fatalf("classifier agreement %d/1500; generated prose must deterministically classify", agree)
	}
}

func TestEmptyClassPoolImpossible(t *testing.T) {
	// Every app must expose mechanisms in all three classes, or New panics.
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("New panicked: %v", r)
		}
	}()
	testCorpus(t, "faults=1", 1)
}
