package desktop

import (
	"testing"
	"time"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/taxonomy"
)

func newDesktop(t *testing.T, faults *faultinject.Set, opts ...simenv.Option) *Desktop {
	t.Helper()
	env := simenv.New(23, opts...)
	d := New(env, faults)
	if err := d.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return d
}

func dispatch(t *testing.T, d *Desktop, widget, action, arg string) {
	t.Helper()
	if err := d.Dispatch(Event{Widget: widget, Action: action, Arg: arg}); err != nil {
		t.Fatalf("%s.%s(%s): %v", widget, action, arg, err)
	}
}

func wantFailure(t *testing.T, err error, mech string) *faultinject.FailureError {
	t.Helper()
	fe, ok := faultinject.AsFailure(err)
	if !ok {
		t.Fatalf("error %v is not a FailureError", err)
	}
	if fe.Mechanism != mech {
		t.Fatalf("mechanism = %s, want %s", fe.Mechanism, mech)
	}
	return fe
}

func TestHealthySession(t *testing.T) {
	d := newDesktop(t, nil)
	dispatch(t, d, "panel", "click-tasklist-tab", "")
	dispatch(t, d, "panel", "open-main-menu", "")
	dispatch(t, d, "panel", "click-desktop", "")
	dispatch(t, d, "calendar", "view-year", "")
	dispatch(t, d, "calendar", "prev", "")
	dispatch(t, d, "gnumeric", "open-define-name", "")
	dispatch(t, d, "gnumeric", "press-tab", "")
	dispatch(t, d, "gnumeric", "set-cell", "A1=42")
	dispatch(t, d, "gnumeric", "get-cell", "A1")
	dispatch(t, d, "gmc", "open", "backup.tar.gz")
	dispatch(t, d, "session", "play-sound", "")
	if d.Events() != 11 {
		t.Errorf("events = %d, want 11", d.Events())
	}
	if n := d.Env().FDs().OwnedBy(Owner); n != 0 {
		t.Errorf("healthy session holds %d fds", n)
	}
}

func TestDispatchErrors(t *testing.T) {
	d := newDesktop(t, nil)
	if err := d.Dispatch(Event{Widget: "nope", Action: "x"}); err == nil {
		t.Error("unknown widget should fail")
	}
	if err := d.Dispatch(Event{Widget: "panel", Action: "nope"}); err == nil {
		t.Error("unknown action should fail")
	}
	if err := d.Dispatch(Event{Widget: "panel", Action: "remove-applet", Arg: "ghost"}); err == nil {
		t.Error("removing a missing applet should fail")
	}
	if err := d.Dispatch(Event{Widget: "gnumeric", Action: "set-cell", Arg: "bad"}); err == nil {
		t.Error("malformed set-cell should fail")
	}
	d.Stop()
	if err := d.Dispatch(Event{Widget: "panel", Action: "open-main-menu"}); err == nil {
		t.Error("dispatch while stopped should fail")
	}
}

func TestNamedEIBugs(t *testing.T) {
	t.Run("tasklist", func(t *testing.T) {
		d := newDesktop(t, faultinject.NewSet(MechTasklistTab))
		err := d.Dispatch(Event{Widget: "panel", Action: "click-tasklist-tab"})
		fe := wantFailure(t, err, MechTasklistTab)
		if fe.Symptom != taxonomy.SymptomCrash {
			t.Errorf("symptom = %v", fe.Symptom)
		}
	})
	t.Run("calendar-prev-year-only", func(t *testing.T) {
		d := newDesktop(t, faultinject.NewSet(MechCalendarPrev))
		// prev in month view is fine.
		dispatch(t, d, "calendar", "prev", "")
		dispatch(t, d, "calendar", "view-year", "")
		err := d.Dispatch(Event{Widget: "calendar", Action: "prev"})
		wantFailure(t, err, MechCalendarPrev)
	})
	t.Run("gnumeric-tab-needs-dialog", func(t *testing.T) {
		d := newDesktop(t, faultinject.NewSet(MechGnumericTab))
		dispatch(t, d, "gnumeric", "press-tab", "") // no dialog open: fine
		dispatch(t, d, "gnumeric", "open-file-summary", "")
		err := d.Dispatch(Event{Widget: "gnumeric", Action: "press-tab"})
		wantFailure(t, err, MechGnumericTab)
	})
	t.Run("gmc-targz", func(t *testing.T) {
		d := newDesktop(t, faultinject.NewSet(MechGmcTarGz))
		dispatch(t, d, "gmc", "open", "notes.txt") // non-archives are fine
		err := d.Dispatch(Event{Widget: "gmc", Action: "open", Arg: "backup.tar.gz"})
		wantFailure(t, err, MechGmcTarGz)
	})
	t.Run("menu-freeze", func(t *testing.T) {
		d := newDesktop(t, faultinject.NewSet(MechMenuFreeze))
		dispatch(t, d, "panel", "click-desktop", "") // no menu open: fine
		dispatch(t, d, "panel", "open-main-menu", "")
		err := d.Dispatch(Event{Widget: "panel", Action: "click-desktop"})
		fe := wantFailure(t, err, MechMenuFreeze)
		if fe.Symptom != taxonomy.SymptomHang {
			t.Errorf("symptom = %v", fe.Symptom)
		}
	})
}

func TestHostnameChange(t *testing.T) {
	d := newDesktop(t, faultinject.NewSet(MechHostnameChange))
	dispatch(t, d, "session", "noop", "")
	d.Env().SetHostname("newname")
	err := d.Dispatch(Event{Widget: "session", Action: "noop"})
	wantFailure(t, err, MechHostnameChange)
	// Time does not fix the condition.
	d.Env().Advance(24 * time.Hour)
	err = d.Dispatch(Event{Widget: "session", Action: "noop"})
	wantFailure(t, err, MechHostnameChange)
	// Logging out and back in (Reset, application-specific recovery) does.
	d.Stop()
	if err := d.Reset(); err != nil {
		t.Fatal(err)
	}
	dispatch(t, d, "session", "noop", "")
}

func TestSoundSocketLeak(t *testing.T) {
	d := newDesktop(t, faultinject.NewSet(MechSoundSocketLeak), simenv.WithFDLimit(10))
	var failure error
	for i := 0; i < 20; i++ {
		if err := d.Dispatch(Event{Widget: "session", Action: "play-sound"}); err != nil {
			failure = err
			break
		}
	}
	wantFailure(t, failure, MechSoundSocketLeak)
	// The leaked sockets are application state: snapshot + restore re-holds
	// them and the condition persists.
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d.Stop()
	d.Env().ReclaimOwner(Owner)
	if err := d.Restore(snap); err != nil {
		t.Fatal(err)
	}
	err = d.Dispatch(Event{Widget: "session", Action: "play-sound"})
	wantFailure(t, err, MechSoundSocketLeak)
}

func TestIllegalOwner(t *testing.T) {
	d := newDesktop(t, faultinject.NewSet(MechIllegalOwner))
	disk := d.Env().Disk()
	if err := disk.Append("/home/u/ok.txt", "u", 5); err != nil {
		t.Fatal(err)
	}
	dispatch(t, d, "gmc", "properties", "/home/u/ok.txt")
	if err := disk.Append("/home/u/bad.txt", "u", 5); err != nil {
		t.Fatal(err)
	}
	if err := disk.SetIllegalOwner("/home/u/bad.txt", true); err != nil {
		t.Fatal(err)
	}
	err := d.Dispatch(Event{Widget: "gmc", Action: "properties", Arg: "/home/u/bad.txt"})
	wantFailure(t, err, MechIllegalOwner)
}

func TestRaces(t *testing.T) {
	races := []struct {
		mech   string
		widget string
		action string
	}{
		{MechUnknownTransient, "session", "mystery-op"},
		{MechViewerRace, "gmc", "view-and-edit-properties"},
		{MechAppletRace, "panel", "applet-action-during-removal"},
	}
	for _, r := range races {
		t.Run(r.mech, func(t *testing.T) {
			d := newDesktop(t, faultinject.NewSet(r.mech))
			d.Env().Sched().Force(r.mech, 0)
			err := d.Dispatch(Event{Widget: r.widget, Action: r.action, Arg: "x"})
			wantFailure(t, err, r.mech)
			// The winning interleaving survives.
			d2 := newDesktop(t, faultinject.NewSet(r.mech))
			d2.Env().Sched().Force(r.mech, 1)
			if err := d2.Dispatch(Event{Widget: r.widget, Action: r.action, Arg: "x"}); err != nil {
				t.Errorf("winning interleaving: %v", err)
			}
		})
	}
}

func TestGenericEIBugs(t *testing.T) {
	tests := []struct {
		key     string
		symptom taxonomy.Symptom
	}{
		{MechStaleWidget, taxonomy.SymptomCrash},
		{MechBadInit, taxonomy.SymptomCrash},
		{MechEventLoopStall, taxonomy.SymptomHang},
		{MechConfigTruncate, taxonomy.SymptomError},
		{MechOffByOne, taxonomy.SymptomCrash},
		{MechTypeMismatch, taxonomy.SymptomError},
		{MechDoubleFree, taxonomy.SymptomCrash},
	}
	for _, tt := range tests {
		d := newDesktop(t, faultinject.NewSet(tt.key))
		action := tt.key[len("desktop/"):]
		err := d.Dispatch(Event{Widget: "bug", Action: action})
		fe := wantFailure(t, err, tt.key)
		if fe.Symptom != tt.symptom {
			t.Errorf("%s symptom = %v, want %v", tt.key, fe.Symptom, tt.symptom)
		}
		// Clean sessions sail through the same paths.
		clean := newDesktop(t, nil)
		dispatch(t, clean, "bug", action, "")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	d := newDesktop(t, nil)
	dispatch(t, d, "panel", "add-applet", "mixer")
	dispatch(t, d, "gnumeric", "set-cell", "B2=7")
	dispatch(t, d, "calendar", "view-year", "")
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d.Stop()
	if err := d.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if d.calendarView != "year" {
		t.Error("calendar view lost")
	}
	if d.cells["B2"] != "7" {
		t.Error("cell lost")
	}
	found := false
	for _, a := range d.applets {
		if a == "mixer" {
			found = true
		}
	}
	if !found {
		t.Error("applet lost")
	}
	if d.Events() != 3 {
		t.Errorf("event count = %d", d.Events())
	}
}

func TestLifecycleGuards(t *testing.T) {
	d := newDesktop(t, nil)
	if err := d.Start(); err == nil {
		t.Error("double start should fail")
	}
	snap, _ := d.Snapshot()
	if err := d.Restore(snap); err == nil {
		t.Error("restore while running should fail")
	}
	if err := d.Reset(); err == nil {
		t.Error("reset while running should fail")
	}
	d.Stop()
	if err := d.Restore([]byte("junk")); err == nil {
		t.Error("bad snapshot should fail")
	}
}

func TestScenariosCoverEveryMechanism(t *testing.T) {
	reg := faultinject.NewRegistry()
	RegisterMechanisms(reg)
	d := New(simenv.New(1), faultinject.NewSet())
	scenarios := Scenarios(d)
	for _, key := range reg.Keys() {
		sc, ok := scenarios[key]
		if !ok {
			t.Errorf("mechanism %s has no scenario", key)
			continue
		}
		if sc.Mechanism != key || len(sc.Ops) == 0 {
			t.Errorf("scenario %s malformed", key)
		}
	}
	if len(scenarios) != len(reg.Keys()) {
		t.Errorf("%d scenarios vs %d mechanisms", len(scenarios), len(reg.Keys()))
	}
}

func TestEveryScenarioTriggersItsMechanism(t *testing.T) {
	reg := faultinject.NewRegistry()
	RegisterMechanisms(reg)
	for _, key := range reg.Keys() {
		key := key
		t.Run(key, func(t *testing.T) {
			env := simenv.New(7)
			d := New(env, faultinject.NewSet(key))
			if err := d.Start(); err != nil {
				t.Fatalf("start: %v", err)
			}
			sc := Scenarios(d)[key]
			if sc.Stage != nil {
				sc.Stage()
			}
			var failure *faultinject.FailureError
			for _, op := range sc.Ops {
				if err := op.Do(); err != nil {
					fe, ok := faultinject.AsFailure(err)
					if !ok {
						t.Fatalf("op %s returned non-failure error: %v", op.Name, err)
					}
					failure = fe
					break
				}
			}
			if failure == nil {
				t.Fatalf("scenario never triggered %s", key)
			}
			if failure.Mechanism != key {
				t.Errorf("scenario for %s triggered %s", key, failure.Mechanism)
			}
		})
	}
}
