// Package desktop is a simulated desktop environment in the mold of GNOME
// 1.0 — a panel with applets, a calendar (gnome-pim), a spreadsheet
// (gnumeric), and a file manager (gmc) behind a single event-dispatch loop —
// seeded with the bugs the study catalogued for GNOME (§5.2): the
// tasklist-tab pager crash, the calendar prev-button crash, the gnumeric
// tab-in-dialog crash, the gmc tar.gz crash, the menu freeze, the
// hostname-change and illegal-owner-field conditions, the sound-utility
// socket leak, and the three races.
package desktop

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/taxonomy"
)

// Owner is the environment owner tag for all desktop resources.
const Owner = "gnome"

// Event is one user interaction dispatched through the desktop's event loop.
type Event struct {
	// Widget targets a component: panel, calendar, gnumeric, gmc, session,
	// or bug (the template-defect paths).
	Widget string
	// Action is the interaction.
	Action string
	// Arg carries the action argument (file name, applet name, cell ref).
	Arg string
}

// Desktop is the simulated desktop session.
type Desktop struct {
	env    *simenv.Env
	faults *faultinject.Set

	mu       sync.Mutex
	running  bool
	degraded bool
	soundFDs []simenv.FD

	// Logical state (travels through Snapshot/Restore).
	startHostname string
	applets       []string
	calendarView  string // "month" or "year"
	dialogOpen    string // gnumeric dialog name or ""
	menuOpen      bool
	cells         map[string]string
	soundFDWant   int
	events        int64
}

// New builds a desktop session over the environment with the given active
// bug set.
func New(env *simenv.Env, faults *faultinject.Set) *Desktop {
	return &Desktop{
		env:    env,
		faults: faults,
	}
}

// Name returns the environment owner tag.
func (d *Desktop) Name() string { return Owner }

// Env returns the session's environment.
func (d *Desktop) Env() *simenv.Env { return d.env }

// SetDegraded toggles degraded mode: the session keeps navigating and
// rendering but silently drops effects that consume environment resources
// (sound sockets), so a session out of descriptors stays interactive.
func (d *Desktop) SetDegraded(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.degraded = on
}

// Degraded reports whether degraded mode is on.
func (d *Desktop) Degraded() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded
}

// Running reports whether the session is up.
func (d *Desktop) Running() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.running
}

// Start opens the session: it records the hostname its X authority entries
// were generated for and restores any state-mandated sound sockets.
func (d *Desktop) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.running {
		return errors.New("desktop: already running")
	}
	if d.startHostname == "" {
		d.startHostname = d.env.Hostname()
	}
	if d.applets == nil {
		d.applets = []string{"clock", "pager", "tasklist"}
	}
	if d.cells == nil {
		d.cells = make(map[string]string)
	}
	if d.calendarView == "" {
		d.calendarView = "month"
	}
	for len(d.soundFDs) < d.soundFDWant {
		fd, err := d.env.FDs().Open(Owner)
		if err != nil {
			d.closeSoundFDsLocked()
			return faultinject.FailCause(MechSoundSocketLeak, taxonomy.SymptomError,
				"cannot reopen held sound sockets", err)
		}
		d.soundFDs = append(d.soundFDs, fd)
	}
	d.running = true
	return nil
}

func (d *Desktop) closeSoundFDsLocked() {
	for _, fd := range d.soundFDs {
		_ = d.env.FDs().Close(fd)
	}
	d.soundFDs = nil
}

// Stop closes the session and releases its environment resources.
func (d *Desktop) Stop() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.running {
		return
	}
	d.running = false
	d.closeSoundFDsLocked()
}

// Events returns the number of dispatched events.
func (d *Desktop) Events() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.events
}

// crash marks the session dead (d.mu held).
func (d *Desktop) crash() { d.running = false }

// Dispatch routes one user event through the desktop. Failures from active
// seeded bugs are *faultinject.FailureError values.
func (d *Desktop) Dispatch(ev Event) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.running {
		return errors.New("desktop: not running")
	}
	d.events++

	// Every X round-trip validates against the session's display authority,
	// which embeds the start-time hostname.
	if d.faults.Enabled(MechHostnameChange) && d.env.Hostname() != d.startHostname {
		return faultinject.Fail(MechHostnameChange, taxonomy.SymptomError,
			fmt.Sprintf("display authority for %q rejected on host %q",
				d.startHostname, d.env.Hostname()))
	}
	if d.faults.Enabled(MechUnknownTransient) && ev.Action == "mystery-op" {
		if d.env.Sched().RaceFires(MechUnknownTransient, 3) {
			d.crash()
			return faultinject.Fail(MechUnknownTransient, taxonomy.SymptomCrash,
				"unexplained failure; the same operation works on retry")
		}
		return nil
	}

	switch ev.Widget {
	case "panel":
		return d.panelEvent(ev)
	case "calendar":
		return d.calendarEvent(ev)
	case "gnumeric":
		return d.gnumericEvent(ev)
	case "gmc":
		return d.gmcEvent(ev)
	case "session":
		return d.sessionEvent(ev)
	case "bug":
		return d.bugEvent(ev)
	default:
		return fmt.Errorf("desktop: unknown widget %q", ev.Widget)
	}
}

func (d *Desktop) panelEvent(ev Event) error {
	switch ev.Action {
	case "click-tasklist-tab":
		if d.faults.Enabled(MechTasklistTab) {
			d.crash()
			return faultinject.Fail(MechTasklistTab, taxonomy.SymptomCrash,
				"pager settings tab callback dereferenced a NULL applet")
		}
		return nil
	case "open-main-menu":
		d.menuOpen = true
		return nil
	case "click-desktop":
		if d.menuOpen && d.faults.Enabled(MechMenuFreeze) {
			d.crash()
			return faultinject.Fail(MechMenuFreeze, taxonomy.SymptomHang,
				"pointer grab never released; desktop frozen")
		}
		d.menuOpen = false
		return nil
	case "add-applet":
		d.applets = append(d.applets, ev.Arg)
		return nil
	case "remove-applet":
		for i, a := range d.applets {
			if a == ev.Arg {
				d.applets = append(d.applets[:i], d.applets[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("desktop: no applet %q", ev.Arg)
	case "applet-action-during-removal":
		if d.faults.Enabled(MechAppletRace) && d.env.Sched().RaceFires(MechAppletRace, 3) {
			d.crash()
			return faultinject.Fail(MechAppletRace, taxonomy.SymptomCrash,
				"applet acted after its removal won the race")
		}
		return nil
	default:
		return fmt.Errorf("desktop: unknown panel action %q", ev.Action)
	}
}

func (d *Desktop) calendarEvent(ev Event) error {
	switch ev.Action {
	case "view-year":
		d.calendarView = "year"
		return nil
	case "view-month":
		d.calendarView = "month"
		return nil
	case "prev":
		if d.calendarView == "year" && d.faults.Enabled(MechCalendarPrev) {
			d.crash()
			return faultinject.Fail(MechCalendarPrev, taxonomy.SymptomCrash,
				"prev handler assigned the shadowing local, then dereferenced the global")
		}
		return nil
	case "next":
		return nil
	default:
		return fmt.Errorf("desktop: unknown calendar action %q", ev.Action)
	}
}

func (d *Desktop) gnumericEvent(ev Event) error {
	switch ev.Action {
	case "open-define-name", "open-file-summary":
		d.dialogOpen = ev.Action
		return nil
	case "close-dialog":
		d.dialogOpen = ""
		return nil
	case "press-tab":
		if d.dialogOpen != "" && d.faults.Enabled(MechGnumericTab) {
			d.crash()
			return faultinject.Fail(MechGnumericTab, taxonomy.SymptomCrash,
				"focus chain initialized to a bogus widget; Tab walked into it")
		}
		return nil
	case "set-cell":
		ref, val, ok := strings.Cut(ev.Arg, "=")
		if !ok {
			return fmt.Errorf("desktop: set-cell wants REF=VALUE, got %q", ev.Arg)
		}
		d.cells[ref] = val
		return nil
	case "get-cell":
		if _, ok := d.cells[ev.Arg]; !ok {
			return fmt.Errorf("desktop: empty cell %q", ev.Arg)
		}
		return nil
	default:
		return fmt.Errorf("desktop: unknown gnumeric action %q", ev.Action)
	}
}

func (d *Desktop) gmcEvent(ev Event) error {
	switch ev.Action {
	case "open":
		if strings.HasSuffix(ev.Arg, ".tar.gz") && d.faults.Enabled(MechGmcTarGz) {
			d.crash()
			return faultinject.Fail(MechGmcTarGz, taxonomy.SymptomCrash,
				"archive size declared long instead of unsigned long")
		}
		return nil
	case "properties":
		if d.faults.Enabled(MechIllegalOwner) {
			bad, err := d.env.Disk().IllegalOwner(ev.Arg)
			if err == nil && bad {
				d.crash()
				return faultinject.Fail(MechIllegalOwner, taxonomy.SymptomCrash,
					"owner field holds an illegal value; uid lookup crashed")
			}
		}
		return nil
	case "view-and-edit-properties":
		if d.faults.Enabled(MechViewerRace) && d.env.Sched().RaceFires(MechViewerRace, 3) {
			d.crash()
			return faultinject.Fail(MechViewerRace, taxonomy.SymptomCrash,
				"image viewer and property editor raced on the same file")
		}
		return nil
	default:
		return fmt.Errorf("desktop: unknown gmc action %q", ev.Action)
	}
}

func (d *Desktop) sessionEvent(ev Event) error {
	switch ev.Action {
	case "play-sound":
		if d.degraded {
			// Degraded mode: the event succeeds silently without opening a
			// sound socket.
			return nil
		}
		fd, err := d.env.FDs().Open(Owner)
		if err != nil {
			if d.faults.Enabled(MechSoundSocketLeak) {
				return faultinject.FailCause(MechSoundSocketLeak, taxonomy.SymptomError,
					"no descriptors left for the sound socket", err)
			}
			return fmt.Errorf("desktop: sound: %w", err)
		}
		if d.faults.Enabled(MechSoundSocketLeak) {
			// The bug: the sound utility exits without closing its socket.
			d.soundFDs = append(d.soundFDs, fd)
			d.soundFDWant = len(d.soundFDs)
			return nil
		}
		return d.env.FDs().Close(fd)
	case "noop":
		return nil
	default:
		return fmt.Errorf("desktop: unknown session action %q", ev.Action)
	}
}

func (d *Desktop) bugEvent(ev Event) error {
	key := "desktop/" + ev.Action
	if !d.faults.Enabled(key) {
		return nil // the defect path exists but the defect is not present
	}
	switch key {
	case MechStaleWidget, MechBadInit, MechOffByOne, MechDoubleFree:
		d.crash()
		return faultinject.Fail(key, taxonomy.SymptomCrash,
			"deterministic crash on the defect path")
	case MechEventLoopStall:
		d.crash()
		return faultinject.Fail(key, taxonomy.SymptomHang,
			"event loop waits on a reply it already consumed")
	case MechConfigTruncate, MechTypeMismatch:
		return faultinject.Fail(key, taxonomy.SymptomError,
			"value truncated on the defect path; operation failed")
	default:
		return fmt.Errorf("desktop: unknown bug action %q", ev.Action)
	}
}

// desktopState is the wire form of the session's logical state.
type desktopState struct {
	StartHostname string   `json:"startHostname"`
	Applets       []string `json:"applets"`
	CalendarView  string   `json:"calendarView"`
	DialogOpen    string   `json:"dialogOpen"`
	MenuOpen      bool     `json:"menuOpen"`
	Cells         []string `json:"cells"` // "ref=value", sorted
	SoundFDWant   int      `json:"soundFDWant"`
	Events        int64    `json:"events"`
}

// Snapshot captures the session's complete logical state, including the
// hostname its display authority was generated for and the count of held
// sound sockets.
func (d *Desktop) Snapshot() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cells := make([]string, 0, len(d.cells))
	for ref, val := range d.cells {
		cells = append(cells, ref+"="+val)
	}
	sort.Strings(cells)
	return json.Marshal(desktopState{
		StartHostname: d.startHostname,
		Applets:       append([]string(nil), d.applets...),
		CalendarView:  d.calendarView,
		DialogOpen:    d.dialogOpen,
		MenuOpen:      d.menuOpen,
		Cells:         cells,
		SoundFDWant:   d.soundFDWant,
		Events:        d.events,
	})
}

// Restore replaces the session's logical state from a snapshot and restarts
// it. The session must be stopped.
func (d *Desktop) Restore(snapshot []byte) error {
	var st desktopState
	if err := json.Unmarshal(snapshot, &st); err != nil {
		return fmt.Errorf("desktop: restore: %w", err)
	}
	d.mu.Lock()
	if d.running {
		d.mu.Unlock()
		return errors.New("desktop: restore while running")
	}
	// Drop stale socket handles from the failed instance; Start re-acquires
	// the state-mandated count.
	d.closeSoundFDsLocked()
	d.startHostname = st.StartHostname
	d.applets = append([]string(nil), st.Applets...)
	d.calendarView = st.CalendarView
	d.dialogOpen = st.DialogOpen
	d.menuOpen = st.MenuOpen
	d.cells = make(map[string]string, len(st.Cells))
	for _, c := range st.Cells {
		ref, val, _ := strings.Cut(c, "=")
		d.cells[ref] = val
	}
	d.soundFDWant = st.SoundFDWant
	d.events = st.Events
	d.mu.Unlock()
	return d.Start()
}

// Reset reinitializes the session — logging out and back in. The fresh
// session reads the *current* hostname and holds no sockets: the
// application-specific recovery path. The session must be stopped.
func (d *Desktop) Reset() error {
	d.mu.Lock()
	if d.running {
		d.mu.Unlock()
		return errors.New("desktop: reset while running")
	}
	d.closeSoundFDsLocked()
	d.startHostname = ""
	d.applets = nil
	d.calendarView = ""
	d.dialogOpen = ""
	d.menuOpen = false
	d.cells = nil
	d.soundFDWant = 0
	d.events = 0
	d.mu.Unlock()
	return d.Start()
}
