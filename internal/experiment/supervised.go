package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"faultstudy/internal/apps/desktop"
	"faultstudy/internal/apps/httpd"
	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/stats"
	"faultstudy/internal/supervise"
	"faultstudy/internal/taxonomy"
	"faultstudy/internal/workload"
)

// SupervisorVerdict grades one supervised run for the matrix: unlike the
// bare strategies' binary survived/lost, the supervisor has a middle outcome
// — everything was served or deliberately shed, but at degraded service.
type SupervisorVerdict int

const (
	// VerdictNone means the supervisor was not run for this fault.
	VerdictNone SupervisorVerdict = iota
	// VerdictServed means every op was served at full service.
	VerdictServed
	// VerdictDegraded means no op was lost but the run ended degraded.
	VerdictDegraded
	// VerdictLost means at least one op was abandoned.
	VerdictLost
)

// String names the verdict.
func (v SupervisorVerdict) String() string {
	switch v {
	case VerdictNone:
		return "-"
	case VerdictServed:
		return "served"
	case VerdictDegraded:
		return "degraded"
	case VerdictLost:
		return "lost"
	default:
		return fmt.Sprintf("SupervisorVerdict(%d)", int(v))
	}
}

// verdictOf grades a supervisor report.
func verdictOf(rep *supervise.Report) SupervisorVerdict {
	switch {
	case !rep.Served():
		return VerdictLost
	case rep.Degraded:
		return VerdictDegraded
	default:
		return VerdictServed
	}
}

// opKindFor classifies a scenario or workload op name for degraded-mode
// shedding: conservative name-based heuristics per application namespace.
func opKindFor(mechanism, name string) supervise.OpKind {
	switch {
	case strings.HasPrefix(mechanism, "httpd/"):
		if strings.Contains(name, "/proxy/") || strings.Contains(name, "/cgi-bin/") ||
			strings.Contains(name, "SIGHUP") || strings.Contains(name, "restart") {
			return supervise.OpWrite
		}
		return supervise.OpRead
	case strings.HasPrefix(mechanism, "sqldb/"):
		if strings.HasPrefix(name, "SELECT") {
			return supervise.OpRead
		}
		return supervise.OpWrite
	case strings.HasPrefix(mechanism, "desktop/"):
		if strings.Contains(name, "play-sound") || strings.Contains(name, "set-cell") {
			return supervise.OpWrite
		}
		return supervise.OpRead
	default:
		return supervise.OpRead
	}
}

// wrapScenarioOps converts scenario trigger ops into supervised ops.
func wrapScenarioOps(mechanism string, ops []faultinject.Op) []supervise.Op {
	out := make([]supervise.Op, 0, len(ops))
	for _, op := range ops {
		out = append(out, supervise.Op{Name: op.Name, Kind: opKindFor(mechanism, op.Name), Do: op.Do})
	}
	return out
}

// AddSupervised runs every corpus fault's scenario under a supervisor and
// records each verdict in the matrix, adding the paper-extension column that
// compares supervision against the bare one-shot strategies. Each fault gets
// a fresh environment and application, like the strategy runs.
func (m *Matrix) AddSupervised(seed int64, cfg supervise.Config) error {
	for i := range m.PerFault {
		fo := &m.PerFault[i]
		app, sc, err := BuildScenario(fo.Mechanism, seed)
		if err != nil {
			return fmt.Errorf("experiment: supervised %s: %w", fo.FaultID, err)
		}
		// Start before staging, like the bare-strategy runs: the staged
		// environmental condition hits a running application.
		if err := app.Start(); err != nil {
			return fmt.Errorf("experiment: supervised %s: start: %w", fo.FaultID, err)
		}
		if sc.Stage != nil {
			sc.Stage()
		}
		sup := supervise.New(app, cfg)
		rep, err := sup.Run(wrapScenarioOps(fo.Mechanism, sc.Ops))
		if err != nil {
			return fmt.Errorf("experiment: supervised %s: %w", fo.FaultID, err)
		}
		fo.Supervised = verdictOf(rep)
	}
	return nil
}

// HasSupervised reports whether the supervisor column has been filled in.
func (m *Matrix) HasSupervised() bool {
	for _, fo := range m.PerFault {
		if fo.Supervised != VerdictNone {
			return true
		}
	}
	return false
}

// SupervisedRate returns the not-lost proportion (served or degraded) over
// faults of one class (all classes when class is ClassUnknown), plus how
// many of the hits were degraded.
func (m *Matrix) SupervisedRate(class taxonomy.FaultClass) (p stats.Proportion, degraded int) {
	for _, fo := range m.PerFault {
		if fo.Supervised == VerdictNone {
			continue
		}
		if class != taxonomy.ClassUnknown && fo.Class != class {
			continue
		}
		p.N++
		switch fo.Supervised {
		case VerdictServed:
			p.Hits++
		case VerdictDegraded:
			p.Hits++
			degraded++
		}
	}
	return p, degraded
}

// SoakConfig tunes the sustained-workload soak run.
type SoakConfig struct {
	// Ops is the base workload length per application (0 means 300).
	Ops int
	// Faults is how many seeded mechanisms are activated per application,
	// drawn at random from its catalogue (0 means 3).
	Faults int
	// Seed drives mechanism selection, workloads, and environments.
	Seed int64
	// Supervise tunes the supervisor; its Seed is defaulted from Seed.
	Supervise supervise.Config
	// Telemetry, when non-nil, receives metrics and fault episodes from every
	// application's run — the observability layer's soak wiring. Nil costs
	// nothing.
	Telemetry *Telemetry
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Ops <= 0 {
		c.Ops = 300
	}
	if c.Faults <= 0 {
		c.Faults = 3
	}
	if c.Supervise.Seed == 0 {
		c.Supervise.Seed = c.Seed
	}
	return c
}

// workloadHook returns the workload-generation hook for the soak's telemetry,
// as a properly nil interface when telemetry is disabled.
func (c SoakConfig) workloadHook() workload.Hook {
	if c.Telemetry == nil {
		return nil
	}
	return c.Telemetry.workloadHook()
}

// workloadHTTP generates the web soak's base request stream, observed by the
// telemetry's workload hook when one is attached.
func workloadHTTP(cfg SoakConfig) []httpd.Request {
	return workload.HTTPRequestsObserved(cfg.Seed, workload.DefaultHTTPMix(), cfg.Ops, cfg.workloadHook())
}

// workloadSQL generates the database soak's base statement stream, observed.
func workloadSQL(cfg SoakConfig) []string {
	return workload.SQLStatementsObserved(cfg.Seed, cfg.Ops, cfg.workloadHook())
}

// workloadDesktop generates the desktop soak's base event stream, observed.
func workloadDesktop(cfg SoakConfig) []desktop.Event {
	return workload.DesktopEventsObserved(cfg.Seed, cfg.Ops, cfg.workloadHook())
}

// SoakResult is one application's soak outcome.
type SoakResult struct {
	// App is the simulated application.
	App taxonomy.Application
	// Mechanisms lists the seeded bugs activated, sorted.
	Mechanisms []string
	// Report is the supervisor's accounting.
	Report *supervise.Report
}

// pickMechanisms draws n distinct mechanism keys for the app from the
// registry with the given generator.
func pickMechanisms(app taxonomy.Application, n int, rng *rand.Rand) []string {
	var keys []string
	for _, mech := range Registry().ByApp(app) {
		keys = append(keys, mech.Key)
	}
	sort.Strings(keys)
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	if n > len(keys) {
		n = len(keys)
	}
	keys = keys[:n]
	sort.Strings(keys)
	return keys
}

// interleave inserts each trigger stream into the base stream at a random
// position at or past min, preserving each stream's internal order.
func interleave(base []supervise.Op, triggers [][]supervise.Op, min int, rng *rand.Rand) []supervise.Op {
	out := base
	for _, ts := range triggers {
		at := min
		if len(out) > min {
			at = min + rng.Intn(len(out)-min+1)
		}
		merged := make([]supervise.Op, 0, len(out)+len(ts))
		merged = append(merged, out[:at]...)
		merged = append(merged, ts...)
		merged = append(merged, out[at:]...)
		out = merged
	}
	return out
}

// RunSoak drives all three applications under sustained workload with a
// random subset of their seeded bugs active — the supervision layer's
// integration exercise. Each application gets a fresh environment, the
// chosen mechanisms' environmental preconditions are staged, their trigger
// ops are interleaved into the base workload at random positions, and the
// supervisor keeps the service running as they fire. Deterministic in Seed.
func RunSoak(cfg SoakConfig) ([]SoakResult, error) {
	cfg = cfg.withDefaults()
	var results []SoakResult

	runApp := func(app taxonomy.Application, f func(rng *rand.Rand, mechs []string) (*supervise.Report, error)) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(app)))
		mechs := pickMechanisms(app, cfg.Faults, rng)
		rep, err := f(rng, mechs)
		if err != nil {
			return err
		}
		results = append(results, SoakResult{App: app, Mechanisms: mechs, Report: rep})
		return nil
	}

	// Apache httpd.
	if err := runApp(taxonomy.AppApache, func(rng *rand.Rand, mechs []string) (*supervise.Report, error) {
		env := simenv.New(cfg.Seed, simenv.WithFDLimit(256), simenv.WithProcLimit(192))
		srv := httpd.New(env, faultinject.NewSet(mechs...), httpd.Config{})
		if err := srv.Start(); err != nil {
			return nil, fmt.Errorf("experiment: soak start: %w", err)
		}
		scenarios := httpd.Scenarios(srv)
		var triggers [][]supervise.Op
		for _, mech := range mechs {
			sc, ok := scenarios[mech]
			if !ok {
				continue
			}
			if sc.Stage != nil {
				sc.Stage()
			}
			triggers = append(triggers, wrapScenarioOps(mech, sc.Ops))
		}
		base := make([]supervise.Op, 0, cfg.Ops)
		for _, req := range workloadHTTP(cfg) {
			req := req
			name := req.Method + " " + req.Path
			base = append(base, supervise.Op{Name: name, Kind: opKindFor("httpd/", name), Do: func() error {
				_, err := srv.Serve(req)
				return err
			}})
		}
		supCfg, obs := cfg.Telemetry.superviseConfig(cfg.Supervise, soakContext(taxonomy.AppApache))
		sup := supervise.New(srv, supCfg)
		rep, err := sup.Run(interleave(base, triggers, 0, rng))
		obs.Flush(env.Monotonic())
		return rep, err
	}); err != nil {
		return nil, err
	}

	// MySQL-like database.
	if err := runApp(taxonomy.AppMySQL, func(rng *rand.Rand, mechs []string) (*supervise.Report, error) {
		env := simenv.New(cfg.Seed, simenv.WithFDLimit(256))
		db := sqldb.New(env, faultinject.NewSet(mechs...))
		if err := db.Start(); err != nil {
			return nil, fmt.Errorf("experiment: soak start: %w", err)
		}
		scenarios := sqldb.Scenarios(db)
		var triggers [][]supervise.Op
		for _, mech := range mechs {
			sc, ok := scenarios[mech]
			if !ok {
				continue
			}
			if sc.Stage != nil {
				sc.Stage()
			}
			triggers = append(triggers, wrapScenarioOps(mech, sc.Ops))
		}
		base := make([]supervise.Op, 0, cfg.Ops)
		for _, stmt := range workloadSQL(cfg) {
			stmt := stmt
			base = append(base, supervise.Op{Name: stmt, Kind: opKindFor("sqldb/", stmt), Do: func() error {
				_, err := db.Exec(stmt)
				return err
			}})
		}
		// Keep the schema-creating statements first.
		supCfg, obs := cfg.Telemetry.superviseConfig(cfg.Supervise, soakContext(taxonomy.AppMySQL))
		sup := supervise.New(db, supCfg)
		rep, err := sup.Run(interleave(base, triggers, 2, rng))
		obs.Flush(env.Monotonic())
		return rep, err
	}); err != nil {
		return nil, err
	}

	// GNOME-like desktop.
	if err := runApp(taxonomy.AppGnome, func(rng *rand.Rand, mechs []string) (*supervise.Report, error) {
		env := simenv.New(cfg.Seed, simenv.WithFDLimit(256))
		d := desktop.New(env, faultinject.NewSet(mechs...))
		if err := d.Start(); err != nil {
			return nil, fmt.Errorf("experiment: soak start: %w", err)
		}
		scenarios := desktop.Scenarios(d)
		var triggers [][]supervise.Op
		for _, mech := range mechs {
			sc, ok := scenarios[mech]
			if !ok {
				continue
			}
			if sc.Stage != nil {
				sc.Stage()
			}
			triggers = append(triggers, wrapScenarioOps(mech, sc.Ops))
		}
		base := make([]supervise.Op, 0, cfg.Ops)
		for _, ev := range workloadDesktop(cfg) {
			ev := ev
			name := ev.Widget + " " + ev.Action
			base = append(base, supervise.Op{Name: name, Kind: opKindFor("desktop/", name), Do: func() error {
				return d.Dispatch(ev)
			}})
		}
		supCfg, obs := cfg.Telemetry.superviseConfig(cfg.Supervise, soakContext(taxonomy.AppGnome))
		sup := supervise.New(d, supCfg)
		rep, err := sup.Run(interleave(base, triggers, 0, rng))
		obs.Flush(env.Monotonic())
		return rep, err
	}); err != nil {
		return nil, err
	}

	return results, nil
}

// RenderSoak formats the soak results, one report per application.
func RenderSoak(results []SoakResult) string {
	var b strings.Builder
	for i, r := range results {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "=== %s soak (%d mechanisms active: %s) ===\n",
			r.App, len(r.Mechanisms), strings.Join(r.Mechanisms, ", "))
		b.WriteString(r.Report.String())
	}
	return b.String()
}
