package cache

import (
	"time"

	"faultstudy/internal/component"
	"faultstudy/internal/simenv"
)

// Component names of the componentized daemon.
const (
	// CompCore is the keyed index and LRU order. Every operation routes
	// through it, and every environment-independent defect lives in it.
	CompCore = "cache/core"
	// CompListener is the accept path: the listening port, the per-connection
	// descriptors, and the replication-peer network preamble.
	CompListener = "cache/listener"
	// CompPersist is the append-only-log writer. When it is down the daemon
	// serves unpersisted rather than failing.
	CompPersist = "cache/persist"
	// CompSweeper is the background expiry sweep; the expiry race lives in
	// it, and crash-stopping it closes the race window.
	CompSweeper = "cache/sweeper"
)

// HotKeyBucket is the externalized-store bucket holding per-session hot-key
// counters — the state that must survive any component reboot.
const HotKeyBucket = "cache/hotkeys"

// Reboot costs on the virtual clock: what one microreboot of each part
// costs, in simulated milliseconds — against whole-process restart measured
// in seconds.
const (
	coreStartCost     = 6 * time.Millisecond
	listenerStartCost = 3 * time.Millisecond
	persistStartCost  = 2 * time.Millisecond
	sweeperStartCost  = 1 * time.Millisecond
)

// componentFor maps each seeded mechanism to the component its defect (or
// the resource it exhausts) lives in.
var componentFor = map[string]string{
	MechEmptyKeyDeref:   CompCore,
	MechEvictOffByOne:   CompCore,
	MechTTLParseLoop:    CompCore,
	MechStatsDivZero:    CompCore,
	MechBigValueBounds:  CompCore,
	MechFlushDoubleFree: CompCore,
	MechWrongHitCount:   CompCore,
	MechShadowCopyLeak:  CompCore,
	MechConnFDLeak:      CompListener,
	MechPeerDNSFlap:     CompListener,
	MechSlowReplFlush:   CompListener,
	MechAOFDiskFull:     CompPersist,
	MechExpiryRace:      CompSweeper,
}

// Componentized is the crash-only decomposition of the cache daemon: the
// same simulated daemon, restructured into a component tree with the hot-key
// counters externalized to a store that survives component death. It
// implements both recovery.Application (the whole-process lifecycle) and the
// per-component one.
type Componentized struct {
	srv   *Server
	store *component.Store
	tree  *component.Tree
}

// Componentize wraps a daemon into its component tree. The store holds the
// externalized hot-key state; passing a shared store across restarts is what
// makes it survive them.
func Componentize(srv *Server, store *component.Store) *Componentized {
	c := &Componentized{
		srv:   srv,
		store: store,
		tree:  component.NewTree(component.EnvClock{Env: srv.env}),
	}
	s := srv
	c.tree.MustAdd(component.Spec{StartCost: coreStartCost, Component: component.NewPart(CompCore, component.Hooks{
		// Crash-stopping the core discards the leaked shadow copies — the
		// microreboot answer to the leak-class mechanisms.
		OnKill: func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.shadowBytes = 0
			s.lastFlush = false
		},
	})})
	c.tree.MustAdd(component.Spec{StartCost: listenerStartCost, Deps: []string{CompCore}, Component: component.NewPart(CompListener, component.Hooks{
		// Crash-stopping the listener drops every (leaked) connection
		// descriptor and the port; restarting rebinds and starts clean.
		OnKill: func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.closeConnFDsLocked()
			s.connFDWant = 0
			if s.portBound {
				_ = s.env.Net().ReleasePort(s.cfg.Port)
				s.portBound = false
			}
		},
		OnStart: func() error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if !s.portBound {
				if err := s.env.Net().BindPort(s.cfg.Port, Owner); err != nil {
					return err
				}
				s.portBound = true
			}
			return nil
		},
	})})
	c.tree.MustAdd(component.Spec{StartCost: persistStartCost, Deps: []string{CompCore}, Component: component.NewPart(CompPersist, component.Hooks{
		// Crash-stopping the persist part really kills the log writer: the
		// store closes without any flush (acknowledged records are already
		// synced), and restarting it reruns durable recovery over the bytes
		// the kill left behind — crash-only for real.
		OnKill: func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.store != nil {
				s.store.Close()
			}
			s.aofSuspended = true
		},
		OnStart: func() error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if err := s.reopenStoreLocked(); err != nil {
				return err
			}
			s.aofSuspended = false
			return nil
		},
	})})
	c.tree.MustAdd(component.Spec{StartCost: sweeperStartCost, Deps: []string{CompCore}, Component: component.NewPart(CompSweeper, component.Hooks{})})
	return c
}

// Name returns the environment owner tag (unchanged by componentization).
func (c *Componentized) Name() string { return Owner }

// Env returns the underlying environment.
func (c *Componentized) Env() *simenv.Env { return c.srv.Env() }

// Running reports whether the simulated process is alive.
func (c *Componentized) Running() bool { return c.srv.Running() }

// Start boots the process and brings every component up.
func (c *Componentized) Start() error {
	if err := c.srv.Start(); err != nil {
		return err
	}
	return c.tree.StartAll()
}

// Stop crash-stops every component in reverse dependency order, then shuts
// the process down.
func (c *Componentized) Stop() {
	c.tree.StopAll()
	c.srv.Stop()
}

// Snapshot captures the process's logical state. The externalized store is
// deliberately absent: it lives outside the process, so neither a crash nor
// a rollback touches it.
func (c *Componentized) Snapshot() ([]byte, error) { return c.srv.Snapshot() }

// Restore replaces the process state from a snapshot, restarts it, and
// brings the component tree back up. Hot-key counters in the store are
// untouched.
func (c *Componentized) Restore(snapshot []byte) error {
	if err := c.srv.Restore(snapshot); err != nil {
		return err
	}
	return c.tree.StartAll()
}

// Reset reinitializes the process to pristine state and brings the tree up.
// The store survives even this: hot keys live in a different failure domain.
func (c *Componentized) Reset() error {
	if err := c.srv.Reset(); err != nil {
		return err
	}
	return c.tree.StartAll()
}

// Tree returns the component tree.
func (c *Componentized) Tree() *component.Tree { return c.tree }

// Store returns the externalized hot-key store.
func (c *Componentized) Store() *component.Store { return c.store }

// ComponentFor maps a mechanism key to the component its defect lives in.
func (c *Componentized) ComponentFor(mechanism string) (string, bool) {
	name, ok := componentFor[mechanism]
	return name, ok
}

// ContainCrash reattributes a process-fatal failure to the component tree:
// in the componentized build only the faulty component's process died, so
// the process-level liveness flag comes back up and the caller reboots the
// component.
func (c *Componentized) ContainCrash() {
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	c.srv.running = true
}
