package corpus

import (
	"sync"

	"faultstudy/internal/taxonomy"
)

var (
	apacheOnce   sync.Once
	apacheFaults []*Fault
)

// Apache returns the 50 classified Apache faults (Table 1: 36
// environment-independent, 7 nontransient, 7 transient).
func Apache() []*Fault {
	apacheOnce.Do(func() {
		apacheFaults = buildApache()
		if err := validateSet(apacheFaults); err != nil {
			panic(err)
		}
	})
	return apacheFaults
}

func buildApache() []*Fault {
	named := apacheNamed()
	ei := filterClass(named, taxonomy.ClassEnvIndependent)
	ei = append(ei, expandEI(
		taxonomy.AppApache, "apache",
		apacheEITemplates,
		[]string{"mod_cgi", "mod_rewrite", "mod_include", "mod_proxy", "core", "mod_autoindex", "mod_mime", "mod_alias"},
		[]string{
			"a request with a duplicated Host header",
			"a HEAD request for a CGI script",
			"a request URI containing %2F escapes",
			"an If-Modified-Since date in the year 2038",
			"a Range header with reversed bounds",
			"a proxied request through two ProxyPass rules",
			"a .shtml file with a recursive include directive",
			"a request for a directory whose name ends in two slashes",
			"a POST with Content-Length larger than the body",
			"a request with 200 cookies",
		},
		36-len(ei),
	)...)
	edn := filterClass(named, taxonomy.ClassEnvDependentNonTransient)
	edt := filterClass(named, taxonomy.ClassEnvDependentTransient)

	buckets := []releaseBucket{
		{release: "1.2.6", date: date(1998, 3, 24), ei: 3, edn: 1, edt: 0},
		{release: "1.3.0", date: date(1998, 6, 6), ei: 4, edn: 1, edt: 1},
		{release: "1.3.1", date: date(1998, 7, 19), ei: 5, edn: 1, edt: 1},
		{release: "1.3.2", date: date(1998, 9, 21), ei: 6, edn: 1, edt: 2},
		{release: "1.3.3", date: date(1998, 10, 9), ei: 8, edn: 1, edt: 2},
		{release: "1.3.4", date: date(1999, 1, 11), ei: 10, edn: 2, edt: 1},
	}
	assignSchedule(buckets, ei, edn, edt)

	out := make([]*Fault, 0, 50)
	out = append(out, ei...)
	out = append(out, edn...)
	out = append(out, edt...)
	return out
}

// apacheNamed transcribes the faults the paper describes individually in
// §5.1: five representative environment-independent bugs, the seven
// nontransient triggers, and the seven transient triggers.
func apacheNamed() []*Fault {
	A := taxonomy.AppApache
	return []*Fault{
		// --- representative environment-independent faults ---
		{
			ID: "apache/ei-long-url", App: A,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "core",
			Synopsis:  "httpd dies with a segfault when the submitted URL is very long",
			Description: "The server child dies with a segmentation fault whenever a browser " +
				"submits a very long URL. The problem is an overflow in the hash calculation " +
				"used while processing the request URI.",
			HowToRepeat: "Request a URL of several thousand characters against any host. " +
				"Happens every time on every platform we tried.",
			Fix:      "Bounds-check the hash calculation before indexing.",
			Severity: taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "httpd/long-url-overflow",
		},
		{
			ID: "apache/ei-sighup", App: A,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "core",
			Synopsis:  "SIGHUP kills apache on Solaris and Unixware",
			Description: "Sending SIGHUP, which should gracefully restart and rejuvenate the " +
				"server, instead kills it outright on Solaris and Unixware.",
			HowToRepeat: "kill -HUP the parent httpd on Solaris 2.6. The server exits instead " +
				"of restarting, every time.",
			Fix:      "Reinstall the signal handler before re-entering the accept loop.",
			Severity: taxonomy.SeveritySerious, Symptom: taxonomy.SymptomCrash,
			Mechanism: "httpd/sighup-crash",
		},
		{
			ID: "apache/ei-valist", App: A,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "core",
			Synopsis:  "httpd dumps core on Linux/PPC if handed a nonexistent URL",
			Description: "Requesting a URL that does not exist dumps core on Linux/PPC. " +
				"ap_log_rerror() uses a va_list variable twice without an intervening " +
				"va_end/va_start combination.",
			HowToRepeat: "GET /no-such-file on a Linux/PPC build. Core dump on the first request.",
			Fix:         "Add the missing va_end/va_start pair between the two uses.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "httpd/valist-reuse",
		},
		{
			ID: "apache/ei-palloc-zero", App: A,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "mod_autoindex",
			Synopsis:  "error when directory listing is on and the directory has zero entries",
			Description: "With directory listing turned on, requesting a directory with zero " +
				"entries fails: the palloc() call used in index_directory() doesn't handle " +
				"size zero properly.",
			HowToRepeat: "Enable Indexes, create an empty directory under the document root, " +
				"and request it. Fails every time.",
			Fix:      "Handle the zero-entry case before calling palloc().",
			Severity: taxonomy.SeveritySerious, Symptom: taxonomy.SymptomCrash,
			Mechanism: "httpd/palloc-zero",
		},
		{
			ID: "apache/ei-shm-leak", App: A,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "core",
			Synopsis:  "shared memory segment grows past 100 MB; HUP then freezes or kills httpd",
			Description: "The shared memory segment keeps growing and reaches sizes exceeding " +
				"100 Mbytes in less than 5 hours of operation. When a HUP signal is sent to " +
				"rotate logs, Apache freezes or dies. Caused by memory leaks in the application.",
			HowToRepeat: "Serve a steady workload for a few hours, then send HUP to rotate logs. " +
				"The leak accumulates on any machine; the HUP then reliably kills the server.",
			Fix:      "Free the scoreboard allocations leaked on each request.",
			Severity: taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "httpd/memory-leak-hup",
		},

		// --- environment-dependent-nontransient faults (7) ---
		{
			ID: "apache/edn-load-leak", App: A,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerResourceLeak,
			Component: "core",
			Synopsis:  "high load leads to an unknown resource leak and eventual failure",
			Description: "Under sustained high load the server accumulates some resource it " +
				"never returns and eventually fails. The leak is in application state, so a " +
				"generic recovery mechanism that saves and restores all application state " +
				"carries the leak across recovery.",
			HowToRepeat: "Drive the server at peak load for several hours. Failure point varies " +
				"with load but always arrives.",
			Severity: taxonomy.SeveritySerious, Symptom: taxonomy.SymptomCrash,
			Mechanism: "httpd/load-resource-leak",
		},
		{
			ID: "apache/edn-fd", App: A,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerFDExhaustion,
			Component: "core",
			Synopsis:  "httpd fails when the system runs out of file descriptors",
			Description: "With many virtual hosts and log files the process exhausts its file " +
				"descriptors and fails. A truly generic recovery mechanism recovers all " +
				"application resources including the descriptors, so the condition persists.",
			HowToRepeat: "Configure enough vhosts/log files to exceed the descriptor limit, " +
				"then start the server.",
			Severity: taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "httpd/fd-exhaustion",
		},
		{
			ID: "apache/edn-disk-cache", App: A,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerDiskFull,
			Component: "mod_proxy",
			Synopsis:  "proxy disk cache fills and the server cannot store temporary files",
			Description: "The disk cache used by the application gets full and the application " +
				"cannot store any more temporary files; requests that need the cache fail.",
			HowToRepeat: "Let the proxy cache grow to the partition size, then request an " +
				"uncached page.",
			Severity: taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "httpd/disk-cache-full",
		},
		{
			ID: "apache/edn-log-size", App: A,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerFileSizeLimit,
			Component: "core",
			Synopsis:  "server fails once the log file exceeds the maximum allowed file size",
			Description: "When the access log grows past the file system's maximum file size, " +
				"writes fail and the server stops serving.",
			HowToRepeat: "Let the access log reach the 2 GB file size limit.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "httpd/log-file-limit",
		},
		{
			ID: "apache/edn-fs-full", App: A,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerDiskFull,
			Component: "core",
			Synopsis:  "full file system stops the server",
			Description: "A full file system prevents the server from writing logs and " +
				"temporary files; requests fail until space is freed by the operator.",
			HowToRepeat: "Fill the partition holding the logs, then send any request.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "httpd/fs-full",
		},
		{
			ID: "apache/edn-net-resource", App: A,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerNetworkResource,
			Component: "core",
			Synopsis:  "unknown network resource exhausted under load",
			Description: "Some kernel network resource is exhausted; connections fail until " +
				"the operator intervenes. The resource is not owned by the application, so " +
				"recovering the application does not replenish it.",
			HowToRepeat: "Sustained connection load until the kernel refuses new connections.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "httpd/net-resource",
		},
		{
			ID: "apache/edn-pcmcia", App: A,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerNetworkResource,
			Component: "core",
			Synopsis:  "removal of the PCMCIA network card kills connectivity",
			Description: "Removing the PCMCIA network card from the computer while the server " +
				"runs makes every network operation fail; nothing restores service until the " +
				"card is reinserted.",
			HowToRepeat: "Eject the PCMCIA card while the server is running.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "httpd/pcmcia-removal",
		},

		// --- environment-dependent-transient faults (7) ---
		{
			ID: "apache/edt-dns-error", App: A,
			Class: taxonomy.ClassEnvDependentTransient, Trigger: taxonomy.TriggerDNSFailure,
			Component: "core",
			Synopsis:  "call to the Domain Name Service returns an error",
			Description: "A call to the Domain Name Service returns an error and the request " +
				"fails. The condition is likely to change when the DNS server is restarted.",
			HowToRepeat: "Only while the site DNS server is misbehaving; a later retry succeeds.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "httpd/dns-error",
		},
		{
			ID: "apache/edt-proc-table", App: A,
			Class: taxonomy.ClassEnvDependentTransient, Trigger: taxonomy.TriggerProcessTable,
			Component: "core",
			Synopsis:  "hung children consume all process-table slots during peak load",
			Description: "Child processes hang during peak load and consume all available " +
				"slots in the kernel process table. As part of automatic recovery, the " +
				"recovery system kills all processes associated with the application, which " +
				"frees the slots.",
			HowToRepeat: "Peak load with a slow backend; children pile up until fork fails.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomHang,
			Mechanism: "httpd/proc-table-full",
		},
		{
			ID: "apache/edt-client-abort", App: A,
			Class: taxonomy.ClassEnvDependentTransient, Trigger: taxonomy.TriggerRequestTiming,
			Component: "core",
			Synopsis:  "user pressing stop mid-download crashes the child",
			Description: "The user presses stop on the browser in the midst of a page " +
				"download and the serving child fails. The fault depends on the exact timing " +
				"of the requested workload, which is not likely to be repeated during recovery.",
			HowToRepeat: "Press stop at just the right moment during a large transfer; timing " +
				"dependent, hard to hit twice.",
			Severity: taxonomy.SeveritySerious, Symptom: taxonomy.SymptomCrash,
			Mechanism: "httpd/client-abort",
		},
		{
			ID: "apache/edt-port-squat", App: A,
			Class: taxonomy.ClassEnvDependentTransient, Trigger: taxonomy.TriggerProcessTable,
			Component: "core",
			Synopsis:  "hung children hang onto required network ports",
			Description: "Hung child processes keep holding the listening ports, so a restart " +
				"cannot bind. The children will be killed during recovery and the ports freed.",
			HowToRepeat: "Hang a child (slow client), restart the server, observe bind failure.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "httpd/port-squat",
		},
		{
			ID: "apache/edt-dns-slow", App: A,
			Class: taxonomy.ClassEnvDependentTransient, Trigger: taxonomy.TriggerDNSFailure,
			Component: "core",
			Synopsis:  "slow Domain Name Service responses stall requests",
			Description: "Slow DNS responses stall request processing. The cause will likely " +
				"be fixed without application-specific recovery, by restarting DNS or fixing " +
				"the network.",
			HowToRepeat: "Reproduces only while the DNS server is overloaded.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomHang,
			Mechanism: "httpd/dns-slow",
		},
		{
			ID: "apache/edt-slow-net", App: A,
			Class: taxonomy.ClassEnvDependentTransient, Trigger: taxonomy.TriggerSlowNetwork,
			Component: "core",
			Synopsis:  "slow network connection causes request failures",
			Description: "A slow network connection makes requests fail; the network may be " +
				"fixed by the time the server recovers.",
			HowToRepeat: "Reproduces only while the uplink is saturated.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "httpd/slow-network",
		},
		{
			ID: "apache/edt-entropy", App: A,
			Class: taxonomy.ClassEnvDependentTransient, Trigger: taxonomy.TriggerEntropy,
			Component: "mod_ssl",
			Synopsis:  "lack of events for /dev/random stalls key generation",
			Description: "A lack of events to generate sufficient random numbers in " +
				"/dev/random makes secure connections fail. During recovery it is likely " +
				"that more events will be generated.",
			HowToRepeat: "Start SSL handshakes on a freshly booted, idle machine.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "httpd/entropy-starved",
		},
	}
}

// apacheEITemplates are the defect-type templates for the synthesized
// environment-independent Apache faults, drawn from the defect populations
// the paper names (boundary conditions, pointer misuse, missing
// initialization, signal handling).
var apacheEITemplates = []eiTemplate{
	{
		synopsis:    "{component} segfaults on {input}",
		description: "Handling {input} dereferences a NULL pointer in {component}; the child dies with SIGSEGV.",
		howto:       "Send {input}. The child segfaults on every attempt, on every platform tried.",
		fix:         "Check the pointer before dereferencing it in {component}.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "httpd/null-deref",
	},
	{
		synopsis:    "{component} overruns a buffer given {input}",
		description: "A fixed-size buffer in {component} is too small for {input}; adjacent memory is overwritten and the child aborts.",
		howto:       "Send {input}; the overflow is deterministic.",
		fix:         "Replace the fixed buffer with a pool allocation sized from the input.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "httpd/bounds",
	},
	{
		synopsis:    "{component} returns garbage for {input} because a variable is never initialized",
		description: "A status variable in {component} is read before it is assigned when the request is {input}; the response is built from stack garbage.",
		howto:       "Send {input} as the first request to a fresh child.",
		fix:         "Initialize the variable at declaration.",
		symptom:     taxonomy.SymptomError,
		mechanism:   "httpd/bad-init",
		severity:    taxonomy.SeveritySerious,
	},
	{
		synopsis:    "{component} loops forever parsing {input}",
		description: "The parser in {component} fails to advance past a malformed token in {input} and spins; the child stops responding.",
		howto:       "Send {input}; the child pegs the CPU and never answers.",
		fix:         "Advance the scan position on the error path.",
		symptom:     taxonomy.SymptomHang,
		mechanism:   "httpd/parse-loop",
	},
	{
		synopsis:    "{component} mishandles a signed/unsigned conversion on {input}",
		description: "{component} declares a length as signed; {input} produces a negative value that is then used as an allocation size.",
		howto:       "Send {input}. The conversion error is deterministic.",
		fix:         "Declare the length unsigned and reject negative inputs.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "httpd/type-mismatch",
	},
	{
		synopsis:    "{component} omits a boundary check for {input}",
		description: "The boundary condition raised by {input} was never tested; {component} indexes one element past the end of a table.",
		howto:       "Send {input}; fails every time.",
		fix:         "Add the missing boundary check.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "httpd/missing-check",
	},
	{
		synopsis:    "{component} double-frees a pool on the error path for {input}",
		description: "When {input} takes the error path, {component} frees the request pool twice and the allocator aborts the child.",
		howto:       "Send {input}; abort on the first request.",
		fix:         "Clear the pool pointer after the first free.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "httpd/double-free",
	},
	{
		synopsis:    "{component} returns the wrong status for {input}",
		description: "A switch in {component} falls through for the case raised by {input}; the client receives a 200 with an empty body instead of an error.",
		howto:       "Send {input} and compare the status line.",
		fix:         "Add the missing case and a default.",
		symptom:     taxonomy.SymptomError,
		mechanism:   "httpd/wrong-status",
		severity:    taxonomy.SeveritySerious,
	},
}
