// Package corpusgen is the generative fault corpus: it samples synthetic
// fault populations — and multi-fault episodes — from published defect
// distributions, at population sizes the hand-curated 139-fault corpus
// cannot reach.
//
// The curated corpus (internal/corpus) transcribes the study's faults one by
// one; this package instead treats the published distributions as the ground
// truth and draws from them. Class shares follow the study's aggregate
// (81.3% EI / 10.1% EDN / 8.6% EDT over the 139); defect-type and lifetime
// shapes follow the "Faults in Linux 2.6" rates (memory-safety defects
// dominate, most fixed bugs lived months to years); two-fault episodes
// follow bug-repository co-occurrence studies (most co-occurring faults
// overlap in time, a substantial minority cascade one after the other).
//
// Everything is a pure function of (spec, seed, index) through the SplitMix64
// derived-seed discipline, so populations are byte-identical at any worker
// count and any sampling order. Generated faults name real seeded-bug
// mechanisms (internal/faultinject registry keys), so every sampled fault is
// runnable through the recovery experiments; they also render as normalized
// bug reports the classifier can grade, and as a synthetic GNATS-style PR
// site (Site) large enough to exercise the crawler at scale.
package corpusgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"faultstudy/internal/taxonomy"
	"faultstudy/internal/traffic"
)

// Published-distribution defaults. Every distribution uses the traffic
// package's probability-encoded grammar ("<prob>%<value>,..."), so corpus
// specs read like the traffic specs they sit next to.
const (
	// DefaultFaults sizes the default population.
	DefaultFaults = 5000
	// DefaultEpisodes is the default number of two-fault episodes.
	DefaultEpisodes = 500
	// DefaultClassDist is the study's aggregate class share over the 139
	// curated faults: 113 EI, 14 EDN, 12 EDT.
	DefaultClassDist = "81.3%ei,10.1%edn,8.6%edt"
	// DefaultAppDist spreads the population over the four simulated
	// applications, weighting the daemons the recovery experiments focus on.
	DefaultAppDist = "30%httpd,25%sqldb,25%cache,20%desktop"
	// DefaultDefectDist follows the "Faults in Linux 2.6" defect-type rates:
	// memory-safety defects dominate, then logic, interface, concurrency,
	// and resource-handling defects.
	DefaultDefectDist = "36%memory,25%logic,15%interface,13%concurrency,11%resource"
	// DefaultLifetimeDist follows the same study's bug-lifetime shape: the
	// average fixed bug lived well over a year, with a long tail of
	// multi-year residents.
	DefaultLifetimeDist = "25%30d,30%180d,25%2y,15%4y,5%6y"
	// DefaultOverlapDist is the co-occurrence model for two-fault episodes:
	// most co-occurring faults are active concurrently, the rest cascade —
	// the second fault strikes while recovering from the first.
	DefaultOverlapDist = "60%concurrent,40%cascade"
	// DefaultGapDist is the inter-fault gap distribution for cascade
	// episodes.
	DefaultGapDist = "50%10s,30%2m,20%30m"
)

// Population bounds: generous for experiments, tight enough that a parsed
// spec can never ask a generator loop for pathological work.
const (
	maxFaults   = 5_000_000
	maxEpisodes = 1_000_000
)

// maxSpanYears bounds a lifetime/gap span; bug lifetimes beyond two
// centuries are spec typos, not data.
const maxSpanYears = 200

// Spec is a parsed corpus specification: population sizes plus the sampled
// distributions. Build one with ParseCorpusSpec; the zero value is not
// usable.
type Spec struct {
	// Faults is the population size.
	Faults int
	// Episodes is the number of two-fault episodes layered over the
	// population.
	Episodes int
	// Class is the fault-class distribution (values ei, edn, edt).
	Class *traffic.Dist
	// App is the application distribution (values httpd, sqldb, desktop,
	// cache — the seeded-bug namespaces).
	App *traffic.Dist
	// Defect is the defect-type distribution (values memory, logic,
	// interface, concurrency, resource).
	Defect *traffic.Dist
	// Lifetime is the bug-lifetime distribution; values are spans
	// (time.ParseDuration strings, plus d/w/y day/week/year suffixes).
	Lifetime *traffic.Dist
	// Overlap is the episode co-occurrence distribution (values concurrent,
	// cascade).
	Overlap *traffic.Dist
	// Gap is the cascade inter-fault gap distribution; values are spans.
	Gap *traffic.Dist
}

// classValues maps spec class keys to taxonomy classes.
var classValues = map[string]taxonomy.FaultClass{
	"ei":  taxonomy.ClassEnvIndependent,
	"edn": taxonomy.ClassEnvDependentNonTransient,
	"edt": taxonomy.ClassEnvDependentTransient,
}

// classKeys is the reverse of classValues.
var classKeys = map[taxonomy.FaultClass]string{
	taxonomy.ClassEnvIndependent:           "ei",
	taxonomy.ClassEnvDependentNonTransient: "edn",
	taxonomy.ClassEnvDependentTransient:    "edt",
}

// appValues maps spec app keys (the mechanism namespaces) to applications.
var appValues = map[string]taxonomy.Application{
	"httpd":   taxonomy.AppApache,
	"sqldb":   taxonomy.AppMySQL,
	"desktop": taxonomy.AppGnome,
	"cache":   taxonomy.AppCache,
}

// defectValues is the defect-type vocabulary.
var defectValues = map[string]bool{
	"memory": true, "logic": true, "interface": true,
	"concurrency": true, "resource": true,
}

// overlapValues is the episode co-occurrence vocabulary.
var overlapValues = map[string]bool{"concurrent": true, "cascade": true}

// parseSpan parses a lifetime/gap span: any time.ParseDuration string, plus
// whole-number day ("30d"), week ("2w"), and year ("2y") suffixes the
// duration grammar lacks but bug lifetimes need.
func parseSpan(s string) (time.Duration, error) {
	if d, err := time.ParseDuration(s); err == nil {
		if d < 0 {
			return 0, fmt.Errorf("corpusgen: span %q is negative", s)
		}
		return d, nil
	}
	if len(s) < 2 {
		return 0, fmt.Errorf("corpusgen: span %q is not a duration", s)
	}
	var unit time.Duration
	switch s[len(s)-1] {
	case 'd':
		unit = 24 * time.Hour
	case 'w':
		unit = 7 * 24 * time.Hour
	case 'y':
		unit = 365 * 24 * time.Hour
	default:
		return 0, fmt.Errorf("corpusgen: span %q is not a duration", s)
	}
	n, err := strconv.ParseFloat(s[:len(s)-1], 64)
	if err != nil || math.IsNaN(n) || n < 0 ||
		n*float64(unit) > float64(maxSpanYears*365*24*time.Hour) {
		return 0, fmt.Errorf("corpusgen: span %q has a bad count", s)
	}
	return time.Duration(n * float64(unit)), nil
}

// parseVocabDist parses a distribution whose values must come from a fixed
// vocabulary.
func parseVocabDist(key, val string, ok func(string) bool) (*traffic.Dist, error) {
	d, err := traffic.ParseDistribution(val)
	if err != nil {
		return nil, fmt.Errorf("corpusgen: %s: %w", key, err)
	}
	for _, e := range d.Entries() {
		if !ok(e.Value) {
			return nil, fmt.Errorf("corpusgen: %s: unknown value %q", key, e.Value)
		}
	}
	return d, nil
}

// parseSpanDist parses a distribution whose values must be spans.
func parseSpanDist(key, val string) (*traffic.Dist, error) {
	d, err := traffic.ParseDistribution(val)
	if err != nil {
		return nil, fmt.Errorf("corpusgen: %s: %w", key, err)
	}
	for _, e := range d.Entries() {
		if _, err := parseSpan(e.Value); err != nil {
			return nil, fmt.Errorf("corpusgen: %s: %w", key, err)
		}
	}
	return d, nil
}

// mustDist parses a compile-time default distribution.
func mustDist(s string) *traffic.Dist {
	d, err := traffic.ParseDistribution(s)
	if err != nil {
		panic(err)
	}
	return d
}

// DefaultSpec returns the published-distribution defaults.
func DefaultSpec() *Spec {
	return &Spec{
		Faults:   DefaultFaults,
		Episodes: DefaultEpisodes,
		Class:    mustDist(DefaultClassDist),
		App:      mustDist(DefaultAppDist),
		Defect:   mustDist(DefaultDefectDist),
		Lifetime: mustDist(DefaultLifetimeDist),
		Overlap:  mustDist(DefaultOverlapDist),
		Gap:      mustDist(DefaultGapDist),
	}
}

// ParseCorpusSpec parses a corpus specification: semicolon-separated
// key=value fields where the sizes are integers and every distribution uses
// the traffic grammar, e.g.
//
//	faults=5000;episodes=500;class=81.3%ei,10.1%edn,8.6%edt
//
// Omitted keys keep their published-distribution defaults; the empty string
// is the default spec. Unknown or repeated keys are errors.
func ParseCorpusSpec(s string) (*Spec, error) {
	spec := DefaultSpec()
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	seen := make(map[string]bool, 8)
	for _, field := range strings.Split(s, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			return nil, fmt.Errorf("corpusgen: empty spec field")
		}
		key, val, ok := strings.Cut(field, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" {
			return nil, fmt.Errorf("corpusgen: field %q is not key=value", field)
		}
		if seen[key] {
			return nil, fmt.Errorf("corpusgen: key %q repeated", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "faults":
			spec.Faults, err = parseCount(key, val, 1, maxFaults)
		case "episodes":
			spec.Episodes, err = parseCount(key, val, 0, maxEpisodes)
		case "class":
			spec.Class, err = parseVocabDist(key, val, func(v string) bool { _, ok := classValues[v]; return ok })
		case "app":
			spec.App, err = parseVocabDist(key, val, func(v string) bool { _, ok := appValues[v]; return ok })
		case "defect":
			spec.Defect, err = parseVocabDist(key, val, func(v string) bool { return defectValues[v] })
		case "lifetime":
			spec.Lifetime, err = parseSpanDist(key, val)
		case "overlap":
			spec.Overlap, err = parseVocabDist(key, val, func(v string) bool { return overlapValues[v] })
		case "gap":
			spec.Gap, err = parseSpanDist(key, val)
		default:
			err = fmt.Errorf("corpusgen: unknown key %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	return spec, nil
}

// parseCount parses a bounded integer field.
func parseCount(key, val string, lo, hi int) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("corpusgen: %s: %v", key, err)
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("corpusgen: %s=%d outside [%d, %d]", key, n, lo, hi)
	}
	return n, nil
}

// String renders the spec back in its source grammar, in canonical key
// order. ParseCorpusSpec(s.String()) reproduces s exactly.
func (s *Spec) String() string {
	return fmt.Sprintf("faults=%d;episodes=%d;class=%s;app=%s;defect=%s;lifetime=%s;overlap=%s;gap=%s",
		s.Faults, s.Episodes, s.Class, s.App, s.Defect, s.Lifetime, s.Overlap, s.Gap)
}
